"""Behavioural tests for the concrete partitioners."""

import numpy as np
import pytest

from repro.partitioners import (
    PartitionProblem,
    edge_cut,
    get_partitioner,
    load_imbalance,
    weighted_median_split,
)


def grid_problem(nx=10, ny=10, shuffle_seed=None):
    """A 2-D grid graph with coordinates; optionally renumbered randomly
    (so BLOCK on the shuffled numbering is bad, like a real mesh)."""
    n = nx * ny
    idx = np.arange(n).reshape(nx, ny)
    right = np.stack([idx[:-1, :].ravel(), idx[1:, :].ravel()])
    up = np.stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()])
    edges = np.concatenate([right, up], axis=1)
    xs, ys = np.meshgrid(np.arange(nx, dtype=float), np.arange(ny, dtype=float), indexing="ij")
    coords = np.stack([xs.ravel(), ys.ravel()])
    if shuffle_seed is not None:
        rng = np.random.default_rng(shuffle_seed)
        perm = rng.permutation(n)  # new label of old vertex i is perm[i]
        edges = perm[edges]
        inv = np.empty(n, dtype=np.int64)
        inv[perm] = np.arange(n)
        coords = coords[:, inv]
    return PartitionProblem(n, edges=edges, coords=coords)


class TestNaive:
    def test_block_contiguous(self):
        res = get_partitioner("BLOCK").partition(PartitionProblem(10), 3)
        assert res.owner_map.tolist() == [0, 0, 0, 0, 1, 1, 1, 1, 2, 2]

    def test_cyclic(self):
        res = get_partitioner("CYCLIC").partition(PartitionProblem(6), 3)
        assert res.owner_map.tolist() == [0, 1, 2, 0, 1, 2]

    def test_random_deterministic_per_seed(self):
        a = get_partitioner("RANDOM", seed=3).partition(PartitionProblem(50), 4)
        b = get_partitioner("RANDOM", seed=3).partition(PartitionProblem(50), 4)
        c = get_partitioner("RANDOM", seed=4).partition(PartitionProblem(50), 4)
        assert np.array_equal(a.owner_map, b.owner_map)
        assert not np.array_equal(a.owner_map, c.owner_map)


class TestLoad:
    def test_balances_skewed_weights(self):
        w = np.array([10.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0])
        res = get_partitioner("LOAD").partition(PartitionProblem(11, weights=w), 2)
        loads = np.bincount(res.owner_map, weights=w, minlength=2)
        assert abs(loads[0] - loads[1]) <= 1.0

    def test_unit_weights_near_even(self):
        res = get_partitioner("LOAD").partition(PartitionProblem(100), 4)
        assert load_imbalance(res.owner_map, 4) <= 1.01


class TestWeightedMedianSplit:
    def test_even_split(self):
        mask = weighted_median_split(np.arange(10.0), np.ones(10))
        assert mask.sum() == 5
        assert mask[:5].all()

    def test_weighted_split_respects_weights(self):
        key = np.arange(4.0)
        w = np.array([3.0, 1.0, 1.0, 1.0])
        mask = weighted_median_split(key, w, 0.5)
        assert mask.tolist() == [True, False, False, False]

    def test_fraction(self):
        mask = weighted_median_split(np.arange(100.0), np.ones(100), 0.25)
        assert mask.sum() == 25

    def test_both_sides_nonempty(self):
        mask = weighted_median_split(np.array([1.0, 1.0]), np.array([100.0, 1.0]))
        assert mask.sum() == 1

    def test_bad_fraction(self):
        with pytest.raises(ValueError, match="left_fraction"):
            weighted_median_split(np.arange(3.0), np.ones(3), 1.0)

    def test_zero_total_weight_falls_back_to_counts(self):
        mask = weighted_median_split(np.arange(8.0), np.zeros(8), 0.5)
        assert mask.sum() == 4


@pytest.mark.parametrize("name", ["RCB", "RIB", "RSB", "RSB+KL"])
class TestStructuredPartitioners:
    def test_valid_partition(self, name):
        prob = grid_problem(8, 8)
        res = get_partitioner(name).partition(prob, 4)
        assert res.owner_map.size == 64
        assert set(np.unique(res.owner_map)) == {0, 1, 2, 3}

    def test_balanced(self, name):
        prob = grid_problem(12, 12)
        res = get_partitioner(name).partition(prob, 4)
        assert load_imbalance(res.owner_map, 4) <= 1.15

    def test_beats_random_on_cut(self, name):
        prob = grid_problem(12, 12, shuffle_seed=5)
        res = get_partitioner(name).partition(prob, 4)
        rand = get_partitioner("RANDOM", seed=0).partition(prob, 4)
        assert edge_cut(prob.edges, res.owner_map) < edge_cut(prob.edges, rand.owner_map)

    def test_nonpower_of_two_parts(self, name):
        prob = grid_problem(9, 9)
        res = get_partitioner(name).partition(prob, 3)
        assert set(np.unique(res.owner_map)) == {0, 1, 2}
        assert load_imbalance(res.owner_map, 3) <= 1.2

    def test_single_part(self, name):
        prob = grid_problem(4, 4)
        res = get_partitioner(name).partition(prob, 1)
        assert np.all(res.owner_map == 0)

    def test_reports_modeled_cost(self, name):
        prob = grid_problem(8, 8)
        res = get_partitioner(name).partition(prob, 4)
        assert res.flops > 0
        assert res.sync_rounds > 0


class TestPartitionQualityOrdering:
    """The ordering behind the paper's Table 2: on a randomly renumbered
    mesh, BLOCK cuts the most edges, RCB fewer, RSB the fewest."""

    def test_block_worst_structured_best(self):
        prob = grid_problem(16, 16, shuffle_seed=7)
        cuts = {}
        for name in ["BLOCK", "RCB", "RSB"]:
            res = get_partitioner(name).partition(prob, 8)
            cuts[name] = edge_cut(prob.edges, res.owner_map)
        # On a randomly renumbered mesh BLOCK is dramatically worse than
        # either structured partitioner; RCB and RSB are comparable on a
        # perfectly regular grid (RCB's planes are optimal there), so we
        # only require RSB to be in RCB's neighbourhood.
        assert cuts["RCB"] < cuts["BLOCK"] / 3
        assert cuts["RSB"] < cuts["BLOCK"] / 3
        assert cuts["RSB"] <= 1.3 * cuts["RCB"]

    def test_kl_does_not_hurt(self):
        prob = grid_problem(12, 12, shuffle_seed=1)
        plain = get_partitioner("RSB").partition(prob, 4)
        refined = get_partitioner("RSB+KL").partition(prob, 4)
        assert edge_cut(prob.edges, refined.owner_map) <= edge_cut(
            prob.edges, plain.owner_map
        )

    def test_rsb_cost_exceeds_rcb_cost(self):
        prob = grid_problem(16, 16)
        rcb = get_partitioner("RCB").partition(prob, 8)
        rsb = get_partitioner("RSB").partition(prob, 8)
        assert rsb.flops > 10 * rcb.flops


class TestRSBDetails:
    def test_deterministic_per_seed(self):
        prob = grid_problem(10, 10)
        a = get_partitioner("RSB", seed=1).partition(prob, 4)
        b = get_partitioner("RSB", seed=1).partition(prob, 4)
        assert np.array_equal(a.owner_map, b.owner_map)

    def test_disconnected_graph_handled(self):
        # two disjoint 4-cliques
        e1 = np.array([[0, 0, 0, 1, 1, 2], [1, 2, 3, 2, 3, 3]])
        e2 = e1 + 4
        prob = PartitionProblem(8, edges=np.concatenate([e1, e2], axis=1))
        res = get_partitioner("RSB").partition(prob, 2)
        # perfect split: each clique on its own side, zero cut
        assert edge_cut(prob.edges, res.owner_map) == 0
        assert load_imbalance(res.owner_map, 2) == 1.0

    def test_no_edges_graph(self):
        prob = PartitionProblem(10, edges=np.empty((2, 0), dtype=np.int64))
        res = get_partitioner("RSB").partition(prob, 2)
        assert load_imbalance(res.owner_map, 2) == 1.0
