"""Figure 2: the five-phase structure of an irregular-problem solve.

The paper's Figure 2 is a flow diagram (Phase A: GeoCoL build/partition,
B: iteration partition, C: remap, D: inspector, E: executor); this bench
times each phase of the pipeline on the large mesh so the diagram's
phases become a measured series.
"""

from conftest import run_once

from repro.bench import fig2_phase_breakdown


def test_fig2_phase_breakdown(benchmark, report):
    rows, text = run_once(benchmark, fig2_phase_breakdown)
    report("fig2_phases", text)
    assert len(rows) == 4
    seconds = {r["phase"][0]: r["seconds"] for r in rows}
    # every phase contributes
    assert all(v > 0 for v in seconds.values())
    # RSB makes phase A (partitioning) the dominant one-time cost...
    assert seconds["A"] > seconds["B"] and seconds["A"] > seconds["D"]
    # ...amortized across the 100-iteration executor phase
    total_once = seconds["A"] + seconds["B"] + seconds["D"]
    assert seconds["E"] < 100 * total_once  # sanity: amortization is real
