"""Recursive spectral bisection (Simon 1991).

The connectivity-based partitioner of the paper's Table 2: recursively
split the graph at the weighted median of the Fiedler vector (the
eigenvector of the graph Laplacian's second-smallest eigenvalue).

Numerically, the Fiedler vector comes from a dense eigensolve for small
subgraphs and LOBPCG (with the constant vector deflated) for large ones,
falling back to dense when the iteration struggles.  The *modeled*
parallel cost reflects what Simon's Lanczos-based implementation paid on
the iPSC/860: many matrix-vector products plus growing
reorthogonalization work and two global reductions per iteration --
which is why the paper's RSB partitioning time (258 s) towers over RCB's
(1.6 s) while its executor time is the best.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph

from repro.partitioners.base import (
    PartitionProblem,
    PartitionResult,
    Partitioner,
    register_partitioner,
)
from repro.partitioners.kl import kl_refine
from repro.partitioners.weighted import weighted_median_split

#: modeled Lanczos iterations per bisection (i860-era, full reorth)
LANCZOS_ITERS = 150
#: dense-solve threshold for the actual Fiedler computation
_DENSE_N = 128


def _laplacian(n: int, edges: np.ndarray) -> sp.csr_matrix:
    u, v = edges
    data = np.ones(2 * edges.shape[1])
    adj = sp.coo_matrix(
        (data, (np.concatenate([u, v]), np.concatenate([v, u]))), shape=(n, n)
    ).tocsr()
    # collapse duplicate edges to weight 1 to keep the spectrum tame
    adj.data[:] = 1.0
    adj.sum_duplicates()
    adj.data[:] = np.minimum(adj.data, 1.0)
    deg = np.asarray(adj.sum(axis=1)).ravel()
    return sp.diags(deg) - adj


def fiedler_vector(n: int, edges: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Fiedler vector of the graph on ``n`` vertices with ``(2, E)`` edges.

    Deterministic given ``rng``'s state.  Subgraphs too small or too
    stubborn for LOBPCG are solved densely.
    """
    if n < 1:
        return np.empty(0)
    if n <= 2 or edges.size == 0:
        return np.arange(n, dtype=np.float64)
    L = _laplacian(n, np.ascontiguousarray(edges, dtype=np.int64))
    if n <= _DENSE_N:
        return _dense_fiedler(L.toarray())
    ones = np.ones((n, 1)) / np.sqrt(n)
    x = rng.standard_normal((n, 1))
    try:
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            vals, vecs = sp.linalg.lobpcg(
                L.tocsr(),
                x,
                Y=ones,
                largest=False,
                tol=1e-5,
                maxiter=min(4 * int(np.sqrt(n)) + 50, 500),
            )
        vec = vecs[:, 0]
        if np.all(np.isfinite(vec)) and np.ptp(vec) > 0:
            return vec
    except Exception:
        pass
    if n <= 4000:
        return _dense_fiedler(L.toarray())
    # last resort: shifted power-ish refinement of a random vector is
    # useless; use eigsh which is slow but robust
    vals, vecs = sp.linalg.eigsh(
        L.tocsc().asfptype(), k=2, which="SM", v0=rng.standard_normal(n)
    )
    order = np.argsort(vals)
    return vecs[:, order[1]]


def _dense_fiedler(L: np.ndarray) -> np.ndarray:
    vals, vecs = np.linalg.eigh(L)
    return vecs[:, 1]


@register_partitioner("RSB")
class RSBPartitioner(Partitioner):
    """Connectivity-based partitioner; needs LINK, honours LOAD."""

    needs_edges = True

    def __init__(self, seed: int = 0):
        self.seed = seed

    def partition(self, problem: PartitionProblem, n_parts: int) -> PartitionResult:
        self.validate(problem, n_parts)
        n = problem.n_vertices
        owners = np.zeros(n, dtype=np.int64)
        weights = problem.effective_weights()
        edges = problem.edges if problem.edges is not None else np.empty((2, 0), np.int64)
        rng = np.random.default_rng(self.seed)

        flops = 0.0
        iops = 0.0
        rounds = 0
        comm_bytes = 0.0

        in_left = np.zeros(n, dtype=bool)  # scratch
        work = [(np.arange(n, dtype=np.int64), edges, 0, n_parts)]
        while work:
            next_work = []
            level_iters = 0
            for idx, sub_edges, part0, parts in work:
                if parts == 1 or idx.size == 0:
                    owners[idx] = part0
                    continue
                left_parts = (parts + 1) // 2
                frac = left_parts / parts
                mask = self._bisect(idx, sub_edges, weights, frac, rng)
                # split the edge list between the sides
                in_left[idx] = mask
                if sub_edges.size:
                    u, v = sub_edges
                    both_left = in_left[u] & in_left[v]
                    both_right = ~in_left[u] & ~in_left[v]
                    left_edges = sub_edges[:, both_left]
                    right_edges = sub_edges[:, both_right]
                else:
                    left_edges = right_edges = sub_edges
                in_left[idx] = False
                next_work.append((idx[mask], left_edges, part0, left_parts))
                next_work.append(
                    (idx[~mask], right_edges, part0 + left_parts, parts - left_parts)
                )
                # modeled Lanczos cost for this subgraph
                m_sub = sub_edges.shape[1]
                iters = min(LANCZOS_ITERS, max(idx.size, 1))
                flops += iters * (4.0 * m_sub + 8.0 * idx.size)
                flops += 0.5 * iters * iters * idx.size  # full reorthogonalization
                iops += 6.0 * m_sub  # edge-list split / bucketing
                level_iters = max(level_iters, iters)
                comm_bytes += 0.5 * 32.0 * idx.size
            # subgraphs at one level run concurrently; their Lanczos
            # reductions synchronize the whole machine per iteration
            rounds += 2 * level_iters
            work = next_work

        return PartitionResult(
            owner_map=owners,
            n_parts=n_parts,
            flops=flops,
            iops=iops,
            sync_rounds=rounds,
            comm_bytes=comm_bytes,
        )

    def _bisect(
        self,
        idx: np.ndarray,
        sub_edges: np.ndarray,
        weights: np.ndarray,
        frac: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Boolean left-side mask for one bisection of ``idx``."""
        n_sub = idx.size
        # relabel edges to local ids
        if sub_edges.size:
            lookup = np.zeros(int(idx.max()) + 1, dtype=np.int64)
            lookup[idx] = np.arange(n_sub)
            local_edges = lookup[sub_edges]
        else:
            local_edges = np.empty((2, 0), dtype=np.int64)

        if local_edges.size:
            adj = sp.coo_matrix(
                (
                    np.ones(local_edges.shape[1]),
                    (local_edges[0], local_edges[1]),
                ),
                shape=(n_sub, n_sub),
            )
            n_comp, labels = csgraph.connected_components(adj, directed=False)
        else:
            n_comp, labels = n_sub, np.arange(n_sub)

        if n_comp > 1:
            # greedy weighted assignment of whole components
            comp_w = np.bincount(labels, weights=weights[idx], minlength=n_comp)
            order = np.argsort(-comp_w, kind="stable")
            total = comp_w.sum()
            target_left = frac * total
            left_w = 0.0
            left_comps = np.zeros(n_comp, dtype=bool)
            for c in order:
                if left_w < target_left:
                    left_comps[c] = True
                    left_w += comp_w[c]
            mask = left_comps[labels]
            # degenerate: everything on one side -> fall back to a plain split
            if mask.all() or not mask.any():
                mask = weighted_median_split(
                    np.arange(n_sub, dtype=np.float64), weights[idx], frac
                )
            return mask

        vec = fiedler_vector(n_sub, local_edges, rng)
        return weighted_median_split(vec, weights[idx], frac)


@register_partitioner("RSB+KL")
class RSBKLPartitioner(RSBPartitioner):
    """RSB followed by a Kernighan-Lin boundary refinement pass."""

    def __init__(self, seed: int = 0, passes: int = 2):
        super().__init__(seed)
        self.passes = passes

    def partition(self, problem: PartitionProblem, n_parts: int) -> PartitionResult:
        res = super().partition(problem, n_parts)
        refined, moves = kl_refine(
            problem.edges,
            res.owner_map,
            n_parts,
            weights=problem.weights,
            max_passes=self.passes,
        )
        res.owner_map = refined
        # refinement cost: gain computation touches every edge per pass
        res.flops += 2.0 * problem.n_edges * self.passes
        res.iops += 8.0 * problem.n_edges * self.passes
        res.sync_rounds += 2 * self.passes
        res.info["kl_moves"] = moves
        return res
