#!/usr/bin/env python
"""Molecular dynamics: 648-atom water box electrostatic force sweep.

Demonstrates (a) schedule reuse across timesteps while atoms move
*within* a fixed pair list, and (b) automatic re-inspection the moment
the pair list is rebuilt -- the runtime record notices the indirection
arrays changed, exactly the paper's conservative mechanism.

    python examples/md_water_box.py
"""

import numpy as np

from repro.machine import Machine
from repro.workloads.md import (
    md_force_loop,
    md_sequential_reference,
    pair_list,
    setup_md_program,
    water_box,
)


def main():
    machine = Machine(8)
    prog, pairs = setup_md_program(machine, n_atoms=648, cutoff=6.0, seed=3)
    loop = md_force_loop(pairs.shape[1])
    print(f"648-atom water box, {pairs.shape[1]} pairs within 6 A cutoff")

    # phase 1: ten timesteps on a fixed pair list -> one inspection
    prog.forall(loop, n_times=10)
    print(
        f"10 sweeps done: inspector runs={prog.inspector_runs}, "
        f"reuse hits={prog.reuse_hits}"
    )
    coords = np.stack([prog.arrays[c].to_global() for c in ("rx", "ry", "rz")])
    charges = prog.arrays["q"].to_global()
    want = md_sequential_reference(coords, charges, pairs, n_times=10)
    assert np.allclose(prog.arrays["fx"].to_global(), want)
    print("forces verified against sequential NumPy reference")

    # phase 2: atoms drifted -> rebuild the pair list (writes p1/p2)
    drift = np.random.default_rng(9).normal(scale=0.05, size=coords.shape)
    new_coords = coords + drift
    new_pairs = pair_list(new_coords, cutoff=6.0)
    if new_pairs.shape[1] != pairs.shape[1]:
        # keep the decomposition size fixed: truncate or pad by repeating
        # the final pair (a duplicate contribution is fine for the demo)
        k = pairs.shape[1]
        if new_pairs.shape[1] >= k:
            new_pairs = new_pairs[:, :k]
        else:
            pad = np.repeat(new_pairs[:, -1:], k - new_pairs.shape[1], axis=1)
            new_pairs = np.concatenate([new_pairs, pad], axis=1)
        print(f"(pair list adjusted to the original {k} entries)")
    for c, vals in zip(("rx", "ry", "rz"), new_coords):
        prog.set_array(c, vals)
    prog.set_array("p1", new_pairs[0])
    prog.set_array("p2", new_pairs[1])

    before = prog.inspector_runs
    prog.forall(loop, n_times=5)
    print(
        f"after pair-list rebuild: inspector re-ran "
        f"{prog.inspector_runs - before} time(s) (conservative check "
        f"detected the indirection-array writes), then reused again"
    )
    assert prog.inspector_runs == before + 1

    print(f"\nsimulated machine time: {machine.elapsed():.3f}s")
    print(
        f"  inspector: {prog.phase_time('inspector'):.3f}s, "
        f"executor: {prog.phase_time('executor'):.3f}s"
    )


if __name__ == "__main__":
    main()
