"""The mapper coupler: feed a GeoCoL graph to a partitioner.

Implements the directive
``SET distfmt BY PARTITIONING G USING RSB`` (K2/K3 in Figure 6):
convert the GeoCoL graph to the standardized
:class:`~repro.partitioners.base.PartitionProblem`, run the named (or
custom) partitioner, charge its *modeled parallel execution* to the
machine, and return the new irregular distribution.
"""

from __future__ import annotations

from repro.core.geocol import GeoCoL
from repro.distribution.irregular import IrregularDistribution
from repro.machine.machine import Machine
from repro.partitioners.base import PartitionResult, Partitioner, get_partitioner


def partition_geocol(
    machine: Machine,
    geocol: GeoCoL,
    partitioner: str | Partitioner,
    n_parts: int | None = None,
    **partitioner_kwargs,
) -> tuple[IrregularDistribution, PartitionResult]:
    """Partition a GeoCoL graph; returns (new distribution, raw result).

    ``partitioner`` may be a registry name ("RSB", "RCB", ...) or any
    object with a matching ``partition(problem, n_parts)`` calling
    sequence -- the paper's "customized partitioner" hook.
    """
    if n_parts is None:
        n_parts = machine.n_procs
    if isinstance(partitioner, str):
        partitioner = get_partitioner(partitioner, **partitioner_kwargs)
    elif not hasattr(partitioner, "partition"):
        raise TypeError(
            "custom partitioner must provide partition(problem, n_parts)"
        )
    problem = geocol.to_problem()
    result = partitioner.partition(problem, n_parts)
    if result.owner_map.size != geocol.n_vertices:
        raise ValueError(
            f"partitioner returned {result.owner_map.size} owners for "
            f"{geocol.n_vertices} vertices"
        )
    _charge_partitioner(machine, result)
    dist = IrregularDistribution(result.owner_map, machine.n_procs)
    return dist, result


def _charge_partitioner(machine: Machine, result: PartitionResult) -> None:
    """Charge the partitioner's modeled parallel cost.

    Work (flops/iops) is divided evenly across processors -- the paper's
    partitioners are parallelized -- and each synchronization round costs
    a tree allreduce of a scalar.
    """
    n = machine.n_procs
    machine.charge_compute_all(
        flops=result.flops / n,
        iops=result.iops / n,
    )
    if result.comm_bytes:
        # bulk data movement spread across the machine
        per_proc_bytes = result.comm_bytes / n
        machine.counters.clock += machine.cost.message_time(int(per_proc_bytes))
    if result.sync_rounds and n > 1:
        depth = max(1, (n - 1).bit_length())
        machine.counters.clock += (
            result.sync_rounds * 2 * depth * machine.cost.message_time(8)
        )
    machine.barrier()
