"""The deterministic chaos harness is itself a tier-1 gate.

One full harness run: worker kills (single and repeated), a corrupted
checkpoint forcing the ``.prev`` fallback, wire faults inside the
simulations, duplicate submissions, and cache corruption -- all jobs
must complete bit-identical to the fault-free reference pass.
"""

from repro.serve.chaos import chaos_configs, run_chaos
from repro.serve.config import config_key


def test_chaos_configs_are_distinct():
    keys = [config_key(c) for c in chaos_configs(seed=0)]
    assert len(set(keys)) == len(keys)
    assert chaos_configs(seed=0) == chaos_configs(seed=0)
    assert chaos_configs(seed=0) != chaos_configs(seed=5)


def test_chaos_soak_bit_identical():
    report = run_chaos(seed=0, workers=2)
    assert report["ok"]
    assert report["failures"] == []
    assert report["results"] == report["reference"]
    # every chaos job needed at least one retry
    assert all(a >= 2 for a in report["attempts"])
    counts = report["health"]["counts"]
    assert counts["worker_restarts"] >= report["jobs"]
    assert counts["coalesced"] == 2
    assert report["health"]["cache"]["corrupt"] == 1
