"""Remap-path fault matrix: redistribution faults detected + recovered.

PR 6's fault matrix covered the gather wire; these scenarios extend it
to the repartition path (the Table 2 mapper/coupler epoch loop): wire
faults on remap-move data -- against both the full ``build_remap_schedule``
path and the PR 7 delta-patched ``patch_remap_schedule`` path -- and a
slot flip of a patched remap schedule.  Each scenario runs the rebalance
campaign twice, clean and faulted, and requires that the fault (a)
actually fired, (b) was detected and repaired through the program's
remap content check (``guard_events`` ``remap_divergence`` records), and
(c) left the simulated run **bit-identical** to the clean one: same
per-processor counters, same array contents (faults perturb moved data,
never charges; recovery is host-level).
"""

import numpy as np
import pytest

from repro.guard import FaultPlan
from repro.machine.stats import COUNTER_FIELDS
from repro.workloads import generate_mesh
from repro.workloads.rebalance import run_rebalance_campaign

N_PROCS = 4
EPOCHS = 2

#: the node decomposition carries x, y and the three coordinate arrays,
#: so one redistribution fires five remap-apply events; the first
#: *patched* remap apply of epoch 1 is therefore event 5
N_ALIGNED_ARRAYS = 5


@pytest.fixture(scope="module")
def mesh():
    return generate_mesh(300, seed=4)


def run_campaign(mesh, plan=None, incremental=True):
    machine, prog, moves = run_rebalance_campaign(
        mesh,
        N_PROCS,
        epochs=EPOCHS,
        sweeps=1,
        incremental=incremental,
        seed=5,
        guard="cheap",
        fault_plan=plan,
    )
    assert all(m > 0 for m in moves), "campaign must actually migrate elements"
    return machine, prog


def assert_same_simulated_state(m_clean, p_clean, m_fault, p_fault):
    for name in COUNTER_FIELDS:
        assert np.array_equal(
            getattr(m_clean.counters, name), getattr(m_fault.counters, name)
        ), name
    for aname in p_clean.arrays:
        assert np.array_equal(
            p_clean.arrays[aname].to_global(),
            p_fault.arrays[aname].to_global(),
        ), aname


@pytest.mark.parametrize(
    "fault",
    [
        # nth=0: first remap apply of the setup redistribution -- the
        # full build_remap_schedule path
        lambda p: p.corrupt_remap(nth=0),
        lambda p: p.drop_remap(nth=0, count=2),
        lambda p: p.duplicate_remap(nth=0),
        # nth=N_ALIGNED_ARRAYS: first apply of epoch 1's *patched*
        # remap schedule (patch_remap_schedule / repartition_stable)
        lambda p: p.corrupt_remap(nth=N_ALIGNED_ARRAYS),
        lambda p: p.drop_remap(nth=N_ALIGNED_ARRAYS, count=2),
        lambda p: p.duplicate_remap(nth=N_ALIGNED_ARRAYS),
    ],
    ids=[
        "corrupt-full",
        "drop-full",
        "duplicate-full",
        "corrupt-patched",
        "drop-patched",
        "duplicate-patched",
    ],
)
def test_remap_wire_fault_detected_and_recovered(mesh, fault):
    m_clean, p_clean = run_campaign(mesh)
    plan = fault(FaultPlan(seed=9))
    m_fault, p_fault = run_campaign(mesh, plan=plan)
    # the fault fired ...
    assert len(plan.fired) == 1
    assert not plan.pending()
    # ... was detected and repaired by the remap content check ...
    recoveries = [
        e for e in p_fault.guard_events if e["event"] == "remap_divergence"
    ]
    assert len(recoveries) == 1
    assert recoveries[0]["recovered"]
    assert recoveries[0]["n_bad"] >= 1
    # ... and the simulated run is bit-identical to the clean one
    assert_same_simulated_state(m_clean, p_clean, m_fault, p_fault)
    assert not [
        e for e in p_clean.guard_events if e["event"] == "remap_divergence"
    ]


def test_flip_remap_detected_and_recovered(mesh):
    """A desynchronized patched remap schedule is repaired everywhere.

    The flipped destination map is shared by every aligned array of the
    decomposition, so each array's apply scatters wrong -- the content
    check must catch and repair each one (arrays whose swapped values
    happen to be equal legitimately show no divergence).
    """
    m_clean, p_clean = run_campaign(mesh)
    plan = FaultPlan(seed=9).flip_remap(nth=0)
    m_fault, p_fault = run_campaign(mesh, plan=plan)
    assert [f["kind"] for f in plan.fired] == ["flip_remap"]
    recoveries = [
        e for e in p_fault.guard_events if e["event"] == "remap_divergence"
    ]
    assert 1 <= len(recoveries) <= N_ALIGNED_ARRAYS
    assert all(e["recovered"] for e in recoveries)
    assert_same_simulated_state(m_clean, p_clean, m_fault, p_fault)


def test_remap_fault_detected_even_with_guard_off(mesh):
    """An installed plan forces the remap content check at any level."""
    plan = FaultPlan(seed=9).corrupt_remap(nth=0)
    machine, prog, _ = run_rebalance_campaign(
        mesh, N_PROCS, epochs=1, sweeps=1, incremental=True, seed=5,
        guard="off", fault_plan=plan,
    )
    assert len(plan.fired) == 1
    events = [e for e in prog.guard_events if e["event"] == "remap_divergence"]
    assert [e["recovered"] for e in events] == [True]


def test_full_vs_incremental_still_bit_identical_under_faults(mesh):
    """The PR 7 contract survives fault recovery: both remap modes land
    on the same arrays even when each was faulted along the way."""
    plan_a = FaultPlan(seed=9).corrupt_remap(nth=N_ALIGNED_ARRAYS)
    _, p_full = run_campaign(mesh, plan=plan_a, incremental=False)
    plan_b = FaultPlan(seed=11).duplicate_remap(nth=N_ALIGNED_ARRAYS)
    _, p_inc = run_campaign(mesh, plan=plan_b, incremental=True)
    assert len(plan_a.fired) == 1 and len(plan_b.fired) == 1
    for aname in p_full.arrays:
        assert np.array_equal(
            p_full.arrays[aname].to_global(), p_inc.arrays[aname].to_global()
        ), aname
