"""The unstructured Euler solver edge-sweep template (the paper's loop L2).

"Sweep over edges: Loop L2 --
FORALL i = 1,N
  REDUCE (ADD, y(end_pt1(i)), f(x(end_pt1(i)), x(end_pt2(i))))
  REDUCE (ADD, y(end_pt2(i)), g(x(end_pt1(i)), x(end_pt2(i))))
END FORALL"

The flux functions stand in for the Euler solver's per-edge flux
computation; the modeled per-edge flop count (~40, set via
``EULER_FLUX_FLOPS``) reflects a real 3-D first-order flux kernel and is
what the simulated executor time is charged.
"""

from __future__ import annotations

import numpy as np

from repro.core.forall import ArrayRef, ForallLoop, Reduce
from repro.core.program import IrregularProgram
from repro.machine.machine import Machine
from repro.workloads.mesh import UnstructuredMesh

#: modeled flops per flux evaluation (per edge endpoint contribution)
EULER_FLUX_FLOPS = 20.0


def _flux_f(x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
    """Flux into end point 1: a smooth nonlinear pairwise function."""
    return 0.5 * (x1 * x1 - x2 * x2) + 0.1 * (x2 - x1)


def _flux_g(x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
    """Flux into end point 2 (antisymmetric counterpart plus dissipation)."""
    return 0.5 * (x2 * x2 - x1 * x1) + 0.1 * (x1 - x2)


def euler_flux_loop_statements() -> list[Reduce]:
    """The two REDUCE statements of loop L2 over end_pt1/end_pt2."""
    x1 = ArrayRef("x", "end_pt1")
    x2 = ArrayRef("x", "end_pt2")
    return [
        Reduce("add", ArrayRef("y", "end_pt1"), _flux_f, (x1, x2), flops=EULER_FLUX_FLOPS),
        Reduce("add", ArrayRef("y", "end_pt2"), _flux_g, (x1, x2), flops=EULER_FLUX_FLOPS),
    ]


def euler_edge_loop(mesh: UnstructuredMesh) -> ForallLoop:
    """Loop L2 instantiated for a mesh's edge count."""
    return ForallLoop("euler_edge_sweep", mesh.n_edges, euler_flux_loop_statements())


def setup_euler_program(
    machine: Machine,
    mesh: UnstructuredMesh,
    seed: int = 0,
    with_geometry: bool = True,
    **program_kwargs,
) -> IrregularProgram:
    """Declare the Figure 4 program state for a mesh.

    Creates decompositions ``reg`` (nodes) and ``reg2`` (edges); arrays
    ``x`` (state), ``y`` (residual), ``end_pt1``/``end_pt2`` (edge
    lists) and, when requested, coordinate arrays ``xc``/``yc``/``zc``
    aligned with the node decomposition for GEOMETRY-based partitioners.
    """
    rng = np.random.default_rng(seed)
    prog = IrregularProgram(machine, **program_kwargs)
    prog.decomposition("reg", mesh.n_nodes)
    prog.decomposition("reg2", mesh.n_edges)
    prog.distribute("reg", "block")
    prog.distribute("reg2", "block")
    prog.array("x", "reg", values=rng.normal(size=mesh.n_nodes))
    prog.array("y", "reg", values=np.zeros(mesh.n_nodes))
    prog.array("end_pt1", "reg2", values=mesh.edges[0], dtype=np.int64)
    prog.array("end_pt2", "reg2", values=mesh.edges[1], dtype=np.int64)
    if with_geometry:
        names = ["xc", "yc", "zc"][: mesh.ndim]
        for d, cname in enumerate(names):
            prog.array(cname, "reg", values=mesh.coords[d])
    return prog


def euler_sequential_reference(
    x: np.ndarray, edges: np.ndarray, n_times: int = 1, y0: np.ndarray | None = None
) -> np.ndarray:
    """Plain-NumPy reference sweep for validation."""
    y = np.zeros_like(x) if y0 is None else y0.copy()
    e1, e2 = edges
    for _ in range(n_times):
        np.add.at(y, e1, _flux_f(x[e1], x[e2]))
        np.add.at(y, e2, _flux_g(x[e1], x[e2]))
    return y
