"""Per-loop saved inspector state.

"Each time an inspector for L is carried out, we store the following
information: DAD(x_i) for each unique data array, DAD(ind_j) for each
unique indirection array, and last_mod(DAD(ind_j))." (Section 3.)

The record also keeps the inspector's *products* -- iteration partition,
communication schedules, ghost-buffer bindings -- because those are what
reuse actually saves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.dad import DAD


@dataclass
class InspectorRecord:
    """What loop L's last inspector saw and produced.

    Attributes
    ----------
    loop_name:
        The FORALL loop this record belongs to.
    data_dads:
        ``L.DAD(x_i)`` -- descriptor of each data array at inspection.
    ind_dads:
        ``L.DAD(ind_j)`` -- descriptor of each indirection array.
    ind_last_mod:
        ``L.last_mod(DAD(ind_j))`` -- the global timestamp each
        indirection array's DAD carried when the inspector ran.
    product:
        The saved inspector output (an
        :class:`~repro.core.inspector.InspectorProduct`); opaque here.
    """

    loop_name: str
    data_dads: dict[str, DAD]
    ind_dads: dict[str, DAD]
    ind_last_mod: dict[str, int]
    product: Any

    def tracked_arrays(self) -> set[str]:
        return set(self.data_dads) | set(self.ind_dads)
