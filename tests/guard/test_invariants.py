"""Invariant checkers: pass on healthy products, catch seeded corruption."""

import numpy as np
import pytest

from repro.guard import (
    InvariantViolation,
    check_level,
    content_checksum,
    gather_divergence,
    verify_adapt_state,
    verify_ghosts,
    verify_partition,
    verify_product,
    verify_schedule,
)
from repro.machine import Machine
from repro.workloads import generate_mesh
from repro.workloads.euler import euler_edge_loop, setup_euler_program


def build(n_procs=4, incremental=True, coalesce=True, **kwargs):
    mesh = generate_mesh(300, seed=4)
    machine = Machine(n_procs)
    prog = setup_euler_program(
        machine,
        mesh,
        seed=11,
        incremental=incremental,
        coalesce_patterns=coalesce,
        **kwargs,
    )
    prog.construct("G", mesh.n_nodes, geometry=["xc", "yc", "zc"])
    prog.set_distribution("fmt", "G", "RCB")
    prog.redistribute("reg", "fmt")
    loop = euler_edge_loop(mesh)
    return mesh, machine, prog, loop


def inspected(**kwargs):
    mesh, machine, prog, loop = build(**kwargs)
    prog.forall(loop, n_times=1)
    return mesh, prog, loop, prog.records[loop.name].product


class TestLevels:
    def test_valid_levels(self):
        for level in ("off", "cheap", "full"):
            assert check_level(level) == level

    def test_invalid_level(self):
        with pytest.raises(ValueError, match="guard level"):
            check_level("paranoid")

    def test_program_env_default(self, monkeypatch):
        from repro.core.program import IrregularProgram

        monkeypatch.setenv("REPRO_GUARD", "cheap")
        assert IrregularProgram(Machine(2)).guard == "cheap"
        monkeypatch.delenv("REPRO_GUARD")
        assert IrregularProgram(Machine(2)).guard == "off"
        assert IrregularProgram(Machine(2), guard="full").guard == "full"
        with pytest.raises(ValueError, match="guard level"):
            IrregularProgram(Machine(2), guard="nope")


class TestHealthyProducts:
    @pytest.mark.parametrize("coalesce", [True, False])
    def test_fresh_product_passes_full(self, coalesce):
        mesh, prog, loop, product = inspected(coalesce=coalesce)
        verify_product(product, prog.arrays, "full")
        verify_adapt_state(
            product, prog.adapt.states[loop.name], prog.arrays, "full"
        )

    def test_patched_product_passes_full(self):
        mesh, prog, loop, product = inspected()
        rng = np.random.default_rng(0)
        edges = mesh.edges.copy()
        pick = np.sort(rng.choice(mesh.n_edges, size=20, replace=False))
        edges[1, pick] = (edges[0, pick] + 1 + rng.integers(
            0, mesh.n_nodes - 1, pick.size
        )) % mesh.n_nodes
        prog.set_array_elements("end_pt2", pick, edges[1, pick])
        prog.forall(loop, n_times=1)
        assert prog.patch_hits == 1
        product = prog.records[loop.name].product
        verify_product(
            product, prog.arrays, "full", state=prog.adapt.states[loop.name]
        )

    def test_off_level_skips_everything(self):
        # an obviously broken object passes at level off (never inspected)
        verify_schedule(object(), "off")
        verify_ghosts(object(), level="off")
        verify_partition(object(), level="off")
        verify_product(object(), {}, "off")


class TestCorruptionDetected:
    def test_recv_slot_out_of_range(self):
        _, prog, _, product = inspected()
        pat = next(iter(product.patterns.values()))
        sched = pat.localized.schedule
        if not sched._flat_recv.size:
            pytest.skip("no ghosts on this configuration")
        # in-place corruption: construction-time validation can't see it
        sched._flat_recv[0] = max(sched.ghost_sizes) + 5
        with pytest.raises(InvariantViolation, match="recv slot"):
            verify_schedule(sched, "cheap")

    def test_non_canonical_pair_order(self):
        _, prog, _, product = inspected()
        pat = next(iter(product.patterns.values()))
        sched = pat.localized.schedule
        if sched._pair_q.size < 2:
            pytest.skip("needs at least two pairs")
        perm = np.arange(sched._pair_q.size)[::-1].copy()
        starts = np.concatenate(([0], np.cumsum(sched._pair_len)))
        order = np.concatenate(
            [np.arange(starts[i], starts[i + 1]) for i in perm]
        )
        sched._init_flat(
            sched._pair_q[perm],
            sched._pair_p[perm],
            sched._pair_len[perm],
            sched._flat_send[order],
            sched._flat_recv[order],
        )
        with pytest.raises(InvariantViolation, match="pair order"):
            verify_schedule(sched, "cheap", canonical=True)
        verify_schedule(sched, "cheap", canonical=False)

    def test_ghost_backing_size_mismatch(self):
        _, prog, _, product = inspected()
        pat = next(
            p for p in product.patterns.values() if p.ghosts.backing.size
        )
        pat.ghosts.backing = pat.ghosts.backing[:-1]
        with pytest.raises(InvariantViolation, match="backing"):
            verify_ghosts(pat.ghosts, pat.localized.schedule, "cheap")

    def test_partition_lost_iteration(self):
        _, prog, _, product = inspected()
        part = product.iteration_partition
        flat, _ = part.iters_flat()
        # the translation cache freezes its stored products; thaw to
        # simulate corruption of the shared storage
        flat.flags.writeable = True
        flat[0] = flat[1]  # duplicate one iteration, lose another
        verify_partition(part, level="cheap")  # structure still fine
        with pytest.raises(InvariantViolation, match="permutation"):
            verify_partition(part, level="full")

    def test_stale_distribution_signature(self):
        _, prog, loop, product = inspected()
        prog.redistribute("reg", "block")
        with pytest.raises(InvariantViolation, match="redistributed"):
            verify_product(product, prog.arrays, "cheap")

    def test_flipped_slots_caught_by_state_check(self):
        from repro.guard.faults import FaultPlan

        _, prog, loop, product = inspected()
        state = prog.adapt.states[loop.name]
        pat = next(iter(product.patterns.values()))
        assert FaultPlan._flip_schedule(pat.localized.schedule)
        with pytest.raises(InvariantViolation, match="slot map"):
            verify_adapt_state(product, state, prog.arrays, "cheap")

    def test_drifted_reference_counts_full_only(self):
        _, prog, loop, product = inspected()
        state = prog.adapt.states[loop.name]
        gstate = next(
            g for g in state.groups.values() if (g.counts > 0).any()
        )
        live = np.flatnonzero(gstate.counts > 0)
        gstate.counts[live[0]] += 1
        verify_adapt_state(product, state, prog.arrays, "cheap")
        with pytest.raises(InvariantViolation, match="counts drifted"):
            verify_adapt_state(product, state, prog.arrays, "full")


class TestContentChecks:
    def test_gather_divergence_detects_corruption(self):
        _, prog, _, product = inspected()
        key = next(k for k in product.patterns if k[0] == "x")
        pat = product.patterns[key]
        arr = prog.arrays["x"]
        assert gather_divergence(pat, arr).size == 0
        keys = np.asarray(pat.localized.ghost_flat)
        live = np.flatnonzero(keys >= 0)
        if not live.size:
            pytest.skip("no ghosts on this configuration")
        pat.ghosts.backing[live[0]] += 1.0
        bad = gather_divergence(pat, arr)
        assert np.array_equal(bad, live[:1])

    def test_content_checksum_cached_on_version(self):
        machine = Machine(2)
        from repro.distribution import BlockDistribution, DistArray

        arr = DistArray.from_global(
            machine, BlockDistribution(8, 2), np.arange(8.0)
        )
        c0 = content_checksum(arr)
        assert content_checksum(arr) == c0  # cache hit, same content
        arr.global_set(np.array([3]), np.array([99.0]))
        c1 = content_checksum(arr)
        assert c1 != c0
        assert content_checksum(np.arange(8.0)) == c0  # raw ndarray path
