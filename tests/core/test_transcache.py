"""Persistent translation cache: warm == cold, charges bit-identical.

Two oracles, both randomized over machine widths / distributions /
loop shapes:

* **product oracle** -- a warm (cache-hit) re-inspection's product is
  element-equal to the cold one: same iteration partition, same
  localized references, same ghost key sets, same wire order;
* **charge oracle** -- simulated machine counters after any sequence of
  inspections are bit-identical with the cache on and off (the replay
  mechanism re-issues the cold run's exact charge calls).

Plus one invalidation test per mutation path: ``set_array_elements``,
executor-style writes through local views, ``redistribute`` and the
incremental-patch flow.  Each must bump the relevant content version
so the next inspection misses (and is again correct).
"""

import numpy as np
import pytest

from repro.chaos.transcache import ChargeLog, TranslationCache
from repro.core import ArrayRef, ForallLoop, Reduce, run_executor, run_inspector
from repro.core.program import IrregularProgram
from repro.distribution import BlockDistribution, CyclicDistribution, DistArray
from repro.distribution.irregular import IrregularDistribution
from repro.machine import Machine
from repro.machine.stats import COUNTER_FIELDS


def counters_equal(m1: Machine, m2: Machine) -> bool:
    return all(
        np.array_equal(getattr(m1.counters, f), getattr(m2.counters, f))
        for f in COUNTER_FIELDS
    )


def random_setup(n_procs: int, seed: int, dist_kind: str = "block"):
    """Random x/y + two random indirections on a fresh machine."""
    rng = np.random.default_rng(seed)
    n_data = int(rng.integers(10, 60))
    n_iter = int(rng.integers(5, 80))
    m = Machine(n_procs)
    if dist_kind == "block":
        dist = BlockDistribution(n_data, n_procs)
    elif dist_kind == "cyclic":
        dist = CyclicDistribution(n_data, n_procs)
    else:
        dist = IrregularDistribution(
            rng.integers(0, n_procs, n_data), n_procs
        )
    idist = BlockDistribution(n_iter, n_procs)
    arrays = {
        "x": DistArray.from_global(m, dist, rng.normal(size=n_data), name="x"),
        "y": DistArray.from_global(m, dist, np.zeros(n_data), name="y"),
        "ia": DistArray.from_global(
            m, idist, rng.integers(0, n_data, n_iter), name="ia"
        ),
        "ib": DistArray.from_global(
            m, idist, rng.integers(0, n_data, n_iter), name="ib"
        ),
    }
    x1, x2 = ArrayRef("x", "ia"), ArrayRef("x", "ib")
    loop = ForallLoop(
        "L",
        n_iter,
        [
            Reduce("add", ArrayRef("y", "ia"), lambda a, b: a * b, (x1, x2), flops=2),
            Reduce("add", ArrayRef("y", "ib"), lambda a, b: a - b, (x1, x2), flops=2),
        ],
    )
    return m, arrays, loop


def assert_products_equal(a, b):
    """Element-equality of two InspectorProducts (same machine width)."""
    fa, ba = a.iteration_partition.iters_flat()
    fb, bb = b.iteration_partition.iters_flat()
    assert np.array_equal(fa, fb) and np.array_equal(ba, bb)
    assert set(a.patterns) == set(b.patterns)
    for key, pa in a.patterns.items():
        pb = b.patterns[key]
        la, lb = pa.localized, pb.localized
        for ga, gb in zip(la.ghost_globals, lb.ghost_globals):
            assert np.array_equal(ga, gb)
        for ra, rb in zip(la.local_refs, lb.local_refs):
            assert np.array_equal(ra, rb)
        sa, sb = la.schedule, lb.schedule
        assert np.array_equal(sa._flat_send, sb._flat_send)
        assert np.array_equal(sa._flat_recv, sb._flat_recv)


class TestWarmVsColdOracle:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("dist_kind", ["block", "cyclic", "irregular"])
    def test_warm_product_element_equal(self, seed, dist_kind):
        n_procs = int(np.random.default_rng(seed).choice([2, 4, 8]))
        m, arrays, loop = random_setup(n_procs, seed, dist_kind)
        cache = TranslationCache()
        cold = run_inspector(m, loop, arrays, cache=cache)
        assert cache.misses > 0
        before = cache.hits
        warm = run_inspector(m, loop, arrays, cache=cache)
        assert cache.hits > before
        assert_products_equal(cold, warm)

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("dist_kind", ["block", "irregular"])
    def test_charges_bit_identical_with_and_without(self, seed, dist_kind):
        n_procs = int(np.random.default_rng(seed + 99).choice([2, 4, 8]))
        m1, arrays1, loop = random_setup(n_procs, seed, dist_kind)
        m2, arrays2, _ = random_setup(n_procs, seed, dist_kind)
        cache = TranslationCache()
        for _ in range(3):
            p1 = run_inspector(m1, loop, arrays1, cache=cache)
            p2 = run_inspector(m2, loop, arrays2, cache=None)
            run_executor(m1, p1, arrays1)
            run_executor(m2, p2, arrays2)
        assert cache.hits > 0
        assert m1.elapsed() == m2.elapsed()
        assert counters_equal(m1, m2)

    def test_warm_executor_results_match(self):
        m, arrays, loop = random_setup(4, seed=3)
        cache = TranslationCache()
        p = run_inspector(m, loop, arrays, cache=cache)
        run_executor(m, p, arrays)
        want = arrays["y"].to_global()
        p2 = run_inspector(m, loop, arrays, cache=cache)
        run_executor(m, p2, arrays)
        # second sweep adds the same contributions again
        assert np.allclose(arrays["y"].to_global(), 2 * want)

    def test_sibling_arrays_share_localize_entry(self):
        # x(ia)/y(ia) over one distribution: the localize slot excludes
        # the data array's name, so the second pattern hits even within
        # a single cold inspection
        m, arrays, loop = random_setup(4, seed=11)
        cache = TranslationCache()
        run_inspector(m, loop, arrays, cache=cache, coalesce_patterns=False)
        assert cache.kind_hits.get("localize", 0) > 0


class TestChargeLog:
    def test_forwards_and_replays_identically(self):
        m1, m2, m3 = Machine(4), Machine(4), Machine(4)
        log = ChargeLog(m1)
        log.charge_compute_all(iops=np.array([1.0, 2.0, 3.0, 4.0]))
        log.exchange(src=np.array([0]), dst=np.array([2]), nbytes=np.array([64]))
        log.barrier()
        log.charge_compute(1, flops=7.0)
        # forwarding: m1 charged immediately
        assert m1.elapsed() > 0
        log.replay(m2)
        log.replay(m3)
        assert m1.elapsed() == m2.elapsed() == m3.elapsed()
        assert counters_equal(m1, m2) and counters_equal(m2, m3)


class TestInvalidation:
    """Every mutation path must produce a cache miss and a correct
    re-inspection (programs run the cache by default)."""

    def build_prog(self, n_procs=4, n_data=24, n_iter=30, seed=5, **kw):
        rng = np.random.default_rng(seed)
        m = Machine(n_procs)
        prog = IrregularProgram(m, **kw)
        prog.decomposition("d", n_data)
        prog.decomposition("d2", n_iter)
        prog.distribute("d", "block")
        prog.distribute("d2", "block")
        prog.array("x", "d", values=rng.normal(size=n_data))
        prog.array("y", "d", values=np.zeros(n_data))
        prog.array("ia", "d2", values=rng.integers(0, n_data, n_iter), dtype=np.int64)
        prog.array("ib", "d2", values=rng.integers(0, n_data, n_iter), dtype=np.int64)
        x1, x2 = ArrayRef("x", "ia"), ArrayRef("x", "ib")
        loop = ForallLoop(
            "L",
            n_iter,
            [
                Reduce("add", ArrayRef("y", "ia"), lambda a, b: a + b, (x1, x2), flops=1),
                Reduce("add", ArrayRef("y", "ib"), lambda a, b: a * b, (x1, x2), flops=1),
            ],
        )
        return prog, loop, rng

    def reference(self, prog, y0=None):
        x = prog.arrays["x"].to_global()
        ia = prog.arrays["ia"].to_global()
        ib = prog.arrays["ib"].to_global()
        y = np.zeros_like(x) if y0 is None else y0.copy()
        np.add.at(y, ia, x[ia] + x[ib])
        np.add.at(y, ib, x[ia] * x[ib])
        return y

    def test_translation_cache_off_opt_out(self):
        prog, _, _ = self.build_prog(translation_cache="off")
        assert prog.translation_cache is None
        with pytest.raises(ValueError, match="translation_cache"):
            self.build_prog(translation_cache="maybe")

    def test_set_array_elements_invalidates(self):
        prog, loop, rng = self.build_prog()
        prog.forall(loop, reuse=False)
        cache = prog.translation_cache
        misses0 = cache.misses
        prog.forall(loop, reuse=False)  # unchanged: pure hits
        assert cache.misses == misses0
        n_data = prog.arrays["x"].size
        prog.set_array_elements("ia", [2, 7], rng.integers(0, n_data, 2))
        prog.set_array("y", np.zeros(n_data))
        prog.forall(loop, reuse=False)
        assert cache.misses > misses0  # indirection content changed
        assert np.allclose(prog.arrays["y"].to_global(), self.reference(prog))

    def test_view_write_invalidates(self):
        prog, loop, rng = self.build_prog()
        prog.forall(loop, reuse=False)
        cache = prog.translation_cache
        misses0 = cache.misses
        # executor-style write through a local view bumps the version
        ia = prog.arrays["ia"]
        n_data = prog.arrays["x"].size
        v0 = ia.version
        ia.local(0)[0] = int(rng.integers(0, n_data))
        assert ia.version > v0
        prog.set_array("y", np.zeros(n_data))
        prog.forall(loop, reuse=False)
        assert cache.misses > misses0
        assert np.allclose(prog.arrays["y"].to_global(), self.reference(prog))

    def test_redistribute_invalidates(self):
        prog, loop, rng = self.build_prog()
        prog.forall(loop, reuse=False)
        cache = prog.translation_cache
        misses0 = cache.misses
        n_data = prog.arrays["x"].size
        owner_map = rng.integers(0, prog.machine.n_procs, n_data)
        prog.redistribute("d", IrregularDistribution(owner_map, prog.machine.n_procs))
        prog.set_array("y", np.zeros(n_data))
        prog.forall(loop, reuse=False)
        assert cache.misses > misses0  # distribution signature changed
        assert np.allclose(prog.arrays["y"].to_global(), self.reference(prog))

    def test_patched_schedules_bit_identical(self):
        # incremental patching with the shared cache == without any cache
        results = []
        for mode in ("on", "off"):
            prog, loop, rng = self.build_prog(
                seed=9, incremental=True, translation_cache=mode
            )
            prog.forall(loop)
            n_data = prog.arrays["x"].size
            mut = np.random.default_rng(17)
            for _ in range(3):
                prog.set_array_elements(
                    "ia", mut.integers(0, 30, 3), mut.integers(0, n_data, 3)
                )
                prog.forall(loop)
            results.append(
                (prog.machine.elapsed(), prog.patch_hits, prog.arrays["y"].to_global())
            )
        (e1, h1, y1), (e2, h2, y2) = results
        assert h1 > 0  # the patch path actually ran
        assert e1 == e2 and h1 == h2
        assert np.array_equal(y1, y2)

    def test_cache_is_bounded_per_slot(self):
        # repeated mutation replaces entries in place instead of growing
        prog, loop, rng = self.build_prog()
        cache = prog.translation_cache
        prog.forall(loop, reuse=False)
        size0 = len(cache)
        n_data = prog.arrays["x"].size
        for _ in range(5):
            prog.set_array_elements("ia", [1], rng.integers(0, n_data, 1))
            prog.forall(loop, reuse=False)
        assert len(cache) == size0
        stats = cache.stats()
        assert stats["entries"] == size0
        assert stats["hits"] == cache.hits and stats["misses"] == cache.misses
