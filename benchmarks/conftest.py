"""Shared benchmark fixtures.

Every table bench renders its paper-style table, prints it (visible with
``pytest -s``) and writes it under ``benchmarks/out/`` so the text
survives pytest's output capture; EXPERIMENTS.md records a reference
run.  Simulated times are deterministic, so pytest-benchmark's wall
times only measure the *simulation's* Python cost.
"""

import os

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


@pytest.fixture
def report():
    """report(name, text): print a rendered table and persist it."""

    def _report(name: str, text: str) -> None:
        os.makedirs(OUT_DIR, exist_ok=True)
        path = os.path.join(OUT_DIR, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _report


def run_once(benchmark, fn):
    """Run a seconds-scale harness exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
