"""Abstract distribution: global index -> (owner, local offset).

All index maps are vectorized over NumPy integer arrays; scalar ints work
too and return NumPy scalars.  Implementations must satisfy, for every
global index g and processor p:

    owner(g) in [0, n_procs)
    local_index(g) in [0, local_size(owner(g)))
    global_index(owner(g), local_index(g)) == g          (bijectivity)
    sum_p local_size(p) == size

The property-based tests in ``tests/distribution`` enforce these on every
concrete distribution.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class Distribution(ABC):
    """Mapping of a 1-D global index space onto processor memories."""

    #: short lowercase tag used by data access descriptors ("block", ...)
    kind: str = "abstract"

    def __init__(self, size: int, n_procs: int):
        if size < 0:
            raise ValueError(f"negative array size {size}")
        if n_procs < 1:
            raise ValueError(f"need at least one processor, got {n_procs}")
        self.size = int(size)
        self.n_procs = int(n_procs)
        self._flat_offsets: np.ndarray | None = None
        self._global_perm: np.ndarray | None = None
        self._global_perm_inv: np.ndarray | None = None

    # -- required ---------------------------------------------------------
    @abstractmethod
    def owner(self, gidx):
        """Owning processor of each global index."""

    @abstractmethod
    def local_index(self, gidx):
        """Offset of each global index within its owner's local segment."""

    @abstractmethod
    def global_index(self, p: int, lidx):
        """Global index of local offset ``lidx`` on processor ``p``."""

    @abstractmethod
    def local_size(self, p: int) -> int:
        """Number of elements stored on processor ``p``."""

    # -- derived ------------------------------------------------------------
    def translate(self, gidx) -> tuple[np.ndarray, np.ndarray]:
        """``(owner, local offset)`` of each global index in one call.

        The single entry point hot translation paths (translation
        tables) use: the index stream is range-validated exactly once
        here, then handed to the kind-specific
        :meth:`_translate_checked`.  Subclasses customize only that
        hook; before PR 9 each irregular kind re-implemented the whole
        method (and the generic path validated twice, once per lookup).
        """
        return self._translate_checked(self._check_gidx(gidx))

    def _translate_checked(self, g: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Translate an already-validated int64 index array.

        Generic fallback: delegate to the two public lookups (each
        re-validates; cheap for closed-form kinds, which override this
        with the shared-validation arithmetic)."""
        return (
            np.asarray(self.owner(g), dtype=np.int64),
            np.asarray(self.local_index(g), dtype=np.int64),
        )

    def local_indices(self, p: int) -> np.ndarray:
        """Global indices owned by processor ``p``, in local-offset order."""
        self._check_proc(p)
        n = self.local_size(p)
        return np.asarray(self.global_index(p, np.arange(n, dtype=np.int64)))

    def owner_map(self) -> np.ndarray:
        """Dense owner array of length ``size`` (for tests and GeoCoL)."""
        return np.asarray(self.owner(np.arange(self.size, dtype=np.int64)))

    def local_sizes(self) -> np.ndarray:
        """Per-processor element counts as one int64 array.

        The generic implementation counts the owner map; regular
        distributions override it with closed-form arithmetic so hot
        paths never loop ``local_size`` over processors.
        """
        if not self.size:
            return np.zeros(self.n_procs, dtype=np.int64)
        return np.bincount(self.owner_map(), minlength=self.n_procs).astype(np.int64)

    def flat_offsets(self) -> np.ndarray:
        """CSR bounds of the flat segmented layout: element ``(p, l)`` of
        the concatenated per-processor storage lives at flat position
        ``flat_offsets()[p] + l``.  Cached, read-only, shape ``(P + 1,)``.
        """
        if self._flat_offsets is None:
            off = np.zeros(self.n_procs + 1, dtype=np.int64)
            np.cumsum(self.local_sizes(), out=off[1:])
            off.flags.writeable = False
            self._flat_offsets = off
        return self._flat_offsets

    def global_perm(self) -> np.ndarray:
        """Concatenated ``local_indices`` of all processors (cached).

        ``global_perm()[s]`` is the global index stored at flat slot
        ``s`` of the segmented layout, so scattering ``out[perm] = flat``
        assembles the global array.  Regular distributions override
        :meth:`_build_global_perm` with closed-form constructions; the
        irregular distribution stores the permutation at build time.
        The returned array is cached and read-only.
        """
        if self._global_perm is None:
            perm = np.ascontiguousarray(self._build_global_perm(), dtype=np.int64)
            perm.flags.writeable = False
            self._global_perm = perm
        return self._global_perm

    def global_perm_inverse(self) -> np.ndarray:
        """Inverse of :meth:`global_perm`: flat slot of each global index
        (``inv[g] == flat_offsets()[owner(g)] + local_index(g)``), so
        gathering ``flat[inv]`` assembles the global array.  Cached,
        read-only."""
        if self._global_perm_inv is None:
            inv = self._build_global_perm_inverse()
            inv = np.ascontiguousarray(inv, dtype=np.int64)
            inv.flags.writeable = False
            self._global_perm_inv = inv
        return self._global_perm_inv

    def global_perm_is_identity(self) -> bool:
        """True when flat (segmented) order equals global order, letting
        callers skip the permutation entirely (BLOCK distributions)."""
        return False

    def _build_global_perm(self) -> np.ndarray:
        # generic: honor whatever local-offset order global_index defines
        if not self.size:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(
            [self.local_indices(p) for p in range(self.n_procs)]
        )

    def _build_global_perm_inverse(self) -> np.ndarray:
        inv = np.empty(self.size, dtype=np.int64)
        inv[self.global_perm()] = np.arange(self.size, dtype=np.int64)
        return inv

    def signature(self) -> tuple:
        """Hashable identity used by data access descriptors.

        Two distributions with equal signatures place every element
        identically.  Regular distributions are summarized by their
        parameters; the irregular distribution includes a content hash of
        its owner map (see ``IrregularDistribution.signature``).
        """
        return (self.kind, self.size, self.n_procs)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Distribution) and self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())

    # -- helpers ------------------------------------------------------------
    def _check_proc(self, p: int) -> None:
        if not 0 <= p < self.n_procs:
            raise ValueError(f"processor id {p} out of range [0, {self.n_procs})")

    def _check_gidx(self, gidx) -> np.ndarray:
        g = np.asarray(gidx, dtype=np.int64)
        if g.size and (g.min() < 0 or g.max() >= self.size):
            bad = g[(g < 0) | (g >= self.size)][0]
            raise IndexError(
                f"global index {bad} out of range [0, {self.size})"
            )
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(size={self.size}, n_procs={self.n_procs})"
        )
