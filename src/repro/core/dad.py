"""Data access descriptors (DADs).

"A data access descriptor (DAD) for a distributed array contains (among
other things) the current distribution type of the array (e.g. block,
cyclic, irregular) and the size of the array." (Section 3.)

Identity is by *content*: two arrays distributed identically share a DAD,
which is exactly what lets the registry track "any array with a given
DAD".  Remapping an array changes its distribution's signature and hence
its DAD -- the reuse check sees a different descriptor and re-inspects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.distribution.distarray import DistArray


@dataclass(frozen=True)
class DAD:
    """Descriptor of how one distributed array is currently laid out."""

    kind: str
    size: int
    signature: tuple = field(compare=True)

    @classmethod
    def of(cls, arr: "DistArray") -> "DAD":
        """The DAD of a distributed array's current distribution."""
        dist = arr.distribution
        return cls(kind=dist.kind, size=dist.size, signature=dist.signature())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DAD({self.kind}, n={self.size})"
