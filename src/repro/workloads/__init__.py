"""Workload generators standing in for the paper's applications.

The paper times loops extracted from two real codes we cannot obtain:

* a 3-D unstructured-mesh Euler solver (Mavriplis) at 10K and 53K mesh
  points -- replaced by synthetic Delaunay tetrahedral meshes with
  randomized node numbering and the same edge-sweep loop structure
  (:mod:`~repro.workloads.mesh`, :mod:`~repro.workloads.euler`);
* the CHARMM 648-atom water-box electrostatic force loop -- replaced by
  a synthetic 216-molecule water box with a cutoff pair list and a
  Coulomb force sweep (:mod:`~repro.workloads.md`).

A CSR sparse-matrix-vector workload (:mod:`~repro.workloads.sparse`)
exercises the same machinery on the paper's third motivating domain
(sparse linear solvers).

``scale_config`` maps the ``REPRO_SCALE`` environment variable to
problem sizes: ``small`` (CI-friendly, default) or ``paper``
(10K / 53K mesh points, full pair list).
"""

import os
from dataclasses import dataclass

from repro.workloads.mesh import (
    UnstructuredMesh,
    clear_mesh_cache,
    edges_from_simplices,
    generate_mesh,
)
from repro.workloads.euler import (
    euler_edge_loop,
    euler_flux_loop_statements,
    setup_euler_program,
    euler_sequential_reference,
)
from repro.workloads.md import (
    water_box,
    pair_list,
    md_force_loop,
    setup_md_program,
    md_sequential_reference,
)
from repro.workloads.sparse import (
    random_sparse_csr,
    spmv_loop,
    setup_spmv_program,
    spmv_sequential_reference,
)
from repro.workloads.adaptive import (
    EdgeUpdate,
    RefinementSchedule,
    apply_adaptation,
    build_refinement_schedule,
    refine_edges,
)
from repro.workloads.rebalance import (
    drifting_weights,
    rebalance_moves,
    run_rebalance_campaign,
    setup_rebalance_program,
)


@dataclass(frozen=True)
class ScaleConfig:
    """Problem sizes for one benchmark scale."""

    name: str
    mesh_small: int
    mesh_large: int
    md_atoms: int
    sweep_iterations: int


_SCALES = {
    "tiny": ScaleConfig(
        name="tiny", mesh_small=200, mesh_large=400, md_atoms=162, sweep_iterations=10
    ),
    "small": ScaleConfig(
        name="small", mesh_small=1200, mesh_large=4000, md_atoms=648, sweep_iterations=100
    ),
    "medium": ScaleConfig(
        name="medium", mesh_small=4000, mesh_large=12000, md_atoms=648, sweep_iterations=100
    ),
    "paper": ScaleConfig(
        name="paper", mesh_small=10000, mesh_large=53000, md_atoms=648, sweep_iterations=100
    ),
}


def scale_config(name: str | None = None) -> ScaleConfig:
    """Resolve a scale by name or the REPRO_SCALE environment variable."""
    key = (name or os.environ.get("REPRO_SCALE", "small")).lower()
    try:
        return _SCALES[key]
    except KeyError:
        raise ValueError(
            f"unknown scale {key!r}; choose from {sorted(_SCALES)}"
        ) from None


__all__ = [
    "UnstructuredMesh",
    "clear_mesh_cache",
    "generate_mesh",
    "edges_from_simplices",
    "euler_edge_loop",
    "euler_flux_loop_statements",
    "setup_euler_program",
    "euler_sequential_reference",
    "water_box",
    "pair_list",
    "md_force_loop",
    "setup_md_program",
    "md_sequential_reference",
    "random_sparse_csr",
    "spmv_loop",
    "setup_spmv_program",
    "spmv_sequential_reference",
    "EdgeUpdate",
    "RefinementSchedule",
    "apply_adaptation",
    "build_refinement_schedule",
    "refine_edges",
    "drifting_weights",
    "rebalance_moves",
    "run_rebalance_campaign",
    "setup_rebalance_program",
    "ScaleConfig",
    "scale_config",
]
