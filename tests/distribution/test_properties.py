"""Property-based invariants every distribution must satisfy."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.distribution import (
    BlockCyclicDistribution,
    BlockDistribution,
    CyclicDistribution,
    IrregularDistribution,
)


@st.composite
def distributions(draw):
    size = draw(st.integers(min_value=0, max_value=200))
    n_procs = draw(st.integers(min_value=1, max_value=9))
    kind = draw(st.sampled_from(["block", "cyclic", "block_cyclic", "irregular"]))
    if kind == "block":
        return BlockDistribution(size, n_procs)
    if kind == "cyclic":
        return CyclicDistribution(size, n_procs)
    if kind == "block_cyclic":
        block = draw(st.integers(min_value=1, max_value=7))
        return BlockCyclicDistribution(size, n_procs, block)
    owners = draw(
        st.lists(
            st.integers(min_value=0, max_value=n_procs - 1),
            min_size=size,
            max_size=size,
        )
    )
    return IrregularDistribution(np.asarray(owners, dtype=np.int64), n_procs)


@given(distributions())
@settings(max_examples=120)
def test_sizes_partition_the_index_space(d):
    assert sum(d.local_size(p) for p in range(d.n_procs)) == d.size


@given(distributions())
@settings(max_examples=120)
def test_owner_local_global_bijection(d):
    g = np.arange(d.size, dtype=np.int64)
    owners = np.asarray(d.owner(g))
    lidx = np.asarray(d.local_index(g))
    assert owners.min(initial=0) >= 0
    assert owners.max(initial=0) <= d.n_procs - 1 or d.size == 0
    for p in range(d.n_procs):
        mine = g[owners == p]
        lmine = lidx[owners == p]
        n = d.local_size(p)
        assert mine.size == n
        if n:
            # local indices are exactly 0..n-1, each once
            assert sorted(lmine.tolist()) == list(range(n))
            back = np.asarray(d.global_index(p, lmine))
            assert np.array_equal(back, mine)


@given(distributions())
@settings(max_examples=120)
def test_local_indices_consistent_with_owner(d):
    for p in range(d.n_procs):
        gl = d.local_indices(p)
        if gl.size:
            assert np.all(np.asarray(d.owner(gl)) == p)
            # local_indices is ordered by local offset
            assert np.array_equal(
                np.asarray(d.local_index(gl)), np.arange(gl.size)
            )


@given(distributions())
@settings(max_examples=60)
def test_owner_map_matches_elementwise(d):
    om = d.owner_map()
    assert om.size == d.size
    for g in range(0, d.size, max(1, d.size // 7)):
        assert om[g] == int(d.owner(g))
