"""Versioned checkpoint/restore for long adaptive campaigns.

A checkpoint captures everything a mid-campaign
:class:`~repro.adapt.driver.AdaptiveExecutor` run needs to continue
**bit-identically** with an uninterrupted one:

* the machine's counters (per-processor clocks, message/byte/op tallies)
  and its phase records,
* every distributed array's flat backing (validated against the live
  distribution signature on restore),
* the modification registry (``nmod``, ``last_mod``, the per-DAD dirty
  event log),
* the saved inspector records with their products -- iteration
  partitions, localized reference lists, communication schedules and
  ghost buffers, serialized in flat-array form through a *unique-object
  table* so that schedules/buffers shared between coalesced patterns
  come back as shared objects (pattern grouping and executor
  deduplication key on identity),
* the incremental-inspection state (snapshots, slot bookkeeping, the
  escalation ladder's failure counters and fallback log), and
* the driver's per-step history.

Two things are deliberately *not* serialized:

* **loops** -- :class:`~repro.core.forall.ForallLoop` holds user
  callables; the caller re-binds them by name through the ``loops``
  mapping of :func:`restore_checkpoint`, and
* **translation tables** -- they are pure functions of (distribution,
  costs, variant); restore rebuilds the cached ones against a scratch
  machine so the (already-checkpointed) construction charges are not
  applied twice, then rebinds them to the live machine.

The file format is an envelope ``{"format", "version", "crc",
"payload"}`` where ``payload`` is a pickled plain-data dict and ``crc``
is its CRC-32; :class:`~repro.guard.errors.CheckpointError` is raised on
a truncated/corrupted file, a version mismatch, or a shape mismatch with
the program being restored (machine size, array set, distribution
signatures).

Scope: the campaign path (``forall`` / array writes / incremental
patching).  Mapper-coupling state (GeoCoL graphs, partitioner results)
is not captured -- re-running ``construct``/``set_distribution`` after a
restore is not supported.
"""

from __future__ import annotations

import os
import pickle
import zlib

import numpy as np

from repro.chaos.buffers import GhostBuffers
from repro.chaos.schedule import CommSchedule
from repro.chaos.ttable import (
    DistributedTranslationTable,
    RegularTranslationTable,
    ReplicatedTranslationTable,
    build_translation_table,
)
from repro.core.dad import DAD
from repro.core.inspector import InspectorProduct, PatternData
from repro.core.iteration import IterationPartition
from repro.core.records import InspectorRecord
from repro.chaos.localize import LocalizeResult
from repro.guard.errors import CheckpointError
from repro.machine.machine import Machine
from repro.machine.stats import COUNTER_FIELDS, CounterBlock, PhaseRecord

_FORMAT = "repro-checkpoint"
_VERSION = 1


def previous_checkpoint_path(path) -> str:
    """Where :func:`save_checkpoint` rotates the prior checkpoint to.

    Every save keeps exactly one generation of history: the file that
    was at ``path`` before the save lives on at ``<path>.prev``, so a
    crash mid-write (or later corruption of the primary) never destroys
    the last good checkpoint.
    """
    return f"{os.fspath(path)}.prev"

_TTABLE_VARIANTS = {
    RegularTranslationTable: "regular",
    ReplicatedTranslationTable: "replicated",
    DistributedTranslationTable: "distributed",
}


# ----------------------------------------------------------------------
# capture
# ----------------------------------------------------------------------
def _counters_payload(block: CounterBlock) -> dict:
    return {name: getattr(block, name).copy() for name in COUNTER_FIELDS}


def _machine_payload(machine: Machine) -> dict:
    phases = []
    for rec in machine.stats.phases:
        if rec.arrays is not None:
            counters = _counters_payload(rec.arrays)
        else:  # legacy per-proc record: re-pack into arrays form
            block = CounterBlock(machine.n_procs)
            for p, s in enumerate(rec.per_proc):
                for name in COUNTER_FIELDS:
                    getattr(block, name)[p] = getattr(s, name)
            counters = _counters_payload(block)
        phases.append(
            {"name": rec.name, "elapsed": rec.elapsed, "counters": counters}
        )
    return {"counters": _counters_payload(machine.counters), "phases": phases}


def _dad_payload(dad: DAD) -> tuple:
    return (dad.kind, dad.size, dad.signature)


def _registry_payload(registry) -> dict:
    return {
        "nmod": registry.nmod,
        "last_mod": dict(registry._last_mod),
        "events": {
            sig: [
                (stamp, None if ranges is None else ranges.copy())
                for stamp, ranges in events
            ]
            for sig, events in registry._events.items()
        },
    }


def _schedule_payload(sched: CommSchedule) -> dict:
    return {
        "dist_signature": sched.dist_signature,
        "pair_q": sched._pair_q.copy(),
        "pair_p": sched._pair_p.copy(),
        "pair_len": sched._pair_len.copy(),
        "flat_send": sched._flat_send.copy(),
        "flat_recv": sched._flat_recv.copy(),
        "ghost_sizes": list(sched.ghost_sizes),
    }


def _product_payload(
    product: InspectorProduct, schedules: dict, ghosts: dict
) -> dict:
    part = product.iteration_partition
    flat, bounds = part.iters_flat()
    patterns = []
    for key, pat in product.patterns.items():
        sid = id(pat.localized.schedule)
        if sid not in schedules:
            schedules[sid] = _schedule_payload(pat.localized.schedule)
        gid = id(pat.ghosts)
        if gid not in ghosts:
            ghosts[gid] = {
                "schedule": id(pat.ghosts.schedule),
                "dtype": pat.ghosts.dtype.str,
                "backing": pat.ghosts.backing.copy(),
            }
        loc = pat.localized
        patterns.append(
            (
                key,
                {
                    "array": pat.array,
                    "index": pat.index,
                    "schedule": sid,
                    "ghosts": gid,
                    "local_sizes": np.asarray(loc.local_sizes, dtype=np.int64),
                    "refs_flat": loc.refs_flat.copy(),
                    "ref_bounds": loc.ref_bounds.copy(),
                    "ghost_flat": loc.ghost_flat.copy(),
                    "ghost_bounds": loc.ghost_bounds.copy(),
                },
            )
        )
    return {
        "loop": product.loop.name,
        "partition": {
            "n_iterations": part.n_iterations,
            "method": part.method,
            "flat": flat.copy(),
            "bounds": bounds.copy(),
        },
        "patterns": patterns,
        "dist_signatures": dict(product.dist_signatures),
    }


def _adapt_payload(adapt) -> dict:
    states = {}
    for name, state in adapt.states.items():
        groups = []
        for gkey, g in state.groups.items():
            groups.append(
                (
                    gkey,
                    {
                        "array": g.array,
                        "indexes": g.indexes,
                        "slot_bounds": g.slot_bounds.copy(),
                        "keys": g.keys.copy(),
                        "owners": g.owners.copy(),
                        "lidx": g.lidx.copy(),
                        "counts": g.counts.copy(),
                    },
                )
            )
        states[name] = {
            "home": state.home.copy(),
            "snapshots": {k: v.copy() for k, v in state.snapshots.items()},
            "groups": groups,
        }
    return {
        "max_change_fraction": adapt.max_change_fraction,
        "max_failures": adapt.max_failures,
        "states": states,
        "failures": dict(adapt.failures),
        "disabled": sorted(adapt.disabled),
        "fallback_log": [dict(rec) for rec in adapt.fallback_log],
    }


def save_checkpoint(path, program, driver=None) -> None:
    """Serialize ``program`` (and optionally an AdaptiveExecutor) to ``path``.

    The file is versioned and CRC-protected; :func:`restore_checkpoint`
    refuses anything damaged or shape-incompatible.  Nothing is charged
    to the simulated machine.

    The write is crash-safe: the envelope lands in a temporary file that
    is atomically renamed into place, and the previous checkpoint (if
    any) is first rotated to ``<path>.prev`` -- a kill at any instant
    leaves either the old checkpoint, the old one at ``.prev`` plus the
    new one, or (worst case, between the two renames) the old one only
    at ``.prev``, where :meth:`~repro.adapt.driver.AdaptiveExecutor.resume`
    still finds it.
    """
    machine = program.machine
    schedules: dict[int, dict] = {}
    ghost_bufs: dict[int, dict] = {}
    records = {}
    for name, rec in program.records.items():
        records[name] = {
            "data_dads": {k: _dad_payload(d) for k, d in rec.data_dads.items()},
            "ind_dads": {k: _dad_payload(d) for k, d in rec.ind_dads.items()},
            "ind_last_mod": dict(rec.ind_last_mod),
            "product": _product_payload(rec.product, schedules, ghost_bufs),
        }
    ttables = []
    for (aname, sig), tt in program.ttables.items():
        variant = _TTABLE_VARIANTS.get(type(tt))
        if variant is not None:
            ttables.append((aname, sig, variant))
    payload = {
        "n_procs": machine.n_procs,
        "machine": _machine_payload(machine),
        "arrays": {
            name: {
                "signature": arr.distribution.signature(),
                "dtype": arr.dtype.str,
                "backing": arr.backing_ro.copy(),
            }
            for name, arr in program.arrays.items()
        },
        "registry": _registry_payload(program.registry),
        "program": {
            "inspector_runs": program.inspector_runs,
            "reuse_hits": program.reuse_hits,
            "patch_hits": program.patch_hits,
            "geocol_reuse_hits": program.geocol_reuse_hits,
            "indirection_dads": sorted(program._indirection_dads),
            "guard_events": [dict(e) for e in program.guard_events],
        },
        "schedules": schedules,
        "ghosts": ghost_bufs,
        "records": records,
        "ttables": ttables,
        "adapt": None if program.adapt is None else _adapt_payload(program.adapt),
        "driver": None if driver is None else {"history": list(driver.history)},
    }
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    envelope = {
        "format": _FORMAT,
        "version": _VERSION,
        "crc": zlib.crc32(blob),
        "payload": blob,
    }
    path = os.fspath(path)
    tmp = f"{path}.tmp{os.getpid()}"
    try:
        with open(tmp, "wb") as f:
            pickle.dump(envelope, f, protocol=pickle.HIGHEST_PROTOCOL)
        if os.path.exists(path):
            os.replace(path, previous_checkpoint_path(path))
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.remove(tmp)


# ----------------------------------------------------------------------
# load / restore
# ----------------------------------------------------------------------
def load_checkpoint(path) -> dict:
    """Read and validate a checkpoint file; returns the payload dict.

    Raises :class:`CheckpointError` on a damaged or unrecognized file.
    """
    try:
        with open(path, "rb") as f:
            envelope = pickle.load(f)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError) as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if not isinstance(envelope, dict) or envelope.get("format") != _FORMAT:
        raise CheckpointError(f"{path} is not a repro checkpoint file")
    if envelope.get("version") != _VERSION:
        raise CheckpointError(
            f"checkpoint version {envelope.get('version')!r} unsupported "
            f"(expected {_VERSION})"
        )
    blob = envelope.get("payload")
    if not isinstance(blob, bytes) or zlib.crc32(blob) != envelope.get("crc"):
        raise CheckpointError(f"checkpoint {path} failed its CRC check")
    return pickle.loads(blob)


def _restore_machine(machine: Machine, payload: dict) -> None:
    for name in COUNTER_FIELDS:
        getattr(machine.counters, name)[:] = payload["counters"][name]
    machine.stats.clear()
    for rec in payload["phases"]:
        block = CounterBlock(machine.n_procs)
        for name in COUNTER_FIELDS:
            getattr(block, name)[:] = rec["counters"][name]
        machine.stats.add(
            PhaseRecord(name=rec["name"], elapsed=rec["elapsed"], arrays=block)
        )


def _restore_arrays(program, payload: dict) -> None:
    # validate everything first: a mismatch must leave the program untouched
    for name, saved in payload.items():
        arr = program.arrays.get(name)
        if arr is None:
            raise CheckpointError(
                f"checkpointed array {name!r} does not exist in this program"
            )
        if arr.distribution.signature() != saved["signature"]:
            raise CheckpointError(
                f"array {name!r} has a different distribution than the "
                "checkpoint (remap the program identically before resuming)"
            )
        if arr.dtype.str != saved["dtype"]:
            raise CheckpointError(
                f"array {name!r} has dtype {arr.dtype}, checkpoint has "
                f"{saved['dtype']}"
            )
    for name, saved in payload.items():
        program.arrays[name].backing_mut()[:] = saved["backing"]


def _restore_registry(registry, payload: dict) -> None:
    registry.nmod = payload["nmod"]
    registry._last_mod = dict(payload["last_mod"])
    registry._events = {
        sig: [
            (stamp, None if ranges is None else ranges.copy())
            for stamp, ranges in events
        ]
        for sig, events in payload["events"].items()
    }


def _build_dad(t: tuple) -> DAD:
    return DAD(kind=t[0], size=t[1], signature=t[2])


def _restore_products(program, payload: dict, loops: dict) -> dict:
    """Rebuild records/schedules/ghosts; returns the record dict."""
    machine = program.machine
    sched_by_id = {
        sid: CommSchedule.from_flat(
            machine,
            s["dist_signature"],
            s["pair_q"],
            s["pair_p"],
            s["pair_len"],
            s["flat_send"],
            s["flat_recv"],
            s["ghost_sizes"],
            costs=program.costs,
        )
        for sid, s in payload["schedules"].items()
    }
    ghosts_by_id = {}
    for gid, g in payload["ghosts"].items():
        buf = GhostBuffers(
            machine,
            sched_by_id[g["schedule"]],
            dtype=np.dtype(g["dtype"]),
            charge=False,
        )
        if buf.backing.size != g["backing"].size:
            raise CheckpointError(
                "ghost backing size disagrees with its schedule "
                f"({buf.backing.size} != {g['backing'].size})"
            )
        buf.backing[:] = g["backing"]
        ghosts_by_id[gid] = buf
    records = {}
    for name, rec in payload["records"].items():
        prod = rec["product"]
        loop = loops.get(prod["loop"])
        if loop is None:
            raise CheckpointError(
                f"checkpoint references loop {prod['loop']!r}; pass it in "
                "the loops mapping (loops hold callables and are re-bound, "
                "not serialized)"
            )
        part_p = prod["partition"]
        flat = part_p["flat"]
        bounds = part_p["bounds"]
        part = IterationPartition(
            n_iterations=part_p["n_iterations"],
            iters=[
                flat[bounds[p] : bounds[p + 1]] for p in range(bounds.size - 1)
            ],
            method=part_p["method"],
            flat=flat,
            bounds=bounds,
        )
        patterns = {}
        for key, pat in prod["patterns"]:
            loc = LocalizeResult(
                local_sizes=pat["local_sizes"],
                schedule=sched_by_id[pat["schedule"]],
                refs_flat=pat["refs_flat"],
                ref_bounds=pat["ref_bounds"],
                ghost_flat=pat["ghost_flat"],
                ghost_bounds=pat["ghost_bounds"],
            )
            patterns[key] = PatternData(
                array=pat["array"],
                index=pat["index"],
                localized=loc,
                ghosts=ghosts_by_id[pat["ghosts"]],
            )
        records[name] = InspectorRecord(
            loop_name=name,
            data_dads={k: _build_dad(t) for k, t in rec["data_dads"].items()},
            ind_dads={k: _build_dad(t) for k, t in rec["ind_dads"].items()},
            ind_last_mod=dict(rec["ind_last_mod"]),
            product=InspectorProduct(
                loop=loop,
                iteration_partition=part,
                patterns=patterns,
                dist_signatures=dict(prod["dist_signatures"]),
            ),
        )
    return records


def _restore_ttables(program, payload: list) -> None:
    """Rebuild cached translation tables without re-charging construction.

    Tables are pure functions of (distribution, costs, variant); their
    build cost was charged before the checkpoint and lives in the
    restored counters, so the rebuild runs against a scratch machine and
    only the finished table is bound to the live one.
    """
    program.ttables.clear()
    scratch = Machine(program.machine.n_procs)
    for aname, sig, variant in payload:
        arr = program.arrays.get(aname)
        if arr is None or arr.distribution.signature() != sig:
            continue  # table for a distribution this program no longer has
        tt = build_translation_table(
            scratch, arr.distribution, program.costs, variant
        )
        tt.machine = program.machine
        program.ttables[(aname, sig)] = tt


def _restore_adapt(adapt, payload: dict) -> None:
    from repro.adapt.state import GroupState, LoopAdaptState

    adapt.max_change_fraction = payload["max_change_fraction"]
    adapt.max_failures = payload["max_failures"]
    adapt.states = {
        name: LoopAdaptState(
            home=s["home"],
            snapshots=dict(s["snapshots"]),
            groups={gkey: GroupState(**g) for gkey, g in s["groups"]},
        )
        for name, s in payload["states"].items()
    }
    adapt.failures = dict(payload["failures"])
    adapt.disabled = set(payload["disabled"])
    # whole-slice assignment: fallback_log may be an EventLogView over
    # the program's event bus (plain reassignment would detach it)
    adapt.fallback_log[:] = [dict(rec) for rec in payload["fallback_log"]]
    adapt.last_patch = None
    adapt.last_error = None


def restore_checkpoint(path, program, loops, driver=None) -> dict:
    """Restore ``program`` (and optionally a driver) from a checkpoint.

    ``program`` must be freshly constructed with the same shape as the
    checkpointed one -- same machine size, same declared arrays with the
    same distributions; ``loops`` maps loop name to the live
    :class:`~repro.core.forall.ForallLoop` objects of the campaign.
    After restoring, continuing the campaign produces simulated numbers
    bit-identical to a run that never stopped.  Returns the raw payload
    (for introspection).
    """
    payload = load_checkpoint(path)
    if payload["n_procs"] != program.machine.n_procs:
        raise CheckpointError(
            f"checkpoint is for {payload['n_procs']} processors, program "
            f"machine has {program.machine.n_procs}"
        )
    # validate arrays before mutating anything: a shape mismatch must
    # leave the program untouched
    _restore_arrays(program, payload["arrays"])
    _restore_machine(program.machine, payload["machine"])
    _restore_registry(program.registry, payload["registry"])
    prog_p = payload["program"]
    program.inspector_runs = prog_p["inspector_runs"]
    program.reuse_hits = prog_p["reuse_hits"]
    program.patch_hits = prog_p["patch_hits"]
    program.geocol_reuse_hits = prog_p["geocol_reuse_hits"]
    program._indirection_dads = set(prog_p["indirection_dads"])
    program.guard_events[:] = [dict(e) for e in prog_p["guard_events"]]
    program.records = _restore_products(program, payload, loops)
    _restore_ttables(program, payload["ttables"])
    if payload["adapt"] is not None:
        if program.adapt is None:
            raise CheckpointError(
                "checkpoint carries incremental-inspection state; construct "
                "the program with incremental=True before resuming"
            )
        _restore_adapt(program.adapt, payload["adapt"])
    elif program.adapt is not None:
        program.adapt.states.clear()
    if driver is not None and payload["driver"] is not None:
        driver.history = list(payload["driver"]["history"])
    return payload
