"""Figure 3: explicit irregular distribution through a map array.

"In Fortran D, one declares a template called a distribution [...]  An
irregular distribution is specified using an integer array; when map(i)
is set equal to p, element i of the distribution irreg is assigned to
processor p."
"""

import numpy as np
import pytest

from repro.core import ArrayRef, ForallLoop, IrregularProgram, Reduce
from repro.lang import AnalysisError, run_program
from repro.machine import Machine


class TestProgramAPI:
    def make(self, m, n=12):
        prog = IrregularProgram(m)
        prog.decomposition("reg", n)
        prog.distribute("reg", "block")
        rng = np.random.default_rng(3)
        owners = rng.integers(0, m.n_procs, n)
        prog.array("map", "reg", values=owners, dtype=np.int64)
        return prog, owners

    def test_distribute_by_map_before_align(self):
        m = Machine(4)
        prog, owners = self.make(m)
        prog.decomposition("irreg", 12)
        prog.distribute_by_map("irreg", "map")
        prog.array("x", "irreg", values=np.arange(12.0))
        assert prog.arrays["x"].distribution.kind == "irregular"
        assert np.array_equal(
            prog.arrays["x"].distribution.owner_map(), owners
        )
        assert np.array_equal(prog.arrays["x"].to_global(), np.arange(12.0))

    def test_distribute_by_map_with_live_arrays_remaps(self):
        m = Machine(4)
        prog, owners = self.make(m)
        prog.decomposition("irreg", 12)
        prog.distribute("irreg", "block")
        prog.array("x", "irreg", values=np.arange(12.0))
        prog.distribute_by_map("irreg", "map")
        assert prog.arrays["x"].distribution.kind == "irregular"
        assert np.array_equal(prog.arrays["x"].to_global(), np.arange(12.0))

    def test_non_integer_map_rejected(self):
        m = Machine(4)
        prog = IrregularProgram(m)
        prog.decomposition("reg", 8)
        prog.distribute("reg", "block")
        prog.array("w", "reg", values=np.zeros(8))
        prog.decomposition("irreg", 8)
        with pytest.raises(ValueError, match="must be INTEGER"):
            prog.distribute_by_map("irreg", "w")

    def test_size_mismatch_rejected(self):
        m = Machine(4)
        prog, _ = self.make(m, n=12)
        prog.decomposition("irreg", 10)
        with pytest.raises(ValueError, match="size 12"):
            prog.distribute_by_map("irreg", "map")

    def test_out_of_range_owner_rejected(self):
        m = Machine(4)
        prog = IrregularProgram(m)
        prog.decomposition("reg", 8)
        prog.distribute("reg", "block")
        prog.array("map", "reg", values=np.full(8, 9), dtype=np.int64)
        prog.decomposition("irreg", 8)
        with pytest.raises(ValueError, match="out of range"):
            prog.distribute_by_map("irreg", "map")


FIGURE3 = """
REAL*8 x(n), y(n)
INTEGER map(n), ia(n)
DECOMPOSITION reg(n), irreg(n)
DISTRIBUTE reg(BLOCK)
ALIGN map WITH reg
DISTRIBUTE irreg(map)
ALIGN x, y, ia WITH irreg
FORALL i = 1, n
  REDUCE (ADD, y(ia(i)), x(ia(i)))
END FORALL
"""


class TestLangFigure3:
    def test_figure3_program_runs(self):
        n = 16
        rng = np.random.default_rng(7)
        owners = rng.integers(0, 4, n)
        ia = rng.integers(0, n, n)
        x = rng.normal(size=n)
        cp = run_program(
            FIGURE3,
            Machine(4),
            sizes={"N": n},
            data={"MAP": owners, "IA": ia, "X": x},
        )
        assert cp.program.arrays["X"].distribution.kind == "irregular"
        assert np.array_equal(
            cp.program.arrays["X"].distribution.owner_map(), owners
        )
        want = np.zeros(n)
        np.add.at(want, ia, x[ia])
        assert np.allclose(cp.array_global("Y"), want)

    def test_unknown_format_still_rejected(self):
        src = "DECOMPOSITION reg(n)\nDISTRIBUTE reg(DIAGONAL)"
        with pytest.raises(AnalysisError, match="unsupported distribution"):
            run_program(src, Machine(2), sizes={"N": 4})

    def test_real_map_rejected_at_analysis(self):
        src = (
            "REAL*8 w(n)\nDECOMPOSITION reg(n), irreg(n)\n"
            "DISTRIBUTE reg(BLOCK)\nALIGN w WITH reg\nDISTRIBUTE irreg(w)"
        )
        with pytest.raises(AnalysisError, match="must be INTEGER"):
            run_program(src, Machine(2), sizes={"N": 4})
