"""PARTI *localize*: the primitive at the heart of every inspector.

Given, per processor, the list of global indices its loop iterations will
reference, ``localize``

1. translates every reference through the translation table,
2. separates on-processor from off-processor references,
3. deduplicates the off-processor ones and assigns each unique element a
   ghost-buffer slot ("information that associates off-processor data
   copies with on-processor buffer locations", Section 1),
4. rewrites each reference list into *localized* indices -- offsets into
   the concatenation ``[local segment | ghost buffer]`` -- so the executor
   is pure local indexing, and
5. builds the :class:`~repro.chaos.schedule.CommSchedule` that fetches
   the ghost elements.

Reference lists travel in **flat form**: one concatenated value array
plus CSR bounds (:class:`FlatRefs`), so the whole localize pass — one
``dereference_flat`` translation included — runs on single arrays with
no per-processor concatenation or Python loop.  Plain per-processor
lists are still accepted and flattened once at entry.  The result is
flat too: :class:`LocalizeResult` stores ``(values, bounds)`` pairs and
materializes per-processor list views only when a caller asks for them.

Deduplication uses a direct ``np.sort`` over combined
``processor * stride + global_index`` keys (the reference stream is
already grouped by processor, so the combined sort is a bank of
per-processor sorts) plus one ``searchsorted`` for the inverse mapping
and per-processor group bounds — the same sorted-unique contract as
``np.unique(..., return_inverse=True)`` without its indirect argsort.

The cost charged mirrors what PARTI's hashed implementation did per
reference: a hash probe per reference, an insert per unique off-processor
element, schedule assembly per unique element, and a request exchange
telling each owner which of its elements to send.
"""

from __future__ import annotations

import numpy as np

from repro.chaos.costs import ChaosCosts, DEFAULT_COSTS
from repro.chaos.flatrefs import FlatRefs
from repro.chaos.schedule import CommSchedule
from repro.chaos.transcache import ChargeLog, LocalizeEntry, TranslationCache
from repro.chaos.ttable import TranslationTable
from repro.machine.machine import Machine

__all__ = ["FlatRefs", "LocalizeResult", "localize", "sorted_unique_inverse"]


def sorted_unique_inverse(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sorted unique values of ``keys`` plus the inverse mapping.

    Bit-identical contract to ``np.unique(keys, return_inverse=True)``
    (ascending uniques, ``uniq[inverse] == keys``) but built from one
    *direct* sort — no indirect argsort — plus one binary-search pass
    for the inverse, which is substantially faster on the large int64
    key streams localize produces.
    """
    if not keys.size:
        return keys.copy(), np.empty(0, dtype=np.int64)
    sorted_keys = np.sort(keys)
    new_group = np.empty(sorted_keys.size, dtype=bool)
    new_group[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=new_group[1:])
    uniq = sorted_keys[new_group]
    inverse = np.searchsorted(uniq, keys)
    return uniq, inverse


class LocalizeResult:
    """Everything an executor needs for one access pattern.

    The canonical storage is flat (``refs_flat`` + ``ref_bounds``,
    ``ghost_flat`` + ``ghost_bounds``); the per-processor ``local_refs``
    and ``ghost_globals`` lists are zero-copy views into it, materialized
    lazily the first time a caller asks (compat and tests — hot paths
    stay flat).

    Attributes
    ----------
    local_refs:
        Per processor, the reference list rewritten to localized indices:
        values ``< local_size`` index the local segment, values ``>=
        local_size`` index ghost slot ``value - local_size``.
    ghost_globals:
        Per processor, the unique off-processor global indices in ghost
        slot order (useful for debugging and tests).
    local_sizes:
        Per processor, the local segment size of the inspected
        distribution (the local/ghost boundary).
    schedule:
        The communication schedule that fills the ghost buffers.
    refs_flat / ref_bounds:
        Flat CSR form of ``local_refs``.
    ghost_flat / ghost_bounds:
        Flat CSR form of ``ghost_globals``.
    """

    def __init__(
        self,
        local_refs: "list[np.ndarray] | None" = None,
        ghost_globals: "list[np.ndarray] | None" = None,
        local_sizes: "list[int] | None" = None,
        schedule: CommSchedule | None = None,
        refs_flat: np.ndarray | None = None,
        ref_bounds: np.ndarray | None = None,
        ghost_flat: np.ndarray | None = None,
        ghost_bounds: np.ndarray | None = None,
    ):
        if local_refs is None and refs_flat is None:
            raise ValueError("need local_refs or refs_flat")
        if refs_flat is not None and ref_bounds is None:
            raise ValueError("refs_flat needs its ref_bounds CSR array")
        if ghost_flat is not None and ghost_bounds is None:
            raise ValueError("ghost_flat needs its ghost_bounds CSR array")
        self._local_refs = local_refs
        self._ghost_globals = ghost_globals
        self.local_sizes = local_sizes
        self.schedule = schedule
        self._refs_flat = refs_flat
        self._ref_bounds = ref_bounds
        self._ghost_flat = ghost_flat
        self._ghost_bounds = ghost_bounds

    # -- flat accessors (canonical) ----------------------------------------
    @property
    def refs_flat(self) -> np.ndarray:
        if self._refs_flat is None:
            flat = FlatRefs.from_lists(self._local_refs)
            self._refs_flat, self._ref_bounds = flat.values, flat.bounds
        return self._refs_flat

    @property
    def ref_bounds(self) -> np.ndarray:
        self.refs_flat
        return self._ref_bounds

    @property
    def ghost_flat(self) -> np.ndarray:
        if self._ghost_flat is None:
            flat = FlatRefs.from_lists(self._ghost_globals)
            self._ghost_flat, self._ghost_bounds = flat.values, flat.bounds
        return self._ghost_flat

    @property
    def ghost_bounds(self) -> np.ndarray:
        self.ghost_flat
        return self._ghost_bounds

    # -- per-processor list views (lazy compat) ----------------------------
    @property
    def local_refs(self) -> list[np.ndarray]:
        if self._local_refs is None:
            b = self._ref_bounds
            self._local_refs = [
                self._refs_flat[b[p] : b[p + 1]] for p in range(b.size - 1)
            ]
        return self._local_refs

    @property
    def ghost_globals(self) -> list[np.ndarray]:
        if self._ghost_globals is None:
            b = self._ghost_bounds
            self._ghost_globals = [
                self._ghost_flat[b[p] : b[p + 1]] for p in range(b.size - 1)
            ]
        return self._ghost_globals

    def split(self, p: int) -> tuple[np.ndarray, np.ndarray]:
        """Boolean masks (is_local, is_ghost) for processor ``p``'s refs."""
        refs = self.local_refs[p]
        is_local = refs < self.local_sizes[p]
        return is_local, ~is_local


def localize(
    machine: Machine,
    ttable: TranslationTable,
    ref_lists,
    costs: ChaosCosts = DEFAULT_COSTS,
    cache: TranslationCache | None = None,
    cache_key: "tuple[tuple, tuple] | None" = None,
) -> LocalizeResult:
    """Run the localize primitive for one access pattern.

    Parameters
    ----------
    machine:
        The simulated machine to charge.
    ttable:
        Translation table of the *data* array's distribution.
    ref_lists:
        The global indices each processor's iterations dereference
        (repeats allowed and common): a :class:`FlatRefs`, a
        per-processor list of arrays, or a zero-argument callable
        producing either -- the callable form lets a cache hit skip
        building the reference stream altogether.
    cache / cache_key:
        Optional persistent :class:`TranslationCache` plus the caller's
        ``(slot, version)`` key for this pattern (built from
        ``repro.core.cachekey`` tokens).  On a hit the saved product is
        returned (fresh :class:`LocalizeResult`, ``schedule.twin()``,
        shared frozen arrays) and the cold run's recorded charges are
        replayed -- simulated numbers are bit-identical either way.
    """
    n = machine.n_procs
    obs = machine.obs
    caching = cache is not None and cache_key is not None
    if caching:
        entry = cache.get(*cache_key)
        if entry is not None:
            obs.counter("localize.cache_hits")
            with obs.span("localize.replay"):
                entry.charges.replay(machine)
                return LocalizeResult(
                    local_sizes=entry.local_sizes,
                    schedule=entry.schedule.twin(),
                    refs_flat=entry.refs_flat,
                    ref_bounds=entry.ref_bounds,
                    ghost_flat=entry.ghost_flat,
                    ghost_bounds=entry.ghost_bounds,
                )
        obs.counter("localize.cache_misses")
    if callable(ref_lists):
        ref_lists = ref_lists()
    refs = FlatRefs.from_lists(ref_lists)
    if refs.n_procs != n:
        raise ValueError(f"expected {n} reference lists, got {refs.n_procs}")
    # a recording sink forwards every charge unchanged, so a cold fill
    # charges exactly what an uncached run would
    sink = ChargeLog(machine) if caching else machine
    dist = ttable.dist
    flat_refs = refs.values
    sizes = refs.sizes()
    with obs.span("localize.dereference", n_refs=int(flat_refs.size)):
        flat_owner, flat_lidx = ttable.dereference_flat(
            flat_refs, refs.bounds, sink=sink
        )

    local_sizes_arr = dist.local_sizes()
    flat_pid = np.repeat(np.arange(n, dtype=np.int64), sizes)

    off = flat_owner != flat_pid
    off_pid = flat_pid[off]
    off_refs = flat_refs[off]
    n_off = np.bincount(off_pid, minlength=n)
    # dedup off-processor references per processor with one keyed sorted
    # unique; ascending keys give deterministic (sorted-global) ghost
    # slot order per processor, like PARTI's hashed order.  Keys cannot
    # collide across processors because every global index is < dist.size.
    stride = max(dist.size, 1)
    keys = off_pid * stride + off_refs
    if n * stride <= np.iinfo(np.int32).max:
        # half-width keys halve the sort/search bandwidth; values are
        # exact (n * stride bounds every key), so uniques and inverse
        # are unchanged
        keys = keys.astype(np.int32)
    with obs.span("localize.dedup", n_off=int(keys.size)):
        uniq_keys, inverse = sorted_unique_inverse(keys)
    uniq_keys = uniq_keys.astype(np.int64, copy=False)
    # per-processor group bounds on the sorted uniques: n+1 binary
    # searches instead of a bincount over a division-derived pid array
    ghost_bounds = np.searchsorted(
        uniq_keys, np.arange(n + 1, dtype=np.int64) * stride
    )
    ghost_counts = np.diff(ghost_bounds)
    upid = np.repeat(np.arange(n, dtype=np.int64), ghost_counts)
    ugidx = uniq_keys - upid * stride
    slots = np.arange(uniq_keys.size, dtype=np.int64) - ghost_bounds[upid]
    ghost_sizes = [int(c) for c in ghost_counts]

    # rewrite every reference to a localized index: local offsets stay,
    # off-processor references become local_size + ghost slot
    localized_flat = flat_lidx.copy()
    localized_flat[off] = local_sizes_arr[off_pid] + slots[inverse]
    ref_bounds = refs.bounds

    # build schedule entries for each (owner q, requester p) pair: one
    # stable sort groups the unique ghosts requester-major, owner-minor,
    # ghost slots ascending within each owner (as per-owner masking did)
    uowners = np.asarray(dist.owner(ugidx), dtype=np.int64) if ugidx.size else ugidx
    ulidx = (
        np.asarray(dist.local_index(ugidx), dtype=np.int64) if ugidx.size else ugidx
    )
    order = np.argsort(upid * n + uowners, kind="stable")
    pair_keys = upid[order] * n + uowners[order]
    # pair boundaries on the already-sorted keys (no second sort)
    if pair_keys.size:
        seg_starts = np.concatenate(
            ([0], np.flatnonzero(np.diff(pair_keys)) + 1)
        )
    else:
        seg_starts = np.empty(0, dtype=np.int64)
    seg_keys = pair_keys[seg_starts] if pair_keys.size else pair_keys
    seg_bounds = np.append(seg_starts, order.size)
    pair_counts = np.diff(seg_bounds)
    pair_p = seg_keys // n
    pair_q = seg_keys % n
    sorted_lidx = ulidx[order]
    sorted_slots = slots[order]

    # charge inspector integer work per processor: one hash probe per
    # reference, an insert per unique ghost, schedule build + buffer
    # assignment, and a localized-index rewrite probe per off-proc ref
    ghost_f = ghost_counts.astype(np.float64)
    sink.charge_compute_all(
        iops=(
            costs.hash_lookup * sizes.astype(np.float64)
            + costs.hash_insert * ghost_f
            + costs.schedule_build * ghost_f
            + costs.buffer_assign * ghost_f
            + costs.hash_lookup * n_off.astype(np.float64)
        ),
    )

    # request exchange: each requester tells each owner which local
    # elements to send (index lists on the wire); owners then record
    # their send lists.  Pairs are already requester-major / owner-minor
    # ascending — the same order the dense-matrix nonzero scan produced.
    cross = pair_p != pair_q
    sink.exchange(
        src=pair_p[cross],
        dst=pair_q[cross],
        nbytes=pair_counts[cross] * costs.index_bytes,
    )
    owner_record = np.bincount(
        pair_q, weights=pair_counts.astype(np.float64), minlength=n
    )
    sink.charge_compute_all(iops=costs.schedule_build * owner_record)
    sink.barrier()

    with obs.span("localize.schedule.build", n_pairs=int(pair_q.size)):
        schedule = CommSchedule.from_flat(
            machine,
            dist.signature(),
            pair_q,
            pair_p,
            pair_counts,
            sorted_lidx,
            sorted_slots,
            ghost_sizes,
            costs=costs,
        )
    result = LocalizeResult(
        local_sizes=[int(s) for s in local_sizes_arr],
        schedule=schedule,
        refs_flat=localized_flat,
        ref_bounds=ref_bounds,
        ghost_flat=ugidx,
        ghost_bounds=ghost_bounds,
    )
    if caching:
        cache.put(
            cache_key[0],
            cache_key[1],
            LocalizeEntry(
                charges=sink,
                schedule=schedule,
                local_sizes=result.local_sizes,
                refs_flat=localized_flat,
                ref_bounds=ref_bounds,
                ghost_flat=ugidx,
                ghost_bounds=ghost_bounds,
            ),
        )
    return result
