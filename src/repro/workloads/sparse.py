"""Sparse matrix-vector workload (the paper's sparse-solver domain).

A CSR matvec expressed as the canonical irregular loop: iterate over
nonzeros k with REDUCE(ADD, y(row(k)), a(k) * x(col(k))) -- one direct
read (the nonzero value), one indirect read (the x entry), one indirect
reduction (the y entry).  CHAOS/PARTI's original home turf.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.forall import ArrayRef, ForallLoop, Reduce
from repro.core.program import IrregularProgram
from repro.machine.machine import Machine

#: modeled flops per nonzero (multiply + add)
SPMV_FLOPS = 2.0


def random_sparse_csr(
    n: int, nnz_per_row: int = 7, bandwidth: float = 0.05, seed: int = 0
) -> sp.csr_matrix:
    """A banded-plus-random sparse matrix like a 1-D discretization with
    long-range coupling; rows have ~``nnz_per_row`` entries."""
    if n < 1:
        raise ValueError(f"matrix size must be positive, got {n}")
    rng = np.random.default_rng(seed)
    rows, cols = [], []
    for k in range(nnz_per_row):
        r = np.arange(n)
        if k < nnz_per_row // 2 + 1:
            # banded part: neighbours within fractional bandwidth
            offset = rng.integers(-max(1, int(bandwidth * n)), max(2, int(bandwidth * n)), n)
            c = np.clip(r + offset, 0, n - 1)
        else:
            c = rng.integers(0, n, n)
        rows.append(r)
        cols.append(c)
    rows = np.concatenate(rows)
    cols = np.concatenate(cols)
    vals = rng.normal(size=rows.size)
    mat = sp.coo_matrix((vals, (rows, cols)), shape=(n, n))
    mat.sum_duplicates()
    return mat.tocsr()


def spmv_loop(nnz: int) -> ForallLoop:
    """y(row(k)) += a(k) * x(col(k)) over nonzeros."""
    return ForallLoop(
        "spmv",
        nnz,
        [
            Reduce(
                "add",
                ArrayRef("y", "row"),
                lambda a, xv: a * xv,
                (ArrayRef("a"), ArrayRef("x", "col")),
                flops=SPMV_FLOPS,
            )
        ],
    )


def setup_spmv_program(
    machine: Machine, matrix: sp.csr_matrix, seed: int = 0, **program_kwargs
) -> IrregularProgram:
    """Declare SpMV state: COO triplets on an nnz decomposition, x/y on
    an n decomposition."""
    coo = matrix.tocoo()
    n = matrix.shape[0]
    nnz = coo.nnz
    rng = np.random.default_rng(seed)
    prog = IrregularProgram(machine, **program_kwargs)
    prog.decomposition("vec", n)
    prog.decomposition("nz", nnz)
    prog.distribute("vec", "block")
    prog.distribute("nz", "block")
    prog.array("x", "vec", values=rng.normal(size=n))
    prog.array("y", "vec", values=np.zeros(n))
    prog.array("a", "nz", values=coo.data)
    prog.array("row", "nz", values=coo.row, dtype=np.int64)
    prog.array("col", "nz", values=coo.col, dtype=np.int64)
    return prog


def spmv_sequential_reference(
    matrix: sp.csr_matrix, x: np.ndarray, n_times: int = 1
) -> np.ndarray:
    """y accumulated over n_times matvecs."""
    y = np.zeros(matrix.shape[0])
    for _ in range(n_times):
        y += matrix @ x
    return y
