"""The executor: carry out communication and computation (Phase E).

Per execution of a loop's executor:

1. **gather** -- for every pattern the loop reads, prefetch off-processor
   elements into the pattern's ghost buffers (one schedule application);
2. **compute** -- each processor evaluates every statement vectorized
   over its iterations, reading from ``[local segment | ghost buffer]``
   through the localized reference lists; reduction contributions
   accumulate into per-pattern staging (local part + ghost part);
3. **scatter** -- staged off-processor contributions travel back through
   the same schedules and combine at the owners (``scatter_op``), and
   assigned off-processor values are written back (``scatter``).

The machine is charged the loop's declared flops, the indexed-load
memory traffic, and the schedule communication; the Python evaluation
itself is just the simulation vehicle.
"""

from __future__ import annotations

import numpy as np

from repro.chaos.gather_scatter import REDUCTION_OPS
from repro.chaos.merge import gather_merged, scatter_op_merged
from repro.core.forall import Assign, Reduce
from repro.core.inspector import InspectorProduct
from repro.distribution.distarray import DistArray
from repro.machine.machine import Machine

#: additive identity per reduction op, for staging buffers
_IDENTITY = {"add": 0.0, "multiply": 1.0, "min": np.inf, "max": -np.inf}


def run_executor(
    machine: Machine,
    product: InspectorProduct,
    arrays: dict[str, DistArray],
    n_times: int = 1,
    overhead_factor: float = 1.0,
    merge_communication: bool = False,
) -> None:
    """Execute a loop ``n_times`` using saved inspector results.

    ``overhead_factor`` scales the charged compute cost; the compiled
    path passes a value slightly above 1 to model compiler-generated
    (vs. hand-tuned) loop bodies.  ``merge_communication`` applies
    PARTI's schedule-merging optimization: all gather (and all
    reduction-scatter) payloads for one processor pair travel in a
    single message per phase instead of one per access pattern.
    """
    if n_times < 0:
        raise ValueError(f"negative execution count {n_times}")
    if overhead_factor < 1.0:
        raise ValueError("overhead_factor models slowdown; must be >= 1")
    _check_fresh(product, arrays)
    for _ in range(n_times):
        _execute_once(machine, product, arrays, overhead_factor, merge_communication)


def _check_fresh(product: InspectorProduct, arrays: dict[str, DistArray]) -> None:
    """Defensive staleness check: executing with changed distributions is
    a correctness bug the reuse machinery exists to prevent."""
    for name, sig in product.dist_signatures.items():
        arr = arrays.get(name)
        if arr is None:
            raise KeyError(f"loop {product.loop.name!r} array {name!r} is unbound")
        if arr.distribution.signature() != sig:
            raise ValueError(
                f"stale inspector: array {name!r} was redistributed after "
                f"loop {product.loop.name!r} was inspected"
            )


def _execute_once(
    machine: Machine,
    product: InspectorProduct,
    arrays: dict[str, DistArray],
    overhead: float,
    merge_communication: bool = False,
) -> None:
    loop = product.loop
    n_procs = machine.n_procs
    iters = product.iteration_partition.iters

    read_keys = {(r.array, r.index) for r in loop.read_refs()}
    # 1. gather all read patterns (one gather per distinct schedule --
    # coalesced patterns share a schedule and are fetched once)
    gather_items = []
    seen_schedules: set[int] = set()
    for key in sorted(read_keys, key=str):
        pat = product.patterns[key]
        sid = id(pat.localized.schedule)
        if sid in seen_schedules:
            continue
        seen_schedules.add(sid)
        gather_items.append((pat.localized.schedule, arrays[pat.array], pat.ghosts))
    if merge_communication and gather_items:
        gather_merged(gather_items)
    else:
        for sched, arr, ghosts in gather_items:
            sched.gather(arr, ghosts.buffers)

    # combined views for reads (read-only segment views: acquiring them
    # must not perturb the arrays' content versions)
    combined: dict[tuple[str, str | None], list[np.ndarray]] = {}
    for key in read_keys:
        pat = product.patterns[key]
        arr = arrays[pat.array]
        combined[key] = [
            np.concatenate([arr.local_ro(p), pat.ghosts.buf(p)])
            for p in range(n_procs)
        ]

    # staging for writes, grouped so patterns sharing one (coalesced)
    # schedule accumulate into one staging and scatter once
    write_plan: dict[tuple[str, str | None], str] = {}
    for s in loop.statements:
        key = (s.lhs.array, s.lhs.index)
        kind = s.op if isinstance(s, Reduce) else "assign"
        prev = write_plan.get(key)
        if prev is not None and prev != kind:
            raise ValueError(
                f"loop {loop.name!r} writes pattern {key} with conflicting "
                f"semantics ({prev} vs {kind})"
            )
        write_plan[key] = kind

    group_of: dict[tuple[str, str | None], tuple] = {}
    groups: dict[tuple, tuple] = {}  # gkey -> (pattern key exemplar, kind)
    for key, kind in write_plan.items():
        pat = product.patterns[key]
        gkey = (pat.array, kind, id(pat.localized.schedule))
        group_of[key] = gkey
        prev = groups.get(gkey)
        if prev is not None and prev[1] != kind:  # pragma: no cover - defensive
            raise ValueError("conflicting kinds in one staging group")
        groups.setdefault(gkey, (key, kind))

    staging: dict[tuple, list[np.ndarray]] = {}
    assigned_mask: dict[tuple, list[np.ndarray]] = {}
    for gkey, (key, kind) in groups.items():
        pat = product.patterns[key]
        arr = arrays[pat.array]
        fill = _IDENTITY[kind] if kind != "assign" else 0.0
        staging[gkey] = [
            np.full(
                pat.localized.local_sizes[p] + pat.ghosts.buf(p).size,
                fill,
                dtype=arr.dtype,
            )
            for p in range(n_procs)
        ]
        if kind == "assign":
            assigned_mask[gkey] = [
                np.zeros(staging[gkey][p].size, dtype=bool) for p in range(n_procs)
            ]

    # 2. compute
    flops = np.zeros(n_procs)
    mem = np.zeros(n_procs)
    for s in loop.statements:
        lhs_key = (s.lhs.array, s.lhs.index)
        lhs_pat = product.patterns[lhs_key]
        for p in range(n_procs):
            n_it = len(iters[p])
            if n_it == 0:
                continue
            operands = []
            for r in s.reads:
                rk = (r.array, r.index)
                rpat = product.patterns[rk]
                operands.append(combined[rk][p][rpat.localized.local_refs[p]])
            vals = np.asarray(s.func(*operands))
            if vals.shape != (n_it,):
                vals = np.broadcast_to(vals, (n_it,)).copy()
            gkey = group_of[lhs_key]
            tgt = staging[gkey][p]
            refs = lhs_pat.localized.local_refs[p]
            if isinstance(s, Reduce):
                REDUCTION_OPS[s.op].at(tgt, refs, vals)
            else:
                tgt[refs] = vals
                assigned_mask[gkey][p][refs] = True
            flops[p] += s.flops * n_it
            mem[p] += 2.0 * n_it * (len(s.reads) + 1)

    machine.charge_compute_all(flops=flops * overhead, mem=mem * overhead)

    # 3. merge local staging + scatter ghost staging (once per group)
    merged_reduce_items = []
    for gkey, (key, kind) in groups.items():
        pat = product.patterns[key]
        arr = arrays[pat.array]
        ghost_bufs = []
        data = arr.backing_mut()  # one version bump per merged group
        offsets = arr.distribution.flat_offsets()
        for p in range(n_procs):
            nloc = pat.localized.local_sizes[p]
            stage = staging[gkey][p]
            seg = data[offsets[p] : offsets[p + 1]]
            if kind == "assign":
                m = assigned_mask[gkey][p][:nloc]
                seg[m] = stage[:nloc][m]
            else:
                op = REDUCTION_OPS[kind]
                op(seg, stage[:nloc], out=seg)
            ghost_bufs.append(stage[nloc:])
        if kind == "assign":
            # only slots actually assigned may overwrite owner data; we
            # ship staged values for every slot but restrict at the owner
            # by shipping the mask too is overkill at this model fidelity:
            # FORALL semantics forbid partially-assigned ghost patterns,
            # so every ghost slot of an assigned pattern is written.
            pat.localized.schedule.scatter(ghost_bufs, arr)
        elif merge_communication:
            merged_reduce_items.append(
                (pat.localized.schedule, ghost_bufs, arr, REDUCTION_OPS[kind])
            )
        else:
            pat.localized.schedule.scatter_op(
                ghost_bufs, arr, REDUCTION_OPS[kind]
            )
        # merge cost: one flop per owned element combined
        machine.charge_compute_all(
            flops=np.asarray(pat.localized.local_sizes, dtype=np.float64)
        )
    if merged_reduce_items:
        scatter_op_merged(merged_reduce_items)
    machine.barrier()
