"""CI perf-regression gate for the simulator self-performance bench.

Compares a fresh ``benchmarks/out/BENCH_simspeed.json`` (produced by
``bench_simspeed.py``) against the committed baseline
``benchmarks/baseline/BENCH_simspeed.json`` and enforces the two
invariants every optimization PR must keep:

* **Simulated numbers are bit-identical.**  ``simulated_total``, every
  ``simulated_phases`` entry, and the message/byte counters must match
  the baseline exactly for every processor count both files cover.  Any
  drift fails the job (exit 1): the vectorized runtime is only allowed
  to change *wall* time, never the modeled machine.
* **The translation cache is actually engaged.**  The scenario
  re-inspects an unchanged loop every iteration, so a run reporting
  zero ``cache_hits`` means the persistent translation cache was
  silently disabled or its keying broke -- a hard failure (exit 1),
  since the wall numbers would no longer measure the cached runtime.
* **Wall time does not regress quietly.**  For the processor counts
  checked (default: P=64, the CI smoke run), wall time more than
  ``--wall-tolerance`` (default 25%) above baseline emits a GitHub
  Actions ``::warning`` annotation but does **not** fail the job --
  shared CI runners are too noisy to gate hard on wall clock; the
  trajectory is tracked via the uploaded JSON artifact.
* **No phase quietly eats the wall clock.**  When both reports carry
  ``phase_shares`` (produced by ``bench_simspeed.py --profile`` from
  the obs trace), any instrumented phase whose share of host wall time
  grew by more than ``--share-tolerance`` (default 10 points) over
  baseline emits a ``::warning``.  Skipped silently when either side
  lacks the data (non-profiled runs).

Exit status: 0 = clean (warnings allowed), 1 = simulated drift or
unusable inputs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
DEFAULT_BASELINE = os.path.join(HERE, "baseline", "BENCH_simspeed.json")
DEFAULT_CURRENT = os.path.join(HERE, "out", "BENCH_simspeed.json")

#: scenario metadata that must match for the comparison to be meaningful
SCENARIO_KEYS = ("scenario", "n_nodes", "iterations", "partitioner")

#: per-run fields pinned exactly (the simulated machine's output)
EXACT_KEYS = ("simulated_total", "messages", "bytes")


def _fail(msg: str) -> None:
    print(f"::error::{msg}")
    print(f"FAIL: {msg}", file=sys.stderr)


def _warn(msg: str) -> None:
    print(f"::warning::{msg}")
    print(f"WARN: {msg}", file=sys.stderr)


def _compare_phase_shares(
    n_procs: int, base: dict, cur: dict, share_tolerance: float
) -> int:
    """Warn when an obs-instrumented phase's wall share balloons.

    Returns the number of warnings emitted.  Shares are fractions in
    [0, 1]; ``share_tolerance`` is in points of share (0.10 = 10
    points).  Missing ``phase_shares`` on either side (the bench ran
    without ``--profile``) skips the check without noise.
    """
    base_shares = base.get("phase_shares")
    cur_shares = cur.get("phase_shares")
    if not base_shares or not cur_shares:
        return 0
    warnings = 0
    for phase, cur_share in sorted(cur_shares.items()):
        grew = cur_share - base_shares.get(phase, 0.0)
        if grew > share_tolerance:
            _warn(
                f"P={n_procs}: phase {phase!r} wall share grew "
                f"{100 * base_shares.get(phase, 0.0):.1f}% -> "
                f"{100 * cur_share:.1f}% "
                f"(> {100 * share_tolerance:.0f} points over baseline; "
                "inspect the exported obs trace)"
            )
            warnings += 1
    return warnings


def compare(
    baseline: dict,
    current: dict,
    wall_procs,
    wall_tolerance: float,
    share_tolerance: float = 0.10,
):
    """Return (n_errors, n_warnings) for ``current`` vs ``baseline``."""
    errors = 0
    warnings = 0
    for key in SCENARIO_KEYS:
        if baseline.get(key) != current.get(key):
            _fail(
                f"scenario mismatch: {key}={current.get(key)!r} but baseline "
                f"has {baseline.get(key)!r} -- comparison is meaningless"
            )
            errors += 1
    base_runs = {run["n_procs"]: run for run in baseline.get("runs", [])}
    cur_runs = {run["n_procs"]: run for run in current.get("runs", [])}
    shared = sorted(set(base_runs) & set(cur_runs))
    if not shared:
        _fail(
            f"no overlapping processor counts (baseline {sorted(base_runs)}, "
            f"current {sorted(cur_runs)})"
        )
        return errors + 1, warnings

    for n_procs in shared:
        base, cur = base_runs[n_procs], cur_runs[n_procs]
        missing = [
            key
            for key in EXACT_KEYS + ("wall_seconds",)
            if key not in base or key not in cur
        ]
        if missing:
            _fail(
                f"P={n_procs}: report field(s) missing: {missing} -- "
                "format mismatch between baseline and current bench"
            )
            errors += 1
            continue
        for key in EXACT_KEYS:
            if base[key] != cur[key]:
                _fail(
                    f"P={n_procs}: simulated drift in {key}: "
                    f"{cur[key]!r} != baseline {base[key]!r}"
                )
                errors += 1
        if "cache_hits" in cur and cur["cache_hits"] == 0:
            _fail(
                f"P={n_procs}: zero translation-cache hits on a "
                "repeated-inspection scenario -- cache disabled or "
                "keying broken"
            )
            errors += 1
        base_phases = base.get("simulated_phases", {})
        cur_phases = cur.get("simulated_phases", {})
        if set(base_phases) != set(cur_phases):
            _fail(
                f"P={n_procs}: phase set changed: {sorted(cur_phases)} != "
                f"baseline {sorted(base_phases)}"
            )
            errors += 1
        else:
            for phase, want in base_phases.items():
                if cur_phases[phase] != want:
                    _fail(
                        f"P={n_procs}: simulated drift in phase {phase!r}: "
                        f"{cur_phases[phase]!r} != baseline {want!r}"
                    )
                    errors += 1
        if n_procs in wall_procs:
            base_wall, cur_wall = base["wall_seconds"], cur["wall_seconds"]
            limit = base_wall * (1.0 + wall_tolerance)
            if cur_wall > limit:
                _warn(
                    f"P={n_procs}: wall time regressed "
                    f"{base_wall:.3f}s -> {cur_wall:.3f}s "
                    f"(> {100 * wall_tolerance:.0f}% over baseline; "
                    "non-fatal, check the runner before worrying)"
                )
                warnings += 1
            else:
                print(
                    f"P={n_procs}: wall {cur_wall:.3f}s vs baseline "
                    f"{base_wall:.3f}s (limit {limit:.3f}s) -- ok"
                )
        warnings += _compare_phase_shares(n_procs, base, cur, share_tolerance)
        print(f"P={n_procs}: simulated numbers bit-identical -- ok")
    return errors, warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--current", default=DEFAULT_CURRENT)
    parser.add_argument(
        "--wall-procs",
        type=int,
        nargs="*",
        default=[64],
        help="processor counts whose wall time is checked (default: 64)",
    )
    parser.add_argument(
        "--wall-tolerance",
        type=float,
        default=0.25,
        help="fractional wall-time slack before warning (default: 0.25)",
    )
    parser.add_argument(
        "--share-tolerance",
        type=float,
        default=0.10,
        help="points of host-wall phase share a phase may grow over "
        "baseline before warning (default: 0.10 = 10 points)",
    )
    args = parser.parse_args(argv)

    for label, path in (("baseline", args.baseline), ("current", args.current)):
        if not os.path.exists(path):
            _fail(f"{label} report missing: {path}")
            return 1
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    with open(args.current) as fh:
        current = json.load(fh)

    errors, warnings = compare(
        baseline,
        current,
        set(args.wall_procs),
        args.wall_tolerance,
        args.share_tolerance,
    )
    if errors:
        print(f"{errors} error(s), {warnings} warning(s)", file=sys.stderr)
        return 1
    print(f"regression check clean ({warnings} warning(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
