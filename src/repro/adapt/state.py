"""Saved state the incremental inspector diffs and patches against.

A full inspection captures, per loop:

* a **snapshot** of every indirection array's global values (what the
  reference lists were computed from),
* the dense **home** map of the iteration partition (iteration ->
  processor), and
* one :class:`GroupState` per pattern *group* -- the patterns sharing a
  (possibly coalesced) schedule -- tracking the CSR ghost slot space
  described in the package docstring: per global slot id the ghost's
  key, owner, owner-local offset, and live reference count.

Building this state is plain bookkeeping over arrays the inspector
already produced; the machine is charged a small per-element recording
cost (the runtime really would tally counts and copy the indirection
values), which is the price of enabling incremental inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.inspector import InspectorProduct
from repro.distribution.distarray import DistArray

#: integer ops per ghost slot for recording the slot -> key/owner map
STATE_IOPS_PER_GHOST = 4.0
#: integer ops per reference for tallying per-slot reference counts
STATE_IOPS_PER_REF = 1.0


@dataclass
class GroupState:
    """CSR ghost-slot bookkeeping for one pattern group (see package doc)."""

    array: str
    indexes: tuple[str | None, ...]
    slot_bounds: np.ndarray  # (P + 1,) CSR bounds of the slot space
    keys: np.ndarray  # (S,) ghost global index per slot (stale in holes)
    owners: np.ndarray  # (S,) owning processor of each ghost key
    lidx: np.ndarray  # (S,) owner-local offset of each ghost key
    counts: np.ndarray  # (S,) live reference count; 0 marks a hole
    #: persisted sorted slot index: ``sorted_comp`` holds the composite
    #: ``slot_proc * stride + key`` of every slot in ascending order
    #: (ties slot-ascending) and ``sorted_slot`` the slot id per entry.
    #: Built once (lazily) and *merged* delta-sized on every patch, so
    #: lookups never re-sort the slot space.  ``None`` after restore
    #: from a pre-index checkpoint; rebuilt on first use.
    sorted_comp: np.ndarray | None = None
    sorted_slot: np.ndarray | None = None
    index_stride: int = 0

    def slot_proc(self) -> np.ndarray:
        """Processor owning each global slot id."""
        return np.repeat(
            np.arange(self.slot_bounds.size - 1, dtype=np.int64),
            np.diff(self.slot_bounds),
        )

    def slot_index(self, stride: int) -> tuple[np.ndarray, np.ndarray]:
        """``(sorted_comp, sorted_slot)`` for ``stride``, building on miss.

        The one argsort here runs only on first use (or after a stride
        change, which implies a new distribution and therefore fresh
        state anyway); patches keep the index current by merging their
        delta instead of calling back into this.
        """
        if (
            self.sorted_comp is None
            or self.sorted_slot is None
            or self.index_stride != stride
        ):
            comp = self.slot_proc() * stride + self.keys
            order = np.argsort(comp, kind="stable")
            self.sorted_comp = comp[order]
            self.sorted_slot = order
            self.index_stride = stride
        return self.sorted_comp, self.sorted_slot


@dataclass
class LoopAdaptState:
    """Everything needed to patch one loop's saved inspector product."""

    home: np.ndarray  # dense iteration -> processor map
    snapshots: dict[str, np.ndarray]  # indirection name -> global values
    groups: dict[tuple[str, tuple], GroupState] = field(default_factory=dict)


def product_groups(
    product: InspectorProduct,
) -> list[list[tuple[str, str | None]]]:
    """Pattern keys grouped by shared schedule, in first-appearance order."""
    by_sched: dict[int, list[tuple[str, str | None]]] = {}
    for key, pat in product.patterns.items():
        by_sched.setdefault(id(pat.localized.schedule), []).append(key)
    return list(by_sched.values())


def group_state_key(member_keys: list[tuple[str, str | None]]) -> tuple[str, tuple]:
    return (member_keys[0][0], tuple(k[1] for k in member_keys))


def build_group_state(
    product: InspectorProduct,
    arrays: dict[str, DistArray],
    member_keys: list[tuple[str, str | None]],
) -> GroupState:
    """Slot bookkeeping for one group of a *freshly inspected* product.

    A fresh :func:`~repro.chaos.localize.localize` assigns ghost slots in
    sorted-key order with no holes, so ``ghost_flat``/``ghost_bounds``
    of any member's ``LocalizeResult`` are exactly the slot space.
    Counts come from one ``bincount`` over each member's localized ghost
    references.
    """
    array_name = member_keys[0][0]
    first = product.patterns[member_keys[0]].localized
    dist = arrays[array_name].distribution
    slot_bounds = np.asarray(first.ghost_bounds, dtype=np.int64).copy()
    keys = np.asarray(first.ghost_flat, dtype=np.int64).copy()
    if keys.size:
        owners = np.asarray(dist.owner(keys), dtype=np.int64)
        lidx = np.asarray(dist.local_index(keys), dtype=np.int64)
    else:
        owners = np.empty(0, dtype=np.int64)
        lidx = np.empty(0, dtype=np.int64)
    counts = np.zeros(keys.size, dtype=np.int64)
    local_sizes = np.asarray(first.local_sizes, dtype=np.int64)
    for key in member_keys:
        loc = product.patterns[key].localized
        refs = loc.refs_flat
        pid = np.repeat(
            np.arange(slot_bounds.size - 1, dtype=np.int64),
            np.diff(loc.ref_bounds),
        )
        ghost = refs >= local_sizes[pid]
        if ghost.any():
            gslot = slot_bounds[pid[ghost]] + (refs[ghost] - local_sizes[pid[ghost]])
            np.add.at(counts, gslot, 1)
    state = GroupState(
        array=array_name,
        indexes=tuple(k[1] for k in member_keys),
        slot_bounds=slot_bounds,
        keys=keys,
        owners=owners,
        lidx=lidx,
        counts=counts,
    )
    # build the sorted slot index now, while the full inspection is
    # already paying O(S log S): patches then only merge deltas into it
    state.slot_index(max(dist.size, 1))
    return state


def build_adapt_state(
    product: InspectorProduct,
    arrays: dict[str, DistArray],
) -> LoopAdaptState:
    """Capture snapshots + home map + group states after a full inspection."""
    snapshots = {
        name: np.asarray(arrays[name].global_view(), dtype=np.int64).copy()
        for name in product.loop.indirection_arrays()
    }
    state = LoopAdaptState(
        home=product.iteration_partition.owner_of(),
        snapshots=snapshots,
    )
    for member_keys in product_groups(product):
        state.groups[group_state_key(member_keys)] = build_group_state(
            product, arrays, member_keys
        )
    return state


def charge_state_build(machine, product: InspectorProduct, arrays) -> None:
    """Charge the bookkeeping cost of capturing adapt state.

    Each processor copies its local segment of every indirection array
    (the snapshot), records its ghost slot map, and tallies its
    reference counts -- all local integer/memory work.
    """
    n = machine.n_procs
    mem = np.zeros(n)
    for name in product.loop.indirection_arrays():
        mem += arrays[name].distribution.local_sizes().astype(np.float64)
    iops = np.zeros(n)
    for member_keys in product_groups(product):
        first = product.patterns[member_keys[0]].localized
        iops += STATE_IOPS_PER_GHOST * np.diff(
            np.asarray(first.ghost_bounds, dtype=np.float64)
        )
        for key in member_keys:
            loc = product.patterns[key].localized
            iops += STATE_IOPS_PER_REF * np.diff(
                np.asarray(loc.ref_bounds, dtype=np.float64)
            )
    machine.charge_compute_all(iops=iops, mem=mem)
