"""Supervisor-side obs spans across serve retries.

Workers are separate processes, so the service records one retroactive
``serve.job.attempt`` span per worker attempt; a crash-and-resume job
must show both the failed and the successful attempt, and the exported
artifact must interleave those spans with the lifecycle event bus.
"""

from repro.obs import load_trace
from repro.serve import JobConfig, SimulationService

CFG = dict(scenario="adapt", n_nodes=240, n_procs=4, checkpoint_every=2)


def test_retry_produces_one_span_per_attempt(tmp_path):
    cfg = JobConfig(steps=6, seed=7, crash_at_step=3, **CFG)
    with SimulationService(workers=1, backoff_base=0.01, seed=0, obs="on") as svc:
        job = svc.submit(cfg)
        job.wait(timeout=120)
        attempts = [s for s in svc.obs.spans if s.name == "serve.job.attempt"]
        assert len(attempts) == 2
        first, second = sorted(attempts, key=lambda s: s.attrs["attempt"])
        assert first.attrs["outcome"].startswith("crash:")
        assert second.attrs["outcome"] == "done"
        assert first.attrs["job"] == second.attrs["job"] == job.id
        assert all(s.dur_ns > 0 for s in attempts)

        path = svc.export_obs(str(tmp_path / "serve.jsonl"))
    trace = load_trace(path)
    assert trace["meta"]["component"] == "serve"
    assert trace["meta"]["counts"]["completed"] == 1
    span_outcomes = [s["attrs"]["outcome"] for s in trace["spans"]]
    assert "done" in span_outcomes
    # job lifecycle events ride the same artifact via the bus
    job_events = [
        e["payload"]["event"]
        for e in trace["events"]
        if e.get("category", "").startswith("serve.job/")
    ]
    assert "retrying" in job_events and "done" in job_events


def test_obs_off_records_nothing_but_events_still_flow():
    cfg = JobConfig(steps=3, seed=5, **CFG)
    with SimulationService(workers=1, seed=0) as svc:
        job = svc.submit(cfg)
        job.wait(timeout=120)
        assert not svc.obs.enabled
        assert len(svc.obs.spans) == 0
        # the bus (and the legacy views over it) is obs-independent
        assert [e["event"] for e in job.status()["events"]][-1] == "done"
        assert svc.bus.counts()[f"serve.job/{job.id}"] >= 3
