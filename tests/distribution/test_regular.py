"""Tests for BLOCK / CYCLIC / BLOCK-CYCLIC distributions."""

import numpy as np
import pytest

from repro.distribution import (
    BlockCyclicDistribution,
    BlockDistribution,
    CyclicDistribution,
)


class TestBlock:
    def test_even_split(self):
        d = BlockDistribution(8, 4)
        assert [d.local_size(p) for p in range(4)] == [2, 2, 2, 2]
        assert d.owner(0) == 0 and d.owner(7) == 3

    def test_uneven_split_last_procs_short(self):
        d = BlockDistribution(10, 4)  # chunk = 3
        assert [d.local_size(p) for p in range(4)] == [3, 3, 3, 1]
        assert d.owner(9) == 3

    def test_empty_trailing_processor(self):
        d = BlockDistribution(9, 4)  # chunk = 3: procs get 3,3,3,0
        assert d.local_size(3) == 0

    def test_vectorized_owner(self):
        d = BlockDistribution(100, 4)
        owners = d.owner(np.arange(100))
        assert owners[0] == 0 and owners[99] == 3
        assert np.all(np.diff(owners) >= 0)  # block owners are monotone

    def test_local_index(self):
        d = BlockDistribution(10, 4)
        assert d.local_index(0) == 0
        assert d.local_index(5) == 2

    def test_round_trip(self):
        d = BlockDistribution(10, 4)
        for g in range(10):
            p = int(d.owner(g))
            assert int(d.global_index(p, int(d.local_index(g)))) == g

    def test_out_of_range_global(self):
        d = BlockDistribution(10, 4)
        with pytest.raises(IndexError, match="out of range"):
            d.owner(10)

    def test_out_of_range_local(self):
        d = BlockDistribution(10, 4)
        with pytest.raises(IndexError, match="local index"):
            d.global_index(3, 2)

    def test_zero_size(self):
        d = BlockDistribution(0, 4)
        assert all(d.local_size(p) == 0 for p in range(4))

    def test_local_indices_contiguous(self):
        d = BlockDistribution(10, 4)
        assert d.local_indices(1).tolist() == [3, 4, 5]


class TestCyclic:
    def test_owner_mod(self):
        d = CyclicDistribution(10, 3)
        assert [int(d.owner(g)) for g in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_local_sizes_balanced(self):
        d = CyclicDistribution(10, 3)
        assert [d.local_size(p) for p in range(3)] == [4, 3, 3]

    def test_round_trip(self):
        d = CyclicDistribution(11, 3)
        for g in range(11):
            p = int(d.owner(g))
            assert int(d.global_index(p, int(d.local_index(g)))) == g

    def test_local_indices_strided(self):
        d = CyclicDistribution(10, 3)
        assert d.local_indices(1).tolist() == [1, 4, 7]


class TestBlockCyclic:
    def test_block_size_one_is_cyclic(self):
        bc = BlockCyclicDistribution(12, 3, block=1)
        cy = CyclicDistribution(12, 3)
        assert np.array_equal(bc.owner_map(), cy.owner_map())

    def test_large_block_is_block(self):
        bc = BlockCyclicDistribution(12, 3, block=4)
        bl = BlockDistribution(12, 3)
        assert np.array_equal(bc.owner_map(), bl.owner_map())

    def test_dealing(self):
        d = BlockCyclicDistribution(12, 2, block=2)
        assert d.owner_map().tolist() == [0, 0, 1, 1, 0, 0, 1, 1, 0, 0, 1, 1]

    def test_short_last_block(self):
        d = BlockCyclicDistribution(10, 2, block=3)
        # blocks: [0,1,2]->0  [3,4,5]->1  [6,7,8]->0  [9]->1
        assert [d.local_size(p) for p in range(2)] == [6, 4]

    def test_round_trip(self):
        d = BlockCyclicDistribution(23, 4, block=3)
        for g in range(23):
            p = int(d.owner(g))
            assert int(d.global_index(p, int(d.local_index(g)))) == g

    def test_invalid_block(self):
        with pytest.raises(ValueError, match="block size"):
            BlockCyclicDistribution(10, 2, block=0)

    def test_signature_includes_block(self):
        a = BlockCyclicDistribution(10, 2, block=2)
        b = BlockCyclicDistribution(10, 2, block=5)
        assert a.signature() != b.signature()


class TestEquality:
    def test_same_params_equal(self):
        assert BlockDistribution(10, 4) == BlockDistribution(10, 4)
        assert hash(BlockDistribution(10, 4)) == hash(BlockDistribution(10, 4))

    def test_kind_differs(self):
        assert BlockDistribution(10, 2) != CyclicDistribution(10, 2)

    def test_size_differs(self):
        assert BlockDistribution(10, 2) != BlockDistribution(11, 2)
