"""Tests for modeled collective operations."""

import pytest

from repro.machine import Machine
from repro.machine.collectives import (
    allgather_cost,
    allreduce_cost,
    alltoallv_cost,
    barrier_cost,
    broadcast_cost,
    reduce_cost,
)


class TestBroadcast:
    def test_single_proc_free(self):
        m = Machine(1)
        assert broadcast_cost(m, 1000) == 0.0

    def test_log_scaling(self):
        t2 = broadcast_cost(Machine(2), 1000)
        t16 = broadcast_cost(Machine(16), 1000)
        assert t16 == pytest.approx(4 * t2)

    def test_clocks_synchronized_after(self):
        m = Machine(8)
        broadcast_cost(m, 256)
        clocks = [m.clock(p) for p in range(8)]
        assert max(clocks) == pytest.approx(min(clocks))

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="negative broadcast"):
            broadcast_cost(Machine(2), -1)

    def test_root_counters(self):
        m = Machine(4)
        broadcast_cost(m, 100, root=2)
        assert m.procs[2].stats.messages_sent == 3
        assert m.procs[0].stats.messages_received == 1


class TestReduceAllreduce:
    def test_reduce_beats_nothing_on_one_proc(self):
        assert reduce_cost(Machine(1), 64) == 0.0

    def test_allreduce_is_reduce_plus_bcast(self):
        m1, m2 = Machine(8), Machine(8)
        t = allreduce_cost(m1, 64)
        tr = reduce_cost(m2, 64)
        tb = broadcast_cost(m2, 64)
        assert t == pytest.approx(tr + tb)

    def test_reduce_includes_combine_flops(self):
        m = Machine(2)
        t_small = reduce_cost(m, 8)
        m2 = Machine(2)
        t_big = reduce_cost(m2, 8 * 1024)
        assert t_big > t_small


class TestAllgather:
    def test_single_proc_free(self):
        assert allgather_cost(Machine(1), 100) == 0.0

    def test_counters_track_recursive_doubling(self):
        m = Machine(4)
        allgather_cost(m, 100)
        st = m.procs[0].stats
        assert st.messages_sent == 2  # log2(4) rounds
        assert st.bytes_sent == 300  # (2^2 - 1) * 100


class TestAlltoallv:
    def test_shape_checked(self):
        m = Machine(4)
        with pytest.raises(ValueError, match="4x4"):
            alltoallv_cost(m, [[0] * 3] * 4)

    def test_empty_matrix_near_free(self):
        m = Machine(4)
        t = alltoallv_cost(m, [[0] * 4 for _ in range(4)])
        # only the barrier cost
        assert t < 10 * m.cost.alpha

    def test_busy_processor_dominates(self):
        m = Machine(4)
        mat = [[0] * 4 for _ in range(4)]
        mat[0][1] = mat[0][2] = mat[0][3] = 10_000
        t = alltoallv_cost(m, mat)
        assert t >= 3 * m.cost.message_time(10_000)


def test_barrier_cost_returns_synced_time():
    m = Machine(4)
    m.charge_compute(3, flops=1e6)
    t = barrier_cost(m)
    assert all(m.clock(p) == pytest.approx(t) for p in range(4))
