"""Worker-side job execution: resume bit-identity, in process.

These run :func:`repro.serve.jobs.run_job` inline (no subprocesses) so
the checkpoint/resume/replay logic is pinned independently of the
supervisor machinery.
"""

import os

import pytest

from repro.serve import JobConfig
from repro.serve.jobs import _select_checkpoint, bit_identity, run_job


def adapt_cfg(steps, **kw):
    return JobConfig(
        scenario="adapt", n_nodes=300, n_procs=4, steps=steps,
        checkpoint_every=2, seed=3, **kw,
    )


def rebalance_cfg(steps, **kw):
    kw.setdefault("checkpoint_every", 2)
    return JobConfig(
        scenario="rebalance", n_nodes=300, n_procs=4, steps=steps,
        adapt_every=2, seed=5, **kw,
    )


def interrupted(full_cfg, stop_after, tmp_path, damage_primary=False):
    """Run the first ``stop_after`` steps, leave a checkpoint, 'crash'."""
    ck = str(tmp_path / "job.ckpt")
    from dataclasses import replace

    partial = replace(full_cfg, steps=stop_after, checkpoint_every=stop_after)
    run_job(partial, checkpoint_path=ck)
    if damage_primary:
        with open(ck, "r+b") as f:
            f.seek(os.path.getsize(ck) // 2)
            f.write(b"\xff\xff")
    return ck


@pytest.mark.parametrize("make_cfg", [adapt_cfg, rebalance_cfg], ids=["adapt", "rebalance"])
def test_resume_is_bit_identical(make_cfg, tmp_path):
    cfg = make_cfg(6)
    ref = run_job(cfg)
    ck = interrupted(cfg, 4, tmp_path)
    resumed = run_job(cfg, checkpoint_path=ck, attempt=2)
    assert resumed["resumed"]
    assert resumed["start_step"] == 4
    assert resumed["resume_source"] == "primary"
    assert bit_identity(resumed) == bit_identity(ref)


def test_resume_falls_back_to_prev_generation(tmp_path):
    cfg = adapt_cfg(6)
    ref = run_job(cfg)
    # two checkpoint generations: primary at step 4, .prev at step 2
    ck = str(tmp_path / "job.ckpt")
    from dataclasses import replace

    run_job(replace(cfg, steps=2), checkpoint_path=ck)
    run_job(replace(cfg, steps=4), checkpoint_path=ck)
    with open(ck, "r+b") as f:
        f.seek(os.path.getsize(ck) // 2)
        f.write(b"\xff\xff")
    resumed = run_job(cfg, checkpoint_path=ck, attempt=2)
    assert resumed["resume_source"] == "prev"
    assert resumed["start_step"] == 2  # lost one interval, not the campaign
    assert bit_identity(resumed) == bit_identity(ref)


def test_both_generations_damaged_restarts_from_scratch(tmp_path):
    cfg = adapt_cfg(4)
    ref = run_job(cfg)
    ck = interrupted(cfg, 2, tmp_path, damage_primary=True)
    assert _select_checkpoint(ck) is None
    restarted = run_job(cfg, checkpoint_path=ck, attempt=2)
    assert not restarted["resumed"]
    assert restarted["start_step"] == 0
    assert bit_identity(restarted) == bit_identity(ref)


def test_faults_recover_bit_identically(tmp_path):
    clean = run_job(adapt_cfg(6))
    faulted = run_job(
        adapt_cfg(6, faults=(("corrupt_gather", 1), ("corrupt_remap", 0)))
    )
    assert faulted["n_faults_fired"] == 2
    assert faulted["n_guard_events"] >= 1
    assert bit_identity(faulted) == bit_identity(clean)


def test_faults_plus_crash_resume_still_bit_identical(tmp_path):
    """The full gauntlet in one attempt chain: wire faults fire, the
    job is interrupted, and the resumed attempt (with the fault plan
    rebuilt fresh) still lands on the fault-free bits."""
    cfg = rebalance_cfg(
        6, faults=(("corrupt_remap", 5), ("duplicate_remap", 11))
    )
    clean = run_job(rebalance_cfg(6))
    ref = run_job(cfg)
    assert bit_identity(ref) == bit_identity(clean)
    ck = interrupted(cfg, 4, tmp_path)
    resumed = run_job(cfg, checkpoint_path=ck, attempt=2)
    assert resumed["resumed"]
    assert bit_identity(resumed) == bit_identity(clean)


def test_unknown_fault_kind_rejected():
    with pytest.raises(ValueError, match="fault kind"):
        run_job(adapt_cfg(2, faults=(("stall", 0),)))
