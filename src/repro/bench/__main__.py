"""Command-line entry point for the benchmark harness.

    python -m repro.bench table1 [--scale small|medium|paper]
    python -m repro.bench table2 [--procs 32]
    python -m repro.bench table3
    python -m repro.bench table4
    python -m repro.bench fig2
    python -m repro.bench tables [--json out.json]   # Tables 1-4 only
    python -m repro.bench all [--json out.json]

Prints the paper-style tables (simulated iPSC/860 seconds) to stdout.
The problem scale defaults to ``$REPRO_SCALE`` (or ``small``);
``--scale paper`` / ``REPRO_SCALE=paper`` runs the SC'93 problem sizes
(10K/53K-node meshes, full sweeps) for Tables 1-4.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.tables import (
    fig2_phase_breakdown,
    table1_schedule_reuse,
    table2_mapper_coupler,
    table3_rcb_detail,
    table4_block,
)

_TARGETS = {
    "table1": lambda args: table1_schedule_reuse(args.scale),
    "table2": lambda args: table2_mapper_coupler(args.scale, n_procs=args.procs),
    "table3": lambda args: table3_rcb_detail(args.scale),
    "table4": lambda args: table4_block(args.scale),
    "fig2": lambda args: fig2_phase_breakdown(args.scale, n_procs=args.procs),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables on the simulated machine.",
        epilog=(
            "The default scale comes from $REPRO_SCALE (small if unset). "
            "REPRO_SCALE=paper (or --scale paper) runs Tables 1-4 at the "
            "paper's SC'93 problem sizes: 10K/53K-node meshes and the full "
            "648-atom sweep.  --json writes the raw rows (exact floats) for "
            "golden-table fixtures."
        ),
    )
    parser.add_argument(
        "target",
        choices=sorted(_TARGETS) + ["tables", "all"],
        help=(
            "which table/figure to regenerate ('tables' = Tables 1-4 only, "
            "the golden-fixture set; 'all' adds fig2)"
        ),
    )
    parser.add_argument(
        "--scale",
        default=None,
        choices=["tiny", "small", "medium", "paper"],
        help=(
            "problem scale (default: $REPRO_SCALE or 'small'; "
            "'paper' = SC'93 sizes)"
        ),
    )
    parser.add_argument(
        "--procs",
        type=int,
        default=32,
        help="processor count for table2/fig2 (default 32)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the selected tables' raw rows as JSON to PATH",
    )
    args = parser.parse_args(argv)
    if args.target == "all":
        targets = sorted(_TARGETS)
    elif args.target == "tables":
        targets = ["table1", "table2", "table3", "table4"]
    else:
        targets = [args.target]
    collected: dict[str, list[dict]] = {}
    for name in targets:
        rows, text = _TARGETS[name](args)
        collected[name] = rows
        print(text)
        print()
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(collected, fh, indent=2)
        print(f"[rows written to {args.json}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
