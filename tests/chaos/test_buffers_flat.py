"""Flat-GhostBuffers equivalence: one backing array vs the seed per-proc lists.

``GhostBuffers`` historically held one NumPy array per processor and the
schedule unpacked with a loop over receiving processors; both are now one
flat CSR backing with single fancy-index applications.  These tests keep
the seed semantics as a naive reference (per-processor zero arrays, a
per-processor charge loop, and the per-proc list application path, which
``CommSchedule`` still accepts) and check over randomized schedules that

* allocation produces the same buffers and bit-identical machine charges,
* gather / scatter / scatter_op through the flat backing match the
  per-proc-list path in contents, clocks and counters (including the
  order-sensitive duplicate-slot cases), and
* the localize dedup kernel (`sorted_unique_inverse`) honors the
  ``np.unique(..., return_inverse=True)`` contract exactly, so ghost
  slot order is unchanged from the seed.
"""

import numpy as np
import pytest

from repro.chaos import GhostBuffers, build_translation_table, localize
from repro.chaos.costs import DEFAULT_COSTS
from repro.chaos.localize import sorted_unique_inverse
from repro.chaos.schedule import CommSchedule
from repro.distribution import BlockDistribution, DistArray, IrregularDistribution
from repro.machine import Machine


# ----------------------------------------------------------------------
# naive reference: the seed's per-processor GhostBuffers semantics
# ----------------------------------------------------------------------
class NaiveGhostBuffers:
    """Seed implementation: one array per processor, per-proc charge loop."""

    def __init__(self, machine, schedule, dtype=np.float64, costs=DEFAULT_COSTS):
        self.dtype = np.dtype(dtype)
        self.bufs = [
            np.zeros(schedule.ghost_sizes[p], dtype=self.dtype)
            for p in range(machine.n_procs)
        ]
        machine.charge_compute_all(
            iops=[costs.buffer_assign * s for s in schedule.ghost_sizes]
        )

    def fill(self, value):
        for b in self.bufs:
            b.fill(value)


def random_schedule(rng, machine, arr, max_ghost=10):
    """Random schedule against ``arr`` (duplicate slots allowed)."""
    n = machine.n_procs
    min_local = min(arr.distribution.local_size(p) for p in range(n))
    ghost_sizes = [int(rng.integers(0, max_ghost + 1)) for _ in range(n)]
    send, recv = {}, {}
    for q in range(n):
        for p in range(n):
            if rng.random() < 0.5:
                continue
            count = 0 if ghost_sizes[p] == 0 else int(rng.integers(0, 2 * ghost_sizes[p]))
            send[(q, p)] = rng.integers(0, max(min_local, 1), size=count)
            recv[(q, p)] = rng.integers(0, max(ghost_sizes[p], 1), size=count)
    return CommSchedule(
        machine, arr.distribution.signature(), send, recv, ghost_sizes
    )


def make_world(n_procs, size, seed):
    machine = Machine(
        n_procs, topology="full" if n_procs & (n_procs - 1) else "hypercube"
    )
    dist = BlockDistribution(size, n_procs)
    rng = np.random.default_rng(seed)
    arr = DistArray.from_global(machine, dist, rng.normal(size=size), name="x")
    return machine, arr


def clocks(machine):
    return [machine.procs[p].stats.clock for p in range(machine.n_procs)]


def counters(machine):
    return [
        (
            s.stats.messages_sent,
            s.stats.messages_received,
            s.stats.bytes_sent,
            s.stats.bytes_received,
            s.stats.flops,
            s.stats.iops,
            s.stats.mem_ops,
        )
        for s in machine.procs
    ]


CASES = [(2, 16, 0), (3, 27, 1), (4, 48, 2), (8, 96, 3)]


# ----------------------------------------------------------------------
# allocation / views / fill / charging
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n_procs,size,seed", CASES)
def test_allocation_matches_seed(n_procs, size, seed):
    rng = np.random.default_rng(seed)
    m_flat, arr_flat = make_world(n_procs, size, seed)
    m_ref, arr_ref = make_world(n_procs, size, seed)
    sched_flat = random_schedule(rng, m_flat, arr_flat)
    rng = np.random.default_rng(seed)
    sched_ref = random_schedule(rng, m_ref, arr_ref)

    flat = GhostBuffers(m_flat, sched_flat)
    ref = NaiveGhostBuffers(m_ref, sched_ref)

    assert flat.total_elements() == sum(b.size for b in ref.bufs)
    for p in range(n_procs):
        np.testing.assert_array_equal(flat.buf(p), ref.bufs[p])
    assert clocks(m_flat) == clocks(m_ref)
    assert counters(m_flat) == counters(m_ref)


def test_buf_views_are_live_and_fill_is_flat():
    m, arr = make_world(4, 32, 9)
    rng = np.random.default_rng(9)
    sched = random_schedule(rng, m, arr)
    gb = GhostBuffers(m, sched)
    if gb.buf(0).size:
        gb.buf(0)[:] = 7.5
        assert np.all(gb.backing[: gb.offsets[1]] == 7.5)
    gb.buffers[-1][:] = -2.0
    np.testing.assert_array_equal(gb.buf(m.n_procs - 1), gb.backing[gb.offsets[-2] :])
    gb.fill(3.0)
    assert np.all(gb.backing == 3.0)
    ref = NaiveGhostBuffers(Machine(4), sched)
    ref.fill(3.0)
    for p in range(4):
        np.testing.assert_array_equal(gb.buf(p), ref.bufs[p])


def test_charge_flag_skips_charging():
    m, arr = make_world(2, 8, 0)
    rng = np.random.default_rng(0)
    sched = random_schedule(rng, m, arr)
    before = clocks(m)
    GhostBuffers(m, sched, charge=False)
    assert clocks(m) == before


# ----------------------------------------------------------------------
# gather / scatter / scatter_op: flat backing vs per-proc list path
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n_procs,size,seed", CASES)
def test_gather_flat_matches_list_path(n_procs, size, seed):
    rng = np.random.default_rng(seed + 50)
    m_flat, arr_flat = make_world(n_procs, size, seed)
    m_ref, arr_ref = make_world(n_procs, size, seed)
    sched_flat = random_schedule(rng, m_flat, arr_flat)
    rng = np.random.default_rng(seed + 50)
    sched_ref = random_schedule(rng, m_ref, arr_ref)

    gb = GhostBuffers(m_flat, sched_flat, charge=False)
    ref_bufs = [np.zeros(s) for s in sched_ref.ghost_sizes]

    sched_flat.gather(arr_flat, gb)
    sched_ref.gather(arr_ref, ref_bufs)

    for p in range(n_procs):
        np.testing.assert_array_equal(gb.buf(p), ref_bufs[p])
    assert clocks(m_flat) == clocks(m_ref)
    assert counters(m_flat) == counters(m_ref)


@pytest.mark.parametrize("n_procs,size,seed", CASES)
@pytest.mark.parametrize("opname", ["assign", "add", "max", "multiply"])
def test_reverse_flat_matches_list_path(n_procs, size, seed, opname):
    rng = np.random.default_rng(seed + 90)
    m_flat, arr_flat = make_world(n_procs, size, seed)
    m_ref, arr_ref = make_world(n_procs, size, seed)
    sched_flat = random_schedule(rng, m_flat, arr_flat)
    rng = np.random.default_rng(seed + 90)
    sched_ref = random_schedule(rng, m_ref, arr_ref)

    gb = GhostBuffers(m_flat, sched_flat, charge=False)
    contrib = np.random.default_rng(seed).normal(size=gb.total_elements())
    gb.backing[:] = contrib
    ref_bufs = [
        contrib[gb.offsets[p] : gb.offsets[p + 1]].copy() for p in range(n_procs)
    ]

    op = {"assign": None, "add": np.add, "max": np.maximum, "multiply": np.multiply}[
        opname
    ]
    if op is None:
        sched_flat.scatter(gb, arr_flat)
        sched_ref.scatter(ref_bufs, arr_ref)
    else:
        sched_flat.scatter_op(gb, arr_flat, op)
        sched_ref.scatter_op(ref_bufs, arr_ref, op)

    np.testing.assert_array_equal(arr_flat.to_global(), arr_ref.to_global())
    assert clocks(m_flat) == clocks(m_ref)
    assert counters(m_flat) == counters(m_ref)


def test_flat_ndarray_input_is_accepted():
    """A raw flat array laid out like the ghost backing works directly."""
    m_a, arr_a = make_world(4, 24, 11)
    m_b, arr_b = make_world(4, 24, 11)
    rng = np.random.default_rng(11)
    sched_a = random_schedule(rng, m_a, arr_a)
    rng = np.random.default_rng(11)
    sched_b = random_schedule(rng, m_b, arr_b)

    flat = np.zeros(sum(sched_a.ghost_sizes))
    gb = GhostBuffers(m_b, sched_b, charge=False)
    sched_a.gather(arr_a, flat)
    sched_b.gather(arr_b, gb)
    np.testing.assert_array_equal(flat, gb.backing)


def test_wrong_flat_size_raises():
    m, arr = make_world(2, 8, 3)
    rng = np.random.default_rng(3)
    sched = random_schedule(rng, m, arr)
    with pytest.raises(ValueError, match="flat ghost array"):
        sched.gather(arr, np.zeros(sum(sched.ghost_sizes) + 1))


def test_foreign_ghostbuffers_layout_raises():
    m, arr = make_world(2, 8, 4)
    sched = CommSchedule(
        m,
        arr.distribution.signature(),
        {(0, 1): np.array([0, 1])},
        {(0, 1): np.array([0, 1])},
        [0, 2],
    )
    other = CommSchedule(
        m,
        arr.distribution.signature(),
        {(1, 0): np.array([0])},
        {(1, 0): np.array([0])},
        [1, 0],
    )
    gb_other = GhostBuffers(m, other, charge=False)
    with pytest.raises(ValueError, match="different schedule"):
        sched.gather(arr, gb_other)


# ----------------------------------------------------------------------
# localize dedup kernel vs np.unique
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(8))
def test_sorted_unique_inverse_matches_np_unique(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(0, 5000))
    keys = rng.integers(0, max(1, n // 3), size=n).astype(np.int64)
    uniq, inv = sorted_unique_inverse(keys)
    want_uniq, want_inv = np.unique(keys, return_inverse=True)
    np.testing.assert_array_equal(uniq, want_uniq)
    np.testing.assert_array_equal(uniq[inv], keys)
    np.testing.assert_array_equal(inv, want_inv)


def test_sorted_unique_inverse_empty_and_single():
    uniq, inv = sorted_unique_inverse(np.empty(0, dtype=np.int64))
    assert uniq.size == 0 and inv.size == 0
    uniq, inv = sorted_unique_inverse(np.array([42, 42, 42]))
    assert uniq.tolist() == [42]
    assert inv.tolist() == [0, 0, 0]


@pytest.mark.parametrize("seed", range(4))
def test_localize_ghost_order_matches_np_unique(seed):
    """Ghost slot order must stay np.unique's per-processor sorted order."""
    rng = np.random.default_rng(seed)
    n_procs, size = 4, 40
    m = Machine(n_procs)
    owner_map = rng.integers(0, n_procs, size=size)
    dist = IrregularDistribution(owner_map, n_procs)
    tt = build_translation_table(m, dist)
    refs = [
        rng.integers(0, size, size=int(rng.integers(0, 60)))
        for _ in range(n_procs)
    ]
    res = localize(m, tt, [np.asarray(r, dtype=np.int64) for r in refs])
    owners = np.asarray(dist.owner(np.arange(size)))
    for p in range(n_procs):
        off = np.asarray(refs[p])[owners[np.asarray(refs[p], dtype=np.int64)] != p]
        np.testing.assert_array_equal(res.ghost_globals[p], np.unique(off))
        # localized indices reproduce the reference stream
        g = np.arange(size, dtype=np.float64) * 3
        combined = np.concatenate(
            [g[dist.local_indices(p)], g[res.ghost_globals[p]]]
        )
        np.testing.assert_array_equal(
            combined[res.local_refs[p]], g[np.asarray(refs[p], dtype=np.int64)]
        )
