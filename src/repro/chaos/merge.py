"""Schedule merging: one message per processor pair per phase.

PARTI/CHAOS could merge the communication of several schedules into a
single exchange so that a loop reading k patterns pays one message
startup per neighbour instead of k.  With iPSC/860-class latencies
(~100 us) this visibly reduces executor time for multi-pattern loops --
the paper's loop L2 gathers two patterns, the MD loop eight.

``gather_merged`` performs the data movement of every (schedule, array,
buffers) item but charges the machine a single combined exchange;
``merged_message_count`` reports the message saving for the ablation
bench.
"""

from __future__ import annotations

import numpy as np

from repro.chaos.buffers import GhostBuffers
from repro.chaos.schedule import CommSchedule
from repro.distribution.distarray import DistArray
from repro.machine.machine import Machine


def _validate(items) -> Machine:
    if not items:
        raise ValueError("nothing to gather")
    machine = items[0][0].machine
    for sched, arr, ghosts in items:
        if sched.machine is not machine:
            raise ValueError("schedules live on different machines")
        sched._check_array(arr)
        bufs = ghosts.buffers if isinstance(ghosts, GhostBuffers) else ghosts
        sched._check_ghosts(bufs, arr.itemsize)
    return machine


def gather_merged(
    items: list[tuple[CommSchedule, DistArray, GhostBuffers | list[np.ndarray]]],
) -> None:
    """Gather several access patterns in one communication phase.

    ``items`` pairs each schedule with the array it reads and the ghost
    buffers it fills.  Data movement is identical to calling
    ``sched.gather`` per item; the charge differs: all wire payloads for
    one (owner, requester) pair travel in a single message.
    """
    machine = _validate(items)
    n = machine.n_procs
    pack = np.zeros(n)
    unpack = np.zeros(n)
    wires: dict[tuple[int, int], int] = {}
    for sched, arr, ghosts in items:
        bufs = ghosts.buffers if isinstance(ghosts, GhostBuffers) else ghosts
        for (q, p), sl in sched.send_lists.items():
            if not len(sl):
                continue
            bufs[p][sched.recv_slots[(q, p)]] = arr.local(q)[sl]
            pack[q] += sched.costs.pack_unpack_mem * len(sl)
            unpack[p] += sched.costs.pack_unpack_mem * len(sl)
            wires[(q, p)] = wires.get((q, p), 0) + len(sl) * arr.itemsize
    machine.charge_compute_all(mem=list(pack))
    machine.exchange(wires)
    machine.charge_compute_all(mem=list(unpack))


def scatter_op_merged(
    items: list[
        tuple[CommSchedule, list[np.ndarray], DistArray, np.ufunc]
    ],
) -> None:
    """Scatter-combine several write patterns in one communication phase.

    ``items`` holds (schedule, ghost contribution buffers, target array,
    combining ufunc) tuples; wire payloads per (requester, owner) pair
    are merged exactly like :func:`gather_merged`.
    """
    if not items:
        raise ValueError("nothing to scatter")
    machine = items[0][0].machine
    n = machine.n_procs
    pack = np.zeros(n)
    unpack = np.zeros(n)
    combine = np.zeros(n)
    wires: dict[tuple[int, int], int] = {}
    for sched, bufs, arr, op in items:
        if sched.machine is not machine:
            raise ValueError("schedules live on different machines")
        sched._check_array(arr)
        sched._check_ghosts(bufs, arr.itemsize)
        if not hasattr(op, "at"):
            raise TypeError(f"op must be a NumPy ufunc with .at, got {op!r}")
        for (q, p), sl in sched.send_lists.items():
            if not len(sl):
                continue
            data = bufs[p][sched.recv_slots[(q, p)]]
            op.at(arr.local(q), sl, data)
            pack[p] += sched.costs.pack_unpack_mem * len(sl)
            unpack[q] += sched.costs.pack_unpack_mem * len(sl)
            combine[q] += len(sl)
            wires[(p, q)] = wires.get((p, q), 0) + len(sl) * arr.itemsize
    machine.charge_compute_all(mem=list(pack))
    machine.exchange(wires)
    machine.charge_compute_all(mem=list(unpack), flops=list(combine))


def merged_message_count(schedules: list[CommSchedule]) -> tuple[int, int]:
    """(separate, merged) non-empty message counts for a gather phase."""
    separate = sum(s.message_count() for s in schedules)
    pairs = set()
    for s in schedules:
        for (q, p), sl in s.send_lists.items():
            if len(sl) and q != p:
                pairs.add((q, p))
    return separate, len(pairs)
