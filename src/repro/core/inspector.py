"""The inspector: preprocessing for one FORALL loop (Phases B and D).

For a loop L the inspector

1. partitions L's iterations (Phase B, Section 4.3),
2. for every distinct access pattern ``array(index(i))`` appearing in L,
   builds the reference list each processor's iterations generate,
   localizes it (translation, deduplication, ghost-slot assignment) and
   builds the communication schedule (Phase D), and
3. allocates ghost buffers bound to each pattern.

The returned :class:`InspectorProduct` is exactly what the paper's reuse
mechanism saves: "communication schedules, loop iteration partitions,
information that associates off-processor data copies with on-processor
buffer locations".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chaos.buffers import GhostBuffers
from repro.chaos.costs import ChaosCosts, DEFAULT_COSTS
from repro.chaos.localize import FlatRefs, LocalizeResult, localize
from repro.chaos.transcache import TranslationCache
from repro.chaos.ttable import TranslationTable, build_translation_table
from repro.core import cachekey
from repro.core.forall import Assign, ForallLoop
from repro.core.iteration import (
    IterationPartition,
    partition_cache_key,
    partition_iterations,
)
from repro.distribution.distarray import DistArray
from repro.machine.machine import Machine


@dataclass
class PatternData:
    """Inspector output for one distinct ``array(index(i))`` pattern.

    Under pattern coalescing (PARTI's incremental-schedule optimization)
    several patterns on the same array share one ``LocalizeResult``
    *schedule* and one ghost region; each pattern keeps its own
    ``localized`` view whose ``local_refs`` index the shared space.

    ``exec_space`` / ``exec_refs`` are executor-side caches (see
    ``repro.core.executor``): pure functions of this immutable product
    (the ghost backing never reallocates and the iteration partition is
    fixed), computed lazily on first execution and reused by every
    subsequent one -- the schedule-reuse scenarios execute the same
    product once per time step.
    """

    array: str
    index: str | None
    localized: LocalizeResult
    ghosts: GhostBuffers
    exec_space: object | None = field(default=None, repr=False, compare=False)
    exec_refs: np.ndarray | None = field(default=None, repr=False, compare=False)


@dataclass
class InspectorProduct:
    """Saved inspector results for one loop (the reusable artifact)."""

    loop: ForallLoop
    iteration_partition: IterationPartition
    patterns: dict[tuple[str, str | None], PatternData]
    dist_signatures: dict[str, tuple]

    def pattern(self, array: str, index: str | None) -> PatternData:
        return self.patterns[(array, index)]


def run_inspector(
    machine: Machine,
    loop: ForallLoop,
    arrays: dict[str, DistArray],
    iter_method: str = "almost_owner",
    ttable_variant: str = "auto",
    costs: ChaosCosts = DEFAULT_COSTS,
    ttables: dict[tuple[str, tuple], TranslationTable] | None = None,
    coalesce_patterns: bool = True,
    cache: TranslationCache | None = None,
) -> InspectorProduct:
    """Run the full inspector for ``loop``.

    ``ttables`` is an optional cache of translation tables keyed by
    ``(array name, distribution signature)``; the program context passes
    one so repeated inspections of differently-indexed loops over the
    same arrays don't rebuild tables.

    ``coalesce_patterns=True`` (the default) applies PARTI's
    incremental-schedule idea: all patterns referencing one array are
    localized *together*, so an element reached through two indirections
    is fetched once and the loop gathers one schedule per array instead
    of one per pattern.  Pass ``False`` to opt out (the historical
    per-pattern baseline; ``bench_ablation_coalescing`` measures the
    gap, and the longitudinal bench scenarios pin it for comparability
    with their committed baselines).

    ``cache`` is the persistent cross-execution
    :class:`~repro.chaos.transcache.TranslationCache`: re-inspections of
    unchanged patterns (and unchanged iteration partitions) skip the
    translation/dedup/vote kernels and replay the saved simulated
    charges.  Simulated numbers are bit-identical with or without it.
    """
    for name in loop.data_arrays() + loop.indirection_arrays():
        if name not in arrays:
            raise KeyError(f"loop {loop.name!r} references unbound array {name!r}")

    # Phase B: iteration partition.  The partition key doubles as a
    # component of every localize key below: reference streams are
    # gathered in iteration order, so equal partition keys are what
    # makes equal indirection content imply equal streams.
    part_key = (
        partition_cache_key(loop, arrays, iter_method, machine.n_procs)
        if cache is not None
        else None
    )
    obs = machine.obs
    with obs.span("inspector.partition", loop=loop.name, method=iter_method):
        itpart = partition_iterations(
            machine, loop, arrays, iter_method, costs, cache=cache, cache_key=part_key
        )

    # Phase D: localize every distinct access pattern
    n_procs = machine.n_procs
    ref_cache: dict[str | None, FlatRefs] = {}
    patterns: dict[tuple[str, str | None], PatternData] = {}

    # flattened iteration partition: reference lists stay in flat
    # (values, bounds) form end to end — one fancy-index over all
    # iterations, no per-processor splits or concatenations (the
    # partition already stores its flat form; no re-concatenation)
    iter_flat, iter_bounds = itpart.iters_flat()

    def per_proc_refs(index: str | None) -> FlatRefs:
        """Global element indices each processor's iterations touch."""
        refs = ref_cache.get(index)
        if refs is None:
            if index is None:
                refs = FlatRefs(iter_flat, iter_bounds)
            else:
                # cached, content-versioned global assembly: repeated
                # inspections of an unmutated indirection array reuse it
                values = np.asarray(arrays[index].global_view(), dtype=np.int64)
                refs = FlatRefs(values[iter_flat], iter_bounds)
            ref_cache[index] = refs
        return refs

    def get_ttable(array_name: str) -> TranslationTable:
        arr = arrays[array_name]
        tkey = (array_name, arr.distribution.signature())
        if ttables is not None and tkey in ttables:
            return ttables[tkey]
        with obs.span("inspector.ttable.build", array=array_name):
            tt = build_translation_table(
                machine, arr.distribution, costs, ttable_variant
            )
        if ttables is not None:
            ttables[tkey] = tt
        return tt

    # distinct patterns per array, in first-appearance order
    by_array: dict[str, list[str | None]] = {}
    for ref in loop.refs():
        idxs = by_array.setdefault(ref.array, [])
        if ref.index not in idxs:
            idxs.append(ref.index)

    # arrays assigned (overwrite semantics) must keep per-pattern ghost
    # regions: a coalesced region would contain never-assigned slots
    # whose staging fill could overwrite owner data on scatter
    assign_targets = {
        s.lhs.array for s in loop.statements if isinstance(s, Assign)
    }

    def loc_cache_key(tt, dist, indexes: tuple) -> "tuple[tuple, tuple] | None":
        """(slot, version) for one localize product, or None when uncached.

        The slot deliberately excludes the data array's *name*: sibling
        arrays referenced through the same indirections over the same
        distribution (``x(edge(i))`` / ``y(edge(i))``) produce
        bit-identical products and share one entry -- a warm hit even
        within a single cold inspection.  The version folds in the full
        partition key: reference streams are gathered in iteration
        order.
        """
        if cache is None:
            return None
        slot = (
            "localize",
            loop.name,
            indexes,
            type(tt).__name__,
            costs,
            n_procs,
        )
        version = (
            cachekey.dist_key(dist),
            tuple(
                "direct" if ix is None else cachekey.content_key(arrays[ix])
                for ix in indexes
            ),
            part_key,
        )
        return slot, version

    for array_name, indexes in by_array.items():
        arr = arrays[array_name]
        tt = get_ttable(array_name)
        if (
            not coalesce_patterns
            or len(indexes) == 1
            or array_name in assign_targets
        ):
            for index in indexes:
                with obs.span(
                    "inspector.localize", array=array_name, patterns=1
                ):
                    loc = localize(
                        machine,
                        tt,
                        lambda index=index: per_proc_refs(index),
                        costs,
                        cache=cache,
                        cache_key=loc_cache_key(tt, arr.distribution, (index,)),
                    )
                ghosts = GhostBuffers(machine, loc.schedule, dtype=arr.dtype, costs=costs)
                patterns[(array_name, index)] = PatternData(
                    array=array_name, index=index, localized=loc, ghosts=ghosts
                )
            continue

        # coalesced: localize the union of all patterns' reference lists.
        # Every pattern's per-processor segment has the same size (all
        # reference streams are gathers over the iteration partition), so
        # the concatenation is built lazily -- a warm cache hit skips it
        # -- and the split back out is pure size arithmetic.
        def combined_refs(indexes=indexes) -> list:
            per_pattern = [per_proc_refs(index) for index in indexes]
            return [
                np.concatenate([fr.segment(p) for fr in per_pattern])
                if any(fr.segment(p).size for fr in per_pattern)
                else np.empty(0, dtype=np.int64)
                for p in range(n_procs)
            ]

        with obs.span(
            "inspector.localize", array=array_name, patterns=len(indexes)
        ):
            loc = localize(
                machine,
                tt,
                combined_refs,
                costs,
                cache=cache,
                cache_key=loc_cache_key(tt, arr.distribution, tuple(indexes)),
            )
        ghosts = GhostBuffers(machine, loc.schedule, dtype=arr.dtype, costs=costs)
        # split the localized reference lists back out per pattern
        seg_sizes = np.diff(iter_bounds)
        for k, index in enumerate(indexes):
            split_refs = []
            for p in range(n_procs):
                start = k * int(seg_sizes[p])
                stop = start + int(seg_sizes[p])
                split_refs.append(loc.local_refs[p][start:stop])
            view = LocalizeResult(
                local_refs=split_refs,
                ghost_globals=loc.ghost_globals,
                local_sizes=loc.local_sizes,
                schedule=loc.schedule,
            )
            patterns[(array_name, index)] = PatternData(
                array=array_name, index=index, localized=view, ghosts=ghosts
            )

    dist_signatures = {
        name: arrays[name].distribution.signature()
        for name in loop.data_arrays()
    }
    return InspectorProduct(
        loop=loop,
        iteration_partition=itpart,
        patterns=patterns,
        dist_signatures=dist_signatures,
    )
