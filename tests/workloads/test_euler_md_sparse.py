"""Tests for the Euler, MD and SpMV workloads end-to-end."""

import numpy as np
import pytest

from repro.machine import Machine
from repro.workloads import (
    euler_edge_loop,
    euler_sequential_reference,
    generate_mesh,
    md_force_loop,
    md_sequential_reference,
    pair_list,
    random_sparse_csr,
    scale_config,
    setup_euler_program,
    setup_md_program,
    setup_spmv_program,
    spmv_loop,
    spmv_sequential_reference,
    water_box,
)


class TestEuler:
    def test_simulated_sweep_matches_reference(self):
        mesh = generate_mesh(150, seed=1)
        m = Machine(4)
        prog = setup_euler_program(m, mesh, seed=1)
        x = prog.arrays["x"].to_global()
        prog.forall(euler_edge_loop(mesh), n_times=3)
        want = euler_sequential_reference(x, mesh.edges, n_times=3)
        assert np.allclose(prog.arrays["y"].to_global(), want)

    def test_sweep_after_repartition_matches(self):
        mesh = generate_mesh(150, seed=2)
        m = Machine(4)
        prog = setup_euler_program(m, mesh, seed=2)
        x = prog.arrays["x"].to_global()
        prog.construct("G", mesh.n_nodes, link=("end_pt1", "end_pt2"))
        prog.set_distribution("fmt", "G", "RSB")
        prog.redistribute("reg", "fmt")
        prog.forall(euler_edge_loop(mesh), n_times=2)
        want = euler_sequential_reference(x, mesh.edges, n_times=2)
        assert np.allclose(prog.arrays["y"].to_global(), want)

    def test_geometry_arrays_present(self):
        mesh = generate_mesh(100, seed=0)
        prog = setup_euler_program(Machine(2), mesh)
        for name in ("xc", "yc", "zc"):
            assert name in prog.arrays
            assert prog.arrays[name].size == mesh.n_nodes


class TestWaterBox:
    def test_shape_and_charges(self):
        coords, charges = water_box(648, seed=0)
        assert coords.shape == (3, 648)
        assert charges.shape == (648,)
        # overall neutral, 216 O and 432 H
        assert abs(charges.sum()) < 1e-9
        assert (charges < 0).sum() == 216

    def test_density_is_liquid_like(self):
        coords, _ = water_box(648, seed=0)
        vol = np.prod(coords.max(axis=1) - coords.min(axis=1))
        mol_per_a3 = 216 / vol
        assert 0.02 < mol_per_a3 < 0.05  # ~0.033 for liquid water

    def test_non_multiple_of_three_rejected(self):
        with pytest.raises(ValueError, match="multiple of 3"):
            water_box(100)

    def test_pair_list_properties(self):
        coords, _ = water_box(648, seed=0)
        pairs = pair_list(coords, cutoff=8.0)
        assert pairs.shape[0] == 2
        assert np.all(pairs[0] < pairs[1])
        d = coords[:, pairs[0]] - coords[:, pairs[1]]
        assert np.linalg.norm(d, axis=0).max() <= 8.0 + 1e-9
        # a dense-ish pair list: tens of neighbours per atom
        assert pairs.shape[1] > 10 * 648

    def test_pair_list_bad_shape(self):
        with pytest.raises(ValueError, match=r"\(3, N\)"):
            pair_list(np.zeros((2, 10)))


class TestMDSweep:
    def test_simulated_force_matches_reference(self):
        m = Machine(4)
        prog, pairs = setup_md_program(m, n_atoms=648, cutoff=5.0, seed=0)
        coords = np.stack(
            [prog.arrays[c].to_global() for c in ("rx", "ry", "rz")]
        )
        charges = prog.arrays["q"].to_global()
        prog.forall(md_force_loop(pairs.shape[1]), n_times=2)
        want = md_sequential_reference(coords, charges, pairs, n_times=2)
        assert np.allclose(prog.arrays["fx"].to_global(), want)

    def test_schedule_reuse_in_md(self):
        m = Machine(4)
        prog, pairs = setup_md_program(m, n_atoms=648, cutoff=5.0)
        loop = md_force_loop(pairs.shape[1])
        prog.forall(loop, n_times=5)
        assert prog.inspector_runs == 1
        assert prog.reuse_hits == 4


class TestSpMV:
    def test_matrix_generator(self):
        mat = random_sparse_csr(100, nnz_per_row=7, seed=0)
        assert mat.shape == (100, 100)
        assert 4 * 100 <= mat.nnz <= 8 * 100

    def test_bad_size(self):
        with pytest.raises(ValueError, match="positive"):
            random_sparse_csr(0)

    def test_simulated_spmv_matches_scipy(self):
        mat = random_sparse_csr(60, seed=3)
        m = Machine(4)
        prog = setup_spmv_program(m, mat, seed=3)
        x = prog.arrays["x"].to_global()
        prog.forall(spmv_loop(mat.nnz), n_times=2)
        want = spmv_sequential_reference(mat, x, n_times=2)
        assert np.allclose(prog.arrays["y"].to_global(), want)


class TestScaleConfig:
    def test_default_small(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_config().name == "small"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        cfg = scale_config()
        assert cfg.mesh_large == 53000

    def test_explicit_name_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert scale_config("small").name == "small"

    def test_unknown_scale(self):
        with pytest.raises(ValueError, match="unknown scale"):
            scale_config("huge")
