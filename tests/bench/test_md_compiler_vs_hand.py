"""The paper's compiler-vs-hand claim on the second workload (MD)."""

import numpy as np

from repro.bench import run_md_experiment
from repro.chaos.costs import ChaosCosts, DEFAULT_COSTS


class TestMDCompilerVsHand:
    def test_within_fifteen_percent(self):
        hand = run_md_experiment(
            n_atoms=324, n_procs=8, cutoff=5.0, path="hand", iterations=20
        )
        comp = run_md_experiment(
            n_atoms=324, n_procs=8, cutoff=5.0, path="compiler", iterations=20
        )
        assert comp.total <= 1.15 * hand.total
        assert comp.total >= hand.total  # tracking is never free

    def test_reuse_shape_on_md(self):
        reuse = run_md_experiment(n_atoms=324, n_procs=8, cutoff=5.0, iterations=10)
        no = run_md_experiment(
            n_atoms=324, n_procs=8, cutoff=5.0, iterations=10, reuse=False
        )
        loop = lambda r: r.phase("inspector") + r.phase("executor")
        assert loop(no) > 2 * loop(reuse)


class TestChaosCosts:
    def test_scaled_uniformly(self):
        doubled = DEFAULT_COSTS.scaled(2.0)
        assert doubled.hash_insert == 2 * DEFAULT_COSTS.hash_insert
        assert doubled.remap_build == 2 * DEFAULT_COSTS.remap_build
        assert doubled.index_bytes == DEFAULT_COSTS.index_bytes  # wire size fixed

    def test_negative_scale_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="negative"):
            DEFAULT_COSTS.scaled(-1.0)

    def test_costs_feed_through_inspector(self):
        """Doubling CHAOS op counts roughly doubles inspector time."""
        from repro.chaos import build_translation_table, localize
        from repro.distribution import BlockDistribution
        from repro.machine import Machine

        rng = np.random.default_rng(0)
        refs = [rng.integers(0, 400, 300) for _ in range(4)]
        times = {}
        for label, costs in (("1x", DEFAULT_COSTS), ("2x", DEFAULT_COSTS.scaled(2.0))):
            m = Machine(4)
            dist = BlockDistribution(400, 4)
            tt = build_translation_table(m, dist, costs)
            m.reset()
            localize(m, tt, refs, costs)
            times[label] = m.elapsed()
        assert 1.5 < times["2x"] / times["1x"] < 2.5
