"""Partition quality metrics: edge cut, communication volume, imbalance.

These are what the executor-time differences in the paper's Table 2 come
from: BLOCK on a randomly numbered mesh cuts most edges; RCB cuts what
crosses its planes; RSB cuts least.  The benches report them next to the
simulated times so the causality is visible.
"""

from __future__ import annotations

import numpy as np


def _check(edges: np.ndarray, owners: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    edges = np.ascontiguousarray(edges, dtype=np.int64)
    owners = np.ascontiguousarray(owners, dtype=np.int64)
    if edges.ndim != 2 or edges.shape[0] != 2:
        raise ValueError(f"edges must have shape (2, E), got {edges.shape}")
    if edges.size and edges.max() >= owners.size:
        raise ValueError("edge endpoint out of range of owner map")
    return edges, owners


def edge_cut(edges: np.ndarray, owners: np.ndarray) -> int:
    """Number of edges whose endpoints live on different processors."""
    edges, owners = _check(edges, owners)
    if edges.size == 0:
        return 0
    return int((owners[edges[0]] != owners[edges[1]]).sum())


def boundary_vertices(edges: np.ndarray, owners: np.ndarray) -> np.ndarray:
    """Vertices incident to at least one cut edge."""
    edges, owners = _check(edges, owners)
    if edges.size == 0:
        return np.empty(0, dtype=np.int64)
    cut = owners[edges[0]] != owners[edges[1]]
    return np.unique(np.concatenate([edges[0][cut], edges[1][cut]]))


def comm_volume(edges: np.ndarray, owners: np.ndarray) -> int:
    """Total gather volume: distinct (vertex, remote part) pairs.

    For each vertex, count the parts other than its own that reference it
    through an edge; summed over vertices this is exactly the number of
    ghost copies an edge-loop gather must move.
    """
    edges, owners = _check(edges, owners)
    if edges.size == 0:
        return 0
    u, v = edges
    cut = owners[u] != owners[v]
    # vertex u is needed by part owners[v] and vice versa
    pairs = np.concatenate(
        [
            np.stack([u[cut], owners[v][cut]], axis=1),
            np.stack([v[cut], owners[u][cut]], axis=1),
        ]
    )
    return int(np.unique(pairs, axis=0).shape[0])


def load_imbalance(owners: np.ndarray, n_parts: int, weights=None) -> float:
    """max part load / mean part load (1.0 = perfectly balanced).

    Empty overall load returns 1.0.
    """
    owners = np.ascontiguousarray(owners, dtype=np.int64)
    if n_parts < 1:
        raise ValueError(f"need at least one part, got {n_parts}")
    if weights is None:
        loads = np.bincount(owners, minlength=n_parts).astype(np.float64)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != owners.shape:
            raise ValueError("weights and owners must have the same shape")
        loads = np.bincount(owners, weights=weights, minlength=n_parts)
    mean = loads.sum() / n_parts
    if mean == 0:
        return 1.0
    return float(loads.max() / mean)
