"""Communication schedules: the central PARTI/CHAOS data structure.

A :class:`CommSchedule` records, for one access pattern against one
distribution, everything needed to move off-processor data:

* ``send_lists[(q, p)]`` -- local offsets on owner ``q`` of the elements
  requester ``p`` needs (what ``q`` packs and sends to ``p``), and
* ``recv_slots[(q, p)]`` -- ghost-buffer slots on ``p`` where those
  elements land, in wire order.

The same schedule drives data in both directions: ``gather`` prefetches
off-processor data into ghost buffers before an executor runs (reads),
and ``scatter``/``scatter_op`` pushes ghost-buffer contributions back to
the owners afterwards (writes / reductions) -- PARTI's
``gather_exchange`` / ``scatter_op`` pair.

Internally the per-pair lists are flattened once, at construction, into
CSR-style arrays grouped by owner (pack side) and by requester (unpack
side); hot callers construct directly from flat arrays via
:meth:`CommSchedule.from_flat` (the pair dicts become lazy compat
views).  Both sides of an application are then single fancy-indexes:
the array side over the ``DistArray``'s flat backing storage (pack,
scatter store, or one ``ufunc.at`` for reductions), and the ghost side
over a flat CSR ghost backing (``GhostBuffers`` stores every
processor's buffer in one array; unpack slots resolve to *ghost backing
positions* ``ghost_offset[p] + slot`` precomputed at construction).
Callers may still pass per-processor buffer lists, which fall back to a
compat loop.  Element order inside the flat arrays is pair insertion
order and pack positions are grouped by owner ascending, so
duplicate-slot semantics (last writer wins) and floating-point
accumulation order are identical to the historical per-pair loop.

A schedule is *bound to a distribution signature*: applying it to an
array whose distribution has changed since inspection is a hard error
(this is exactly the staleness the paper's reuse check prevents, so the
runtime enforces it defensively too).

Invariant contract
------------------
Machine-checked by :func:`repro.guard.invariants.verify_schedule` (and
the product-level checkers that cross-reference the localized ghost
keys and adapt slot bookkeeping):

* ``_ghost_off`` is the exclusive prefix sum of ``ghost_sizes``;
  ``_pair_len`` entries are strictly positive (live pairs only) and sum
  to ``_flat_send``/``_flat_recv``'s length;
* every pair id is in ``[0, n_procs)``; canonically built schedules
  (``localize``, ``from_entries``, ``patched``) keep pairs
  requester-major / owner-minor, and within a pair elements are sorted
  by ghost global index (key-sorted wire order);
* every recv slot is in range for its requester's ghost region, and no
  ghost backing position is unpacked twice in one gather;
* after incremental patching, schedule entries target only *live* ghost
  slots: occupancy over the slot space must equal ``counts > 0`` of the
  saved adapt state (retired slots are holes no entry touches), and
  each entry's ``(owner, send offset, ghost key)`` must agree with the
  saved per-slot map.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.chaos.costs import ChaosCosts, DEFAULT_COSTS
from repro.distribution.distarray import DistArray
from repro.machine.machine import Machine


class CommSchedule:
    """Schedule for gathering/scattering one access pattern's ghost data."""

    def __init__(
        self,
        machine: Machine,
        dist_signature: tuple,
        send_lists: dict[tuple[int, int], np.ndarray],
        recv_slots: dict[tuple[int, int], np.ndarray],
        ghost_sizes: list[int],
        costs: ChaosCosts = DEFAULT_COSTS,
    ):
        n = machine.n_procs
        if len(ghost_sizes) != n:
            raise ValueError(f"expected {n} ghost sizes, got {len(ghost_sizes)}")
        if set(send_lists) != set(recv_slots):
            raise ValueError("send_lists and recv_slots must cover the same pairs")
        self.machine = machine
        self.dist_signature = dist_signature
        self._send_dict = {
            k: np.asarray(v, dtype=np.int64) for k, v in send_lists.items()
        }
        self._recv_dict = {
            k: np.asarray(v, dtype=np.int64) for k, v in recv_slots.items()
        }
        self.ghost_sizes = [int(s) for s in ghost_sizes]
        self.costs = costs

        pairs = [
            (q, p, sl, self._recv_dict[(q, p)])
            for (q, p), sl in self._send_dict.items()
        ]
        pair_q = np.asarray([q for q, _, _, _ in pairs], dtype=np.int64)
        pair_p = np.asarray([p for _, p, _, _ in pairs], dtype=np.int64)
        pair_len = np.asarray([len(sl) for _, _, sl, _ in pairs], dtype=np.int64)
        if pair_q.size and (
            pair_q.min() < 0 or pair_q.max() >= n or pair_p.min() < 0 or pair_p.max() >= n
        ):
            for q, p, _, _ in pairs:
                if not (0 <= q < n and 0 <= p < n):
                    raise ValueError(f"processor pair ({q}, {p}) out of range")
        for q, p, sl, rs in pairs:
            if len(sl) != len(rs):
                raise ValueError(
                    f"pair ({q}, {p}): {len(sl)} sends but {len(rs)} recv slots"
                )
        if pairs:
            flat_send = np.concatenate([sl for _, _, sl, _ in pairs])
            flat_recv = np.concatenate([rs for _, _, _, rs in pairs])
        else:
            flat_send = np.empty(0, dtype=np.int64)
            flat_recv = np.empty(0, dtype=np.int64)
        self._init_flat(pair_q, pair_p, pair_len, flat_send, flat_recv)

    @classmethod
    def from_flat(
        cls,
        machine: Machine,
        dist_signature: tuple,
        pair_q: np.ndarray,
        pair_p: np.ndarray,
        pair_len: np.ndarray,
        flat_send: np.ndarray,
        flat_recv: np.ndarray,
        ghost_sizes: list[int],
        costs: ChaosCosts = DEFAULT_COSTS,
    ) -> "CommSchedule":
        """Construct directly from flat pair-grouped arrays (no dicts).

        ``pair_q``/``pair_p``/``pair_len`` describe the communicating
        pairs in insertion order; ``flat_send``/``flat_recv`` concatenate
        each pair's local offsets / ghost slots in that order.  The
        ``send_lists``/``recv_slots`` dict views are materialized lazily
        for introspection and tests.
        """
        n = machine.n_procs
        if len(ghost_sizes) != n:
            raise ValueError(f"expected {n} ghost sizes, got {len(ghost_sizes)}")
        self = cls.__new__(cls)
        self.machine = machine
        self.dist_signature = dist_signature
        self._send_dict = None
        self._recv_dict = None
        self.ghost_sizes = [int(s) for s in ghost_sizes]
        self.costs = costs
        self._init_flat(
            np.asarray(pair_q, dtype=np.int64),
            np.asarray(pair_p, dtype=np.int64),
            np.asarray(pair_len, dtype=np.int64),
            np.asarray(flat_send, dtype=np.int64),
            np.asarray(flat_recv, dtype=np.int64),
        )
        return self

    @classmethod
    def from_entries(
        cls,
        machine: Machine,
        dist_signature: tuple,
        entry_q: np.ndarray,
        entry_p: np.ndarray,
        entry_send: np.ndarray,
        entry_recv: np.ndarray,
        ghost_sizes: list[int],
        order_key: np.ndarray | None = None,
        costs: ChaosCosts = DEFAULT_COSTS,
    ) -> "CommSchedule":
        """Construct from *per-element* entries in arbitrary order.

        Each element ``i`` describes one moved ghost: owner ``entry_q[i]``
        packs its local offset ``entry_send[i]`` for requester
        ``entry_p[i]``, landing in ghost slot ``entry_recv[i]``.  Entries
        are grouped into pairs requester-major / owner-minor (the order
        ``localize`` produces), with elements inside a pair ordered by
        ``order_key`` (ascending; pass the ghost *global index* to match
        a fresh inspection's slot-sorted wire order exactly).  This is
        the assembly primitive the incremental-inspection subsystem uses
        after retiring/appending entries.
        """
        entry_q = np.asarray(entry_q, dtype=np.int64)
        entry_p = np.asarray(entry_p, dtype=np.int64)
        entry_send = np.asarray(entry_send, dtype=np.int64)
        entry_recv = np.asarray(entry_recv, dtype=np.int64)
        if order_key is None:
            order_key = entry_recv
        perm = np.lexsort((np.asarray(order_key), entry_q, entry_p))
        q, p = entry_q[perm], entry_p[perm]
        n = machine.n_procs
        pair_id = p * n + q
        if pair_id.size:
            seg_starts = np.concatenate(([0], np.flatnonzero(np.diff(pair_id)) + 1))
        else:
            seg_starts = np.empty(0, dtype=np.int64)
        seg_bounds = np.append(seg_starts, pair_id.size)
        return cls.from_flat(
            machine,
            dist_signature,
            q[seg_starts],
            p[seg_starts],
            np.diff(seg_bounds),
            entry_send[perm],
            entry_recv[perm],
            ghost_sizes,
            costs=costs,
        )

    def entries(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-element ``(q, p, send, recv)`` arrays in flat (pair) order.

        The inverse of :meth:`from_entries`: every moved ghost element as
        one row, owners/requesters repeated per pair.  All four arrays
        are non-writeable: ``send``/``recv`` are views of the internal
        flat arrays (writing through them would silently corrupt the
        schedule, so NumPy raises instead), and the repeated ``q``/``p``
        arrays are locked for symmetry.
        """
        q = np.repeat(self._pair_q, self._pair_len)
        p = np.repeat(self._pair_p, self._pair_len)
        send = self._flat_send[:]
        recv = self._flat_recv[:]
        for a in (q, p, send, recv):
            a.flags.writeable = False
        return q, p, send, recv

    def twin(self) -> "CommSchedule":
        """A distinct schedule object sharing every internal array.

        Schedules are immutable after construction, so two pattern
        groups whose communication structure is provably identical (same
        distribution, same indirection values -- e.g. ``x(edge(i))`` and
        ``y(edge(i))`` after one incremental patch) can share the flat
        arrays while keeping separate identities.  Identity matters:
        the executor coalesces gathers and groups scatter staging by
        schedule object, and ``product_groups`` delimits pattern groups
        the same way -- a *shared* object would fuse two groups that
        move different data.
        """
        new = CommSchedule.__new__(CommSchedule)
        new.__dict__.update(self.__dict__)
        return new

    def patched(
        self,
        keep: np.ndarray,
        add_q: np.ndarray,
        add_p: np.ndarray,
        add_send: np.ndarray,
        add_recv: np.ndarray,
        ghost_sizes: list[int],
        keep_key: np.ndarray | None = None,
        add_key: np.ndarray | None = None,
    ) -> "CommSchedule":
        """Retire + append: a new schedule reusing this one's entries.

        ``keep`` masks this schedule's per-element entries (retired
        entries are dropped); ``add_*`` append new entries.  Ghost slots
        referenced by kept entries are expected to be unchanged -- the
        CSR ghost regions may only *grow* (``ghost_sizes`` is the new
        per-processor slot-space size; pass the old sizes when nothing
        was appended).  ``keep_key``/``add_key`` order elements within
        each pair (ghost global indices give fresh-inspection wire
        order); ghost slots are the default.

        When this schedule is canonically ordered (pairs requester-major
        / owner-minor, elements key-sorted within a pair -- what
        ``localize``, ``from_entries`` and ``patched`` itself produce),
        the new schedule is assembled by *merging* the kept entries (a
        pre-sorted run) with the sorted added entries: delta-sized sort
        work instead of a full-entry-set ``lexsort`` round trip, with
        flat arrays bit-identical to the slow path's.  Non-canonical
        schedules fall back to ``from_entries``.
        """
        add_q = np.asarray(add_q, dtype=np.int64)
        add_p = np.asarray(add_p, dtype=np.int64)
        add_send = np.asarray(add_send, dtype=np.int64)
        add_recv = np.asarray(add_recv, dtype=np.int64)
        d = add_q.shape[0] if add_q.ndim else -1
        if add_key is not None:
            add_key = np.asarray(add_key, dtype=np.int64)
        # cross-check every add_* length before building any state: a
        # mismatched caller must fail loudly, not corrupt silently
        sizes = {
            "add_q": add_q.shape,
            "add_p": add_p.shape,
            "add_send": add_send.shape,
            "add_recv": add_recv.shape,
        }
        if add_key is not None:
            sizes["add_key"] = add_key.shape
        if any(s != (d,) for s in sizes.values()):
            detail = ", ".join(f"{k}={v}" for k, v in sizes.items())
            raise ValueError(
                f"patched() add arrays must be 1-D and the same length; got {detail}"
            )
        keep = np.asarray(keep, dtype=bool)
        if keep.shape != (self._n_elements,):
            raise ValueError(
                f"keep mask has shape {keep.shape}, schedule has "
                f"{self._n_elements} entries"
            )
        if keep_key is not None:
            keep_key = np.asarray(keep_key, dtype=np.int64)
            if keep_key.shape != (self._n_elements,):
                raise ValueError(
                    f"keep_key has shape {keep_key.shape}, schedule has "
                    f"{self._n_elements} entries"
                )
        else:
            keep_key = self._flat_recv
        if add_key is None:
            add_key = add_recv
        fast = self._patched_merge(
            keep, add_q, add_p, add_send, add_recv, ghost_sizes, keep_key, add_key
        )
        if fast is not None:
            return fast
        q, p, send, recv = self.entries()
        return CommSchedule.from_entries(
            self.machine,
            self.dist_signature,
            np.concatenate([q[keep], add_q]),
            np.concatenate([p[keep], add_p]),
            np.concatenate([send[keep], add_send]),
            np.concatenate([recv[keep], add_recv]),
            ghost_sizes,
            order_key=np.concatenate([keep_key[keep], add_key]),
            costs=self.costs,
        )

    def _patched_merge(
        self,
        keep: np.ndarray,
        add_q: np.ndarray,
        add_p: np.ndarray,
        add_send: np.ndarray,
        add_recv: np.ndarray,
        ghost_sizes: list[int],
        keep_key: np.ndarray,
        add_key: np.ndarray,
    ) -> "CommSchedule | None":
        """Merge-of-presorted-runs fast path for :meth:`patched`.

        Returns ``None`` when this schedule is not canonically ordered
        (or composite keys would overflow int64) -- the caller then takes
        the ``from_entries`` lexsort path.  Otherwise the kept entries
        are a sorted run in both flat order ``(p, q, key)`` and wire
        order ``(q, p, key)``; the added entries are sorted (delta-sized)
        and merged in with ``searchsorted``, and every derived array is
        built directly -- no O(E log E) work, bit-identical results.
        """
        n = self.machine.n_procs
        E = self._n_elements
        kmax = -1
        if E:
            kmax = int(keep_key.max())
        if add_key.size:
            kmax = max(kmax, int(add_key.max()))
        K = kmax + 1
        if K <= 0 or (E and int(keep_key.min()) < 0) or (
            add_key.size and int(add_key.min()) < 0
        ):
            return None
        if n * n >= (2**63 - 1) // max(K, 1):
            return None  # pragma: no cover - composite key would overflow
        flat_q = np.repeat(self._pair_q, self._pair_len)
        flat_p = np.repeat(self._pair_p, self._pair_len)
        comp_flat = (flat_p * n + flat_q) * K + keep_key
        if E and (np.diff(comp_flat) < 0).any():
            return None
        # canonical flat order sorts by requester p, so the stable
        # recv_order in _init_flat was the identity and _unpack_src is
        # exactly the flat -> wire permutation; invert it for wire -> flat
        W = np.empty(E, dtype=np.int64)
        W[self._unpack_src] = np.arange(E, dtype=np.int64)
        comp_wire = (flat_q * n + flat_p) * K + keep_key
        compW = comp_wire[W]
        if E and (np.diff(compW) < 0).any():
            return None

        kept_idx = np.flatnonzero(keep)
        Sk = kept_idx.size
        d = add_q.size
        ar = np.arange(d, dtype=np.int64)
        kr = np.arange(Sk, dtype=np.int64)

        # flat-order merge: added entries sorted by (p, q, key), inserted
        # after equal kept entries ('right' = lexsort stability, since the
        # slow path concatenates kept before added)
        add_comp = (add_p * n + add_q) * K + add_key
        aperm = np.argsort(add_comp, kind="stable")
        ins = np.searchsorted(comp_flat[kept_idx], add_comp[aperm], side="right")
        add_newpos = ins + ar
        kept_newpos = kr + np.searchsorted(ins, kr, side="right")

        E2 = Sk + d
        flat_q2 = np.empty(E2, dtype=np.int64)
        flat_p2 = np.empty(E2, dtype=np.int64)
        send2 = np.empty(E2, dtype=np.int64)
        recv2 = np.empty(E2, dtype=np.int64)
        flat_q2[kept_newpos] = flat_q[kept_idx]
        flat_p2[kept_newpos] = flat_p[kept_idx]
        send2[kept_newpos] = self._flat_send[kept_idx]
        recv2[kept_newpos] = self._flat_recv[kept_idx]
        flat_q2[add_newpos] = add_q[aperm]
        flat_p2[add_newpos] = add_p[aperm]
        send2[add_newpos] = add_send[aperm]
        recv2[add_newpos] = add_recv[aperm]

        # wire-order merge: same game sorted by (q, p, key); the kept
        # run is the old wire order with retired entries masked out
        keepW = keep[W]
        kw_flat = W[keepW]  # old flat index of each kept entry, wire order
        add_wcomp = (add_q * n + add_p) * K + add_key
        awperm = np.argsort(add_wcomp, kind="stable")
        insw = np.searchsorted(compW[keepW], add_wcomp[awperm], side="right")
        add_wpos = insw + ar
        kept_wpos = kr + np.searchsorted(insw, kr, side="right")
        # new flat position of every element, addressed by wire position
        rank = np.empty(E, dtype=np.int64)
        rank[kept_idx] = kept_newpos
        wire_perm = np.empty(E2, dtype=np.int64)
        wire_perm[kept_wpos] = rank[kw_flat]
        inv_aperm = np.empty(d, dtype=np.int64)
        inv_aperm[aperm] = ar
        wire_perm[add_wpos] = add_newpos[inv_aperm[awperm]]

        return CommSchedule._from_canonical(
            self.machine,
            self.dist_signature,
            flat_q2,
            flat_p2,
            send2,
            recv2,
            wire_perm,
            ghost_sizes,
            costs=self.costs,
        )

    @classmethod
    def _from_canonical(
        cls,
        machine: Machine,
        dist_signature: tuple,
        flat_q: np.ndarray,
        flat_p: np.ndarray,
        flat_send: np.ndarray,
        flat_recv: np.ndarray,
        wire_perm: np.ndarray,
        ghost_sizes: list[int],
        costs: ChaosCosts = DEFAULT_COSTS,
    ) -> "CommSchedule":
        """Construct from canonically ordered per-element arrays.

        ``flat_*`` are in canonical flat order (requester-major /
        owner-minor, key-sorted in pairs) and ``wire_perm`` maps wire
        position -> flat position (the stable by-owner grouping).  Builds
        every internal array ``_init_flat`` would -- pair segments,
        pack/unpack sides, ghost positions, charge vectors -- without any
        argsort, bit-identically to the sorted path.
        """
        n = machine.n_procs
        if len(ghost_sizes) != n:
            raise ValueError(f"expected {n} ghost sizes, got {len(ghost_sizes)}")
        self = cls.__new__(cls)
        self.machine = machine
        self.dist_signature = dist_signature
        self._send_dict = None
        self._recv_dict = None
        self.ghost_sizes = [int(s) for s in ghost_sizes]
        self.costs = costs
        ghost_sz = np.asarray(self.ghost_sizes, dtype=np.int64)
        E = flat_q.size

        pair_id = flat_p * n + flat_q
        if E:
            seg_starts = np.concatenate(([0], np.flatnonzero(np.diff(pair_id)) + 1))
        else:
            seg_starts = np.empty(0, dtype=np.int64)
        seg_bounds = np.append(seg_starts, E)
        self._pair_q = flat_q[seg_starts]
        self._pair_p = flat_p[seg_starts]
        self._pair_len = np.diff(seg_bounds)
        self._flat_send = flat_send
        self._flat_recv = flat_recv
        if E:
            bad = (flat_recv < 0) | (flat_recv >= ghost_sz[flat_p])
            if bad.any():
                i = int(np.flatnonzero(bad)[0])
                raise ValueError(
                    f"pair ({int(flat_q[i])}, {int(flat_p[i])}): recv slot out of "
                    f"range [0, {int(ghost_sz[flat_p[i]])})"
                )

        self._pack_idx = flat_send[wire_perm]
        self._pack_owner_rep = flat_q[wire_perm]
        self._pack_pos = None
        # canonical flat order is requester-sorted: recv_order would be
        # the identity, so the unpack side is the flat arrays themselves
        self._unpack_dst = flat_recv
        self._unpack_src = np.empty(E, dtype=np.int64)
        self._unpack_src[wire_perm] = np.arange(E, dtype=np.int64)
        recv_counts = (
            np.bincount(flat_p, minlength=n) if E else np.zeros(n, dtype=np.int64)
        )
        self._unpack_offsets = np.concatenate(([0], np.cumsum(recv_counts)))
        self._unpack_procs = np.flatnonzero(recv_counts)
        self._ghost_off = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(ghost_sz, out=self._ghost_off[1:])
        self._unpack_pos = self._ghost_off[flat_p] + flat_recv
        self._ghost_pos_wire = np.empty(E, dtype=np.int64)
        self._ghost_pos_wire[self._unpack_src] = self._unpack_pos

        per_pair_mem = self.costs.pack_unpack_mem * self._pair_len
        self._pack_mem = np.zeros(n)
        self._unpack_mem = np.zeros(n)
        np.add.at(self._pack_mem, self._pair_q, per_pair_mem)
        np.add.at(self._unpack_mem, self._pair_p, per_pair_mem)
        self._n_elements = E
        return self

    def _pair_dicts(self) -> tuple[dict, dict]:
        if self._send_dict is None:
            send: dict[tuple[int, int], np.ndarray] = {}
            recv: dict[tuple[int, int], np.ndarray] = {}
            starts = np.concatenate(([0], np.cumsum(self._pair_len)))
            for i in range(self._pair_q.size):
                key = (int(self._pair_q[i]), int(self._pair_p[i]))
                send[key] = self._flat_send[starts[i] : starts[i + 1]]
                recv[key] = self._flat_recv[starts[i] : starts[i + 1]]
            self._send_dict = send
            self._recv_dict = recv
        return self._send_dict, self._recv_dict

    @property
    def send_lists(self) -> dict[tuple[int, int], np.ndarray]:
        """(owner, requester) -> local offsets owner packs (compat view)."""
        return self._pair_dicts()[0]

    @property
    def recv_slots(self) -> dict[tuple[int, int], np.ndarray]:
        """(owner, requester) -> ghost slots at the requester (compat view)."""
        return self._pair_dicts()[1]

    def _init_flat(
        self,
        pair_q: np.ndarray,
        pair_p: np.ndarray,
        pair_len: np.ndarray,
        flat_send: np.ndarray,
        flat_recv: np.ndarray,
    ) -> None:
        """Build the CSR-style apply arrays from pair-grouped flat input.

        Nonempty pairs keep their insertion order; per-element flat
        order is pair order with each pair's elements contiguous.  The
        pack side groups elements by owner ``q`` (stable, so each owner's
        segment stays in pair order); the unpack side keeps per-requester
        element positions in flat order.
        """
        n = self.machine.n_procs
        ghost_sz = np.asarray(self.ghost_sizes, dtype=np.int64)
        live = pair_len > 0
        #: per-message arrays in pair insertion order (nonempty pairs
        #: only; empty pairs contribute no elements, so the flat arrays
        #: need no filtering)
        if live.all():
            self._pair_q = pair_q
            self._pair_p = pair_p
            self._pair_len = pair_len
        else:
            self._pair_q = pair_q[live]
            self._pair_p = pair_p[live]
            self._pair_len = pair_len[live]
        self._flat_send = flat_send
        self._flat_recv = flat_recv
        flat_q = np.repeat(self._pair_q, self._pair_len)
        flat_p = np.repeat(self._pair_p, self._pair_len)
        if flat_p.size:
            bad = (flat_recv < 0) | (flat_recv >= ghost_sz[flat_p])
            if bad.any():
                i = int(np.flatnonzero(bad)[0])
                raise ValueError(
                    f"pair ({int(flat_q[i])}, {int(flat_p[i])}): recv slot out of "
                    f"range [0, {int(ghost_sz[flat_p[i]])})"
                )

        # pack side: wire order groups elements by owner q, stable within
        wire_perm = np.argsort(flat_q, kind="stable")
        self._pack_idx = flat_send[wire_perm]
        owner_counts = np.bincount(flat_q, minlength=n) if flat_q.size else np.zeros(n, dtype=np.int64)
        #: owner of each packed element (wire order); flat backing
        #: positions are resolved lazily against the bound distribution
        self._pack_owner_rep = np.repeat(np.arange(n, dtype=np.int64), owner_counts)
        self._pack_pos: np.ndarray | None = None

        # unpack side: per requester p, ghost slots in flat (pair) order
        # plus the wire positions holding their data
        inv_perm = np.empty(wire_perm.size, dtype=np.int64)
        inv_perm[wire_perm] = np.arange(wire_perm.size)
        recv_order = np.argsort(flat_p, kind="stable")
        self._unpack_dst = flat_recv[recv_order]
        self._unpack_src = inv_perm[recv_order]
        recv_counts = np.bincount(flat_p, minlength=n) if flat_p.size else np.zeros(n, dtype=np.int64)
        self._unpack_offsets = np.concatenate(([0], np.cumsum(recv_counts)))
        self._unpack_procs = np.flatnonzero(recv_counts)
        # flat-ghost-backing resolution: slot s of requester p lives at
        # ghost backing position ghost_off[p] + s (GhostBuffers layout)
        self._ghost_off = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(ghost_sz, out=self._ghost_off[1:])
        self._unpack_pos = (
            self._ghost_off[flat_p[recv_order]] + self._unpack_dst
        )
        # reverse path, wire order: every wire position is fed by exactly
        # one ghost backing position, so packing ghosts is one gather
        self._ghost_pos_wire = np.empty(self._unpack_src.size, dtype=np.int64)
        self._ghost_pos_wire[self._unpack_src] = self._unpack_pos

        # per-processor pack/unpack memory charges (pair-order accumulation,
        # matching the historical per-pair loop bit for bit)
        per_pair_mem = self.costs.pack_unpack_mem * self._pair_len
        self._pack_mem = np.zeros(n)
        self._unpack_mem = np.zeros(n)
        np.add.at(self._pack_mem, self._pair_q, per_pair_mem)
        np.add.at(self._unpack_mem, self._pair_p, per_pair_mem)
        self._n_elements = int(self._pair_len.sum())

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def n_procs(self) -> int:
        return self.machine.n_procs

    def message_count(self) -> int:
        """Number of non-empty point-to-point messages per gather."""
        return int((self._pair_q != self._pair_p).sum())

    def element_count(self) -> int:
        """Total off-processor elements moved per gather."""
        return int(self._pair_len[self._pair_q != self._pair_p].sum())

    def ghost_total(self) -> int:
        return sum(self.ghost_sizes)

    def _check_array(self, arr: DistArray) -> None:
        if arr.distribution.signature() != self.dist_signature:
            raise ValueError(
                f"schedule is stale: built for distribution signature "
                f"{self.dist_signature}, array {arr.name!r} now has "
                f"{arr.distribution.signature()}"
            )
        if arr.machine is not self.machine:
            raise ValueError("schedule and array live on different machines")

    def _resolve_ghosts(self, ghosts) -> np.ndarray | None:
        """Resolve ghost storage to its flat CSR backing, if it has one.

        Accepts a :class:`~repro.chaos.buffers.GhostBuffers`-style object
        (``backing`` + ``offsets`` attributes), a flat 1-D array laid out
        like one (``ghost_offset[p] + slot``), or the legacy per-processor
        list of arrays.  Returns the flat backing for the first two forms
        and ``None`` for the list form (callers fall back to the per-proc
        compat loop).
        """
        backing = getattr(ghosts, "backing", None)
        if backing is not None:
            offsets = getattr(ghosts, "offsets", None)
            if offsets is None or not np.array_equal(offsets, self._ghost_off):
                raise ValueError(
                    "ghost buffers laid out for a different schedule: "
                    f"offsets {offsets!r} != {self._ghost_off!r}"
                )
            return backing
        if isinstance(ghosts, np.ndarray):
            if ghosts.ndim != 1 or ghosts.size != self._ghost_off[-1]:
                raise ValueError(
                    f"flat ghost array has shape {ghosts.shape}, schedule "
                    f"needs ({int(self._ghost_off[-1])},)"
                )
            return ghosts
        self._check_ghost_list(ghosts)
        return None

    def _check_ghost_list(self, ghosts: list[np.ndarray]) -> None:
        if len(ghosts) != self.n_procs:
            raise ValueError(
                f"expected {self.n_procs} ghost buffers, got {len(ghosts)}"
            )
        for p, buf in enumerate(ghosts):
            if buf.shape != (self.ghost_sizes[p],):
                raise ValueError(
                    f"ghost buffer for processor {p} has shape {buf.shape}, "
                    f"schedule needs ({self.ghost_sizes[p]},)"
                )

    # ------------------------------------------------------------------
    # flat data movement (shared with merged-communication paths)
    # ------------------------------------------------------------------
    def _pack_positions(self, arr: DistArray) -> np.ndarray:
        """Flat backing positions of the packed elements (wire order).

        Valid for every array bound to this schedule's distribution
        signature (``_check_array`` enforces that), so the resolution is
        cached after the first application.
        """
        if self._pack_pos is None:
            off = arr.distribution.flat_offsets()
            self._pack_pos = off[self._pack_owner_rep] + self._pack_idx
        return self._pack_pos

    def _move_gather(self, arr: DistArray, ghosts) -> None:
        """Pack owners' elements onto the wire, unpack into ghost buffers."""
        # one fancy-index over the flat backing packs every owner at once
        wire = arr.backing_ro[self._pack_positions(arr)]
        keep = None
        faults = self.machine.faults
        if faults is not None:
            # fault injection hook: may corrupt/duplicate wire elements
            # (returns a perturbed copy) or drop some (keep mask); the
            # charged message volume below is untouched either way
            wire, keep = faults.on_gather_wire(wire)
        backing = self._resolve_ghosts(ghosts)
        if backing is not None:
            # one store over the flat ghost backing unpacks every
            # requester at once; element order is flat (pair) order, so
            # duplicate-slot last-writer semantics match the old loop
            if keep is None:
                backing[self._unpack_pos] = wire[self._unpack_src]
            else:
                sel = keep[self._unpack_src]
                backing[self._unpack_pos[sel]] = wire[self._unpack_src[sel]]
            return
        off = self._unpack_offsets
        for p in self._unpack_procs:
            seg = slice(off[p], off[p + 1])
            src = self._unpack_src[seg]
            dst = self._unpack_dst[seg]
            if keep is not None:
                m = keep[src]
                src, dst = src[m], dst[m]
            ghosts[p][dst] = wire[src]

    def _gather_from_ghosts(self, ghosts, dtype) -> np.ndarray:
        """Pack ghost contributions onto the wire (reverse direction)."""
        backing = self._resolve_ghosts(ghosts)
        if backing is not None:
            # every wire position is fed by exactly one ghost backing
            # position: packing all requesters is one gather
            return backing[self._ghost_pos_wire].astype(dtype, copy=False)
        wire = np.empty(self._n_elements, dtype=dtype)
        off = self._unpack_offsets
        for p in self._unpack_procs:
            seg = slice(off[p], off[p + 1])
            wire[self._unpack_src[seg]] = ghosts[p][self._unpack_dst[seg]]
        return wire

    def _move_reverse(
        self,
        ghosts,
        arr: DistArray,
        op: Callable | None,
    ) -> None:
        """Pack ghost contributions, store/combine at the owners."""
        wire = self._gather_from_ghosts(ghosts, arr.dtype)
        # one store/combine over the flat backing: positions are grouped
        # by owner ascending (pack order), so duplicate-slot and
        # accumulation order match the historical per-owner loop
        pos = self._pack_positions(arr)
        data = arr.backing_mut()
        if op is None:
            data[pos] = wire
        else:
            op.at(data, pos, wire)

    def _wire_bytes(self, itemsize: int) -> np.ndarray:
        return self._pair_len * itemsize

    # ------------------------------------------------------------------
    # data movement
    # ------------------------------------------------------------------
    def gather(self, arr: DistArray, ghosts) -> None:
        """Prefetch off-processor data into ghost buffers (one phase).

        For every pair ``(q, p)``: owner ``q`` packs
        ``arr.local(q)[send_lists]`` and requester ``p`` stores the wire
        data at ``ghosts[p][recv_slots]``.  ``ghosts`` is a
        ``GhostBuffers``, an equivalently laid-out flat array, or a
        per-processor list of buffers.  Charges packing/unpacking memory
        traffic and the message exchange.
        """
        self._check_array(arr)
        m = self.machine
        self._move_gather(arr, ghosts)
        m.charge_compute_all(mem=self._pack_mem)
        m.exchange(
            src=self._pair_q, dst=self._pair_p, nbytes=self._wire_bytes(arr.itemsize)
        )
        m.charge_compute_all(mem=self._unpack_mem)

    def scatter(self, ghosts, arr: DistArray) -> None:
        """Reverse movement, overwrite semantics: ghost copies are sent
        back to the owners and stored (last writer per slot wins in wire
        order -- callers needing determinism use distinct slots)."""
        self._apply_reverse(ghosts, arr, op=None)

    def scatter_op(
        self,
        ghosts,
        arr: DistArray,
        op: Callable,
        flops_per_element: float = 1.0,
    ) -> None:
        """Reverse movement with combining (PARTI scatter_add/op).

        ``op`` is a NumPy ufunc used through ``op.at`` so repeated slots
        accumulate -- the loop-carried reduction semantics the paper
        allows (add, multiply, minimum, maximum).
        """
        if not hasattr(op, "at"):
            raise TypeError(f"op must be a NumPy ufunc with .at, got {op!r}")
        self._apply_reverse(ghosts, arr, op=op, flops_per_element=flops_per_element)

    def _apply_reverse(
        self,
        ghosts,
        arr: DistArray,
        op: Callable | None,
        flops_per_element: float = 1.0,
    ) -> None:
        self._check_array(arr)
        m = self.machine
        self._move_reverse(ghosts, arr, op)
        if op is None:
            combine = 0.0
        else:
            combine = np.zeros(self.n_procs)
            np.add.at(combine, self._pair_q, flops_per_element * self._pair_len)
        # roles swap relative to gather: the requester packs its ghost
        # contributions, the owner unpacks (and combines)
        m.charge_compute_all(mem=self._unpack_mem)
        m.exchange(
            src=self._pair_p, dst=self._pair_q, nbytes=self._wire_bytes(arr.itemsize)
        )
        m.charge_compute_all(mem=self._pack_mem, flops=combine)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CommSchedule(procs={self.n_procs}, messages={self.message_count()}, "
            f"elements={self.element_count()}, ghosts={self.ghost_total()})"
        )
