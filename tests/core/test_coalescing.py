"""Tests for pattern coalescing (shared schedules across indirections)."""

import numpy as np
import pytest

from repro.core import (
    ArrayRef,
    Assign,
    ForallLoop,
    IrregularProgram,
    Reduce,
    run_executor,
    run_inspector,
)
from repro.distribution import BlockDistribution, DistArray
from repro.machine import Machine


def build_arrays(m, n=24, n_iter=40, seed=0):
    rng = np.random.default_rng(seed)
    dist = BlockDistribution(n, m.n_procs)
    idist = BlockDistribution(n_iter, m.n_procs)
    return {
        "x": DistArray.from_global(m, dist, rng.normal(size=n), name="x"),
        "y": DistArray.from_global(m, dist, np.zeros(n), name="y"),
        "e1": DistArray.from_global(m, idist, rng.integers(0, n, n_iter), name="e1"),
        "e2": DistArray.from_global(m, idist, rng.integers(0, n, n_iter), name="e2"),
    }, rng


def edge_loop(n_iter):
    x1, x2 = ArrayRef("x", "e1"), ArrayRef("x", "e2")
    return ForallLoop(
        "sweep",
        n_iter,
        [
            Reduce("add", ArrayRef("y", "e1"), lambda a, b: a * b, (x1, x2), flops=2),
            Reduce("add", ArrayRef("y", "e2"), lambda a, b: a - b, (x1, x2), flops=2),
        ],
    )


def reference(arrays, times=1):
    x = arrays["x"].to_global()
    e1 = arrays["e1"].to_global()
    e2 = arrays["e2"].to_global()
    y = np.zeros_like(x)
    for _ in range(times):
        np.add.at(y, e1, x[e1] * x[e2])
        np.add.at(y, e2, x[e1] - x[e2])
    return y


class TestCorrectness:
    @pytest.mark.parametrize("n_procs", [1, 2, 4, 8])
    def test_coalesced_matches_reference(self, n_procs):
        m = Machine(n_procs)
        arrays, _ = build_arrays(m)
        loop = edge_loop(40)
        product = run_inspector(m, loop, arrays, coalesce_patterns=True)
        run_executor(m, product, arrays, n_times=3)
        assert np.allclose(arrays["y"].to_global(), reference(arrays, 3))

    def test_coalesced_equals_uncoalesced(self):
        outs = {}
        for co in (False, True):
            m = Machine(4)
            arrays, _ = build_arrays(m, seed=5)
            product = run_inspector(m, edge_loop(40), arrays, coalesce_patterns=co)
            run_executor(m, product, arrays, n_times=2)
            outs[co] = arrays["y"].to_global()
        assert np.allclose(outs[False], outs[True])

    def test_assign_targets_not_coalesced(self):
        """Assign LHS arrays keep per-pattern schedules (and are correct).

        The assigned value is a function of the target element so that
        duplicate targets across iterations receive identical values
        (FORALL assign semantics require single-valuedness)."""
        m = Machine(4)
        arrays, rng = build_arrays(m)
        loop = ForallLoop(
            "assign_sweep",
            40,
            [
                Assign(ArrayRef("y", "e1"), lambda a: 2 * a, (ArrayRef("x", "e1"),)),
            ],
        )
        product = run_inspector(m, loop, arrays, coalesce_patterns=True)
        run_executor(m, product, arrays)
        x = arrays["x"].to_global()
        e1 = arrays["e1"].to_global()
        want = np.zeros(24)
        want[e1] = 2 * x[e1]
        assert np.allclose(arrays["y"].to_global(), want)

    def test_mixed_assign_and_reduce_arrays(self):
        """y reduced via two patterns (coalescible), z assigned via one
        pattern that shares x's reads -- all in one loop."""
        m = Machine(4)
        arrays, rng = build_arrays(m)
        dist = arrays["x"].distribution
        arrays["z"] = DistArray.from_global(m, dist, np.zeros(24), name="z")
        perm = rng.permutation(24)
        idist = arrays["e1"].distribution
        arrays["ip"] = DistArray.from_global(
            m, idist, np.concatenate([perm, perm[:16]]), name="ip"
        )
        loop = ForallLoop(
            "mixed",
            40,
            [
                Reduce("add", ArrayRef("y", "e1"), lambda a, b: a + b,
                       (ArrayRef("x", "e1"), ArrayRef("x", "e2"))),
                Reduce("add", ArrayRef("y", "e2"), lambda a, b: a * b,
                       (ArrayRef("x", "e1"), ArrayRef("x", "e2"))),
                Assign(ArrayRef("z", "ip"), lambda a: a, (ArrayRef("x", "ip"),)),
            ],
        )
        product = run_inspector(m, loop, arrays, coalesce_patterns=True)
        run_executor(m, product, arrays)
        x = arrays["x"].to_global()
        e1, e2, ip = (arrays[k].to_global() for k in ("e1", "e2", "ip"))
        want_y = np.zeros(24)
        np.add.at(want_y, e1, x[e1] + x[e2])
        np.add.at(want_y, e2, x[e1] * x[e2])
        want_z = np.zeros(24)
        want_z[ip] = x[ip]
        assert np.allclose(arrays["y"].to_global(), want_y)
        assert np.allclose(arrays["z"].to_global(), want_z)


class TestSavings:
    def test_shared_schedule_objects(self):
        m = Machine(4)
        arrays, _ = build_arrays(m)
        product = run_inspector(m, edge_loop(40), arrays, coalesce_patterns=True)
        sx1 = product.patterns[("x", "e1")].localized.schedule
        sx2 = product.patterns[("x", "e2")].localized.schedule
        assert sx1 is sx2
        sy1 = product.patterns[("y", "e1")].localized.schedule
        sy2 = product.patterns[("y", "e2")].localized.schedule
        assert sy1 is sy2

    def test_fewer_ghosts_and_messages(self):
        stats = {}
        for co in (False, True):
            m = Machine(8)
            arrays, _ = build_arrays(m, n=200, n_iter=600, seed=2)
            product = run_inspector(m, edge_loop(600), arrays, coalesce_patterns=co)
            # coalesced patterns share ghost buffers: count each once
            unique_ghosts = {
                id(pat.ghosts): pat.ghosts.total_elements()
                for pat in product.patterns.values()
            }
            ghosts = sum(unique_ghosts.values())
            base = sum(p.stats.messages_sent for p in m.procs)
            run_executor(m, product, arrays, n_times=1)
            msgs = sum(p.stats.messages_sent for p in m.procs) - base
            stats[co] = (ghosts, msgs)
        # double-counted gather elements collapse into the shared region
        assert stats[True][0] < stats[False][0]
        assert stats[True][1] < stats[False][1]

    def test_program_level_flag(self):
        outs = {}
        for co in (False, True):
            m = Machine(4)
            prog = IrregularProgram(m, coalesce_patterns=co)
            prog.decomposition("d", 24)
            prog.distribute("d", "block")
            prog.decomposition("e", 40)
            prog.distribute("e", "block")
            rng = np.random.default_rng(3)
            prog.array("x", "d", values=rng.normal(size=24))
            prog.array("y", "d", values=np.zeros(24))
            prog.array("e1", "e", values=rng.integers(0, 24, 40), dtype=np.int64)
            prog.array("e2", "e", values=rng.integers(0, 24, 40), dtype=np.int64)
            prog.forall(edge_loop(40), n_times=3)
            outs[co] = (prog.arrays["y"].to_global(), m.elapsed())
        assert np.allclose(outs[False][0], outs[True][0])
        assert outs[True][1] <= outs[False][1]
