"""Kernighan-Lin-style k-way boundary refinement.

A greedy gain-based pass in the spirit of [Kernighan & Lin 1970] /
Fiduccia-Mattheyses, generalized to k parts: for every boundary vertex,
compute the cut-reduction of moving it to its best-connected other part;
apply positive-gain moves in gain order subject to a balance constraint.
Used as the optional polish behind the ``RSB+KL`` registry entry.
"""

from __future__ import annotations

import numpy as np


def kl_refine(
    edges: np.ndarray | None,
    owners: np.ndarray,
    n_parts: int,
    weights: np.ndarray | None = None,
    max_passes: int = 2,
    balance_tol: float = 0.05,
) -> tuple[np.ndarray, int]:
    """Refine a partition in place-ish; returns (new owners, moves made).

    Parameters
    ----------
    edges:
        ``(2, E)`` undirected edge array; ``None``/empty is a no-op.
    owners:
        Current owner map (not modified; a refined copy is returned).
    balance_tol:
        A move is allowed only while every part's load stays within
        ``(1 +/- balance_tol) *`` ideal when possible.
    """
    owners = np.array(owners, dtype=np.int64, copy=True)
    if edges is None or np.asarray(edges).size == 0 or n_parts < 2:
        return owners, 0
    edges = np.ascontiguousarray(edges, dtype=np.int64)
    n = owners.size
    w = (
        np.ones(n, dtype=np.float64)
        if weights is None
        else np.asarray(weights, dtype=np.float64)
    )
    loads = np.bincount(owners, weights=w, minlength=n_parts)
    ideal = loads.sum() / n_parts
    hi = ideal * (1 + balance_tol)
    lo = ideal * (1 - balance_tol)

    total_moves = 0
    for _ in range(max_passes):
        # connection counts vertex x part
        conn = np.zeros((n, n_parts), dtype=np.float64)
        np.add.at(conn, (edges[0], owners[edges[1]]), 1.0)
        np.add.at(conn, (edges[1], owners[edges[0]]), 1.0)
        internal = conn[np.arange(n), owners]
        ext = conn.copy()
        ext[np.arange(n), owners] = -np.inf
        best_part = np.argmax(ext, axis=1)
        best_ext = ext[np.arange(n), best_part]
        gains = best_ext - internal
        candidates = np.flatnonzero(gains > 0)
        if candidates.size == 0:
            break
        moves_this_pass = 0
        for v in candidates[np.argsort(-gains[candidates], kind="stable")]:
            src, dst = int(owners[v]), int(best_part[v])
            if src == dst:
                continue
            if loads[dst] + w[v] > hi or loads[src] - w[v] < lo:
                continue
            owners[v] = dst
            loads[src] -= w[v]
            loads[dst] += w[v]
            moves_this_pass += 1
        total_moves += moves_this_pass
        if moves_this_pass == 0:
            break
    return owners, total_moves
