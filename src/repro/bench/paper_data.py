"""The paper's published numbers, as structured data.

Transcribed from the tables of Ponnusamy, Saltz & Choudhary (SC '93);
where the scanned table is garbled, values are reconstructed from
row/column sums and the surrounding text and marked ``approx=True``.

The shape-comparison helpers quantify how well a measured run reproduces
the paper's *relationships* (who wins, by what factor) independent of
absolute calibration; ``tests/bench/test_paper_data.py`` pins the
paper-side facts, and EXPERIMENTS.md cites the helper outputs.
"""

from __future__ import annotations

from dataclasses import dataclass

#: seconds on the iPSC/860, 100 executor iterations, RCB distributions
#: (workload, procs) -> (no_reuse, reuse)
PAPER_TABLE1: dict[tuple[str, int], tuple[float, float]] = {
    ("10K mesh", 4): (400.0, 17.6),
    ("10K mesh", 8): (214.0, 10.8),
    ("10K mesh", 16): (123.0, 7.7),
    ("53K mesh", 16): (668.0, 30.4),
    ("53K mesh", 32): (398.0, 23.0),
    ("53K mesh", 64): (239.0, 17.4),
    ("648 atoms", 4): (707.0, 15.2),
    ("648 atoms", 8): (384.0, 9.7),
    ("648 atoms", 16): (227.0, 8.0),
}


@dataclass(frozen=True)
class PaperTable2Column:
    """One variant column of Table 2 (53K mesh / 32 processors)."""

    variant: str
    graph_generation: float | None
    partition: float
    remap: float
    executor: float
    total: float
    approx: bool = False


PAPER_TABLE2: list[PaperTable2Column] = [
    PaperTable2Column("RCB compiler+reuse", None, 1.6, 4.3, 16.8, 22.4),
    PaperTable2Column("RCB compiler no-reuse", None, 1.6, 4.2, 17.2, 398.0, approx=True),
    PaperTable2Column("RCB hand", None, 1.6, 4.2, 17.4, 23.0),
    PaperTable2Column("BLOCK hand", None, 0.0, 4.7, 35.0, 59.4, approx=True),
    PaperTable2Column("RSB hand", 2.2, 258.0, 4.1, 11.4, 277.5),
    PaperTable2Column("RSB compiler+reuse", 2.2, 258.0, 4.2, 13.9, 277.9, approx=True),
]

#: Table 3 (compiler-linked RCB + reuse):
#: (workload, procs) -> (partitioner, inspector, remap, executor, total)
PAPER_TABLE3: dict[tuple[str, int], tuple[float, float, float, float, float]] = {
    ("10K mesh", 4): (0.6, 1.2, 3.1, 12.7, 17.6),
    ("10K mesh", 8): (0.6, 0.6, 1.6, 7.0, 10.8),
    ("10K mesh", 16): (0.4, 0.4, 0.9, 6.0, 7.7),
    ("53K mesh", 16): (1.8, 2.0, 5.1, 21.5, 30.4),
    ("53K mesh", 32): (1.6, 1.9, 3.0, 17.2, 23.0),  # executor reconstructed
    ("53K mesh", 64): (2.5, 0.7, 1.9, 12.3, 17.4),
    ("648 atoms", 4): (0.1, 2.2, 4.8, 8.1, 15.2),
    ("648 atoms", 8): (0.1, 1.2, 2.6, 5.8, 9.7),
    ("648 atoms", 16): (0.1, 0.7, 1.5, 5.7, 8.0),
}

#: Table 4 (BLOCK + reuse): (workload, procs) -> (inspector, remap, executor, total)
PAPER_TABLE4: dict[tuple[str, int], tuple[float, float, float, float]] = {
    ("10K mesh", 4): (1.5, 3.1, 26.0, 30.4),  # total printed as 30.4 in scan
    ("10K mesh", 8): (0.9, 1.6, 20.8, 23.3),
    ("10K mesh", 16): (0.5, 0.8, 14.7, 16.0),
    ("53K mesh", 16): (3.9, 4.9, 74.1, 82.9),
    ("53K mesh", 32): (1.9, 2.8, 54.7, 59.4),
    ("53K mesh", 64): (1.0, 1.7, 35.3, 38.0),
    ("648 atoms", 4): (2.7, 4.5, 10.3, 17.5),
    ("648 atoms", 8): (1.5, 2.6, 7.6, 11.7),
    ("648 atoms", 16): (0.8, 1.5, 7.3, 9.6),
}


# ---------------------------------------------------------------------------
# shape metrics
# ---------------------------------------------------------------------------
def paper_table1_speedups() -> dict[tuple[str, int], float]:
    """Reuse speedups the paper achieved, per configuration."""
    return {k: nr / r for k, (nr, r) in PAPER_TABLE1.items()}


def paper_block_vs_rcb_executor() -> dict[tuple[str, int], float]:
    """Paper's Table4/Table3 executor ratios (BLOCK cost factor)."""
    out = {}
    for key, (_, _, executor4, _) in PAPER_TABLE4.items():
        executor3 = PAPER_TABLE3[key][3]
        out[key] = executor4 / executor3
    return out


def paper_rsb_over_rcb_partition() -> float:
    """How much more the paper's RSB partitioner cost than RCB's."""
    rsb = next(c for c in PAPER_TABLE2 if c.variant == "RSB hand")
    rcb = next(c for c in PAPER_TABLE2 if c.variant == "RCB hand")
    return rsb.partition / rcb.partition


def paper_compiler_overhead() -> float:
    """Paper's compiler-vs-hand loop overhead (RCB columns of Table 2).

    Compares the loop portion (executor + inspector-ish remainder) via
    totals minus the shared one-time phases."""
    comp = next(c for c in PAPER_TABLE2 if c.variant == "RCB compiler+reuse")
    hand = next(c for c in PAPER_TABLE2 if c.variant == "RCB hand")
    return comp.total / hand.total


def shape_report(measured_speedups: dict, label: str = "table1") -> list[dict]:
    """Side-by-side reuse-speedup rows: measured vs paper direction.

    ``measured_speedups`` maps (workload label, procs) -> speedup.  Keys
    are matched positionally by sorted order when labels differ (our
    mesh sizes are scale-dependent).
    """
    paper = paper_table1_speedups()
    paper_items = sorted(paper.items(), key=lambda kv: (kv[0][0], kv[0][1]))
    measured_items = sorted(
        measured_speedups.items(), key=lambda kv: (kv[0][0], kv[0][1])
    )
    if len(paper_items) != len(measured_items):
        raise ValueError(
            f"expected {len(paper_items)} measured configs, got "
            f"{len(measured_items)}"
        )
    rows = []
    for (pk, pv), (mk, mv) in zip(paper_items, measured_items):
        rows.append(
            {
                "paper_config": f"{pk[0]}/{pk[1]}",
                "paper_speedup": pv,
                "measured_config": f"{mk[0]}/{mk[1]}",
                "measured_speedup": mv,
                "same_direction": (pv > 1) == (mv > 1),
            }
        )
    return rows
