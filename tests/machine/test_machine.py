"""Tests for the Machine simulation core."""

import pytest

from repro.machine import Machine, IPSC860, IDEALIZED
from repro.machine.topology import RingTopology


@pytest.fixture
def m4():
    return Machine(4)


class TestConstruction:
    def test_default_topology_is_hypercube(self, m4):
        assert type(m4.topology).__name__ == "HypercubeTopology"

    def test_non_power_of_two_rejected_on_hypercube(self):
        with pytest.raises(ValueError, match="power-of-two"):
            Machine(6)

    def test_explicit_topology(self):
        m = Machine(6, topology="ring")
        assert m.topology.n_procs == 6

    def test_topology_instance_size_mismatch(self):
        with pytest.raises(ValueError, match="topology is for"):
            Machine(4, topology=RingTopology(8))

    def test_zero_procs(self):
        with pytest.raises(ValueError, match="at least one"):
            Machine(0)


class TestClocks:
    def test_initially_zero(self, m4):
        assert m4.elapsed() == 0.0
        assert all(m4.clock(p) == 0.0 for p in range(4))

    def test_charge_compute_advances_one_clock(self, m4):
        dt = m4.charge_compute(1, flops=2e6)
        assert dt == pytest.approx(2e6 * IPSC860.flop_time)
        assert m4.clock(1) == pytest.approx(dt)
        assert m4.clock(0) == 0.0

    def test_charge_compute_all_scalar(self, m4):
        m4.charge_compute_all(flops=1000.0)
        assert all(m4.clock(p) > 0 for p in range(4))

    def test_charge_compute_all_vector(self, m4):
        m4.charge_compute_all(flops=[0.0, 1000.0, 2000.0, 3000.0])
        assert m4.clock(0) == 0.0
        assert m4.clock(3) == pytest.approx(3 * m4.clock(1))

    def test_rank_range_checked(self, m4):
        with pytest.raises(ValueError, match="out of range"):
            m4.clock(9)


class TestSend:
    def test_send_charges_both_ends(self, m4):
        m4.send(0, 1, 800)
        assert m4.clock(0) == m4.clock(1) > 0
        assert m4.clock(2) == 0.0
        st0, st1 = m4.procs[0].stats, m4.procs[1].stats
        assert st0.messages_sent == 1 and st0.bytes_sent == 800
        assert st1.messages_received == 1 and st1.bytes_received == 800

    def test_send_to_self_is_memcpy(self, m4):
        m4.send(2, 2, 800)
        assert m4.procs[2].stats.messages_sent == 0
        assert m4.clock(2) == pytest.approx(100 * IPSC860.mem_time)

    def test_farther_costs_more(self):
        m = Machine(8)
        t1 = m.send(0, 1, 100)  # 1 hop
        t3 = m.send(0, 7, 100)  # 3 hops
        assert t3 > t1

    def test_negative_size_rejected(self, m4):
        with pytest.raises(ValueError, match="negative message size"):
            m4.send(0, 1, -5)


class TestExchange:
    def test_exchange_sums_per_processor(self, m4):
        m4.exchange({(0, 1): 100, (0, 2): 100, (3, 0): 100})
        # proc 0 sends twice and receives once
        assert m4.procs[0].stats.messages_sent == 2
        assert m4.procs[0].stats.messages_received == 1
        assert m4.clock(0) > m4.clock(3)

    def test_zero_byte_messages_skipped(self, m4):
        m4.exchange({(0, 1): 0})
        assert m4.procs[0].stats.messages_sent == 0
        assert m4.elapsed() == 0.0

    def test_self_entry_is_local_copy(self, m4):
        m4.exchange({(1, 1): 160})
        assert m4.procs[1].stats.messages_sent == 0
        assert m4.clock(1) > 0


class TestBarrierAndPhases:
    def test_barrier_levels_clocks(self, m4):
        m4.charge_compute(2, flops=1e6)
        t = m4.barrier()
        assert all(m4.clock(p) == pytest.approx(t) for p in range(4))
        assert t > 1e6 * IPSC860.flop_time  # includes sync cost

    def test_single_proc_barrier_free(self):
        m = Machine(1)
        m.charge_compute(0, flops=100)
        before = m.elapsed()
        assert m.barrier() == pytest.approx(before)

    def test_phase_records_elapsed_max(self, m4):
        with m4.phase("compute"):
            m4.charge_compute(0, flops=1e6)
            m4.charge_compute(1, flops=3e6)
        rec = m4.stats.phases[-1]
        assert rec.name == "compute"
        # slowest processor dominates
        assert rec.elapsed >= 3e6 * IPSC860.flop_time

    def test_phase_time_sums_by_name(self, m4):
        for _ in range(3):
            with m4.phase("exec"):
                m4.charge_compute_all(flops=1000.0)
        with m4.phase("other"):
            m4.charge_compute_all(flops=1000.0)
        assert m4.phase_time("exec") == pytest.approx(
            sum(p.elapsed for p in m4.stats.phases[:3])
        )

    def test_phase_per_proc_deltas(self, m4):
        m4.charge_compute(0, flops=5e5)  # pre-phase work must not leak in
        with m4.phase("w"):
            m4.charge_compute(1, flops=1e6)
        rec = m4.stats.phases[-1]
        assert rec.per_proc[1].flops == pytest.approx(1e6)
        assert rec.per_proc[0].flops == 0.0

    def test_phase_record_aggregates(self, m4):
        with m4.phase("comm"):
            m4.send(0, 1, 1000)
            m4.send(2, 3, 500)
        rec = m4.stats.phases[-1]
        assert rec.total_messages == 2
        assert rec.total_bytes == 1500

    def test_reset(self, m4):
        with m4.phase("x"):
            m4.charge_compute_all(flops=10.0)
        m4.reset()
        assert m4.elapsed() == 0.0
        assert m4.stats.phases == []


class TestCostModelSwap:
    def test_idealized_machine_is_faster(self):
        slow, fast = Machine(4), Machine(4, cost_model=IDEALIZED)
        for m in (slow, fast):
            m.send(0, 1, 10_000)
        assert fast.elapsed() < slow.elapsed() / 10
