"""Thin typed client over :class:`~repro.serve.service.SimulationService`.

The SDK callers are meant to hold: keyword-argument submission with the
config validated up front (:class:`~repro.serve.config.JobConfig` raises
on nonsense before anything is queued), polite handling of load
shedding (sleep ``retry_after`` and resubmit, up to a bound), and a
blocking ``run()`` for the common submit-and-wait case.
"""

from __future__ import annotations

import time

from repro.serve.config import JobConfig
from repro.serve.errors import QueueSaturated
from repro.serve.service import Job, SimulationService


class ServeClient:
    """Typed convenience front-end for one service instance."""

    def __init__(self, service: SimulationService, submit_retries: int = 8):
        self.service = service
        self.submit_retries = int(submit_retries)

    def submit(self, **config_kwargs) -> Job:
        """Validate and submit; honors ``retry_after`` on a full queue.

        Raises :class:`QueueSaturated` only after ``submit_retries``
        shed submissions in a row.
        """
        config = JobConfig(**config_kwargs)
        for _ in range(self.submit_retries):
            try:
                return self.service.submit(config)
            except QueueSaturated as exc:
                time.sleep(exc.retry_after)
        return self.service.submit(config)  # last try: let it raise

    def run(self, timeout: float | None = 300.0, **config_kwargs) -> dict:
        """Submit and block for the result (:class:`JobFailed` on failure)."""
        return self.submit(**config_kwargs).wait(timeout)

    def status(self, job: Job) -> dict:
        return job.status()

    def health(self) -> dict:
        return self.service.health()
