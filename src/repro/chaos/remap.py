"""Array remapping: move data between distributions (Phase C of Figure 2).

"A communication schedule is built and used to redistribute the arrays
from the default to the new distribution" (Section 4.1.2).  The schedule
is built once per redistribution and applied to every array aligned with
the decomposition -- remapping x, y and the coordinate arrays of a mesh
shares one :class:`RemapSchedule`.

Like ``CommSchedule``, the move set is stored flattened (CSR-style):
one (src proc, dst proc, count) triple per communicating pair plus
concatenated old/new local-offset arrays, resolved once to *flat
backing positions* against the old/new distributions.  ``apply`` is a
single gather + scatter fancy-index over the arrays' contiguous backing
storage and pure bincount/ufunc charging -- no Python loop over move
pairs or processors.
"""

from __future__ import annotations

import numpy as np

from repro.chaos.costs import ChaosCosts, DEFAULT_COSTS
from repro.distribution.base import Distribution
from repro.distribution.distarray import DistArray
from repro.machine.machine import Machine


def _group_elements(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stable grouping of element positions by key.

    Returns ``(uniq_keys, order, bounds)``: ``order[bounds[i]:bounds[i+1]]``
    are the positions with key ``uniq_keys[i]``, in original order.
    """
    if not keys.size:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.zeros(1, dtype=np.int64)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
    bounds = np.concatenate(([0], boundaries, [keys.size]))
    return sorted_keys[bounds[:-1]], order, bounds


class RemapSchedule:
    """Moves every element from its old owner/offset to its new one.

    The flattened form: ``pair_p[i]``/``pair_q[i]``/``pair_counts[i]``
    describe the i-th communicating pair; ``src_index``/``dst_index``
    hold all pairs' local offsets concatenated in pair order.
    """

    def __init__(
        self,
        machine: Machine,
        old_signature: tuple,
        new_dist: Distribution,
        moves: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] | None = None,
        *,
        pair_p: np.ndarray | None = None,
        pair_q: np.ndarray | None = None,
        pair_counts: np.ndarray | None = None,
        src_index: np.ndarray | None = None,
        dst_index: np.ndarray | None = None,
        carry_p: np.ndarray | None = None,
        carry_index: np.ndarray | None = None,
    ):
        self.machine = machine
        self.old_signature = old_signature
        self.new_dist = new_dist
        if moves is not None:
            # legacy constructor form: flatten the (src, dst) -> offsets
            # dict once, skipping empty pairs (the old apply did too)
            items = [(pq, sl, dl) for pq, (sl, dl) in moves.items() if len(sl)]
            pair_p = np.array([pq[0] for pq, _, _ in items], dtype=np.int64)
            pair_q = np.array([pq[1] for pq, _, _ in items], dtype=np.int64)
            pair_counts = np.array([len(sl) for _, sl, _ in items], dtype=np.int64)
            if items:
                src_index = np.concatenate([np.asarray(sl, dtype=np.int64) for _, sl, _ in items])
                dst_index = np.concatenate([np.asarray(dl, dtype=np.int64) for _, _, dl in items])
            else:
                src_index = np.empty(0, dtype=np.int64)
                dst_index = np.empty(0, dtype=np.int64)
        self.pair_p = pair_p
        self.pair_q = pair_q
        self.pair_counts = pair_counts
        self.src_index = src_index
        self.dst_index = dst_index
        # flat backing positions: the destination side is known now (the
        # new distribution is in hand); the source side is resolved on
        # first apply() from the array's current (old) distribution
        elem_p = np.repeat(pair_p, pair_counts)
        elem_q = np.repeat(pair_q, pair_counts)
        self._elem_p = elem_p
        self._dst_pos = new_dist.flat_offsets()[elem_q] + dst_index
        self._src_pos: np.ndarray | None = None
        # carried elements keep their exact (owner, local offset): no
        # simulated cost -- the data never leaves its slot on the real
        # machine, only the simulator's flat backing layout shifts.  A
        # full schedule covers every element via pairs and carries none.
        self.carry_p = carry_p
        self.carry_index = carry_index
        if carry_p is not None and carry_p.size:
            self._carry_dst_pos = new_dist.flat_offsets()[carry_p] + carry_index
        else:
            self._carry_dst_pos = None
        self._carry_src_pos: np.ndarray | None = None

    @property
    def moves(self) -> dict[tuple[int, int], tuple[np.ndarray, np.ndarray]]:
        """(src, dst) -> (old local offsets, new local offsets), materialized
        lazily from the flattened arrays (compatibility/debugging view)."""
        out = {}
        starts = np.concatenate(([0], np.cumsum(self.pair_counts)))
        for i in range(self.pair_p.size):
            lo, hi = starts[i], starts[i + 1]
            out[(int(self.pair_p[i]), int(self.pair_q[i]))] = (
                self.src_index[lo:hi],
                self.dst_index[lo:hi],
            )
        return out

    def element_count(self) -> int:
        """Elements that change processor (self-moves excluded)."""
        cross = self.pair_p != self.pair_q
        return int(self.pair_counts[cross].sum())

    def apply(
        self, arr: DistArray, costs: ChaosCosts = DEFAULT_COSTS
    ) -> None:
        """Move one array's data and rebind it to the new distribution."""
        if arr.machine is not self.machine:
            raise ValueError("remap schedule and array live on different machines")
        if arr.distribution.signature() != self.old_signature:
            raise ValueError(
                f"remap schedule is stale: built for {self.old_signature}, "
                f"array {arr.name!r} has {arr.distribution.signature()}"
            )
        m = self.machine
        n = m.n_procs

        # gather every moved value and scatter it to its new flat
        # position in two fancy-indexes over the backing arrays
        if self._src_pos is None:
            self._src_pos = (
                arr.distribution.flat_offsets()[self._elem_p] + self.src_index
            )
        new_data = np.empty(self.new_dist.size, dtype=arr.dtype)
        if self._carry_dst_pos is not None:
            if self._carry_src_pos is None:
                self._carry_src_pos = (
                    arr.distribution.flat_offsets()[self.carry_p] + self.carry_index
                )
            new_data[self._carry_dst_pos] = arr.backing_ro[self._carry_src_pos]
        wire = arr.backing_ro[self._src_pos]
        keep = None
        if m.faults is not None:
            # fault injection hook: may corrupt/duplicate moved elements
            # (returns a perturbed copy) or drop some (keep mask); the
            # charged message volume below is untouched either way
            wire, keep = m.faults.on_remap_wire(wire)
        if keep is None:
            new_data[self._dst_pos] = wire
        else:
            # dropped moves never arrive: their destination slots keep
            # the allocation's stale (zero) fill
            new_data[self._dst_pos[~keep]] = 0
            new_data[self._dst_pos[keep]] = wire[keep]

        pack_w = costs.pack_unpack_mem * self.pair_counts
        pack = np.bincount(self.pair_p, weights=pack_w, minlength=n)
        unpack = np.bincount(self.pair_q, weights=pack_w, minlength=n)
        m.charge_compute_all(mem=pack)
        m.exchange(
            src=self.pair_p,
            dst=self.pair_q,
            nbytes=self.pair_counts * arr.itemsize,
        )
        m.charge_compute_all(mem=unpack)
        arr.rebind_flat(self.new_dist, new_data)


def build_remap_schedule(
    machine: Machine,
    old_dist: Distribution,
    new_dist: Distribution,
    costs: ChaosCosts = DEFAULT_COSTS,
) -> RemapSchedule:
    """Build the schedule that moves data from ``old_dist`` to ``new_dist``.

    Charges the per-element schedule-construction work (new translation
    table entries, move-list assembly) plus the exchange of move lists.
    """
    if old_dist.size != new_dist.size:
        raise ValueError(
            f"cannot remap between sizes {old_dist.size} and {new_dist.size}"
        )
    if old_dist.n_procs != machine.n_procs or new_dist.n_procs != machine.n_procs:
        raise ValueError("distributions must span the machine")
    n = machine.n_procs
    size = old_dist.size
    g = np.arange(size, dtype=np.int64)
    old_owner = np.asarray(old_dist.owner(g), dtype=np.int64) if size else g
    new_owner = np.asarray(new_dist.owner(g), dtype=np.int64) if size else g
    old_lidx = np.asarray(old_dist.local_index(g), dtype=np.int64) if size else g
    new_lidx = np.asarray(new_dist.local_index(g), dtype=np.int64) if size else g

    # one stable sort groups all elements by (old owner, new owner); pair
    # ids, counts, and the flattened offset lists fall out without any
    # per-pair Python loop
    pair_keys, order, bounds = _group_elements(
        old_owner * n + new_owner if size else np.empty(0, dtype=np.int64)
    )
    pair_p = pair_keys // n
    pair_q = pair_keys % n
    pair_counts = np.diff(bounds)
    src_index = old_lidx[order]
    dst_index = new_lidx[order]

    # charge: per-element remap bookkeeping at the old owner, plus the
    # move-list exchange (each element's (gidx, new offset) pair travels
    # to the new owner as schedule metadata)
    per_proc = np.bincount(pair_p, weights=pair_counts, minlength=n)
    machine.charge_compute_all(iops=costs.remap_build * per_proc)
    cross = pair_p != pair_q
    machine.exchange(
        src=pair_p[cross],
        dst=pair_q[cross],
        nbytes=pair_counts[cross] * 2 * costs.index_bytes,
    )
    machine.barrier()
    return RemapSchedule(
        machine,
        old_dist.signature(),
        new_dist,
        pair_p=pair_p,
        pair_q=pair_q,
        pair_counts=pair_counts,
        src_index=src_index,
        dst_index=dst_index,
    )


def patch_remap_schedule(
    machine: Machine,
    old_dist: Distribution,
    new_dist: Distribution,
    plan,
    costs: ChaosCosts = DEFAULT_COSTS,
) -> RemapSchedule:
    """Build a remap schedule from a repartitioning delta alone.

    ``plan`` is the :class:`~repro.distribution.irregular.RebalancePlan`
    that produced ``new_dist`` from ``old_dist`` (via
    ``repartition_stable``): ``moved`` elements change processor and pay
    network; ``repacked`` elements slide within their processor's memory
    (self pairs, pack/unpack only); every other element keeps its exact
    (owner, local offset) and is *carried* -- zero simulated cost, one
    host fancy-index.  Schedule-construction charges are sized by the
    delta, not the array: ``remap_build`` per moved/repacked element and
    a move-list exchange over the cross pairs only, mirroring
    :func:`build_remap_schedule` shrunk to the touched set.
    """
    if old_dist.size != new_dist.size:
        raise ValueError(
            f"cannot remap between sizes {old_dist.size} and {new_dist.size}"
        )
    if old_dist.n_procs != machine.n_procs or new_dist.n_procs != machine.n_procs:
        raise ValueError("distributions must span the machine")
    n = machine.n_procs
    size = old_dist.size
    touched = np.concatenate([plan.moved, plan.repacked])
    ep = np.asarray(old_dist.owner(touched), dtype=np.int64)
    eq = np.asarray(new_dist.owner(touched), dtype=np.int64)
    old_l = np.asarray(old_dist.local_index(touched), dtype=np.int64)
    new_l = np.asarray(new_dist.local_index(touched), dtype=np.int64)
    if plan.repacked.size:
        rp = ep[plan.moved.size :]
        rq = eq[plan.moved.size :]
        if not np.array_equal(rp, rq):
            raise ValueError("repacked elements must keep their processor")

    pair_keys, order, bounds = _group_elements(
        ep * n + eq if touched.size else np.empty(0, dtype=np.int64)
    )
    pair_p = pair_keys // n
    pair_q = pair_keys % n
    pair_counts = np.diff(bounds)
    src_index = old_l[order]
    dst_index = new_l[order]

    carry_mask = np.ones(size, dtype=bool)
    carry_mask[touched] = False
    carry_g = np.flatnonzero(carry_mask)
    carry_p = np.asarray(old_dist.owner(carry_g), dtype=np.int64)
    carry_index = np.asarray(old_dist.local_index(carry_g), dtype=np.int64)

    per_proc = np.bincount(pair_p, weights=pair_counts, minlength=n)
    machine.charge_compute_all(iops=costs.remap_build * per_proc)
    cross = pair_p != pair_q
    machine.exchange(
        src=pair_p[cross],
        dst=pair_q[cross],
        nbytes=pair_counts[cross] * 2 * costs.index_bytes,
    )
    machine.barrier()
    sched = RemapSchedule(
        machine,
        old_dist.signature(),
        new_dist,
        pair_p=pair_p,
        pair_q=pair_q,
        pair_counts=pair_counts,
        src_index=src_index,
        dst_index=dst_index,
        carry_p=carry_p,
        carry_index=carry_index,
    )
    if machine.faults is not None:
        # fault injection hook: may desynchronize the patched schedule's
        # destination map (the remap analogue of flip_slots)
        machine.faults.on_patched_remap(sched)
    return sched


def remap_arrays_incremental(
    arrays: list[DistArray],
    new_dist: Distribution,
    plan,
    costs: ChaosCosts = DEFAULT_COSTS,
) -> RemapSchedule:
    """Like :func:`remap_arrays`, with the schedule patched from a
    :class:`~repro.distribution.irregular.RebalancePlan` delta instead
    of rebuilt over every element."""
    if not arrays:
        raise ValueError("no arrays to remap")
    first = arrays[0]
    for arr in arrays[1:]:
        if arr.distribution.signature() != first.distribution.signature():
            raise ValueError(
                f"arrays {first.name!r} and {arr.name!r} have different "
                "distributions; remap them separately"
            )
        if arr.machine is not first.machine:
            raise ValueError("arrays live on different machines")
    sched = patch_remap_schedule(
        first.machine, first.distribution, new_dist, plan, costs
    )
    for arr in arrays:
        sched.apply(arr, costs)
    return sched


def remap_array(
    arr: DistArray, new_dist: Distribution, costs: ChaosCosts = DEFAULT_COSTS
) -> RemapSchedule:
    """Build a schedule and remap a single array; returns the schedule."""
    sched = build_remap_schedule(arr.machine, arr.distribution, new_dist, costs)
    sched.apply(arr, costs)
    return sched


def remap_arrays(
    arrays: list[DistArray],
    new_dist: Distribution,
    costs: ChaosCosts = DEFAULT_COSTS,
) -> RemapSchedule:
    """Remap several same-distribution arrays sharing one schedule.

    This is what REDISTRIBUTE does to every array aligned with a
    decomposition: the schedule is built once, applied per array.
    """
    if not arrays:
        raise ValueError("no arrays to remap")
    first = arrays[0]
    for arr in arrays[1:]:
        if arr.distribution.signature() != first.distribution.signature():
            raise ValueError(
                f"arrays {first.name!r} and {arr.name!r} have different "
                "distributions; remap them separately"
            )
        if arr.machine is not first.machine:
            raise ValueError("arrays live on different machines")
    sched = build_remap_schedule(first.machine, first.distribution, new_dist, costs)
    for arr in arrays:
        sched.apply(arr, costs)
    return sched
