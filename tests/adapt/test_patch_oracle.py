"""Randomized oracle: incremental patching equals full re-inspection.

Two identical programs run the adaptive Euler scenario in lockstep on an
RCB-partitioned (irregular) mesh; each epoch mutates <= 5% of the edge
list.  Program A patches (``incremental=True``), program B re-inspects
in full.  After every adaptation, B's freshly inspected product is the
from-scratch oracle for A's patched product:

* identical iteration partition,
* identical schedule pair structure, send offsets, and wire order,
* identical ghost key sets per processor,
* localized reference lists dereferencing to identical global targets,
* identical ghost buffer *contents* per key after execution, and
* bit-identical executor results with matching simulated executor time,

while A's simulated inspector time is strictly below B's.
"""

import numpy as np
import pytest

from repro.machine import Machine
from repro.workloads import generate_mesh
from repro.workloads.euler import (
    euler_edge_loop,
    euler_sequential_reference,
    setup_euler_program,
)


def build_program(mesh, incremental, n_procs, coalesce, **kwargs):
    machine = Machine(n_procs)
    prog = setup_euler_program(
        machine,
        mesh,
        seed=11,
        incremental=incremental,
        coalesce_patterns=coalesce,
        **kwargs,
    )
    prog.construct("G", mesh.n_nodes, geometry=["xc", "yc", "zc"])
    prog.set_distribution("fmt", "G", "RCB")
    prog.redistribute("reg", "fmt")
    return machine, prog


def mutate(edges, n_nodes, rng, fraction):
    """Re-target ``fraction`` of the edges; returns (new_edges, positions)."""
    n_edges = edges.shape[1]
    pick = np.sort(
        rng.choice(n_edges, size=max(1, int(fraction * n_edges)), replace=False)
    )
    new = edges.copy()
    new[1, pick] = (
        new[0, pick] + 1 + rng.integers(0, n_nodes - 1, pick.size)
    ) % n_nodes
    return new, pick


def deref_targets(product, pattern_key, n_procs):
    """Global element index every localized reference points at."""
    loc = product.patterns[pattern_key].localized
    ls = np.asarray(loc.local_sizes, dtype=np.int64)
    refs = loc.refs_flat
    bounds = loc.ref_bounds
    pid = np.repeat(np.arange(n_procs, dtype=np.int64), np.diff(bounds))
    keys, kb = loc.ghost_flat, loc.ghost_bounds
    out = np.empty(refs.size, dtype=np.int64)
    ghost = refs >= ls[pid]
    out[ghost] = keys[kb[pid[ghost]] + (refs[ghost] - ls[pid[ghost]])]
    local = ~ghost
    # local refs: recover globals through the distribution
    return out, local, pid, refs


def assert_products_equivalent(prod_a, prod_b, arrays, n_procs):
    # iteration partition
    fa, ba = prod_a.iteration_partition.iters_flat()
    fb, bb = prod_b.iteration_partition.iters_flat()
    assert np.array_equal(fa, fb) and np.array_equal(ba, bb)

    assert set(prod_a.patterns) == set(prod_b.patterns)
    for key in prod_b.patterns:
        la = prod_a.patterns[key].localized
        lb = prod_b.patterns[key].localized
        sa, sb = la.schedule, lb.schedule
        # schedule pair structure + send offsets + wire order
        assert np.array_equal(sa._pair_q, sb._pair_q), key
        assert np.array_equal(sa._pair_p, sb._pair_p), key
        assert np.array_equal(sa._pair_len, sb._pair_len), key
        assert np.array_equal(sa._flat_send, sb._flat_send), key
        # ghost key sets per processor (A may carry -1 holes)
        for p in range(n_procs):
            ka = la.ghost_flat[la.ghost_bounds[p] : la.ghost_bounds[p + 1]]
            kb = lb.ghost_flat[lb.ghost_bounds[p] : lb.ghost_bounds[p + 1]]
            assert set(ka[ka >= 0].tolist()) == set(kb.tolist()), (key, p)
        # localized references hit identical global targets; the expected
        # target of iteration i is ind[i] (or i for direct references)
        ind = key[1]
        flat, _ = prod_b.iteration_partition.iters_flat()
        if ind is None:
            want = flat
        else:
            want = np.asarray(arrays[ind].global_view(), dtype=np.int64)[flat]
        for prod in (prod_a, prod_b):
            got, local_mask, pid, refs = deref_targets(prod, key, n_procs)
            dist = arrays[key[0]].distribution
            # verify ghost targets exactly; local targets via local_index
            assert np.array_equal(got[~local_mask], want[~local_mask]), key
            li = np.asarray(dist.local_index(want[local_mask]), dtype=np.int64)
            assert np.array_equal(refs[local_mask], li), key
            assert np.array_equal(
                np.asarray(dist.owner(want[local_mask]), dtype=np.int64),
                pid[local_mask],
            ), key


def ghost_contents_by_key(product, key, n_procs):
    """Mapping arrays (proc, ghost key) -> buffered value, sorted by key."""
    loc = product.patterns[key].localized
    ghosts = product.patterns[key].ghosts
    out = {}
    for p in range(n_procs):
        keys = loc.ghost_flat[loc.ghost_bounds[p] : loc.ghost_bounds[p + 1]]
        vals = ghosts.backing[ghosts.offsets[p] : ghosts.offsets[p + 1]]
        live = keys >= 0
        order = np.argsort(keys[live])
        out[p] = (keys[live][order], vals[live][order])
    return out


@pytest.mark.parametrize("n_procs", [2, 4, 8])
@pytest.mark.parametrize("coalesce", [True, False])
def test_patch_oracle_randomized(n_procs, coalesce):
    mesh = generate_mesh(400, seed=9)
    rng = np.random.default_rng(1234 + n_procs + int(coalesce))
    m_a, prog_a = build_program(mesh, True, n_procs, coalesce)
    m_b, prog_b = build_program(mesh, False, n_procs, coalesce)
    loop = euler_edge_loop(mesh)
    edges = mesh.edges.copy()
    x = prog_a.arrays["x"].to_global()
    want = np.zeros(mesh.n_nodes)

    prog_a.forall(loop, n_times=1)
    prog_b.forall(loop, n_times=1)
    want = euler_sequential_reference(x, edges, n_times=1, y0=want)

    for epoch in range(4):
        edges, pick = mutate(edges, mesh.n_nodes, rng, fraction=0.05)
        if epoch == 2:
            # whole-array rewrite with mostly-unchanged values: the diff
            # discovers the real delta inside the full dirty window
            prog_a.set_array("end_pt1", edges[0])
            prog_a.set_array("end_pt2", edges[1])
            prog_b.set_array("end_pt1", edges[0])
            prog_b.set_array("end_pt2", edges[1])
        else:
            for prog in (prog_a, prog_b):
                prog.set_array_elements("end_pt1", pick, edges[0, pick])
                prog.set_array_elements("end_pt2", pick, edges[1, pick])

        ea0 = m_a.phase_time("executor")
        eb0 = m_b.phase_time("executor")
        ia0 = m_a.phase_time("inspector")
        ib0 = m_b.phase_time("inspector")
        prog_a.forall(loop, n_times=1)
        prog_b.forall(loop, n_times=1)
        want = euler_sequential_reference(x, edges, n_times=1, y0=want)

        # A patched, B re-inspected in full
        assert prog_a.patch_hits == epoch + 1
        assert prog_a.inspector_runs == 1
        assert prog_b.inspector_runs == epoch + 2

        prod_a = prog_a.records[loop.name].product
        prod_b = prog_b.records[loop.name].product
        assert_products_equivalent(prod_a, prod_b, prog_b.arrays, n_procs)

        # ghost contents per key equal after the sweep's gather
        for key in prod_b.patterns:
            if key[0] != "x":
                continue  # x is the gathered (read) pattern
            ga = ghost_contents_by_key(prod_a, key, n_procs)
            gb = ghost_contents_by_key(prod_b, key, n_procs)
            for p in range(n_procs):
                assert np.array_equal(ga[p][0], gb[p][0]), (key, p)
                assert np.array_equal(ga[p][1], gb[p][1]), (key, p)

        # simulated results: bit-identical state, matching executor time,
        # cheaper inspection
        ya = prog_a.arrays["y"].to_global()
        yb = prog_b.arrays["y"].to_global()
        assert np.array_equal(ya, yb)
        assert np.allclose(ya, want)
        ea = m_a.phase_time("executor") - ea0
        eb = m_b.phase_time("executor") - eb0
        assert np.isclose(ea, eb, rtol=1e-9, atol=0.0)
        assert (m_a.phase_time("inspector") - ia0) < (
            m_b.phase_time("inspector") - ib0
        )


@pytest.mark.parametrize("n_procs", [2, 4])
def test_patched_exec_caches_match_fresh(n_procs):
    """The executor caches carried across a patch (``patch_exec_caches``)
    must be element-equal to caches built from scratch off the patched
    product -- and the executor must produce bit-identical results and
    simulated charges either way."""
    from repro.core.executor import _PatternSpace

    mesh = generate_mesh(350, seed=13)
    rng = np.random.default_rng(77 + n_procs)
    m_a, prog_a = build_program(mesh, True, n_procs, True)
    loop = euler_edge_loop(mesh)
    edges = mesh.edges.copy()
    prog_a.forall(loop, n_times=1)

    for epoch in range(3):
        edges, pick = mutate(edges, mesh.n_nodes, rng, fraction=0.04)
        prog_a.set_array_elements("end_pt1", pick, edges[0, pick])
        prog_a.set_array_elements("end_pt2", pick, edges[1, pick])
        prog_a.forall(loop, n_times=1)
        assert prog_a.patch_hits == epoch + 1

        prod = prog_a.records[loop.name].product
        iter_flat, iter_bounds = prod.iteration_partition.iters_flat()
        ref_pid = np.repeat(
            np.arange(n_procs, dtype=np.int64), np.diff(iter_bounds)
        )
        for key, pat in prod.patterns.items():
            if pat.exec_space is None:
                continue
            fresh = _PatternSpace(pat.localized, pat.ghosts)
            assert np.array_equal(pat.exec_space.offsets, fresh.offsets), key
            assert np.array_equal(pat.exec_space.local_sel, fresh.local_sel), key
            assert np.array_equal(pat.exec_space.ghost_sel, fresh.ghost_sel), key
            assert pat.exec_space.total == fresh.total, key
            if pat.exec_refs is not None:
                assert np.array_equal(
                    pat.exec_refs, fresh.refs(pat.localized, ref_pid)
                ), key

        # dropping the carried caches and re-executing from scratch gives
        # bit-identical results and identical simulated executor charges
        y_carried = prog_a.arrays["y"].to_global().copy()
        e0 = m_a.phase_time("executor")
        prog_a.forall(loop, n_times=1)
        e_carried = m_a.phase_time("executor") - e0
        y_after_carried = prog_a.arrays["y"].to_global().copy()
        for pat in prod.patterns.values():
            pat.exec_space = None
            pat.exec_refs = None
        prog_a.arrays["y"].set_global(y_carried)
        prog_a.machine.charge_compute_all(
            mem=prog_a.arrays["y"].distribution.local_sizes().astype(np.float64)
        )
        e1 = m_a.phase_time("executor")
        prog_a.forall(loop, n_times=1)
        e_fresh = m_a.phase_time("executor") - e1
        assert np.array_equal(
            prog_a.arrays["y"].to_global(), y_after_carried
        )
        assert np.isclose(e_carried, e_fresh, rtol=1e-12, atol=0.0)


def test_owner_computes_partition_method_respected():
    """Regression: re-voting must use the product's partition method --
    under owner_computes a patched partition must equal a fresh one."""
    mesh = generate_mesh(400, seed=9)
    rng = np.random.default_rng(77)
    m_a, prog_a = build_program(
        mesh, True, 4, True, iter_method="owner_computes"
    )
    m_b, prog_b = build_program(
        mesh, False, 4, True, iter_method="owner_computes"
    )
    loop = euler_edge_loop(mesh)
    edges = mesh.edges.copy()
    prog_a.forall(loop, n_times=1)
    prog_b.forall(loop, n_times=1)
    edges, pick = mutate(edges, mesh.n_nodes, rng, fraction=0.05)
    for prog in (prog_a, prog_b):
        prog.set_array_elements("end_pt1", pick, edges[0, pick])
        prog.set_array_elements("end_pt2", pick, edges[1, pick])
    prog_a.forall(loop, n_times=1)
    prog_b.forall(loop, n_times=1)
    assert prog_a.patch_hits == 1
    prod_a = prog_a.records[loop.name].product
    prod_b = prog_b.records[loop.name].product
    assert prod_a.iteration_partition.method == "owner_computes"
    assert_products_equivalent(prod_a, prod_b, prog_b.arrays, 4)
    assert np.array_equal(
        prog_a.arrays["y"].to_global(), prog_b.arrays["y"].to_global()
    )


def test_patch_grows_ghosts_from_empty_group():
    """Regression: a group with zero ghosts at inspection (fully local
    references) must survive a patch that introduces its first ghosts."""
    from repro.core import ArrayRef, ForallLoop, IrregularProgram, Reduce

    n = 32
    m = Machine(4)
    prog = IrregularProgram(m, incremental=True)
    prog.decomposition("d", n)
    prog.distribute("d", "block")
    rng = np.random.default_rng(5)
    prog.array("x", "d", values=rng.normal(size=n))
    prog.array("y", "d", values=np.zeros(n))
    # identity indirection: every reference is iteration-local
    prog.array("ia", "d", values=np.arange(n), dtype=np.int64)
    loop = ForallLoop(
        "sweep",
        n,
        [Reduce("add", ArrayRef("y", "ia"), lambda a: 2.0 * a, (ArrayRef("x", "ia"),))],
    )
    prog.forall(loop, n_times=1)
    product = prog.records[loop.name].product
    assert all(
        pat.ghosts.total_elements() == 0 for pat in product.patterns.values()
    )
    # retarget a few entries to remote elements: first ghosts ever
    pos = np.array([0, 1, 2], dtype=np.int64)
    vals = (pos + n // 2) % n
    prog.set_array_elements("ia", pos, vals)
    prog.forall(loop, n_times=1)
    assert prog.patch_hits == 1 and prog.inspector_runs == 1
    ia = prog.arrays["ia"].to_global()
    x = prog.arrays["x"].to_global()
    # reference: first sweep through the identity, second through ia
    want = np.zeros(n)
    np.add.at(want, np.arange(n), 2.0 * x)
    np.add.at(want, ia, 2.0 * x[ia])
    assert np.allclose(prog.arrays["y"].to_global(), want)


class TestFallbacks:
    def build(self, incremental=True, **kwargs):
        mesh = generate_mesh(300, seed=4)
        m, prog = build_program(mesh, incremental, 4, True, **kwargs)
        return mesh, m, prog

    def test_regionless_write_falls_back_to_full(self):
        mesh, m, prog = self.build()
        loop = euler_edge_loop(mesh)
        prog.forall(loop, n_times=1)
        # a write stamped the paper's way (no region info) on the
        # indirection DAD: patching must refuse
        from repro.core.dad import DAD

        prog.registry.record_block_write([DAD.of(prog.arrays["end_pt1"])])
        prog.forall(loop, n_times=1)
        assert prog.patch_hits == 0
        assert prog.inspector_runs == 2

    def test_redistribute_falls_back_to_full(self):
        mesh, m, prog = self.build()
        loop = euler_edge_loop(mesh)
        prog.forall(loop, n_times=1)
        prog.redistribute("reg", "block")  # every node DAD changes
        prog.forall(loop, n_times=1)
        assert prog.patch_hits == 0
        assert prog.inspector_runs == 2

    def test_threshold_falls_back_to_full(self):
        mesh, m, prog = self.build(incremental_threshold=0.001)
        loop = euler_edge_loop(mesh)
        prog.forall(loop, n_times=1)
        rng = np.random.default_rng(0)
        edges, pick = mutate(mesh.edges, mesh.n_nodes, rng, fraction=0.2)
        prog.set_array_elements("end_pt2", pick, edges[1, pick])
        prog.forall(loop, n_times=1)
        assert prog.patch_hits == 0
        assert prog.inspector_runs == 2

    def test_noop_rewrite_is_patched_for_free(self):
        """Rewriting identical values: the diff finds nothing, the saved
        product is kept, and no full inspection happens."""
        mesh, m, prog = self.build()
        loop = euler_edge_loop(mesh)
        prog.forall(loop, n_times=1)
        before = prog.records[loop.name].product
        prog.set_array("end_pt1", mesh.edges[0])  # same values
        prog.forall(loop, n_times=1)
        assert prog.inspector_runs == 1
        assert prog.patch_hits == 1
        assert prog.records[loop.name].product is before

    def test_incremental_requires_tracking(self):
        from repro.core.program import IrregularProgram

        with pytest.raises(ValueError, match="track"):
            IrregularProgram(Machine(2), track=False, incremental=True)
