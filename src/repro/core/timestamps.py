"""The global modification timestamp: ``nmod`` and ``last_mod``.

"We maintain a global variable nmod which represents the cumulative
number of Fortran 90D loops, array intrinsics or statements that have
modified any distributed array.  [...]  nmod may be viewed as a global
time stamp.  Each time we modify an array a with a given data access
descriptor DAD(a), we update a global data structure last_mod to
associate DAD(a) with the current value of the global variable nmod."
(Section 3.)

Crucially this counts *executions of writing code blocks*, not element
assignments -- one increment per loop / intrinsic / statement execution,
which is what keeps the tracking overhead negligible in compute-heavy
data-parallel codes.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.dad import DAD


class ModificationRegistry:
    """Tracks ``nmod`` and ``last_mod(DAD)`` for one program run."""

    def __init__(self) -> None:
        self.nmod = 0
        self._last_mod: dict[tuple, int] = {}

    def record_block_write(self, dads: Iterable[DAD]) -> int:
        """One writing block (loop / intrinsic / statement) executed.

        Increments ``nmod`` once and stamps every DAD the block may have
        written.  Returns the new ``nmod``.
        """
        self.nmod += 1
        for dad in dads:
            self._last_mod[dad.signature] = self.nmod
        return self.nmod

    def record_remap(self, new_dad: DAD) -> int:
        """An array was remapped: its DAD changed.

        "If the array a is remapped, it means that DAD(a) changes.  In
        this case, we increment nmod and then set
        last_mod(DAD(a)) = nmod."
        """
        self.nmod += 1
        self._last_mod[new_dad.signature] = self.nmod
        return self.nmod

    def last_mod(self, dad: DAD) -> int:
        """Timestamp of the last possible write to arrays with this DAD.

        A DAD never recorded returns 0 (older than every real stamp).
        """
        return self._last_mod.get(dad.signature, 0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ModificationRegistry(nmod={self.nmod}, tracked={len(self._last_mod)})"
