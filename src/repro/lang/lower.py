"""Lowering: directive AST -> core runtime objects (the Figure 6 step).

``compile_expression`` turns a FORALL body expression into a vectorized
Python callable over operand arrays (one operand per distinct
``array(index(i))`` pattern) plus the modeled flop count;
``lower_forall`` assembles a :class:`~repro.core.forall.ForallLoop` from
a parsed FORALL statement.  The interpreter (:mod:`repro.lang.interp`)
drives these against an :class:`~repro.core.program.IrregularProgram`,
which is where the embedded CHAOS calls (K1-K4) actually happen.
"""

from __future__ import annotations

import numpy as np

from repro.core.forall import ArrayRef, Assign, ForallLoop, Reduce
from repro.lang.ast_nodes import (
    ArrayIndex,
    AssignStmt,
    BinOp,
    Call,
    ForallStmt,
    Num,
    ReduceStmt,
    UnOp,
    Var,
)

#: flops charged per expression node kind (i860-era relative weights)
_FLOPS_BINOP = 1.0
_FLOPS_POW = 8.0
_FLOPS_CALL = 8.0

_REDUCE_OP_MAP = {"ADD": "add", "MULTIPLY": "multiply", "MIN": "min", "MAX": "max"}

_INTRINSIC_FUNCS = {
    "SQRT": np.sqrt,
    "EXP": np.exp,
    "LOG": np.log,
    "SIN": np.sin,
    "COS": np.cos,
    "ABS": np.abs,
}


def _ref_of(node: ArrayIndex, loop_var: str) -> ArrayRef:
    """ArrayIndex AST -> core ArrayRef (validated by analysis already)."""
    if isinstance(node.index, Var) and node.index.name == loop_var:
        return ArrayRef(node.name, None)
    if isinstance(node.index, ArrayIndex):
        return ArrayRef(node.name, node.index.name)
    raise ValueError(f"unsupported subscript on {node.name!r}")


def compile_expression(expr, loop_var: str, scalars: dict[str, float] | None = None):
    """Compile an expression to ``(func, refs, flops)``.

    ``refs`` is the tuple of distinct :class:`ArrayRef` operands in
    first-appearance order; ``func(*operand_arrays)`` evaluates the
    expression vectorized over iterations; ``flops`` is the modeled cost
    per iteration.  Scalar identifiers are baked in from ``scalars``.
    """
    scalars = scalars or {}
    slots: dict[ArrayRef, int] = {}
    flops = 0.0

    def build(node):
        nonlocal flops
        if isinstance(node, Num):
            v = node.value
            return lambda ops: v
        if isinstance(node, Var):
            try:
                v = float(scalars[node.name])
            except KeyError:
                raise KeyError(
                    f"scalar {node.name!r} has no bound value"
                ) from None
            return lambda ops: v
        if isinstance(node, ArrayIndex):
            ref = _ref_of(node, loop_var)
            slot = slots.setdefault(ref, len(slots))
            return lambda ops: ops[slot]
        if isinstance(node, BinOp):
            lf, rf = build(node.left), build(node.right)
            flops += _FLOPS_POW if node.op == "**" else _FLOPS_BINOP
            op = node.op
            if op == "+":
                return lambda ops: lf(ops) + rf(ops)
            if op == "-":
                return lambda ops: lf(ops) - rf(ops)
            if op == "*":
                return lambda ops: lf(ops) * rf(ops)
            if op == "/":
                return lambda ops: lf(ops) / rf(ops)
            if op == "**":
                return lambda ops: lf(ops) ** rf(ops)
            raise ValueError(f"unsupported operator {op!r}")
        if isinstance(node, UnOp):
            f = build(node.operand)
            flops += _FLOPS_BINOP
            return lambda ops: -f(ops)
        if isinstance(node, Call):
            argfs = [build(a) for a in node.args]
            flops += _FLOPS_CALL
            if node.func in _INTRINSIC_FUNCS:
                if len(argfs) != 1:
                    raise ValueError(f"{node.func} takes one argument")
                fn = _INTRINSIC_FUNCS[node.func]
                f0 = argfs[0]
                return lambda ops: fn(f0(ops))
            if node.func == "MIN":
                return lambda ops: _variadic(np.minimum, argfs, ops)
            if node.func == "MAX":
                return lambda ops: _variadic(np.maximum, argfs, ops)
            if node.func == "MOD":
                if len(argfs) != 2:
                    raise ValueError("MOD takes two arguments")
                fa, fb = argfs
                return lambda ops: np.mod(fa(ops), fb(ops))
            raise ValueError(f"unknown intrinsic {node.func!r}")
        raise ValueError(f"unsupported expression node {node!r}")

    evaluator = build(expr)
    refs = tuple(slots)  # insertion order == slot order

    def func(*operands):
        if len(operands) != len(refs):
            raise ValueError(
                f"expression takes {len(refs)} operands, got {len(operands)}"
            )
        return evaluator(operands)

    return func, refs, flops


def _variadic(ufunc, argfs, ops):
    vals = [f(ops) for f in argfs]
    out = vals[0]
    for v in vals[1:]:
        out = ufunc(out, v)
    return out


def _eval_const(expr, env: dict[str, float]) -> float:
    """Evaluate a size/bound expression over bound symbols."""
    if isinstance(expr, Num):
        return expr.value
    if isinstance(expr, Var):
        try:
            return float(env[expr.name])
        except KeyError:
            raise KeyError(f"size symbol {expr.name!r} has no bound value") from None
    if isinstance(expr, BinOp):
        lhs, rhs = _eval_const(expr.left, env), _eval_const(expr.right, env)
        return {
            "+": lhs + rhs,
            "-": lhs - rhs,
            "*": lhs * rhs,
            "/": lhs / rhs,
            "**": lhs**rhs,
        }[expr.op]
    if isinstance(expr, UnOp):
        return -_eval_const(expr.operand, env)
    raise ValueError(f"expression {expr!r} is not a compile-time constant")


def lower_forall(
    stmt: ForallStmt, env: dict[str, float], scalars: dict[str, float] | None = None
) -> ForallLoop:
    """Lower one FORALL statement to a core ForallLoop.

    ``env`` binds size symbols for the loop bounds.  Loop bounds are
    1-based in the source (Fortran) and become 0-based iterations.
    """
    lo = int(_eval_const(stmt.lo, env))
    hi = int(_eval_const(stmt.hi, env))
    if lo != 1:
        raise ValueError(
            f"line {stmt.line}: FORALL must start at 1 (got {lo}); shift the "
            "index space"
        )
    n_iter = max(hi - lo + 1, 0)
    statements = []
    for body in stmt.body:
        func, refs, flops = compile_expression(body.expr, stmt.var, scalars)
        lhs = _ref_of(body.lhs, stmt.var)
        if isinstance(body, ReduceStmt):
            statements.append(
                Reduce(
                    op=_REDUCE_OP_MAP[body.op],
                    lhs=lhs,
                    func=func,
                    reads=refs,
                    flops=flops + 1.0,  # + the combine itself
                )
            )
        elif isinstance(body, AssignStmt):
            statements.append(Assign(lhs=lhs, func=func, reads=refs, flops=flops))
        else:  # pragma: no cover - analysis rejects other nodes
            raise TypeError(f"unsupported FORALL body {type(body).__name__}")
    return ForallLoop(f"forall_L{stmt.line}", n_iter, statements)
