"""Obs overhead smoke: tracing must be nearly free, and exactly free
when off.

Runs the P=64 simspeed scenario (50k-node Euler edge sweep, 20 executor
iterations, RCB, coalesced + incremental) twice -- ``obs=off`` and
``obs=on`` -- and enforces the two halves of the obs overhead contract:

* **Bit-identical simulated numbers.**  ``simulated_total``, every
  simulated phase, and the message/byte counters must match exactly
  between the two runs: host-side tracing never touches the modeled
  machine.  Hard failure on any drift.
* **Bounded wall overhead.**  The ``obs=on`` run's wall time must stay
  within ``OVERHEAD_LIMIT`` (10%) of the ``obs=off`` run (best-of-N
  walls on both sides to damp runner noise).

Also exports the ``obs=on`` run's trace to
``benchmarks/out/obs_overhead_P{n}.trace.json`` and writes
``benchmarks/out/BENCH_obs_overhead.json``; CI uploads both and checks
the trace is non-empty.

Run standalone (``python benchmarks/bench_obs_overhead.py``) or under
pytest (``pytest benchmarks/bench_obs_overhead.py``).
"""

import json
import os
import time

OUT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "out")
MESH_CACHE_DIR = os.path.join(OUT_DIR, "mesh_cache")
JSON_PATH = os.path.join(OUT_DIR, "BENCH_obs_overhead.json")

N_NODES = 50000
ITERATIONS = 20
N_PROCS = 64

#: fractional wall slack allowed for obs=on over obs=off (ISSUE gate)
OVERHEAD_LIMIT = 0.10

#: best-of-N walls per mode; the scenario is sub-second, so repeats are
#: cheap and the minimum is a far stabler statistic than a single draw
REPEATS = 3


def _run(mesh, obs):
    from repro.bench.harness import run_euler_experiment

    t0 = time.perf_counter()
    res = run_euler_experiment(
        mesh,
        n_procs=N_PROCS,
        partitioner="RCB",
        path="compiler",
        reuse=False,
        iterations=ITERATIONS,
        seed=0,
        coalesce=True,
        incremental=True,
        obs=obs,
    )
    return time.perf_counter() - t0, res


def run_obs_overhead():
    """Measure obs=off vs obs=on; returns the result record."""
    from repro.obs import load_trace, summarize
    from repro.workloads.mesh import generate_mesh

    mesh = generate_mesh(N_NODES, seed=0, cache_dir=MESH_CACHE_DIR)

    walls = {"off": [], "on": []}
    results = {}
    for _ in range(REPEATS):
        for mode in ("off", "on"):
            wall, res = _run(mesh, mode)
            walls[mode].append(wall)
            results[mode] = res

    off, on = results["off"], results["on"]
    drift = []
    if on.total != off.total:
        drift.append(f"simulated_total {on.total!r} != {off.total!r}")
    for phase, want in off.phases.items():
        if on.phases.get(phase) != want:
            drift.append(f"phase {phase!r} {on.phases.get(phase)!r} != {want!r}")
    for key in ("messages", "bytes"):
        if on.meta[key] != off.meta[key]:
            drift.append(f"{key} {on.meta[key]!r} != {off.meta[key]!r}")

    os.makedirs(OUT_DIR, exist_ok=True)
    trace_path = os.path.join(OUT_DIR, f"obs_overhead_P{N_PROCS}.trace.json")
    on.meta["obs_program"].export_obs(trace_path, fmt="chrome")
    summary = summarize(load_trace(trace_path))

    wall_off = min(walls["off"])
    wall_on = min(walls["on"])
    return {
        "scenario": "euler_edge_sweep_no_reuse_coalesced_incremental",
        "n_procs": N_PROCS,
        "n_nodes": N_NODES,
        "iterations": ITERATIONS,
        "repeats": REPEATS,
        "wall_off_seconds": round(wall_off, 3),
        "wall_on_seconds": round(wall_on, 3),
        "overhead_frac": round(wall_on / wall_off - 1.0, 4),
        "overhead_limit": OVERHEAD_LIMIT,
        "simulated_total": off.total,
        "simulated_drift": drift,
        "trace": os.path.relpath(trace_path, OUT_DIR),
        "n_spans": summary["n_spans"],
        "phase_shares": {
            name: round(ph["share"], 4)
            for name, ph in summary["phases"].items()
        },
    }


def write_report(record):
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(JSON_PATH, "w") as fh:
        json.dump(record, fh, indent=2)
    return JSON_PATH


def test_obs_overhead():
    record = run_obs_overhead()
    path = write_report(record)
    print(f"\n[obs overhead written to {path}]")
    print(
        f"  off={record['wall_off_seconds']}s  on={record['wall_on_seconds']}s  "
        f"overhead={100 * record['overhead_frac']:.1f}%  "
        f"spans={record['n_spans']}"
    )
    assert not record["simulated_drift"], (
        "obs=on changed simulated numbers: " + "; ".join(record["simulated_drift"])
    )
    assert record["n_spans"] > 0, "obs=on run exported an empty trace"
    trace_file = os.path.join(OUT_DIR, record["trace"])
    assert os.path.getsize(trace_file) > 0, f"empty trace artifact {trace_file}"
    assert record["overhead_frac"] <= OVERHEAD_LIMIT, (
        f"obs=on wall overhead {100 * record['overhead_frac']:.1f}% exceeds "
        f"{100 * OVERHEAD_LIMIT:.0f}% limit "
        f"({record['wall_off_seconds']}s -> {record['wall_on_seconds']}s)"
    )


if __name__ == "__main__":
    record = run_obs_overhead()
    path = write_report(record)
    print(json.dumps(record, indent=2))
    print(f"[written to {path}]")
