"""Loop-iteration partitioning (Section 4.3).

"Our current default is to employ a scheme that places a loop iteration
on the processor that is the home of the largest number of the
iteration's distributed array references" -- the *almost-owner-computes*
rule.  The classic *owner-computes* rule (iteration follows the owner of
the first left-hand side) is provided for the ablation bench.

The modeled cost follows the real implementation: iterations start
block-distributed; each processor translates its iterations' references
(indirection values are aligned with the iteration space), votes, and
iterations whose home differs from their current holder are shipped --
an exchange of iteration records.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chaos.costs import ChaosCosts, DEFAULT_COSTS
from repro.core.forall import ForallLoop
from repro.distribution.distarray import DistArray
from repro.distribution.regular import BlockDistribution
from repro.machine.machine import Machine

#: bytes per iteration record when iterations are shipped to their home
ITERATION_RECORD_BYTES = 16


@dataclass
class IterationPartition:
    """Assignment of loop iterations to processors."""

    n_iterations: int
    iters: list[np.ndarray]
    method: str

    def counts(self) -> list[int]:
        return [len(it) for it in self.iters]

    def owner_of(self) -> np.ndarray:
        """Dense iteration -> processor map (one scatter, for tests)."""
        out = np.empty(self.n_iterations, dtype=np.int64)
        counts = np.asarray([it.size for it in self.iters], dtype=np.int64)
        flat = (
            np.concatenate(self.iters)
            if self.iters
            else np.empty(0, dtype=np.int64)
        )
        out[flat] = np.repeat(np.arange(len(self.iters), dtype=np.int64), counts)
        return out


def _ref_targets(
    loop: ForallLoop, arrays: dict[str, DistArray], refs
) -> list[np.ndarray]:
    """Global element index referenced per iteration, per ArrayRef.

    Indirection arrays are read through ``global_view()`` — the cached,
    content-versioned global assembly — so repeated inspections of an
    unmutated indirection array cost nothing here.
    """
    n = loop.n_iterations
    direct = np.arange(n, dtype=np.int64)
    targets = []
    for ref in refs:
        if ref.index is None:
            targets.append(direct)
        else:
            ind = arrays[ref.index]
            if ind.size != n:
                raise ValueError(
                    f"indirection array {ref.index!r} has size {ind.size}, "
                    f"loop {loop.name!r} iterates {n}"
                )
            targets.append(np.asarray(ind.global_view(), dtype=np.int64))
    return targets


def _majority_owner(owners: np.ndarray) -> np.ndarray:
    """Per-row majority vote over an (n, k) owner matrix, ties -> lowest id.

    Equivalent to building the dense (n, n_procs) vote matrix and taking
    a row-wise argmax, but O(n * k^2) with k = references per iteration
    (a handful) instead of O(n * P) memory and scattered adds.  Each
    position's multiplicity comes from one broadcast k x k comparison
    (no per-row sort); among the positions attaining the row maximum the
    smallest owner id wins — the dense argmax's tie semantics.
    """
    n, k = owners.shape
    if k == 1:
        return owners[:, 0].copy()
    if k == 2:
        # both agree -> that owner; split vote -> argmax tie -> lowest id
        return np.minimum(owners[:, 0], owners[:, 1])
    # work on (k, n) contiguous rows: every op below is a 1-D pass
    cols = np.ascontiguousarray(owners.T)
    counts = np.ones((k, n), dtype=np.int64)
    for j in range(k):
        for l in range(j + 1, k):
            eq = cols[j] == cols[l]
            counts[j] += eq
            counts[l] += eq
    cmax = counts[0].copy()
    for j in range(1, k):
        np.maximum(cmax, counts[j], out=cmax)
    big = np.iinfo(np.int64).max
    winner = np.full(n, big, dtype=np.int64)
    for j in range(k):
        np.minimum(winner, np.where(counts[j] == cmax, cols[j], big), out=winner)
    return winner


def partition_iterations(
    machine: Machine,
    loop: ForallLoop,
    arrays: dict[str, DistArray],
    method: str = "almost_owner",
    costs: ChaosCosts = DEFAULT_COSTS,
) -> IterationPartition:
    """Partition ``loop``'s iterations among the machine's processors.

    ``method`` is ``"almost_owner"`` (paper default: majority vote over
    all the iteration's references, ties to the lowest processor) or
    ``"owner_computes"`` (home of the first statement's left-hand side).
    """
    n = loop.n_iterations
    n_procs = machine.n_procs
    if n == 0:
        empty = [np.empty(0, dtype=np.int64) for _ in range(n_procs)]
        return IterationPartition(0, empty, method)

    if method == "almost_owner":
        refs = loop.refs()
    elif method == "owner_computes":
        refs = [loop.statements[0].lhs]
    else:
        raise ValueError(
            f"unknown iteration partition method {method!r}; choose "
            "almost_owner | owner_computes"
        )

    targets = _ref_targets(loop, arrays, refs)
    # one stacked owner() call per distinct distribution instead of one
    # per reference: rows translating through the same distribution are
    # looked up together; the (k, n) layout keeps every row contiguous
    owners = np.empty((len(refs), n), dtype=np.int64)
    by_dist: dict[tuple, list[int]] = {}
    dists = {}
    for j, ref in enumerate(refs):
        dist = arrays[ref.array].distribution
        sig = dist.signature()
        by_dist.setdefault(sig, []).append(j)
        dists[sig] = dist
    for sig, rows in by_dist.items():
        stacked = np.stack([targets[j] for j in rows], axis=0)
        owners[rows] = np.asarray(dists[sig].owner(stacked), dtype=np.int64)
    home = _majority_owner(owners.T)  # ties -> lowest proc

    # group iterations by home processor with one stable sort instead of
    # one O(n) mask per processor
    order = np.argsort(home, kind="stable")
    counts = np.bincount(home, minlength=n_procs)
    bounds = np.concatenate(([0], np.cumsum(counts)))
    iters = [order[bounds[p] : bounds[p + 1]] for p in range(n_procs)]

    # cost: each processor examines its block of iterations -- one
    # translation probe + vote update per reference
    init = BlockDistribution(n, n_procs)
    per_proc_iter = init.local_sizes().astype(np.float64)
    machine.charge_compute_all(
        iops=per_proc_iter * len(refs) * (costs.hash_lookup + 2.0)
    )
    # ship iterations whose home differs from their initial block holder
    init_holder = np.asarray(init.owner(np.arange(n, dtype=np.int64)))
    moved = np.zeros((n_procs, n_procs), dtype=np.int64)
    np.add.at(moved, (init_holder, home), 1)
    np.fill_diagonal(moved, 0)
    move_p, move_q = np.nonzero(moved)
    machine.exchange(
        src=move_p,
        dst=move_q,
        nbytes=moved[move_p, move_q] * ITERATION_RECORD_BYTES,
    )
    machine.barrier()
    return IterationPartition(n, iters, method)
