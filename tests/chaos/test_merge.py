"""Tests for schedule merging (one message per processor pair)."""

import numpy as np
import pytest

from repro.chaos import GhostBuffers, build_translation_table, localize
from repro.chaos.merge import gather_merged, merged_message_count, scatter_op_merged
from repro.distribution import BlockDistribution, DistArray
from repro.machine import Machine


def setup(m, refs_a, refs_b, n=16):
    dist = BlockDistribution(n, m.n_procs)
    tt = build_translation_table(m, dist)
    loc_a = localize(m, tt, [np.asarray(r, dtype=np.int64) for r in refs_a])
    loc_b = localize(m, tt, [np.asarray(r, dtype=np.int64) for r in refs_b])
    arr_a = DistArray.from_global(m, dist, np.arange(float(n)), name="a")
    arr_b = DistArray.from_global(m, dist, np.arange(float(n)) * 10, name="b")
    gh_a = GhostBuffers(m, loc_a.schedule, dtype=arr_a.dtype)
    gh_b = GhostBuffers(m, loc_b.schedule, dtype=arr_b.dtype)
    return (loc_a, arr_a, gh_a), (loc_b, arr_b, gh_b)


class TestGatherMerged:
    def test_same_values_as_separate_gathers(self):
        m = Machine(4)
        refs_a = [[15], [0], [0], [0]]
        refs_b = [[14, 13], [0], [0], [0]]
        (la, aa, ga), (lb, ab, gb) = setup(m, refs_a, refs_b)
        gather_merged([(la.schedule, aa, ga), (lb.schedule, ab, gb)])
        assert ga.buf(0).tolist() == [15.0]
        assert sorted(gb.buf(0).tolist()) == [130.0, 140.0]

    def test_message_count_reduced(self):
        """Two patterns needing the same neighbour: merged pays one
        message where separate gathers pay two."""
        refs_a = [[15], [], [], []]
        refs_b = [[14], [], [], []]

        m_sep = Machine(4)
        (la, aa, ga), (lb, ab, gb) = setup(m_sep, refs_a, refs_b)
        base = sum(p.stats.messages_sent for p in m_sep.procs)
        la.schedule.gather(aa, ga.buffers)
        lb.schedule.gather(ab, gb.buffers)
        sep_msgs = sum(p.stats.messages_sent for p in m_sep.procs) - base

        m_mrg = Machine(4)
        (la, aa, ga), (lb, ab, gb) = setup(m_mrg, refs_a, refs_b)
        base = sum(p.stats.messages_sent for p in m_mrg.procs)
        gather_merged([(la.schedule, aa, ga), (lb.schedule, ab, gb)])
        mrg_msgs = sum(p.stats.messages_sent for p in m_mrg.procs) - base

        assert sep_msgs == 2 and mrg_msgs == 1

    def test_merged_is_faster_on_latency(self):
        refs_a = [[15], [], [], []]
        refs_b = [[14], [], [], []]
        m_sep = Machine(4)
        (la, aa, ga), (lb, ab, gb) = setup(m_sep, refs_a, refs_b)
        t0 = m_sep.elapsed()
        la.schedule.gather(aa, ga.buffers)
        lb.schedule.gather(ab, gb.buffers)
        t_sep = m_sep.elapsed() - t0

        m_mrg = Machine(4)
        (la, aa, ga), (lb, ab, gb) = setup(m_mrg, refs_a, refs_b)
        t0 = m_mrg.elapsed()
        gather_merged([(la.schedule, aa, ga), (lb.schedule, ab, gb)])
        assert m_mrg.elapsed() - t0 < t_sep

    def test_empty_items_rejected(self):
        with pytest.raises(ValueError, match="nothing to gather"):
            gather_merged([])

    def test_cross_machine_rejected(self):
        m1, m2 = Machine(4), Machine(4)
        (la, aa, ga), _ = setup(m1, [[15], [], [], []], [[14], [], [], []])
        (lb, ab, gb), _ = setup(m2, [[15], [], [], []], [[14], [], [], []])
        with pytest.raises(ValueError, match="different machines"):
            gather_merged([(la.schedule, aa, ga), (lb.schedule, ab, gb)])


class TestScatterOpMerged:
    def test_accumulates_like_separate(self):
        m = Machine(4)
        refs_a = [[15], [], [], []]
        refs_b = [[15], [], [], []]
        (la, aa, ga), (lb, ab, gb) = setup(m, refs_a, refs_b)
        aa.global_set(np.arange(16), np.zeros(16))
        ga.buf(0)[:] = 2.0
        gb.buf(0)[:] = 5.0
        scatter_op_merged(
            [
                (la.schedule, ga.buffers, aa, np.add),
                (lb.schedule, gb.buffers, aa, np.add),
            ]
        )
        assert aa.to_global()[15] == pytest.approx(7.0)

    def test_non_ufunc_rejected(self):
        m = Machine(4)
        (la, aa, ga), _ = setup(m, [[15], [], [], []], [[14], [], [], []])
        with pytest.raises(TypeError, match="ufunc"):
            scatter_op_merged([(la.schedule, ga.buffers, aa, sum)])


class TestMergedMessageCount:
    def test_counts(self):
        m = Machine(4)
        (la, aa, ga), (lb, ab, gb) = setup(
            m, [[15], [], [], []], [[14], [], [], []]
        )
        separate, merged = merged_message_count([la.schedule, lb.schedule])
        assert separate == 2 and merged == 1


class TestExecutorIntegration:
    def test_merged_executor_matches_unmerged(self):
        """merge_communication changes charges, never results."""
        from repro.core import ArrayRef, ForallLoop, Reduce, run_executor, run_inspector

        outs = {}
        for merge in (False, True):
            m = Machine(4)
            rng = np.random.default_rng(4)
            dist = BlockDistribution(20, 4)
            idist = BlockDistribution(30, 4)
            arrays = {
                "x": DistArray.from_global(m, dist, rng.normal(size=20), name="x"),
                "y": DistArray.from_global(m, dist, np.zeros(20), name="y"),
                "ia": DistArray.from_global(m, idist, rng.integers(0, 20, 30), name="ia"),
                "ib": DistArray.from_global(m, idist, rng.integers(0, 20, 30), name="ib"),
            }
            loop = ForallLoop(
                "L",
                30,
                [
                    Reduce("add", ArrayRef("y", "ia"), lambda a, b: a * b,
                           (ArrayRef("x", "ia"), ArrayRef("x", "ib")), flops=2),
                    Reduce("add", ArrayRef("y", "ib"), lambda a, b: a - b,
                           (ArrayRef("x", "ia"), ArrayRef("x", "ib")), flops=2),
                ],
            )
            # per-pattern schedules (coalescing off): message merging is
            # the optimization under test and needs something to merge
            product = run_inspector(m, loop, arrays, coalesce_patterns=False)
            run_executor(m, product, arrays, n_times=3, merge_communication=merge)
            outs[merge] = (arrays["y"].to_global(), m.elapsed())
        assert np.allclose(outs[False][0], outs[True][0])
        assert outs[True][1] <= outs[False][1]  # merging never slower
