"""Adaptive-mesh refinement scenario for the incremental inspector.

Adaptive CFD codes -- a core CHAOS use case -- change mesh connectivity
every few dozen time steps: a shock or vortex moves, the cells around it
are refined/coarsened, and the edge list is locally rewritten while the
rest of the mesh is untouched.  We model that as *local edge
re-targeting*: each adaptation epoch picks a refinement region (a ball
around a point that drifts across the domain), and every selected edge
inside it is reconnected to a geometrically nearby node -- the
connectivity change a local remeshing produces -- until a target
fraction of the mesh's edges has changed.  Node count, edge count, and
every array's distribution are untouched (sizes and DADs are fixed),
which is exactly the situation where the conservative Section 3 check
forces a full re-inspection and incremental patching shines.

:class:`RefinementSchedule` precomputes the per-epoch edge updates for a
mesh deterministically from a seed, so benchmark configurations
(full-re-inspect vs. reuse vs. incremental) replay identical adaptation
streams.  :func:`apply_adaptation` pushes one epoch's updates into an
``IrregularProgram`` through ``set_array_elements``, which records the
touched index ranges the diff kernel needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.mesh import UnstructuredMesh


@dataclass
class EdgeUpdate:
    """One adaptation epoch: new endpoint values for changed edges."""

    positions: np.ndarray  # edge indices rewritten this epoch (sorted)
    end1: np.ndarray  # new end_pt1 values at those positions
    end2: np.ndarray  # new end_pt2 values at those positions

    @property
    def n_changed(self) -> int:
        return int(self.positions.size)


def refine_edges(
    mesh: UnstructuredMesh,
    edges: np.ndarray,
    fraction: float,
    rng: np.random.Generator,
    center: np.ndarray | None = None,
) -> EdgeUpdate:
    """Re-target ``fraction`` of the edges inside a refinement region.

    Edges whose first endpoint lies nearest ``center`` are selected
    (growing the ball until the fraction is met -- a localized patch of
    the mesh, not a uniform sample) and their second endpoint is
    reconnected to a node spatially close to the first: the new local
    connectivity a refinement/retriangulation pass produces.  Returns
    the update; ``edges`` is not modified.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    n_edges = edges.shape[1]
    n_change = max(1, int(round(fraction * n_edges)))
    coords = mesh.coords  # (ndim, N)
    if center is None:
        center = coords[:, rng.integers(0, mesh.n_nodes)]
    # distance of each edge's first endpoint to the refinement center
    d = np.linalg.norm(coords[:, edges[0]] - center[:, None], axis=0)
    positions = np.sort(np.argpartition(d, n_change - 1)[:n_change])

    # reconnect each selected edge to a node near its first endpoint:
    # spatial ordering along a random direction gives cheap "nearby"
    # neighbours without a k-d tree
    direction = rng.normal(size=mesh.ndim)
    direction /= np.linalg.norm(direction) + 1e-12
    key = direction @ coords  # (N,) projection
    order = np.argsort(key, kind="stable")
    rank = np.empty(mesh.n_nodes, dtype=np.int64)
    rank[order] = np.arange(mesh.n_nodes)
    e1 = edges[0, positions]
    hop = rng.integers(1, 8, size=n_change) * rng.choice((-1, 1), size=n_change)
    new_rank = np.clip(rank[e1] + hop, 0, mesh.n_nodes - 1)
    new_e2 = order[new_rank]
    # self-loops would make a degenerate edge; nudge them one rank over
    self_loop = new_e2 == e1
    if self_loop.any():
        new_rank[self_loop] = np.where(
            new_rank[self_loop] + 1 < mesh.n_nodes,
            new_rank[self_loop] + 1,
            new_rank[self_loop] - 1,
        )
        new_e2 = order[new_rank]
    return EdgeUpdate(
        positions=positions.astype(np.int64),
        end1=e1.astype(np.int64),
        end2=new_e2.astype(np.int64),
    )


@dataclass
class RefinementSchedule:
    """Deterministic multi-epoch refinement stream for one mesh."""

    mesh: UnstructuredMesh
    fraction: float
    updates: list[EdgeUpdate]
    edges_per_epoch: list[np.ndarray]  # full edge array after each epoch

    @property
    def n_epochs(self) -> int:
        return len(self.updates)


def build_refinement_schedule(
    mesh: UnstructuredMesh,
    fraction: float,
    n_epochs: int,
    seed: int = 0,
) -> RefinementSchedule:
    """Precompute ``n_epochs`` refinement epochs at a change fraction.

    The refinement center performs a deterministic drift (new random
    center each epoch), modeling a feature moving through the domain.
    ``edges_per_epoch[e]`` is the full edge list after epoch ``e`` --
    what a from-scratch inspection at that point sees.
    """
    rng = np.random.default_rng(seed)
    edges = mesh.edges.copy()
    updates: list[EdgeUpdate] = []
    edges_per_epoch: list[np.ndarray] = []
    for _ in range(n_epochs):
        upd = refine_edges(mesh, edges, fraction, rng)
        edges = edges.copy()
        edges[0, upd.positions] = upd.end1
        edges[1, upd.positions] = upd.end2
        updates.append(upd)
        edges_per_epoch.append(edges)
    return RefinementSchedule(
        mesh=mesh, fraction=fraction, updates=updates, edges_per_epoch=edges_per_epoch
    )


def apply_adaptation(prog, update: EdgeUpdate) -> None:
    """Write one epoch's edge updates into a program's edge arrays.

    Uses ``set_array_elements`` so the modification registry records the
    touched ranges -- the region information incremental inspection
    diffs against.  Both endpoint arrays are written (end_pt1 values are
    unchanged by :func:`refine_edges`, but a real remesher rewrites the
    whole edge record; the diff kernel discovers the values are equal).
    """
    prog.set_array_elements("end_pt1", update.positions, update.end1)
    prog.set_array_elements("end_pt2", update.positions, update.end2)
