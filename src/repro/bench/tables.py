"""Paper-table assembly: Tables 1-4 and the Figure 2 phase breakdown.

Every function returns ``(rows, rendered_text)`` where ``rows`` is a
list of dicts (one per table row) and ``rendered_text`` is the
plain-text table the benches print next to the paper's numbers.
"""

from __future__ import annotations

from repro.bench.harness import (
    ExperimentResult,
    run_euler_experiment,
    run_md_experiment,
)
from repro.workloads import generate_mesh, scale_config
from repro.workloads.mesh import UnstructuredMesh


def _configs(scale) -> list[tuple[str, object, int]]:
    """The paper's 9 configurations: (label, workload spec, procs)."""
    small = generate_mesh(scale.mesh_small, seed=1)
    large = generate_mesh(scale.mesh_large, seed=2)
    out = []
    for procs in (4, 8, 16):
        out.append((f"{_klabel(scale.mesh_small)} mesh/{procs}", small, procs))
    for procs in (16, 32, 64):
        out.append((f"{_klabel(scale.mesh_large)} mesh/{procs}", large, procs))
    for procs in (4, 8, 16):
        out.append((f"{scale.md_atoms} atoms/{procs}", "md", procs))
    return out


def _klabel(n: int) -> str:
    return f"{n // 1000}K" if n >= 1000 else str(n)


def _run(spec, procs, scale, **kwargs) -> ExperimentResult:
    if isinstance(spec, UnstructuredMesh):
        return run_euler_experiment(
            spec, procs, iterations=scale.sweep_iterations, **kwargs
        )
    return run_md_experiment(
        n_atoms=scale.md_atoms,
        n_procs=procs,
        iterations=scale.sweep_iterations,
        **kwargs,
    )


# ---------------------------------------------------------------------------
# Table 1: schedule reuse vs no reuse
# ---------------------------------------------------------------------------
def table1_schedule_reuse(scale_name: str | None = None):
    """Loop time for 100 iterations with/without schedule reuse (Table 1).

    Times are inspector+executor simulated seconds (the loop itself;
    partitioning/remap are one-time setup outside this table), with
    arrays decomposed by recursive coordinate bisection as in the paper.
    """
    scale = scale_config(scale_name)
    rows = []
    for label, spec, procs in _configs(scale):
        entry = {"config": label}
        for reuse in (False, True):
            res = _run(
                spec, procs, scale, partitioner="RCB", path="compiler", reuse=reuse
            )
            loop_time = res.phase("inspector") + res.phase("executor")
            entry["no_reuse" if not reuse else "reuse"] = loop_time
        entry["speedup"] = (
            entry["no_reuse"] / entry["reuse"] if entry["reuse"] else float("inf")
        )
        rows.append(entry)
    text = render_table(
        f"Table 1: schedule reuse, {scale.sweep_iterations} iterations "
        f"(simulated seconds, scale={scale.name})",
        rows,
        [("config", "Config"), ("no_reuse", "No Reuse"), ("reuse", "Reuse"), ("speedup", "Speedup")],
    )
    return rows, text


# ---------------------------------------------------------------------------
# Table 2: mapper coupler cost breakdown at the large config
# ---------------------------------------------------------------------------
_TABLE2_COLUMNS = [
    ("RCB", "compiler", True, "RCB compiler+reuse"),
    ("RCB", "compiler", False, "RCB compiler no-reuse"),
    ("RCB", "hand", True, "RCB hand"),
    ("BLOCK", "hand", True, "BLOCK hand"),
    ("RSB", "hand", True, "RSB hand"),
    ("RSB", "compiler", True, "RSB compiler+reuse"),
]


def table2_mapper_coupler(scale_name: str | None = None, n_procs: int = 32):
    """Phase breakdown, large mesh / 32 processors (Table 2)."""
    scale = scale_config(scale_name)
    mesh = generate_mesh(scale.mesh_large, seed=2)
    rows = []
    for partitioner, path, reuse, label in _TABLE2_COLUMNS:
        res = run_euler_experiment(
            mesh,
            n_procs,
            partitioner=partitioner,
            path=path,
            reuse=reuse,
            iterations=scale.sweep_iterations,
        )
        rows.append(
            {
                "column": label,
                "graph_generation": res.phase("graph_generation"),
                "partition": res.phase("partition"),
                "remap": res.phase("remap"),
                "inspector": res.phase("inspector"),
                "executor": res.phase("executor"),
                "total": res.total,
            }
        )
    text = render_table(
        f"Table 2: mapper coupler, {_klabel(scale.mesh_large)} mesh / "
        f"{n_procs} procs (simulated seconds, scale={scale.name})",
        rows,
        [
            ("column", "Variant"),
            ("graph_generation", "GraphGen"),
            ("partition", "Partition"),
            ("remap", "Remap"),
            ("inspector", "Inspector"),
            ("executor", "Executor"),
            ("total", "Total"),
        ],
    )
    return rows, text


# ---------------------------------------------------------------------------
# Tables 3 and 4: per-config phase details
# ---------------------------------------------------------------------------
def _detail_table(scale_name: str | None, partitioner: str, title: str, with_partition: bool):
    scale = scale_config(scale_name)
    rows = []
    for label, spec, procs in _configs(scale):
        res = _run(
            spec, procs, scale, partitioner=partitioner, path="compiler", reuse=True
        )
        row = {"config": label}
        if with_partition:
            row["partition"] = res.phase("graph_generation") + res.phase("partition")
        row.update(
            {
                "inspector": res.phase("inspector"),
                "remap": res.phase("remap"),
                "executor": res.phase("executor"),
                "total": res.total,
            }
        )
        rows.append(row)
    cols = [("config", "Config")]
    if with_partition:
        cols.append(("partition", "Partitioner"))
    cols += [
        ("inspector", "Inspector"),
        ("remap", "Remap"),
        ("executor", "Executor"),
        ("total", "Total"),
    ]
    text = render_table(f"{title} (simulated seconds, scale={scale_config(scale_name).name})", rows, cols)
    return rows, text


def table3_rcb_detail(scale_name: str | None = None):
    """Compiler-linked coordinate bisection with schedule reuse (Table 3)."""
    return _detail_table(
        scale_name, "RCB", "Table 3: compiler-linked RCB with schedule reuse", True
    )


def table4_block(scale_name: str | None = None):
    """Naive BLOCK partitioning with schedule reuse (Table 4)."""
    return _detail_table(
        scale_name, "BLOCK", "Table 4: BLOCK partitioning with schedule reuse", False
    )


# ---------------------------------------------------------------------------
# Figure 2: the five-phase solution structure
# ---------------------------------------------------------------------------
def fig2_phase_breakdown(scale_name: str | None = None, n_procs: int = 32):
    """Phases A-E of Figure 2 timed on the large mesh (RSB pipeline)."""
    scale = scale_config(scale_name)
    mesh = generate_mesh(scale.mesh_large, seed=2)
    res = run_euler_experiment(
        mesh,
        n_procs,
        partitioner="RSB",
        path="compiler",
        reuse=True,
        iterations=scale.sweep_iterations,
    )
    rows = [
        {"phase": "A: GeoCoL generation + partition",
         "seconds": res.phase("graph_generation") + res.phase("partition")},
        {"phase": "B+C: iteration partition & remap", "seconds": res.phase("remap")},
        {"phase": "D: inspector (schedules, buffers)", "seconds": res.phase("inspector")},
        {"phase": f"E: executor ({scale.sweep_iterations} iterations)",
         "seconds": res.phase("executor")},
    ]
    text = render_table(
        f"Figure 2 phases: {_klabel(scale.mesh_large)} mesh / {n_procs} procs, "
        f"RSB (simulated seconds, scale={scale.name})",
        rows,
        [("phase", "Phase"), ("seconds", "Seconds")],
    )
    return rows, text


# ---------------------------------------------------------------------------
# bulk assembly (golden-table fixtures, --json output)
# ---------------------------------------------------------------------------
#: table name -> row-producing function, in paper order
TABLE_BUILDERS = {
    "table1": table1_schedule_reuse,
    "table2": table2_mapper_coupler,
    "table3": table3_rcb_detail,
    "table4": table4_block,
}


def all_tables_rows(scale_name: str | None = None) -> dict[str, list[dict]]:
    """Rows of Tables 1-4 keyed by table name, at one scale.

    This is the machine-readable form behind ``python -m repro.bench
    --json`` and the golden-table regression fixtures: exact floats, no
    rendering.  ``scale_name=None`` resolves ``REPRO_SCALE`` (so
    ``REPRO_SCALE=paper`` reproduces the SC'93 problem sizes).
    """
    return {name: build(scale_name)[0] for name, build in TABLE_BUILDERS.items()}


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------
def render_table(title: str, rows: list[dict], columns: list[tuple[str, str]]) -> str:
    """Fixed-width text table; floats get 3 significant decimals."""

    def fmt(v) -> str:
        if isinstance(v, float):
            return f"{v:.3f}" if v < 1000 else f"{v:.1f}"
        return str(v)

    table = [[fmt(r.get(key, "")) for key, _ in columns] for r in rows]
    headers = [h for _, h in columns]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in table)) if table else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [title]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in table:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
