"""Distributed arrays: per-processor local segments bound to a distribution.

A ``DistArray`` owns one NumPy array per virtual processor.  The runtime
(CHAOS layer) moves data between segments through communication schedules
and charges the machine for it; the convenience accessors here
(``to_global`` / ``from_global`` / ``global_get``) exist for construction,
verification and tests, and deliberately charge *nothing*.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

import numpy as np

from repro.distribution.base import Distribution
from repro.machine.machine import Machine

if TYPE_CHECKING:  # pragma: no cover
    from repro.distribution.decomposition import Decomposition

_uid_counter = itertools.count(1)


class DistArray:
    """A 1-D distributed array on a simulated machine."""

    def __init__(
        self,
        machine: Machine,
        distribution: Distribution,
        dtype=np.float64,
        name: str | None = None,
        fill=0,
    ):
        if distribution.n_procs != machine.n_procs:
            raise ValueError(
                f"distribution spans {distribution.n_procs} processors, machine "
                f"has {machine.n_procs}"
            )
        self.machine = machine
        self.distribution = distribution
        self.dtype = np.dtype(dtype)
        self.uid = next(_uid_counter)
        self.name = name if name is not None else f"arr{self.uid}"
        self.decomposition: "Decomposition | None" = None
        self._local = [
            np.full(distribution.local_size(p), fill, dtype=self.dtype)
            for p in range(machine.n_procs)
        ]

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_global(
        cls,
        machine: Machine,
        distribution: Distribution,
        values,
        name: str | None = None,
    ) -> "DistArray":
        """Scatter a global NumPy array into local segments (no cost charged)."""
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError(f"expected a 1-D array, got shape {values.shape}")
        if values.size != distribution.size:
            raise ValueError(
                f"value count {values.size} != distribution size {distribution.size}"
            )
        arr = cls(machine, distribution, dtype=values.dtype, name=name)
        for p in range(machine.n_procs):
            arr._local[p][:] = values[distribution.local_indices(p)]
        return arr

    # -- basic properties -------------------------------------------------------
    @property
    def size(self) -> int:
        return self.distribution.size

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize

    def local(self, p: int) -> np.ndarray:
        """The local segment of processor ``p`` (a live view, not a copy)."""
        if not 0 <= p < self.machine.n_procs:
            raise ValueError(
                f"processor id {p} out of range [0, {self.machine.n_procs})"
            )
        return self._local[p]

    # -- global views (test/verification helpers; charge nothing) -------------
    def to_global(self) -> np.ndarray:
        """Assemble the global array from local segments."""
        out = np.empty(self.size, dtype=self.dtype)
        for p in range(self.machine.n_procs):
            out[self.distribution.local_indices(p)] = self._local[p]
        return out

    def global_get(self, gidx) -> np.ndarray:
        """Read values at global indices, regardless of owner."""
        g = np.asarray(gidx, dtype=np.int64)
        owners = np.asarray(self.distribution.owner(g))
        lidx = np.asarray(self.distribution.local_index(g))
        out = np.empty(g.shape, dtype=self.dtype)
        flat_o, flat_l = owners.ravel(), lidx.ravel()
        flat_out = out.ravel()
        for p in np.unique(flat_o):
            sel = flat_o == p
            flat_out[sel] = self._local[int(p)][flat_l[sel]]
        return out

    def global_set(self, gidx, values) -> None:
        """Write values at global indices, regardless of owner."""
        g = np.asarray(gidx, dtype=np.int64)
        vals = np.broadcast_to(np.asarray(values, dtype=self.dtype), g.shape)
        owners = np.asarray(self.distribution.owner(g))
        lidx = np.asarray(self.distribution.local_index(g))
        for p in np.unique(owners):
            sel = owners == p
            self._local[int(p)][lidx[sel]] = vals[sel]

    # -- rebinding (used by CHAOS remap) ---------------------------------------
    def rebind(self, distribution: Distribution, new_locals: list[np.ndarray]) -> None:
        """Replace distribution and local segments after a remap.

        Callers (``repro.chaos.remap``) are responsible for having moved
        the data and charged the machine; this only swaps the bindings,
        validating shapes.
        """
        if distribution.size != self.size:
            raise ValueError(
                f"remap changed array size: {self.size} -> {distribution.size}"
            )
        if distribution.n_procs != self.machine.n_procs:
            raise ValueError("remap distribution spans a different machine size")
        if len(new_locals) != self.machine.n_procs:
            raise ValueError(
                f"expected {self.machine.n_procs} local segments, got {len(new_locals)}"
            )
        for p, seg in enumerate(new_locals):
            want = distribution.local_size(p)
            if seg.shape != (want,):
                raise ValueError(
                    f"segment for processor {p} has shape {seg.shape}, "
                    f"expected ({want},)"
                )
        self.distribution = distribution
        self._local = [np.ascontiguousarray(seg, dtype=self.dtype) for seg in new_locals]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DistArray({self.name!r}, size={self.size}, dtype={self.dtype}, "
            f"{self.distribution.kind})"
        )
