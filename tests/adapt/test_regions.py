"""Tests for dirty-range kernels and the region-aware registry."""

import numpy as np
import pytest

from repro.adapt.diff import changed_positions, expand_ranges, ranges_from_positions
from repro.core.dad import DAD
from repro.core.timestamps import (
    ModificationRegistry,
    merge_ranges,
    normalize_ranges,
)
from repro.distribution import BlockDistribution, DistArray
from repro.machine import Machine


def dad(size=100, n=4, m=None):
    arr = DistArray(m or Machine(n), BlockDistribution(size, n))
    return DAD.of(arr)


class TestRangeKernels:
    def test_merge_overlapping_and_adjacent(self):
        out = merge_ranges(np.array([[5, 10], [0, 3], [9, 12], [3, 4]]))
        assert out.tolist() == [[0, 4], [5, 12]]

    def test_merge_empty_and_degenerate(self):
        assert merge_ranges(np.empty((0, 2), dtype=np.int64)).shape == (0, 2)
        # zero-length ranges vanish
        assert merge_ranges(np.array([[4, 4], [7, 9]])).tolist() == [[7, 9]]

    def test_normalize_rejects_bad_ranges(self):
        with pytest.raises(ValueError, match="lo <= hi"):
            normalize_ranges(np.array([[5, 3]]))
        with pytest.raises(ValueError, match="exceeds"):
            normalize_ranges(np.array([[0, 11]]), size=10)
        with pytest.raises(ValueError, match="shape"):
            normalize_ranges(np.array([1, 2, 3]))

    def test_expand_ranges(self):
        out = expand_ranges(np.array([[2, 5], [9, 11], [3, 6]]))
        assert out.tolist() == [2, 3, 4, 5, 9, 10]

    def test_ranges_from_positions_roundtrip(self):
        rng = np.random.default_rng(0)
        pos = np.unique(rng.integers(0, 500, 120))
        ranges = ranges_from_positions(pos)
        assert np.array_equal(expand_ranges(ranges), pos)
        # consecutive runs collapse
        assert ranges_from_positions(np.array([4, 5, 6, 9])).tolist() == [[4, 7], [9, 10]]
        assert ranges_from_positions(np.array([], dtype=np.int64)).shape == (0, 2)

    def test_changed_positions_only_within_ranges(self):
        snap = np.arange(20)
        cur = snap.copy()
        cur[[3, 8, 15]] = -1
        # position 15 is dirty-but-uncovered: the caller's ranges bound it
        out = changed_positions(snap, cur, np.array([[0, 10]]))
        assert out.tolist() == [3, 8]

    def test_changed_positions_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            changed_positions(np.arange(3), np.arange(4), np.array([[0, 2]]))


class TestRegistryRegions:
    def test_dirty_ranges_since_stamp(self):
        reg = ModificationRegistry()
        d = dad()
        reg.record_block_write([d], regions=[np.array([[0, 10]])])
        s1 = reg.nmod
        reg.record_block_write([d], regions=[np.array([[50, 60]])])
        assert reg.dirty_ranges(d, since=0).tolist() == [[0, 10], [50, 60]]
        assert reg.dirty_ranges(d, since=s1).tolist() == [[50, 60]]
        assert reg.dirty_ranges(d, since=reg.nmod).shape == (0, 2)

    def test_regionless_write_means_unknown(self):
        reg = ModificationRegistry()
        d = dad()
        reg.record_block_write([d], regions=[np.array([[0, 5]])])
        reg.record_block_write([d])  # the paper's way: no region info
        assert reg.dirty_ranges(d, since=0) is None
        # but a query window past the unknown write is precise again
        s = reg.nmod
        reg.record_block_write([d], regions=[np.array([[7, 9]])])
        assert reg.dirty_ranges(d, since=s).tolist() == [[7, 9]]

    def test_remap_voids_region_info(self):
        reg = ModificationRegistry()
        d = dad()
        reg.record_remap(d)
        assert reg.dirty_ranges(d, since=0) is None

    def test_regions_alignment_enforced(self):
        reg = ModificationRegistry()
        with pytest.raises(ValueError, match="region entries"):
            reg.record_block_write([dad()], regions=[])

    def test_event_log_coalescing_stays_conservative(self):
        """Past the event cap, old events merge: queries inside the
        coalesced window may widen but never miss a range."""
        reg = ModificationRegistry()
        d = dad(size=1000)
        for i in range(100):
            reg.record_block_write([d], regions=[np.array([[i * 10, i * 10 + 3]])])
        # query from the very beginning still covers every write
        full = reg.dirty_ranges(d, since=0)
        got = expand_ranges(full)
        want = np.concatenate([np.arange(i * 10, i * 10 + 3) for i in range(100)])
        assert set(want.tolist()) <= set(got.tolist())
        # recent window is exact (recent events are kept uncoalesced)
        s = reg.nmod - 2
        assert reg.dirty_ranges(d, since=s).tolist() == [[980, 983], [990, 993]]

    def test_coalescing_never_drops_post_since_writes(self):
        """Regression: a `since` *inside* a later-coalesced window must
        still see every write after it.  (The merged event must carry
        the newest stamp of the folded half, not the oldest.)"""
        reg = ModificationRegistry()
        d = dad(size=2000)
        reg.record_block_write([d], regions=[np.array([[0, 1]])])
        since = reg.nmod  # a record taken here...
        for i in range(120):  # ...followed by enough writes to coalesce
            reg.record_block_write(
                [d], regions=[np.array([[i * 10 + 5, i * 10 + 7]])]
            )
        got = set(expand_ranges(reg.dirty_ranges(d, since=since)).tolist())
        want = {
            p for i in range(120) for p in range(i * 10 + 5, i * 10 + 7)
        }
        assert want <= got
        # and the pre-since write may not leak *requirements*: it is
        # allowed to appear (conservative) but everything after must
        missing = want - got
        assert not missing


class TestRegistryEdges:
    """Satellite coverage: ordering and never-seen-DAD edge cases."""

    def test_last_mod_of_never_seen_dad_is_zero(self):
        reg = ModificationRegistry()
        assert reg.last_mod(dad(size=77)) == 0
        reg.record_block_write([dad(size=10)])
        assert reg.last_mod(dad(size=77)) == 0  # still never stamped

    def test_remap_then_write_ordering(self):
        """A remap followed by a write stamps the *new* DAD twice and
        leaves the old DAD's stamp frozen at its pre-remap value."""
        m = Machine(4)
        from repro.distribution import IrregularDistribution

        arr = DistArray(m, BlockDistribution(8, 4), name="a")
        reg = ModificationRegistry()
        old_dad = DAD.of(arr)
        reg.record_block_write([old_dad])  # nmod 1
        new = IrregularDistribution([0, 1, 2, 3] * 2, 4)
        arr.rebind(new, [np.zeros(new.local_size(p)) for p in range(4)])
        new_dad = DAD.of(arr)
        reg.record_remap(new_dad)  # nmod 2
        reg.record_block_write([new_dad])  # nmod 3
        assert reg.last_mod(old_dad) == 1
        assert reg.last_mod(new_dad) == 3
        assert reg.nmod == 3

    def test_write_then_remap_back_does_not_revive_stamp(self):
        """Remapping back to an identical distribution yields the same
        DAD signature, so its stamp reflects the latest event -- the
        reuse check correctly refuses a record taken before the cycle."""
        reg = ModificationRegistry()
        d = dad(size=30)
        reg.record_block_write([d])
        saved = reg.last_mod(d)
        reg.record_remap(d)  # away-and-back ends at the same signature
        assert reg.last_mod(d) == reg.nmod != saved
