"""Persistent cross-execution translation cache (layout + invalidation contract).

PonnusamySC93's whole premise is that irregular patterns *repeat*: the
paper's runtime amortizes inspector cost across time steps by saving
schedules.  This module applies the same idea to the simulator's own
wall clock.  A :class:`TranslationCache` remembers, across executions of
the inspector, the full translation product of every access pattern --
dereferenced owners/offsets, the dedup inverse baked into localized
reference lists, per-processor ghost group bounds, and the communication
schedule -- so re-inspecting an *unchanged* pattern skips
``dereference_flat``, ``sorted_unique_inverse`` and the vote/group
kernels entirely.  The simulated machine still sees every charge: the
cold run records its exact charging sequence in a :class:`ChargeLog`,
and a warm hit replays that sequence verbatim.  Charges are pure
functions of reference *content*, and equal cache keys guarantee equal
content, so warm numbers are bit-identical to cold ones -- the
``check_regression.py`` / golden-table contract holds with the cache on
or off.

Layout
------
The cache is a flat dict of **slots**.  A slot names the *structural*
identity of one cached product and holds at most one entry::

    ("localize", loop, (index, ...), ttable kind, costs, P)  -> (version, LocalizeEntry)
    ("partition", loop, n, P, method, ((array, index), ...)) -> (version, PartitionEntry)

The **version** is the volatile part of the key, built from the
:mod:`repro.core.cachekey` vocabulary: distribution signatures (remaps
change them -- DAD conditions 1/2) and ``(uid, version)`` content keys
of every indirection array feeding the product (mutations bump them --
DAD condition 3).  Localize slots deliberately exclude the *data* array
identity: ``x(edge(i))`` and ``y(edge(i))`` over identically-distributed
``x``/``y`` produce bit-identical translation products, so they share
one entry (the common case -- one hit per sibling array even within a
single cold inspection).

Invalidation contract
---------------------
There is no explicit invalidation.  A stored entry is served only when
the full version key matches; every mutation path changes some component
of it:

* ``set_array_elements`` / any segment-view write bumps the array's
  content version (PR 3 write barriers);
* executor scatters write through the same barriers (data arrays are
  not keyed, so writes to *data* arrays correctly do not invalidate);
* ``redistribute`` rebinds the array's backing (version bump) *and*
  changes the distribution signature;
* incremental patches rewrite indirection values through the tracked
  write paths before patching, so the next full inspection of that
  pattern misses and recomputes.

A new version *replaces* the slot's entry, so memory is bounded by the
number of structurally distinct patterns, not by program history.
Cached arrays are frozen (``writeable=False``) and shared by every hit;
schedules are shared through :meth:`~repro.chaos.schedule.CommSchedule.
twin` clones so each product keeps the distinct schedule identity the
executor's coalescing and ``product_groups`` key on.

The cache object is bound to one program/machine pair: entries hold the
machine-bound schedule built at cold time and replay charges against the
machine the cold run charged.  Do not share one cache across machines.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ChargeLog",
    "KeyTranslationMemo",
    "LocalizeEntry",
    "PartitionEntry",
    "TranslationCache",
]


def _freeze(arr: np.ndarray) -> np.ndarray:
    """Mark a cached array read-only (hits share it; writers must copy)."""
    if arr.flags.writeable and arr.base is None:
        arr.flags.writeable = False
    return arr


class ChargeLog:
    """Recording charge sink: forwards to the machine and keeps the tape.

    Cold cache fills route every simulated charge through one of these
    instead of the machine directly; the sink forwards immediately (the
    cold run charges exactly what an uncached run would) and records the
    call.  A later :meth:`replay` re-issues the identical sequence --
    same methods, same argument arrays, same order -- which is what
    makes warm hits bit-identical on the simulated side.
    """

    __slots__ = ("machine", "calls")

    def __init__(self, machine):
        self.machine = machine
        self.calls: list[tuple[str, tuple, dict]] = []

    @property
    def n_procs(self) -> int:
        return self.machine.n_procs

    def charge_compute(self, p, **kw):
        self.calls.append(("charge_compute", (p,), kw))
        return self.machine.charge_compute(p, **kw)

    def charge_compute_all(self, **kw):
        self.calls.append(("charge_compute_all", (), kw))
        return self.machine.charge_compute_all(**kw)

    def exchange(self, **kw):
        self.calls.append(("exchange", (), kw))
        return self.machine.exchange(**kw)

    def barrier(self):
        self.calls.append(("barrier", (), {}))
        return self.machine.barrier()

    def replay(self, machine) -> None:
        """Re-issue the recorded charging sequence against ``machine``."""
        for name, args, kw in self.calls:
            getattr(machine, name)(*args, **kw)


class LocalizeEntry:
    """One cached localize product: frozen flat arrays + charge tape.

    ``schedule`` is the cold run's :class:`CommSchedule`; hits hand out
    ``schedule.twin()`` so every product has its own schedule identity
    over the same immutable flat arrays.
    """

    __slots__ = (
        "charges",
        "schedule",
        "local_sizes",
        "refs_flat",
        "ref_bounds",
        "ghost_flat",
        "ghost_bounds",
    )

    def __init__(
        self,
        charges: ChargeLog,
        schedule,
        local_sizes: list[int],
        refs_flat: np.ndarray,
        ref_bounds: np.ndarray,
        ghost_flat: np.ndarray,
        ghost_bounds: np.ndarray,
    ):
        self.charges = charges
        self.schedule = schedule
        self.local_sizes = local_sizes
        self.refs_flat = _freeze(refs_flat)
        self.ref_bounds = _freeze(ref_bounds)
        self.ghost_flat = _freeze(ghost_flat)
        self.ghost_bounds = _freeze(ghost_bounds)


class PartitionEntry:
    """One cached iteration partition: frozen CSR arrays + charge tape."""

    __slots__ = ("charges", "flat", "bounds")

    def __init__(self, charges: ChargeLog, flat: np.ndarray, bounds: np.ndarray):
        self.charges = charges
        self.flat = _freeze(flat)
        self.bounds = _freeze(bounds)


class TranslationCache:
    """Slot -> (version, entry) store with hit/miss accounting.

    See the module docstring for the layout and invalidation contract.
    ``get``/``put`` take the slot (structural key) and version (volatile
    key) separately; a put under a new version replaces the slot's
    previous entry, bounding memory by the number of distinct slots.
    """

    def __init__(self):
        self._slots: dict[tuple, tuple[tuple, object]] = {}
        self.hits = 0
        self.misses = 0
        #: entries replaced under a new version (the implicit
        #: invalidation path: same slot, changed content/distribution)
        self.invalidations = 0
        #: per-kind counters, keyed by slot[0] ("localize" / "partition")
        self.kind_hits: dict[str, int] = {}
        self.kind_misses: dict[str, int] = {}
        self.kind_invalidations: dict[str, int] = {}

    def get(self, slot: tuple, version: tuple):
        """The entry stored for ``slot`` iff its version matches, else None."""
        held = self._slots.get(slot)
        if held is not None and held[0] == version:
            self.hits += 1
            self.kind_hits[slot[0]] = self.kind_hits.get(slot[0], 0) + 1
            return held[1]
        self.misses += 1
        self.kind_misses[slot[0]] = self.kind_misses.get(slot[0], 0) + 1
        return None

    def put(self, slot: tuple, version: tuple, entry) -> None:
        held = self._slots.get(slot)
        if held is not None and held[0] != version:
            self.invalidations += 1
            self.kind_invalidations[slot[0]] = (
                self.kind_invalidations.get(slot[0], 0) + 1
            )
        self._slots[slot] = (version, entry)

    def __len__(self) -> int:
        return len(self._slots)

    def clear(self) -> None:
        self._slots.clear()

    def stats(self) -> dict:
        """Counters for bench reports (wall-side only, never simulated).

        ``invalidations`` counts entries replaced under a changed
        version key -- the cache's implicit invalidation path.
        ``by_kind`` breaks hits/misses/invalidations/entries down per
        slot kind (``"localize"`` / ``"partition"``).
        """
        kind_entries: dict[str, int] = {}
        for slot in self._slots:
            kind_entries[slot[0]] = kind_entries.get(slot[0], 0) + 1
        kinds = sorted(
            set(self.kind_hits)
            | set(self.kind_misses)
            | set(self.kind_invalidations)
            | set(kind_entries)
        )
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "entries": len(self._slots),
            "by_kind": {
                kind: {
                    "hits": self.kind_hits.get(kind, 0),
                    "misses": self.kind_misses.get(kind, 0),
                    "invalidations": self.kind_invalidations.get(kind, 0),
                    "entries": kind_entries.get(kind, 0),
                }
                for kind in kinds
            },
        }

    def patch_view(self) -> "KeyTranslationMemo":
        """A fresh per-patch translation memo (thin view over this cache).

        The memo below implements the shared sorted-composite-key logic;
        the view is *per patch by contract*: the paper's patch model
        charges each group a local cache probe only for keys some
        earlier group of the *same patch* resolved, so hits must never
        persist across patches (that would change simulated numbers).
        Each call therefore returns an empty memo; what persists in this
        cache is the localize-product layer above it.
        """
        return KeyTranslationMemo()


class KeyTranslationMemo:
    """Sorted-key dereference memo shared by one patch's pattern groups.

    Patterns of one loop overwhelmingly reference the same elements
    (``x(edge(i))`` and ``y(edge(i))`` share every target), so their
    unknown-delta translations are near-identical.  Within one patch the
    distributions are frozen, so a translation resolved for one group
    can be served to the next from a local memo: each processor pays a
    hash probe instead of a remote page request.  Keyed by distribution
    signature; one sorted composite-key array per signature.

    Charging scope: one memo per patch (see
    :meth:`TranslationCache.patch_view`).  The probe charge is paid only
    when the memo already holds entries for the signature -- replayed
    identically by the twin-group fast path in ``repro.adapt.patch``.
    """

    def __init__(self) -> None:
        self._by_sig: dict[tuple, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

    def has_entries(self, sig: tuple) -> bool:
        """Whether a probe against ``sig`` would hit a non-empty memo."""
        cached = self._by_sig.get(sig)
        return cached is not None and bool(cached[0].size)

    def translate(
        self,
        machine,
        ttable,
        stride: int,
        uniq_proc: np.ndarray,
        uniq_key: np.ndarray,
        costs,
    ) -> tuple[np.ndarray, np.ndarray]:
        """(owner, lidx) for per-proc-sorted unique (proc, key) pairs."""
        n = machine.n_procs
        sig = ttable.dist.signature()
        owner = np.empty(uniq_key.size, dtype=np.int64)
        lidx = np.empty(uniq_key.size, dtype=np.int64)
        comp = uniq_proc * stride + uniq_key
        cached = self._by_sig.get(sig)
        if cached is not None and cached[0].size:
            ccomp, cowner, clidx = cached
            pos = np.searchsorted(ccomp, comp)
            hit = (pos < ccomp.size) & (
                ccomp[np.minimum(pos, ccomp.size - 1)] == comp
            )
            # every processor probes its memo once per key
            machine.charge_compute_all(
                iops=costs.hash_lookup
                * np.bincount(uniq_proc, minlength=n).astype(np.float64)
            )
        else:
            hit = np.zeros(comp.size, dtype=bool)
        if hit.any():
            cpos = pos[hit]
            owner[hit] = cowner[cpos]
            lidx[hit] = clidx[cpos]
        miss = ~hit
        miss_key = uniq_key[miss]
        miss_proc = uniq_proc[miss]
        m_bounds = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(miss_proc, minlength=n), out=m_bounds[1:])
        mowner, mlidx = ttable.dereference_flat(miss_key, m_bounds)
        owner[miss] = mowner
        lidx[miss] = mlidx
        if miss.any():
            mcomp = comp[miss]
            if cached is None or not cached[0].size:
                merged = (mcomp, mowner, mlidx)
            else:
                allc = np.concatenate([cached[0], mcomp])
                order = np.argsort(allc, kind="stable")
                merged = (
                    allc[order],
                    np.concatenate([cached[1], mowner])[order],
                    np.concatenate([cached[2], mlidx])[order],
                )
            self._by_sig[sig] = merged
        return owner, lidx
