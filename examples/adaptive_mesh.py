#!/usr/bin/env python
"""Adaptive mesh: schedule reuse between adaptations, re-inspection at them.

Adaptive CFD codes — a core CHAOS use case — change mesh connectivity
every few dozen timesteps.  Between adaptations the edge list is fixed
and inspector results are reused; at each adaptation the edge arrays are
rewritten, the conservative runtime record notices, and the next sweep
re-inspects automatically.  This example runs 5 adaptation epochs of 20
sweeps each and shows the inspector ran exactly 5 times, then compares
against the cost of never reusing.

    python examples/adaptive_mesh.py
"""

import numpy as np

from repro.machine import Machine
from repro.workloads import generate_mesh
from repro.workloads.euler import (
    euler_edge_loop,
    euler_sequential_reference,
    setup_euler_program,
)


def adapt_edges(edges, n_nodes, rng, fraction=0.05):
    """Re-target a fraction of edges (simulating local refinement)."""
    new = edges.copy()
    m = edges.shape[1]
    pick = rng.choice(m, size=max(1, int(fraction * m)), replace=False)
    new[1, pick] = (new[0, pick] + 1 + rng.integers(0, n_nodes - 1, pick.size)) % n_nodes
    return new


def main(epochs=5, sweeps_per_epoch=20):
    mesh = generate_mesh(1200, seed=21)
    rng = np.random.default_rng(0)
    machine = Machine(8)
    prog = setup_euler_program(machine, mesh, seed=21)
    prog.construct("G", mesh.n_nodes, geometry=["xc", "yc", "zc"])
    prog.set_distribution("fmt", "G", "RCB")
    prog.redistribute("reg", "fmt")
    loop = euler_edge_loop(mesh)
    x = prog.arrays["x"].to_global()

    edges = mesh.edges.copy()
    want = np.zeros(mesh.n_nodes)
    for epoch in range(epochs):
        if epoch > 0:
            edges = adapt_edges(edges, mesh.n_nodes, rng)
            prog.set_array("end_pt1", edges[0])
            prog.set_array("end_pt2", edges[1])
        prog.forall(loop, n_times=sweeps_per_epoch)
        want = euler_sequential_reference(x, edges, n_times=sweeps_per_epoch, y0=want)
        print(
            f"epoch {epoch}: inspector runs so far = {prog.inspector_runs}, "
            f"reuse hits = {prog.reuse_hits}"
        )

    assert np.allclose(prog.arrays["y"].to_global(), want)
    assert prog.inspector_runs == epochs
    print(
        f"\nverified: one inspection per adaptation epoch "
        f"({prog.inspector_runs} total), "
        f"{prog.reuse_hits} sweeps reused schedules"
    )
    t_adaptive = machine.elapsed()

    # the strawman: never reuse
    m2 = Machine(8)
    prog2 = setup_euler_program(m2, mesh, seed=21)
    prog2.construct("G", mesh.n_nodes, geometry=["xc", "yc", "zc"])
    prog2.set_distribution("fmt", "G", "RCB")
    prog2.redistribute("reg", "fmt")
    prog2.forall(loop, n_times=epochs * sweeps_per_epoch, reuse=False)
    print(
        f"\nsimulated time with adaptive reuse: {t_adaptive:.2f}s; "
        f"re-inspecting every sweep would cost {m2.elapsed():.2f}s "
        f"({m2.elapsed() / t_adaptive:.1f}x)"
    )


if __name__ == "__main__":
    main()
