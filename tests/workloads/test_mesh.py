"""Tests for the unstructured mesh generator."""

import os

import numpy as np
import pytest

from repro.workloads import edges_from_simplices, generate_mesh
from repro.workloads.mesh import UnstructuredMesh


class TestEdgesFromSimplices:
    def test_single_triangle(self):
        edges = edges_from_simplices(np.array([[0, 1, 2]]))
        assert edges.shape == (2, 3)
        assert set(map(tuple, edges.T)) == {(0, 1), (0, 2), (1, 2)}

    def test_shared_edges_deduplicated(self):
        edges = edges_from_simplices(np.array([[0, 1, 2], [1, 2, 3]]))
        assert edges.shape[1] == 5  # not 6: (1,2) shared

    def test_tetrahedron(self):
        edges = edges_from_simplices(np.array([[0, 1, 2, 3]]))
        assert edges.shape[1] == 6


class TestGenerateMesh:
    def test_basic_properties(self):
        mesh = generate_mesh(200, seed=1)
        assert mesh.n_nodes == 200
        assert mesh.ndim == 3
        assert mesh.edges.min() >= 0 and mesh.edges.max() < 200
        # Delaunay tet meshes have ~6-8 edges per node
        assert 3 * 200 < mesh.n_edges < 10 * 200

    def test_edges_unique_and_ordered(self):
        mesh = generate_mesh(150, seed=2)
        assert np.all(mesh.edges[0] < mesh.edges[1])
        pairs = set(map(tuple, mesh.edges.T))
        assert len(pairs) == mesh.n_edges

    def test_deterministic(self):
        a = generate_mesh(100, seed=5)
        b = generate_mesh(100, seed=5)
        assert np.array_equal(a.edges, b.edges)
        assert np.array_equal(a.coords, b.coords)

    def test_2d_mesh(self):
        mesh = generate_mesh(100, ndim=2, seed=0)
        assert mesh.ndim == 2
        assert mesh.n_edges > mesh.n_nodes  # planar triangulation

    def test_too_few_nodes(self):
        with pytest.raises(ValueError, match="at least"):
            generate_mesh(3)

    def test_bad_ndim(self):
        with pytest.raises(ValueError, match="2-D and 3-D"):
            generate_mesh(100, ndim=4)

    def test_renumbering_destroys_block_locality(self):
        """The property Table 4 depends on: after random renumbering,
        consecutive node ids are NOT spatially close, so block
        distributions cut many edges."""
        shuffled = generate_mesh(500, seed=3, renumber=True)
        # locality baseline: renumber nodes by spatial bins (snake order)
        x, y, z = shuffled.coords
        order = np.lexsort((z, np.floor(y * 8), np.floor(x * 8)))
        perm = np.empty(500, dtype=np.int64)
        perm[order] = np.arange(500)  # new label of old node
        sorted_mesh = UnstructuredMesh(
            coords=shuffled.coords[:, order],
            edges=np.sort(perm[shuffled.edges], axis=0),
        )

        def block_cut(mesh, parts=8):
            chunk = -(-mesh.n_nodes // parts)
            owners = np.arange(mesh.n_nodes) // chunk
            return int((owners[mesh.edges[0]] != owners[mesh.edges[1]]).sum())

        assert sorted_mesh.n_edges == shuffled.n_edges
        # shuffled numbering cuts nearly every edge (BLOCK ~ RANDOM)...
        assert block_cut(shuffled) > 0.7 * shuffled.n_edges
        # ...and clearly more than a spatially ordered numbering would
        assert block_cut(shuffled) > 1.4 * block_cut(sorted_mesh)

    def test_renumbering_preserves_geometry_topology(self):
        mesh = generate_mesh(120, seed=4, renumber=False)
        rng = np.random.default_rng(0)
        renamed = mesh.renumbered(rng)
        # degree multiset is invariant under renumbering
        assert sorted(mesh.degree().tolist()) == sorted(renamed.degree().tolist())
        # edge lengths are invariant too
        def lengths(m):
            d = m.coords[:, m.edges[0]] - m.coords[:, m.edges[1]]
            return np.sort(np.linalg.norm(d, axis=0))
        assert np.allclose(lengths(mesh), lengths(renamed))

    def test_graded_mesh_has_density_contrast(self):
        mesh = generate_mesh(1000, seed=7, graded=True)
        center = np.linalg.norm(mesh.coords - 0.5, axis=0)
        near = (center < 0.3).sum()
        # far more than the uniform share (~11% of unit cube volume)
        assert near > 0.3 * mesh.n_nodes


class TestDiskCacheSelfHealing:
    """A damaged on-disk mesh entry is quarantined and regenerated."""

    def fill(self, tmp_path):
        from repro.workloads.mesh import _disk_cache_path, clear_mesh_cache

        cache_dir = str(tmp_path)
        ref = generate_mesh(100, seed=6, cache_dir=cache_dir)
        path = _disk_cache_path(
            cache_dir, (100, 3, 6, True, True)
        )
        assert os.path.exists(path)
        clear_mesh_cache()  # force the next lookup through the disk
        return cache_dir, path, ref

    def reload(self, cache_dir):
        return generate_mesh(100, seed=6, cache_dir=cache_dir)

    def assert_healed(self, cache_dir, path, ref):
        mesh = self.reload(cache_dir)
        assert np.array_equal(mesh.coords, ref.coords)
        assert np.array_equal(mesh.edges, ref.edges)
        # the bad file was moved aside for post-mortem ...
        assert os.path.exists(f"{path}.quarantine")
        # ... and a good entry re-persisted in its place
        assert os.path.exists(path)
        from repro.workloads.mesh import clear_mesh_cache

        clear_mesh_cache()
        again = self.reload(cache_dir)
        assert np.array_equal(again.edges, ref.edges)

    def test_truncated_npz_is_quarantined_and_regenerated(self, tmp_path):
        cache_dir, path, ref = self.fill(tmp_path)
        with open(path, "r+b") as f:
            f.truncate(50)
        self.assert_healed(cache_dir, path, ref)

    def test_garbage_file_is_quarantined_and_regenerated(self, tmp_path):
        cache_dir, path, ref = self.fill(tmp_path)
        with open(path, "wb") as f:
            f.write(b"not a zip archive at all")
        self.assert_healed(cache_dir, path, ref)

    def test_wrong_contents_are_quarantined(self, tmp_path):
        cache_dir, path, ref = self.fill(tmp_path)
        np.savez(f"{path}.tmp.npz", something_else=np.arange(4))
        os.replace(f"{path}.tmp.npz", path)
        self.assert_healed(cache_dir, path, ref)

    def test_wrong_shapes_are_quarantined(self, tmp_path):
        cache_dir, path, ref = self.fill(tmp_path)
        np.savez(
            f"{path}.tmp.npz",
            coords=np.zeros((3, 10)),
            edges=np.zeros((5, 7), dtype=np.int64),  # not (2, E)
        )
        os.replace(f"{path}.tmp.npz", path)
        self.assert_healed(cache_dir, path, ref)

    def test_intact_cache_is_not_touched(self, tmp_path):
        cache_dir, path, ref = self.fill(tmp_path)
        mesh = self.reload(cache_dir)
        assert np.array_equal(mesh.edges, ref.edges)
        assert not os.path.exists(f"{path}.quarantine")
