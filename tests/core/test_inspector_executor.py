"""Inspector/executor correctness: simulated loops == sequential NumPy."""

import numpy as np
import pytest

from repro.core import (
    ArrayRef,
    Assign,
    ForallLoop,
    Reduce,
    run_executor,
    run_inspector,
)
from repro.distribution import BlockDistribution, DistArray, IrregularDistribution
from repro.machine import Machine


@pytest.fixture
def m4():
    return Machine(4)


def build(m, n_data=16, n_iter=24, seed=0, dist=None):
    """Random x/y plus random indirection arrays ia/ib/ic."""
    rng = np.random.default_rng(seed)
    dist = dist or BlockDistribution(n_data, m.n_procs)
    idist = BlockDistribution(n_iter, m.n_procs)
    arrays = {
        "x": DistArray.from_global(m, dist, rng.normal(size=n_data), name="x"),
        "y": DistArray.from_global(m, dist, np.zeros(n_data), name="y"),
        "ia": DistArray.from_global(
            m, idist, rng.integers(0, n_data, n_iter), name="ia"
        ),
        "ib": DistArray.from_global(
            m, idist, rng.integers(0, n_data, n_iter), name="ib"
        ),
        "ic": DistArray.from_global(
            m, idist, rng.integers(0, n_data, n_iter), name="ic"
        ),
    }
    return arrays, rng


class TestL2EdgeSweep:
    """The paper's loop L2: reductions at both edge endpoints."""

    def reference(self, x, y, e1, e2):
        out = y.copy()
        np.add.at(out, e1, x[e1] * x[e2])
        np.add.at(out, e2, x[e1] - x[e2])
        return out

    def make_loop(self, n_iter):
        x1, x2 = ArrayRef("x", "ia"), ArrayRef("x", "ib")
        return ForallLoop(
            "L2",
            n_iter,
            [
                Reduce("add", ArrayRef("y", "ia"), lambda a, b: a * b, (x1, x2), flops=2),
                Reduce("add", ArrayRef("y", "ib"), lambda a, b: a - b, (x1, x2), flops=2),
            ],
        )

    @pytest.mark.parametrize("n_procs", [1, 2, 4, 8])
    def test_matches_sequential(self, n_procs):
        m = Machine(n_procs)
        arrays, _ = build(m)
        loop = self.make_loop(24)
        want = self.reference(
            arrays["x"].to_global(),
            arrays["y"].to_global(),
            arrays["ia"].to_global(),
            arrays["ib"].to_global(),
        )
        product = run_inspector(m, loop, arrays)
        run_executor(m, product, arrays)
        assert np.allclose(arrays["y"].to_global(), want)

    def test_irregular_distribution(self, m4):
        rng = np.random.default_rng(7)
        dist = IrregularDistribution(rng.integers(0, 4, 16), 4)
        arrays, _ = build(m4, dist=dist, seed=7)
        loop = self.make_loop(24)
        want = self.reference(
            arrays["x"].to_global(),
            arrays["y"].to_global(),
            arrays["ia"].to_global(),
            arrays["ib"].to_global(),
        )
        product = run_inspector(m4, loop, arrays)
        run_executor(m4, product, arrays)
        assert np.allclose(arrays["y"].to_global(), want)

    def test_repeated_executions_accumulate(self, m4):
        arrays, _ = build(m4)
        loop = self.make_loop(24)
        product = run_inspector(m4, loop, arrays)
        run_executor(m4, product, arrays, n_times=3)
        want = arrays["y"].to_global()  # recompute reference 3x
        arrays2, _ = build(Machine(4))
        ref = arrays2["y"].to_global()
        for _ in range(3):
            ref = self.reference(
                arrays2["x"].to_global(),
                ref,
                arrays2["ia"].to_global(),
                arrays2["ib"].to_global(),
            )
        assert np.allclose(want, ref)


class TestL1SingleStatement:
    """The paper's loop L1: y(ia(i)) = x(ib(i)) + x(ic(i))."""

    def test_matches_sequential(self, m4):
        # FORALL assign semantics require single-valued targets, so ia is
        # a permutation-like injection into y (duplicate targets would be
        # order-dependent and are not legal FORALL programs)
        arrays, rng = build(m4, n_data=24, n_iter=24, seed=3)
        arrays["ia"].global_set(np.arange(24), rng.permutation(24))
        loop = ForallLoop(
            "L1",
            24,
            [
                Assign(
                    ArrayRef("y", "ia"),
                    lambda b, c: b + c,
                    (ArrayRef("x", "ib"), ArrayRef("x", "ic")),
                    flops=1,
                )
            ],
        )
        x = arrays["x"].to_global()
        ia = arrays["ia"].to_global()
        want = arrays["y"].to_global()
        want[ia] = x[arrays["ib"].to_global()] + x[arrays["ic"].to_global()]
        product = run_inspector(m4, loop, arrays)
        run_executor(m4, product, arrays)
        assert np.allclose(arrays["y"].to_global(), want)

    def test_direct_lhs(self, m4):
        """y(i) = 2*x(ib(i)) -- direct write, indirect read."""
        arrays, _ = build(m4, n_data=24, n_iter=24, seed=5)
        loop = ForallLoop(
            "Ld",
            24,
            [Assign(ArrayRef("y"), lambda b: 2 * b, (ArrayRef("x", "ib"),))],
        )
        want = 2 * arrays["x"].to_global()[arrays["ib"].to_global()]
        product = run_inspector(m4, loop, arrays)
        run_executor(m4, product, arrays)
        assert np.allclose(arrays["y"].to_global(), want)


class TestReductionOps:
    @pytest.mark.parametrize(
        "op,combine",
        [("min", np.minimum), ("max", np.maximum), ("multiply", np.multiply)],
    )
    def test_non_add_reductions(self, m4, op, combine):
        arrays, rng = build(m4, seed=11)
        init = rng.normal(size=16)
        arrays["y"].global_set(np.arange(16), init)
        loop = ForallLoop(
            "Lr",
            24,
            [Reduce(op, ArrayRef("y", "ia"), lambda b: b, (ArrayRef("x", "ib"),))],
        )
        want = init.copy()
        ufunc = combine
        ufunc.at(want, arrays["ia"].to_global(), arrays["x"].to_global()[arrays["ib"].to_global()])
        product = run_inspector(m4, loop, arrays)
        run_executor(m4, product, arrays)
        assert np.allclose(arrays["y"].to_global(), want)


class TestValidationAndCosts:
    def test_missing_array(self, m4):
        arrays, _ = build(m4)
        del arrays["ib"]
        loop = ForallLoop(
            "L", 24, [Assign(ArrayRef("y", "ia"), lambda b: b, (ArrayRef("x", "ib"),))]
        )
        with pytest.raises(KeyError, match="ib"):
            run_inspector(m4, loop, arrays)

    def test_stale_product_rejected(self, m4):
        arrays, rng = build(m4)
        loop = ForallLoop(
            "L", 24, [Assign(ArrayRef("y", "ia"), lambda b: b, (ArrayRef("x", "ib"),))]
        )
        product = run_inspector(m4, loop, arrays)
        new = IrregularDistribution(rng.integers(0, 4, 16), 4)
        vals = arrays["x"].to_global()
        arrays["x"].rebind(new, [vals[new.local_indices(p)] for p in range(4)])
        with pytest.raises(ValueError, match="redistributed"):
            run_executor(m4, product, arrays)

    def test_conflicting_write_semantics_rejected(self, m4):
        arrays, _ = build(m4)
        loop = ForallLoop(
            "L",
            24,
            [
                Assign(ArrayRef("y", "ia"), lambda b: b, (ArrayRef("x", "ib"),)),
                Reduce("add", ArrayRef("y", "ia"), lambda b: b, (ArrayRef("x", "ib"),)),
            ],
        )
        product = run_inspector(m4, loop, arrays)
        with pytest.raises(ValueError, match="conflicting"):
            run_executor(m4, product, arrays)

    def test_executor_charges_flops_and_messages(self, m4):
        arrays, _ = build(m4)
        loop = ForallLoop(
            "L",
            24,
            [Reduce("add", ArrayRef("y", "ia"), lambda b: b, (ArrayRef("x", "ib"),), flops=3)],
        )
        product = run_inspector(m4, loop, arrays)
        m4.reset()
        run_executor(m4, product, arrays)
        total_flops = sum(p.stats.flops for p in m4.procs)
        assert total_flops >= 3 * 24  # statement flops at least
        assert m4.elapsed() > 0

    def test_overhead_factor_scales_compute(self, m4):
        arrays, _ = build(m4)
        loop = ForallLoop(
            "L",
            24,
            [Reduce("add", ArrayRef("y", "ia"), lambda b: b, (ArrayRef("x", "ib"),), flops=50)],
        )
        product = run_inspector(m4, loop, arrays)

        m_plain = Machine(4)
        arrays_p, _ = build(m_plain)
        prod_p = run_inspector(m_plain, loop, arrays_p)
        m_plain.reset()
        run_executor(m_plain, prod_p, arrays_p, overhead_factor=1.0)
        t_plain = m_plain.elapsed()

        m_over = Machine(4)
        arrays_o, _ = build(m_over)
        prod_o = run_inspector(m_over, loop, arrays_o)
        m_over.reset()
        run_executor(m_over, prod_o, arrays_o, overhead_factor=1.10)
        assert m_over.elapsed() > t_plain

    def test_bad_overhead_rejected(self, m4):
        arrays, _ = build(m4)
        loop = ForallLoop(
            "L", 24, [Assign(ArrayRef("y", "ia"), lambda b: b, (ArrayRef("x", "ib"),))]
        )
        product = run_inspector(m4, loop, arrays)
        with pytest.raises(ValueError, match="overhead_factor"):
            run_executor(m4, product, arrays, overhead_factor=0.5)
