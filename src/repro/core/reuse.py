"""The conservative schedule-reuse check (Section 3).

"After the first time L's inspector has been executed, the following
checks are performed before the subsequent executions of L.  If any of
the following conditions is false, the inspector must be repeated:

1. DAD(x_i) == L.DAD(x_i),                      1 <= i <= m
2. DAD(ind_j) == L.DAD(ind_j),                  1 <= j <= n
3. last_mod(DAD(ind_j)) == L.last_mod(DAD(ind_j)), 1 <= j <= n"

The check is *conservative*: a block that wrote any array sharing an
indirection array's DAD invalidates reuse even if the specific values
used for indirection are untouched.  It can force unnecessary
re-inspection; it can never wrongly reuse (the property test in
``tests/core/test_reuse.py`` hammers on this).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dad import DAD
from repro.core.records import InspectorRecord
from repro.core.timestamps import ModificationRegistry
from repro.distribution.distarray import DistArray


@dataclass(frozen=True)
class ReuseDecision:
    """Outcome of the check, with the failed condition for diagnostics.

    ``condition`` is the paper's failed condition number (1, 2, or 3;
    ``None`` when all hold) and ``array`` names the first array that
    tripped it -- structured fields the incremental-inspection subsystem
    (``repro.adapt``) uses to decide whether a failure is patchable:
    only a pure condition-3 failure (indirection *values* changed under
    unchanged DADs) can be repaired by diffing and patching.
    """

    reusable: bool
    reason: str
    condition: int | None = None
    array: str | None = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.reusable


def can_reuse(
    record: InspectorRecord,
    arrays: dict[str, DistArray],
    registry: ModificationRegistry,
) -> ReuseDecision:
    """Decide whether loop L's saved inspector results are still valid.

    Parameters
    ----------
    record:
        The state saved by L's last inspector.
    arrays:
        Current name -> DistArray bindings (must cover every array the
        record tracks).
    registry:
        The program's global modification registry.
    """
    for name, saved in record.data_dads.items():
        current = _current_dad(arrays, name)
        if current != saved:
            return ReuseDecision(
                False,
                f"condition 1: data array {name!r} DAD changed",
                condition=1,
                array=name,
            )
    for name, saved in record.ind_dads.items():
        current = _current_dad(arrays, name)
        if current != saved:
            return ReuseDecision(
                False,
                f"condition 2: indirection array {name!r} DAD changed",
                condition=2,
                array=name,
            )
    for name, saved_stamp in record.ind_last_mod.items():
        current = _current_dad(arrays, name)
        if registry.last_mod(current) != saved_stamp:
            return ReuseDecision(
                False,
                f"condition 3: indirection array {name!r} may have been "
                f"modified (last_mod {registry.last_mod(current)} != "
                f"recorded {saved_stamp})",
                condition=3,
                array=name,
            )
    return ReuseDecision(True, "all conditions hold")


def _current_dad(arrays: dict[str, DistArray], name: str) -> DAD:
    try:
        arr = arrays[name]
    except KeyError:
        raise KeyError(
            f"array {name!r} tracked by an inspector record is not bound"
        ) from None
    return DAD.of(arr)
