"""Table 2: mapper-coupler phase breakdown, large mesh / 32 processors.

Paper numbers (53K mesh, 32 procs, seconds; 100 executor iterations):

    variant                 graphgen  partition  remap  inspector  executor  total
    RCB compiler+reuse      --        1.6        4.3    ~1.7       16.8      22.4
    RCB compiler no-reuse   --        1.6        4.2    (x100)     17.x      398
    RCB hand                --        1.6        4.2    ~1.7       17.4      23.0
    BLOCK hand              --        0.0        4.7    ~1.9       ~35       59.4(*)
    RSB hand                2.2       258        4.1    ~1.7       11.4      277.5
    RSB compiler+reuse      2.2       258        4.x    ~1.7       13.9      277.9

Shapes checked here:

* compiler-generated code within ~10-15% of hand-coded (same config);
* no-reuse is many times the reuse total;
* either structured partitioner beats BLOCK's executor clearly;
* RSB's executor is the best but its partitioner dwarfs RCB's;
* graph generation only appears for the connectivity-based partitioner.
"""

from conftest import run_once

from repro.bench import table2_mapper_coupler


def by(rows, label):
    return next(r for r in rows if r["column"] == label)


def test_table2_mapper_coupler(benchmark, report):
    rows, text = run_once(benchmark, table2_mapper_coupler)
    report("table2_mapper_coupler", text)

    rcb_c = by(rows, "RCB compiler+reuse")
    rcb_nc = by(rows, "RCB compiler no-reuse")
    rcb_h = by(rows, "RCB hand")
    block = by(rows, "BLOCK hand")
    rsb_h = by(rows, "RSB hand")
    rsb_c = by(rows, "RSB compiler+reuse")

    # compiler vs hand: within ~15% on the loop total (paper: ~10%)
    assert rcb_c["total"] <= 1.15 * rcb_h["total"]
    assert rsb_c["total"] <= 1.15 * rsb_h["total"]

    # schedule reuse dominates the no-reuse variant
    assert rcb_nc["total"] > 3 * rcb_c["total"]
    assert rcb_nc["inspector"] > 50 * rcb_c["inspector"]

    # partition quality: BLOCK pays in the executor
    assert block["executor"] > 1.25 * rcb_h["executor"]
    assert block["executor"] > 1.25 * rsb_h["executor"]
    # RSB's executor is at least as good as RCB's...
    assert rsb_h["executor"] <= 1.10 * rcb_h["executor"]
    # ...but its partitioning cost towers over RCB's
    assert rsb_h["partition"] > 10 * rcb_h["partition"]

    # BLOCK has no partitioner/graph phases; RSB needs graph generation
    assert block["partition"] == 0 and block["graph_generation"] == 0
    assert rsb_h["graph_generation"] > 0
