"""Typed error hierarchy of the simulation service.

Mirrors ``repro.guard.errors``: callers catch :class:`ServeError` for
anything the service can raise on purpose; unexpected exceptions are
bugs and propagate untyped.
"""

from __future__ import annotations


class ServeError(Exception):
    """Base class for every intentional service-layer failure."""


class QueueSaturated(ServeError):
    """The admission queue is full; retry after ``retry_after`` seconds.

    Load shedding happens at submit time -- the service rejects work it
    cannot queue instead of accepting unbounded backlog.  ``retry_after``
    is a hint derived from the queue's current drain rate.
    """

    def __init__(self, message: str, retry_after: float):
        super().__init__(message)
        self.retry_after = float(retry_after)


class RetryBudgetExhausted(ServeError):
    """A job crashed/failed on every attempt its budget allowed.

    Carries the per-attempt failure reasons so post-mortems do not need
    the service logs.
    """

    def __init__(self, message: str, attempts: int, reasons: list[str]):
        super().__init__(message)
        self.attempts = int(attempts)
        self.reasons = list(reasons)


class JobFailed(ServeError):
    """Raised by ``Job.wait()``/``ServeClient`` when the job ended in
    the ``failed`` state; ``cause`` is the terminal error."""

    def __init__(self, message: str, cause: Exception | None = None):
        super().__init__(message)
        self.cause = cause
