"""Worker subprocess protocol.

One worker = one subprocess + one duplex :func:`multiprocessing.Pipe`.
The pipe is deliberately **per-worker** rather than a shared queue: a
worker SIGKILLed mid-``send`` on a shared ``mp.Queue`` can leave the
queue's feeder lock held and poison every other worker, while a killed
worker here corrupts only its own pipe -- the supervisor sees
``EOFError``/``OSError`` on that one connection and knows exactly which
worker died.

Messages are plain dicts:

supervisor -> worker::

    {"type": "job", "job_id", "attempt", "config": {...}, "checkpoint_path"}
    {"type": "stop"}

worker -> supervisor::

    {"type": "started",   "job_id", "attempt"}
    {"type": "heartbeat", "job_id", "step"}
    {"type": "result",    "job_id", "result": {...}}
    {"type": "error",     "job_id", "error", "error_type"}

``error`` covers *typed, in-process* failures (a config the runtime
rejects); crashes never send anything -- the pipe just goes dead, which
is the point.
"""

from __future__ import annotations

import multiprocessing as mp

from repro.serve.config import JobConfig
from repro.serve.jobs import run_job


def worker_main(conn, worker_id: int) -> None:
    """Blocking job loop of one worker subprocess."""
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return  # supervisor went away
        if msg["type"] == "stop":
            conn.close()
            return
        if msg["type"] != "job":  # pragma: no cover - protocol guard
            continue
        job_id = msg["job_id"]
        attempt = msg["attempt"]
        conn.send({"type": "started", "job_id": job_id, "attempt": attempt})

        def beat(step, _job_id=job_id):
            conn.send({"type": "heartbeat", "job_id": _job_id, "step": step})

        try:
            result = run_job(
                JobConfig.from_dict(msg["config"]),
                checkpoint_path=msg["checkpoint_path"],
                attempt=attempt,
                heartbeat=beat,
            )
        except Exception as exc:  # typed failure: report, stay alive
            conn.send(
                {
                    "type": "error",
                    "job_id": job_id,
                    "error": str(exc),
                    "error_type": type(exc).__name__,
                }
            )
        else:
            conn.send({"type": "result", "job_id": job_id, "result": result})


def spawn_worker(ctx, worker_id: int):
    """Start one worker; returns ``(process, supervisor_end_of_pipe)``."""
    parent_conn, child_conn = mp.Pipe(duplex=True)
    proc = ctx.Process(
        target=worker_main,
        args=(child_conn, worker_id),
        name=f"repro-serve-worker-{worker_id}",
        daemon=True,
    )
    proc.start()
    child_conn.close()  # child's end lives only in the child now
    return proc, parent_conn


def make_context():
    """The multiprocessing context workers are spawned from.

    ``forkserver`` where available (Linux): fork-speed starts without
    inheriting the service's threads; ``spawn`` otherwise.
    """
    try:
        return mp.get_context("forkserver")
    except ValueError:  # pragma: no cover - non-Linux fallback
        return mp.get_context("spawn")
