"""Tests for the benchmark harness and table assembly (tiny inputs)."""

import numpy as np
import pytest

from repro.bench import (
    ExperimentResult,
    PHASE_NAMES,
    render_table,
    run_euler_experiment,
    run_md_experiment,
)
from repro.bench.harness import COMPILER_EXECUTOR_OVERHEAD
from repro.workloads import generate_mesh


@pytest.fixture(scope="module")
def mesh():
    return generate_mesh(300, seed=9)


class TestRunEulerExperiment:
    def test_phases_reported(self, mesh):
        res = run_euler_experiment(mesh, 4, partitioner="RCB", iterations=5)
        assert set(res.phases) == set(PHASE_NAMES)
        assert res.total == pytest.approx(sum(res.phases.values()))
        assert res.phase("executor") > 0

    def test_block_skips_partitioning(self, mesh):
        res = run_euler_experiment(mesh, 4, partitioner="BLOCK", iterations=5)
        assert res.phase("partition") == 0
        assert res.phase("graph_generation") == 0
        assert res.phase("remap") > 0  # the redistribution machinery ran

    def test_hand_vs_compiler_overhead(self, mesh):
        hand = run_euler_experiment(mesh, 4, path="hand", iterations=10)
        comp = run_euler_experiment(mesh, 4, path="compiler", iterations=10)
        assert comp.phase("executor") > hand.phase("executor")
        assert comp.phase("executor") <= (
            COMPILER_EXECUTOR_OVERHEAD * 1.02 * hand.phase("executor")
        )

    def test_no_reuse_multiplies_inspector(self, mesh):
        reuse = run_euler_experiment(mesh, 4, reuse=True, iterations=5)
        no = run_euler_experiment(mesh, 4, reuse=False, iterations=5)
        assert no.phase("inspector") > 4 * reuse.phase("inspector")
        assert no.meta["inspector_runs"] == 5
        assert reuse.meta["inspector_runs"] == 1

    def test_hand_path_no_reuse(self, mesh):
        res = run_euler_experiment(mesh, 4, path="hand", reuse=False, iterations=3)
        assert res.phase("inspector") > 0

    def test_rsb_on_hand_path(self, mesh):
        res = run_euler_experiment(mesh, 4, partitioner="RSB", path="hand", iterations=2)
        assert res.phase("graph_generation") > 0
        assert res.phase("partition") > 0

    def test_bad_path_rejected(self, mesh):
        with pytest.raises(ValueError, match="unknown path"):
            run_euler_experiment(mesh, 4, path="magic")

    def test_meta_counters(self, mesh):
        res = run_euler_experiment(mesh, 4, iterations=3)
        assert res.meta["messages"] > 0
        assert res.meta["bytes"] > 0
        assert res.meta["reuse_hits"] == 2


class TestRunMDExperiment:
    def test_basic(self):
        res = run_md_experiment(n_atoms=162, n_procs=4, cutoff=5.0, iterations=3)
        assert res.workload == "md162"
        assert res.phase("executor") > 0

    def test_bad_path_rejected(self):
        with pytest.raises(ValueError, match="unknown path"):
            run_md_experiment(n_atoms=162, path="x")


class TestRenderTable:
    def test_alignment_and_formatting(self):
        rows = [
            {"a": "long-label", "b": 1.23456, "c": 7},
            {"a": "x", "b": 1234.5678, "c": 8},
        ]
        text = render_table("T", rows, [("a", "A"), ("b", "B"), ("c", "C")])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.235" in text  # 3-decimal floats
        assert "1234.6" in text  # big floats get 1 decimal
        # all rows padded to equal width
        assert len(lines[2]) == len(lines[3]) == len(lines[1])

    def test_empty_rows(self):
        text = render_table("T", [], [("a", "A")])
        assert "A" in text

    def test_missing_keys_blank(self):
        text = render_table("T", [{"a": 1.0}], [("a", "A"), ("b", "B")])
        assert text.splitlines()[-1].rstrip().endswith("1.000") or "1.000" in text


class TestCLI:
    def test_cli_fig2(self, capsys):
        import sys
        from unittest import mock

        from repro.bench.__main__ import main

        # tiny run: patch the scale to keep the test fast
        with mock.patch.dict("os.environ", {"REPRO_SCALE": "small"}):
            rc = main(["fig2", "--procs", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 2 phases" in out

    def test_cli_rejects_unknown_target(self):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main(["table9"])
