"""Schedule merging: one message per processor pair per phase.

PARTI/CHAOS could merge the communication of several schedules into a
single exchange so that a loop reading k patterns pays one message
startup per neighbour instead of k.  With iPSC/860-class latencies
(~100 us) this visibly reduces executor time for multi-pattern loops --
the paper's loop L2 gathers two patterns, the MD loop eight.

``gather_merged`` performs the data movement of every (schedule, array,
buffers) item but charges the machine a single combined exchange;
``merged_message_count`` reports the message saving for the ablation
bench.
"""

from __future__ import annotations

import numpy as np

from repro.chaos.buffers import GhostBuffers
from repro.chaos.schedule import CommSchedule
from repro.distribution.distarray import DistArray
from repro.machine.machine import Machine


def _validate(items) -> Machine:
    if not items:
        raise ValueError("nothing to gather")
    machine = items[0][0].machine
    for sched, arr, ghosts in items:
        if sched.machine is not machine:
            raise ValueError("schedules live on different machines")
        sched._check_array(arr)
        sched._resolve_ghosts(ghosts)
    return machine


def _merged_exchange(
    machine: Machine,
    srcs: list[np.ndarray],
    dsts: list[np.ndarray],
    nbytes: list[np.ndarray],
) -> None:
    """One exchange with all schedules' wire payloads merged per pair.

    Payloads for one (src, dst) pair sum into a single message; pairs
    keep first-appearance order across the concatenated per-schedule
    lists, which is the accumulation order the per-schedule dict fold
    used (so merged clocks are unchanged)."""
    src = np.concatenate(srcs) if srcs else np.empty(0, dtype=np.int64)
    dst = np.concatenate(dsts) if dsts else np.empty(0, dtype=np.int64)
    nb = np.concatenate(nbytes) if nbytes else np.empty(0, dtype=np.int64)
    key = src * machine.n_procs + dst
    uniq, first, inv = np.unique(key, return_index=True, return_inverse=True)
    total = np.bincount(inv, weights=nb).astype(np.int64)
    order = np.argsort(first, kind="stable")
    pair = uniq[order]
    machine.exchange(
        src=pair // machine.n_procs, dst=pair % machine.n_procs, nbytes=total[order]
    )


def gather_merged(
    items: list[tuple[CommSchedule, DistArray, GhostBuffers | list[np.ndarray]]],
) -> None:
    """Gather several access patterns in one communication phase.

    ``items`` pairs each schedule with the array it reads and the ghost
    buffers it fills.  Data movement is identical to calling
    ``sched.gather`` per item; the charge differs: all wire payloads for
    one (owner, requester) pair travel in a single message.
    """
    machine = _validate(items)
    n = machine.n_procs
    pack = np.zeros(n)
    unpack = np.zeros(n)
    srcs, dsts, nbytes = [], [], []
    for sched, arr, ghosts in items:
        sched._move_gather(arr, ghosts)
        pack += sched._pack_mem
        unpack += sched._unpack_mem
        srcs.append(sched._pair_q)
        dsts.append(sched._pair_p)
        nbytes.append(sched._wire_bytes(arr.itemsize))
    machine.charge_compute_all(mem=pack)
    _merged_exchange(machine, srcs, dsts, nbytes)
    machine.charge_compute_all(mem=unpack)


def scatter_op_merged(
    items: list[
        tuple[CommSchedule, list[np.ndarray], DistArray, np.ufunc]
    ],
) -> None:
    """Scatter-combine several write patterns in one communication phase.

    ``items`` holds (schedule, ghost contribution buffers, target array,
    combining ufunc) tuples; wire payloads per (requester, owner) pair
    are merged exactly like :func:`gather_merged`.
    """
    if not items:
        raise ValueError("nothing to scatter")
    machine = items[0][0].machine
    n = machine.n_procs
    pack = np.zeros(n)
    unpack = np.zeros(n)
    combine = np.zeros(n)
    srcs, dsts, nbytes = [], [], []
    for sched, bufs, arr, op in items:
        if sched.machine is not machine:
            raise ValueError("schedules live on different machines")
        sched._check_array(arr)
        if not hasattr(op, "at"):
            raise TypeError(f"op must be a NumPy ufunc with .at, got {op!r}")
        sched._move_reverse(bufs, arr, op)
        # roles swap relative to gather: requesters pack, owners unpack
        pack += sched._unpack_mem
        unpack += sched._pack_mem
        np.add.at(combine, sched._pair_q, sched._pair_len.astype(float))
        srcs.append(sched._pair_p)
        dsts.append(sched._pair_q)
        nbytes.append(sched._wire_bytes(arr.itemsize))
    machine.charge_compute_all(mem=pack)
    _merged_exchange(machine, srcs, dsts, nbytes)
    machine.charge_compute_all(mem=unpack, flops=combine)


def merged_message_count(schedules: list[CommSchedule]) -> tuple[int, int]:
    """(separate, merged) non-empty message counts for a gather phase."""
    separate = sum(s.message_count() for s in schedules)
    pairs = set()
    for s in schedules:
        for (q, p), sl in s.send_lists.items():
            if len(sl) and q != p:
                pairs.add((q, p))
    return separate, len(pairs)
