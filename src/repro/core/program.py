"""The runtime context compiler-generated code drives.

``IrregularProgram`` owns one simulated machine plus the global state the
paper's scheme needs: the modification registry (``nmod``/``last_mod``),
per-loop inspector records, named decompositions/arrays/GeoCoL graphs,
and a translation-table cache.  Its methods correspond one-to-one to the
code blocks the Fortran 90D compiler emits (Figure 6):

=====================  =====================================  ==========
method                 directive / transformation             phase name
=====================  =====================================  ==========
``decomposition``      DECOMPOSITION                          --
``distribute``         DISTRIBUTE                             --
``array``              ALIGN (+ data definition)              --
``construct``          CONSTRUCT -> K1 (GeoCoL generation)    graph_generation
``set_distribution``   SET..BY PARTITIONING..USING -> K2/K3   partition
``redistribute``       REDISTRIBUTE -> K4 (remap)             remap
``forall``             FORALL -> inspector + executor         inspector / executor
=====================  =====================================  ==========

With ``track=True`` (default) the context maintains the runtime record of
possible array modifications and performs the conservative reuse check
before every inspector -- the compiled path.  ``track=False`` is the
hand-coded baseline: no bookkeeping is charged, and schedule reuse is
whatever the caller arranges manually.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.chaos.costs import ChaosCosts, DEFAULT_COSTS
from repro.chaos.remap import remap_arrays, remap_arrays_incremental
from repro.chaos.transcache import TranslationCache
from repro.core.dad import DAD
from repro.core.forall import ForallLoop
from repro.core.geocol import GeoCoL, construct_geocol
from repro.core.inspector import run_inspector
from repro.core.executor import run_executor
from repro.core.mapper import partition_geocol
from repro.core.records import InspectorRecord
from repro.core.reuse import can_reuse
from repro.core.timestamps import ModificationRegistry, ranges_from_positions
from repro.distribution.base import Distribution
from repro.distribution.decomposition import Decomposition
from repro.distribution.distarray import DistArray
from repro.distribution.irregular import IrregularDistribution, repartition_stable
from repro.distribution.regular import (
    BlockCyclicDistribution,
    BlockDistribution,
    CyclicDistribution,
)
from repro.machine.machine import Machine
from repro.obs import EventBus, MetricsSnapshot, Tracer, export_trace

#: integer ops charged per tracked array for one runtime-record check
CHECK_IOPS_PER_ARRAY = 15.0
#: integer ops charged for stamping one writing block into the registry
RECORD_WRITE_IOPS = 8.0


class IrregularProgram:
    """Runtime context: machine + arrays + the paper's global records."""

    def __init__(
        self,
        machine: Machine,
        iter_method: str = "almost_owner",
        ttable_variant: str = "auto",
        costs: ChaosCosts = DEFAULT_COSTS,
        executor_overhead: float = 1.0,
        track: bool = True,
        merge_communication: bool = False,
        coalesce_patterns: bool = True,
        tracking_scope: str = "all",
        incremental: bool = False,
        incremental_threshold: float = 0.35,
        guard: str | None = None,
        translation_cache: str = "on",
        obs: str | None = None,
    ):
        """``tracking_scope`` selects what the runtime record covers:
        ``"all"`` (the paper's implementation: every distributed-array
        write is stamped) or ``"indirection"`` (the Section 3 "future
        work" optimization: only writes to arrays sharing a DAD with
        some loop's indirection array are stamped, cutting tracking
        cost; the information would come from interprocedural analysis,
        which we approximate by registering indirection DADs as loops
        are first inspected).

        ``coalesce_patterns`` (default on) applies PARTI's incremental-
        schedule optimization inside the inspector; pass ``False`` to
        opt out (one schedule per access pattern, the historical
        baseline the coalescing ablation measures).

        ``incremental=True`` enables the ``repro.adapt`` subsystem: when
        the conservative reuse check fails only because indirection
        *values* changed, the saved inspector product is diffed and
        patched instead of rebuilt (falling back to the full inspector
        when more than ``incremental_threshold`` of the tracked
        indirection elements changed, or when no region information is
        available).  Requires ``track=True``.

        ``guard`` selects runtime invariant checking (``"off"`` /
        ``"cheap"`` / ``"full"``; see ``repro.guard``): inspector
        products are verified after every full inspection and after
        every incremental patch, and at ``"full"`` gathered ghost data
        is content-checked against the owners each executor run.  All
        checks are host-level -- simulated numbers stay bit-identical
        at every level.  ``None`` (default) reads the ``REPRO_GUARD``
        environment variable, falling back to ``"off"``.

        ``translation_cache`` (``"on"``, the default, or ``"off"``)
        selects the persistent cross-execution
        :class:`~repro.chaos.transcache.TranslationCache`: translation
        products (owner/offset arrays, dedup inverses, schedules,
        iteration partitions, per-patch key translations) are keyed by
        content versions and reused across inspections, with the cold
        run's simulated charges replayed verbatim on every hit.  Purely
        a host-wall optimization -- simulated numbers are bit-identical
        either way.

        ``obs`` (``"on"`` / ``"off"``; ``None`` reads ``REPRO_OBS``,
        default ``"off"``) enables host-side span tracing: a
        :class:`~repro.obs.Tracer` is installed on ``machine.obs`` and
        the inspector/executor/adapt/guard seams record wall-time spans
        into its bounded buffer (see :mod:`repro.obs`).  Purely
        host-level -- simulated numbers are bit-identical either way."""
        if translation_cache not in ("on", "off"):
            raise ValueError(
                f"unknown translation_cache mode {translation_cache!r}; "
                "choose on | off"
            )
        if tracking_scope not in ("all", "indirection"):
            raise ValueError(
                f"unknown tracking scope {tracking_scope!r}; "
                "choose all | indirection"
            )
        if incremental and not track:
            raise ValueError(
                "incremental inspection needs the runtime modification "
                "record; pass track=True"
            )
        if obs is None:
            obs = os.environ.get("REPRO_OBS", "off")
        if obs not in ("on", "off"):
            raise ValueError(f"unknown obs mode {obs!r}; choose on | off")
        self.machine = machine
        self.obs = obs
        if obs == "on" and not machine.obs.enabled:
            machine.obs = Tracer()
        self.iter_method = iter_method
        self.ttable_variant = ttable_variant
        self.costs = costs
        self.executor_overhead = executor_overhead
        self.track = track
        self.merge_communication = merge_communication
        self.coalesce_patterns = coalesce_patterns
        self.translation_cache = (
            TranslationCache() if translation_cache == "on" else None
        )
        self.tracking_scope = tracking_scope
        if guard is None:
            guard = os.environ.get("REPRO_GUARD", "off")
        # guard sits above core in the layering (its checkpoint layer
        # imports core), so the validator is pulled in lazily
        from repro.guard.invariants import check_level

        self.guard = check_level(guard)
        #: the program's structured-event stream; guard detections,
        #: adapt fallbacks, and (in serve) job lifecycle all land here
        self.events = EventBus()
        #: structured log of guard detections/recoveries (executor-side
        #: gather divergences land here; patch fallbacks live in
        #: ``self.adapt.fallback_log``).  A live list-shaped view over
        #: the ``"guard"`` category of ``self.events``.
        self.guard_events = self.events.view("guard", name_key="event")
        self._indirection_dads: set[tuple] = set()
        self.registry = ModificationRegistry()
        self.arrays: dict[str, DistArray] = {}
        self.decomps: dict[str, Decomposition] = {}
        self.geocols: dict[str, GeoCoL] = {}
        self.distfmts: dict[str, Distribution] = {}
        self.records: dict[str, InspectorRecord] = {}
        self.ttables: dict = {}
        if incremental:
            # core stays importable without adapt; the subsystem sits
            # above core in the layering and is pulled in on demand
            from repro.adapt.driver import IncrementalInspector

            self.adapt = IncrementalInspector(
                self, max_change_fraction=incremental_threshold
            )
        else:
            self.adapt = None
        # statistics the benches report
        self.inspector_runs = 0
        self.reuse_hits = 0
        self.patch_hits = 0
        self.geocol_reuse_hits = 0
        #: cumulative host wall seconds spent in ``_inspect`` (reuse
        #: check + diff/patch or full inspection) -- *not* simulated
        #: time; adaptive benches compare patch vs full-inspect wall
        self.inspect_wall = 0.0

    # ------------------------------------------------------------------
    # Fortran D data declarations
    # ------------------------------------------------------------------
    def decomposition(self, name: str, size: int) -> Decomposition:
        """DECOMPOSITION name(size)."""
        if name in self.decomps:
            raise ValueError(f"decomposition {name!r} already declared")
        dec = Decomposition(name, size)
        self.decomps[name] = dec
        return dec

    def distribute(self, decomp: str, spec) -> None:
        """DISTRIBUTE decomp(spec); spec is "block", "cyclic",
        ("block_cyclic", b), or a Distribution instance."""
        dec = self._decomp(decomp)
        dec.distribute(self._resolve_spec(dec.size, spec))

    def _resolve_spec(self, size: int, spec) -> Distribution:
        n = self.machine.n_procs
        if isinstance(spec, Distribution):
            return spec
        if spec == "block":
            return BlockDistribution(size, n)
        if spec == "cyclic":
            return CyclicDistribution(size, n)
        if isinstance(spec, tuple) and len(spec) == 2 and spec[0] == "block_cyclic":
            return BlockCyclicDistribution(size, n, spec[1])
        if isinstance(spec, str) and spec in self.distfmts:
            return self.distfmts[spec]
        raise ValueError(f"unknown distribution spec {spec!r}")

    def distribute_by_map(self, decomp: str, map_array: str) -> None:
        """DISTRIBUTE decomp(map): the paper's Figure 3 mechanism.

        "An irregular distribution is specified using an integer array;
        when map(i) is set equal to p, element i of the distribution
        irreg is assigned to processor p."  The map array must already
        be declared, aligned and filled with processor ids.
        """
        dec = self._decomp(decomp)
        marr = self._array(map_array)
        if not np.issubdtype(marr.dtype, np.integer):
            raise ValueError(
                f"map array {map_array!r} must be INTEGER, has {marr.dtype}"
            )
        if marr.size != dec.size:
            raise ValueError(
                f"map array {map_array!r} has size {marr.size}, "
                f"decomposition {decomp!r} has size {dec.size}"
            )
        owners = marr.to_global().astype(np.int64)
        dist = IrregularDistribution(owners, self.machine.n_procs)
        # building the distribution from a distributed map array costs a
        # gather of the map fragments (modeled as an allgather)
        from repro.machine.collectives import allgather_cost

        allgather_cost(
            self.machine,
            -(-dec.size // self.machine.n_procs) * self.costs.index_bytes,
        )
        if dec.arrays:
            # live arrays: DISTRIBUTE after ALIGN means a remap
            self.redistribute(decomp, dist)
        else:
            dec.distribute(dist)

    def array(
        self, name: str, decomp: str, values=None, dtype=np.float64
    ) -> DistArray:
        """Declare an array and ALIGN it with a decomposition."""
        if name in self.arrays:
            raise ValueError(f"array {name!r} already declared")
        dec = self._decomp(decomp)
        if dec.distribution is None:
            raise ValueError(f"decomposition {decomp!r} is not distributed yet")
        if values is not None:
            arr = DistArray.from_global(
                self.machine, dec.distribution, np.asarray(values), name=name
            )
        else:
            arr = DistArray(self.machine, dec.distribution, dtype=dtype, name=name)
        dec.align(arr)
        self.arrays[name] = arr
        if self.track:
            self._record_write(
                [arr], regions=[np.array([[0, arr.size]], dtype=np.int64)]
            )
        return arr

    def set_array(self, name: str, values) -> None:
        """Overwrite an array's contents (a writing statement/intrinsic).

        The write is stamped with the full ``[0, size)`` region: the
        incremental inspector may still diff it against its snapshot
        (whole-array rewrites of mostly-unchanged values are exactly the
        adaptive-mesh pattern), unlike writes with no region info, which
        force a full re-inspection.
        """
        arr = self._array(name)
        values = np.asarray(values)
        if values.shape != (arr.size,):
            raise ValueError(
                f"expected shape ({arr.size},), got {values.shape}"
            )
        arr.set_global(values.astype(arr.dtype, copy=False))
        self.machine.charge_compute_all(
            mem=arr.distribution.local_sizes().astype(np.float64)
        )
        if self.track:
            self._record_write(
                [arr], regions=[np.array([[0, arr.size]], dtype=np.int64)]
            )

    def set_array_elements(self, name: str, positions, values) -> None:
        """Write individual elements (a scattered writing statement).

        ``positions`` are global indices, ``values`` the new contents.
        The write is stamped with the minimal range cover of the touched
        positions, so the incremental inspector diffs only the touched
        window.  Owners are charged one memory access per written
        element.
        """
        arr = self._array(name)
        positions = np.asarray(positions)
        if positions.size == 0:
            raise ValueError(
                f"empty update for array {name!r}: no positions given"
            )
        if not np.issubdtype(positions.dtype, np.integer):
            raise ValueError(
                f"positions for array {name!r} must be integers, "
                f"got dtype {positions.dtype}"
            )
        if positions.ndim != 1:
            raise ValueError(
                f"positions for array {name!r} must be 1-D, "
                f"got shape {positions.shape}"
            )
        positions = positions.astype(np.int64, copy=False)
        values = np.asarray(values)
        if positions.shape != values.shape:
            raise ValueError(
                f"positions shape {positions.shape} != values shape {values.shape}"
            )
        if positions.min() < 0 or positions.max() >= arr.size:
            raise ValueError(
                f"positions out of range for array {name!r} of size {arr.size}"
            )
        if not np.can_cast(values.dtype, arr.dtype, casting="same_kind"):
            raise ValueError(
                f"cannot safely write {values.dtype} values into array "
                f"{name!r} of dtype {arr.dtype}"
            )
        arr.global_set(positions, values.astype(arr.dtype, copy=False))
        owners = np.asarray(arr.distribution.owner(positions), dtype=np.int64)
        self.machine.charge_compute_all(
            mem=np.bincount(owners, minlength=self.machine.n_procs).astype(
                np.float64
            )
        )
        if self.track:
            self._record_write([arr], regions=[ranges_from_positions(positions)])

    # ------------------------------------------------------------------
    # Section 4 directives
    # ------------------------------------------------------------------
    def construct(
        self,
        name: str,
        n_vertices: int,
        geometry: list[str] | None = None,
        load: str | None = None,
        link: tuple[str, str] | None = None,
    ) -> GeoCoL:
        """CONSTRUCT name (n, GEOMETRY(...), LOAD(...), LINK(...)).

        With tracking enabled, an unchanged GeoCoL (same source DADs and
        modification stamps) is reused rather than regenerated -- the
        Section 3 mechanism applied to mapper coupling.
        """
        geo_arrays = [self._array(a) for a in geometry] if geometry else None
        load_array = self._array(load) if load else None
        link_arrays = (
            (self._array(link[0]), self._array(link[1])) if link else None
        )
        if self.track and name in self.geocols:
            old = self.geocols[name]
            self.machine.charge_compute_all(
                iops=CHECK_IOPS_PER_ARRAY * max(len(old.source_dads), 1)
            )
            if self._geocol_fresh(old):
                self.geocol_reuse_hits += 1
                return old
        with self.machine.phase("graph_generation"):
            g = construct_geocol(
                self.machine,
                name,
                n_vertices,
                geometry=geo_arrays,
                load=load_array,
                link=link_arrays,
            )
        g.source_last_mod = {
            aname: self.registry.last_mod(dad)
            for aname, dad in g.source_dads.items()
        }
        # GeoCoL freshness uses the same stamps, so its source DADs must
        # be tracked under the narrowed scope too
        for dad in g.source_dads.values():
            self._indirection_dads.add(dad.signature)
        self.geocols[name] = g
        return g

    def _geocol_fresh(self, g: GeoCoL) -> bool:
        for aname, dad in g.source_dads.items():
            arr = self.arrays.get(aname)
            if arr is None or DAD.of(arr) != dad:
                return False
            if self.registry.last_mod(DAD.of(arr)) != g.source_last_mod.get(aname):
                return False
        return True

    def set_distribution(
        self,
        target: str,
        geocol: str,
        partitioner,
        n_parts: int | None = None,
        **kwargs,
    ) -> Distribution:
        """SET target BY PARTITIONING geocol USING partitioner."""
        try:
            g = self.geocols[geocol]
        except KeyError:
            raise KeyError(f"GeoCoL {geocol!r} was never constructed") from None
        with self.machine.phase("partition"):
            dist, result = partition_geocol(
                self.machine, g, partitioner, n_parts, **kwargs
            )
        self.distfmts[target] = dist
        self._last_partition_result = result
        return dist

    def redistribute(self, decomp: str, fmt=None, *, moved=None) -> None:
        """REDISTRIBUTE decomp(fmt): remap every aligned array.

        ``fmt`` is a name stored by :meth:`set_distribution` or a
        Distribution instance.  Alternatively pass ``moved=(gidx,
        to_proc)`` -- an element-move delta, as a load balancer emits --
        and the new distribution is derived with
        :func:`~repro.distribution.irregular.repartition_stable` and the
        arrays remapped through a **patched** schedule whose cost is
        proportional to the number of elements that move, not the array
        size (the mapper/coupler epoch loop of the paper's Table 2).
        """
        dec = self._decomp(decomp)
        # remap content verification: at guard "full" always, and at any
        # level while faults are being injected (mirrors the post-gather
        # check).  host-level -- charges nothing.
        verify = dec.arrays and (
            self.machine.faults is not None or self.guard == "full"
        )
        before = (
            {arr.name: arr.to_global() for arr in dec.arrays} if verify else None
        )
        if moved is not None:
            if fmt is not None:
                raise ValueError("pass either fmt or moved=, not both")
            if dec.distribution is None:
                raise ValueError(
                    f"decomposition {decomp!r} is not distributed yet"
                )
            move_g, move_to = moved
            new_dist, plan = repartition_stable(
                dec.distribution, move_g, move_to
            )
            with self.machine.phase("remap"):
                if dec.arrays:
                    remap_arrays_incremental(
                        dec.arrays, new_dist, plan, self.costs
                    )
                dec.distribution = new_dist
            if verify:
                self._verify_remap(dec.arrays, before)
            if self.track:
                for arr in dec.arrays:
                    self.registry.record_remap(DAD.of(arr))
                self.machine.charge_compute_all(
                    iops=RECORD_WRITE_IOPS * max(len(dec.arrays), 1)
                )
            return
        new_dist = (
            self.distfmts[fmt]
            if isinstance(fmt, str) and fmt in self.distfmts
            else self._resolve_spec(dec.size, fmt)
        )
        if new_dist.size != dec.size:
            raise ValueError(
                f"distribution size {new_dist.size} != decomposition "
                f"{decomp!r} size {dec.size}"
            )
        with self.machine.phase("remap"):
            if dec.arrays:
                remap_arrays(dec.arrays, new_dist, self.costs)
            dec.distribution = new_dist
        if verify:
            self._verify_remap(dec.arrays, before)
        if self.track:
            for arr in dec.arrays:
                self.registry.record_remap(DAD.of(arr))
            self.machine.charge_compute_all(
                iops=RECORD_WRITE_IOPS * max(len(dec.arrays), 1)
            )

    def _verify_remap(self, arrays, before: dict) -> None:
        """Content-check a redistribution; repair divergences host-level.

        A remap moves data between processors but never changes any
        array's *global* contents, so the assembled global view before
        and after must match bit for bit.  Divergent positions (wire
        faults on the moved data, a desynchronized patched schedule) are
        repaired from the host-side pre-remap snapshot -- uncharged, the
        analogue of the executor's post-gather re-gather -- and recorded
        in ``guard_events``.
        """
        from repro.guard.errors import InvariantViolation

        for arr in arrays:
            ref = before[arr.name]
            bad = np.flatnonzero(arr.global_view() != ref)
            if not bad.size:
                continue
            dist = arr.distribution
            pos = (
                bad
                if dist.global_perm_is_identity()
                else dist.global_perm_inverse()[bad]
            )
            arr.backing_mut()[pos] = ref[bad]
            still = np.flatnonzero(arr.global_view() != ref)
            self.guard_events.append(
                {
                    "event": "remap_divergence",
                    "array": arr.name,
                    "n_bad": int(bad.size),
                    "recovered": not still.size,
                }
            )
            if still.size:
                raise InvariantViolation(
                    f"remap of array {arr.name!r} diverges from its "
                    f"pre-remap contents at {int(still.size)} position(s) "
                    "and the host-level repair did not fix it"
                )

    # ------------------------------------------------------------------
    # FORALL
    # ------------------------------------------------------------------
    def forall(self, loop: ForallLoop, n_times: int = 1, reuse: bool = True) -> None:
        """Run a FORALL loop ``n_times``.

        ``reuse=True`` (the paper's mechanism): before each run the saved
        inspector record is checked against the runtime modification
        record and reused when valid.  ``reuse=False``: the inspector is
        repeated before every execution (Table 1's "No Schedule Reuse").
        """
        if n_times < 0:
            raise ValueError(f"negative execution count {n_times}")
        obs = self.machine.obs
        for _ in range(n_times):
            product = self._inspect(loop, reuse)
            with obs.span("execute", loop=loop.name):
                with self.machine.phase("executor"):
                    run_executor(
                        self.machine,
                        product,
                        self.arrays,
                        n_times=1,
                        overhead_factor=self.executor_overhead,
                        merge_communication=self.merge_communication,
                        guard=self.guard,
                        guard_log=self.guard_events,
                    )
            if self.track:
                # a FORALL writes (at most) the whole target array: stamp
                # the full region so an indirection sharing the DAD can
                # still be diffed instead of forcing a full re-inspection
                written = [self.arrays[a] for a in loop.written_arrays()]
                self._record_write(
                    written,
                    regions=[
                        np.array([[0, a.size]], dtype=np.int64) for a in written
                    ],
                )

    def _inspect(self, loop: ForallLoop, reuse: bool):
        """Reuse-checked inspection, with host-wall accounting.

        The wall clock around the whole decision -- reuse check, diff +
        patch, or full inspection -- accumulates into
        ``inspect_wall``; the adaptive bench reads per-step deltas to
        compare *patch wall* against *full re-inspection wall* (the
        simulated charges are tracked separately by the machine phases).
        """
        t0 = time.perf_counter()
        try:
            with self.machine.obs.span("inspect", loop=loop.name):
                return self._inspect_impl(loop, reuse)
        finally:
            self.inspect_wall += time.perf_counter() - t0

    def _inspect_impl(self, loop: ForallLoop, reuse: bool):
        record = self.records.get(loop.name)
        if reuse and record is not None:
            if self.track:
                n_tracked = len(record.tracked_arrays())
                self.machine.charge_compute_all(
                    iops=CHECK_IOPS_PER_ARRAY * n_tracked
                )
                decision = can_reuse(record, self.arrays, self.registry)
            else:
                # hand-coded path: caller asked for reuse, trust it
                decision = True
            if decision:
                self.reuse_hits += 1
                self.machine.obs.counter("inspect.reuse_hits")
                return record.product
            if self.adapt is not None:
                # incremental inspection: a pure condition-3 failure may
                # be repaired by diffing + patching the saved product
                product = self.adapt.attempt(loop, record, decision)
                if product is not None:
                    self.patch_hits += 1
                    return product
        with self.machine.obs.span("inspector.run", loop=loop.name):
            with self.machine.phase("inspector"):
                product = run_inspector(
                    self.machine,
                    loop,
                    self.arrays,
                    iter_method=self.iter_method,
                    ttable_variant=self.ttable_variant,
                    costs=self.costs,
                    ttables=self.ttables,
                    coalesce_patterns=self.coalesce_patterns,
                    cache=self.translation_cache,
                )
        self.inspector_runs += 1
        if self.guard != "off":
            # verify the fresh product at the configured level
            # (host-level, uncharged -- outside the inspector phase)
            from repro.guard.invariants import verify_product

            with self.machine.obs.span("guard.verify_product", loop=loop.name):
                verify_product(product, self.arrays, self.guard)
        for a in loop.indirection_arrays():
            self._indirection_dads.add(DAD.of(self.arrays[a]).signature)
        self.records[loop.name] = InspectorRecord(
            loop_name=loop.name,
            data_dads={a: DAD.of(self.arrays[a]) for a in loop.data_arrays()},
            ind_dads={a: DAD.of(self.arrays[a]) for a in loop.indirection_arrays()},
            ind_last_mod={
                a: self.registry.last_mod(DAD.of(self.arrays[a]))
                for a in loop.indirection_arrays()
            },
            product=product,
        )
        if self.adapt is not None:
            # capture snapshots + slot bookkeeping for future patches
            # (inspector-phase work: it only exists to serve inspection)
            with self.machine.phase("inspector"):
                self.adapt.after_inspect(loop, self.records[loop.name])
        return product

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _record_write(self, arrays: list[DistArray], regions=None) -> None:
        dads = [DAD.of(a) for a in arrays]
        if self.tracking_scope == "indirection":
            # Section 3 optimization: only DADs known to be shared with
            # some loop's indirection arrays need stamping.  The check
            # stays conservative because indirection DADs are registered
            # before any record for that loop exists.
            keep = [d.signature in self._indirection_dads for d in dads]
            dads = [d for d, k in zip(dads, keep) if k]
            if regions is not None:
                regions = [r for r, k in zip(regions, keep) if k]
            if not dads:
                # still a writing block: nmod advances, nothing stamped
                self.registry.record_block_write([])
                self.machine.charge_compute_all(iops=RECORD_WRITE_IOPS)
                return
        self.registry.record_block_write(dads, regions=regions)
        self.machine.charge_compute_all(iops=RECORD_WRITE_IOPS * max(len(dads), 1))

    def _decomp(self, name: str) -> Decomposition:
        try:
            return self.decomps[name]
        except KeyError:
            raise KeyError(f"decomposition {name!r} was never declared") from None

    def _array(self, name: str) -> DistArray:
        try:
            return self.arrays[name]
        except KeyError:
            raise KeyError(f"array {name!r} was never declared") from None

    def phase_time(self, name: str) -> float:
        return self.machine.phase_time(name)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def obs_snapshot(self) -> MetricsSnapshot:
        """Unified host + simulated metrics for this program's run."""
        return MetricsSnapshot.collect(
            self.machine, bus=self.events, cache=self.translation_cache
        )

    def export_obs(self, path: str, fmt: str = "jsonl") -> str:
        """Export the machine's trace buffer + event bus to ``path``.

        ``fmt`` is ``"jsonl"`` or ``"chrome"`` (Perfetto-loadable); see
        :mod:`repro.obs.export`.  Works with obs off too (spans empty,
        events still present).
        """
        return export_trace(
            path,
            self.machine.obs,
            bus=self.events,
            meta={
                "n_procs": self.machine.n_procs,
                "obs": self.obs,
                "simulated_total": float(self.machine.elapsed()),
            },
            fmt=fmt,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IrregularProgram(procs={self.machine.n_procs}, "
            f"arrays={len(self.arrays)}, loops={len(self.records)}, "
            f"nmod={self.registry.nmod})"
        )
