"""Shared cache-key vocabulary for content-addressed host-side caches.

Every wall-clock cache in the runtime -- the iteration partitioner's
owner-row memos, the persistent :class:`~repro.chaos.transcache.
TranslationCache`, and the version-gated ``DistArray.global_view`` --
keys cached work the same way:

* a **distribution key**: :meth:`Distribution.signature` -- ``(kind,
  size, n_procs)`` plus a content digest for irregular/explicit
  distributions, so remapping changes the key (the paper's DAD
  condition 1/2);
* a **content key**: ``(uid, version)`` of the :class:`DistArray`
  providing values.  ``uid`` is the array's process-unique allocation
  id (never reused, unlike ``id()``), ``version`` the monotonic
  mutation counter PR 3 introduced -- every write path
  (``set_array_elements``, executor scatters through segment views,
  ``rebind_flat`` on redistribution) bumps it, which makes
  invalidation *exact*: equal keys imply bit-identical content (the
  paper's DAD condition 3).

This module centralizes that vocabulary so the keying discipline is
written once; prior to PR 9 each cache hand-rolled its own
``(signature, version)`` pairs.
"""

from __future__ import annotations

__all__ = ["content_key", "dist_key", "source_key"]


def content_key(arr) -> tuple:
    """Identity + content token of one ``DistArray``: ``(uid, version)``.

    Equal keys guarantee bit-identical element values; any mutation
    (element writes, executor scatters, redistribution rebinds) bumps
    ``version`` and so changes the key.
    """
    return (arr.uid, arr.version)


def dist_key(dist) -> tuple:
    """Layout token of one ``Distribution`` (its :meth:`signature`).

    Regular kinds are fully described by ``(kind, size, n_procs)``;
    irregular/explicit signatures append a content digest of the
    owner/offset maps, so two keys are equal iff every global index
    translates identically.
    """
    return dist.signature()


def source_key(arrays: dict, ref) -> tuple:
    """Token for the reference stream one ``ArrayRef`` generates.

    ``x(edge(i))`` dereferences ``edge``'s *values* against ``x``'s
    *distribution*; a direct reference ``x(i)`` dereferences the
    iteration index itself.  The token pins both inputs:
    ``("ind", content_key(edge), dist_key(x.dist))`` or
    ``("direct", dist_key(x.dist))``.  Two equal tokens make the owner
    row (and any translation derived from it) bit-identical.
    """
    dist = arrays[ref.array].distribution
    if ref.index is None:
        return ("direct", dist_key(dist))
    return ("ind", content_key(arrays[ref.index]), dist_key(dist))
