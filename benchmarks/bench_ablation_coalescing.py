"""Ablation: pattern coalescing (PARTI incremental/merged schedules).

A loop referencing one array through several indirections (x through
end_pt1 and end_pt2; the MD loop's 4 atom arrays through p1 and p2)
fetches overlapping ghost sets when each pattern is localized
independently.  Coalescing localizes the union: each off-processor
element is fetched once per array, gathers drop to one per array, and
ghost memory shrinks by the overlap.

Coalescing is the runtime's *default* since PR 5; this ablation keeps
measuring both sides by passing the flag explicitly -- ``plain`` is the
opt-out (``coalesce_patterns=False``, the historical per-pattern
baseline the golden table fixtures pin), ``coalesce`` the default.
Composes with message merging (bench_ablation_schedule_merge): the
fully-optimized executor applies both.
"""

from conftest import run_once

from repro.bench import render_table
from repro.machine import Machine
from repro.workloads import generate_mesh, scale_config
from repro.workloads.euler import euler_edge_loop, setup_euler_program


def run_config(mesh, coalesce, merge, sweeps=20):
    m = Machine(16)
    prog = setup_euler_program(
        m,
        mesh,
        seed=0,
        coalesce_patterns=coalesce,
        merge_communication=merge,
    )
    prog.construct("G", mesh.n_nodes, geometry=["xc", "yc", "zc"])
    prog.set_distribution("fmt", "G", "RCB")
    prog.redistribute("reg", "fmt")
    m.reset()
    prog.forall(euler_edge_loop(mesh), n_times=sweeps)
    rec = prog.records[euler_edge_loop(mesh).name]
    ghosts = {
        id(pat.ghosts): pat.ghosts.total_elements()
        for pat in rec.product.patterns.values()
    }
    return {
        "config": ("coalesce (default)" if coalesce else "plain (opt-out)")
        + ("+merge" if merge else ""),
        "executor": prog.phase_time("executor"),
        "messages": int(m.counters.messages_sent.sum()),
        "ghost_elements": sum(ghosts.values()),
    }


def test_pattern_coalescing(benchmark, report):
    scale = scale_config()
    mesh = generate_mesh(scale.mesh_small, seed=1)

    def run():
        return [
            run_config(mesh, False, False),
            run_config(mesh, True, False),
            run_config(mesh, True, True),
        ]

    rows = run_once(benchmark, run)
    report(
        "ablation_coalescing",
        render_table(
            "Pattern-coalescing ablation (RCB mesh, 16 procs, 20 sweeps)",
            rows,
            [
                ("config", "Config"),
                ("executor", "Executor(s)"),
                ("messages", "Messages"),
                ("ghost_elements", "Ghosts"),
            ],
        ),
    )
    plain, co, both = rows
    assert co["ghost_elements"] < plain["ghost_elements"]
    assert co["messages"] < plain["messages"]
    assert co["executor"] < plain["executor"]
    # merging stacks on top of coalescing
    assert both["messages"] <= co["messages"]
    assert both["executor"] <= co["executor"]
