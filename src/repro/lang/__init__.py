"""A Fortran-90D-like directive frontend ("runtime compilation").

This package performs, at the source level, the transformation the
paper's prototype Fortran 90D compiler performs (Figure 6): parse a
program written in the directive dialect of Figures 3-5, analyze its
FORALL loops, and lower everything onto the
:class:`~repro.core.program.IrregularProgram` runtime context -- which
emits the CHAOS calls (GeoCoL generation, partitioner invocation, array
remapping, inspector/executor with the conservative reuse guard).

Accepted statement subset::

    REAL*8 x(nnode), y(nnode)
    INTEGER end_pt1(nedge), end_pt2(nedge)
    DYNAMIC, DECOMPOSITION reg(nnode), reg2(nedge)
    DISTRIBUTE reg(BLOCK), reg2(BLOCK)
    ALIGN x, y WITH reg
    ALIGN end_pt1, end_pt2 WITH reg2
    C$ CONSTRUCT G (nnode, LINK(nedge, end_pt1, end_pt2))
    C$ SET distfmt BY PARTITIONING G USING RSB
    C$ REDISTRIBUTE reg(distfmt)
    DO t = 1, 100
      FORALL i = 1, nedge
        REDUCE (ADD, y(end_pt1(i)), x(end_pt1(i)) * x(end_pt2(i)))
        REDUCE (ADD, y(end_pt2(i)), x(end_pt1(i)) - x(end_pt2(i)))
      END FORALL
    END DO

plus GEOMETRY/LOAD clauses in CONSTRUCT, plain assignments inside
FORALL (``y(ia(i)) = x(ib(i)) + x(ic(i))``), arithmetic expressions with
the intrinsics SQRT/EXP/LOG/SIN/COS/ABS/MIN/MAX, and CYCLIC
distributions.  Sizes (``nnode``...) and initial array contents are
supplied at run time -- exactly the values "known only at runtime" that
make these programs irregular.
"""

from repro.lang.tokens import Token, TokenKind, tokenize
from repro.lang.ast_nodes import (
    ProgramAST,
    TypeDecl,
    DecompositionDecl,
    DistributeStmt,
    AlignStmt,
    ConstructStmt,
    SetStmt,
    RedistributeStmt,
    ForallStmt,
    DoStmt,
    AssignStmt,
    ReduceStmt,
    Num,
    Var,
    BinOp,
    UnOp,
    Call,
    ArrayIndex,
)
from repro.lang.parser import parse, ParseError
from repro.lang.analysis import analyze, AnalysisError, ProgramInfo
from repro.lang.lower import lower_forall, compile_expression
from repro.lang.interp import run_program, CompiledProgram
from repro.lang.pretty import pretty_expr, pretty_program, pretty_stmt

__all__ = [
    "Token",
    "TokenKind",
    "tokenize",
    "ProgramAST",
    "TypeDecl",
    "DecompositionDecl",
    "DistributeStmt",
    "AlignStmt",
    "ConstructStmt",
    "SetStmt",
    "RedistributeStmt",
    "ForallStmt",
    "DoStmt",
    "AssignStmt",
    "ReduceStmt",
    "Num",
    "Var",
    "BinOp",
    "UnOp",
    "Call",
    "ArrayIndex",
    "parse",
    "ParseError",
    "analyze",
    "AnalysisError",
    "ProgramInfo",
    "lower_forall",
    "compile_expression",
    "run_program",
    "CompiledProgram",
    "pretty_expr",
    "pretty_program",
    "pretty_stmt",
]
