"""Ghost-buffer allocation and bookkeeping.

CHAOS allocates, per processor, buffer space for copies of off-processor
data ("allocates local memory for each unique off-processor distributed
array element accessed by a loop").  ``GhostBuffers`` owns those arrays
for one (schedule, dtype) pair; the inspector stores one per data array,
and the reuse mechanism keeps them alive together with the schedule.

Layout contract
---------------
All per-processor ghost buffers live in **one contiguous backing
array**, CSR-style (mirroring ``DistArray``'s flat segmented storage):
processor ``p``'s buffer is ``backing[offsets[p]:offsets[p+1]]`` where
``offsets`` is the cumulative sum of the bound schedule's
``ghost_sizes``.  Ghost slot ``s`` of processor ``p`` therefore lives at
flat position ``offsets[p] + s`` -- the *ghost backing position* that
:class:`~repro.chaos.schedule.CommSchedule` resolves its unpack slots
against, which is what lets gather/scatter move every processor's ghost
data with single fancy-indexes instead of a loop over processors.

``buf(p)`` hands out a *live slice view* of the backing (writes through
it hit the flat array), ``buffers`` is the per-processor list of those
views (compat for callers that still think in lists), and ``fill`` is
one vector operation over the backing.  The layout is fixed for the
lifetime of the object: it is sized by the schedule at construction and
the backing is never reallocated, so views stay valid.

Invariant contract
------------------
Checked by :func:`repro.guard.invariants.verify_ghosts`:

* ``offsets`` is a monotone CSR starting at 0 and ``backing`` is 1-D
  with exactly ``offsets[-1]`` elements;
* ``np.diff(offsets)`` equals the bound schedule's ``ghost_sizes``
  element for element;
* after incremental patching, retired slots are *holes*: they keep
  their backing positions, no schedule entry targets them (schedule
  occupancy must match the adapt state's live reference counts), and
  their contents are dead -- correctness never reads a hole.
"""

from __future__ import annotations

import numpy as np

from repro.chaos.costs import ChaosCosts, DEFAULT_COSTS
from repro.chaos.schedule import CommSchedule
from repro.machine.machine import Machine


class GhostBuffers:
    """Flat ghost storage for one schedule: one backing array, CSR offsets."""

    def __init__(
        self,
        machine: Machine,
        schedule: CommSchedule,
        dtype=np.float64,
        costs: ChaosCosts = DEFAULT_COSTS,
        charge: bool = True,
    ):
        if schedule.machine is not machine:
            raise ValueError("schedule lives on a different machine")
        self.machine = machine
        self.schedule = schedule
        self.dtype = np.dtype(dtype)
        sizes = np.asarray(schedule.ghost_sizes, dtype=np.int64)
        self.offsets = np.zeros(machine.n_procs + 1, dtype=np.int64)
        np.cumsum(sizes, out=self.offsets[1:])
        #: one np.zeros for every processor's buffer space
        self.backing = np.zeros(int(self.offsets[-1]), dtype=self.dtype)
        if charge:
            machine.charge_compute_all(
                iops=costs.buffer_assign * sizes.astype(np.float64)
            )

    def patched(
        self,
        schedule: CommSchedule,
        costs: ChaosCosts = DEFAULT_COSTS,
        appended: np.ndarray | None = None,
    ) -> "GhostBuffers":
        """Append-only regrowth: new buffers for a patched schedule.

        The incremental-inspection subsystem retires ghost slots in
        place (slots keep their positions; retired ones become holes)
        and appends new slots at the end of each processor's region, so
        the new per-processor ghost size is always >= the old one.  The
        returned buffers copy every retained slot's contents to its
        preserved per-processor position and charge the machine
        ``buffer_assign`` only for ``appended`` slots per processor --
        not the whole region, the delta-work contract of schedule
        patching.  ``appended`` defaults to the per-processor backing
        growth; callers assigning new keys into reused holes pass their
        per-processor *newly assigned slot* counts instead (a reused
        hole still needs its buffer address rebound to the new key).
        """
        if schedule.machine is not self.machine:
            raise ValueError("patched schedule lives on a different machine")
        new = GhostBuffers(
            self.machine, schedule, dtype=self.dtype, costs=costs, charge=False
        )
        old_sizes = np.diff(self.offsets)
        new_sizes = np.diff(new.offsets)
        if (new_sizes < old_sizes).any():
            p = int(np.flatnonzero(new_sizes < old_sizes)[0])
            raise ValueError(
                f"ghost region of processor {p} shrank "
                f"({int(old_sizes[p])} -> {int(new_sizes[p])}); patching "
                "is append-only"
            )
        if self.backing.size:
            if np.array_equal(new.offsets, self.offsets):
                # unchanged layout: every retained slot keeps its flat
                # position -- one contiguous copy, no index arrays
                new.backing[:] = self.backing
            else:
                # copy each processor's old region to the start of its
                # new region: one scatter over shifted positions
                shift = new.offsets[:-1] - self.offsets[:-1]
                old_pos = np.arange(self.backing.size, dtype=np.int64)
                new.backing[old_pos + np.repeat(shift, old_sizes)] = self.backing
        if appended is None:
            appended = new_sizes - old_sizes
        self.machine.charge_compute_all(
            iops=costs.buffer_assign * np.asarray(appended, dtype=np.float64)
        )
        return new

    def buf(self, p: int) -> np.ndarray:
        """Ghost buffer of processor ``p`` -- a live slice of the backing."""
        if not 0 <= p < self.machine.n_procs:
            raise ValueError(
                f"processor id {p} out of range [0, {self.machine.n_procs})"
            )
        return self.backing[self.offsets[p] : self.offsets[p + 1]]

    @property
    def buffers(self) -> list[np.ndarray]:
        """Per-processor list of live views into the backing (compat)."""
        return [
            self.backing[self.offsets[p] : self.offsets[p + 1]]
            for p in range(self.machine.n_procs)
        ]

    def fill(self, value) -> None:
        """Reset every buffer (e.g. zero ghosts before accumulating)."""
        self.backing.fill(value)

    def total_elements(self) -> int:
        return self.backing.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GhostBuffers(dtype={self.dtype}, total={self.total_elements()})"
        )
