"""Synthetic 3-D unstructured meshes.

The paper's meshes come from an unstructured Euler solver; what matters
for the runtime system is (a) the edge list's irregular connectivity,
(b) spatial coordinates for geometric partitioners, and (c) a node
numbering with no useful correspondence to mesh locality ("the way in
which the nodes of an irregular computational mesh are numbered
frequently does not have a useful correspondence to the connectivity
pattern", Section 1).  We generate graded point clouds (denser near a
'body'), tetrahedralize them with Delaunay, extract unique edges, and
randomly renumber the nodes.
"""

from __future__ import annotations

import os
import zipfile
from dataclasses import dataclass

import numpy as np
from scipy.spatial import Delaunay

#: in-process cache of generated meshes, keyed by the full parameter tuple;
#: Delaunay on 50k graded points costs seconds, and every benchmark harness
#: regenerates the same handful of meshes
_MESH_CACHE: dict[tuple, "UnstructuredMesh"] = {}


@dataclass
class UnstructuredMesh:
    """An unstructured mesh: node coordinates plus a unique edge list."""

    coords: np.ndarray  # (ndim, N)
    edges: np.ndarray  # (2, E), each undirected edge once, e0 < e1

    @property
    def n_nodes(self) -> int:
        return self.coords.shape[1]

    @property
    def n_edges(self) -> int:
        return self.edges.shape[1]

    @property
    def ndim(self) -> int:
        return self.coords.shape[0]

    def renumbered(self, rng: np.random.Generator) -> "UnstructuredMesh":
        """Randomly permute node labels (coords move with their node)."""
        n = self.n_nodes
        perm = rng.permutation(n)  # new label of old node i is perm[i]
        inv = np.empty(n, dtype=np.int64)
        inv[perm] = np.arange(n)
        edges = perm[self.edges]
        edges = np.sort(edges, axis=0)
        return UnstructuredMesh(coords=self.coords[:, inv], edges=edges)

    def degree(self) -> np.ndarray:
        deg = np.zeros(self.n_nodes, dtype=np.int64)
        np.add.at(deg, self.edges[0], 1)
        np.add.at(deg, self.edges[1], 1)
        return deg


def edges_from_simplices(simplices: np.ndarray) -> np.ndarray:
    """Unique undirected edges (2, E) from a (M, k) simplex array."""
    simplices = np.asarray(simplices, dtype=np.int64)
    k = simplices.shape[1]
    pairs = []
    for a in range(k):
        for b in range(a + 1, k):
            pairs.append(simplices[:, [a, b]])
    edges = np.concatenate(pairs, axis=0)
    edges = np.sort(edges, axis=1)
    edges = np.unique(edges, axis=0)
    return edges.T.copy()


def _graded_points(n: int, ndim: int, rng: np.random.Generator) -> np.ndarray:
    """Point cloud graded toward an embedded 'body', like a CFD mesh.

    60% of points cluster near a small sphere at the domain center (the
    aircraft/airfoil surface region), the rest fill the far field --
    giving the strongly non-uniform densities real solver meshes have.
    """
    n_near = int(0.6 * n)
    n_far = n - n_near
    # near-field: radius ~ lognormal shell around r0
    directions = rng.normal(size=(n_near, ndim))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True) + 1e-12
    radii = 0.15 + 0.12 * rng.lognormal(mean=0.0, sigma=0.6, size=n_near)
    near = 0.5 + directions * radii[:, None]
    far = rng.uniform(0.0, 1.0, size=(n_far, ndim))
    pts = np.clip(np.concatenate([near, far], axis=0), 0.0, 1.0)
    return pts


def clear_mesh_cache() -> None:
    """Drop every in-process cached mesh (tests use this)."""
    _MESH_CACHE.clear()


def _fresh_copy(mesh: UnstructuredMesh) -> UnstructuredMesh:
    """Copies protect cached meshes from caller-side mutation."""
    return UnstructuredMesh(coords=mesh.coords.copy(), edges=mesh.edges.copy())


def _disk_cache_path(cache_dir: str, key: tuple) -> str:
    n_nodes, ndim, seed, renumber, graded = key
    name = f"mesh_n{n_nodes}_d{ndim}_s{seed}_r{int(renumber)}_g{int(graded)}.npz"
    return os.path.join(cache_dir, name)


def _persist_mesh(cache_dir: str, key: tuple, mesh: UnstructuredMesh) -> None:
    """Write-then-rename so concurrent readers never see a partial .npz
    and an interrupted write cannot poison the cache."""
    os.makedirs(cache_dir, exist_ok=True)
    path = _disk_cache_path(cache_dir, key)
    # savez appends .npz to names lacking it, so keep the suffix
    tmp = f"{path}.tmp{os.getpid()}.npz"
    try:
        np.savez(tmp, coords=mesh.coords, edges=mesh.edges)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.remove(tmp)


def _load_persisted(path: str) -> UnstructuredMesh | None:
    """Read one on-disk cache entry; damaged files are quarantined.

    A truncated or corrupted ``.npz`` (torn write from a killed process,
    disk damage) must never take the generator down: the bad file is
    moved aside to ``<path>.quarantine`` for post-mortem and ``None`` is
    returned so the caller regenerates and re-persists transparently.
    """
    try:
        with np.load(path) as data:
            coords = np.asarray(data["coords"])
            edges = np.asarray(data["edges"])
        if coords.ndim != 2 or edges.ndim != 2 or edges.shape[0] != 2:
            raise ValueError(
                f"cached mesh has wrong shapes: coords {coords.shape}, "
                f"edges {edges.shape}"
            )
        return UnstructuredMesh(coords=coords, edges=edges)
    except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile):
        try:
            os.replace(path, f"{path}.quarantine")
        except OSError:
            pass  # someone else already moved/removed it; regenerate anyway
        return None


def generate_mesh(
    n_nodes: int,
    ndim: int = 3,
    seed: int = 0,
    renumber: bool = True,
    graded: bool = True,
    cache: bool = True,
    cache_dir: str | None = None,
) -> UnstructuredMesh:
    """Generate a Delaunay mesh on ``n_nodes`` points.

    ``renumber=True`` (default) destroys any locality in the node
    numbering, which is what makes BLOCK distributions genuinely bad on
    these meshes (the Table 4 baseline).

    Generation is deterministic in its parameters, so results are cached
    in-process by default (``cache=False`` opts out); passing
    ``cache_dir`` additionally persists meshes on disk as ``.npz`` files
    (the benchmarks use ``benchmarks/out/``, so repeated bench runs skip
    the multi-second Delaunay step entirely).  Callers always receive a
    fresh copy, never the cached instance.  A damaged on-disk entry is
    quarantined and the mesh regenerated and re-persisted transparently.
    """
    if n_nodes < ndim + 2:
        raise ValueError(
            f"need at least {ndim + 2} nodes for a {ndim}-D mesh, got {n_nodes}"
        )
    if ndim not in (2, 3):
        raise ValueError(f"only 2-D and 3-D meshes supported, got ndim={ndim}")
    key = (int(n_nodes), int(ndim), int(seed), bool(renumber), bool(graded))
    if cache and key in _MESH_CACHE:
        mesh = _MESH_CACHE[key]
        if cache_dir is not None and not os.path.exists(
            _disk_cache_path(cache_dir, key)
        ):
            _persist_mesh(cache_dir, key, mesh)
        return _fresh_copy(mesh)
    if cache and cache_dir is not None:
        path = _disk_cache_path(cache_dir, key)
        if os.path.exists(path):
            mesh = _load_persisted(path)
            if mesh is not None:
                _MESH_CACHE[key] = mesh
                return _fresh_copy(mesh)
            # damaged entry was quarantined: fall through to regenerate
            # (and re-persist below)
    rng = np.random.default_rng(seed)
    pts = (
        _graded_points(n_nodes, ndim, rng)
        if graded
        else rng.uniform(size=(n_nodes, ndim))
    )
    tri = Delaunay(pts)
    edges = edges_from_simplices(tri.simplices)
    mesh = UnstructuredMesh(coords=pts.T.copy(), edges=edges)
    if renumber:
        mesh = mesh.renumbered(rng)
    if cache:
        _MESH_CACHE[key] = _fresh_copy(mesh)
        if cache_dir is not None:
            _persist_mesh(cache_dir, key, mesh)
    return mesh
