"""The Section 3 GeoCoL-reuse scenario, end to end.

"We employ the same method to track possible changes to arrays used in
the construction of the data structure produced at runtime to link
partitioners with programs.  This approach makes it simple for our
compiler to avoid generating a new GeoCoL graph and carrying out a
potentially expensive repartition when no change has occurred."

A directive program whose DO body re-executes CONSTRUCT / SET /
REDISTRIBUTE every trip (as an adaptive code conservatively would) must
rebuild the graph only on the first trip; later trips reuse the cached
GeoCoL, the redistribution is to an identical distribution (same DAD),
and loop schedules keep being reused.
"""

import numpy as np
import pytest

from repro.core import IrregularProgram
from repro.lang import run_program
from repro.machine import Machine
from repro.workloads import generate_mesh
from repro.workloads.euler import euler_edge_loop, setup_euler_program

PROGRAM = """
REAL*8 x(nnode), y(nnode)
INTEGER end_pt1(nedge), end_pt2(nedge)
DYNAMIC, DECOMPOSITION reg(nnode), reg2(nedge)
DISTRIBUTE reg(BLOCK), reg2(BLOCK)
ALIGN x, y WITH reg
ALIGN end_pt1, end_pt2 WITH reg2
DO t = 1, 4
  C$ CONSTRUCT G (nnode, LINK(nedge, end_pt1, end_pt2))
  C$ SET distfmt BY PARTITIONING G USING RSB
  C$ REDISTRIBUTE reg(distfmt)
  FORALL i = 1, nedge
    REDUCE (ADD, y(end_pt1(i)), x(end_pt1(i)) * x(end_pt2(i)))
  END FORALL
END DO
"""


class TestLangGeoColReuse:
    def test_graph_built_once_across_trips(self):
        rng = np.random.default_rng(5)
        n, m_edges = 30, 60
        e1 = rng.integers(0, n, m_edges)
        e2 = (e1 + 1 + rng.integers(0, n - 1, m_edges)) % n
        x = rng.normal(size=n)
        machine = Machine(4)
        cp = run_program(
            PROGRAM,
            machine,
            sizes={"NNODE": n, "NEDGE": m_edges},
            data={"X": x, "END_PT1": e1, "END_PT2": e2},
        )
        prog = cp.program
        # the GeoCoL was reused on trips 2-4
        assert prog.geocol_reuse_hits == 3
        # results still correct across 4 sweeps
        want = np.zeros(n)
        for _ in range(4):
            np.add.at(want, e1, x[e1] * x[e2])
        assert np.allclose(cp.array_global("Y"), want)

    def test_repeated_identical_redistribute_keeps_schedules(self):
        """Redistributing to the *same* irregular distribution yields the
        same DAD, so loop schedules survive -- the runtime re-inspects
        only after the first (real) remap."""
        mesh = generate_mesh(300, seed=8)
        machine = Machine(4)
        prog = setup_euler_program(machine, mesh, seed=8)
        loop = euler_edge_loop(mesh)
        for _ in range(3):
            prog.construct("G", mesh.n_nodes, link=("end_pt1", "end_pt2"))
            prog.set_distribution("fmt", "G", "RSB")
            prog.redistribute("reg", "fmt")
            prog.forall(loop, n_times=2)
        # GeoCoL reused twice; the RSB owner map is deterministic, so
        # trips 2 and 3 redistribute to an identical distribution and
        # the loop record stays valid
        assert prog.geocol_reuse_hits == 2
        assert prog.inspector_runs == 1
        assert prog.reuse_hits == 5

    def test_source_change_forces_full_rebuild(self):
        mesh = generate_mesh(300, seed=9)
        machine = Machine(4)
        prog = setup_euler_program(machine, mesh, seed=9)
        loop = euler_edge_loop(mesh)
        prog.construct("G", mesh.n_nodes, link=("end_pt1", "end_pt2"))
        prog.set_distribution("fmt", "G", "RSB")
        prog.redistribute("reg", "fmt")
        prog.forall(loop)
        # adapt the mesh: edge arrays change -> GeoCoL must rebuild
        rng = np.random.default_rng(0)
        prog.set_array(
            "end_pt1", rng.integers(0, mesh.n_nodes, mesh.n_edges)
        )
        g2 = prog.construct("G", mesh.n_nodes, link=("end_pt1", "end_pt2"))
        assert prog.geocol_reuse_hits == 0
        prog.set_distribution("fmt", "G", "RSB")
        prog.redistribute("reg", "fmt")
        prog.forall(loop)
        assert prog.inspector_runs == 2
