"""Tests for localize + communication schedules (the inspector core)."""

import numpy as np
import pytest

from repro.chaos import (
    GhostBuffers,
    build_translation_table,
    gather,
    localize,
    scatter,
    scatter_add,
    scatter_op,
)
from repro.distribution import BlockDistribution, DistArray, IrregularDistribution
from repro.machine import Machine


@pytest.fixture
def m4():
    return Machine(4)


def make_setup(m, dist, ref_lists, values=None):
    """Localize ref_lists against dist; return (arr, result, ghosts)."""
    tt = build_translation_table(m, dist)
    res = localize(m, tt, [np.asarray(r, dtype=np.int64) for r in ref_lists])
    if values is None:
        values = np.arange(dist.size, dtype=np.float64) * 10
    arr = DistArray.from_global(m, dist, values)
    ghosts = GhostBuffers(m, res.schedule, dtype=arr.dtype)
    return arr, res, ghosts


class TestLocalize:
    def test_on_processor_refs_stay_local(self, m4):
        dist = BlockDistribution(8, 4)
        refs = [dist.local_indices(p) for p in range(4)]  # all owned
        arr, res, ghosts = make_setup(m4, dist, refs)
        assert res.schedule.element_count() == 0
        assert all(g.size == 0 for g in res.ghost_globals)
        for p in range(4):
            assert np.all(res.local_refs[p] < res.local_sizes[p])

    def test_off_processor_refs_get_ghost_slots(self, m4):
        dist = BlockDistribution(8, 4)
        refs = [[(2 * p + 2) % 8] for p in range(4)]  # everyone reads neighbor
        arr, res, ghosts = make_setup(m4, dist, refs)
        assert res.schedule.element_count() == 4
        for p in range(4):
            assert res.local_refs[p][0] == res.local_sizes[p]  # first ghost slot

    def test_duplicate_refs_deduplicated(self, m4):
        dist = BlockDistribution(8, 4)
        refs = [[7, 7, 7, 7], [], [], []]
        arr, res, ghosts = make_setup(m4, dist, refs)
        assert res.ghost_globals[0].tolist() == [7]
        assert res.schedule.element_count() == 1
        assert np.all(res.local_refs[0] == res.local_sizes[0])

    def test_mixed_local_and_ghost(self, m4):
        dist = BlockDistribution(8, 4)
        refs = [[0, 1, 5], [], [], []]
        arr, res, ghosts = make_setup(m4, dist, refs)
        is_local, is_ghost = res.split(0)
        assert is_local.tolist() == [True, True, False]

    def test_wrong_list_count(self, m4):
        dist = BlockDistribution(8, 4)
        tt = build_translation_table(m4, dist)
        with pytest.raises(ValueError, match="expected 4"):
            localize(m4, tt, [np.array([0])] * 3)

    def test_localize_charges_machine(self, m4):
        dist = BlockDistribution(8, 4)
        make_setup(m4, dist, [[5], [0], [0], [0]])
        assert m4.elapsed() > 0


class TestGather:
    def test_gather_fetches_correct_values(self, m4):
        dist = BlockDistribution(8, 4)
        refs = [[5, 0], [7], [1], [0, 6]]
        arr, res, ghosts = make_setup(m4, dist, refs)
        gather(res.schedule, arr, ghosts)
        g = arr.to_global()
        for p in range(4):
            want = g[res.ghost_globals[p]]
            assert np.array_equal(ghosts.buf(p), want)

    def test_executor_view_matches_reference(self, m4):
        """Localized indexing over [local | ghost] reproduces global reads."""
        rng = np.random.default_rng(5)
        dist = IrregularDistribution(rng.integers(0, 4, size=30), 4)
        refs = [rng.integers(0, 30, size=12) for _ in range(4)]
        arr, res, ghosts = make_setup(m4, dist, refs)
        gather(res.schedule, arr, ghosts)
        g = arr.to_global()
        for p in range(4):
            combined = np.concatenate([arr.local(p), ghosts.buf(p)])
            assert np.array_equal(combined[res.local_refs[p]], g[refs[p]])

    def test_gather_charges_messages(self, m4):
        dist = BlockDistribution(8, 4)
        arr, res, ghosts = make_setup(m4, dist, [[7], [], [], []])
        before = m4.procs[3].stats.messages_sent
        gather(res.schedule, arr, ghosts)
        assert m4.procs[3].stats.messages_sent == before + 1

    def test_stale_schedule_rejected(self, m4):
        dist = BlockDistribution(8, 4)
        arr, res, ghosts = make_setup(m4, dist, [[7], [], [], []])
        # rebind the array to a different distribution
        new = IrregularDistribution([3, 2, 1, 0] * 2, 4)
        vals = arr.to_global()
        arr.rebind(new, [vals[new.local_indices(p)] for p in range(4)])
        with pytest.raises(ValueError, match="stale"):
            gather(res.schedule, arr, ghosts)

    def test_wrong_ghost_shape_rejected(self, m4):
        dist = BlockDistribution(8, 4)
        arr, res, _ = make_setup(m4, dist, [[7], [], [], []])
        bad = [np.zeros(5) for _ in range(4)]
        with pytest.raises(ValueError, match="ghost buffer"):
            res.schedule.gather(arr, bad)


class TestScatter:
    def test_scatter_add_accumulates(self, m4):
        dist = BlockDistribution(8, 4)
        refs = [[7], [7], [7], []]  # three procs contribute to element 7
        arr, res, ghosts = make_setup(m4, dist, refs, values=np.zeros(8))
        for p in range(3):
            ghosts.buf(p)[:] = p + 1.0
        scatter_add(res.schedule, ghosts, arr)
        assert arr.to_global()[7] == pytest.approx(6.0)

    def test_scatter_overwrites(self, m4):
        dist = BlockDistribution(8, 4)
        refs = [[4], [], [], []]
        arr, res, ghosts = make_setup(m4, dist, refs, values=np.zeros(8))
        ghosts.buf(0)[:] = 9.0
        scatter(res.schedule, ghosts, arr)
        assert arr.to_global()[4] == 9.0

    def test_scatter_op_max(self, m4):
        dist = BlockDistribution(8, 4)  # element 3 is owned by processor 1
        refs = [[3], [], [], [3]]
        arr, res, ghosts = make_setup(m4, dist, refs, values=np.full(8, 5.0))
        ghosts.buf(0)[:] = 2.0
        ghosts.buf(3)[:] = 11.0
        scatter_op(res.schedule, ghosts, arr, "max")
        assert arr.to_global()[3] == 11.0

    def test_unknown_op_rejected(self, m4):
        dist = BlockDistribution(8, 4)
        arr, res, ghosts = make_setup(m4, dist, [[3], [], [], []])
        with pytest.raises(ValueError, match="unknown reduction"):
            scatter_op(res.schedule, ghosts, arr, "xor")

    def test_non_ufunc_rejected(self, m4):
        dist = BlockDistribution(8, 4)
        arr, res, ghosts = make_setup(m4, dist, [[3], [], [], []])
        with pytest.raises(TypeError, match="ufunc"):
            res.schedule.scatter_op(ghosts.buffers, arr, sum)

    def test_gather_scatter_round_trip_identity(self, m4):
        """scatter(gather(x)) with overwrite semantics leaves x unchanged."""
        rng = np.random.default_rng(11)
        dist = IrregularDistribution(rng.integers(0, 4, size=40), 4)
        refs = [rng.integers(0, 40, size=15) for _ in range(4)]
        vals = rng.normal(size=40)
        arr, res, ghosts = make_setup(m4, dist, refs, values=vals)
        gather(res.schedule, arr, ghosts)
        scatter(res.schedule, ghosts, arr)
        assert np.allclose(arr.to_global(), vals)


class TestGhostBuffers:
    def test_sizes_follow_schedule(self, m4):
        dist = BlockDistribution(8, 4)
        arr, res, ghosts = make_setup(m4, dist, [[7, 5], [], [], []])
        assert ghosts.buf(0).size == 2
        assert ghosts.total_elements() == 2

    def test_fill(self, m4):
        dist = BlockDistribution(8, 4)
        arr, res, ghosts = make_setup(m4, dist, [[7], [], [], []])
        ghosts.fill(3.5)
        assert ghosts.buf(0)[0] == 3.5

    def test_rank_checked(self, m4):
        dist = BlockDistribution(8, 4)
        arr, res, ghosts = make_setup(m4, dist, [[7], [], [], []])
        with pytest.raises(ValueError, match="out of range"):
            ghosts.buf(4)
