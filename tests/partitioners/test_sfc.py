"""Tests for the Morton space-filling-curve partitioner."""

import numpy as np
import pytest

from repro.partitioners import (
    PartitionProblem,
    edge_cut,
    get_partitioner,
    load_imbalance,
    morton_keys,
)
from tests.partitioners.test_partitioners import grid_problem


class TestMortonKeys:
    def test_orders_nearby_points_together(self):
        # four quadrant corners: z-order visits them in quadrant order
        coords = np.array([[0.0, 1.0, 0.0, 1.0], [0.0, 0.0, 1.0, 1.0]])
        keys = morton_keys(coords)
        assert keys[0] == keys.min()
        assert keys[3] == keys.max()

    def test_identical_points_identical_keys(self):
        coords = np.ones((3, 5))
        keys = morton_keys(coords)
        assert len(set(keys.tolist())) == 1

    def test_keys_deterministic(self):
        rng = np.random.default_rng(0)
        coords = rng.normal(size=(3, 50))
        assert np.array_equal(morton_keys(coords), morton_keys(coords))


class TestSFCPartitioner:
    def test_valid_balanced_partition(self):
        prob = grid_problem(12, 12)
        res = get_partitioner("SFC").partition(prob, 4)
        assert set(np.unique(res.owner_map)) == {0, 1, 2, 3}
        assert load_imbalance(res.owner_map, 4) <= 1.1

    def test_beats_random_on_cut(self):
        prob = grid_problem(16, 16, shuffle_seed=3)
        sfc = get_partitioner("SFC").partition(prob, 8)
        rnd = get_partitioner("RANDOM", seed=0).partition(prob, 8)
        assert edge_cut(prob.edges, sfc.owner_map) < 0.6 * edge_cut(
            prob.edges, rnd.owner_map
        )

    def test_between_block_and_rcb_in_quality(self):
        """SFC should be within shouting distance of RCB and far better
        than BLOCK on the shuffled grid."""
        prob = grid_problem(16, 16, shuffle_seed=3)
        cuts = {
            name: edge_cut(
                prob.edges, get_partitioner(name).partition(prob, 8).owner_map
            )
            for name in ("BLOCK", "SFC", "RCB")
        }
        assert cuts["SFC"] < cuts["BLOCK"] / 2
        assert cuts["SFC"] <= 2.0 * cuts["RCB"]

    def test_cheaper_than_rcb(self):
        prob = grid_problem(16, 16)
        sfc = get_partitioner("SFC").partition(prob, 8)
        rcb = get_partitioner("RCB").partition(prob, 8)
        assert sfc.sync_rounds < rcb.sync_rounds

    def test_weighted_balance(self):
        prob = grid_problem(10, 10)
        w = np.ones(100)
        w[:10] = 20.0
        prob = PartitionProblem(100, edges=prob.edges, coords=prob.coords, weights=w)
        res = get_partitioner("SFC").partition(prob, 4)
        assert load_imbalance(res.owner_map, 4, weights=w) <= 1.5

    def test_needs_geometry(self):
        with pytest.raises(ValueError, match="GEOMETRY"):
            get_partitioner("SFC").partition(PartitionProblem(10), 2)

    def test_single_part(self):
        prob = grid_problem(4, 4)
        res = get_partitioner("SFC").partition(prob, 1)
        assert np.all(res.owner_map == 0)

    def test_empty_problem(self):
        res = get_partitioner("SFC").partition(
            PartitionProblem(0, coords=np.zeros((2, 0))), 3
        )
        assert res.owner_map.size == 0
