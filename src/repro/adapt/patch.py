"""Patch a saved InspectorProduct instead of re-running the inspector.

Given the positions whose indirection values actually changed (from
``adapt.diff``), :func:`patch_product` produces an
:class:`~repro.core.inspector.InspectorProduct` equivalent to a fresh
inspection of the current arrays while charging the simulated machine
only for delta-proportional work:

1. **re-vote** -- only iterations whose reference targets changed can
   change home; their majority vote is recomputed and only *moved*
   iteration records are exchanged;
2. **reference diff** -- per pattern group, each delta iteration
   retires its old reference (classified local/ghost from the *saved*
   localized value, no translation needed) and adds its new one; only
   the added targets are translated, in one
   ``ttable.dereference_flat`` over the delta;
3. **slot update** -- per-slot reference counts absorb the delta;
   slots hitting zero retire in place (holes), new keys reuse holes
   then append (see the package docstring's layout contract);
4. **schedule + buffer patch** -- ``CommSchedule.patched`` retires dead
   entries and appends revived/new ones (pairs stay requester-major /
   owner-minor with elements key-sorted, matching a fresh ``localize``
   wire order exactly), and ``GhostBuffers.patched`` regrows the CSR
   backing copying retained slots; and
5. **localized-ref rebuild** -- unchanged references keep their saved
   localized values (slot positions are stable by construction) and are
   only permuted into the new iteration order; delta references get
   values from the delta translation.

The patched product's iteration partition, ghost key sets, schedule
pairs, send offsets and wire order equal a from-scratch inspection's;
executor results and executor charges are bit-identical.  Only the
*inspector-phase* charges differ -- that is the entire point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chaos.costs import ChaosCosts, DEFAULT_COSTS
from repro.chaos.localize import LocalizeResult, sorted_unique_inverse
from repro.chaos.ttable import TranslationTable
from repro.core.inspector import InspectorProduct, PatternData
from repro.core.iteration import (
    ITERATION_RECORD_BYTES,
    _majority_owner,
    method_refs,
    partition_from_home,
)
from repro.adapt.state import GroupState, LoopAdaptState, group_state_key, product_groups
from repro.distribution.distarray import DistArray
from repro.guard.errors import PatchAborted
from repro.machine.machine import Machine

#: integer ops per dirty element for the snapshot-vs-current compare
DIFF_IOPS_PER_ELEMENT = 2.0

_EMPTY = np.empty(0, dtype=np.int64)


class _PatchTranslationCache:
    """Per-patch dereference cache shared by the loop's pattern groups.

    Patterns of one loop overwhelmingly reference the same elements
    (``x(edge(i))`` and ``y(edge(i))`` share every target), so their
    unknown-delta translations are near-identical.  Within one patch the
    distributions are frozen, so a translation resolved for one group
    can be served to the next from a local cache: each processor pays a
    hash probe instead of a remote page request.  Keyed by distribution
    signature; one sorted composite-key array per signature.
    """

    def __init__(self) -> None:
        self._by_sig: dict[tuple, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

    def translate(
        self,
        machine: Machine,
        ttable: TranslationTable,
        stride: int,
        uniq_proc: np.ndarray,
        uniq_key: np.ndarray,
        costs: ChaosCosts,
    ) -> tuple[np.ndarray, np.ndarray]:
        """(owner, lidx) for per-proc-sorted unique (proc, key) pairs."""
        n = machine.n_procs
        sig = ttable.dist.signature()
        owner = np.empty(uniq_key.size, dtype=np.int64)
        lidx = np.empty(uniq_key.size, dtype=np.int64)
        comp = uniq_proc * stride + uniq_key
        cached = self._by_sig.get(sig)
        if cached is not None and cached[0].size:
            ccomp, cowner, clidx = cached
            pos = np.searchsorted(ccomp, comp)
            hit = (pos < ccomp.size) & (
                ccomp[np.minimum(pos, ccomp.size - 1)] == comp
            )
            # every processor probes its cache once per key
            machine.charge_compute_all(
                iops=costs.hash_lookup
                * np.bincount(uniq_proc, minlength=n).astype(np.float64)
            )
        else:
            hit = np.zeros(comp.size, dtype=bool)
        if hit.any():
            cpos = pos[hit]
            owner[hit] = cowner[cpos]
            lidx[hit] = clidx[cpos]
        miss = ~hit
        miss_key = uniq_key[miss]
        miss_proc = uniq_proc[miss]
        m_bounds = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(miss_proc, minlength=n), out=m_bounds[1:])
        mowner, mlidx = ttable.dereference_flat(miss_key, m_bounds)
        owner[miss] = mowner
        lidx[miss] = mlidx
        if miss.any():
            mcomp = comp[miss]
            if cached is None or not cached[0].size:
                merged = (mcomp, mowner, mlidx)
            else:
                allc = np.concatenate([cached[0], mcomp])
                order = np.argsort(allc, kind="stable")
                merged = (
                    allc[order],
                    np.concatenate([cached[1], mowner])[order],
                    np.concatenate([cached[2], mlidx])[order],
                )
            self._by_sig[sig] = merged
        return owner, lidx


@dataclass
class PatchResult:
    """The patched product plus delta statistics (benches report these)."""

    product: InspectorProduct
    n_changed_values: int = 0
    n_changed_iterations: int = 0
    n_moved_iterations: int = 0
    n_ghosts_added: int = 0
    n_ghosts_retired: int = 0
    n_slots_appended: int = 0
    per_group: dict = field(default_factory=dict)


def _revote(
    machine: Machine,
    loop,
    arrays: dict[str, DistArray],
    state: LoopAdaptState,
    changed_iters: np.ndarray,
    method: str,
    costs: ChaosCosts,
) -> tuple[np.ndarray, np.ndarray]:
    """Recompute homes for changed iterations; returns (home_new, moved).

    Uses the same reference selection as ``partition_iterations`` for
    ``method`` so the patched home map equals a fresh partitioning's.
    """
    home_old = state.home
    if not changed_iters.size:
        return home_old, _EMPTY
    refs = method_refs(loop, method)
    rows = []
    for ref in refs:
        dist = arrays[ref.array].distribution
        if ref.index is None:
            targets = changed_iters
        else:
            values = np.asarray(arrays[ref.index].global_view(), dtype=np.int64)
            targets = values[changed_iters]
        rows.append(np.asarray(dist.owner(targets), dtype=np.int64))
    vote = _majority_owner(rows)
    home_new = home_old.copy()
    home_new[changed_iters] = vote
    moved = changed_iters[vote != home_old[changed_iters]]
    # the old holder of each changed iteration re-examines it: one
    # translation probe + vote update per reference (the per-iteration
    # cost partition_iterations charges, restricted to the delta)
    machine.charge_compute_all(
        iops=np.bincount(home_old[changed_iters], minlength=machine.n_procs)
        * len(refs)
        * (costs.hash_lookup + 2.0)
    )
    if moved.size:
        n = machine.n_procs
        pairmat = np.zeros((n, n), dtype=np.int64)
        np.add.at(pairmat, (home_old[moved], home_new[moved]), 1)
        np.fill_diagonal(pairmat, 0)
        src, dst = np.nonzero(pairmat)
        machine.exchange(
            src=src, dst=dst, nbytes=pairmat[src, dst] * ITERATION_RECORD_BYTES
        )
    return home_new, moved


def _patch_group(
    machine: Machine,
    arrays: dict[str, DistArray],
    product: InspectorProduct,
    gstate: GroupState,
    member_keys: list,
    ttable: TranslationTable,
    changed: dict[str, np.ndarray],
    home_old: np.ndarray,
    home_new: np.ndarray,
    moved: np.ndarray,
    inv_old: np.ndarray,
    new_iter_flat: np.ndarray,
    new_bounds: np.ndarray,
    inv_new: np.ndarray,
    costs: ChaosCosts,
    trans_cache: "_PatchTranslationCache",
) -> tuple[dict, dict, GroupState] | None:
    """Patch one pattern group; returns (new PatternData by key, stats,
    updated GroupState to persist) or ``None`` when the group has no
    delta (saved data reusable as-is, iteration order unchanged).  Never
    mutates ``gstate`` -- the caller persists the returned state only
    after every group has succeeded."""
    n = machine.n_procs
    array_name = gstate.array
    arr = arrays[array_name]
    dist = arr.distribution
    first_loc = product.patterns[member_keys[0]].localized
    local_sizes = np.asarray(first_loc.local_sizes, dtype=np.int64)
    stride = max(dist.size, 1)

    # -- per-member deltas: retire old refs, collect new ones ------------
    member_D: list[np.ndarray] = []
    rem_slot_parts: list[np.ndarray] = []
    rem_proc_parts: list[np.ndarray] = []
    add_p_parts: list[np.ndarray] = []
    add_t_parts: list[np.ndarray] = []
    for akey in member_keys:
        ind = akey[1]
        if ind is None:
            D = moved
        else:
            ch = changed.get(ind, _EMPTY)
            D = np.union1d(moved, ch) if ch.size else moved
        member_D.append(D)
        if not D.size:
            add_p_parts.append(_EMPTY)
            add_t_parts.append(_EMPTY)
            continue
        p_old = home_old[D]
        lv = product.patterns[akey].localized.refs_flat[inv_old[D]]
        is_ghost = lv >= local_sizes[p_old]
        if is_ghost.any():
            gp = p_old[is_ghost]
            rem_slot_parts.append(
                gstate.slot_bounds[gp] + (lv[is_ghost] - local_sizes[gp])
            )
            rem_proc_parts.append(gp)
        t_new = D if ind is None else (
            np.asarray(arrays[ind].global_view(), dtype=np.int64)[D]
        )
        add_p_parts.append(home_new[D])
        add_t_parts.append(t_new)

    add_p = np.concatenate(add_p_parts) if add_p_parts else _EMPTY
    if not add_p.size and not rem_slot_parts:
        return None
    add_t = np.concatenate(add_t_parts) if add_t_parts else _EMPTY
    rem_slots = (
        np.concatenate(rem_slot_parts) if rem_slot_parts else _EMPTY
    )
    rem_procs = (
        np.concatenate(rem_proc_parts) if rem_proc_parts else _EMPTY
    )

    # -- classify the added references locally ---------------------------
    # Each requester probes its own membership table (a processor always
    # knows which globals it owns): local targets resolve to their local
    # offset on the spot, everything else is a ghost candidate.  Charged
    # as one replicated-table-style probe per added reference.
    if add_t.size:
        owners_add = np.asarray(dist.owner(add_t), dtype=np.int64)
        lidx_add = np.asarray(dist.local_index(add_t), dtype=np.int64)
    else:
        owners_add = _EMPTY
        lidx_add = _EMPTY
    ghost_mask = owners_add != add_p
    machine.charge_compute_all(
        iops=costs.translate_replicated
        * np.bincount(add_p, minlength=n).astype(np.float64)
    )

    # -- slot count update: retire / revive / insert ---------------------
    # work on a copy: gstate must stay untouched until the whole patch
    # succeeds (patch_product persists all groups together at the end),
    # so a mid-patch exception leaves state consistent with the old
    # product and a later attempt can still patch or fall back cleanly
    counts_entry = gstate.counts
    counts = counts_entry.copy()
    if rem_slots.size:
        np.add.at(counts, rem_slots, -1)
    gidx = np.flatnonzero(ghost_mask)
    comp = add_p[gidx] * stride + add_t[gidx]
    slot_proc_old = gstate.slot_proc()
    mcomp = slot_proc_old * stride + gstate.keys
    morder = np.argsort(mcomp, kind="stable")
    msorted = mcomp[morder]
    if msorted.size:
        pos = np.searchsorted(msorted, comp)
        found = (pos < msorted.size) & (
            msorted[np.minimum(pos, msorted.size - 1)] == comp
        )
        found_slots = morder[pos[found]]
    else:
        # a group can start with zero tracked ghosts (fully local at
        # inspection); every ghost add is then a never-seen key
        found = np.zeros(comp.size, dtype=bool)
        found_slots = _EMPTY
    if found_slots.size:
        np.add.at(counts, found_slots, 1)
    if counts.size and counts.min() < 0:
        raise PatchAborted(
            f"adapt: negative reference count patching group "
            f"{array_name}/{gstate.indexes} -- state out of sync"
        )
    went_dead = np.flatnonzero((counts_entry > 0) & (counts == 0))
    revived = np.flatnonzero((counts_entry == 0) & (counts > 0))

    # -- translate only the *unknown* delta ------------------------------
    # Ghost adds hitting a tracked slot (live or hole) reuse the saved
    # (owner, local offset): the runtime recorded them at the last
    # inspection and conditions 1-2 guarantee they are still valid.
    # Only never-before-seen keys dereference through the translation
    # table -- one dereference_flat over that (typically tiny) set, the
    # only remote-translation traffic a patch pays.
    comp_missing = comp[~found]
    uniq_comp, inv_missing = sorted_unique_inverse(comp_missing)
    uniq_proc = uniq_comp // stride
    uniq_key = uniq_comp % stride
    n_uniq = uniq_comp.size
    need = np.bincount(uniq_proc, minlength=n)
    uniq_owner, uniq_lidx = trans_cache.translate(
        machine, ttable, stride, uniq_proc, uniq_key, costs
    )

    # -- allocate slots: reuse holes ascending, then append --------------
    old_bounds = gstate.slot_bounds
    old_sizes = np.diff(old_bounds)
    free_slots = np.flatnonzero(counts == 0)
    free_proc = slot_proc_old[free_slots]
    free_bounds = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(free_proc, minlength=n), out=free_bounds[1:])
    frank = np.arange(free_slots.size, dtype=np.int64) - free_bounds[free_proc]
    usable = frank < need[free_proc]
    reused = free_slots[usable]
    reused_proc = free_proc[usable]
    n_reuse = np.bincount(reused_proc, minlength=n)
    n_append = need - n_reuse
    new_sizes = old_sizes + n_append
    slot_bounds_new = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(new_sizes, out=slot_bounds_new[1:])
    shift = slot_bounds_new[:-1] - old_bounds[:-1]

    # remap old per-slot arrays into the grown slot space
    s_new_total = int(slot_bounds_new[-1])
    newpos_of_old = np.arange(old_bounds[-1], dtype=np.int64) + shift[slot_proc_old]
    keys2 = np.full(s_new_total, -1, dtype=np.int64)
    owners2 = np.zeros(s_new_total, dtype=np.int64)
    lidx2 = np.zeros(s_new_total, dtype=np.int64)
    counts2 = np.zeros(s_new_total, dtype=np.int64)
    if newpos_of_old.size:
        keys2[newpos_of_old] = gstate.keys
        owners2[newpos_of_old] = gstate.owners
        lidx2[newpos_of_old] = gstate.lidx
        counts2[newpos_of_old] = counts

    # assign each unique new key a slot (per proc: reused asc, then appended)
    uniq_bounds = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(need, out=uniq_bounds[1:])
    urank = np.arange(n_uniq, dtype=np.int64) - uniq_bounds[uniq_proc]
    take_reuse = urank < n_reuse[uniq_proc]
    reuse_bounds = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(n_reuse, out=reuse_bounds[1:])
    reused_new = reused + shift[reused_proc]
    alloc = np.empty(n_uniq, dtype=np.int64)
    if take_reuse.any():
        tp = uniq_proc[take_reuse]
        alloc[take_reuse] = reused_new[reuse_bounds[tp] + urank[take_reuse]]
    grow = ~take_reuse
    if grow.any():
        gp = uniq_proc[grow]
        alloc[grow] = (
            slot_bounds_new[gp] + old_sizes[gp] + (urank[grow] - n_reuse[gp])
        )
    keys2[alloc] = uniq_key
    owners2[alloc] = uniq_owner
    lidx2[alloc] = uniq_lidx
    if inv_missing.size:
        np.add.at(counts2, alloc[inv_missing], 1)

    # resolved (new-space) slot per ghost add
    slot_of_ghost_add = np.empty(comp.size, dtype=np.int64)
    slot_of_ghost_add[found] = found_slots + shift[add_p[gidx[found]]]
    slot_of_ghost_add[~found] = alloc[inv_missing]

    # -- schedule patch: retire dead entries, append revived + new -------
    old_schedule = first_loc.schedule
    eq, ep, _esend, erecv = old_schedule.entries()
    entry_slot = old_bounds[ep] + erecv
    dead_mask = np.zeros(int(old_bounds[-1]), dtype=bool)
    dead_mask[went_dead] = True
    keep = ~dead_mask[entry_slot]
    sched_add_slots = np.concatenate(
        [revived + shift[slot_proc_old[revived]], alloc]
    )
    add_slot_proc = (
        np.searchsorted(slot_bounds_new, sched_add_slots, side="right") - 1
    )
    schedule_new = old_schedule.patched(
        keep,
        add_q=owners2[sched_add_slots],
        add_p=add_slot_proc,
        add_send=lidx2[sched_add_slots],
        add_recv=sched_add_slots - slot_bounds_new[add_slot_proc],
        ghost_sizes=[int(s) for s in new_sizes],
        keep_key=gstate.keys[entry_slot],
        add_key=keys2[sched_add_slots],
    )
    ghosts_new = product.patterns[member_keys[0]].ghosts.patched(
        schedule_new, costs=costs, appended=need
    )

    # -- charge the delta-proportional inspector work --------------------
    n_add_per_proc = np.bincount(add_p, minlength=n).astype(np.float64)
    n_rem_per_proc = np.bincount(rem_procs, minlength=n).astype(np.float64)
    new_per_proc = need.astype(np.float64)
    dead_per_proc = np.bincount(
        slot_proc_old[went_dead], minlength=n
    ).astype(np.float64)
    revived_per_proc = np.bincount(
        slot_proc_old[revived], minlength=n
    ).astype(np.float64)
    sched_delta_per_proc = dead_per_proc + revived_per_proc + new_per_proc
    machine.charge_compute_all(
        iops=(
            costs.hash_lookup * (n_add_per_proc + n_rem_per_proc)
            + costs.hash_insert * new_per_proc
            + costs.schedule_build * sched_delta_per_proc
        )
    )
    # requesters tell owners which send-list entries to add/retire
    d_p = np.concatenate(
        [slot_proc_old[went_dead], slot_proc_old[revived], uniq_proc]
    )
    d_q = np.concatenate(
        [gstate.owners[went_dead], gstate.owners[revived], uniq_owner]
    )
    if d_p.size:
        pcomp, pinv = sorted_unique_inverse(d_p * n + d_q)
        pcounts = np.bincount(pinv, minlength=pcomp.size)
        pp, pq = pcomp // n, pcomp % n
        cross = pp != pq
        machine.exchange(
            src=pp[cross],
            dst=pq[cross],
            nbytes=pcounts[cross] * costs.index_bytes,
        )
        machine.charge_compute_all(
            iops=costs.schedule_build
            * np.bincount(d_q, minlength=n).astype(np.float64)
        )

    # -- rebuild per-member localized reference lists --------------------
    old_to_new = inv_old[new_iter_flat]
    ghost_flat = keys2.copy()
    ghost_flat[counts2 == 0] = -1
    patterns_new: dict = {}
    offset = 0
    for akey, D in zip(member_keys, member_D):
        pat = product.patterns[akey]
        new_loc_refs = pat.localized.refs_flat[old_to_new]
        n_d = D.size
        if n_d:
            seg = slice(offset, offset + n_d)
            p_seg = add_p[seg]
            vals = lidx_add[seg].copy()
            gm = ghost_mask[seg]
            if gm.any():
                # this member's ghost adds located inside the group-level
                # ghost-add stream (gidx is sorted add-stream positions)
                member_ghost = offset + np.flatnonzero(gm)
                slots = slot_of_ghost_add[np.searchsorted(gidx, member_ghost)]
                vals[gm] = local_sizes[p_seg[gm]] + (
                    slots - slot_bounds_new[p_seg[gm]]
                )
            new_loc_refs[inv_new[D]] = vals
        offset += n_d
        loc_new = LocalizeResult(
            local_sizes=[int(s) for s in local_sizes],
            schedule=schedule_new,
            refs_flat=new_loc_refs,
            ref_bounds=new_bounds,
            ghost_flat=ghost_flat,
            ghost_bounds=slot_bounds_new,
        )
        patterns_new[akey] = PatternData(
            array=array_name, index=akey[1], localized=loc_new, ghosts=ghosts_new
        )

    # the updated slot space, applied by the caller once every group
    # has patched successfully (atomicity: see counts copy above)
    new_state = GroupState(
        array=gstate.array,
        indexes=gstate.indexes,
        slot_bounds=slot_bounds_new,
        keys=keys2,
        owners=owners2,
        lidx=lidx2,
        counts=counts2,
    )
    stats = {
        "added": int(ghost_mask.sum()),
        "retired": int(went_dead.size),
        "revived": int(revived.size),
        "new_unique": int(n_uniq),
        "appended": int(n_append.sum()),
    }
    return patterns_new, stats, new_state


def patch_product(
    machine: Machine,
    product: InspectorProduct,
    arrays: dict[str, DistArray],
    state: LoopAdaptState,
    changed: dict[str, np.ndarray],
    ttables: dict[tuple[str, tuple], TranslationTable],
    costs: ChaosCosts = DEFAULT_COSTS,
) -> PatchResult:
    """Patch ``product`` for the given changed indirection positions.

    ``changed`` maps indirection array name -> sorted positions whose
    values differ from ``state.snapshots`` (from
    :func:`~repro.adapt.diff.changed_positions`; diff charges are the
    caller's).  Preconditions (the caller -- the driver -- verifies
    them): every data/indirection DAD equals the product's, and
    ``ttables`` holds the translation table of every referenced array's
    current distribution.  Mutates ``state`` (home map, snapshots,
    group slot spaces) to describe the patched product.
    """
    loop = product.loop
    n_procs = machine.n_procs

    parts = [c for c in changed.values() if c.size]
    changed_iters = (
        np.unique(np.concatenate(parts)) if parts else _EMPTY
    )
    home_old = state.home
    old_part = product.iteration_partition
    home_new, moved = _revote(
        machine, loop, arrays, state, changed_iters, old_part.method, costs
    )
    old_iter_flat, _old_bounds = old_part.iters_flat()
    n = loop.n_iterations
    inv_old = np.empty(n, dtype=np.int64)
    inv_old[old_iter_flat] = np.arange(n, dtype=np.int64)
    if moved.size:
        new_part = partition_from_home(home_new, n_procs, old_part.method)
    else:
        new_part = old_part
    new_iter_flat, new_bounds = new_part.iters_flat()
    inv_new = np.empty(n, dtype=np.int64)
    inv_new[new_iter_flat] = np.arange(n, dtype=np.int64)

    result = PatchResult(
        product=product,
        n_changed_values=sum(int(c.size) for c in changed.values()),
        n_changed_iterations=int(changed_iters.size),
        n_moved_iterations=int(moved.size),
    )

    patterns_new: dict = dict(product.patterns)
    pending_states: dict = {}
    any_patched = False
    trans_cache = _PatchTranslationCache()
    for member_keys in product_groups(product):
        gkey = group_state_key(member_keys)
        gstate = state.groups[gkey]
        arr = arrays[gstate.array]
        tkey = (gstate.array, arr.distribution.signature())
        ttable = ttables[tkey]
        try:
            out = _patch_group(
                machine,
                arrays,
                product,
                gstate,
                member_keys,
                ttable,
                changed,
                home_old,
                home_new,
                moved,
                inv_old,
                new_iter_flat,
                new_bounds,
                inv_new,
                costs,
                trans_cache,
            )
        except ValueError as exc:
            # schedule/buffer assembly rejected the delta (shrunk ghost
            # region, mismatched shapes): the saved state disagrees with
            # the product -- a recoverable abort, nothing persisted yet
            raise PatchAborted(
                f"adapt: patch assembly failed for group {gkey}: {exc}"
            ) from exc
        if out is None:
            continue
        group_patterns, stats, new_gstate = out
        patterns_new.update(group_patterns)
        pending_states[gkey] = new_gstate
        result.per_group[gkey] = stats
        result.n_ghosts_added += stats["revived"] + stats["new_unique"]
        result.n_ghosts_retired += stats["retired"]
        result.n_slots_appended += stats["appended"]
        any_patched = True

    # every group patched without error: persist the new slot spaces
    for gkey, new_gstate in pending_states.items():
        state.groups[gkey] = new_gstate

    machine.barrier()

    # update snapshots at the changed positions only (owners re-copy them)
    snap_mem = np.zeros(n_procs)
    for name, pos in changed.items():
        if not pos.size:
            continue
        cur = np.asarray(arrays[name].global_view(), dtype=np.int64)
        state.snapshots[name][pos] = cur[pos]
        owners = np.asarray(arrays[name].distribution.owner(pos), dtype=np.int64)
        snap_mem += np.bincount(owners, minlength=n_procs).astype(np.float64)
    if snap_mem.any():
        machine.charge_compute_all(mem=snap_mem)

    state.home = home_new
    if not any_patched and new_part is old_part:
        # value rewrites that cancelled out: nothing to patch
        return result
    result.product = InspectorProduct(
        loop=loop,
        iteration_partition=new_part,
        patterns=patterns_new,
        dist_signatures=dict(product.dist_signatures),
    )
    return result
