"""Tests for DistArray and Decomposition."""

import numpy as np
import pytest

from repro.distribution import (
    BlockDistribution,
    CyclicDistribution,
    Decomposition,
    DistArray,
    IrregularDistribution,
)
from repro.machine import Machine


@pytest.fixture
def m4():
    return Machine(4)


class TestDistArray:
    def test_from_global_round_trip(self, m4):
        vals = np.arange(10.0)
        d = BlockDistribution(10, 4)
        arr = DistArray.from_global(m4, d, vals)
        assert np.array_equal(arr.to_global(), vals)

    def test_local_segments_match_distribution(self, m4):
        vals = np.arange(10.0)
        arr = DistArray.from_global(m4, CyclicDistribution(10, 4), vals)
        assert arr.local(1).tolist() == [1.0, 5.0, 9.0]

    def test_fill_constructor(self, m4):
        arr = DistArray(m4, BlockDistribution(8, 4), dtype=np.int64, fill=7)
        assert np.array_equal(arr.to_global(), np.full(8, 7))

    def test_machine_size_mismatch(self, m4):
        with pytest.raises(ValueError, match="spans 8 processors"):
            DistArray(m4, BlockDistribution(8, 8))

    def test_size_mismatch(self, m4):
        with pytest.raises(ValueError, match="value count"):
            DistArray.from_global(m4, BlockDistribution(8, 4), np.arange(9.0))

    def test_2d_rejected(self, m4):
        with pytest.raises(ValueError, match="1-D"):
            DistArray.from_global(m4, BlockDistribution(4, 4), np.ones((2, 2)))

    def test_global_get(self, m4):
        vals = np.arange(10.0) * 3
        arr = DistArray.from_global(m4, CyclicDistribution(10, 4), vals)
        got = arr.global_get([9, 0, 4])
        assert got.tolist() == [27.0, 0.0, 12.0]

    def test_global_set(self, m4):
        arr = DistArray(m4, BlockDistribution(10, 4))
        arr.global_set([2, 7], [5.0, 9.0])
        g = arr.to_global()
        assert g[2] == 5.0 and g[7] == 9.0 and g.sum() == 14.0

    def test_accessors_charge_nothing(self, m4):
        arr = DistArray.from_global(m4, BlockDistribution(10, 4), np.arange(10.0))
        arr.global_get([1, 2])
        arr.to_global()
        assert m4.elapsed() == 0.0

    def test_local_view_is_live(self, m4):
        arr = DistArray.from_global(m4, BlockDistribution(8, 4), np.zeros(8))
        arr.local(0)[:] = 5.0
        assert arr.to_global()[:2].tolist() == [5.0, 5.0]

    def test_unique_uids_and_default_names(self, m4):
        a = DistArray(m4, BlockDistribution(4, 4))
        b = DistArray(m4, BlockDistribution(4, 4))
        assert a.uid != b.uid
        assert a.name != b.name

    def test_local_rank_checked(self, m4):
        arr = DistArray(m4, BlockDistribution(4, 4))
        with pytest.raises(ValueError, match="out of range"):
            arr.local(4)


class TestRebind:
    def test_rebind_swaps_distribution(self, m4):
        vals = np.arange(8.0)
        arr = DistArray.from_global(m4, BlockDistribution(8, 4), vals)
        new = IrregularDistribution([3, 3, 2, 2, 1, 1, 0, 0], 4)
        segs = [vals[new.local_indices(p)] for p in range(4)]
        arr.rebind(new, segs)
        assert arr.distribution is new
        assert np.array_equal(arr.to_global(), vals)

    def test_rebind_checks_segment_shapes(self, m4):
        arr = DistArray.from_global(m4, BlockDistribution(8, 4), np.arange(8.0))
        new = BlockDistribution(8, 4)
        bad = [np.zeros(3)] * 4
        with pytest.raises(ValueError, match="segment for processor 0"):
            arr.rebind(new, bad)

    def test_rebind_rejects_size_change(self, m4):
        arr = DistArray.from_global(m4, BlockDistribution(8, 4), np.arange(8.0))
        with pytest.raises(ValueError, match="changed array size"):
            arr.rebind(BlockDistribution(9, 4), [np.zeros(3)] * 4)


class TestDecomposition:
    def test_distribute_then_align(self, m4):
        dec = Decomposition("reg", 10)
        dist = BlockDistribution(10, 4)
        dec.distribute(dist)
        arr = DistArray(m4, dist, name="x")
        dec.align(arr)
        assert arr.decomposition is dec
        assert dec.arrays == [arr]

    def test_align_before_distribute_fails(self, m4):
        dec = Decomposition("reg", 10)
        arr = DistArray(m4, BlockDistribution(10, 4))
        with pytest.raises(ValueError, match="no distribution"):
            dec.align(arr)

    def test_align_size_mismatch(self, m4):
        dec = Decomposition("reg", 10)
        dec.distribute(BlockDistribution(10, 4))
        arr = DistArray(m4, BlockDistribution(8, 4))
        with pytest.raises(ValueError, match="has size 8"):
            dec.align(arr)

    def test_align_distribution_mismatch(self, m4):
        dec = Decomposition("reg", 10)
        dec.distribute(BlockDistribution(10, 4))
        arr = DistArray(m4, CyclicDistribution(10, 4))
        with pytest.raises(ValueError, match="differs"):
            dec.align(arr)

    def test_distribute_size_mismatch(self):
        dec = Decomposition("reg", 10)
        with pytest.raises(ValueError, match="size 8"):
            dec.distribute(BlockDistribution(8, 4))

    def test_align_idempotent(self, m4):
        dec = Decomposition("reg", 10)
        dist = BlockDistribution(10, 4)
        dec.distribute(dist)
        arr = DistArray(m4, dist)
        dec.align(arr)
        dec.align(arr)
        assert dec.arrays == [arr]

    def test_unalign(self, m4):
        dec = Decomposition("reg", 10)
        dist = BlockDistribution(10, 4)
        dec.distribute(dist)
        arr = DistArray(m4, dist)
        dec.align(arr)
        dec.unalign(arr)
        assert dec.arrays == [] and arr.decomposition is None
        with pytest.raises(ValueError, match="not aligned"):
            dec.unalign(arr)
