"""Worker-side job execution: build, drive, checkpoint, resume.

:func:`run_job` turns one :class:`~repro.serve.config.JobConfig` into a
finished result dict.  It is deliberately process-agnostic -- the
service runs it inside worker subprocesses, tests call it inline -- and
carries the whole fault-tolerance story of a single attempt:

* every ``checkpoint_every`` steps the full program + driver state is
  saved through ``repro.guard.checkpoint`` (crash-safe, rotated);
* when a checkpoint exists at start (this attempt is a retry of a
  crashed one), the job **resumes** from it instead of starting over --
  falling back to the rotated ``.prev`` generation when the primary is
  damaged -- and continues bit-identically with an uninterrupted run;
* scripted host faults (``crash_at_step`` & co.) kill the process the
  way the chaos harness needs: after the step completes, so the
  supervisor sees a mid-job worker death with a checkpoint on disk.

The result's :func:`bit_identity` projection (simulated totals, counter
CRCs, array CRCs, inspection mode counts) is the service's correctness
contract: it must be byte-for-byte identical no matter how many crashes,
resumes and recovered data faults the attempt history contains.
"""

from __future__ import annotations

import os
import zlib

import numpy as np

from repro.adapt.driver import AdaptiveExecutor
from repro.guard.checkpoint import load_checkpoint, previous_checkpoint_path
from repro.guard.errors import CheckpointError
from repro.guard.faults import FaultPlan
from repro.machine.machine import Machine
from repro.machine.stats import COUNTER_FIELDS
from repro.serve.config import JobConfig
from repro.workloads.adaptive import apply_adaptation, build_refinement_schedule
from repro.workloads.euler import euler_edge_loop, setup_euler_program
from repro.workloads.mesh import generate_mesh
from repro.workloads.rebalance import drifting_weights, rebalance_moves

#: result fields that must be bit-identical across every fault history
BIT_IDENTITY_FIELDS = (
    "workload",
    "scenario",
    "steps",
    "simulated_total",
    "counter_crcs",
    "array_crcs",
    "mode_counts",
)

#: FaultPlan kinds run_job accepts in ``config.faults`` -- the
#: recoverable ones whose detection + repair leaves simulated counters
#: and array contents untouched
FAULT_KINDS = (
    "corrupt_gather",
    "duplicate_gather",
    "drop_gather",
    "corrupt_remap",
    "duplicate_remap",
    "drop_remap",
    "flip_remap",
)


def bit_identity(result: dict) -> dict:
    """The projection of a result that fault tolerance must preserve."""
    return {k: result[k] for k in BIT_IDENTITY_FIELDS}


def build_fault_plan(config: JobConfig) -> FaultPlan | None:
    """Translate ``config.faults`` pairs into an installed-ready plan."""
    if not config.faults:
        return None
    plan = FaultPlan(seed=config.seed)
    for kind, nth in config.faults:
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown/unrecoverable fault kind {kind!r}; "
                f"choose from {FAULT_KINDS}"
            )
        getattr(plan, kind)(nth=int(nth))
    return plan


class _Scenario:
    """Per-step mutation stream of one job, derivable from the config.

    ``mutate(prog, step)`` applies whatever adaptation precedes ``step``
    (0-based); it must be a pure function of (config, step, current
    program state) so that a resumed attempt replays the identical
    stream.  ``replay_distributions`` brings a *fresh* program's
    distributions to their state after ``steps_done`` steps -- required
    before ``restore_checkpoint``, which validates distribution
    signatures (array contents and counters are then overwritten by the
    restore, so replay charges are discarded).
    """

    def __init__(self, config: JobConfig, mesh):
        self.config = config
        self.mesh = mesh
        if config.scenario == "adapt":
            n_events = self._n_events(config.steps)
            self.schedule = build_refinement_schedule(
                mesh, config.fraction, max(n_events, 1), seed=config.seed
            )

    def _n_events(self, steps: int) -> int:
        k = self.config.adapt_every
        return len([i for i in range(steps) if i > 0 and i % k == 0])

    def _event_index(self, step: int) -> int | None:
        k = self.config.adapt_every
        if step > 0 and step % k == 0:
            return step // k - 1
        return None

    def mutate(self, prog, step: int) -> None:
        epoch = self._event_index(step)
        if epoch is None:
            return
        if self.config.scenario == "adapt":
            apply_adaptation(prog, self.schedule.updates[epoch])
        elif self.config.scenario == "rebalance":
            self._rebalance(prog, epoch)

    def _rebalance(self, prog, epoch: int) -> None:
        dist = prog.decomps["reg"].distribution
        w = drifting_weights(self.mesh, epoch, seed=self.config.seed)
        move_g, move_to = rebalance_moves(dist, w, slack=self.config.slack)
        if move_g.size:
            prog.redistribute("reg", moved=(move_g, move_to))

    def replay_distributions(self, prog, steps_done: int) -> None:
        if self.config.scenario != "rebalance":
            return  # sweep/adapt never change a distribution
        for step in range(steps_done):
            epoch = self._event_index(step)
            if epoch is not None:
                self._rebalance(prog, epoch)


def _build(config: JobConfig):
    mesh = generate_mesh(config.n_nodes, seed=config.seed)
    machine = Machine(config.n_procs)
    plan = build_fault_plan(config)
    if plan is not None:
        plan.install(machine)
    prog = setup_euler_program(
        machine, mesh, seed=config.seed, incremental=True, guard=config.guard
    )
    prog.construct("G", mesh.n_nodes, geometry=["xc", "yc", "zc"][: mesh.ndim])
    prog.set_distribution("fmt", "G", config.partitioner)
    prog.redistribute("reg", "fmt")
    loop = euler_edge_loop(mesh)
    return mesh, machine, prog, loop, plan


def _select_checkpoint(path: str) -> tuple[str, str] | None:
    """Which checkpoint generation to resume from, if any.

    Returns ``(file, source)`` with ``source`` in ``{"primary", "prev"}``,
    or ``None`` when no usable checkpoint exists (fresh start).  A
    damaged primary falls back to the rotated ``.prev``; both damaged
    means the retry starts from scratch rather than failing -- losing
    progress is a degradation, not an error.
    """
    candidates = [(path, "primary"), (previous_checkpoint_path(path), "prev")]
    for file, source in candidates:
        if not os.path.exists(file):
            continue
        try:
            load_checkpoint(file)
        except CheckpointError:
            continue
        return file, source
    return None


def run_job(
    config: JobConfig,
    checkpoint_path: str | None = None,
    attempt: int = 1,
    heartbeat=None,
) -> dict:
    """Execute one attempt of ``config``; returns the result dict.

    ``heartbeat(step)``, when given, is called after every completed
    step -- the worker wires it to its supervisor pipe so hangs are
    detectable.  ``attempt`` is 1-based; host crash scripting only fires
    while ``attempt <= config.crash_attempts``.
    """
    from repro.guard.checkpoint import restore_checkpoint

    mesh, machine, prog, loop, _plan = _build(config)
    exe = AdaptiveExecutor(prog, loop)
    scenario = _Scenario(config, mesh)

    start_step = 0
    resume_source = None
    if checkpoint_path is not None:
        selected = _select_checkpoint(checkpoint_path)
        if selected is not None:
            file, resume_source = selected
            steps_done = len(load_checkpoint(file)["driver"]["history"])
            scenario.replay_distributions(prog, steps_done)
            restore_checkpoint(file, prog, {loop.name: loop}, driver=exe)
            start_step = steps_done

    for step in range(start_step, config.steps):
        scenario.mutate(prog, step)
        exe.step()
        if heartbeat is not None:
            heartbeat(step)
        if config.step_delay_s:
            import time

            time.sleep(config.step_delay_s)
        checkpointed = (
            checkpoint_path is not None
            and config.checkpoint_every
            and (step + 1) % config.checkpoint_every == 0
        )
        if checkpointed:
            exe.checkpoint(checkpoint_path)
        crash_due = (
            config.crash_at_step is not None
            and step >= config.crash_at_step
            and attempt <= config.crash_attempts
        )
        if crash_due:
            if config.corrupt_checkpoint_on_crash and checkpoint_path and (
                os.path.exists(checkpoint_path)
            ):
                _flip_byte(checkpoint_path)
            # die the way SIGKILL looks to the supervisor: no cleanup,
            # no exception propagation, pipe EOF
            os._exit(17)

    return _result(config, machine, prog, exe, attempt, start_step, resume_source)


def _flip_byte(path: str) -> None:
    """Damage a file mid-byte (chaos scripting for torn checkpoints)."""
    with open(path, "r+b") as f:
        f.seek(os.path.getsize(path) // 2)
        b = f.read(1)
        f.seek(-1, os.SEEK_CUR)
        f.write(bytes([b[0] ^ 0xFF]))


def _result(
    config, machine, prog, exe, attempt, start_step, resume_source
) -> dict:
    counter_crcs = {
        name: zlib.crc32(
            np.ascontiguousarray(getattr(machine.counters, name)).tobytes()
        )
        for name in COUNTER_FIELDS
    }
    array_crcs = {
        name: zlib.crc32(np.ascontiguousarray(arr.to_global()).tobytes())
        for name, arr in sorted(prog.arrays.items())
    }
    return {
        "workload": config.workload,
        "scenario": config.scenario,
        "steps": config.steps,
        "simulated_total": float(machine.elapsed()),
        "counter_crcs": counter_crcs,
        "array_crcs": array_crcs,
        "mode_counts": exe.mode_counts(),
        # attempt-history fields: NOT part of the bit-identity contract
        "attempt": attempt,
        "start_step": start_step,
        "resumed": resume_source is not None,
        "resume_source": resume_source,
        "n_guard_events": len(prog.guard_events),
        "n_faults_fired": (
            0 if machine.faults is None else len(machine.faults.fired)
        ),
    }
