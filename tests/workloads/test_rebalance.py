"""Rebalance campaign: incremental remap matches full rebuild bit for bit."""

import numpy as np
import pytest

from repro.workloads import generate_mesh
from repro.workloads.rebalance import (
    drifting_weights,
    rebalance_moves,
    run_rebalance_campaign,
    setup_rebalance_program,
)
from repro.machine import Machine

N_PROCS = 4
EPOCHS = 3


@pytest.fixture(scope="module")
def mesh():
    return generate_mesh(300, seed=3)


@pytest.fixture(scope="module")
def campaigns(mesh):
    full = run_rebalance_campaign(
        mesh, N_PROCS, epochs=EPOCHS, sweeps=1, incremental=False, seed=5
    )
    inc = run_rebalance_campaign(
        mesh, N_PROCS, epochs=EPOCHS, sweeps=1, incremental=True, seed=5
    )
    return full, inc


def remap_records(machine):
    return [r for r in machine.stats.phases if r.name == "remap"]


class TestRebalanceMoves:
    def test_moves_restore_balance(self, mesh):
        machine = Machine(N_PROCS)
        prog = setup_rebalance_program(machine, mesh, seed=5)
        dist = prog.decomps["reg"].distribution
        w = drifting_weights(mesh, 0, seed=5)
        move_g, move_to = rebalance_moves(dist, w, slack=0.05)
        assert move_g.size > 0
        loads = np.bincount(
            np.asarray(dist.owner(np.arange(mesh.n_nodes))),
            weights=w,
            minlength=N_PROCS,
        )
        new_owner = np.asarray(dist.owner(np.arange(mesh.n_nodes)))
        new_owner[move_g] = move_to
        new_loads = np.bincount(new_owner, weights=w, minlength=N_PROCS)
        assert new_loads.max() < loads.max()

    def test_moves_are_deterministic(self, mesh):
        machine = Machine(N_PROCS)
        prog = setup_rebalance_program(machine, mesh, seed=5)
        dist = prog.decomps["reg"].distribution
        w = drifting_weights(mesh, 1, seed=5)
        a = rebalance_moves(dist, w)
        b = rebalance_moves(dist, w)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_move_count_scales_with_imbalance_not_size(self, mesh):
        machine = Machine(N_PROCS)
        prog = setup_rebalance_program(machine, mesh, seed=5)
        dist = prog.decomps["reg"].distribution
        w = drifting_weights(mesh, 0, seed=5)
        move_g, _ = rebalance_moves(dist, w, slack=0.05)
        assert move_g.size < mesh.n_nodes // 4


class TestCampaignEquivalence:
    def test_array_contents_bit_identical(self, campaigns):
        (m_f, p_f, mv_f), (m_i, p_i, mv_i) = campaigns
        assert mv_f == mv_i
        assert all(n > 0 for n in mv_f)
        for name in p_f.arrays:
            assert np.array_equal(
                p_f.arrays[name].to_global(), p_i.arrays[name].to_global()
            ), name
            # identical flat backing too: both modes land on the same
            # repartition_stable layout, not merely the same values
            assert np.array_equal(
                p_f.arrays[name].backing_ro, p_i.arrays[name].backing_ro
            ), name

    def test_distributions_identical(self, campaigns):
        (_, p_f, _), (_, p_i, _) = campaigns
        assert (
            p_f.decomps["reg"].distribution.signature()
            == p_i.decomps["reg"].distribution.signature()
        )

    def test_non_remap_phases_equal(self, campaigns):
        # same simulated work outside the remap phase: elapsed values
        # agree to the last few ulps (the differing remap charges shift
        # the absolute clock each phase delta is computed against, so
        # exact float equality is not achievable)
        (m_f, _, _), (m_i, _, _) = campaigns
        other_f = [r for r in m_f.stats.phases if r.name != "remap"]
        other_i = [r for r in m_i.stats.phases if r.name != "remap"]
        assert len(other_f) == len(other_i)
        for ra, rb in zip(other_f, other_i):
            assert ra.name == rb.name
            assert abs(ra.elapsed - rb.elapsed) < 1e-12

    def test_incremental_remap_cheaper_every_epoch(self, campaigns, mesh):
        (m_f, _, _), (m_i, _, _) = campaigns
        rec_f, rec_i = remap_records(m_f), remap_records(m_i)
        # record 0 is the initial RCB redistribute (same path both
        # modes); the rest are the per-epoch rebalances
        assert len(rec_f) == len(rec_i) == 1 + EPOCHS
        assert rec_f[0].elapsed == rec_i[0].elapsed
        for ra, rb in zip(rec_f[1:], rec_i[1:]):
            assert rb.elapsed < ra.elapsed

    def test_remap_cost_proportional_to_delta(self, campaigns, mesh):
        (_, _, moves), (m_i, _, _) = campaigns
        rec = remap_records(m_i)[1:]
        # simulated patched-remap time per moved element should be flat
        # across epochs (within noise): cost tracks the delta
        per_move = [r.elapsed / n for r, n in zip(rec, moves)]
        assert max(per_move) < 10 * min(per_move)
