"""Unparser: AST -> directive-dialect source.

Used by diagnostics and by the parser round-trip property tests
(``parse(pretty(ast))`` must reproduce ``ast``).  Output is valid input
for :func:`repro.lang.parser.parse`; operator precedence is preserved by
parenthesizing every non-atomic operand.
"""

from __future__ import annotations

from repro.lang.ast_nodes import (
    AlignStmt,
    ArrayIndex,
    AssignStmt,
    BinOp,
    Call,
    ConstructStmt,
    DecompositionDecl,
    DistributeStmt,
    DoStmt,
    ForallStmt,
    Num,
    ProgramAST,
    RedistributeStmt,
    ReduceStmt,
    SetStmt,
    TypeDecl,
    UnOp,
    Var,
)


def pretty_expr(expr) -> str:
    """Render an expression; sub-expressions are parenthesized."""
    if isinstance(expr, Num):
        v = expr.value
        return str(int(v)) if float(v).is_integer() else repr(v)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, ArrayIndex):
        return f"{expr.name}({pretty_expr(expr.index)})"
    if isinstance(expr, BinOp):
        return f"({pretty_expr(expr.left)} {expr.op} {pretty_expr(expr.right)})"
    if isinstance(expr, UnOp):
        return f"(-{pretty_expr(expr.operand)})"
    if isinstance(expr, Call):
        args = ", ".join(pretty_expr(a) for a in expr.args)
        return f"{expr.func}({args})"
    raise TypeError(f"cannot pretty-print {type(expr).__name__}")


def _name_sizes(pairs) -> str:
    return ", ".join(f"{n}({pretty_expr(s)})" for n, s in pairs)


def pretty_stmt(stmt, indent: int = 0) -> list[str]:
    pad = "  " * indent
    if isinstance(stmt, TypeDecl):
        return [f"{pad}{stmt.type_name} {_name_sizes(stmt.arrays)}"]
    if isinstance(stmt, DecompositionDecl):
        prefix = "DYNAMIC, " if stmt.dynamic else ""
        return [f"{pad}{prefix}DECOMPOSITION {_name_sizes(stmt.decomps)}"]
    if isinstance(stmt, DistributeStmt):
        body = ", ".join(f"{n}({f})" for n, f in stmt.targets)
        return [f"{pad}DISTRIBUTE {body}"]
    if isinstance(stmt, AlignStmt):
        return [f"{pad}ALIGN {', '.join(stmt.arrays)} WITH {stmt.decomp}"]
    if isinstance(stmt, ConstructStmt):
        clauses = [pretty_expr(stmt.n_vertices)]
        if stmt.geometry is not None:
            clauses.append(
                f"GEOMETRY({len(stmt.geometry)}, {', '.join(stmt.geometry)})"
            )
        if stmt.load is not None:
            clauses.append(f"LOAD({stmt.load})")
        if stmt.link is not None:
            count = pretty_expr(stmt.link_count) if stmt.link_count else "0"
            clauses.append(f"LINK({count}, {stmt.link[0]}, {stmt.link[1]})")
        return [f"{pad}C$ CONSTRUCT {stmt.name} ({', '.join(clauses)})"]
    if isinstance(stmt, SetStmt):
        return [
            f"{pad}C$ SET {stmt.target} BY PARTITIONING {stmt.geocol} "
            f"USING {stmt.partitioner}"
        ]
    if isinstance(stmt, RedistributeStmt):
        return [f"{pad}C$ REDISTRIBUTE {stmt.decomp}({stmt.fmt})"]
    if isinstance(stmt, AssignStmt):
        return [f"{pad}{pretty_expr(stmt.lhs)} = {pretty_expr(stmt.expr)}"]
    if isinstance(stmt, ReduceStmt):
        return [
            f"{pad}REDUCE ({stmt.op}, {pretty_expr(stmt.lhs)}, "
            f"{pretty_expr(stmt.expr)})"
        ]
    if isinstance(stmt, ForallStmt):
        lines = [
            f"{pad}FORALL {stmt.var} = {pretty_expr(stmt.lo)}, {pretty_expr(stmt.hi)}"
        ]
        for s in stmt.body:
            lines.extend(pretty_stmt(s, indent + 1))
        lines.append(f"{pad}END FORALL")
        return lines
    if isinstance(stmt, DoStmt):
        lines = [
            f"{pad}DO {stmt.var} = {pretty_expr(stmt.lo)}, {pretty_expr(stmt.hi)}"
        ]
        for s in stmt.body:
            lines.extend(pretty_stmt(s, indent + 1))
        lines.append(f"{pad}END DO")
        return lines
    raise TypeError(f"cannot pretty-print {type(stmt).__name__}")


def pretty_program(program: ProgramAST) -> str:
    """Render a whole program as parseable source."""
    lines: list[str] = []
    for stmt in program.statements:
        lines.extend(pretty_stmt(stmt))
    return "\n".join(lines) + "\n"
