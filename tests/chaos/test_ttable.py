"""Tests for translation tables."""

import numpy as np
import pytest

from repro.chaos.ttable import (
    DistributedTranslationTable,
    RegularTranslationTable,
    ReplicatedTranslationTable,
    build_translation_table,
)
from repro.distribution import BlockDistribution, CyclicDistribution, IrregularDistribution
from repro.machine import Machine


@pytest.fixture
def m4():
    return Machine(4)


def random_irregular(size, n_procs, seed=0):
    rng = np.random.default_rng(seed)
    return IrregularDistribution(rng.integers(0, n_procs, size=size), n_procs)


class TestCorrectness:
    @pytest.mark.parametrize("variant", ["replicated", "distributed"])
    def test_matches_distribution(self, m4, variant):
        dist = random_irregular(50, 4)
        tt = build_translation_table(m4, dist, variant=variant)
        g = np.arange(50, dtype=np.int64)
        owners, lidx = tt.dereference(1, g)
        assert np.array_equal(owners, dist.owner(g))
        assert np.array_equal(lidx, dist.local_index(g))

    def test_regular_table(self, m4):
        dist = CyclicDistribution(20, 4)
        tt = build_translation_table(m4, dist)
        assert isinstance(tt, RegularTranslationTable)
        owners, lidx = tt.dereference(0, np.array([5, 6, 7]))
        assert owners.tolist() == [1, 2, 3]

    def test_dereference_all_matches_single(self, m4):
        dist = random_irregular(60, 4, seed=3)
        tt = DistributedTranslationTable(m4, dist)
        refs = [np.arange(p, 60, 4, dtype=np.int64) for p in range(4)]
        batched = tt.dereference_all(refs)
        for p, (owners, lidx) in enumerate(batched):
            assert np.array_equal(owners, dist.owner(refs[p]))
            assert np.array_equal(lidx, dist.local_index(refs[p]))

    def test_empty_reference_list(self, m4):
        dist = random_irregular(10, 4)
        tt = DistributedTranslationTable(m4, dist)
        owners, lidx = tt.dereference(2, np.empty(0, dtype=np.int64))
        assert owners.size == 0 and lidx.size == 0


class TestCosts:
    def test_regular_translation_is_cheap_and_local(self, m4):
        dist = BlockDistribution(100, 4)
        tt = RegularTranslationTable(m4, dist)
        tt.dereference(0, np.arange(100))
        assert m4.procs[0].stats.messages_sent == 0
        assert m4.procs[0].stats.clock > 0

    def test_replicated_charges_build_allgather(self):
        m = Machine(4)
        before = m.elapsed()
        ReplicatedTranslationTable(m, random_irregular(100, 4))
        assert m.elapsed() > before
        assert m.procs[0].stats.messages_sent > 0

    def test_distributed_dereference_messages_page_owners(self):
        m = Machine(4)
        dist = random_irregular(100, 4, seed=1)
        tt = DistributedTranslationTable(m, dist)
        sent_before = m.procs[0].stats.messages_sent
        # proc 0 asks about indices on pages owned by procs 1..3
        tt.dereference(0, np.arange(30, 100, dtype=np.int64))
        assert m.procs[0].stats.messages_sent > sent_before

    def test_local_page_probe_sends_nothing(self):
        m = Machine(4)
        dist = random_irregular(100, 4, seed=1)
        tt = DistributedTranslationTable(m, dist)
        m.reset()
        # pages are block-distributed: indices 0..24 live on page-owner 0
        tt.dereference(0, np.arange(0, 25, dtype=np.int64))
        assert m.procs[0].stats.messages_sent == 0

    def test_batched_dereference_message_parity(self):
        """Batched dereference aggregates by page owner exactly like the
        per-processor path: same message counts, same bytes."""
        dist = random_irregular(200, 4, seed=2)
        refs = [np.arange(200, dtype=np.int64) for _ in range(4)]
        m_serial = Machine(4)
        tt = DistributedTranslationTable(m_serial, dist)
        m_serial.reset()
        for p in range(4):
            tt.dereference(p, refs[p])
        m_batch = Machine(4)
        tt2 = DistributedTranslationTable(m_batch, dist)
        m_batch.reset()
        tt2.dereference_all(refs)
        for p in range(4):
            assert (
                m_batch.procs[p].stats.messages_sent
                == m_serial.procs[p].stats.messages_sent
            )
            assert m_batch.procs[p].stats.bytes_sent == m_serial.procs[p].stats.bytes_sent

    @pytest.mark.parametrize("seed", [3, 4, 5])
    def test_batched_equals_non_batched_results_and_traffic(self, seed):
        """Both dereference paths share the paged-request kernel: identical
        translations and identical per-pair request/reply traffic on
        randomized reference lists (duplicates and gaps included)."""
        rng = np.random.default_rng(seed)
        n_procs, size = 8, 150
        dist = random_irregular(size, n_procs, seed=seed)
        refs = [
            rng.integers(0, size, size=int(rng.integers(0, 80))).astype(np.int64)
            for _ in range(n_procs)
        ]
        m_serial = Machine(n_procs)
        tt_serial = DistributedTranslationTable(m_serial, dist)
        m_serial.reset()
        serial = [tt_serial.dereference(p, refs[p]) for p in range(n_procs)]

        m_batch = Machine(n_procs)
        tt_batch = DistributedTranslationTable(m_batch, dist)
        m_batch.reset()
        batched = tt_batch.dereference_all(refs)

        for p in range(n_procs):
            np.testing.assert_array_equal(serial[p][0], batched[p][0])
            np.testing.assert_array_equal(serial[p][1], batched[p][1])
            np.testing.assert_array_equal(serial[p][0], dist.owner(refs[p]))
            np.testing.assert_array_equal(serial[p][1], dist.local_index(refs[p]))
            st_s, st_b = m_serial.procs[p].stats, m_batch.procs[p].stats
            assert st_s.messages_sent == st_b.messages_sent
            assert st_s.messages_received == st_b.messages_received
            assert st_s.bytes_sent == st_b.bytes_sent
            assert st_s.bytes_received == st_b.bytes_received


class TestFactory:
    def test_auto_regular(self, m4):
        tt = build_translation_table(m4, BlockDistribution(10, 4))
        assert isinstance(tt, RegularTranslationTable)

    def test_auto_irregular(self, m4):
        tt = build_translation_table(m4, random_irregular(10, 4))
        assert isinstance(tt, DistributedTranslationTable)

    def test_regular_variant_rejects_irregular(self, m4):
        with pytest.raises(ValueError, match="regular distribution"):
            build_translation_table(m4, random_irregular(10, 4), variant="regular")

    def test_unknown_variant(self, m4):
        with pytest.raises(ValueError, match="unknown translation table"):
            build_translation_table(m4, BlockDistribution(10, 4), variant="paged")

    def test_machine_mismatch(self, m4):
        with pytest.raises(ValueError, match="spans 8"):
            build_translation_table(m4, BlockDistribution(10, 8))
