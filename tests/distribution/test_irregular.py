"""Tests for the irregular (owner-map) distribution."""

import numpy as np
import pytest

from repro.distribution import IrregularDistribution


class TestBasics:
    def test_owner_follows_map(self):
        d = IrregularDistribution([1, 0, 1, 0, 2], 3)
        assert d.owner_map().tolist() == [1, 0, 1, 0, 2]
        assert int(d.owner(4)) == 2

    def test_local_sizes(self):
        d = IrregularDistribution([1, 0, 1, 0, 2], 3)
        assert [d.local_size(p) for p in range(3)] == [2, 2, 1]

    def test_local_order_follows_global_order(self):
        d = IrregularDistribution([1, 0, 1, 0, 2], 3)
        assert d.local_indices(0).tolist() == [1, 3]
        assert d.local_indices(1).tolist() == [0, 2]
        assert d.local_indices(2).tolist() == [4]

    def test_local_index(self):
        d = IrregularDistribution([1, 0, 1, 0, 2], 3)
        assert int(d.local_index(0)) == 0  # first element owned by proc 1
        assert int(d.local_index(2)) == 1  # second element owned by proc 1
        assert int(d.local_index(3)) == 1

    def test_round_trip(self):
        rng = np.random.default_rng(7)
        owners = rng.integers(0, 4, size=37)
        d = IrregularDistribution(owners, 4)
        g = np.arange(37)
        p = d.owner(g)
        l = d.local_index(g)
        back = np.array([d.global_index(int(pi), int(li)) for pi, li in zip(p, l)])
        assert np.array_equal(back, g)

    def test_empty_processor_allowed(self):
        d = IrregularDistribution([0, 0, 0], 3)
        assert d.local_size(2) == 0
        assert d.local_indices(2).size == 0


class TestValidation:
    def test_out_of_range_owner(self):
        with pytest.raises(ValueError, match="out of range"):
            IrregularDistribution([0, 3], 3)

    def test_negative_owner(self):
        with pytest.raises(ValueError, match="out of range"):
            IrregularDistribution([0, -1], 3)

    def test_two_d_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            IrregularDistribution([[0, 1]], 2)

    def test_bad_local_index(self):
        d = IrregularDistribution([0, 1], 2)
        with pytest.raises(IndexError, match="local index"):
            d.global_index(0, 1)


class TestSignature:
    def test_same_map_same_signature(self):
        a = IrregularDistribution([0, 1, 1, 0], 2)
        b = IrregularDistribution([0, 1, 1, 0], 2)
        assert a == b and a.signature() == b.signature()

    def test_different_map_different_signature(self):
        a = IrregularDistribution([0, 1, 1, 0], 2)
        b = IrregularDistribution([1, 0, 1, 0], 2)
        assert a != b

    def test_remap_detectable(self):
        """The property the schedule-reuse check relies on: redistributing
        changes the signature even when sizes and kinds match."""
        a = IrregularDistribution([0, 0, 1, 1], 2)
        b = IrregularDistribution([1, 1, 0, 0], 2)
        assert a.signature() != b.signature()
        assert a.signature()[:3] == b.signature()[:3]
