"""Irregular distribution: an arbitrary owner map, as a partitioner emits.

This is the Fortran D ``DISTRIBUTE irreg(map)`` of the paper's Figure 3:
element ``i`` lives on processor ``map[i]``.  Local offsets follow global
index order within each processor, which is also what CHAOS's remap
produces.  All lookups are precomputed dense arrays, so vectorized queries
are O(1) per element.

:class:`ExplicitDistribution` additionally pins every element's *local
offset*: the layout a sequence of incremental repartitionings produces
(:func:`repartition_stable`), where an element keeps its local slot for
as long as it stays on its processor.  That stability is what makes the
mapper/coupler loop's array remaps patchable -- see
``repro.chaos.remap.patch_remap_schedule``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.distribution.base import Distribution


class IrregularDistribution(Distribution):
    """Distribution defined by an explicit per-element owner array."""

    kind = "irregular"

    def __init__(self, owner_map, n_procs: int):
        owners = np.ascontiguousarray(owner_map, dtype=np.int64)
        if owners.ndim != 1:
            raise ValueError(f"owner map must be 1-D, got shape {owners.shape}")
        super().__init__(owners.size, n_procs)
        if owners.size and (owners.min() < 0 or owners.max() >= n_procs):
            bad = owners[(owners < 0) | (owners >= n_procs)][0]
            raise ValueError(
                f"owner map entry {bad} out of range [0, {n_procs})"
            )
        self._owners = owners
        self._counts = np.bincount(owners, minlength=n_procs).astype(np.int64)
        # local offset of g = rank of g among indices owned by the same proc
        self._local = np.empty(self.size, dtype=np.int64)
        order = np.argsort(owners, kind="stable")
        starts = np.zeros(n_procs + 1, dtype=np.int64)
        np.cumsum(self._counts, out=starts[1:])
        within = np.arange(self.size, dtype=np.int64) - starts[owners[order]]
        self._local[order] = within
        # per-processor lists of owned global indices, local-offset order
        self._by_proc = [order[starts[p] : starts[p + 1]] for p in range(n_procs)]
        self._order = order
        self._starts = starts
        digest = hashlib.blake2b(owners.tobytes(), digest_size=8).hexdigest()
        self._sig = (self.kind, self.size, self.n_procs, digest)

    def owner(self, gidx):
        g = self._check_gidx(gidx)
        return self._owners[g]

    def local_index(self, gidx):
        g = self._check_gidx(gidx)
        return self._local[g]

    def _translate_checked(self, g):
        # base.translate validated once; two dense gathers remain
        return self._owners[g], self._local[g]

    def global_index(self, p: int, lidx):
        self._check_proc(p)
        li = np.asarray(lidx, dtype=np.int64)
        n = self._counts[p]
        if li.size and (li.min() < 0 or li.max() >= n):
            raise IndexError(f"local index out of range [0, {n}) on processor {p}")
        return self._by_proc[p][li]

    def local_size(self, p: int) -> int:
        self._check_proc(p)
        return int(self._counts[p])

    def local_sizes(self) -> np.ndarray:
        return self._counts.copy()

    def local_indices(self, p: int) -> np.ndarray:
        self._check_proc(p)
        return self._by_proc[p].copy()

    def owner_map(self) -> np.ndarray:
        return self._owners.copy()

    def _build_global_perm(self) -> np.ndarray:
        # the stable owner sort from construction *is* the permutation
        return self._order

    def _build_global_perm_inverse(self) -> np.ndarray:
        return self._starts[self._owners] + self._local

    def signature(self) -> tuple:
        """Includes a content hash: remapping to a new owner map changes
        the signature, which is what lets data access descriptors detect
        redistribution (Section 3 of the paper)."""
        return self._sig


class ExplicitDistribution(Distribution):
    """Distribution with explicit owner *and* local-offset maps.

    Where :class:`IrregularDistribution` derives local offsets from
    global-index order, this class takes them as given -- the layout an
    incremental repartitioner maintains: when an element leaves a
    processor its slot becomes reusable, arrivals fill vacated slots
    then append, and every element that stays put keeps its offset.
    Per-processor offsets must still be dense (``[0, local_size)`` with
    no duplicates); :func:`repartition_stable` preserves that by
    construction and the constructor verifies it.
    """

    kind = "explicit"

    def __init__(self, owner_map, local_map, n_procs: int):
        owners = np.ascontiguousarray(owner_map, dtype=np.int64)
        local = np.ascontiguousarray(local_map, dtype=np.int64)
        if owners.ndim != 1 or owners.shape != local.shape:
            raise ValueError(
                f"owner map {owners.shape} and local map {local.shape} "
                "must be equal-length 1-D arrays"
            )
        super().__init__(owners.size, n_procs)
        if owners.size and (owners.min() < 0 or owners.max() >= n_procs):
            bad = owners[(owners < 0) | (owners >= n_procs)][0]
            raise ValueError(f"owner map entry {bad} out of range [0, {n_procs})")
        self._owners = owners
        self._local = local
        self._counts = np.bincount(owners, minlength=n_procs).astype(np.int64)
        self._starts = np.zeros(n_procs + 1, dtype=np.int64)
        np.cumsum(self._counts, out=self._starts[1:])
        if local.size and (local.min() < 0 or (local >= self._counts[owners]).any()):
            g = int(np.flatnonzero((local < 0) | (local >= self._counts[owners]))[0])
            raise ValueError(
                f"element {g}: local offset {int(local[g])} out of range "
                f"[0, {int(self._counts[owners[g]])}) on processor {int(owners[g])}"
            )
        flat = self._starts[owners] + local
        gidx_of_flat = np.full(self.size, -1, dtype=np.int64)
        gidx_of_flat[flat] = np.arange(self.size, dtype=np.int64)
        if (gidx_of_flat < 0).any():
            s = int(np.flatnonzero(gidx_of_flat < 0)[0])
            p = int(np.searchsorted(self._starts, s, side="right") - 1)
            raise ValueError(
                f"local offset {s - int(self._starts[p])} on processor {p} "
                "is assigned twice (layout must be a bijection)"
            )
        self._flat = flat
        self._gidx_of_flat = gidx_of_flat
        digest = hashlib.blake2b(
            owners.tobytes() + local.tobytes(), digest_size=8
        ).hexdigest()
        self._sig = (self.kind, self.size, self.n_procs, digest)

    def owner(self, gidx):
        return self._owners[self._check_gidx(gidx)]

    def local_index(self, gidx):
        return self._local[self._check_gidx(gidx)]

    def _translate_checked(self, g):
        return self._owners[g], self._local[g]

    def global_index(self, p: int, lidx):
        self._check_proc(p)
        li = np.asarray(lidx, dtype=np.int64)
        n = self._counts[p]
        if li.size and (li.min() < 0 or li.max() >= n):
            raise IndexError(f"local index out of range [0, {n}) on processor {p}")
        return self._gidx_of_flat[self._starts[p] + li]

    def local_size(self, p: int) -> int:
        self._check_proc(p)
        return int(self._counts[p])

    def local_sizes(self) -> np.ndarray:
        return self._counts.copy()

    def local_indices(self, p: int) -> np.ndarray:
        self._check_proc(p)
        return self._gidx_of_flat[self._starts[p] : self._starts[p + 1]].copy()

    def owner_map(self) -> np.ndarray:
        return self._owners.copy()

    def local_map(self) -> np.ndarray:
        return self._local.copy()

    def _build_global_perm(self) -> np.ndarray:
        return self._gidx_of_flat

    def _build_global_perm_inverse(self) -> np.ndarray:
        return self._flat

    def signature(self) -> tuple:
        return self._sig


@dataclass
class RebalancePlan:
    """Element-level delta of one :func:`repartition_stable` step.

    ``moved`` change processor (the only elements that touch the
    network); ``repacked`` stay on their processor but slide into a
    vacated slot to keep the layout dense (local memory traffic only);
    everything else keeps both owner and local offset -- carried for
    free by a patched remap schedule.
    """

    moved: np.ndarray
    repacked: np.ndarray


def repartition_stable(
    dist: Distribution, move_g, move_to, n_procs: int | None = None
) -> tuple[ExplicitDistribution, RebalancePlan]:
    """Apply an element-move delta, disturbing as few slots as possible.

    ``move_g``/``move_to`` name elements and their new owners (entries
    already owned by their target are dropped).  The returned layout
    follows the retire/append discipline the incremental inspector uses
    for ghost slots: a departing element's slot becomes a hole, arrivals
    fill holes in ascending order then append, and -- when a processor
    shrinks -- its tail elements slide into the remaining holes
    (swap-remove) so offsets stay dense.  Every element outside the
    returned plan keeps its exact ``(owner, local offset)``, which is
    what lets ``patch_remap_schedule`` build the array-move schedule
    from the delta alone.
    """
    n = n_procs if n_procs is not None else dist.n_procs
    size = dist.size
    g_all = np.arange(size, dtype=np.int64)
    old_owner = np.asarray(dist.owner(g_all), dtype=np.int64)
    old_local = np.asarray(dist.local_index(g_all), dtype=np.int64)
    move_g = np.asarray(move_g, dtype=np.int64)
    move_to = np.asarray(move_to, dtype=np.int64)
    if move_g.shape != move_to.shape or move_g.ndim != 1:
        raise ValueError("move_g and move_to must be equal-length 1-D arrays")
    if move_g.size and np.unique(move_g).size != move_g.size:
        raise ValueError("move_g contains duplicate elements")
    if move_to.size and (move_to.min() < 0 or move_to.max() >= n):
        raise ValueError(f"target processor out of range [0, {n})")
    real = move_to != old_owner[move_g]
    moved = move_g[real]
    dest = move_to[real]
    order = np.argsort(moved)
    moved, dest = moved[order], dest[order]

    new_owner = old_owner.copy()
    new_owner[moved] = dest
    new_local = old_local.copy()
    old_sizes = np.bincount(old_owner, minlength=n) if size else np.zeros(n, np.int64)
    new_sizes = np.bincount(new_owner, minlength=n) if size else np.zeros(n, np.int64)

    src_proc = old_owner[moved]
    repacked_parts: list[np.ndarray] = []
    affected = np.unique(np.concatenate([src_proc, dest])) if moved.size else moved
    for p in affected:
        dep_l = np.sort(old_local[moved[src_proc == p]])  # holes, ascending
        arr_g = moved[dest == p]  # arrivals, gidx-ascending (moved is sorted)
        k = min(dep_l.size, arr_g.size)
        new_local[arr_g[:k]] = dep_l[:k]
        if arr_g.size > k:
            # holes exhausted: append at the end of the old region
            new_local[arr_g[k:]] = old_sizes[p] + np.arange(
                arr_g.size - k, dtype=np.int64
            )
        elif dep_l.size > k:
            # processor shrank: slide surviving tail elements into the
            # remaining holes below the new size (swap-remove), pairing
            # both ascending for determinism
            ns = int(new_sizes[p])
            holes = dep_l[k:]
            usable = holes[holes < ns]
            tail_g = dist.local_indices(p)[ns : int(old_sizes[p])]
            keep = new_owner[tail_g] == p
            tail_g = tail_g[keep]  # already lidx-ascending
            new_local[tail_g] = usable
            repacked_parts.append(tail_g)
    repacked = (
        np.sort(np.concatenate(repacked_parts))
        if repacked_parts
        else np.empty(0, dtype=np.int64)
    )
    new_dist = ExplicitDistribution(new_owner, new_local, n)
    return new_dist, RebalancePlan(moved=moved, repacked=repacked)
