"""Ghost-buffer allocation and bookkeeping.

CHAOS allocates, per processor, buffer space for copies of off-processor
data ("allocates local memory for each unique off-processor distributed
array element accessed by a loop").  ``GhostBuffers`` owns those arrays
for one (schedule, dtype) pair; the inspector stores one per data array,
and the reuse mechanism keeps them alive together with the schedule.
"""

from __future__ import annotations

import numpy as np

from repro.chaos.costs import ChaosCosts, DEFAULT_COSTS
from repro.chaos.schedule import CommSchedule
from repro.machine.machine import Machine


class GhostBuffers:
    """Per-processor ghost arrays sized by a schedule."""

    def __init__(
        self,
        machine: Machine,
        schedule: CommSchedule,
        dtype=np.float64,
        costs: ChaosCosts = DEFAULT_COSTS,
        charge: bool = True,
    ):
        if schedule.machine is not machine:
            raise ValueError("schedule lives on a different machine")
        self.machine = machine
        self.schedule = schedule
        self.dtype = np.dtype(dtype)
        self._bufs = [
            np.zeros(schedule.ghost_sizes[p], dtype=self.dtype)
            for p in range(machine.n_procs)
        ]
        if charge:
            machine.charge_compute_all(
                iops=[costs.buffer_assign * s for s in schedule.ghost_sizes]
            )

    def buf(self, p: int) -> np.ndarray:
        """Ghost buffer of processor ``p``."""
        if not 0 <= p < self.machine.n_procs:
            raise ValueError(
                f"processor id {p} out of range [0, {self.machine.n_procs})"
            )
        return self._bufs[p]

    @property
    def buffers(self) -> list[np.ndarray]:
        return self._bufs

    def fill(self, value) -> None:
        """Reset every buffer (e.g. zero ghosts before accumulating)."""
        for b in self._bufs:
            b.fill(value)

    def total_elements(self) -> int:
        return sum(b.size for b in self._bufs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GhostBuffers(dtype={self.dtype}, total={self.total_elements()})"
        )
