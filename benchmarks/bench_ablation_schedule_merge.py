"""Ablation: PARTI's schedule-merging optimization.

A loop reading k access patterns pays k message startups per neighbour
per gather when schedules are applied one at a time; merging sends one
combined message per pair per phase.  On the iPSC/860's ~100 us alpha
this matters most for the MD loop (8 read patterns, 2 write patterns).

Reports executor time and message counts with and without merging for
the Euler (4 patterns) and MD (10 patterns) sweeps.
"""

from conftest import run_once

from repro.bench import render_table
from repro.machine import Machine
from repro.workloads import generate_mesh, scale_config
from repro.workloads.euler import euler_edge_loop, setup_euler_program
from repro.workloads.md import md_force_loop, setup_md_program


def run_euler(mesh, merge, sweeps=20):
    m = Machine(16)
    prog = setup_euler_program(m, mesh, seed=0, merge_communication=merge)
    # partition first: under the initial BLOCK distribution the sorted
    # edge lists make every end_pt1 reference local (owner(e1) <=
    # owner(e2) and ties go low), hiding the merge effect entirely
    prog.construct("G", mesh.n_nodes, geometry=["xc", "yc", "zc"])
    prog.set_distribution("fmt", "G", "RCB")
    prog.redistribute("reg", "fmt")
    m.reset()
    prog.forall(euler_edge_loop(mesh), n_times=sweeps)
    return m.elapsed(), int(m.counters.messages_sent.sum())


def run_md(merge, sweeps=20):
    m = Machine(16)
    prog, pairs = setup_md_program(
        m, n_atoms=648, cutoff=6.0, seed=0, merge_communication=merge
    )
    m.reset()
    prog.forall(md_force_loop(pairs.shape[1]), n_times=sweeps)
    return m.elapsed(), int(m.counters.messages_sent.sum())


def test_schedule_merging(benchmark, report):
    scale = scale_config()
    mesh = generate_mesh(scale.mesh_small, seed=1)

    def run():
        rows = []
        for label, fn in (("euler", lambda mg: run_euler(mesh, mg)), ("md", run_md)):
            t_sep, m_sep = fn(False)
            t_mrg, m_mrg = fn(True)
            rows.append(
                {
                    "workload": label,
                    "sep_seconds": t_sep,
                    "mrg_seconds": t_mrg,
                    "sep_messages": m_sep,
                    "mrg_messages": m_mrg,
                    "speedup": t_sep / t_mrg,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    report(
        "ablation_schedule_merge",
        render_table(
            "Schedule-merging ablation (20 sweeps, 16 procs)",
            rows,
            [
                ("workload", "Workload"),
                ("sep_seconds", "Separate(s)"),
                ("mrg_seconds", "Merged(s)"),
                ("sep_messages", "Msgs"),
                ("mrg_messages", "MsgsMerged"),
                ("speedup", "Speedup"),
            ],
        ),
    )
    for row in rows:
        assert row["mrg_messages"] < row["sep_messages"], row
        assert row["mrg_seconds"] <= row["sep_seconds"], row
    # MD reads 8 patterns and reduces 2 -> merging helps it more
    md = next(r for r in rows if r["workload"] == "md")
    euler = next(r for r in rows if r["workload"] == "euler")
    assert md["sep_messages"] / md["mrg_messages"] > euler["sep_messages"] / euler["mrg_messages"]
