"""Translation tables: global index -> (owner, local offset) with costs.

For regular distributions the translation is closed-form arithmetic.  For
irregular distributions PARTI/CHAOS kept an explicit table, either

* **replicated** -- every processor stores the full owner/offset map.
  Dereference is a local lookup; building it costs an all-gather of the
  locally-known fragments (and O(N) memory per processor), or
* **distributed (paged)** -- the table itself is block-distributed; a
  dereference for an arbitrary global index requires a request message to
  the page's owner and a reply.  This is CHAOS's scalable default and the
  variant whose communication shows up in the paper's inspector times.

Both variants return identical translations; they differ only in what
they charge the machine.  ``dereference`` operates on one requesting
processor's reference list at a time; ``dereference_all`` batches the
request/reply exchanges of all processors into two machine phases, the
way CHAOS's loosely synchronous dereference actually behaved.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.chaos.costs import ChaosCosts, DEFAULT_COSTS
from repro.chaos.flatrefs import FlatRefs
from repro.distribution.base import Distribution
from repro.distribution.regular import BlockDistribution
from repro.machine.collectives import allgather_cost
from repro.machine.machine import Machine


class TranslationTable(ABC):
    """Maps global indices of one distribution to (owner, local offset)."""

    def __init__(self, machine: Machine, dist: Distribution, costs: ChaosCosts = DEFAULT_COSTS):
        if dist.n_procs != machine.n_procs:
            raise ValueError(
                f"distribution spans {dist.n_procs} processors, machine has "
                f"{machine.n_procs}"
            )
        self.machine = machine
        self.dist = dist
        self.costs = costs

    @abstractmethod
    def dereference(self, p: int, gidx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Translate processor ``p``'s reference list; charges ``p`` (and,
        for the distributed table, the page owners)."""

    def dereference_all(
        self, ref_lists: list[np.ndarray]
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Translate every processor's list in one loosely synchronous phase."""
        return [self.dereference(p, refs) for p, refs in enumerate(ref_lists)]

    def dereference_flat(
        self, values: np.ndarray, bounds: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Flat-form batched dereference: one translation for all processors.

        ``values`` holds every processor's reference list concatenated;
        ``bounds`` is the ``(P + 1,)`` CSR bound array (processor ``p``'s
        refs are ``values[bounds[p]:bounds[p+1]]``).  Returns flat
        ``(owners, local_offsets)`` aligned with ``values``.  Charges are
        bit-identical to :meth:`dereference_all` on the equivalent lists;
        the generic implementation delegates to it, and the concrete
        tables override with loop-free versions.
        """
        results = self.dereference_all(FlatRefs(values, bounds).segments())
        if not values.size:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return (
            np.concatenate([o for o, _ in results]),
            np.concatenate([l for _, l in results]),
        )

    def _translate(self, gidx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        g = np.asarray(gidx, dtype=np.int64)
        owners, lidx = self.dist.translate(g)
        return (
            np.asarray(owners, dtype=np.int64),
            np.asarray(lidx, dtype=np.int64),
        )


class RegularTranslationTable(TranslationTable):
    """Closed-form translation for block/cyclic/block-cyclic distributions."""

    def dereference(self, p: int, gidx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        owners, lidx = self._translate(gidx)
        self.machine.charge_compute(
            p, iops=self.costs.translate_regular * len(owners)
        )
        return owners, lidx

    def dereference_flat(
        self, values: np.ndarray, bounds: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        owners, lidx = self._translate(values)
        self.machine.charge_compute_all(
            iops=self.costs.translate_regular * np.diff(bounds).astype(np.float64)
        )
        return owners, lidx


class ReplicatedTranslationTable(TranslationTable):
    """Full owner/offset map on every processor.

    Construction models the all-gather of locally known fragments
    (every processor initially knows only the elements it received).
    """

    def __init__(self, machine: Machine, dist: Distribution, costs: ChaosCosts = DEFAULT_COSTS):
        super().__init__(machine, dist, costs)
        # model: allgather of (owner, offset) pairs for local fragments
        frag = -(-dist.size // machine.n_procs)
        allgather_cost(machine, frag * 2 * 4)  # two 32-bit words per element
        machine.charge_compute_all(iops=float(dist.size) * 1.0)  # table fill

    def dereference(self, p: int, gidx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        owners, lidx = self._translate(gidx)
        self.machine.charge_compute(
            p, iops=self.costs.translate_replicated * len(owners)
        )
        return owners, lidx

    def dereference_flat(
        self, values: np.ndarray, bounds: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        owners, lidx = self._translate(values)
        self.machine.charge_compute_all(
            iops=self.costs.translate_replicated * np.diff(bounds).astype(np.float64)
        )
        return owners, lidx


class DistributedTranslationTable(TranslationTable):
    """Paged table: pages block-distributed over processors.

    Dereferencing a reference list costs, per distinct page owner:
    a request message carrying the indices, a probe at the owner, and a
    reply message carrying (owner, offset) pairs.
    """

    def __init__(self, machine: Machine, dist: Distribution, costs: ChaosCosts = DEFAULT_COSTS):
        super().__init__(machine, dist, costs)
        self.pages = BlockDistribution(dist.size, machine.n_procs)
        # construction: each element's (owner, offset) entry is sent to its
        # page owner -- one all-to-all of table fragments
        n = machine.n_procs
        counts = np.zeros((n, n), dtype=np.int64)
        if dist.size:
            page_owner = np.asarray(self.pages.owner(np.arange(dist.size)))
            data_owner = np.asarray(dist.owner(np.arange(dist.size)))
            np.add.at(counts, (data_owner, page_owner), 1)
        off_diag = counts.copy()
        np.fill_diagonal(off_diag, 0)
        src, dst = np.nonzero(off_diag)
        machine.exchange(
            src=src, dst=dst, nbytes=off_diag[src, dst] * 2 * self.costs.index_bytes
        )
        fill = counts.sum(axis=0).astype(float)
        machine.charge_compute_all(iops=2.0 * fill)
        machine.barrier()

    def _page_request_counts(self, p: int, g: np.ndarray) -> np.ndarray:
        """Per-page-owner request counts for one reference list (shared by
        the batched and non-batched dereference paths)."""
        counts = np.zeros(self.machine.n_procs, dtype=np.int64)
        if g.size:
            page_owner = np.asarray(self.pages.owner(g), dtype=np.int64)
            np.add.at(counts, page_owner, 1)
        return counts

    def dereference(self, p: int, gidx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        g = np.asarray(gidx, dtype=np.int64)
        owners, lidx = self._translate(g)
        if g.size:
            m = self.machine
            counts = self._page_request_counts(p, g)
            if counts[p]:
                # pages this processor itself owns: local table lookups
                m.charge_compute(
                    p, iops=self.costs.translate_replicated * int(counts[p])
                )
                counts[p] = 0
            uq = np.flatnonzero(counts)
            if uq.size:
                # request exchange (indices), probes at the owners, reply
                # exchange (pairs) -- the batched kernel's three steps,
                # restricted to one requester, with no per-owner loop
                cnt = counts[uq]
                req_p = np.full(uq.size, p, dtype=np.int64)
                m.exchange(src=req_p, dst=uq, nbytes=cnt * self.costs.index_bytes)
                probe = np.zeros(m.n_procs)
                probe[uq] = self.costs.translate_remote * cnt
                m.charge_compute_all(iops=probe)
                m.exchange(
                    src=uq, dst=req_p, nbytes=cnt * 2 * self.costs.index_bytes
                )
        return owners, lidx

    def dereference_all(
        self, ref_lists: list[np.ndarray]
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Batched dereference: one request exchange, probes, one reply.

        Loosely synchronous version used by inspectors: all processors'
        requests travel in a single exchange phase, so wall time is the
        max per-processor cost, not the sum.  Delegates to the flat
        kernel; charges are identical.
        """
        n = self.machine.n_procs
        if len(ref_lists) != n:
            raise ValueError(f"expected {n} reference lists, got {len(ref_lists)}")
        refs = FlatRefs.from_lists(ref_lists)
        owners, lidx = self.dereference_flat(refs.values, refs.bounds)
        bounds = refs.bounds
        return [
            (owners[bounds[p] : bounds[p + 1]], lidx[bounds[p] : bounds[p + 1]])
            for p in range(n)
        ]

    def dereference_flat(
        self, values: np.ndarray, bounds: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Flat batched dereference: one translation, one page-owner
        bincount, and the request/probe/reply exchange phases — no Python
        loop over processors."""
        m = self.machine
        n = m.n_procs
        owners, lidx = self._translate(values)
        req_counts = np.zeros((n, n), dtype=np.int64)
        if values.size:
            page_owner = np.asarray(self.pages.owner(values), dtype=np.int64)
            pid = np.repeat(
                np.arange(n, dtype=np.int64), np.diff(bounds).astype(np.int64)
            )
            req_counts = np.bincount(
                pid * n + page_owner, minlength=n * n
            ).reshape(n, n)
        # request exchange (indices), probe at owners, reply exchange (pairs)
        off_diag = req_counts.copy()
        np.fill_diagonal(off_diag, 0)
        req_p, req_q = np.nonzero(off_diag)
        pair_counts = off_diag[req_p, req_q]
        m.exchange(src=req_p, dst=req_q, nbytes=pair_counts * self.costs.index_bytes)
        probe = req_counts.sum(axis=0).astype(float)
        m.charge_compute_all(iops=self.costs.translate_remote * probe)
        m.exchange(
            src=req_q, dst=req_p, nbytes=pair_counts * 2 * self.costs.index_bytes
        )
        m.barrier()
        return owners, lidx


def build_translation_table(
    machine: Machine,
    dist: Distribution,
    costs: ChaosCosts = DEFAULT_COSTS,
    variant: str = "auto",
) -> TranslationTable:
    """Build the right translation table for a distribution.

    ``variant``: "auto" (regular -> closed form, irregular -> distributed),
    "regular", "replicated", or "distributed".
    """
    if variant == "auto":
        variant = (
            "regular" if dist.kind not in ("irregular", "explicit") else "distributed"
        )
    if variant == "regular":
        if dist.kind in ("irregular", "explicit"):
            raise ValueError("closed-form translation needs a regular distribution")
        return RegularTranslationTable(machine, dist, costs)
    if variant == "replicated":
        return ReplicatedTranslationTable(machine, dist, costs)
    if variant == "distributed":
        return DistributedTranslationTable(machine, dist, costs)
    raise ValueError(
        f"unknown translation table variant {variant!r}; "
        "choose auto | regular | replicated | distributed"
    )
