"""Program driver: execute a compiled directive program on a machine.

``run_program`` performs the whole paper pipeline for a source string:
tokenize -> parse -> analyze -> lower -> drive an
:class:`~repro.core.program.IrregularProgram` (which embeds the CHAOS
calls).  Returns a :class:`CompiledProgram` exposing the runtime context,
the lowered loops, and the machine for inspection.

Conventions bridging Fortran-style source and the Python runtime:

* loop bounds are 1-based in source (``FORALL i = 1, nedge``) and map to
  0-based iteration spaces;
* *values* of indirection arrays are 0-based global element indices
  (the data is supplied from Python, not read from Fortran files);
* array sizes are symbols (``nnode``) bound via ``sizes``; initial array
  contents come from ``data`` (missing entries are zero-filled);
* scalars referenced in expressions are bound via ``scalars``.
"""

from __future__ import annotations

import numpy as np

from repro.core.program import IrregularProgram
from repro.lang.analysis import analyze
from repro.lang.ast_nodes import (
    AlignStmt,
    ConstructStmt,
    DecompositionDecl,
    DistributeStmt,
    DoStmt,
    ForallStmt,
    ProgramAST,
    RedistributeStmt,
    SetStmt,
    TypeDecl,
)
from repro.lang.lower import _eval_const, lower_forall
from repro.lang.parser import parse
from repro.machine.machine import Machine


class CompiledProgram:
    """The result of running a directive program."""

    def __init__(
        self,
        source: str,
        machine: Machine,
        sizes: dict[str, int] | None = None,
        data: dict[str, np.ndarray] | None = None,
        scalars: dict[str, float] | None = None,
        **program_kwargs,
    ):
        self.source = source
        self.machine = machine
        self.sizes = dict(sizes or {})
        self.data = dict(data or {})
        self.scalars = dict(scalars or {})
        self.ast: ProgramAST = parse(source)
        self.info = analyze(self.ast)
        self.program = IrregularProgram(machine, **program_kwargs)
        self._loop_cache: dict[int, object] = {}
        self._align_of: dict[str, str] = {}
        self.executed_foralls = 0

    # ------------------------------------------------------------------
    def run(self) -> "CompiledProgram":
        """Execute every statement in program order."""
        self._exec_block(self.ast.statements)
        return self

    def _exec_block(self, statements) -> None:
        for stmt in statements:
            self._exec(stmt)

    def _exec(self, stmt) -> None:
        if isinstance(stmt, TypeDecl):
            pass  # array creation happens at ALIGN, when the decomp is known
        elif isinstance(stmt, DecompositionDecl):
            for name, size_expr in stmt.decomps:
                self.program.decomposition(name, self._const(size_expr))
        elif isinstance(stmt, DistributeStmt):
            for name, fmt in stmt.targets:
                if fmt in ("BLOCK", "CYCLIC"):
                    self.program.distribute(name, fmt.lower())
                else:
                    # Figure 3: DISTRIBUTE irreg(map) with a map array
                    self.program.distribute_by_map(name, fmt)
        elif isinstance(stmt, AlignStmt):
            for array in stmt.arrays:
                self._create_array(array, stmt.decomp)
        elif isinstance(stmt, ConstructStmt):
            self.program.construct(
                stmt.name,
                self._const(stmt.n_vertices),
                geometry=stmt.geometry,
                load=stmt.load,
                link=stmt.link,
            )
        elif isinstance(stmt, SetStmt):
            self.program.set_distribution(
                stmt.target, stmt.geocol, stmt.partitioner
            )
        elif isinstance(stmt, RedistributeStmt):
            self.program.redistribute(stmt.decomp, stmt.fmt)
        elif isinstance(stmt, ForallStmt):
            self._run_forall(stmt, n_times=1)
        elif isinstance(stmt, DoStmt):
            self._run_do(stmt)
        else:  # pragma: no cover - analysis rejects unknown nodes
            raise TypeError(f"cannot execute {type(stmt).__name__}")

    # ------------------------------------------------------------------
    def _run_do(self, stmt: DoStmt) -> None:
        trips = int(self._const(stmt.hi)) - int(self._const(stmt.lo)) + 1
        if trips <= 0:
            return
        if len(stmt.body) == 1 and isinstance(stmt.body[0], ForallStmt):
            # the common timing pattern: amortize through program.forall
            self._run_forall(stmt.body[0], n_times=trips)
            return
        for _ in range(trips):
            self._exec_block(stmt.body)

    def _run_forall(self, stmt: ForallStmt, n_times: int) -> None:
        key = id(stmt)
        if key not in self._loop_cache:
            env = {**self.sizes, **self.scalars}
            self._loop_cache[key] = lower_forall(stmt, env, self.scalars)
        loop = self._loop_cache[key]
        self.program.forall(loop, n_times=n_times)
        self.executed_foralls += n_times

    # ------------------------------------------------------------------
    def _create_array(self, name: str, decomp: str) -> None:
        arr_info = self.info.arrays[name]
        dtype = (
            np.int64 if arr_info.type_name.startswith("INTEGER") else np.float64
        )
        size = self._const(arr_info.size_expr)
        decomp_size = self.program.decomps[decomp].size
        if size != decomp_size:
            raise ValueError(
                f"array {name!r} has size {size} but decomposition {decomp!r} "
                f"has size {decomp_size}"
            )
        values = self.data.get(name)
        if values is not None:
            values = np.asarray(values)
            if values.shape != (size,):
                raise ValueError(
                    f"initial data for {name!r} has shape {values.shape}, "
                    f"expected ({size},)"
                )
            self.program.array(name, decomp, values=values.astype(dtype))
        else:
            self.program.array(name, decomp, dtype=dtype)
        self._align_of[name] = decomp

    def _const(self, expr) -> int:
        env = {**self.sizes, **self.scalars}
        return int(_eval_const(expr, env))

    # -- conveniences ---------------------------------------------------------
    def array_global(self, name: str) -> np.ndarray:
        """Assembled global contents of a program array."""
        return self.program.arrays[name].to_global()

    def elapsed(self) -> float:
        return self.machine.elapsed()


def run_program(
    source: str,
    machine: Machine,
    sizes: dict[str, int] | None = None,
    data: dict[str, np.ndarray] | None = None,
    scalars: dict[str, float] | None = None,
    **program_kwargs,
) -> CompiledProgram:
    """Compile and execute a directive program; returns the CompiledProgram."""
    return CompiledProgram(
        source, machine, sizes=sizes, data=data, scalars=scalars, **program_kwargs
    ).run()
