"""Direct tests for the stats module (records, deltas, aggregates)."""

import pytest

from repro.machine import Machine
from repro.machine.stats import MachineStats, PhaseRecord, ProcessorStats


class TestProcessorStats:
    def test_snapshot_is_independent_copy(self):
        st = ProcessorStats(clock=1.0, flops=10.0)
        snap = st.snapshot()
        st.clock = 5.0
        st.flops = 99.0
        assert snap.clock == 1.0 and snap.flops == 10.0

    def test_delta(self):
        a = ProcessorStats(clock=1.0, messages_sent=2, bytes_sent=100, flops=5.0)
        b = ProcessorStats(clock=3.5, messages_sent=7, bytes_sent=350, flops=9.0)
        d = b.delta(a)
        assert d.clock == pytest.approx(2.5)
        assert d.messages_sent == 5
        assert d.bytes_sent == 250
        assert d.flops == pytest.approx(4.0)

    def test_default_zeroes(self):
        st = ProcessorStats()
        assert st.clock == 0.0 and st.iops == 0.0 and st.mem_ops == 0.0


class TestPhaseRecord:
    def make(self):
        per_proc = [
            ProcessorStats(clock=1.0, messages_sent=3, bytes_sent=300, flops=10.0),
            ProcessorStats(clock=2.0, messages_sent=1, bytes_sent=50, flops=20.0),
        ]
        return PhaseRecord(name="p", elapsed=2.0, per_proc=per_proc)

    def test_aggregates(self):
        rec = self.make()
        assert rec.total_messages == 4
        assert rec.total_bytes == 350
        assert rec.total_flops == pytest.approx(30.0)
        assert rec.max_clock == pytest.approx(2.0)

    def test_empty_per_proc(self):
        rec = PhaseRecord(name="e", elapsed=0.0, per_proc=[])
        assert rec.max_clock == 0.0
        assert rec.total_messages == 0


class TestMachineStats:
    def test_phase_time_sums_same_name(self):
        ms = MachineStats()
        ms.add(PhaseRecord("a", 1.0, []))
        ms.add(PhaseRecord("b", 2.0, []))
        ms.add(PhaseRecord("a", 3.0, []))
        assert ms.phase_time("a") == pytest.approx(4.0)
        assert ms.phase_time("missing") == 0.0

    def test_phase_names_first_appearance_order(self):
        ms = MachineStats()
        for name in ("z", "a", "z", "m"):
            ms.add(PhaseRecord(name, 1.0, []))
        assert ms.phase_names() == ["z", "a", "m"]

    def test_total_and_clear(self):
        ms = MachineStats()
        ms.add(PhaseRecord("a", 1.5, []))
        ms.add(PhaseRecord("b", 0.5, []))
        assert ms.total_time() == pytest.approx(2.0)
        ms.clear()
        assert ms.phases == [] and ms.total_time() == 0.0


class TestIntegrationWithMachine:
    def test_nested_phases_record_independently(self):
        m = Machine(2)
        with m.phase("outer"):
            m.charge_compute(0, flops=1e5)
            with m.phase("inner"):
                m.charge_compute(1, flops=2e5)
        names = [p.name for p in m.stats.phases]
        assert names == ["inner", "outer"]  # inner closes first
        inner, outer = m.stats.phases
        assert outer.elapsed >= inner.elapsed

    def test_phase_elapsed_counts_barrier_cost(self):
        m = Machine(8)
        with m.phase("empty"):
            pass
        # even an empty phase pays the closing barrier
        assert m.stats.phases[0].elapsed >= 0.0
        assert m.elapsed() > 0.0
