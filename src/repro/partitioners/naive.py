"""Naive partitioners: BLOCK, CYCLIC, RANDOM.

BLOCK is the paper's baseline ("we assigned each processor contiguous
blocks of array elements", Table 4): free to compute, oblivious to
structure, and therefore the partition the irregular ones must beat.
"""

from __future__ import annotations

import numpy as np

from repro.partitioners.base import (
    PartitionProblem,
    PartitionResult,
    Partitioner,
    register_partitioner,
)


@register_partitioner("BLOCK")
class BlockPartitioner(Partitioner):
    """Contiguous chunks of ceil(N/P), exactly HPF BLOCK."""

    def partition(self, problem: PartitionProblem, n_parts: int) -> PartitionResult:
        self.validate(problem, n_parts)
        n = problem.n_vertices
        chunk = -(-n // n_parts) if n else 1
        owners = np.arange(n, dtype=np.int64) // chunk
        return PartitionResult(
            owner_map=owners,
            n_parts=n_parts,
            iops=float(n),  # one pass to write the map
            sync_rounds=0,
        )


@register_partitioner("CYCLIC")
class CyclicPartitioner(Partitioner):
    """Round-robin assignment (HPF CYCLIC)."""

    def partition(self, problem: PartitionProblem, n_parts: int) -> PartitionResult:
        self.validate(problem, n_parts)
        n = problem.n_vertices
        owners = np.arange(n, dtype=np.int64) % n_parts
        return PartitionResult(
            owner_map=owners,
            n_parts=n_parts,
            iops=float(n),
            sync_rounds=0,
        )


@register_partitioner("RANDOM")
class RandomPartitioner(Partitioner):
    """Uniform random owners; a worst-case-locality control."""

    def __init__(self, seed: int = 0):
        self.seed = seed

    def partition(self, problem: PartitionProblem, n_parts: int) -> PartitionResult:
        self.validate(problem, n_parts)
        rng = np.random.default_rng(self.seed)
        owners = rng.integers(0, n_parts, size=problem.n_vertices, dtype=np.int64)
        return PartitionResult(
            owner_map=owners,
            n_parts=n_parts,
            iops=float(problem.n_vertices) * 3.0,  # PRNG + write
            sync_rounds=0,
        )
