"""Ablation: are the paper-table *shapes* stable under cost-model error?

Our absolute simulated seconds depend on calibration constants (message
latency, bandwidth, effective flop/iop rates).  This bench perturbs each
constant by 10x in both directions and re-checks the qualitative claims
the reproduction rests on:

* schedule reuse beats no-reuse,
* BLOCK's executor loses to RCB's,
* RSB's partitioner costs far more than RCB's.

If these invert under any perturbation, the reproduction's conclusions
would be calibration artifacts; they do not.
"""

import pytest
from conftest import run_once

from repro.bench.harness import run_euler_experiment
from repro.machine.costmodel import IPSC860
from repro.workloads import generate_mesh, scale_config

PERTURBATIONS = [
    ("baseline", {}),
    ("alpha_x10", {"alpha": 10.0}),
    ("alpha_x0.1", {"alpha": 0.1}),
    ("beta_x10", {"beta": 10.0}),
    ("beta_x0.1", {"beta": 0.1}),
    ("flops_x10", {"flop_time": 10.0}),
    ("flops_x0.1", {"flop_time": 0.1}),
    ("iops_x10", {"iop_time": 10.0}),
    ("iops_x0.1", {"iop_time": 0.1}),
]


@pytest.mark.parametrize("label,factors", PERTURBATIONS, ids=[p[0] for p in PERTURBATIONS])
def test_shapes_stable_under_costmodel_perturbation(benchmark, label, factors):
    scale = scale_config()
    mesh = generate_mesh(scale.mesh_small, seed=1)
    model = IPSC860.scaled(**factors) if factors else IPSC860

    def run():
        rcb = run_euler_experiment(
            mesh, 8, partitioner="RCB", iterations=30, cost_model=model
        )
        rcb_nr = run_euler_experiment(
            mesh, 8, partitioner="RCB", iterations=30, reuse=False, cost_model=model
        )
        block = run_euler_experiment(
            mesh, 8, partitioner="BLOCK", iterations=30, cost_model=model
        )
        rsb = run_euler_experiment(
            mesh, 8, partitioner="RSB", iterations=30, cost_model=model
        )
        return rcb, rcb_nr, block, rsb

    rcb, rcb_nr, block, rsb = run_once(benchmark, run)
    loop = lambda r: r.phase("inspector") + r.phase("executor")
    assert loop(rcb) < loop(rcb_nr), label
    assert block.phase("executor") > rcb.phase("executor"), label
    assert rsb.phase("partition") > 5 * rcb.phase("partition"), label
