"""Interconnect topologies for the simulated machine.

A topology answers one question for the cost model: how many hops does a
message from processor ``src`` to processor ``dst`` traverse?  The iPSC/860
is a binary hypercube, so that is the default everywhere in the
reproduction; ring and 2-D mesh variants exist for ablations, and a
fully-connected topology gives the idealized 1-hop-everywhere model.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

if hasattr(np, "bitwise_count"):  # NumPy >= 2.0

    def _popcount(x: np.ndarray) -> np.ndarray:
        return np.bitwise_count(x).astype(np.int64)

else:  # NumPy 1.x fallback: sum set bits per byte through a 256-entry table

    _POPCOUNT8 = np.array(
        [bin(i).count("1") for i in range(256)], dtype=np.int64
    )

    def _popcount(x: np.ndarray) -> np.ndarray:
        b = np.ascontiguousarray(x, dtype=np.int64).view(np.uint8)
        return _POPCOUNT8[b].reshape(x.size, 8).sum(axis=1)


class Topology(ABC):
    """Abstract interconnect: hop counts between pairs of processors."""

    def __init__(self, n_procs: int):
        if n_procs < 1:
            raise ValueError(f"need at least one processor, got {n_procs}")
        self.n_procs = int(n_procs)

    @abstractmethod
    def hops(self, src: int, dst: int) -> int:
        """Number of network hops between processors ``src`` and ``dst``."""

    def hops_array(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Vectorized hop counts for parallel ``src``/``dst`` id arrays.

        Coerces and range-checks once, then delegates to
        :meth:`_hops_kernel`; concrete topologies override the kernel
        with closed-form array math so the machine's exchange path never
        iterates pairs in Python.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        self._check_array(src, dst)
        return self._hops_kernel(src, dst)

    def _hops_kernel(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Hop counts for validated int64 arrays (generic scalar loop)."""
        return np.fromiter(
            (self.hops(int(s), int(d)) for s, d in zip(src, dst)),
            dtype=np.int64,
            count=src.size,
        )

    @abstractmethod
    def diameter(self) -> int:
        """Maximum hop count over all processor pairs."""

    def _check(self, *procs: int) -> None:
        for p in procs:
            if not 0 <= p < self.n_procs:
                raise ValueError(
                    f"processor id {p} out of range [0, {self.n_procs})"
                )

    def _check_array(self, *proc_arrays: np.ndarray) -> None:
        for arr in proc_arrays:
            if arr.size and (arr.min() < 0 or arr.max() >= self.n_procs):
                bad = arr[(arr < 0) | (arr >= self.n_procs)][0]
                raise ValueError(
                    f"processor id {int(bad)} out of range [0, {self.n_procs})"
                )

    def neighbors(self, p: int) -> list[int]:
        """Processors exactly one hop from ``p`` (generic, O(P))."""
        self._check(p)
        return [q for q in range(self.n_procs) if q != p and self.hops(p, q) == 1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n_procs={self.n_procs})"


class HypercubeTopology(Topology):
    """Binary hypercube: the iPSC/860 interconnect.

    Processor ids are node labels; the hop count between two nodes is the
    Hamming distance of their ids.  The processor count must be a power of
    two, as on the real machine.
    """

    def __init__(self, n_procs: int):
        super().__init__(n_procs)
        if n_procs & (n_procs - 1):
            raise ValueError(
                f"hypercube needs a power-of-two processor count, got {n_procs}"
            )
        self.dim = n_procs.bit_length() - 1

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        return (src ^ dst).bit_count()

    def _hops_kernel(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        return _popcount(src ^ dst)

    def diameter(self) -> int:
        return self.dim

    def neighbors(self, p: int) -> list[int]:
        self._check(p)
        return [p ^ (1 << d) for d in range(self.dim)]


class RingTopology(Topology):
    """Bidirectional ring; hop count is the shorter way around."""

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        d = abs(src - dst)
        return min(d, self.n_procs - d)

    def _hops_kernel(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        d = np.abs(src - dst)
        return np.minimum(d, self.n_procs - d)

    def diameter(self) -> int:
        return self.n_procs // 2


class FullyConnectedTopology(Topology):
    """Every pair one hop apart: the idealized 'flat' network."""

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        return 0 if src == dst else 1

    def _hops_kernel(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        return (src != dst).astype(np.int64)

    def diameter(self) -> int:
        return 0 if self.n_procs == 1 else 1


class MeshTopology(Topology):
    """2-D mesh with near-square factorization; Manhattan hop distance."""

    def __init__(self, n_procs: int):
        super().__init__(n_procs)
        r = int(math.isqrt(n_procs))
        while n_procs % r:
            r -= 1
        self.rows = r
        self.cols = n_procs // r

    def _coords(self, p: int) -> tuple[int, int]:
        return divmod(p, self.cols)

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        (r1, c1), (r2, c2) = self._coords(src), self._coords(dst)
        return abs(r1 - r2) + abs(c1 - c2)

    def _hops_kernel(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        r1, c1 = np.divmod(src, self.cols)
        r2, c2 = np.divmod(dst, self.cols)
        return np.abs(r1 - r2) + np.abs(c1 - c2)

    def diameter(self) -> int:
        return (self.rows - 1) + (self.cols - 1)


_TOPOLOGIES = {
    "hypercube": HypercubeTopology,
    "ring": RingTopology,
    "full": FullyConnectedTopology,
    "mesh": MeshTopology,
}


def make_topology(name: str, n_procs: int) -> Topology:
    """Construct a topology by name: hypercube | ring | full | mesh."""
    try:
        cls = _TOPOLOGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown topology {name!r}; choose from {sorted(_TOPOLOGIES)}"
        ) from None
    return cls(n_procs)
