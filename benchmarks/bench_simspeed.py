"""Simulator self-performance: wall seconds for the Euler edge sweep.

Unlike every other bench (which reports *simulated* machine time), this
one tracks how fast the *simulator itself* runs -- the metric the
flattened-schedule / array-exchange vectorization optimizes.  It runs
the P=64/128/256 Euler no-reuse scenario (50k nodes, 20 executor
iterations, RCB) and writes ``benchmarks/out/BENCH_simspeed.json`` so
future PRs can track the simulator's own performance trajectory.

Reference points on this host (2026-07), P=256 scenario:

* per-pair message loops (seed): ~44.3s
* flattened CSR schedules + array exchange (PR 1): ~6.5s
* struct-of-arrays Machine counter block + flattened remap (PR 2): ~6.0s

Run standalone (``python benchmarks/bench_simspeed.py``) or under
pytest (``pytest benchmarks/bench_simspeed.py``).
"""

import json
import os
import sys
import time

OUT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "out")
MESH_CACHE_DIR = os.path.join(OUT_DIR, "mesh_cache")
JSON_PATH = os.path.join(OUT_DIR, "BENCH_simspeed.json")

N_NODES = 50000
ITERATIONS = 20
PROC_COUNTS = [64, 128, 256]

#: implementation generation recorded in the JSON so the trajectory of
#: the simulator's own performance stays attributable across PRs
IMPLEMENTATION = "soa-counter-block"


def run_simspeed(proc_counts=PROC_COUNTS, n_nodes=N_NODES, iterations=ITERATIONS):
    """Time one run per processor count; returns the result record."""
    from repro.bench.harness import run_euler_experiment
    from repro.workloads.mesh import generate_mesh

    t0 = time.perf_counter()
    mesh = generate_mesh(n_nodes, seed=0, cache_dir=MESH_CACHE_DIR)
    mesh_seconds = time.perf_counter() - t0

    scenarios = []
    for n_procs in proc_counts:
        t0 = time.perf_counter()
        res = run_euler_experiment(
            mesh,
            n_procs=n_procs,
            partitioner="RCB",
            path="compiler",
            reuse=False,
            iterations=iterations,
            seed=0,
        )
        wall = time.perf_counter() - t0
        scenarios.append(
            {
                "n_procs": n_procs,
                "wall_seconds": round(wall, 3),
                "simulated_total": res.total,
                "simulated_phases": {k: v for k, v in res.phases.items()},
                "messages": res.meta["messages"],
                "bytes": res.meta["bytes"],
            }
        )
    return {
        "scenario": "euler_edge_sweep_no_reuse",
        "implementation": IMPLEMENTATION,
        "n_nodes": n_nodes,
        "iterations": iterations,
        "partitioner": "RCB",
        "mesh_seconds": round(mesh_seconds, 3),
        "runs": scenarios,
    }


def write_report(record):
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(JSON_PATH, "w") as fh:
        json.dump(record, fh, indent=2)
    return JSON_PATH


def test_simspeed():
    record = run_simspeed()
    path = write_report(record)
    print(f"\n[simspeed written to {path}]")
    for run in record["runs"]:
        print(
            f"  P={run['n_procs']:>4}  wall={run['wall_seconds']:>7.3f}s  "
            f"simulated={run['simulated_total']:.3f}s"
        )
    # very loose hang guard only -- wall time on shared CI runners is too
    # noisy to gate tightly; regressions are tracked via the JSON artifact
    worst = max(run["wall_seconds"] for run in record["runs"])
    assert worst < 300.0, f"simulator pathologically slow: {worst}s for one scenario"


if __name__ == "__main__":
    record = run_simspeed(
        proc_counts=[int(a) for a in sys.argv[1:]] or PROC_COUNTS
    )
    path = write_report(record)
    print(json.dumps(record, indent=2))
    print(f"[written to {path}]")
