"""Irregular distribution: an arbitrary owner map, as a partitioner emits.

This is the Fortran D ``DISTRIBUTE irreg(map)`` of the paper's Figure 3:
element ``i`` lives on processor ``map[i]``.  Local offsets follow global
index order within each processor, which is also what CHAOS's remap
produces.  All lookups are precomputed dense arrays, so vectorized queries
are O(1) per element.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.distribution.base import Distribution


class IrregularDistribution(Distribution):
    """Distribution defined by an explicit per-element owner array."""

    kind = "irregular"

    def __init__(self, owner_map, n_procs: int):
        owners = np.ascontiguousarray(owner_map, dtype=np.int64)
        if owners.ndim != 1:
            raise ValueError(f"owner map must be 1-D, got shape {owners.shape}")
        super().__init__(owners.size, n_procs)
        if owners.size and (owners.min() < 0 or owners.max() >= n_procs):
            bad = owners[(owners < 0) | (owners >= n_procs)][0]
            raise ValueError(
                f"owner map entry {bad} out of range [0, {n_procs})"
            )
        self._owners = owners
        self._counts = np.bincount(owners, minlength=n_procs).astype(np.int64)
        # local offset of g = rank of g among indices owned by the same proc
        self._local = np.empty(self.size, dtype=np.int64)
        order = np.argsort(owners, kind="stable")
        starts = np.zeros(n_procs + 1, dtype=np.int64)
        np.cumsum(self._counts, out=starts[1:])
        within = np.arange(self.size, dtype=np.int64) - starts[owners[order]]
        self._local[order] = within
        # per-processor lists of owned global indices, local-offset order
        self._by_proc = [order[starts[p] : starts[p + 1]] for p in range(n_procs)]
        self._order = order
        self._starts = starts
        digest = hashlib.blake2b(owners.tobytes(), digest_size=8).hexdigest()
        self._sig = (self.kind, self.size, self.n_procs, digest)

    def owner(self, gidx):
        g = self._check_gidx(gidx)
        return self._owners[g]

    def local_index(self, gidx):
        g = self._check_gidx(gidx)
        return self._local[g]

    def translate(self, gidx):
        # one range validation, two dense gathers
        g = self._check_gidx(gidx)
        return self._owners[g], self._local[g]

    def global_index(self, p: int, lidx):
        self._check_proc(p)
        li = np.asarray(lidx, dtype=np.int64)
        n = self._counts[p]
        if li.size and (li.min() < 0 or li.max() >= n):
            raise IndexError(f"local index out of range [0, {n}) on processor {p}")
        return self._by_proc[p][li]

    def local_size(self, p: int) -> int:
        self._check_proc(p)
        return int(self._counts[p])

    def local_sizes(self) -> np.ndarray:
        return self._counts.copy()

    def local_indices(self, p: int) -> np.ndarray:
        self._check_proc(p)
        return self._by_proc[p].copy()

    def owner_map(self) -> np.ndarray:
        return self._owners.copy()

    def _build_global_perm(self) -> np.ndarray:
        # the stable owner sort from construction *is* the permutation
        return self._order

    def _build_global_perm_inverse(self) -> np.ndarray:
        return self._starts[self._owners] + self._local

    def signature(self) -> tuple:
        """Includes a content hash: remapping to a new owner map changes
        the signature, which is what lets data access descriptors detect
        redistribution (Section 3 of the paper)."""
        return self._sig
