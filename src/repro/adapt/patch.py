"""Patch a saved InspectorProduct instead of re-running the inspector.

Given the positions whose indirection values actually changed (from
``adapt.diff``), :func:`patch_product` produces an
:class:`~repro.core.inspector.InspectorProduct` equivalent to a fresh
inspection of the current arrays while charging the simulated machine
only for delta-proportional work:

1. **re-vote** -- only iterations whose reference targets changed can
   change home; their majority vote is recomputed and only *moved*
   iteration records are exchanged;
2. **reference diff** -- per pattern group, each delta iteration
   retires its old reference (classified local/ghost from the *saved*
   localized value, no translation needed) and adds its new one; only
   the added targets are translated, in one
   ``ttable.dereference_flat`` over the delta;
3. **slot update** -- per-slot reference counts absorb the delta;
   slots hitting zero retire in place (holes), new keys reuse holes
   then append (see the package docstring's layout contract);
4. **schedule + buffer patch** -- ``CommSchedule.patched`` retires dead
   entries and appends revived/new ones (pairs stay requester-major /
   owner-minor with elements key-sorted, matching a fresh ``localize``
   wire order exactly), and ``GhostBuffers.patched`` regrows the CSR
   backing copying retained slots; and
5. **localized-ref rebuild** -- unchanged references keep their saved
   localized values (slot positions are stable by construction) and are
   only permuted into the new iteration order; delta references get
   values from the delta translation.

The patched product's iteration partition, ghost key sets, schedule
pairs, send offsets and wire order equal a from-scratch inspection's;
executor results and executor charges are bit-identical.  Only the
*inspector-phase* charges differ -- that is the entire point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chaos.costs import ChaosCosts, DEFAULT_COSTS
from repro.chaos.localize import LocalizeResult, sorted_unique_inverse
from repro.chaos.transcache import KeyTranslationMemo, TranslationCache
from repro.chaos.ttable import TranslationTable
from repro.core.executor import patch_exec_caches
from repro.core.inspector import InspectorProduct, PatternData
from repro.core.iteration import (
    ITERATION_RECORD_BYTES,
    _majority_owner,
    method_refs,
    partition_from_home,
)
from repro.adapt.state import GroupState, LoopAdaptState, group_state_key, product_groups
from repro.distribution.distarray import DistArray
from repro.guard.errors import PatchAborted
from repro.machine.machine import Machine

#: integer ops per dirty element for the snapshot-vs-current compare
DIFF_IOPS_PER_ELEMENT = 2.0

_EMPTY = np.empty(0, dtype=np.int64)


class _DeltaCache:
    """Per-patch cache of per-indirection delta views.

    Every group member referencing indirection ``ind`` has the same
    delta iteration set ``D = moved ∪ changed[ind]`` and the same
    derived gathers (old/new flat positions, homes, new targets) -- and
    one loop's groups overwhelmingly share indirections (``x(edge(i))``
    and ``y(edge(i))`` both reference through ``edge``), so these are
    computed once per patch instead of once per member.  ``moved`` and
    every ``changed[...]`` are sorted subsets of ``changed_iters``, so
    the union is a flag-merge over ``changed_iters`` (no re-sort).
    """

    def __init__(
        self,
        arrays: dict[str, DistArray],
        changed: dict[str, np.ndarray],
        changed_iters: np.ndarray,
        moved: np.ndarray,
        home_old: np.ndarray,
        home_new: np.ndarray,
        inv_old: np.ndarray,
        inv_new: np.ndarray,
    ) -> None:
        self._arrays = arrays
        self._changed = changed
        self._changed_iters = changed_iters
        self._moved = moved
        self._moved_pos = np.searchsorted(changed_iters, moved)
        self._home_old = home_old
        self._home_new = home_new
        self._inv_old = inv_old
        self._inv_new = inv_new
        self._by_ind: dict[str | None, tuple] = {}

    def delta(self, ind: str | None):
        """``(D, old_pos, new_pos, p_old, p_new, t_new)`` for one
        indirection: the delta iterations, their positions in the old
        and new flat iteration orders, their old and new homes, and the
        global element each one now targets."""
        hit = self._by_ind.get(ind)
        if hit is not None:
            return hit
        ch = _EMPTY if ind is None else self._changed.get(ind, _EMPTY)
        if not ch.size:
            D = self._moved
        elif not self._moved.size and ind is not None:
            D = ch
        else:
            flag = np.zeros(self._changed_iters.size, dtype=bool)
            flag[self._moved_pos] = True
            flag[np.searchsorted(self._changed_iters, ch)] = True
            D = self._changed_iters[flag]
        if ind is None:
            t_new = D
        elif D.size:
            t_new = np.asarray(
                self._arrays[ind].global_view(), dtype=np.int64
            )[D]
        else:
            t_new = _EMPTY
        out = (
            D,
            self._inv_old[D] if D.size else _EMPTY,
            self._inv_new[D] if D.size else _EMPTY,
            self._home_old[D] if D.size else _EMPTY,
            self._home_new[D] if D.size else _EMPTY,
            t_new,
        )
        self._by_ind[ind] = out
        return out


@dataclass
class PatchResult:
    """The patched product plus delta statistics (benches report these)."""

    product: InspectorProduct
    n_changed_values: int = 0
    n_changed_iterations: int = 0
    n_moved_iterations: int = 0
    n_ghosts_added: int = 0
    n_ghosts_retired: int = 0
    n_slots_appended: int = 0
    per_group: dict = field(default_factory=dict)


def _revote(
    machine: Machine,
    loop,
    arrays: dict[str, DistArray],
    state: LoopAdaptState,
    changed_iters: np.ndarray,
    method: str,
    costs: ChaosCosts,
) -> tuple[np.ndarray, np.ndarray]:
    """Recompute homes for changed iterations; returns (home_new, moved).

    Uses the same reference selection as ``partition_iterations`` for
    ``method`` so the patched home map equals a fresh partitioning's.
    """
    home_old = state.home
    if not changed_iters.size:
        return home_old, _EMPTY
    refs = method_refs(loop, method)
    rows = []
    for ref in refs:
        dist = arrays[ref.array].distribution
        if ref.index is None:
            targets = changed_iters
        else:
            values = np.asarray(arrays[ref.index].global_view(), dtype=np.int64)
            targets = values[changed_iters]
        rows.append(np.asarray(dist.owner(targets), dtype=np.int64))
    vote = _majority_owner(rows)
    home_new = home_old.copy()
    home_new[changed_iters] = vote
    moved = changed_iters[vote != home_old[changed_iters]]
    # the old holder of each changed iteration re-examines it: one
    # translation probe + vote update per reference (the per-iteration
    # cost partition_iterations charges, restricted to the delta)
    machine.charge_compute_all(
        iops=np.bincount(home_old[changed_iters], minlength=machine.n_procs)
        * len(refs)
        * (costs.hash_lookup + 2.0)
    )
    if moved.size:
        n = machine.n_procs
        pairmat = np.zeros((n, n), dtype=np.int64)
        np.add.at(pairmat, (home_old[moved], home_new[moved]), 1)
        np.fill_diagonal(pairmat, 0)
        src, dst = np.nonzero(pairmat)
        machine.exchange(
            src=src, dst=dst, nbytes=pairmat[src, dst] * ITERATION_RECORD_BYTES
        )
    return home_new, moved


def _patch_group(
    machine: Machine,
    arrays: dict[str, DistArray],
    product: InspectorProduct,
    gstate: GroupState,
    member_keys: list,
    ttable: TranslationTable,
    deltas: "_DeltaCache",
    moved: np.ndarray,
    inv_old: np.ndarray,
    new_iter_flat: np.ndarray,
    new_bounds: np.ndarray,
    costs: ChaosCosts,
    trans_cache: KeyTranslationMemo,
) -> tuple[dict, dict, GroupState] | None:
    """Patch one pattern group; returns (new PatternData by key, stats,
    updated GroupState to persist, twin pack) or ``None`` when the group
    has no delta (saved data reusable as-is, iteration order unchanged).
    Never mutates ``gstate`` -- the caller persists the returned state
    only after every group has succeeded."""
    n = machine.n_procs
    array_name = gstate.array
    arr = arrays[array_name]
    dist = arr.distribution
    first_loc = product.patterns[member_keys[0]].localized
    local_sizes = np.asarray(first_loc.local_sizes, dtype=np.int64)
    stride = max(dist.size, 1)

    # -- per-member deltas: retire old refs, collect new ones ------------
    member_D: list[tuple[np.ndarray, np.ndarray]] = []
    rem_slot_parts: list[np.ndarray] = []
    rem_proc_parts: list[np.ndarray] = []
    add_p_parts: list[np.ndarray] = []
    add_t_parts: list[np.ndarray] = []
    for akey in member_keys:
        D, old_pos, new_pos, p_old, p_new, t_new = deltas.delta(akey[1])
        member_D.append((D, new_pos))
        if not D.size:
            add_p_parts.append(_EMPTY)
            add_t_parts.append(_EMPTY)
            continue
        lv = product.patterns[akey].localized.refs_flat[old_pos]
        is_ghost = lv >= local_sizes[p_old]
        if is_ghost.any():
            gp = p_old[is_ghost]
            rem_slot_parts.append(
                gstate.slot_bounds[gp] + (lv[is_ghost] - local_sizes[gp])
            )
            rem_proc_parts.append(gp)
        add_p_parts.append(p_new)
        add_t_parts.append(t_new)

    add_p = np.concatenate(add_p_parts) if add_p_parts else _EMPTY
    if not add_p.size and not rem_slot_parts:
        return None
    add_t = np.concatenate(add_t_parts) if add_t_parts else _EMPTY
    rem_slots = (
        np.concatenate(rem_slot_parts) if rem_slot_parts else _EMPTY
    )
    rem_procs = (
        np.concatenate(rem_proc_parts) if rem_proc_parts else _EMPTY
    )

    # -- classify the added references locally ---------------------------
    # Each requester probes its own membership table (a processor always
    # knows which globals it owns): local targets resolve to their local
    # offset on the spot, everything else is a ghost candidate.  Charged
    # as one replicated-table-style probe per added reference.
    if add_t.size:
        owners_add = np.asarray(dist.owner(add_t), dtype=np.int64)
        lidx_add = np.asarray(dist.local_index(add_t), dtype=np.int64)
    else:
        owners_add = _EMPTY
        lidx_add = _EMPTY
    ghost_mask = owners_add != add_p
    classify_iops = costs.translate_replicated * np.bincount(
        add_p, minlength=n
    ).astype(np.float64)
    machine.charge_compute_all(iops=classify_iops)

    # -- slot count update: retire / revive / insert ---------------------
    # work on a copy: gstate must stay untouched until the whole patch
    # succeeds (patch_product persists all groups together at the end),
    # so a mid-patch exception leaves state consistent with the old
    # product and a later attempt can still patch or fall back cleanly
    counts_entry = gstate.counts
    counts = counts_entry.copy()
    if rem_slots.size:
        # bincount beats ufunc.at by an order of magnitude at this size
        counts -= np.bincount(rem_slots, minlength=counts.size)
    gidx = np.flatnonzero(ghost_mask)
    comp = add_p[gidx] * stride + add_t[gidx]
    slot_proc_old = gstate.slot_proc()
    # persisted sorted slot index (built at state capture, merged on
    # every patch): probing it replaces the old per-patch full argsort
    # of the slot space, keeping patch wall work delta-proportional
    msorted, morder = gstate.slot_index(stride)
    if msorted.size:
        pos = np.searchsorted(msorted, comp)
        found = (pos < msorted.size) & (
            msorted[np.minimum(pos, msorted.size - 1)] == comp
        )
        found_slots = morder[pos[found]]
    else:
        # a group can start with zero tracked ghosts (fully local at
        # inspection); every ghost add is then a never-seen key
        found = np.zeros(comp.size, dtype=bool)
        found_slots = _EMPTY
    if found_slots.size:
        counts += np.bincount(found_slots, minlength=counts.size)
    if counts.size and counts.min() < 0:
        raise PatchAborted(
            f"adapt: negative reference count patching group "
            f"{array_name}/{gstate.indexes} -- state out of sync"
        )
    went_dead = np.flatnonzero((counts_entry > 0) & (counts == 0))
    revived = np.flatnonzero((counts_entry == 0) & (counts > 0))

    # -- translate only the *unknown* delta ------------------------------
    # Ghost adds hitting a tracked slot (live or hole) reuse the saved
    # (owner, local offset): the runtime recorded them at the last
    # inspection and conditions 1-2 guarantee they are still valid.
    # Only never-before-seen keys dereference through the translation
    # table -- one dereference_flat over that (typically tiny) set, the
    # only remote-translation traffic a patch pays.
    comp_missing = comp[~found]
    uniq_comp, inv_missing = sorted_unique_inverse(comp_missing)
    uniq_proc = uniq_comp // stride
    uniq_key = uniq_comp % stride
    n_uniq = uniq_comp.size
    need = np.bincount(uniq_proc, minlength=n)
    uniq_owner, uniq_lidx = trans_cache.translate(
        machine, ttable, stride, uniq_proc, uniq_key, costs
    )

    # -- allocate slots: reuse holes ascending, then append --------------
    old_bounds = gstate.slot_bounds
    old_sizes = np.diff(old_bounds)
    free_slots = np.flatnonzero(counts == 0)
    free_proc = slot_proc_old[free_slots]
    free_bounds = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(free_proc, minlength=n), out=free_bounds[1:])
    frank = np.arange(free_slots.size, dtype=np.int64) - free_bounds[free_proc]
    usable = frank < need[free_proc]
    reused = free_slots[usable]
    reused_proc = free_proc[usable]
    n_reuse = np.bincount(reused_proc, minlength=n)
    n_append = need - n_reuse
    new_sizes = old_sizes + n_append
    slot_bounds_new = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(new_sizes, out=slot_bounds_new[1:])
    shift = slot_bounds_new[:-1] - old_bounds[:-1]

    # remap old per-slot arrays into the grown slot space
    s_new_total = int(slot_bounds_new[-1])
    newpos_of_old = np.arange(old_bounds[-1], dtype=np.int64) + shift[slot_proc_old]
    keys2 = np.full(s_new_total, -1, dtype=np.int64)
    owners2 = np.zeros(s_new_total, dtype=np.int64)
    lidx2 = np.zeros(s_new_total, dtype=np.int64)
    counts2 = np.zeros(s_new_total, dtype=np.int64)
    if newpos_of_old.size:
        keys2[newpos_of_old] = gstate.keys
        owners2[newpos_of_old] = gstate.owners
        lidx2[newpos_of_old] = gstate.lidx
        counts2[newpos_of_old] = counts

    # assign each unique new key a slot (per proc: reused asc, then appended)
    uniq_bounds = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(need, out=uniq_bounds[1:])
    urank = np.arange(n_uniq, dtype=np.int64) - uniq_bounds[uniq_proc]
    take_reuse = urank < n_reuse[uniq_proc]
    reuse_bounds = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(n_reuse, out=reuse_bounds[1:])
    reused_new = reused + shift[reused_proc]
    alloc = np.empty(n_uniq, dtype=np.int64)
    if take_reuse.any():
        tp = uniq_proc[take_reuse]
        alloc[take_reuse] = reused_new[reuse_bounds[tp] + urank[take_reuse]]
    grow = ~take_reuse
    if grow.any():
        gp = uniq_proc[grow]
        alloc[grow] = (
            slot_bounds_new[gp] + old_sizes[gp] + (urank[grow] - n_reuse[gp])
        )
    keys2[alloc] = uniq_key
    owners2[alloc] = uniq_owner
    lidx2[alloc] = uniq_lidx
    if inv_missing.size:
        counts2 += np.bincount(alloc[inv_missing], minlength=counts2.size)

    # resolved (new-space) slot per ghost add
    slot_of_ghost_add = np.empty(comp.size, dtype=np.int64)
    slot_of_ghost_add[found] = found_slots + shift[add_p[gidx[found]]]
    slot_of_ghost_add[~found] = alloc[inv_missing]

    # -- schedule patch: retire dead entries, append revived + new -------
    old_schedule = first_loc.schedule
    eq, ep, _esend, erecv = old_schedule.entries()
    entry_slot = old_bounds[ep] + erecv
    dead_mask = np.zeros(int(old_bounds[-1]), dtype=bool)
    dead_mask[went_dead] = True
    keep = ~dead_mask[entry_slot]
    sched_add_slots = np.concatenate(
        [revived + shift[slot_proc_old[revived]], alloc]
    )
    add_slot_proc = (
        np.searchsorted(slot_bounds_new, sched_add_slots, side="right") - 1
    )
    schedule_new = old_schedule.patched(
        keep,
        add_q=owners2[sched_add_slots],
        add_p=add_slot_proc,
        add_send=lidx2[sched_add_slots],
        add_recv=sched_add_slots - slot_bounds_new[add_slot_proc],
        ghost_sizes=[int(s) for s in new_sizes],
        keep_key=gstate.keys[entry_slot],
        add_key=keys2[sched_add_slots],
    )
    ghosts_new = product.patterns[member_keys[0]].ghosts.patched(
        schedule_new, costs=costs, appended=need
    )

    # -- charge the delta-proportional inspector work --------------------
    n_add_per_proc = np.bincount(add_p, minlength=n).astype(np.float64)
    n_rem_per_proc = np.bincount(rem_procs, minlength=n).astype(np.float64)
    new_per_proc = need.astype(np.float64)
    dead_per_proc = np.bincount(
        slot_proc_old[went_dead], minlength=n
    ).astype(np.float64)
    revived_per_proc = np.bincount(
        slot_proc_old[revived], minlength=n
    ).astype(np.float64)
    sched_delta_per_proc = dead_per_proc + revived_per_proc + new_per_proc
    sched_iops = (
        costs.hash_lookup * (n_add_per_proc + n_rem_per_proc)
        + costs.hash_insert * new_per_proc
        + costs.schedule_build * sched_delta_per_proc
    )
    machine.charge_compute_all(iops=sched_iops)
    # requesters tell owners which send-list entries to add/retire
    d_p = np.concatenate(
        [slot_proc_old[went_dead], slot_proc_old[revived], uniq_proc]
    )
    d_q = np.concatenate(
        [gstate.owners[went_dead], gstate.owners[revived], uniq_owner]
    )
    exch = None
    recv_iops = None
    if d_p.size:
        pcomp, pinv = sorted_unique_inverse(d_p * n + d_q)
        pcounts = np.bincount(pinv, minlength=pcomp.size)
        pp, pq = pcomp // n, pcomp % n
        cross = pp != pq
        exch = (pp[cross], pq[cross], pcounts[cross] * costs.index_bytes)
        recv_iops = costs.schedule_build * np.bincount(
            d_q, minlength=n
        ).astype(np.float64)
        machine.exchange(src=exch[0], dst=exch[1], nbytes=exch[2])
        machine.charge_compute_all(iops=recv_iops)

    # -- rebuild per-member localized reference lists --------------------
    old_to_new = inv_old[new_iter_flat]
    ghost_flat = keys2.copy()
    ghost_flat[counts2 == 0] = -1
    patterns_new: dict = {}
    partition_changed = moved.size > 0
    shared_space = None
    offset = 0
    for akey, (D, dpos) in zip(member_keys, member_D):
        pat = product.patterns[akey]
        new_loc_refs = pat.localized.refs_flat[old_to_new]
        n_d = D.size
        if n_d:
            seg = slice(offset, offset + n_d)
            p_seg = add_p[seg]
            vals = lidx_add[seg].copy()
            gm = ghost_mask[seg]
            if gm.any():
                # this member's ghost adds located inside the group-level
                # ghost-add stream (gidx is sorted add-stream positions)
                member_ghost = offset + np.flatnonzero(gm)
                slots = slot_of_ghost_add[np.searchsorted(gidx, member_ghost)]
                vals[gm] = local_sizes[p_seg[gm]] + (
                    slots - slot_bounds_new[p_seg[gm]]
                )
            new_loc_refs[dpos] = vals
        offset += n_d
        loc_new = LocalizeResult(
            local_sizes=[int(s) for s in local_sizes],
            schedule=schedule_new,
            refs_flat=new_loc_refs,
            ref_bounds=new_bounds,
            ghost_flat=ghost_flat,
            ghost_bounds=slot_bounds_new,
        )
        new_pat = PatternData(
            array=array_name, index=akey[1], localized=loc_new, ghosts=ghosts_new
        )
        # carry the executor's combined-space caches across the patch
        # (host-level; delta positions only) instead of dropping them
        carried = patch_exec_caches(
            pat,
            new_pat,
            changed_pos=dpos,
            partition_changed=partition_changed,
            space=shared_space,
        )
        if carried is not None:
            shared_space = carried
        patterns_new[akey] = new_pat

    # -- merge the delta into the persisted sorted slot index ------------
    # reused holes change key (drop their old entries), every allocated
    # slot gains one (uniq_comp is ascending and disjoint from surviving
    # comps -- a found comp is never allocated), and surviving entries
    # keep their order with slot ids shifted into the grown space
    S_old = gstate.keys.size
    pos_of_slot = np.empty(S_old, dtype=np.int64)
    pos_of_slot[morder] = np.arange(S_old, dtype=np.int64)
    live_entry = np.ones(S_old, dtype=bool)
    live_entry[pos_of_slot[reused]] = False
    kept_comp = msorted[live_entry]
    kept_slot = (morder + shift[slot_proc_old[morder]])[live_entry]
    nk = kept_comp.size
    kr = np.arange(nk, dtype=np.int64)
    ins = np.searchsorted(kept_comp, uniq_comp, side="right")
    sorted_comp2 = np.empty(nk + n_uniq, dtype=np.int64)
    sorted_slot2 = np.empty(nk + n_uniq, dtype=np.int64)
    added_pos = ins + np.arange(n_uniq, dtype=np.int64)
    kept_pos = kr + np.searchsorted(ins, kr, side="right")
    sorted_comp2[kept_pos] = kept_comp
    sorted_slot2[kept_pos] = kept_slot
    sorted_comp2[added_pos] = uniq_comp
    sorted_slot2[added_pos] = alloc

    # the updated slot space, applied by the caller once every group
    # has patched successfully (atomicity: see counts copy above)
    new_state = GroupState(
        array=gstate.array,
        indexes=gstate.indexes,
        slot_bounds=slot_bounds_new,
        keys=keys2,
        owners=owners2,
        lidx=lidx2,
        counts=counts2,
        sorted_comp=sorted_comp2,
        sorted_slot=sorted_slot2,
        index_stride=stride,
    )
    stats = {
        "added": int(ghost_mask.sum()),
        "retired": int(went_dead.size),
        "revived": int(revived.size),
        "new_unique": int(n_uniq),
        "appended": int(n_append.sum()),
    }
    # everything a structurally identical sibling group needs to replay
    # this patch without recomputing it (see _patch_group_twin)
    pack = {
        "inds": [k[1] for k in member_keys],
        "old_gstate": gstate,
        "old_schedule": old_schedule,
        "old_refs": {
            k[1]: product.patterns[k].localized.refs_flat for k in member_keys
        },
        "local_sizes": local_sizes,
        "need": need,
        "schedule_new": schedule_new,
        "new_patterns": {k[1]: patterns_new[k] for k in member_keys},
        "new_state": new_state,
        "stats": stats,
        "classify_iops": classify_iops,
        "probe_iops": costs.hash_lookup
        * np.bincount(uniq_proc, minlength=n).astype(np.float64),
        "sched_iops": sched_iops,
        "exch": exch,
        "recv_iops": recv_iops,
    }
    return patterns_new, stats, new_state, pack


def _same(a, b) -> bool:
    """Array equality with an identity fast path.

    Twin groups share ndarray objects after their first deduplicated
    patch, so steady-state verification is ``is`` checks; full content
    compares only happen on the first patch after a capture or a
    checkpoint restore (pickling breaks sharing)."""
    return a is b or np.array_equal(a, b)


def _twin_matches(pack, product, gstate: GroupState, member_keys: list) -> bool:
    """Whether this group is byte-identical to the group ``pack`` came
    from: same indirections, same slot state, same schedule content,
    same saved localized references.  When it is, the groups perform
    identical patch work and :func:`_patch_group_twin` applies."""
    if [k[1] for k in member_keys] != pack["inds"]:
        return False
    g0 = pack["old_gstate"]
    for f in ("slot_bounds", "keys", "owners", "lidx", "counts"):
        if not _same(getattr(gstate, f), getattr(g0, f)):
            return False
    first = product.patterns[member_keys[0]].localized
    s0, s1 = pack["old_schedule"], first.schedule
    if s1 is not s0:
        if s1.ghost_sizes != s0.ghost_sizes:
            return False
        for f in ("_pair_q", "_pair_p", "_pair_len", "_flat_send", "_flat_recv"):
            if not _same(getattr(s1, f), getattr(s0, f)):
                return False
    if not np.array_equal(
        np.asarray(first.local_sizes, dtype=np.int64), pack["local_sizes"]
    ):
        return False
    for akey in member_keys:
        if not _same(
            product.patterns[akey].localized.refs_flat, pack["old_refs"][akey[1]]
        ):
            return False
    return True


def _patch_group_twin(
    machine: Machine,
    product: InspectorProduct,
    gstate: GroupState,
    member_keys: list,
    ttable: TranslationTable,
    pack: dict,
    trans_cache: KeyTranslationMemo,
    sig: tuple,
    costs: ChaosCosts,
) -> tuple[dict, dict, GroupState]:
    """Replay a structurally identical sibling group's patch.

    One loop's pattern groups routinely differ only in the data array
    they move (``x(edge(i))`` vs ``y(edge(i))``): same distribution,
    same indirections, and -- verified by :func:`_twin_matches` -- the
    same slot state, so every host-side array the patch derives is the
    same.  The sibling shares those arrays outright (schedules are
    immutable; a :meth:`~repro.chaos.schedule.CommSchedule.twin` clone
    keeps the distinct object identity the executor's coalescing and
    ``product_groups`` key on) and rebuilds only what is genuinely
    per-group: its ghost backing (its own data values) and its simulated
    charges.  Charges are replayed in _patch_group's exact order --
    including the translation-cache probe this group would have paid in
    place of remote dereferences -- so machine numbers are identical to
    patching each group independently.
    """
    schedule_new = pack["schedule_new"].twin()
    machine.charge_compute_all(iops=pack["classify_iops"])
    if trans_cache.has_entries(sig):
        machine.charge_compute_all(iops=pack["probe_iops"])
    # an independent patch of this group would probe the translation
    # cache (all hits -- the sibling populated it) and then dereference
    # an *empty* miss set, which still pays the table's fixed
    # request/reply round; replay that too
    ttable.dereference_flat(
        _EMPTY, np.zeros(machine.n_procs + 1, dtype=np.int64)
    )
    ghosts_new = product.patterns[member_keys[0]].ghosts.patched(
        schedule_new, costs=costs, appended=pack["need"]
    )
    machine.charge_compute_all(iops=pack["sched_iops"])
    if pack["exch"] is not None:
        src, dst, nbytes = pack["exch"]
        machine.exchange(src=src, dst=dst, nbytes=nbytes)
        machine.charge_compute_all(iops=pack["recv_iops"])
    patterns_new: dict = {}
    for akey in member_keys:
        prim = pack["new_patterns"][akey[1]]
        loc = prim.localized
        loc_new = LocalizeResult(
            local_sizes=loc.local_sizes,
            schedule=schedule_new,
            refs_flat=loc.refs_flat,
            ref_bounds=loc.ref_bounds,
            ghost_flat=loc.ghost_flat,
            ghost_bounds=loc.ghost_bounds,
        )
        # executor caches are value-independent (positions only), so the
        # sibling's patched caches are this group's too
        patterns_new[akey] = PatternData(
            array=gstate.array,
            index=akey[1],
            localized=loc_new,
            ghosts=ghosts_new,
            exec_space=prim.exec_space,
            exec_refs=prim.exec_refs,
        )
    ns = pack["new_state"]
    new_state = GroupState(
        array=gstate.array,
        indexes=gstate.indexes,
        slot_bounds=ns.slot_bounds,
        keys=ns.keys,
        owners=ns.owners,
        lidx=ns.lidx,
        counts=ns.counts,
        sorted_comp=ns.sorted_comp,
        sorted_slot=ns.sorted_slot,
        index_stride=ns.index_stride,
    )
    return patterns_new, dict(pack["stats"]), new_state


def patch_product(
    machine: Machine,
    product: InspectorProduct,
    arrays: dict[str, DistArray],
    state: LoopAdaptState,
    changed: dict[str, np.ndarray],
    ttables: dict[tuple[str, tuple], TranslationTable],
    costs: ChaosCosts = DEFAULT_COSTS,
    cache: TranslationCache | None = None,
) -> PatchResult:
    """Patch ``product`` for the given changed indirection positions.

    ``changed`` maps indirection array name -> sorted positions whose
    values differ from ``state.snapshots`` (from
    :func:`~repro.adapt.diff.changed_positions`; diff charges are the
    caller's).  Preconditions (the caller -- the driver -- verifies
    them): every data/indirection DAD equals the product's, and
    ``ttables`` holds the translation table of every referenced array's
    current distribution.  Mutates ``state`` (home map, snapshots,
    group slot spaces) to describe the patched product.
    """
    loop = product.loop
    n_procs = machine.n_procs

    parts = [c for c in changed.values() if c.size]
    if not parts:
        changed_iters = _EMPTY
    elif len(parts) == 1:
        changed_iters = parts[0]
    else:
        # union of sorted position sets via one flag pass over the
        # iteration space -- beats sorting the concatenation
        flag = np.zeros(loop.n_iterations, dtype=bool)
        for c in parts:
            flag[c] = True
        changed_iters = np.flatnonzero(flag)
    home_old = state.home
    old_part = product.iteration_partition
    home_new, moved = _revote(
        machine, loop, arrays, state, changed_iters, old_part.method, costs
    )
    old_iter_flat, _old_bounds = old_part.iters_flat()
    n = loop.n_iterations
    inv_old = np.empty(n, dtype=np.int64)
    inv_old[old_iter_flat] = np.arange(n, dtype=np.int64)
    if moved.size:
        new_part = partition_from_home(home_new, n_procs, old_part.method)
    else:
        new_part = old_part
    new_iter_flat, new_bounds = new_part.iters_flat()
    inv_new = np.empty(n, dtype=np.int64)
    inv_new[new_iter_flat] = np.arange(n, dtype=np.int64)

    result = PatchResult(
        product=product,
        n_changed_values=sum(int(c.size) for c in changed.values()),
        n_changed_iterations=int(changed_iters.size),
        n_moved_iterations=int(moved.size),
    )

    patterns_new: dict = dict(product.patterns)
    pending_states: dict = {}
    any_patched = False
    # per-patch key-translation memo: obtained through the shared
    # TranslationCache when the program runs one (a thin view -- the
    # memo itself must stay patch-local so each patch's charging is
    # independent of history), standalone otherwise
    trans_cache = (
        cache.patch_view() if cache is not None else KeyTranslationMemo()
    )
    deltas = _DeltaCache(
        arrays, changed, changed_iters, moved,
        home_old, home_new, inv_old, inv_new,
    )
    group_memo: dict[tuple, dict] = {}
    for member_keys in product_groups(product):
        gkey = group_state_key(member_keys)
        gstate = state.groups[gkey]
        arr = arrays[gstate.array]
        sig = arr.distribution.signature()
        ttable = ttables[(gstate.array, sig)]
        # groups over the same indirections and distribution whose slot
        # state is byte-identical patch identically: compute once, let
        # every sibling replay the result (charges included)
        mkey = (tuple(k[1] for k in member_keys), sig)
        twin = group_memo.get(mkey)
        try:
            if twin is not None and twin.get("none"):
                # an empty delta is a function of the indirections
                # alone, so the sibling's is empty too
                out = None
            elif twin is not None and _twin_matches(
                twin, product, gstate, member_keys
            ):
                out = _patch_group_twin(
                    machine,
                    product,
                    gstate,
                    member_keys,
                    ttable,
                    twin,
                    trans_cache,
                    sig,
                    costs,
                )
            else:
                full = _patch_group(
                    machine,
                    arrays,
                    product,
                    gstate,
                    member_keys,
                    ttable,
                    deltas,
                    moved,
                    inv_old,
                    new_iter_flat,
                    new_bounds,
                    costs,
                    trans_cache,
                )
                if full is None:
                    group_memo[mkey] = {"none": True}
                    out = None
                else:
                    out = full[:3]
                    group_memo[mkey] = full[3]
        except ValueError as exc:
            # schedule/buffer assembly rejected the delta (shrunk ghost
            # region, mismatched shapes): the saved state disagrees with
            # the product -- a recoverable abort, nothing persisted yet
            raise PatchAborted(
                f"adapt: patch assembly failed for group {gkey}: {exc}"
            ) from exc
        if out is None:
            continue
        group_patterns, stats, new_gstate = out
        patterns_new.update(group_patterns)
        pending_states[gkey] = new_gstate
        result.per_group[gkey] = stats
        result.n_ghosts_added += stats["revived"] + stats["new_unique"]
        result.n_ghosts_retired += stats["retired"]
        result.n_slots_appended += stats["appended"]
        any_patched = True

    # every group patched without error: persist the new slot spaces
    for gkey, new_gstate in pending_states.items():
        state.groups[gkey] = new_gstate

    machine.barrier()

    # update snapshots at the changed positions only (owners re-copy them)
    snap_mem = np.zeros(n_procs)
    for name, pos in changed.items():
        if not pos.size:
            continue
        cur = np.asarray(arrays[name].global_view(), dtype=np.int64)
        state.snapshots[name][pos] = cur[pos]
        owners = np.asarray(arrays[name].distribution.owner(pos), dtype=np.int64)
        snap_mem += np.bincount(owners, minlength=n_procs).astype(np.float64)
    if snap_mem.any():
        machine.charge_compute_all(mem=snap_mem)

    state.home = home_new
    if not any_patched and new_part is old_part:
        # value rewrites that cancelled out: nothing to patch
        return result
    result.product = InspectorProduct(
        loop=loop,
        iteration_partition=new_part,
        patterns=patterns_new,
        dist_signatures=dict(product.dist_signatures),
    )
    return result
