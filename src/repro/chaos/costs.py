"""Operation-count constants charged by CHAOS procedures.

CHAOS/PARTI inspectors are integer/pointer code: hash tables to
deduplicate off-processor references, translation-table probes, schedule
assembly, buffer bookkeeping.  On the i860 this code ran at an effective
~1-1.5 M integer ops/s (poor cache behaviour), which is why the paper's
inspector and remap phases cost whole seconds for tens of thousands of
references.  We reproduce that balance by charging explicit per-element
operation counts, centralized here so tests can assert on them and the
calibration ablation can perturb them.

Counts are rough i860-era instruction estimates per element for each
primitive; only their ratios to the flop/byte costs matter for the
reproduction's table shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ChaosCosts:
    """Per-element integer-operation counts for CHAOS primitives."""

    hash_insert: float = 10.0
    """Insert a global index into the dedup hash table (one probe chain)."""

    hash_lookup: float = 5.0
    """Probe the dedup hash table for an already-seen index."""

    translate_regular: float = 3.0
    """Closed-form owner/offset computation (div/mod) for regular dists."""

    translate_replicated: float = 4.0
    """Local translation-table lookup (two array reads + bounds check)."""

    translate_remote: float = 6.0
    """Table-page probe executed at the page owner (distributed table)."""

    schedule_build: float = 14.0
    """Per unique off-processor reference: send-list/recv-slot assembly."""

    buffer_assign: float = 4.0
    """Per ghost slot: buffer address assignment and index rewrite."""

    remap_build: float = 18.0
    """Per element: new-translation-table entry + remap schedule slot."""

    pack_unpack_mem: float = 2.0
    """8-byte memory accesses per element when packing/unpacking buffers."""

    index_bytes: int = 4
    """Wire size of one index in request messages (PARTI used 32-bit ints)."""

    def scaled(self, factor: float) -> "ChaosCosts":
        """Uniformly scale all per-element op counts (for ablations)."""
        if factor < 0:
            raise ValueError(f"negative scale factor {factor}")
        return replace(
            self,
            hash_insert=self.hash_insert * factor,
            hash_lookup=self.hash_lookup * factor,
            translate_regular=self.translate_regular * factor,
            translate_replicated=self.translate_replicated * factor,
            translate_remote=self.translate_remote * factor,
            schedule_build=self.schedule_build * factor,
            buffer_assign=self.buffer_assign * factor,
            remap_build=self.remap_build * factor,
            pack_unpack_mem=self.pack_unpack_mem * factor,
        )


DEFAULT_COSTS = ChaosCosts()
