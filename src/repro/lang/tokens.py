"""Tokenizer for the directive dialect.

Line-oriented, case-insensitive keywords.  Lines beginning with ``!`` or
``C `` (classic fixed-form comment) are skipped; the compiler-directive
prefixes ``C$`` and ``!$`` are stripped, so directives read exactly as in
the paper's figures.  A NEWLINE token separates statements.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum, auto


class TokenKind(Enum):
    IDENT = auto()
    NUMBER = auto()
    STRING = auto()
    OP = auto()       # + - * / ** ( ) , = <anything punctuational>
    NEWLINE = auto()
    EOF = auto()


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.col})"


_TOKEN_RE = re.compile(
    r"""
    (?P<number>(\d+\.\d*|\.\d+|\d+)([deDE][+-]?\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_$]*(\*\d+)?)     # REAL*8 folds into ident
  | (?P<string>'[^']*')
  | (?P<op>\*\*|[-+*/(),=])
  | (?P<ws>[ \t]+)
    """,
    re.VERBOSE,
)

_COMMENT_LINE = re.compile(r"^\s*(!(?!\$).*)?$|^[Cc*]\s")
_DIRECTIVE_PREFIX = re.compile(r"^\s*([Cc!]\$)\s*")


def tokenize(source: str) -> list[Token]:
    """Tokenize a program; raises ValueError on unrecognized characters."""
    tokens: list[Token] = []
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.rstrip()
        if not line.strip():
            continue
        if _COMMENT_LINE.match(line) and not _DIRECTIVE_PREFIX.match(line):
            continue
        line = _DIRECTIVE_PREFIX.sub("", line)
        pos = 0
        emitted = False
        while pos < len(line):
            m = _TOKEN_RE.match(line, pos)
            if m is None:
                raise ValueError(
                    f"line {lineno}: unrecognized character {line[pos]!r} at "
                    f"column {pos + 1}"
                )
            pos = m.end()
            if m.lastgroup == "ws":
                continue
            kind = {
                "number": TokenKind.NUMBER,
                "ident": TokenKind.IDENT,
                "string": TokenKind.STRING,
                "op": TokenKind.OP,
            }[m.lastgroup]
            text = m.group()
            if kind == TokenKind.IDENT:
                text = text.upper()
            tokens.append(Token(kind, text, lineno, m.start() + 1))
            emitted = True
        if emitted:
            tokens.append(Token(TokenKind.NEWLINE, "\n", lineno, len(line) + 1))
    tokens.append(Token(TokenKind.EOF, "", len(source.splitlines()) + 1, 1))
    return tokens
