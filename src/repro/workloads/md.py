"""Molecular-dynamics workload: a 648-atom water box (216 H2O).

Stands in for the CHARMM electrostatic force loop the paper times: TIP3P-
style charges on a jittered molecular lattice at liquid-water density,
a cutoff-radius pair list, and a Coulomb force sweep whose structure is
exactly loop L2 -- indirect reads of both endpoints' positions/charges
and ADD reductions into per-atom force accumulators at both endpoints.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.core.forall import ArrayRef, ForallLoop, Reduce
from repro.core.program import IrregularProgram
from repro.machine.machine import Machine

#: TIP3P partial charges (e)
_Q_O = -0.834
_Q_H = 0.417
#: liquid water: one molecule per ~29.9 cubic Angstroms
_MOLECULE_VOLUME = 29.9
#: O-H bond length (Angstroms) used for the rigid-molecule geometry
_BOND = 0.9572
#: modeled flops per pair interaction (distance, inverse-r^3, accumulate)
MD_PAIR_FLOPS = 30.0


def water_box(n_atoms: int = 648, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Build a water box; returns (coords (3, n_atoms), charges (n_atoms,)).

    ``n_atoms`` must be a multiple of 3 (whole molecules).  Molecules sit
    on a jittered cubic lattice sized for liquid density; each carries an
    O at the lattice site and two randomly oriented H atoms.  Atom order
    is randomized so the array numbering carries no spatial locality.
    """
    if n_atoms % 3:
        raise ValueError(f"n_atoms must be a multiple of 3, got {n_atoms}")
    n_mol = n_atoms // 3
    rng = np.random.default_rng(seed)
    side = (n_mol * _MOLECULE_VOLUME) ** (1.0 / 3.0)
    cells = int(np.ceil(n_mol ** (1.0 / 3.0)))
    spacing = side / cells
    sites = []
    for ix in range(cells):
        for iy in range(cells):
            for iz in range(cells):
                sites.append((ix + 0.5, iy + 0.5, iz + 0.5))
                if len(sites) == n_mol:
                    break
            if len(sites) == n_mol:
                break
        if len(sites) == n_mol:
            break
    oxygen = np.asarray(sites) * spacing
    oxygen += rng.uniform(-0.12, 0.12, size=oxygen.shape) * spacing

    coords = np.empty((n_atoms, 3))
    charges = np.empty(n_atoms)
    h_dirs = rng.normal(size=(n_mol, 2, 3))
    h_dirs /= np.linalg.norm(h_dirs, axis=2, keepdims=True)
    for m in range(n_mol):
        coords[3 * m] = oxygen[m]
        charges[3 * m] = _Q_O
        coords[3 * m + 1] = oxygen[m] + _BOND * h_dirs[m, 0]
        coords[3 * m + 2] = oxygen[m] + _BOND * h_dirs[m, 1]
        charges[3 * m + 1] = charges[3 * m + 2] = _Q_H

    perm = rng.permutation(n_atoms)
    return coords[perm].T.copy(), charges[perm].copy()


def pair_list(coords: np.ndarray, cutoff: float = 8.0) -> np.ndarray:
    """Unique atom pairs within ``cutoff`` Angstroms, as a (2, P) array."""
    if coords.ndim != 2 or coords.shape[0] != 3:
        raise ValueError(f"coords must have shape (3, N), got {coords.shape}")
    tree = cKDTree(coords.T)
    pairs = tree.query_pairs(cutoff, output_type="ndarray")
    if pairs.size == 0:
        return np.empty((2, 0), dtype=np.int64)
    return np.sort(pairs.astype(np.int64), axis=1).T.copy()


def _coulomb_p1(q1, q2, x1, y1, z1, x2, y2, z2):
    """x-component of the Coulomb force on endpoint 1."""
    dx, dy, dz = x1 - x2, y1 - y2, z1 - z2
    r2 = dx * dx + dy * dy + dz * dz
    inv_r3 = 1.0 / np.maximum(r2, 1e-12) ** 1.5
    return q1 * q2 * dx * inv_r3


def _coulomb_p2(q1, q2, x1, y1, z1, x2, y2, z2):
    """x-component of the Coulomb force on endpoint 2 (Newton's third law)."""
    return -_coulomb_p1(q1, q2, x1, y1, z1, x2, y2, z2)


def md_force_loop(n_pairs: int) -> ForallLoop:
    """The electrostatic force sweep over the pair list (loop L2 shape).

    Reads positions and charges of both endpoints through the pair-list
    indirection arrays ``p1``/``p2``; REDUCE(ADD)s the x-force into
    ``fx`` at both endpoints.  (One Cartesian component suffices to
    exercise the full communication pattern; the modeled flop count
    covers all three.)
    """
    # order: q(p1), q(p2), rx(p1), ry(p1), rz(p1), rx(p2), ry(p2), rz(p2)
    reads = (
        ArrayRef("q", "p1"),
        ArrayRef("q", "p2"),
        ArrayRef("rx", "p1"),
        ArrayRef("ry", "p1"),
        ArrayRef("rz", "p1"),
        ArrayRef("rx", "p2"),
        ArrayRef("ry", "p2"),
        ArrayRef("rz", "p2"),
    )
    return ForallLoop(
        "md_force_sweep",
        n_pairs,
        [
            Reduce("add", ArrayRef("fx", "p1"), _coulomb_p1, reads, flops=MD_PAIR_FLOPS),
            Reduce("add", ArrayRef("fx", "p2"), _coulomb_p2, reads, flops=MD_PAIR_FLOPS),
        ],
    )


def setup_md_program(
    machine: Machine,
    n_atoms: int = 648,
    cutoff: float = 8.0,
    seed: int = 0,
    **program_kwargs,
) -> tuple[IrregularProgram, np.ndarray]:
    """Declare the MD program state; returns (program, pair array).

    Decomposition ``atoms`` holds per-atom arrays (positions ``rx``/
    ``ry``/``rz``, charges ``q``, force ``fx``); decomposition ``pairs``
    holds the pair-list indirection arrays ``p1``/``p2``.
    """
    coords, charges = water_box(n_atoms, seed)
    pairs = pair_list(coords, cutoff)
    prog = IrregularProgram(machine, **program_kwargs)
    prog.decomposition("atoms", n_atoms)
    prog.decomposition("pairs", pairs.shape[1])
    prog.distribute("atoms", "block")
    prog.distribute("pairs", "block")
    prog.array("rx", "atoms", values=coords[0])
    prog.array("ry", "atoms", values=coords[1])
    prog.array("rz", "atoms", values=coords[2])
    prog.array("q", "atoms", values=charges)
    prog.array("fx", "atoms", values=np.zeros(n_atoms))
    prog.array("p1", "pairs", values=pairs[0], dtype=np.int64)
    prog.array("p2", "pairs", values=pairs[1], dtype=np.int64)
    return prog, pairs


def md_sequential_reference(
    coords: np.ndarray, charges: np.ndarray, pairs: np.ndarray, n_times: int = 1
) -> np.ndarray:
    """Plain-NumPy reference for the x-force accumulation."""
    fx = np.zeros(coords.shape[1])
    p1, p2 = pairs
    args = (
        charges[p1],
        charges[p2],
        coords[0][p1],
        coords[1][p1],
        coords[2][p1],
        coords[0][p2],
        coords[1][p2],
        coords[2][p2],
    )
    for _ in range(n_times):
        np.add.at(fx, p1, _coulomb_p1(*args))
        np.add.at(fx, p2, _coulomb_p2(*args))
    return fx
