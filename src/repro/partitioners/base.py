"""Partitioner interface, standardized problem/result types, registry.

The "standardized representation" the compiler generates from GeoCoL
directives (Section 4.1.2) is :class:`PartitionProblem`: vertex count,
optional edge lists (LINK), optional coordinates (GEOMETRY), optional
vertex weights (LOAD).  Every partitioner consumes this one type -- that
uniform calling sequence is exactly the paper's fix for partitioners
"using different data structures and being very problem dependent".

Partitioners also *model their own parallel cost* (the paper's
partitioners are themselves parallelized): a :class:`PartitionResult`
carries total flop/iop counts and a synchronization-round count, which
the mapper coupler divides across processors and charges to the machine.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np


@dataclass
class PartitionProblem:
    """Standardized partitioner input (built from a GeoCoL graph).

    Attributes
    ----------
    n_vertices:
        Number of GeoCoL vertices (= distributed-array elements).
    edges:
        Optional ``(2, E)`` int array of undirected edges (LINK info).
    coords:
        Optional ``(ndim, N)`` float array of spatial positions (GEOMETRY).
    weights:
        Optional ``(N,)`` float array of computational loads (LOAD).
    """

    n_vertices: int
    edges: np.ndarray | None = None
    coords: np.ndarray | None = None
    weights: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.n_vertices < 0:
            raise ValueError(f"negative vertex count {self.n_vertices}")
        if self.edges is not None:
            self.edges = np.ascontiguousarray(self.edges, dtype=np.int64)
            if self.edges.ndim != 2 or self.edges.shape[0] != 2:
                raise ValueError(
                    f"edges must have shape (2, E), got {self.edges.shape}"
                )
            if self.edges.size and (
                self.edges.min() < 0 or self.edges.max() >= self.n_vertices
            ):
                raise ValueError("edge endpoint out of range")
        if self.coords is not None:
            self.coords = np.ascontiguousarray(self.coords, dtype=np.float64)
            if self.coords.ndim != 2:
                raise ValueError(
                    f"coords must have shape (ndim, N), got {self.coords.shape}"
                )
            if self.coords.shape[1] != self.n_vertices:
                raise ValueError(
                    f"coords cover {self.coords.shape[1]} vertices, expected "
                    f"{self.n_vertices}"
                )
        if self.weights is not None:
            self.weights = np.ascontiguousarray(self.weights, dtype=np.float64)
            if self.weights.shape != (self.n_vertices,):
                raise ValueError(
                    f"weights must have shape ({self.n_vertices},), got "
                    f"{self.weights.shape}"
                )
            if self.weights.size and self.weights.min() < 0:
                raise ValueError("vertex weights must be non-negative")

    @property
    def n_edges(self) -> int:
        return 0 if self.edges is None else self.edges.shape[1]

    def effective_weights(self) -> np.ndarray:
        """Weights, defaulting to unit weight per vertex."""
        if self.weights is not None:
            return self.weights
        return np.ones(self.n_vertices, dtype=np.float64)


@dataclass
class PartitionResult:
    """Partitioner output: an owner map plus a modeled parallel cost."""

    owner_map: np.ndarray
    n_parts: int
    flops: float = 0.0
    iops: float = 0.0
    sync_rounds: int = 0
    comm_bytes: float = 0.0
    info: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.owner_map = np.ascontiguousarray(self.owner_map, dtype=np.int64)
        if self.owner_map.ndim != 1:
            raise ValueError("owner map must be 1-D")
        if self.owner_map.size and (
            self.owner_map.min() < 0 or self.owner_map.max() >= self.n_parts
        ):
            raise ValueError(
                f"owner map entries must lie in [0, {self.n_parts})"
            )


class Partitioner(ABC):
    """Base class: implement :meth:`partition`, declare what you need."""

    #: registry name, set by @register_partitioner
    name: str = "?"
    needs_edges: bool = False
    needs_coords: bool = False

    @abstractmethod
    def partition(self, problem: PartitionProblem, n_parts: int) -> PartitionResult:
        """Partition ``problem`` into ``n_parts`` pieces."""

    def validate(self, problem: PartitionProblem, n_parts: int) -> None:
        """Common input checks; concrete partitioners call this first."""
        if n_parts < 1:
            raise ValueError(f"need at least one part, got {n_parts}")
        if self.needs_edges and problem.edges is None:
            raise ValueError(
                f"partitioner {self.name} needs LINK (connectivity) information"
            )
        if self.needs_coords and problem.coords is None:
            raise ValueError(
                f"partitioner {self.name} needs GEOMETRY (coordinate) information"
            )


_REGISTRY: dict[str, type[Partitioner]] = {}


def register_partitioner(name: str):
    """Class decorator: register a partitioner under an (upper-case) name.

    This is the hook user-written custom partitioners use too, as long as
    "the calling sequence matches" (a ``partition(problem, n_parts)``).
    """

    def wrap(cls: type[Partitioner]) -> type[Partitioner]:
        key = name.upper()
        if key in _REGISTRY:
            raise ValueError(f"partitioner {key!r} already registered")
        cls.name = key
        _REGISTRY[key] = cls
        return cls

    return wrap


def get_partitioner(name: str, **kwargs) -> Partitioner:
    """Instantiate a registered partitioner by (case-insensitive) name."""
    try:
        cls = _REGISTRY[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown partitioner {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return cls(**kwargs)


def available_partitioners() -> list[str]:
    """Sorted names of all registered partitioners."""
    return sorted(_REGISTRY)
