"""Fault-injection matrix: every seeded fault is detected and recovered.

Each scenario runs the adaptive Euler campaign twice -- once clean, once
with a seeded :class:`FaultPlan` installed -- and requires that the
faulted run (a) actually injected the fault, (b) detected it through the
guard layer, and (c) recovered to **bit-identical simulated state**:
same array contents and same per-processor clocks/counters as the clean
run (faults perturb data, never charges; recovery is host-level).
"""

import numpy as np
import pytest

from repro.guard import FaultPlan
from repro.machine import Machine
from repro.workloads import generate_mesh
from repro.workloads.euler import euler_edge_loop, setup_euler_program


def build(n_procs=4, guard="cheap", **kwargs):
    mesh = generate_mesh(300, seed=4)
    machine = Machine(n_procs)
    prog = setup_euler_program(
        machine, mesh, seed=11, incremental=True, guard=guard, **kwargs
    )
    prog.construct("G", mesh.n_nodes, geometry=["xc", "yc", "zc"])
    prog.set_distribution("fmt", "G", "RCB")
    prog.redistribute("reg", "fmt")
    loop = euler_edge_loop(mesh)
    return mesh, machine, prog, loop


def mutate(prog, mesh, edges, step):
    rng = np.random.default_rng(1000 + step)
    pick = np.sort(rng.choice(mesh.n_edges, size=25, replace=False))
    edges[1, pick] = (
        edges[0, pick] + 1 + rng.integers(0, mesh.n_nodes - 1, pick.size)
    ) % mesh.n_nodes
    prog.set_array_elements("end_pt2", pick, edges[1, pick])


def run_campaign(plan=None, steps=3, **kwargs):
    mesh, machine, prog, loop = build(**kwargs)
    if plan is not None:
        plan.install(machine)
    edges = mesh.edges.copy()
    prog.forall(loop, n_times=1)
    for step in range(steps):
        mutate(prog, mesh, edges, step)
        prog.forall(loop, n_times=1)
    return machine, prog


def assert_same_simulated_state(m_clean, p_clean, m_fault, p_fault):
    from repro.machine.stats import COUNTER_FIELDS

    for name in COUNTER_FIELDS:
        assert np.array_equal(
            getattr(m_clean.counters, name), getattr(m_fault.counters, name)
        ), name
    for aname in p_clean.arrays:
        assert np.array_equal(
            p_clean.arrays[aname].to_global(),
            p_fault.arrays[aname].to_global(),
        ), aname


@pytest.mark.parametrize(
    "fault",
    [
        lambda p: p.corrupt_gather(nth=0),
        lambda p: p.corrupt_gather(nth=2),
        # nth=0: the gathered array never changes between sweeps, so a
        # drop is only *observable* on the first fill of the (zeroed)
        # ghost buffers -- later drops leave correct stale values behind
        lambda p: p.drop_gather(nth=0, count=3),
        lambda p: p.duplicate_gather(nth=0),
    ],
    ids=["corrupt-first", "corrupt-later", "drop", "duplicate"],
)
def test_wire_fault_detected_and_recovered(fault):
    m_clean, p_clean = run_campaign()
    plan = fault(FaultPlan(seed=7))
    m_fault, p_fault = run_campaign(plan=plan)
    # the fault fired ...
    assert len(plan.fired) == 1
    assert not plan.pending()
    # ... was detected and repaired by the executor's content check ...
    recoveries = [
        e for e in p_fault.guard_events if e["event"] == "gather_divergence"
    ]
    assert len(recoveries) == 1
    assert recoveries[0]["recovered"]
    assert recoveries[0]["n_bad"] >= 1
    # ... and the simulated run is bit-identical to the clean one
    assert_same_simulated_state(m_clean, p_clean, m_fault, p_fault)
    assert not p_clean.guard_events


def test_wire_fault_detected_even_with_guard_off():
    """An installed plan forces the gather content check at any level."""
    plan = FaultPlan(seed=7).corrupt_gather(nth=0)
    m_fault, p_fault = run_campaign(plan=plan, guard="off")
    assert len(plan.fired) == 1
    assert [e["recovered"] for e in p_fault.guard_events] == [True]
    m_clean, p_clean = run_campaign(guard="off")
    assert_same_simulated_state(m_clean, p_clean, m_fault, p_fault)


def test_flip_slots_fails_verification_and_falls_back():
    m_clean, p_clean = run_campaign()
    plan = FaultPlan(seed=7).flip_slots(nth=0)
    m_fault, p_fault = run_campaign(plan=plan)
    assert [f["kind"] for f in plan.fired] == ["flip_slots"]
    # the poisoned patch was rejected: one verify fallback, one extra
    # full inspection, and the failure is counted toward the ladder
    log = p_fault.adapt.fallback_log
    assert [r["reason"] for r in log] == ["verify_failed"]
    assert log[0]["stage"] == "verify"
    assert "InvariantViolation" in (log[0]["error"] or "") or "PatchVerifyFailed" in (
        log[0]["error"] or ""
    )
    assert list(p_fault.adapt.failures.values()) == [1]
    assert not p_fault.adapt.disabled
    assert p_fault.inspector_runs == p_clean.inspector_runs + 1
    assert p_fault.patch_hits == p_clean.patch_hits - 1
    # array contents still correct: the rejected product was never used
    for aname in ("y", "x"):
        assert np.array_equal(
            p_clean.arrays[aname].to_global(), p_fault.arrays[aname].to_global()
        )


def test_repeated_flips_disable_incremental_for_loop():
    plan = FaultPlan(seed=7)
    for nth in range(4):
        plan.flip_slots(nth=nth)
    mesh, machine, prog, loop = build()
    prog.adapt.max_failures = 2
    plan.install(machine)
    edges = mesh.edges.copy()
    prog.forall(loop, n_times=1)
    for step in range(4):
        mutate(prog, mesh, edges, step)
        prog.forall(loop, n_times=1)
    assert loop.name in prog.adapt.disabled
    assert prog.adapt.failures[loop.name] == 2
    reasons = [r["reason"] for r in prog.adapt.fallback_log]
    assert reasons[:2] == ["verify_failed", "verify_failed"]
    assert "incremental_disabled" in reasons[2:]
    # every step after disabling runs the full inspector
    assert prog.patch_hits == 0
    assert prog.inspector_runs == 5


def test_stall_moves_clock_but_not_results():
    m_clean, p_clean = run_campaign()
    plan = FaultPlan(seed=7).stall(
        "executor", proc=1, seconds=2.5, when="enter", nth=0
    )
    m_fault, p_fault = run_campaign(plan=plan)
    assert [f["kind"] for f in plan.fired] == ["stall"]
    # results identical; the straggler's delay shows up in elapsed time
    for aname in p_clean.arrays:
        assert np.array_equal(
            p_clean.arrays[aname].to_global(), p_fault.arrays[aname].to_global()
        )
    assert m_fault.elapsed() > m_clean.elapsed()
    # the stall lands inside the stalled phase's accounting (the phase
    # gains *up to* the stall time: the straggler may have started the
    # phase slightly behind the leading clock)
    exec_clean = m_clean.phase_time("executor")
    exec_fault = m_fault.phase_time("executor")
    assert exec_clean + 2.0 < exec_fault <= exec_clean + 2.5 + 1e-9


def test_stall_when_validation():
    with pytest.raises(ValueError, match="enter"):
        FaultPlan().stall("executor", when="sometime")


def test_plan_is_deterministic():
    plans = [FaultPlan(seed=3).corrupt_gather(nth=1) for _ in range(2)]
    runs = [run_campaign(plan=p) for p in plans]
    assert plans[0].fired == plans[1].fired
    assert_same_simulated_state(*runs[0], *runs[1])
