"""Fortran D templates: DECOMPOSITION / DISTRIBUTE / ALIGN.

A ``Decomposition`` is the named template of the paper's Figure 3/4: it
fixes a size and carries the current distribution; distributed arrays are
*aligned* with it and are remapped together when it is redistributed.
The actual data movement of a redistribution is performed by
``repro.chaos.remap`` (driven from ``repro.core``); this class only tracks
the template/alignment relationships and distribution identity.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.distribution.base import Distribution

if TYPE_CHECKING:  # pragma: no cover
    from repro.distribution.distarray import DistArray


class Decomposition:
    """A distribution template that arrays align with."""

    def __init__(self, name: str, size: int):
        if size < 0:
            raise ValueError(f"negative decomposition size {size}")
        self.name = name
        self.size = int(size)
        self.distribution: Distribution | None = None
        self.arrays: list["DistArray"] = []

    # -- DISTRIBUTE ---------------------------------------------------------
    def distribute(self, dist: Distribution) -> None:
        """Set the template's (initial) distribution.

        Aligned arrays must not exist yet, or must already match; moving
        live data is ``REDISTRIBUTE``'s job, not ``DISTRIBUTE``'s.
        """
        if dist.size != self.size:
            raise ValueError(
                f"distribution size {dist.size} != decomposition {self.name!r} "
                f"size {self.size}"
            )
        for arr in self.arrays:
            if arr.distribution != dist:
                raise ValueError(
                    f"array {arr.name!r} is already aligned with {self.name!r}; "
                    "use REDISTRIBUTE to move live data"
                )
        self.distribution = dist

    # -- ALIGN ----------------------------------------------------------------
    def align(self, array: "DistArray") -> None:
        """Align a distributed array with this template."""
        if array.size != self.size:
            raise ValueError(
                f"array {array.name!r} has size {array.size}, decomposition "
                f"{self.name!r} has size {self.size}"
            )
        if self.distribution is None:
            raise ValueError(f"decomposition {self.name!r} has no distribution yet")
        if array.distribution != self.distribution:
            raise ValueError(
                f"array {array.name!r} distribution differs from decomposition "
                f"{self.name!r}; create it from the decomposition's distribution"
            )
        if array not in self.arrays:
            self.arrays.append(array)
            array.decomposition = self

    def unalign(self, array: "DistArray") -> None:
        """Remove an array from this template's alignment set."""
        try:
            self.arrays.remove(array)
        except ValueError:
            raise ValueError(
                f"array {array.name!r} is not aligned with {self.name!r}"
            ) from None
        array.decomposition = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = self.distribution.kind if self.distribution else "undistributed"
        return (
            f"Decomposition({self.name!r}, size={self.size}, {kind}, "
            f"{len(self.arrays)} arrays)"
        )
