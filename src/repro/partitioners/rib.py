"""Recursive inertial bisection.

Like RCB, but instead of cutting along a coordinate axis, each bisection
cuts orthogonally to the principal axis of the vertex cloud (the
dominant eigenvector of its weighted covariance), which handles meshes
whose natural elongation is not axis-aligned [Nour-Omid et al. 1987].
"""

from __future__ import annotations

import numpy as np

from repro.partitioners.base import (
    PartitionProblem,
    PartitionResult,
    Partitioner,
    register_partitioner,
)
from repro.partitioners.rcb import MEDIAN_PROBES, PROBE_IOPS, RECORD_BYTES
from repro.partitioners.weighted import weighted_median_split


def principal_axis(coords: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Dominant eigenvector of the weighted covariance of a point cloud."""
    total = weights.sum()
    if total <= 0 or coords.shape[1] < 2:
        e = np.zeros(coords.shape[0])
        e[0] = 1.0
        return e
    mean = (coords * weights).sum(axis=1) / total
    centered = coords - mean[:, None]
    cov = (centered * weights) @ centered.T / total
    vals, vecs = np.linalg.eigh(cov)
    return vecs[:, -1]


@register_partitioner("RIB")
class RIBPartitioner(Partitioner):
    """Inertial (principal-axis) bisection; needs GEOMETRY, honours LOAD."""

    needs_coords = True

    def partition(self, problem: PartitionProblem, n_parts: int) -> PartitionResult:
        self.validate(problem, n_parts)
        n = problem.n_vertices
        owners = np.zeros(n, dtype=np.int64)
        coords = problem.coords
        weights = problem.effective_weights()
        ndim = coords.shape[0]

        flops = 0.0
        iops = 0.0
        rounds = 0
        comm_bytes = 0.0

        work = [(np.arange(n, dtype=np.int64), 0, n_parts)]
        while work:
            next_work = []
            level_vertices = 0
            for idx, part0, parts in work:
                if parts == 1 or idx.size == 0:
                    owners[idx] = part0
                    continue
                left_parts = (parts + 1) // 2
                frac = left_parts / parts
                sub = coords[:, idx]
                axis = principal_axis(sub, weights[idx])
                key = axis @ sub
                mask = weighted_median_split(key, weights[idx], frac)
                next_work.append((idx[mask], part0, left_parts))
                next_work.append((idx[~mask], part0 + left_parts, parts - left_parts))
                level_vertices += idx.size
            if level_vertices:
                # covariance accumulation + projection + median probes
                flops += (2.0 * ndim * ndim + 2.0 * ndim) * level_vertices
                iops += MEDIAN_PROBES * PROBE_IOPS * level_vertices
                rounds += MEDIAN_PROBES + 2  # probes + covariance reduces
                comm_bytes += 0.5 * RECORD_BYTES * level_vertices
            work = next_work

        return PartitionResult(
            owner_map=owners,
            n_parts=n_parts,
            flops=flops,
            iops=iops,
            sync_rounds=rounds,
            comm_bytes=comm_bytes,
        )
