"""Ablation: replicated vs distributed (paged) translation tables
(DESIGN.md item 4).

For irregularly distributed arrays, a *replicated* table answers every
dereference locally but costs O(N) memory per processor and an all-gather
to build; CHAOS's *distributed* table is O(N/P) memory but each
dereference of a remote page costs a request/reply message pair, which
lands in the inspector phase.  The paper's inspector times include this
traffic; this bench isolates it.
"""

from conftest import run_once

from repro.bench import render_table
from repro.machine import Machine
from repro.workloads import generate_mesh, scale_config
from repro.workloads.euler import euler_edge_loop, setup_euler_program


def run_variant(mesh, variant, procs=16):
    m = Machine(procs)
    prog = setup_euler_program(m, mesh, seed=0, ttable_variant=variant)
    prog.construct("G", mesh.n_nodes, geometry=["xc", "yc", "zc"])
    prog.set_distribution("fmt", "G", "RCB")
    prog.redistribute("reg", "fmt")
    prog.forall(euler_edge_loop(mesh), n_times=10)
    return {
        "variant": variant,
        "inspector": prog.phase_time("inspector"),
        "executor": prog.phase_time("executor"),
        "messages": int(m.counters.messages_sent.sum()),
        "mem_per_proc_entries": (
            mesh.n_nodes if variant == "replicated" else -(-mesh.n_nodes // procs)
        ),
    }


def test_translation_table_variants(benchmark, report):
    scale = scale_config()
    mesh = generate_mesh(scale.mesh_small, seed=1)

    def run():
        return [run_variant(mesh, v) for v in ("replicated", "distributed")]

    rows = run_once(benchmark, run)
    report(
        "ablation_ttable",
        render_table(
            "Translation-table ablation (RCB mesh, 16 procs, 10 sweeps)",
            rows,
            [
                ("variant", "Variant"),
                ("inspector", "Inspector(s)"),
                ("executor", "Executor(s)"),
                ("messages", "Messages"),
                ("mem_per_proc_entries", "TableEntries/proc"),
            ],
        ),
    )
    rep = next(r for r in rows if r["variant"] == "replicated")
    dist = next(r for r in rows if r["variant"] == "distributed")
    # the distributed table pays dereference communication at inspection
    assert dist["inspector"] > rep["inspector"]
    # but holds P-times less table state per processor
    assert dist["mem_per_proc_entries"] * 8 <= rep["mem_per_proc_entries"]
    # executor is unaffected: schedules are identical afterwards
    assert abs(dist["executor"] - rep["executor"]) < 0.05 * rep["executor"]
