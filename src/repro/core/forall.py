"""FORALL loop specifications (the paper's Figure 1 loop form).

The paper's assumptions, encoded here as validation rules:

* loops are single- or multi-statement FORALLs whose only loop-carried
  dependences are left-hand-side reductions (add, multiply, min, max);
* irregular accesses are single-level indirections ``y(ia(i))`` where
  ``ia`` is a distributed array indexed directly by the loop index
  (``ArrayRef(array, index=ia)``); direct references ``x(i)`` are
  ``ArrayRef(array, index=None)``.

A statement's right-hand side is an arbitrary vectorized Python callable
over the gathered operand values -- the executor evaluates it once per
processor on that processor's iterations.  ``flops`` declares the
modeled floating-point cost per iteration, which is what the machine is
charged (the callable's Python cost is not measured).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.chaos.gather_scatter import REDUCTION_OPS


@dataclass(frozen=True)
class ArrayRef:
    """A reference ``array(index(i))``, or ``array(i)`` when index is None."""

    array: str
    index: str | None = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sub = f"{self.index}(i)" if self.index else "i"
        return f"{self.array}({sub})"


@dataclass(frozen=True)
class Assign:
    """``lhs = func(*reads)`` -- no loop-carried dependence allowed."""

    lhs: ArrayRef
    func: Callable
    reads: tuple[ArrayRef, ...]
    flops: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "reads", tuple(self.reads))
        if self.flops < 0:
            raise ValueError("flops must be non-negative")


@dataclass(frozen=True)
class Reduce:
    """``REDUCE(op, lhs, func(*reads))`` -- lhs accumulates contributions."""

    op: str
    lhs: ArrayRef
    func: Callable
    reads: tuple[ArrayRef, ...]
    flops: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "reads", tuple(self.reads))
        if self.op not in REDUCTION_OPS:
            raise ValueError(
                f"unknown reduction op {self.op!r}; choose from "
                f"{sorted(REDUCTION_OPS)}"
            )
        if self.flops < 0:
            raise ValueError("flops must be non-negative")


Statement = Assign | Reduce


class ForallLoop:
    """A named FORALL loop over ``range(n_iterations)``."""

    def __init__(self, name: str, n_iterations: int, statements: list[Statement]):
        if n_iterations < 0:
            raise ValueError(f"negative iteration count {n_iterations}")
        if not statements:
            raise ValueError(f"loop {name!r} has no statements")
        for s in statements:
            if not isinstance(s, (Assign, Reduce)):
                raise TypeError(f"unsupported statement type {type(s).__name__}")
        self.name = name
        self.n_iterations = int(n_iterations)
        self.statements = list(statements)

    # -- derived array sets -------------------------------------------------
    def refs(self) -> list[ArrayRef]:
        """Every ArrayRef in the loop (reads then writes, in order)."""
        out: list[ArrayRef] = []
        for s in self.statements:
            out.extend(s.reads)
            out.append(s.lhs)
        return out

    def read_refs(self) -> list[ArrayRef]:
        out: list[ArrayRef] = []
        for s in self.statements:
            out.extend(s.reads)
        return out

    def write_refs(self) -> list[ArrayRef]:
        return [s.lhs for s in self.statements]

    def data_arrays(self) -> list[str]:
        """Unique data array names, in first-appearance order."""
        seen: dict[str, None] = {}
        for ref in self.refs():
            seen.setdefault(ref.array, None)
        return list(seen)

    def indirection_arrays(self) -> list[str]:
        """Unique indirection array names, in first-appearance order."""
        seen: dict[str, None] = {}
        for ref in self.refs():
            if ref.index is not None:
                seen.setdefault(ref.index, None)
        return list(seen)

    def written_arrays(self) -> list[str]:
        seen: dict[str, None] = {}
        for ref in self.write_refs():
            seen.setdefault(ref.array, None)
        return list(seen)

    def flops_per_iteration(self) -> float:
        return sum(s.flops for s in self.statements)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ForallLoop({self.name!r}, n={self.n_iterations}, "
            f"{len(self.statements)} statements)"
        )
