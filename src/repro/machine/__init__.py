"""Simulated distributed-memory machine substrate.

The paper's experiments ran on an Intel iPSC/860 hypercube.  This package
provides a deterministic stand-in: ``P`` virtual processors, each with a
private clock and operation counters, connected by a configurable topology
and charged for work through an alpha-beta communication cost model plus a
per-operation compute cost.  Execution is *loosely synchronous* -- the
model the CHAOS runtime assumes -- so simulated time advances per
communication/computation phase and barriers take the per-phase maximum.

All times reported by the benchmark harness are **simulated machine
seconds** derived from these counters, never Python wall-clock time.
"""

from repro.machine.topology import (
    Topology,
    HypercubeTopology,
    RingTopology,
    FullyConnectedTopology,
    MeshTopology,
    make_topology,
)
from repro.machine.costmodel import CostModel, IPSC860, IDEALIZED, make_cost_model
from repro.machine.stats import (
    CounterBlock,
    ProcessorStats,
    ProcessorStatsView,
    MachineStats,
    PhaseRecord,
)
from repro.machine.machine import Machine, Processor
from repro.machine.trace import MessageTrace, MessageEvent
from repro.machine.collectives import (
    broadcast_cost,
    reduce_cost,
    allreduce_cost,
    allgather_cost,
    alltoallv_cost,
    barrier_cost,
)

__all__ = [
    "Topology",
    "HypercubeTopology",
    "RingTopology",
    "FullyConnectedTopology",
    "MeshTopology",
    "make_topology",
    "CostModel",
    "IPSC860",
    "IDEALIZED",
    "make_cost_model",
    "CounterBlock",
    "ProcessorStats",
    "ProcessorStatsView",
    "MachineStats",
    "PhaseRecord",
    "Machine",
    "Processor",
    "MessageTrace",
    "MessageEvent",
    "broadcast_cost",
    "reduce_cost",
    "allreduce_cost",
    "allgather_cost",
    "alltoallv_cost",
    "barrier_cost",
]
