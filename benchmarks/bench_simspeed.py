"""Simulator self-performance: wall seconds for the Euler edge sweep.

Unlike every other bench (which reports *simulated* machine time), this
one tracks how fast the *simulator itself* runs -- the metric the
flattened-schedule / array-exchange / flat-DistArray vectorization
optimizes.  It runs the P=64/128/256/512 Euler no-reuse scenario (50k
nodes, 20 executor iterations, RCB) with the runtime's current
defaults -- pattern coalescing, incremental inspection, and the
persistent translation cache all on -- and writes
``benchmarks/out/BENCH_simspeed.json`` so future PRs can track the
simulator's own performance trajectory.  Each run records the
translation cache's hit/miss counters; a repeated-inspection scenario
reporting zero hits means the cache is silently disabled, which
``check_regression.py`` treats as a hard failure.

Reference points on this host, P=256 scenario (the pre-PR-9 rows were
measured on the historical per-pattern scenario, the PR 9 row on the
current coalesced+incremental one -- simulated numbers differ, wall
trend is still comparable):

* per-pair message loops (seed): ~44.3s
* flattened CSR schedules + array exchange (PR 1): ~6.5s
* struct-of-arrays Machine counter block + flattened remap (PR 2): ~6.0s
* flat segmented DistArray storage + versioned global views (PR 3): ~4.2s
* flat GhostBuffers + vectorized localize/executor (PR 4): ~2.6s
* persistent translation cache + coalesced scenario (PR 9): ~1.0s

``benchmarks/check_regression.py`` compares a fresh report against the
committed ``benchmarks/baseline/BENCH_simspeed.json`` (CI fails on any
simulated-number drift, warns on wall-time regression).

Run standalone (``python benchmarks/bench_simspeed.py [P ...]
[--profile]``) or under pytest (``pytest benchmarks/bench_simspeed.py``).
``--profile`` additionally runs each scenario a second time with obs
tracing on (``repro.obs``) and exports a Chrome/Perfetto trace to
``benchmarks/out/simspeed_P{n}.trace.json`` (inspect with ``python -m
repro.obs report <file>`` or https://ui.perfetto.dev); the per-phase
host wall shares land in the JSON as ``phase_shares``, which
``check_regression.py`` compares against the baseline.
"""

import argparse
import json
import os
import time

OUT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "out")
MESH_CACHE_DIR = os.path.join(OUT_DIR, "mesh_cache")
JSON_PATH = os.path.join(OUT_DIR, "BENCH_simspeed.json")

N_NODES = 50000
ITERATIONS = 20
PROC_COUNTS = [64, 128, 256, 512]

#: implementation generation recorded in the JSON so the trajectory of
#: the simulator's own performance stays attributable across PRs
IMPLEMENTATION = "translation-cache"

#: scenario id: the longitudinal scenario now runs the runtime's real
#: defaults (coalesced schedules, incremental inspection, translation
#: cache); renamed so stale baselines fail the scenario-match check
#: instead of comparing incompatible simulated numbers
SCENARIO = "euler_edge_sweep_no_reuse_coalesced_incremental"


def run_simspeed(
    proc_counts=PROC_COUNTS,
    n_nodes=N_NODES,
    iterations=ITERATIONS,
    profile=False,
):
    """Time one run per processor count; returns the result record.

    With ``profile=True``, each run additionally executes with obs
    tracing on and exports ``simspeed_P{n}.trace.json`` next to the
    JSON report (the traced run is separate from the timed one, so
    recorded wall seconds stay free of tracing overhead).
    """
    from repro.bench.harness import run_euler_experiment
    from repro.obs import load_trace, summarize
    from repro.workloads.mesh import generate_mesh

    t0 = time.perf_counter()
    mesh = generate_mesh(n_nodes, seed=0, cache_dir=MESH_CACHE_DIR)
    mesh_seconds = time.perf_counter() - t0

    scenarios = []
    for n_procs in proc_counts:
        t0 = time.perf_counter()
        res = run_euler_experiment(
            mesh,
            n_procs=n_procs,
            partitioner="RCB",
            path="compiler",
            reuse=False,
            iterations=iterations,
            seed=0,
            coalesce=True,
            incremental=True,
        )
        wall = time.perf_counter() - t0
        cache_stats = res.meta.get("translation_cache", {})
        record = {
            "n_procs": n_procs,
            "wall_seconds": round(wall, 3),
            "simulated_total": res.total,
            "simulated_phases": {k: v for k, v in res.phases.items()},
            "messages": res.meta["messages"],
            "bytes": res.meta["bytes"],
            # kept as top-level keys (check_regression pins on them);
            # the full per-kind breakdown rides along in "cache"
            "cache_hits": cache_stats.get("hits", 0),
            "cache_misses": cache_stats.get("misses", 0),
            "cache": cache_stats,
        }
        if profile:
            os.makedirs(OUT_DIR, exist_ok=True)
            trace_path = os.path.join(OUT_DIR, f"simspeed_P{n_procs}.trace.json")
            traced = run_euler_experiment(
                mesh,
                n_procs=n_procs,
                partitioner="RCB",
                path="compiler",
                reuse=False,
                iterations=iterations,
                seed=0,
                coalesce=True,
                incremental=True,
                obs="on",
            )
            # the traced run must reproduce the timed run's simulated
            # numbers exactly -- the obs overhead contract
            assert traced.total == res.total, (
                f"P={n_procs}: obs=on changed simulated_total "
                f"({traced.total!r} != {res.total!r})"
            )
            traced.meta["obs_program"].export_obs(trace_path, fmt="chrome")
            summary = summarize(load_trace(trace_path))
            record["trace"] = os.path.relpath(trace_path, OUT_DIR)
            record["phase_shares"] = {
                name: round(ph["share"], 4)
                for name, ph in summary["phases"].items()
            }
        scenarios.append(record)
    return {
        "scenario": SCENARIO,
        "implementation": IMPLEMENTATION,
        "n_nodes": n_nodes,
        "iterations": iterations,
        "partitioner": "RCB",
        "mesh_seconds": round(mesh_seconds, 3),
        "runs": scenarios,
    }


def write_report(record):
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(JSON_PATH, "w") as fh:
        json.dump(record, fh, indent=2)
    return JSON_PATH


def test_simspeed():
    record = run_simspeed()
    path = write_report(record)
    print(f"\n[simspeed written to {path}]")
    for run in record["runs"]:
        print(
            f"  P={run['n_procs']:>4}  wall={run['wall_seconds']:>7.3f}s  "
            f"simulated={run['simulated_total']:.3f}s  "
            f"cache={run['cache_hits']}h/{run['cache_misses']}m"
        )
        # repeated inspection with zero cache hits = cache silently off
        assert run["cache_hits"] > 0, (
            f"P={run['n_procs']}: translation cache reported zero hits "
            "on a repeated-inspection scenario"
        )
    # very loose hang guard only -- wall time on shared CI runners is too
    # noisy to gate tightly; regressions are tracked via the JSON artifact
    worst = max(run["wall_seconds"] for run in record["runs"])
    assert worst < 300.0, f"simulator pathologically slow: {worst}s for one scenario"


def _parse_args(argv=None):
    parser = argparse.ArgumentParser(
        description="Simulator self-performance benchmark."
    )
    parser.add_argument(
        "proc_counts",
        nargs="*",
        type=int,
        default=None,
        help=f"processor counts to run (default: {PROC_COUNTS})",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="also run each scenario with obs tracing on and export "
        "benchmarks/out/simspeed_P{n}.trace.json (Chrome/Perfetto)",
    )
    return parser.parse_args(argv)


if __name__ == "__main__":
    args = _parse_args()
    record = run_simspeed(
        proc_counts=args.proc_counts or PROC_COUNTS, profile=args.profile
    )
    path = write_report(record)
    print(json.dumps(record, indent=2))
    print(f"[written to {path}]")
