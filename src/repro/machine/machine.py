"""The simulated machine: virtual processors, clocks, and phases.

``Machine`` is the hub every other layer charges work to.  The execution
model is *loosely synchronous*, exactly what CHAOS assumes: computation
proceeds in clearly demarcated phases; within a phase each processor
accumulates compute and communication time on its own clock; at a phase
boundary (``barrier``/``phase`` exit) all clocks jump to the maximum.

The data itself lives in ``DistArray`` local segments (see
``repro.distribution.distarray``); the machine only tracks *time* and
*counters*, which keeps the simulation deterministic and fast.  Counters
live in a struct-of-arrays :class:`~repro.machine.stats.CounterBlock`
(``machine.counters``), so ``exchange`` and ``charge_compute_all`` are
pure bincount/add.at/ufunc updates with no Python loop over processors;
``machine.procs[p].stats`` remains a live per-processor view.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.machine.costmodel import CostModel, IPSC860
from repro.obs.tracer import NULL_TRACER
from repro.machine.stats import (
    CounterBlock,
    MachineStats,
    PhaseRecord,
    ProcessorStatsView,
)
from repro.machine.topology import Topology, make_topology


class Processor:
    """One virtual processor: a rank and a live view of its counters."""

    __slots__ = ("rank", "stats")

    def __init__(self, rank: int, counters: CounterBlock):
        self.rank = rank
        self.stats = ProcessorStatsView(counters, rank)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Processor(rank={self.rank}, clock={self.stats.clock:.6f})"


class Machine:
    """A P-processor distributed-memory machine with modeled time.

    Parameters
    ----------
    n_procs:
        Number of virtual processors.  With the default hypercube
        topology this must be a power of two (as on the iPSC/860).
    cost_model:
        A :class:`~repro.machine.costmodel.CostModel`; defaults to the
        iPSC/860 calibration.
    topology:
        Either a :class:`~repro.machine.topology.Topology` instance or a
        name accepted by :func:`~repro.machine.topology.make_topology`.
    """

    def __init__(
        self,
        n_procs: int,
        cost_model: CostModel = IPSC860,
        topology: Topology | str = "hypercube",
    ):
        if n_procs < 1:
            raise ValueError(f"need at least one processor, got {n_procs}")
        self.n_procs = int(n_procs)
        self.cost = cost_model
        if isinstance(topology, str):
            topology = make_topology(topology, self.n_procs)
        if topology.n_procs != self.n_procs:
            raise ValueError(
                f"topology is for {topology.n_procs} processors, machine has {self.n_procs}"
            )
        self.topology = topology
        self.counters = CounterBlock(self.n_procs)
        self.procs = [Processor(p, self.counters) for p in range(self.n_procs)]
        self.stats = MachineStats(counters=self.counters)
        self._phase_depth = 0
        #: optional repro.guard.faults.FaultPlan; hooks fire when set
        self.faults = None
        #: host-side span tracer (repro.obs); the shared no-op by
        #: default -- IrregularProgram installs a real Tracer when
        #: obs is on.  Never charges the simulated clocks.
        self.obs = NULL_TRACER

    # ------------------------------------------------------------------
    # clock primitives
    # ------------------------------------------------------------------
    def _check_rank(self, p: int) -> None:
        if not 0 <= p < self.n_procs:
            raise ValueError(f"processor id {p} out of range [0, {self.n_procs})")

    def clock(self, p: int) -> float:
        """Current simulated time on processor ``p``."""
        self._check_rank(p)
        return float(self.counters.clock[p])

    def elapsed(self) -> float:
        """Machine time so far: the maximum processor clock."""
        return float(self.counters.clock.max())

    def charge_compute(
        self, p: int, flops: float = 0.0, iops: float = 0.0, mem: float = 0.0
    ) -> float:
        """Charge local work to processor ``p``; returns the time charged."""
        self._check_rank(p)
        dt = self.cost.compute_time(flops=flops, iops=iops, mem=mem)
        c = self.counters
        c.clock[p] += dt
        c.flops[p] += flops
        c.iops[p] += iops
        c.mem_ops[p] += mem
        return dt

    def charge_compute_all(
        self,
        flops: Sequence[float] | np.ndarray | float = 0.0,
        iops: Sequence[float] | np.ndarray | float = 0.0,
        mem: Sequence[float] | np.ndarray | float = 0.0,
    ) -> None:
        """Charge per-processor work vectors (scalars broadcast).

        Accepts ndarrays, sequences, or scalars directly; both the time
        conversion and the counter updates are whole-array operations --
        no Python loop over processors.
        """
        n = self.n_procs
        fl = np.broadcast_to(np.asarray(flops, dtype=np.float64), (n,))
        io = np.broadcast_to(np.asarray(iops, dtype=np.float64), (n,))
        me = np.broadcast_to(np.asarray(mem, dtype=np.float64), (n,))
        dt = self.cost.compute_time_array(flops=fl, iops=io, mem=me)
        c = self.counters
        c.clock += dt
        c.flops += fl
        c.iops += io
        c.mem_ops += me

    # ------------------------------------------------------------------
    # communication primitives
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, nbytes: int) -> float:
        """Model one point-to-point message; returns the message time.

        Both endpoints are charged the full message time (blocking
        send/recv, the NX-library style the paper's runtime used).
        A message to self is a local memory copy.
        """
        self._check_rank(src)
        self._check_rank(dst)
        if nbytes < 0:
            raise ValueError(f"negative message size {nbytes}")
        if src == dst:
            words = nbytes / 8.0
            return self.charge_compute(src, mem=words)
        hops = self.topology.hops(src, dst)
        dt = self.cost.message_time(nbytes, hops)
        c = self.counters
        c.clock[src] += dt
        c.messages_sent[src] += 1
        c.bytes_sent[src] += nbytes
        c.clock[dst] += dt
        c.messages_received[dst] += 1
        c.bytes_received[dst] += nbytes
        return dt

    def exchange(
        self,
        bytes_matrix: Mapping[tuple[int, int], int] | None = None,
        *,
        src: np.ndarray | Sequence[int] | None = None,
        dst: np.ndarray | Sequence[int] | None = None,
        nbytes: np.ndarray | Sequence[int] | None = None,
    ) -> None:
        """Model an all-to-all-ish exchange phase.

        Traffic is given either as ``bytes_matrix`` mapping ``(src, dst)``
        to message sizes in bytes, or as parallel ``src``/``dst``/``nbytes``
        arrays (the vectorized form the CHAOS hot paths use -- no Python
        loop over message pairs).  Each processor's clock advances by the
        sum of the costs of the messages it sends plus those it receives
        (sequential injection, which is how the single-port iPSC/860
        behaved); zero-byte entries are skipped entirely -- CHAOS
        schedules never post empty messages.  Per-processor time and
        counter updates accumulate in pair order, so both input forms
        produce bit-identical clocks for the same pair sequence.
        """
        if bytes_matrix is not None:
            if src is not None or dst is not None or nbytes is not None:
                raise ValueError("pass either bytes_matrix or src/dst/nbytes arrays")
            count = len(bytes_matrix)
            src = np.empty(count, dtype=np.int64)
            dst = np.empty(count, dtype=np.int64)
            nbytes = np.empty(count, dtype=np.int64)
            for i, ((s, d), nb) in enumerate(bytes_matrix.items()):
                src[i] = s
                dst[i] = d
                nbytes[i] = nb
        elif src is None or dst is None or nbytes is None:
            raise ValueError("need all of src, dst, and nbytes")
        else:
            src = np.asarray(src, dtype=np.int64)
            dst = np.asarray(dst, dtype=np.int64)
            nbytes = np.asarray(nbytes, dtype=np.int64)
        if not (src.shape == dst.shape == nbytes.shape):
            raise ValueError("src, dst, and nbytes must have matching shapes")
        if src.size == 0:
            return
        n = self.n_procs
        if src.min() < 0 or src.max() >= n or dst.min() < 0 or dst.max() >= n:
            bad = src if src.min() < 0 or src.max() >= n else dst
            bad = bad[(bad < 0) | (bad >= n)][0]
            raise ValueError(f"processor id {int(bad)} out of range [0, {n})")
        if nbytes.min() < 0:
            raise ValueError(f"negative message size {int(nbytes.min())}")
        live = nbytes != 0
        if not live.all():
            src, dst, nbytes = src[live], dst[live], nbytes[live]
            if src.size == 0:
                return

        self_mask = src == dst
        clock_add = np.zeros(n)
        mem_add = np.zeros(n)
        if self_mask.any():
            # messages to self are local memory copies (charge_compute)
            words = nbytes[self_mask] / 8.0
            np.add.at(clock_add, src[self_mask], self.cost.compute_time_array(mem=words))
            np.add.at(mem_add, src[self_mask], words)

        cross = ~self_mask
        xsrc, xdst, xbytes = src[cross], dst[cross], nbytes[cross]
        send_time = np.zeros(n)
        recv_time = np.zeros(n)
        msg_sent = np.zeros(n, dtype=np.int64)
        msg_recv = np.zeros(n, dtype=np.int64)
        bytes_sent = np.zeros(n, dtype=np.int64)
        bytes_recv = np.zeros(n, dtype=np.int64)
        if xsrc.size:
            hops = self.topology.hops_array(xsrc, xdst)
            dt = self.cost.message_time_array(xbytes, hops)
            np.add.at(send_time, xsrc, dt)
            np.add.at(recv_time, xdst, dt)
            msg_sent = np.bincount(xsrc, minlength=n)
            msg_recv = np.bincount(xdst, minlength=n)
            bytes_sent = np.bincount(xsrc, weights=xbytes, minlength=n).astype(np.int64)
            bytes_recv = np.bincount(xdst, weights=xbytes, minlength=n).astype(np.int64)

        c = self.counters
        c.clock += clock_add
        c.mem_ops += mem_add
        c.messages_sent += msg_sent
        c.bytes_sent += bytes_sent
        c.messages_received += msg_recv
        c.bytes_received += bytes_recv
        c.clock += send_time + recv_time

    def barrier(self) -> float:
        """Synchronize all clocks to the maximum plus a small sync cost."""
        t = self.elapsed()
        if self.n_procs > 1:
            # tree barrier: up + down sweep of tiny messages
            depth = max(1, (self.n_procs - 1).bit_length())
            t += 2 * depth * self.cost.alpha
        self.counters.clock[:] = t
        return t

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Named loosely synchronous region; records a PhaseRecord.

        The region begins and ends with a barrier; ``elapsed`` is the
        wall time between them on the synchronized machine clock.  An
        installed :class:`~repro.guard.faults.FaultPlan` gets to stall
        processors just inside the opening barrier and just before the
        closing one, so injected straggler time lands inside the phase.
        """
        self.barrier()
        start = self.elapsed()
        before = self.counters.copy()
        self._phase_depth += 1
        if self.faults is not None:
            self.faults.on_phase(self, name, "enter")
        try:
            yield
        finally:
            self._phase_depth -= 1
            if self.faults is not None:
                self.faults.on_phase(self, name, "exit")
            self.barrier()
            end = self.elapsed()
            self.stats.add(
                PhaseRecord(
                    name=name,
                    elapsed=end - start,
                    arrays=self.counters.delta(before),
                )
            )

    def phase_time(self, name: str) -> float:
        """Sum of elapsed time over phases with this name."""
        return self.stats.phase_time(name)

    def reset(self) -> None:
        """Zero all clocks, counters, and phase records."""
        self.counters.reset()
        self.stats.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Machine(n_procs={self.n_procs}, cost={self.cost.name!r}, "
            f"topology={type(self.topology).__name__}, t={self.elapsed():.6f}s)"
        )
