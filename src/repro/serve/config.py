"""Job configurations and their content-addressed identity.

A :class:`JobConfig` is the complete recipe for one simulation: the
workload scenario, mesh size and seed, machine size, partitioner, and
step count.  :func:`config_key` hashes the fields that determine the
*simulated* outcome into a stable content address -- two submissions
with the same key are the same simulation, which is what lets the
service coalesce duplicates and cache results.

Host-only fields (``crash_at_step``, ``crash_attempts``,
``corrupt_checkpoint_on_crash``, ``step_delay_s``) script worker
failures for the chaos harness.  They change how the job *executes* --
crashes, resumes, wall-clock -- but never what it computes (checkpoint
resume is bit-identical), so they are excluded from the key: a job that
crashed twice and resumed produces, and shares, the exact result of the
undisturbed run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields

#: scenarios run_job knows how to drive
SCENARIOS = ("sweep", "adapt", "rebalance")

#: JobConfig fields that do not affect simulated results (failure
#: scripting for the chaos harness); excluded from config_key
HOST_ONLY_FIELDS = (
    "crash_at_step",
    "crash_attempts",
    "corrupt_checkpoint_on_crash",
    "step_delay_s",
)


@dataclass(frozen=True)
class JobConfig:
    """One simulation request.

    ``faults`` is a tuple of ``(kind, nth)`` pairs translated into a
    :class:`~repro.guard.faults.FaultPlan` inside the worker (kinds:
    ``corrupt_gather``, ``duplicate_gather``, ``corrupt_remap``,
    ``duplicate_remap``, ``drop_remap``, ``flip_remap`` -- the
    recoverable, counter-preserving ones).  Faults are part of the
    config key: they *should* recover bit-identically, but that is a
    property the chaos harness asserts, not one the cache assumes.
    """

    workload: str = "euler"
    scenario: str = "adapt"
    n_nodes: int = 400
    n_procs: int = 8
    partitioner: str = "RCB"
    steps: int = 6
    seed: int = 0
    fraction: float = 0.04  # adapt: edge-change fraction per epoch
    adapt_every: int = 2  # adapt/rebalance: steps between adaptations
    slack: float = 0.05  # rebalance: balance slack
    checkpoint_every: int = 2  # steps between checkpoints (0 = never)
    guard: str = "cheap"
    faults: tuple = ()

    # host-only failure scripting (chaos harness); not in the key.
    # the worker kills itself after completing the first executed step
    # >= crash_at_step, on each attempt <= crash_attempts (a resumed
    # retry starts past the original crash point, so ">=" is what makes
    # repeat crashes reachable)
    crash_at_step: int | None = None
    crash_attempts: int = 1
    corrupt_checkpoint_on_crash: bool = False
    step_delay_s: float = 0.0

    def __post_init__(self):
        if self.workload != "euler":
            raise ValueError(f"unknown workload {self.workload!r}")
        if self.scenario not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {self.scenario!r}; choose from {SCENARIOS}"
            )
        if self.steps < 1:
            raise ValueError(f"steps must be >= 1, got {self.steps}")
        if self.n_procs < 2:
            raise ValueError(f"n_procs must be >= 2, got {self.n_procs}")
        if self.checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        for pair in self.faults:
            if len(pair) != 2:
                raise ValueError(f"faults entries are (kind, nth) pairs, got {pair!r}")

    def simulated_fields(self) -> dict:
        """The fields that determine the simulated outcome, as plain data."""
        d = asdict(self)
        for name in HOST_ONLY_FIELDS:
            d.pop(name)
        d["faults"] = [list(p) for p in self.faults]
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "JobConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"unknown JobConfig fields: {sorted(unknown)}")
        d = dict(d)
        if "faults" in d:
            d["faults"] = tuple(tuple(p) for p in d["faults"])
        return cls(**d)


def config_key(config: JobConfig) -> str:
    """Stable content address of a config's simulated outcome.

    sha256 over the canonical JSON of the simulated fields -- insertion
    order independent, host-only fields excluded.  Used as the cache
    file name and the coalescing identity.
    """
    canon = json.dumps(config.simulated_fields(), sort_keys=True)
    return hashlib.sha256(canon.encode()).hexdigest()
