"""The supervised simulation service.

:class:`SimulationService` owns a pool of worker subprocesses (one duplex
pipe each, see :mod:`repro.serve.workers`), an admission queue with
load shedding, a retry scheduler, and the result cache.  A single
supervisor thread multiplexes everything:

* **assignment** -- queued jobs go to idle workers; a retry whose
  backoff expired re-enters at the front (it has been waiting longest);
* **crash detection** -- a dead worker is one whose pipe hit EOF;
  a hung worker is one whose last heartbeat (one per simulation step)
  is older than ``heartbeat_timeout``, or whose job overran
  ``job_deadline``: both are killed and treated as crashes;
* **retry** -- a crashed job is rescheduled with exponential backoff
  plus deterministic jitter until ``max_attempts`` is spent, then fails
  with :class:`~repro.serve.errors.RetryBudgetExhausted`.  Because jobs
  checkpoint every ``checkpoint_every`` steps, a retry *resumes* -- a
  crash costs at most one checkpoint interval of work;
* **self-healing cache** -- results are persisted content-addressed and
  CRC-guarded; a corrupt entry found at submit time is quarantined, the
  job recomputed, and the entry rewritten.

Every state transition lands as a structured event on the job
(``queued``/``coalesced``/``running``/``retrying``/``resumed``/
``degraded``/``done``/``failed``) and service-level incidents (worker
restarts, cache quarantines, ``.prev`` checkpoint fallbacks) in
``service.events`` -- ``Job.status()`` and ``service.health()`` expose
them without log spelunking.
"""

from __future__ import annotations

import heapq
import os
import tempfile
import threading
import time
from collections import deque
from dataclasses import asdict

import numpy as np

from repro.obs import EventBus, NULL_TRACER, Tracer, export_trace
from repro.serve.cache import ResultCache
from repro.serve.config import JobConfig, config_key
from repro.serve.errors import (
    JobFailed,
    QueueSaturated,
    RetryBudgetExhausted,
    ServeError,
)
from repro.serve.workers import make_context, spawn_worker

#: default wall-clock guess for one job before any has finished (used
#: only for the very first retry_after hints)
_DEFAULT_JOB_SECONDS = 1.0


class Job:
    """Client-side handle of one submitted simulation."""

    def __init__(self, job_id: str, key: str, config: JobConfig, lock, bus=None):
        self.id = job_id
        self.key = key
        self.config = config
        self.state = "queued"
        self.attempts = 0
        self.duplicates = 0
        self.result: dict | None = None
        self.error: Exception | None = None
        #: lifecycle event log; a live view over the service bus's
        #: per-job category when the service carries one (shared
        #: structured-event schema), else a plain list
        if bus is not None:
            self.events = bus.view(f"serve.job/{job_id}", name_key="event")
        else:
            self.events = []
        self._lock = lock
        self._finished = threading.Event()

    # -- service-side (called under the service lock) -------------------
    def _event(self, kind: str, **detail) -> None:
        self.events.append({"event": kind, "t": time.time(), **detail})

    def _finish(self, state: str) -> None:
        self.state = state
        self._finished.set()

    # -- client-side ----------------------------------------------------
    @property
    def done(self) -> bool:
        return self._finished.is_set()

    def status(self) -> dict:
        """Structured snapshot: state, attempts, and the event history."""
        with self._lock:
            return {
                "id": self.id,
                "key": self.key,
                "state": self.state,
                "attempts": self.attempts,
                "duplicates": self.duplicates,
                "events": [dict(e) for e in self.events],
                "error": None if self.error is None else str(self.error),
            }

    def wait(self, timeout: float | None = None) -> dict:
        """Block for the result; raises :class:`JobFailed` on failure."""
        if not self._finished.wait(timeout):
            raise TimeoutError(f"{self.id} still {self.state} after {timeout}s")
        with self._lock:
            if self.state == "failed":
                raise JobFailed(
                    f"{self.id} failed after {self.attempts} attempt(s): "
                    f"{self.error}",
                    cause=self.error,
                )
            return dict(self.result)


class _Worker:
    """Supervisor-side bookkeeping for one worker subprocess."""

    def __init__(self, proc, conn, worker_id: int):
        self.id = worker_id
        self.proc = proc
        self.conn = conn
        self.alive = True
        self.busy: Job | None = None
        self.started_at = 0.0
        self.started_ns = 0
        self.last_beat = 0.0


class SimulationService:
    """Async job service over the simulated CHAOS runtime."""

    def __init__(
        self,
        workers: int = 2,
        queue_limit: int = 8,
        max_attempts: int = 3,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        heartbeat_timeout: float = 60.0,
        job_deadline: float | None = None,
        cache_dir: str | None = None,
        checkpoint_dir: str | None = None,
        seed: int = 0,
        poll_interval: float = 0.02,
        obs: str | None = None,
    ):
        """``obs`` (``"on"``/``"off"``; ``None`` reads ``REPRO_OBS``)
        enables supervisor-side job-lifecycle spans: one retroactive
        ``serve.job.attempt`` span per worker attempt, exported via
        :meth:`export_obs`.  Workers are separate processes, so their
        internal spans stay worker-side; the event bus (and the legacy
        ``job.events`` / ``service.events`` views over it) is always on."""
        if obs is None:
            obs = os.environ.get("REPRO_OBS", "off")
        if obs not in ("on", "off"):
            raise ValueError(f"unknown obs mode {obs!r}; choose on | off")
        self.obs = Tracer() if obs == "on" else NULL_TRACER
        #: structured-event stream; ``self.events`` and every
        #: ``Job.events`` are list-shaped views over its categories
        self.bus = EventBus()
        if workers < 1:
            raise ValueError(f"need at least 1 worker, got {workers}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.queue_limit = int(queue_limit)
        self.max_attempts = int(max_attempts)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.job_deadline = job_deadline
        self.poll_interval = float(poll_interval)

        self._tmp = None
        if cache_dir is None or checkpoint_dir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-serve-")
        self.cache = ResultCache(
            cache_dir or os.path.join(self._tmp.name, "cache")
        )
        self.checkpoint_dir = checkpoint_dir or os.path.join(
            self._tmp.name, "checkpoints"
        )
        os.makedirs(self.checkpoint_dir, exist_ok=True)

        self._lock = threading.RLock()
        self._rng = np.random.default_rng(seed)
        self._queue: deque[Job] = deque()
        self._retries: list[tuple[float, int, Job]] = []  # (not_before, seq, job)
        self._retry_seq = 0
        self._inflight: dict[str, Job] = {}  # key -> queued/running/retrying job
        self.jobs: dict[str, Job] = {}
        #: service-level incidents (view over the bus's service category)
        self.events = self.bus.view("serve.service", name_key="event")
        self._counts = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "shed": 0,
            "coalesced": 0,
            "cache_hits": 0,
            "worker_restarts": 0,
        }
        self._durations: deque[float] = deque(maxlen=32)
        self._job_seq = 0
        self._closed = False

        self._ctx = make_context()
        self._workers = [self._spawn(i) for i in range(workers)]
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._supervise, name="repro-serve-supervisor", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def submit(self, config: JobConfig) -> Job:
        """Admit one simulation; returns its :class:`Job` handle.

        Duplicate of an in-flight config -> the *same* Job (coalesced).
        Result already cached -> a Job born ``done``.  Queue full ->
        :class:`QueueSaturated` with a ``retry_after`` hint.
        """
        with self._lock:
            if self._closed:
                raise ServeError("service is shut down")
            key = config_key(config)
            self._counts["submitted"] += 1

            existing = self._inflight.get(key)
            if existing is not None:
                existing.duplicates += 1
                existing._event("coalesced", submitted=config.scenario)
                self._counts["coalesced"] += 1
                return existing

            n_quarantined = len(self.cache.quarantined)
            cached = self.cache.get(key)
            if len(self.cache.quarantined) > n_quarantined:
                self._incident(
                    "cache_quarantine", **self.cache.quarantined[-1]
                )
            if cached is not None:
                job = self._new_job(key, config)
                job._event("queued")
                job._event("done", cache_hit=True)
                job.result = cached
                job._finish("done")
                self._counts["cache_hits"] += 1
                self._counts["completed"] += 1
                return job

            if len(self._queue) >= self.queue_limit:
                self._counts["shed"] += 1
                retry_after = self._retry_after_hint()
                raise QueueSaturated(
                    f"admission queue at limit ({self.queue_limit}); "
                    f"retry in ~{retry_after:.2f}s",
                    retry_after=retry_after,
                )

            job = self._new_job(key, config)
            job._event("queued", depth=len(self._queue))
            self._queue.append(job)
            self._inflight[key] = job
            return job

    def health(self) -> dict:
        """Structured service health snapshot."""
        with self._lock:
            return {
                "workers": [
                    {
                        "id": w.id,
                        "pid": w.proc.pid,
                        "alive": w.alive and w.proc.is_alive(),
                        "busy": None if w.busy is None else w.busy.id,
                    }
                    for w in self._workers
                ],
                "queue_depth": len(self._queue),
                "retry_depth": len(self._retries),
                "inflight": len(self._inflight),
                "counts": dict(self._counts),
                "cache": self.cache.stats(),
                "events": [dict(e) for e in self.events],
            }

    def shutdown(self) -> None:
        """Stop the supervisor and terminate every worker."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._stop.set()
        self._thread.join(timeout=10)
        for w in self._workers:
            if w.alive:
                try:
                    w.conn.send({"type": "stop"})
                except (OSError, BrokenPipeError):
                    pass
            w.proc.join(timeout=1)
            if w.proc.is_alive():
                w.proc.kill()
                w.proc.join(timeout=5)
            try:
                w.conn.close()
            except OSError:
                pass
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None

    def __enter__(self) -> "SimulationService":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _new_job(self, key: str, config: JobConfig) -> Job:
        self._job_seq += 1
        job = Job(
            f"job-{self._job_seq:04d}", key, config, self._lock, bus=self.bus
        )
        self.jobs[job.id] = job
        return job

    def _spawn(self, worker_id: int) -> _Worker:
        proc, conn = spawn_worker(self._ctx, worker_id)
        return _Worker(proc, conn, worker_id)

    def _incident(self, kind: str, **detail) -> None:
        self.events.append({"event": kind, "t": time.time(), **detail})

    def _close_attempt(self, w: _Worker, job, outcome: str) -> None:
        """Record one worker attempt as a retroactive span (obs on only)."""
        if job is None or not self.obs.enabled:
            return
        t0 = w.started_ns
        self.obs.record(
            "serve.job.attempt",
            t0,
            time.perf_counter_ns() - t0,
            job=job.id,
            attempt=job.attempts,
            worker=w.id,
            outcome=outcome,
        )

    def export_obs(self, path: str, fmt: str = "jsonl") -> str:
        """Export supervisor spans + the service event bus to ``path``."""
        with self._lock:
            return export_trace(
                path,
                self.obs,
                bus=self.bus,
                meta={"component": "serve", "counts": dict(self._counts)},
                fmt=fmt,
            )

    def _retry_after_hint(self) -> float:
        per_job = (
            sum(self._durations) / len(self._durations)
            if self._durations
            else _DEFAULT_JOB_SECONDS
        )
        n_workers = max(1, sum(1 for w in self._workers if w.alive))
        return max(0.05, per_job * (1 + len(self._queue)) / n_workers)

    def _checkpoint_path(self, key: str) -> str:
        return os.path.join(self.checkpoint_dir, f"{key}.ckpt")

    def _backoff(self, attempt: int) -> float:
        """Exponential backoff with deterministic jitter (seeded rng)."""
        base = min(self.backoff_cap, self.backoff_base * 2 ** (attempt - 1))
        return base * (1.0 + 0.25 * float(self._rng.random()))

    # -- supervisor loop -------------------------------------------------
    def _supervise(self) -> None:
        from multiprocessing.connection import wait as conn_wait

        while not self._stop.is_set():
            with self._lock:
                self._promote_retries()
                self._assign()
                conns = {
                    w.conn: w for w in self._workers if w.alive
                }
            ready = conn_wait(list(conns), timeout=self.poll_interval)
            with self._lock:
                for conn in ready:
                    self._drain(conns[conn])
                self._check_hangs()

    def _promote_retries(self) -> None:
        now = time.monotonic()
        while self._retries and self._retries[0][0] <= now:
            _, _, job = heapq.heappop(self._retries)
            # retries go to the front: they have waited longest
            self._queue.appendleft(job)
            job.state = "queued"

    def _assign(self) -> None:
        for w in self._workers:
            if not self._queue:
                return
            if not w.alive or w.busy is not None:
                continue
            job = self._queue.popleft()
            job.attempts += 1
            ckpt = self._checkpoint_path(job.key)
            resuming = os.path.exists(ckpt) or os.path.exists(f"{ckpt}.prev")
            try:
                w.conn.send(
                    {
                        "type": "job",
                        "job_id": job.id,
                        "attempt": job.attempts,
                        "config": asdict(job.config),
                        "checkpoint_path": ckpt,
                    }
                )
            except (OSError, BrokenPipeError):
                # worker died between polls; put the job back untouched
                job.attempts -= 1
                self._queue.appendleft(job)
                self._crash(w, "send_failed")
                continue
            job.state = "running"
            w.busy = job
            w.started_at = w.last_beat = time.monotonic()
            w.started_ns = time.perf_counter_ns()
            job._event(
                "running", attempt=job.attempts, worker=w.id, resuming=resuming
            )

    def _drain(self, w: _Worker) -> None:
        """Handle every message one worker has ready (or its death)."""
        while True:
            try:
                if not w.conn.poll(0):
                    return
                msg = w.conn.recv()
            except (EOFError, OSError):
                self._crash(w, "worker_died")
                return
            kind = msg["type"]
            if kind == "heartbeat":
                w.last_beat = time.monotonic()
            elif kind == "started":
                w.last_beat = time.monotonic()
            elif kind == "result":
                self._complete(w, msg["result"])
            elif kind == "error":
                self._typed_failure(w, msg)

    def _complete(self, w: _Worker, result: dict) -> None:
        job = w.busy
        w.busy = None
        if job is None:  # pragma: no cover - protocol guard
            return
        self._close_attempt(w, job, "done")
        self._durations.append(time.monotonic() - w.started_at)
        if result.get("resumed"):
            job._event(
                "resumed",
                source=result.get("resume_source"),
                start_step=result.get("start_step"),
            )
            if result.get("resume_source") == "prev":
                # primary checkpoint was damaged; we recovered from the
                # rotated generation -- degraded but correct
                job._event("degraded", reason="checkpoint_fallback_prev")
                self._incident(
                    "checkpoint_fallback", job=job.id, source="prev"
                )
        self.cache.put(job.key, result)
        self._cleanup_checkpoints(job.key)
        job.result = result
        job._event("done", attempts=job.attempts)
        job._finish("done")
        self._inflight.pop(job.key, None)
        self._counts["completed"] += 1

    def _typed_failure(self, w: _Worker, msg: dict) -> None:
        """An in-process, typed error: deterministic, so never retried."""
        job = w.busy
        w.busy = None
        if job is None:  # pragma: no cover - protocol guard
            return
        self._close_attempt(w, job, "typed_error")
        job.error = JobFailed(
            f"{msg['error_type']}: {msg['error']}", cause=None
        )
        job._event(
            "failed",
            reason="typed_error",
            error_type=msg["error_type"],
            error=msg["error"],
        )
        job._finish("failed")
        self._inflight.pop(job.key, None)
        self._cleanup_checkpoints(job.key)
        self._counts["failed"] += 1

    def _crash(self, w: _Worker, reason: str) -> None:
        """A worker died (or was killed): restart it, reschedule its job."""
        job = w.busy
        w.busy = None
        self._close_attempt(w, job, f"crash:{reason}")
        w.alive = False
        try:
            w.conn.close()
        except OSError:
            pass
        w.proc.kill()
        w.proc.join(timeout=5)
        idx = self._workers.index(w)
        self._workers[idx] = self._spawn(w.id)
        self._counts["worker_restarts"] += 1
        self._incident(
            "worker_restart",
            worker=w.id,
            reason=reason,
            job=None if job is None else job.id,
        )
        if job is None:
            return
        if job.attempts >= self.max_attempts:
            reasons = [
                e.get("reason", e["event"])
                for e in job.events
                if e["event"] in ("retrying", "failed")
            ] + [reason]
            job.error = RetryBudgetExhausted(
                f"{job.id} crashed on all {job.attempts} attempts "
                f"(last: {reason})",
                attempts=job.attempts,
                reasons=reasons,
            )
            job._event(
                "failed",
                reason="retry_budget_exhausted",
                attempts=job.attempts,
                last_crash=reason,
            )
            job._finish("failed")
            self._inflight.pop(job.key, None)
            self._cleanup_checkpoints(job.key)
            self._counts["failed"] += 1
            return
        delay = self._backoff(job.attempts)
        ckpt = self._checkpoint_path(job.key)
        can_resume = os.path.exists(ckpt) or os.path.exists(f"{ckpt}.prev")
        job.state = "retrying"
        job._event(
            "retrying",
            reason=reason,
            attempt=job.attempts,
            next_attempt=job.attempts + 1,
            delay=round(delay, 4),
            resume_available=can_resume,
        )
        self._retry_seq += 1
        heapq.heappush(
            self._retries, (time.monotonic() + delay, self._retry_seq, job)
        )

    def _check_hangs(self) -> None:
        now = time.monotonic()
        for w in list(self._workers):
            if not w.alive or w.busy is None:
                continue
            if now - w.last_beat > self.heartbeat_timeout:
                self._crash(w, "heartbeat_timeout")
            elif (
                self.job_deadline is not None
                and now - w.started_at > self.job_deadline
            ):
                self._crash(w, "deadline_exceeded")

    def _cleanup_checkpoints(self, key: str) -> None:
        ckpt = self._checkpoint_path(key)
        for path in (ckpt, f"{ckpt}.prev"):
            try:
                os.remove(path)
            except OSError:
                pass
