"""Reference-diff kernels: from dirty ranges to changed positions.

The registry tells us *which index ranges* of an indirection array some
write may have touched (:meth:`ModificationRegistry.dirty_ranges`); the
snapshot taken at the last inspection tells us what the values were.
Comparing the two inside the dirty ranges yields the exact positions
whose values actually changed -- typically a small fraction even of the
dirty window (rewriting an edge list in place leaves most entries
equal).  Everything downstream of this diff is sized by those positions,
which is what makes patching delta-proportional.

All kernels are pure vector code in the ``sorted_unique_inverse`` style
of ``chaos/localize.py``: no Python loop over ranges or elements.
"""

from __future__ import annotations

import numpy as np

from repro.core.timestamps import (
    merge_ranges,
    normalize_ranges,
    ranges_from_positions,
)

__all__ = [
    "expand_ranges",
    "changed_at",
    "changed_positions",
    "ranges_from_positions",
]


def expand_ranges(ranges: np.ndarray) -> np.ndarray:
    """All positions covered by ``(k, 2)`` half-open ranges, ascending.

    Ranges are merged first, so overlapping inputs never duplicate a
    position.  The expansion is the standard repeat/cumsum trick: one
    ``np.repeat`` + one ``np.arange`` regardless of how many ranges
    there are.
    """
    arr = merge_ranges(ranges)
    if not arr.size:
        return np.empty(0, dtype=np.int64)
    lens = arr[:, 1] - arr[:, 0]
    total = int(lens.sum())
    offsets = np.concatenate(([0], np.cumsum(lens)[:-1]))
    return np.repeat(arr[:, 0] - offsets, lens) + np.arange(total, dtype=np.int64)


def changed_at(
    snapshot: np.ndarray, current: np.ndarray, positions: np.ndarray
) -> np.ndarray:
    """The subset of ``positions`` where ``current`` differs from
    ``snapshot`` -- the diff core, for callers that already expanded
    their dirty window."""
    if snapshot.shape != current.shape:
        raise ValueError(
            f"snapshot shape {snapshot.shape} != current shape {current.shape}"
        )
    if not positions.size:
        return positions
    return positions[snapshot[positions] != current[positions]]


def changed_positions(
    snapshot: np.ndarray, current: np.ndarray, ranges: np.ndarray
) -> np.ndarray:
    """Positions inside ``ranges`` where ``current`` differs from ``snapshot``.

    Returns a sorted int64 position array.  ``snapshot`` and ``current``
    are full-length global value arrays; only the dirty window is read.
    """
    pos = expand_ranges(normalize_ranges(ranges, snapshot.shape[0]))
    return changed_at(snapshot, current, pos)
