"""Tests for the alpha-beta cost model."""

import pytest
from hypothesis import given, strategies as st

from repro.machine.costmodel import CostModel, IDEALIZED, IPSC860, make_cost_model


class TestMessageTime:
    def test_zero_bytes_costs_alpha(self):
        m = CostModel(alpha=1e-4, beta=1e-6, hop_cost=0.0)
        assert m.message_time(0) == pytest.approx(1e-4)

    def test_linear_in_bytes(self):
        m = CostModel(alpha=0.0, beta=2e-6, hop_cost=0.0)
        assert m.message_time(1000) == pytest.approx(2e-3)

    def test_hop_surcharge(self):
        m = CostModel(alpha=1e-4, beta=0.0, hop_cost=1e-5)
        one = m.message_time(0, hops=1)
        four = m.message_time(0, hops=4)
        assert four - one == pytest.approx(3e-5)

    def test_zero_hops_same_as_one(self):
        m = IPSC860
        assert m.message_time(64, hops=0) == m.message_time(64, hops=1)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError, match="negative message size"):
            IPSC860.message_time(-1)

    def test_negative_hops_rejected(self):
        with pytest.raises(ValueError, match="negative hop count"):
            IPSC860.message_time(8, hops=-2)


class TestComputeTime:
    def test_flops(self):
        m = CostModel(flop_time=1e-6)
        assert m.compute_time(flops=1000) == pytest.approx(1e-3)

    def test_mixed(self):
        m = CostModel(flop_time=1e-6, iop_time=1e-7, mem_time=1e-8)
        t = m.compute_time(flops=10, iops=10, mem=10)
        assert t == pytest.approx(10e-6 + 10e-7 + 10e-8)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            IPSC860.compute_time(flops=-1)


class TestPresets:
    def test_ipsc860_calibration(self):
        # ~100us startup, ~2.8 MB/s bandwidth: an 8KB message ~ 3ms
        t = IPSC860.message_time(8192)
        assert 2e-3 < t < 4e-3

    def test_idealized_is_much_faster(self):
        assert IDEALIZED.message_time(8192) < IPSC860.message_time(8192) / 10

    def test_factory(self):
        assert make_cost_model("ipsc860") is IPSC860
        with pytest.raises(ValueError, match="unknown cost model"):
            make_cost_model("cray")

    def test_invalid_field_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            CostModel(alpha=-1.0)


class TestScaled:
    def test_scaling_one_field(self):
        m = IPSC860.scaled(alpha=10.0)
        assert m.alpha == pytest.approx(IPSC860.alpha * 10)
        assert m.beta == IPSC860.beta

    def test_name_not_scalable(self):
        with pytest.raises(ValueError, match="name"):
            IPSC860.scaled(name=2.0)

    def test_scaled_is_new_object(self):
        m = IPSC860.scaled(beta=0.5)
        assert m is not IPSC860
        assert IPSC860.beta == CostModel().beta  # original untouched


@given(
    nbytes=st.integers(min_value=0, max_value=10**9),
    hops=st.integers(min_value=0, max_value=10),
)
def test_message_time_monotone(nbytes, hops):
    m = IPSC860
    assert m.message_time(nbytes, hops) <= m.message_time(nbytes + 1, hops)
    assert m.message_time(nbytes, hops) <= m.message_time(nbytes, hops + 1)
    assert m.message_time(nbytes, hops) >= m.alpha
