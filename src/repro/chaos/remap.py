"""Array remapping: move data between distributions (Phase C of Figure 2).

"A communication schedule is built and used to redistribute the arrays
from the default to the new distribution" (Section 4.1.2).  The schedule
is built once per redistribution and applied to every array aligned with
the decomposition -- remapping x, y and the coordinate arrays of a mesh
shares one :class:`RemapSchedule`.
"""

from __future__ import annotations

import numpy as np

from repro.chaos.costs import ChaosCosts, DEFAULT_COSTS
from repro.distribution.base import Distribution
from repro.distribution.distarray import DistArray
from repro.machine.machine import Machine


class RemapSchedule:
    """Moves every element from its old owner/offset to its new one."""

    def __init__(
        self,
        machine: Machine,
        old_signature: tuple,
        new_dist: Distribution,
        moves: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]],
    ):
        self.machine = machine
        self.old_signature = old_signature
        self.new_dist = new_dist
        #: (src, dst) -> (old local offsets on src, new local offsets on dst)
        self.moves = moves

    def element_count(self) -> int:
        """Elements that change processor (self-moves excluded)."""
        return sum(
            len(src_l) for (p, q), (src_l, _) in self.moves.items() if p != q
        )

    def apply(
        self, arr: DistArray, costs: ChaosCosts = DEFAULT_COSTS
    ) -> None:
        """Move one array's data and rebind it to the new distribution."""
        if arr.machine is not self.machine:
            raise ValueError("remap schedule and array live on different machines")
        if arr.distribution.signature() != self.old_signature:
            raise ValueError(
                f"remap schedule is stale: built for {self.old_signature}, "
                f"array {arr.name!r} has {arr.distribution.signature()}"
            )
        m = self.machine
        n = m.n_procs
        new_locals = [
            np.empty(self.new_dist.local_size(p), dtype=arr.dtype) for p in range(n)
        ]
        pack = np.zeros(n)
        unpack = np.zeros(n)
        pair_p: list[int] = []
        pair_q: list[int] = []
        pair_bytes: list[int] = []
        for (p, q), (src_l, dst_l) in self.moves.items():
            if not len(src_l):
                continue
            new_locals[q][dst_l] = arr.local(p)[src_l]
            pack[p] += DEFAULT_COSTS.pack_unpack_mem * len(src_l)
            unpack[q] += DEFAULT_COSTS.pack_unpack_mem * len(src_l)
            pair_p.append(p)
            pair_q.append(q)
            pair_bytes.append(len(src_l) * arr.itemsize)
        m.charge_compute_all(mem=pack)
        m.exchange(
            src=np.asarray(pair_p, dtype=np.int64),
            dst=np.asarray(pair_q, dtype=np.int64),
            nbytes=np.asarray(pair_bytes, dtype=np.int64),
        )
        m.charge_compute_all(mem=unpack)
        arr.rebind(self.new_dist, new_locals)


def build_remap_schedule(
    machine: Machine,
    old_dist: Distribution,
    new_dist: Distribution,
    costs: ChaosCosts = DEFAULT_COSTS,
) -> RemapSchedule:
    """Build the schedule that moves data from ``old_dist`` to ``new_dist``.

    Charges the per-element schedule-construction work (new translation
    table entries, move-list assembly) plus the exchange of move lists.
    """
    if old_dist.size != new_dist.size:
        raise ValueError(
            f"cannot remap between sizes {old_dist.size} and {new_dist.size}"
        )
    if old_dist.n_procs != machine.n_procs or new_dist.n_procs != machine.n_procs:
        raise ValueError("distributions must span the machine")
    n = machine.n_procs
    size = old_dist.size
    g = np.arange(size, dtype=np.int64)
    old_owner = np.asarray(old_dist.owner(g), dtype=np.int64) if size else g
    new_owner = np.asarray(new_dist.owner(g), dtype=np.int64) if size else g
    old_lidx = np.asarray(old_dist.local_index(g), dtype=np.int64) if size else g
    new_lidx = np.asarray(new_dist.local_index(g), dtype=np.int64) if size else g

    moves: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
    counts = np.zeros((n, n), dtype=np.int64)
    if size:
        pair_key = old_owner * n + new_owner
        order = np.argsort(pair_key, kind="stable")
        sorted_keys = pair_key[order]
        boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
        starts = np.concatenate(([0], boundaries, [size]))
        for i in range(len(starts) - 1):
            lo, hi = starts[i], starts[i + 1]
            key = int(sorted_keys[lo])
            p, q = divmod(key, n)
            idx = order[lo:hi]
            moves[(p, q)] = (old_lidx[idx], new_lidx[idx])
            counts[p, q] = hi - lo

    # charge: per-element remap bookkeeping at the old owner, plus the
    # move-list exchange (each element's (gidx, new offset) pair travels
    # to the new owner as schedule metadata)
    per_proc = counts.sum(axis=1).astype(float)
    machine.charge_compute_all(iops=costs.remap_build * per_proc)
    off_diag = counts.copy()
    np.fill_diagonal(off_diag, 0)
    move_p, move_q = np.nonzero(off_diag)
    machine.exchange(
        src=move_p,
        dst=move_q,
        nbytes=off_diag[move_p, move_q] * 2 * costs.index_bytes,
    )
    machine.barrier()
    return RemapSchedule(machine, old_dist.signature(), new_dist, moves)


def remap_array(
    arr: DistArray, new_dist: Distribution, costs: ChaosCosts = DEFAULT_COSTS
) -> RemapSchedule:
    """Build a schedule and remap a single array; returns the schedule."""
    sched = build_remap_schedule(arr.machine, arr.distribution, new_dist, costs)
    sched.apply(arr, costs)
    return sched


def remap_arrays(
    arrays: list[DistArray],
    new_dist: Distribution,
    costs: ChaosCosts = DEFAULT_COSTS,
) -> RemapSchedule:
    """Remap several same-distribution arrays sharing one schedule.

    This is what REDISTRIBUTE does to every array aligned with a
    decomposition: the schedule is built once, applied per array.
    """
    if not arrays:
        raise ValueError("no arrays to remap")
    first = arrays[0]
    for arr in arrays[1:]:
        if arr.distribution.signature() != first.distribution.signature():
            raise ValueError(
                f"arrays {first.name!r} and {arr.name!r} have different "
                "distributions; remap them separately"
            )
        if arr.machine is not first.machine:
            raise ValueError("arrays live on different machines")
    sched = build_remap_schedule(first.machine, first.distribution, new_dist, costs)
    for arr in arrays:
        sched.apply(arr, costs)
    return sched
