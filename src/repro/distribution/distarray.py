"""Distributed arrays: flat segmented storage with content-versioned views.

Layout
------
A ``DistArray`` stores every virtual processor's segment in **one
contiguous backing array** laid out CSR-style: processor ``p``'s segment
is ``backing[offsets[p]:offsets[p+1]]`` where ``offsets`` are the
distribution's cached :meth:`~repro.distribution.base.Distribution.flat_offsets`.
``local(p)`` hands out a *live slice view* of the backing (writes through
it hit the array), so the CHAOS runtime can pack/unpack/scatter with a
single fancy-index over the backing instead of a Python loop over
processors.

Versioning contract
-------------------
``version`` is a monotonically increasing content counter.  Every
mutating API bumps it: ``from_global``/``set_global``, ``global_set``,
``rebind``/``rebind_flat``, the runtime's direct backing writes
(schedule scatter, remap apply, executor merge), and — via a write
barrier on the view class — indexed assignment, in-place operators and
``ufunc``/``ufunc.at`` writes through views obtained from ``local(p)``.
``global_view()`` returns the assembled global array as a cached
*read-only* array that is recomputed only when ``version`` moved;
``to_global()`` returns a fresh writable copy of it.  The one documented
hole in the barrier: laundering a ``local(p)`` view through
``np.asarray``/``.view(np.ndarray)`` before writing bypasses the bump —
runtime code never does that, and external callers should mutate through
the documented APIs.

The convenience accessors (``to_global`` / ``from_global`` /
``global_get`` / ``global_set``) exist for construction, verification
and tests, and deliberately charge *nothing* to the simulated machine.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

import numpy as np

from repro.distribution.base import Distribution
from repro.machine.machine import Machine

if TYPE_CHECKING:  # pragma: no cover
    from repro.distribution.decomposition import Decomposition

_uid_counter = itertools.count(1)


class LocalSegmentView(np.ndarray):
    """A live, writable slice of a ``DistArray``'s backing storage.

    Acts as the write barrier of the versioning contract: indexed
    assignment, in-place operators, ufunc calls with this view as an
    ``out=`` target, and ``ufunc.at`` scatter updates all bump the
    owning array's content version.  Derived views (slices of slices)
    inherit the barrier through ``__array_finalize__``.
    """

    _owner: "DistArray | None"

    def __array_finalize__(self, obj) -> None:
        self._owner = getattr(obj, "_owner", None)

    def _touch(self) -> None:
        owner = self._owner
        if owner is not None:
            owner._bump()

    def __setitem__(self, key, value):
        self._touch()
        super().__setitem__(key, value)

    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        out = kwargs.get("out")
        writes = method == "at" and inputs and inputs[0] is self
        if out is not None:
            outs = out if isinstance(out, tuple) else (out,)
            writes = writes or any(o is self for o in outs)
        if writes:
            self._touch()

        # strip the barrier subclass and run the ufunc on plain views so
        # results don't inherit it (and ndarray's default dispatch, which
        # bails on mixed-override operands, is never consulted)
        def strip(x):
            return x.view(np.ndarray) if isinstance(x, LocalSegmentView) else x

        inputs = tuple(strip(x) for x in inputs)
        if out is not None:
            stripped = tuple(
                strip(o) for o in (out if isinstance(out, tuple) else (out,))
            )
            kwargs["out"] = stripped if isinstance(out, tuple) else stripped[0]
        return getattr(ufunc, method)(*inputs, **kwargs)


class DistArray:
    """A 1-D distributed array on a simulated machine (flat-backed)."""

    def __init__(
        self,
        machine: Machine,
        distribution: Distribution,
        dtype=np.float64,
        name: str | None = None,
        fill=0,
    ):
        if distribution.n_procs != machine.n_procs:
            raise ValueError(
                f"distribution spans {distribution.n_procs} processors, machine "
                f"has {machine.n_procs}"
            )
        self.machine = machine
        self.distribution = distribution
        self.dtype = np.dtype(dtype)
        self.uid = next(_uid_counter)
        self.name = name if name is not None else f"arr{self.uid}"
        self.decomposition: "Decomposition | None" = None
        self._offsets = distribution.flat_offsets()
        self._data = np.full(distribution.size, fill, dtype=self.dtype)
        self._version = 0
        self._global_cache: np.ndarray | None = None
        self._global_cache_version = -1

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_global(
        cls,
        machine: Machine,
        distribution: Distribution,
        values,
        name: str | None = None,
    ) -> "DistArray":
        """Scatter a global NumPy array into local segments (no cost charged)."""
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError(f"expected a 1-D array, got shape {values.shape}")
        if values.size != distribution.size:
            raise ValueError(
                f"value count {values.size} != distribution size {distribution.size}"
            )
        arr = cls(machine, distribution, dtype=values.dtype, name=name)
        arr.set_global(values)
        return arr

    def set_global(self, values: np.ndarray) -> None:
        """Fill the backing from a global array (one permuted fancy-index)."""
        dist = self.distribution
        if dist.global_perm_is_identity():
            self._data[:] = values
        else:
            self._data[:] = values[dist.global_perm()]
        self._bump()

    # -- basic properties -------------------------------------------------------
    @property
    def size(self) -> int:
        return self.distribution.size

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize

    @property
    def version(self) -> int:
        """Content version: bumped by every mutation (see module docstring)."""
        return self._version

    def _bump(self) -> None:
        self._version += 1

    # -- local segment access ---------------------------------------------------
    def _check_proc(self, p: int) -> None:
        if not 0 <= p < self.machine.n_procs:
            raise ValueError(
                f"processor id {p} out of range [0, {self.machine.n_procs})"
            )

    def local(self, p: int) -> np.ndarray:
        """The local segment of processor ``p`` — a live, *writable* view.

        Writes through the returned view (indexed assignment, in-place
        ops, ``ufunc.at``) bump the content version via the
        :class:`LocalSegmentView` write barrier.
        """
        self._check_proc(p)
        view = self._data[self._offsets[p] : self._offsets[p + 1]].view(
            LocalSegmentView
        )
        view._owner = self
        return view

    def local_ro(self, p: int) -> np.ndarray:
        """Read-only view of processor ``p``'s segment (no barrier cost).

        The runtime's read paths use this so acquiring segments for
        packing never invalidates the cached global view.
        """
        self._check_proc(p)
        view = self._data[self._offsets[p] : self._offsets[p + 1]]
        view.flags.writeable = False
        return view

    # -- flat backing access (runtime internals) --------------------------------
    @property
    def backing_ro(self) -> np.ndarray:
        """Read-only view of the whole flat backing array."""
        view = self._data[:]
        view.flags.writeable = False
        return view

    def backing_mut(self) -> np.ndarray:
        """The writable flat backing; bumps the content version.

        Callers (schedule scatter, remap apply, executor merge) mutate
        the returned array directly — the bump here is their barrier.
        """
        self._bump()
        return self._data

    # -- global views (test/verification helpers; charge nothing) -------------
    def global_view(self) -> np.ndarray:
        """The assembled global array as a cached **read-only** view.

        Recomputed lazily only when the content version moved; while the
        array is unmutated this is O(1), which is what lets inspectors
        read indirection arrays once per run instead of re-assembling
        them per loop.
        """
        if self._global_cache_version != self._version:
            dist = self.distribution
            if dist.global_perm_is_identity():
                out = self._data.copy()
            else:
                out = self._data[dist.global_perm_inverse()]
            out.flags.writeable = False
            self._global_cache = out
            self._global_cache_version = self._version
        return self._global_cache

    def to_global(self) -> np.ndarray:
        """Assemble the global array (fresh writable copy of the cache)."""
        return self.global_view().copy()

    def global_get(self, gidx) -> np.ndarray:
        """Read values at global indices, regardless of owner."""
        g = self.distribution._check_gidx(gidx)
        if self.distribution.global_perm_is_identity():
            return self._data[g]
        return self._data[self.distribution.global_perm_inverse()[g]]

    def global_set(self, gidx, values) -> None:
        """Write values at global indices, regardless of owner."""
        g = self.distribution._check_gidx(gidx)
        vals = np.broadcast_to(np.asarray(values, dtype=self.dtype), g.shape)
        if self.distribution.global_perm_is_identity():
            self._data[g] = vals
        else:
            self._data[self.distribution.global_perm_inverse()[g]] = vals
        self._bump()

    # -- rebinding (used by CHAOS remap) ---------------------------------------
    def rebind(self, distribution: Distribution, new_locals: list[np.ndarray]) -> None:
        """Replace distribution and local segments after a remap.

        Callers (``repro.chaos.remap``) are responsible for having moved
        the data and charged the machine; this only swaps the bindings,
        validating shapes.  ``new_locals`` is the per-processor list
        form; the flat path uses :meth:`rebind_flat`.
        """
        if distribution.size != self.size:
            raise ValueError(
                f"remap changed array size: {self.size} -> {distribution.size}"
            )
        if distribution.n_procs != self.machine.n_procs:
            raise ValueError("remap distribution spans a different machine size")
        if len(new_locals) != self.machine.n_procs:
            raise ValueError(
                f"expected {self.machine.n_procs} local segments, got {len(new_locals)}"
            )
        sizes = distribution.local_sizes()
        for p, seg in enumerate(new_locals):
            if seg.shape != (int(sizes[p]),):
                raise ValueError(
                    f"segment for processor {p} has shape {seg.shape}, "
                    f"expected ({int(sizes[p])},)"
                )
        self.rebind_flat(
            distribution,
            np.concatenate([np.asarray(seg) for seg in new_locals])
            if new_locals
            else np.empty(0, dtype=self.dtype),
        )

    def rebind_flat(self, distribution: Distribution, flat: np.ndarray) -> None:
        """Flat-form rebind: ``flat`` is the new backing in segmented order."""
        if distribution.size != self.size:
            raise ValueError(
                f"remap changed array size: {self.size} -> {distribution.size}"
            )
        if distribution.n_procs != self.machine.n_procs:
            raise ValueError("remap distribution spans a different machine size")
        flat = np.ascontiguousarray(flat, dtype=self.dtype)
        if flat.shape != (self.size,):
            raise ValueError(
                f"flat backing has shape {flat.shape}, expected ({self.size},)"
            )
        self.distribution = distribution
        self._offsets = distribution.flat_offsets()
        self._data = flat
        self._bump()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DistArray({self.name!r}, size={self.size}, dtype={self.dtype}, "
            f"{self.distribution.kind})"
        )
