"""Recursive coordinate bisection (Berger & Bokhari 1987).

The paper's "recursive binary dissection" / "binary coordinate
bisection": recursively cut the vertex set by a plane orthogonal to the
coordinate axis of greatest extent, placing the cut at the weighted
median.  Handles any number of parts (not just powers of two) by
splitting weight in proportion to the part counts assigned to each side.

The modeled parallel cost reflects the classic distributed
implementation: each median is found by iterative probing (every probe
scans local coordinates and takes a global sum), and each level ends by
exchanging vertex records across the cut.
"""

from __future__ import annotations

import numpy as np

from repro.partitioners.base import (
    PartitionProblem,
    PartitionResult,
    Partitioner,
    register_partitioner,
)
from repro.partitioners.weighted import weighted_median_split

#: modeled median-probe rounds per bisection (parallel bisection search)
MEDIAN_PROBES = 16
#: modeled integer ops per vertex per probe (compare + partial count)
PROBE_IOPS = 4.0
#: modeled bytes per vertex record exchanged when a level re-buckets
RECORD_BYTES = 32.0


@register_partitioner("RCB")
class RCBPartitioner(Partitioner):
    """Geometry-based partitioner; needs GEOMETRY, honours LOAD."""

    needs_coords = True

    def partition(self, problem: PartitionProblem, n_parts: int) -> PartitionResult:
        self.validate(problem, n_parts)
        n = problem.n_vertices
        owners = np.zeros(n, dtype=np.int64)
        coords = problem.coords
        weights = problem.effective_weights()

        flops = 0.0
        iops = 0.0
        rounds = 0
        comm_bytes = 0.0
        levels = 0

        # worklist of (vertex index array, first part id, part count)
        work = [(np.arange(n, dtype=np.int64), 0, n_parts)]
        while work:
            next_work = []
            level_vertices = 0
            for idx, part0, parts in work:
                if parts == 1 or idx.size == 0:
                    owners[idx] = part0
                    continue
                left_parts = (parts + 1) // 2
                frac = left_parts / parts
                sub = coords[:, idx]
                extent = sub.max(axis=1) - sub.min(axis=1) if idx.size else None
                axis = int(np.argmax(extent)) if idx.size else 0
                mask = weighted_median_split(sub[axis], weights[idx], frac)
                next_work.append((idx[mask], part0, left_parts))
                next_work.append((idx[~mask], part0 + left_parts, parts - left_parts))
                level_vertices += idx.size
            if level_vertices:
                levels += 1
                # extent scan + median probes over every active vertex
                flops += 2.0 * level_vertices
                iops += MEDIAN_PROBES * PROBE_IOPS * level_vertices
                rounds += MEDIAN_PROBES
                # re-bucketing: half the records cross the cut on average
                comm_bytes += 0.5 * RECORD_BYTES * level_vertices
            work = next_work

        return PartitionResult(
            owner_map=owners,
            n_parts=n_parts,
            flops=flops,
            iops=iops,
            sync_rounds=rounds,
            comm_bytes=comm_bytes,
            info={"levels": levels},
        )
