"""Structural and content invariant checkers for runtime products.

Every product the reuse machinery saves -- communication schedules,
ghost buffers, iteration partitions, adapt slot bookkeeping -- obeys a
layout contract documented where the structure is defined
(``chaos/schedule.py``, ``chaos/buffers.py``, ``adapt/__init__.py``).
This module machine-checks those contracts at three levels:

``off``
    No checking (the default; zero overhead).
``cheap``
    Linear vectorized scans: CSR bounds monotone and agreeing across
    structures, ids and slots in range, unpack positions unique per
    gather, schedule occupancy consistent with live slot counts (hole
    accounting), schedule entries consistent with the saved slot map.
    Fast enough to run after every incremental patch.
``full``
    Everything in ``cheap`` plus order and content checks that need
    sorts or distribution dereferences: requester-major/owner-minor
    pair order, key-sorted wire order within each pair, ghost-key
    uniqueness per requester, owner/local-offset recomputation against
    the live distribution, iteration-partition permutation, reference
    counts recomputed from the localized reference lists, and the home
    map against the partition.

All checkers are **host-level**: they never charge the simulated
machine, never bump an array's content version (read-only access only),
and raise :class:`~repro.guard.errors.InvariantViolation` with a
description of the first violated contract.  :func:`gather_divergence`
is the executor-side content check (gathered ghost values vs. the
owners' current values); :func:`content_checksum` provides CRC32
content fingerprints cached on the existing version counters.
"""

from __future__ import annotations

import weakref
import zlib

import numpy as np

from repro.guard.errors import InvariantViolation

#: recognised guard levels, weakest to strongest
LEVELS = ("off", "cheap", "full")

#: object (DistArray-like, with a ``version`` counter) -> (version, crc)
_CRC_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def check_level(level: str) -> str:
    """Validate a guard level string and return it."""
    if level not in LEVELS:
        raise ValueError(
            f"unknown guard level {level!r}; choose " + " | ".join(LEVELS)
        )
    return level


def _fail(msg: str) -> None:
    raise InvariantViolation(msg)


# ----------------------------------------------------------------------
# content checksums
# ----------------------------------------------------------------------
def content_checksum(obj) -> int:
    """CRC32 of an object's flat contents, cached on its version counter.

    Accepts a ``DistArray`` (cached: recomputed only when the content
    version counter moved), a ``GhostBuffers`` (uncached -- ghosts have
    no version counter), or any ndarray.  Access is strictly read-only.
    """
    version = getattr(obj, "version", None)
    if version is not None:
        cached = _CRC_CACHE.get(obj)
        if cached is not None and cached[0] == version:
            return cached[1]
    backing = getattr(obj, "backing_ro", None)
    if backing is None:
        backing = getattr(obj, "backing", None)
    if backing is None:
        backing = np.asarray(obj)
    crc = zlib.crc32(np.ascontiguousarray(backing).tobytes())
    if version is not None:
        try:
            _CRC_CACHE[obj] = (version, crc)
        except TypeError:  # pragma: no cover - non-weakref-able object
            pass
    return crc


# ----------------------------------------------------------------------
# structure-level checkers
# ----------------------------------------------------------------------
def verify_schedule(schedule, level: str = "cheap", canonical: bool = True) -> None:
    """Check a ``CommSchedule``'s structural contract.

    ``canonical=True`` additionally requires requester-major /
    owner-minor pair order -- the order ``localize``, ``from_entries``
    and ``patched`` produce.  Schedules assembled from explicit pair
    dicts keep insertion order and are checked with ``canonical=False``.
    """
    if check_level(level) == "off":
        return
    n = schedule.n_procs
    sizes = np.asarray(schedule.ghost_sizes, dtype=np.int64)
    if sizes.size != n or (sizes < 0).any():
        _fail(f"schedule ghost_sizes invalid: {sizes.size} entries for {n} procs")
    off = schedule._ghost_off
    if off[0] != 0 or not np.array_equal(np.diff(off), sizes):
        _fail("schedule ghost offsets disagree with ghost_sizes")
    pq, pp, plen = schedule._pair_q, schedule._pair_p, schedule._pair_len
    if pq.size:
        if pq.min() < 0 or pq.max() >= n or pp.min() < 0 or pp.max() >= n:
            _fail("schedule pair processor id out of range")
        if (plen <= 0).any():
            _fail("schedule stores an empty pair (contract: live pairs only)")
        if canonical:
            pair_id = pp * n + pq
            if (np.diff(pair_id) <= 0).any():
                _fail(
                    "schedule pairs are not requester-major/owner-minor "
                    "ordered (canonical pair order)"
                )
    n_el = int(plen.sum())
    send, recv = schedule._flat_send, schedule._flat_recv
    if send.size != n_el or recv.size != n_el or schedule._n_elements != n_el:
        _fail("schedule flat arrays disagree with pair lengths")
    if n_el:
        if send.min() < 0:
            _fail("schedule send offset is negative")
        flat_p = np.repeat(pp, plen)
        bad = (recv < 0) | (recv >= sizes[flat_p])
        if bad.any():
            i = int(np.flatnonzero(bad)[0])
            _fail(
                f"schedule recv slot {int(recv[i])} out of range "
                f"[0, {int(sizes[flat_p[i]])}) for requester {int(flat_p[i])}"
            )
        # each ghost backing position is written at most once per gather
        occ = np.bincount(schedule._unpack_pos, minlength=int(off[-1]))
        if occ.size and occ.max() > 1:
            s = int(np.argmax(occ))
            _fail(f"ghost backing position {s} unpacked {int(occ[s])} times per gather")


def verify_ghosts(ghosts, schedule=None, level: str = "cheap") -> None:
    """Check a ``GhostBuffers``' backing/offsets agreement."""
    if check_level(level) == "off":
        return
    offsets = ghosts.offsets
    if offsets[0] != 0 or (np.diff(offsets) < 0).any():
        _fail("ghost buffer offsets are not a monotone CSR")
    if ghosts.backing.ndim != 1 or ghosts.backing.size != int(offsets[-1]):
        _fail(
            f"ghost backing has {ghosts.backing.size} elements, offsets "
            f"describe {int(offsets[-1])}"
        )
    if schedule is not None:
        sizes = np.asarray(schedule.ghost_sizes, dtype=np.int64)
        if not np.array_equal(np.diff(offsets), sizes):
            _fail("ghost buffer regions disagree with the schedule's ghost sizes")


def verify_partition(partition, n_iterations: int | None = None, level: str = "cheap") -> None:
    """Check an ``IterationPartition``'s CSR layout (and, at ``full``,
    that it is a permutation of the iteration space)."""
    if check_level(level) == "off":
        return
    flat, bounds = partition.iters_flat()
    if bounds[0] != 0 or (np.diff(bounds) < 0).any():
        _fail("iteration partition bounds are not a monotone CSR")
    if int(bounds[-1]) != flat.size:
        _fail("iteration partition bounds disagree with flat size")
    total = partition.n_iterations if n_iterations is None else n_iterations
    if flat.size != total:
        _fail(f"iteration partition covers {flat.size} of {total} iterations")
    if flat.size and (flat.min() < 0 or flat.max() >= total):
        _fail("iteration id out of range in partition")
    if level == "full" and flat.size:
        if (np.bincount(flat, minlength=total) != 1).any():
            _fail("iteration partition is not a permutation (lost/duplicated iteration)")


# ----------------------------------------------------------------------
# product-level checkers
# ----------------------------------------------------------------------
def _schedule_entry_slots(schedule, ghost_bounds) -> tuple:
    """Per-entry (q, p, send, global slot id) arrays of a schedule."""
    q, p, send, recv = schedule.entries()
    return q, p, send, ghost_bounds[p] + recv


def _verify_slot_space(pat, arr, level: str) -> None:
    """Ghost slot space of one pattern group vs. its schedule and array."""
    loc = pat.localized
    sched = loc.schedule
    gb = np.asarray(loc.ghost_bounds, dtype=np.int64)
    if not np.array_equal(gb, sched._ghost_off):
        _fail(f"pattern {pat.array!r} ghost bounds disagree with its schedule")
    keys = np.asarray(loc.ghost_flat, dtype=np.int64)
    if keys.size != int(gb[-1]):
        _fail(f"pattern {pat.array!r} ghost key array does not cover the slot space")
    if keys.size and (keys < -1).any():
        _fail(f"pattern {pat.array!r} has a ghost key below -1")
    live = keys >= 0
    if live.any() and keys[live].max() >= arr.size:
        _fail(f"pattern {pat.array!r} ghost key out of range [0, {arr.size})")
    q, p, send, slot = _schedule_entry_slots(sched, gb)
    if slot.size:
        ek = keys[slot]
        if (ek < 0).any():
            s = int(slot[np.flatnonzero(ek < 0)[0]])
            _fail(f"schedule of {pat.array!r} references retired ghost slot {s}")
        if level == "full":
            # wire order: within each pair, elements sorted by ghost key
            pair_rep = np.repeat(
                np.arange(sched._pair_q.size, dtype=np.int64), sched._pair_len
            )
            same = pair_rep[1:] == pair_rep[:-1]
            if (np.diff(ek)[same] <= 0).any():
                _fail(f"schedule of {pat.array!r} wire order is not key-sorted within a pair")
            # live keys unique per requester
            comp = p * max(arr.size, 1) + ek
            if np.unique(comp).size != comp.size:
                _fail(f"schedule of {pat.array!r} fetches a ghost key twice for one requester")
            # owner / local offset recomputation against the distribution
            dist = arr.distribution
            if not np.array_equal(np.asarray(dist.owner(ek), dtype=np.int64), q):
                _fail(f"schedule of {pat.array!r}: entry owner disagrees with distribution")
            if not np.array_equal(np.asarray(dist.local_index(ek), dtype=np.int64), send):
                _fail(f"schedule of {pat.array!r}: send offset disagrees with distribution")


def _verify_refs(pat, iter_bounds: np.ndarray, level: str) -> None:
    """Localized reference list of one pattern vs. the combined space."""
    loc = pat.localized
    rb = np.asarray(loc.ref_bounds, dtype=np.int64)
    if not np.array_equal(rb, iter_bounds):
        _fail(f"pattern ({pat.array!r}, {pat.index!r}) reference bounds disagree with the iteration partition")
    refs = loc.refs_flat
    if refs.size:
        local = np.asarray(loc.local_sizes, dtype=np.int64)
        ghost = np.diff(np.asarray(loc.ghost_bounds, dtype=np.int64))
        pid = np.repeat(np.arange(local.size, dtype=np.int64), np.diff(rb))
        limit = local[pid] + ghost[pid]
        if (refs < 0).any() or (refs >= limit).any():
            _fail(
                f"pattern ({pat.array!r}, {pat.index!r}) localized reference "
                "out of the combined local+ghost space"
            )


def verify_product(product, arrays, level: str = "cheap", state=None) -> None:
    """Check a whole ``InspectorProduct`` (and optionally its adapt state).

    Covers the iteration partition, distribution-signature freshness,
    every distinct schedule + ghost-buffer pair, every pattern's
    localized references, and -- when ``state`` (a ``LoopAdaptState``)
    is given -- the saved slot bookkeeping via
    :func:`verify_adapt_state`.
    """
    if check_level(level) == "off":
        return
    verify_partition(product.iteration_partition, product.loop.n_iterations, level)
    for name, sig in product.dist_signatures.items():
        arr = arrays.get(name)
        if arr is None:
            _fail(f"product of loop {product.loop.name!r}: array {name!r} is unbound")
        if arr.distribution.signature() != sig:
            _fail(
                f"product of loop {product.loop.name!r}: array {name!r} was "
                "redistributed since inspection (stale distribution signature)"
            )
    _, iter_bounds = product.iteration_partition.iters_flat()
    seen: set[int] = set()
    for pat in product.patterns.values():
        sched = pat.localized.schedule
        if id(sched) not in seen:
            seen.add(id(sched))
            verify_schedule(sched, level)
            verify_ghosts(pat.ghosts, sched, level)
            _verify_slot_space(pat, arrays[pat.array], level)
        _verify_refs(pat, iter_bounds, level)
    if state is not None:
        verify_adapt_state(product, state, arrays, level)


def verify_adapt_state(product, state, arrays, level: str = "cheap") -> None:
    """Cross-check saved adapt bookkeeping against the product it describes.

    The cheap pass is the hole-accounting contract: every live slot
    (reference count > 0) appears exactly once as a schedule recv slot,
    holes never appear, and each schedule entry's (owner, send offset,
    key) triple matches the saved per-slot map.  The full pass also
    recomputes reference counts from the localized reference lists,
    re-derives owners/offsets from the live distribution, and compares
    the home map against the iteration partition.
    """
    if check_level(level) == "off":
        return
    n_iter = product.loop.n_iterations
    home = state.home
    if home.size != n_iter:
        _fail(f"adapt home map covers {home.size} of {n_iter} iterations")
    if level == "full" and not np.array_equal(home, product.iteration_partition.owner_of()):
        _fail("adapt home map disagrees with the iteration partition")
    for name, snap in state.snapshots.items():
        arr = arrays.get(name)
        if arr is None or snap.size != arr.size:
            _fail(f"adapt snapshot of {name!r} does not match the bound array")
    by_sched: dict[int, list] = {}
    for key, pat in product.patterns.items():
        by_sched.setdefault(id(pat.localized.schedule), []).append(key)
    for members in by_sched.values():
        gkey = (members[0][0], tuple(k[1] for k in members))
        gstate = state.groups.get(gkey)
        if gstate is None:
            _fail(f"adapt state has no slot bookkeeping for group {gkey}")
        first = product.patterns[members[0]]
        loc = first.localized
        gb = np.asarray(loc.ghost_bounds, dtype=np.int64)
        if not np.array_equal(gstate.slot_bounds, gb):
            _fail(f"group {gkey}: saved slot bounds disagree with the product")
        S = int(gb[-1])
        for aname, a in (
            ("keys", gstate.keys),
            ("owners", gstate.owners),
            ("lidx", gstate.lidx),
            ("counts", gstate.counts),
        ):
            if a.size != S:
                _fail(f"group {gkey}: {aname} covers {a.size} of {S} slots")
        if gstate.counts.size and gstate.counts.min() < 0:
            _fail(f"group {gkey}: negative ghost reference count")
        q, p, send, slot = _schedule_entry_slots(loc.schedule, gb)
        occ = np.bincount(slot, minlength=S) if slot.size else np.zeros(S, dtype=np.int64)
        live = gstate.counts > 0
        if not np.array_equal(occ.astype(bool), live):
            _fail(
                f"group {gkey}: hole accounting broken -- schedule occupancy "
                "disagrees with live slot counts"
            )
        if slot.size:
            if not np.array_equal(gstate.owners[slot], q):
                _fail(f"group {gkey}: schedule entry owner disagrees with slot map")
            if not np.array_equal(gstate.lidx[slot], send):
                _fail(f"group {gkey}: schedule send offset disagrees with slot map")
            keys = np.asarray(loc.ghost_flat, dtype=np.int64)
            if not np.array_equal(gstate.keys[slot], keys[slot]):
                _fail(f"group {gkey}: schedule ghost keys disagree with slot map")
        if level == "full":
            dist = arrays[gstate.array].distribution
            if live.any():
                lk = gstate.keys[live]
                if not np.array_equal(
                    np.asarray(dist.owner(lk), dtype=np.int64), gstate.owners[live]
                ):
                    _fail(f"group {gkey}: saved slot owners disagree with distribution")
                if not np.array_equal(
                    np.asarray(dist.local_index(lk), dtype=np.int64), gstate.lidx[live]
                ):
                    _fail(f"group {gkey}: saved slot offsets disagree with distribution")
            # recompute reference counts from the localized reference lists
            counts = np.zeros(S, dtype=np.int64)
            local_sizes = np.asarray(loc.local_sizes, dtype=np.int64)
            for key in members:
                mloc = product.patterns[key].localized
                refs = mloc.refs_flat
                pid = np.repeat(
                    np.arange(gb.size - 1, dtype=np.int64),
                    np.diff(np.asarray(mloc.ref_bounds, dtype=np.int64)),
                )
                ghost = refs >= local_sizes[pid]
                if ghost.any():
                    gslot = gb[pid[ghost]] + (refs[ghost] - local_sizes[pid[ghost]])
                    np.add.at(counts, gslot, 1)
            if not np.array_equal(counts, gstate.counts):
                _fail(f"group {gkey}: reference counts drifted from the reference lists")


# ----------------------------------------------------------------------
# executor-side content check
# ----------------------------------------------------------------------
def gather_divergence(pat, arr) -> np.ndarray:
    """Ghost backing positions whose contents differ from the owners'.

    After a gather, ghost slot ``s`` of a live key ``k`` must hold the
    owner's current value of global element ``k`` bit for bit.  Returns
    the flat ghost backing positions that do not (empty when the gather
    is consistent).  Holes (key ``-1``) are never gathered and are
    skipped.  Read-only: does not touch versions or charge anything.
    """
    keys = np.asarray(pat.localized.ghost_flat, dtype=np.int64)
    backing = pat.ghosts.backing
    if not keys.size:
        return np.empty(0, dtype=np.int64)
    valid = np.flatnonzero(keys >= 0)
    if not valid.size:
        return np.empty(0, dtype=np.int64)
    want = np.asarray(arr.global_view())[keys[valid]]
    return valid[backing[valid] != want]
