"""Property-based tests on CHAOS invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.chaos import GhostBuffers, build_translation_table, localize
from repro.chaos.remap import remap_array
from repro.distribution import (
    BlockDistribution,
    CyclicDistribution,
    DistArray,
    IrregularDistribution,
)
from repro.machine import Machine


@st.composite
def localize_cases(draw):
    n_procs = draw(st.sampled_from([1, 2, 4, 8]))
    size = draw(st.integers(min_value=1, max_value=60))
    owners = draw(
        st.lists(
            st.integers(0, n_procs - 1), min_size=size, max_size=size
        )
    )
    n_refs = draw(st.integers(min_value=0, max_value=40))
    refs = [
        draw(st.lists(st.integers(0, size - 1), min_size=0, max_size=n_refs))
        for _ in range(n_procs)
    ]
    return n_procs, np.asarray(owners), [np.asarray(r, dtype=np.int64) for r in refs]


@given(localize_cases())
@settings(max_examples=60, deadline=None)
def test_gather_reproduces_global_reads(case):
    """The fundamental inspector/executor contract: after localize+gather,
    local indexing over [local segment | ghost buffer] equals global reads."""
    n_procs, owners, refs = case
    m = Machine(n_procs)
    dist = IrregularDistribution(owners, n_procs)
    tt = build_translation_table(m, dist)
    res = localize(m, tt, refs)
    rng = np.random.default_rng(42)
    vals = rng.normal(size=dist.size)
    arr = DistArray.from_global(m, dist, vals)
    ghosts = GhostBuffers(m, res.schedule, dtype=arr.dtype)
    res.schedule.gather(arr, ghosts.buffers)
    for p in range(n_procs):
        combined = np.concatenate([arr.local(p), ghosts.buf(p)])
        assert np.array_equal(combined[res.local_refs[p]], vals[refs[p]])


@given(localize_cases())
@settings(max_examples=60, deadline=None)
def test_scatter_add_matches_sequential_reduction(case):
    """scatter_add of per-iteration contributions == np.add.at globally."""
    n_procs, owners, refs = case
    m = Machine(n_procs)
    dist = IrregularDistribution(owners, n_procs)
    tt = build_translation_table(m, dist)
    res = localize(m, tt, refs)
    arr = DistArray.from_global(m, dist, np.zeros(dist.size))
    ghosts = GhostBuffers(m, res.schedule, dtype=arr.dtype)

    # each processor contributes 1.0 per reference, into local part or ghost
    expected = np.zeros(dist.size)
    for p in range(n_procs):
        combined = np.zeros(dist.size and (res.local_sizes[p] + ghosts.buf(p).size))
        np.add.at(combined, res.local_refs[p], 1.0)
        arr.local(p)[:] += combined[: res.local_sizes[p]]
        ghosts.buf(p)[:] = combined[res.local_sizes[p]:]
        np.add.at(expected, refs[p], 1.0)
    res.schedule.scatter_op(ghosts.buffers, arr, np.add)
    assert np.allclose(arr.to_global(), expected)


@st.composite
def remap_cases(draw):
    n_procs = draw(st.sampled_from([1, 2, 4]))
    size = draw(st.integers(min_value=0, max_value=50))
    kind = draw(st.sampled_from(["block", "cyclic", "irregular"]))
    if kind == "block":
        new = BlockDistribution(size, n_procs)
    elif kind == "cyclic":
        new = CyclicDistribution(size, n_procs)
    else:
        owners = draw(
            st.lists(st.integers(0, n_procs - 1), min_size=size, max_size=size)
        )
        new = IrregularDistribution(np.asarray(owners, dtype=np.int64), n_procs)
    return n_procs, size, new


@given(remap_cases())
@settings(max_examples=60, deadline=None)
def test_remap_preserves_content(case):
    n_procs, size, new = case
    m = Machine(n_procs)
    vals = np.arange(size, dtype=np.float64) * 1.5
    arr = DistArray.from_global(m, BlockDistribution(size, n_procs), vals)
    remap_array(arr, new)
    assert np.array_equal(arr.to_global(), vals)


@given(localize_cases())
@settings(max_examples=40, deadline=None)
def test_schedule_counters_consistent(case):
    """Ghost slots equal unique off-processor references; every recv slot
    is covered exactly once."""
    n_procs, owners, refs = case
    m = Machine(n_procs)
    dist = IrregularDistribution(owners, n_procs)
    tt = build_translation_table(m, dist)
    res = localize(m, tt, refs)
    sched = res.schedule
    for p in range(n_procs):
        expected = np.unique(
            np.asarray(refs[p])[
                np.asarray(dist.owner(refs[p])) != p
            ] if len(refs[p]) else np.empty(0, dtype=np.int64)
        )
        assert sched.ghost_sizes[p] == expected.size
        slots = np.concatenate(
            [rs for (q, pp), rs in sched.recv_slots.items() if pp == p]
            or [np.empty(0, dtype=np.int64)]
        )
        assert sorted(slots.tolist()) == list(range(sched.ghost_sizes[p]))
