#!/usr/bin/env python
"""Partitioner gallery: quality vs cost across the whole library.

Partitions one synthetic 3-D mesh with every registered partitioner and
prints the trade-off table the paper's Section 4 discusses: edge cut
(what the executor pays every iteration), communication volume, load
imbalance, and the modeled parallel partitioning cost (what you pay
once).  Custom partitioners registered by the user appear automatically.

    python examples/partitioner_gallery.py [n_nodes] [n_parts]
"""

import sys

from repro.machine import Machine
from repro.core import construct_geocol, partition_geocol
from repro.distribution import DistArray, BlockDistribution
from repro.partitioners import (
    available_partitioners,
    comm_volume,
    edge_cut,
    get_partitioner,
    load_imbalance,
)
from repro.workloads import generate_mesh


def main(n_nodes=2000, n_parts=16):
    mesh = generate_mesh(n_nodes, seed=3)
    print(
        f"mesh: {mesh.n_nodes} nodes, {mesh.n_edges} edges; "
        f"partitioning into {n_parts} parts\n"
    )
    header = (
        f"{'name':<8} {'edge cut':>9} {'cut %':>6} {'comm vol':>9} "
        f"{'imbalance':>9} {'modeled cost':>12}"
    )
    print(header)
    print("-" * len(header))
    for name in available_partitioners():
        part = get_partitioner(name)
        # feed each partitioner what it needs through the mapper coupler
        machine = Machine(n_parts)
        dist = BlockDistribution(mesh.n_nodes, n_parts)
        geo = [
            DistArray.from_global(machine, dist, mesh.coords[d], name=f"c{d}")
            for d in range(mesh.ndim)
        ]
        edist = BlockDistribution(mesh.n_edges, n_parts)
        e1 = DistArray.from_global(machine, edist, mesh.edges[0], name="e1")
        e2 = DistArray.from_global(machine, edist, mesh.edges[1], name="e2")
        g = construct_geocol(
            machine, "G", mesh.n_nodes, geometry=geo, link=(e1, e2)
        )
        machine.reset()
        try:
            dist_new, result = partition_geocol(machine, g, name)
        except ValueError as exc:
            print(f"{name:<8} (skipped: {exc})")
            continue
        owners = dist_new.owner_map()
        cut = edge_cut(mesh.edges, owners)
        print(
            f"{name:<8} {cut:>9} {100 * cut / mesh.n_edges:>5.1f}% "
            f"{comm_volume(mesh.edges, owners):>9} "
            f"{load_imbalance(owners, n_parts):>9.3f} "
            f"{machine.elapsed():>10.3f}s"
        )
    print(
        "\n'modeled cost' is the simulated parallel partitioning time on"
        "\nthe iPSC/860 model; 'cut %' drives the executor's per-iteration"
        "\ncommunication. The paper's trade-off: RSB buys the lowest cut at"
        "\nby far the highest partitioning cost; RCB/SFC are the pragmatic"
        "\nmiddle; BLOCK/CYCLIC/RANDOM show what ignoring structure costs."
    )


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
