"""Semantic analysis: symbol tables and the paper's loop restrictions.

Validates what the paper's compiler assumes (Section 1):

* every array referenced is declared and aligned with a distributed
  decomposition;
* irregular accesses are single-level indirections ``y(ia(i))`` with the
  indirection array indexed directly by the loop index;
* the only loop-carried dependences are REDUCE statements;
* CONSTRUCT/SET/REDISTRIBUTE name declared entities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.ast_nodes import (
    AlignStmt,
    ArrayIndex,
    AssignStmt,
    BinOp,
    Call,
    ConstructStmt,
    DecompositionDecl,
    DistributeStmt,
    DoStmt,
    ForallStmt,
    Num,
    ProgramAST,
    RedistributeStmt,
    ReduceStmt,
    SetStmt,
    TypeDecl,
    UnOp,
    Var,
)

_DIST_FORMATS = {"BLOCK", "CYCLIC"}


class AnalysisError(ValueError):
    """A semantic violation, with source line info."""


@dataclass
class ArrayInfo:
    name: str
    type_name: str
    size_expr: object
    decomp: str | None = None


@dataclass
class ProgramInfo:
    """Symbol tables produced by analysis."""

    arrays: dict[str, ArrayInfo] = field(default_factory=dict)
    decomps: dict[str, object] = field(default_factory=dict)  # name -> size expr
    dynamic_decomps: set[str] = field(default_factory=set)
    distributed: dict[str, str] = field(default_factory=dict)  # decomp -> fmt
    geocols: set[str] = field(default_factory=set)
    distfmts: set[str] = field(default_factory=set)
    foralls: list[ForallStmt] = field(default_factory=list)


def analyze(program: ProgramAST) -> ProgramInfo:
    """Validate a parsed program and build its symbol tables."""
    info = ProgramInfo()
    _walk(program.statements, info)
    return info


def _walk(statements, info: ProgramInfo) -> None:
    for stmt in statements:
        if isinstance(stmt, TypeDecl):
            for name, size in stmt.arrays:
                if name in info.arrays:
                    raise AnalysisError(
                        f"line {stmt.line}: array {name!r} declared twice"
                    )
                info.arrays[name] = ArrayInfo(name, stmt.type_name, size)
        elif isinstance(stmt, DecompositionDecl):
            for name, size in stmt.decomps:
                if name in info.decomps:
                    raise AnalysisError(
                        f"line {stmt.line}: decomposition {name!r} declared twice"
                    )
                info.decomps[name] = size
                if stmt.dynamic:
                    info.dynamic_decomps.add(name)
        elif isinstance(stmt, DistributeStmt):
            for name, fmt in stmt.targets:
                if name not in info.decomps:
                    raise AnalysisError(
                        f"line {stmt.line}: DISTRIBUTE of undeclared "
                        f"decomposition {name!r}"
                    )
                if fmt not in _DIST_FORMATS and fmt not in info.arrays:
                    raise AnalysisError(
                        f"line {stmt.line}: unsupported distribution format "
                        f"{fmt!r} (use BLOCK, CYCLIC, or a declared INTEGER "
                        "map array -- Figure 3's irregular distribution)"
                    )
                if fmt in info.arrays and not info.arrays[fmt].type_name.startswith(
                    "INTEGER"
                ):
                    raise AnalysisError(
                        f"line {stmt.line}: map array {fmt!r} must be INTEGER"
                    )
                info.distributed[name] = fmt
        elif isinstance(stmt, AlignStmt):
            if stmt.decomp not in info.decomps:
                raise AnalysisError(
                    f"line {stmt.line}: ALIGN with undeclared decomposition "
                    f"{stmt.decomp!r}"
                )
            for name in stmt.arrays:
                if name not in info.arrays:
                    raise AnalysisError(
                        f"line {stmt.line}: ALIGN of undeclared array {name!r}"
                    )
                info.arrays[name].decomp = stmt.decomp
        elif isinstance(stmt, ConstructStmt):
            for name in (stmt.geometry or []):
                _require_aligned(info, name, stmt.line, "GEOMETRY")
            if stmt.load:
                _require_aligned(info, stmt.load, stmt.line, "LOAD")
            if stmt.link:
                for name in stmt.link:
                    _require_aligned(info, name, stmt.line, "LINK")
            if stmt.geometry is None and stmt.load is None and stmt.link is None:
                raise AnalysisError(
                    f"line {stmt.line}: CONSTRUCT {stmt.name!r} has no "
                    "GEOMETRY/LOAD/LINK clause"
                )
            info.geocols.add(stmt.name)
        elif isinstance(stmt, SetStmt):
            if stmt.geocol not in info.geocols:
                raise AnalysisError(
                    f"line {stmt.line}: SET partitions unknown GeoCoL "
                    f"{stmt.geocol!r}"
                )
            info.distfmts.add(stmt.target)
        elif isinstance(stmt, RedistributeStmt):
            if stmt.decomp not in info.decomps:
                raise AnalysisError(
                    f"line {stmt.line}: REDISTRIBUTE of undeclared "
                    f"decomposition {stmt.decomp!r}"
                )
            if stmt.fmt not in info.distfmts:
                raise AnalysisError(
                    f"line {stmt.line}: REDISTRIBUTE with unknown "
                    f"distribution format {stmt.fmt!r} (no SET produced it)"
                )
            if stmt.decomp not in info.dynamic_decomps:
                raise AnalysisError(
                    f"line {stmt.line}: decomposition {stmt.decomp!r} is not "
                    "DYNAMIC; it cannot be redistributed"
                )
        elif isinstance(stmt, ForallStmt):
            _check_forall(stmt, info)
            info.foralls.append(stmt)
        elif isinstance(stmt, DoStmt):
            _walk(stmt.body, info)
        else:  # pragma: no cover - parser produces only known nodes
            raise AnalysisError(f"unknown statement {type(stmt).__name__}")


def _require_aligned(info: ProgramInfo, name: str, line: int, clause: str) -> None:
    if name not in info.arrays:
        raise AnalysisError(
            f"line {line}: {clause} references undeclared array {name!r}"
        )
    if info.arrays[name].decomp is None:
        raise AnalysisError(
            f"line {line}: {clause} array {name!r} is not ALIGNed"
        )


def _check_forall(stmt: ForallStmt, info: ProgramInfo) -> None:
    for body_stmt in stmt.body:
        if not isinstance(body_stmt, (AssignStmt, ReduceStmt)):
            raise AnalysisError(
                f"line {stmt.line}: only assignments and REDUCE statements "
                "are allowed inside FORALL"
            )
        _check_array_ref(body_stmt.lhs, stmt.var, info, body_stmt.line)
        _check_expr(body_stmt.expr, stmt.var, info, body_stmt.line)


def _check_array_ref(ref: ArrayIndex, loop_var: str, info, line: int) -> None:
    if ref.name not in info.arrays:
        raise AnalysisError(
            f"line {line}: reference to undeclared array {ref.name!r}"
        )
    if info.arrays[ref.name].decomp is None:
        raise AnalysisError(f"line {line}: array {ref.name!r} is not ALIGNed")
    idx = ref.index
    if isinstance(idx, Var):
        if idx.name != loop_var:
            raise AnalysisError(
                f"line {line}: subscript {idx.name!r} is not the loop index "
                f"{loop_var!r}"
            )
        return
    if isinstance(idx, ArrayIndex):
        # single-level indirection: ia must itself be indexed by the loop var
        if ref.name == idx.name:
            raise AnalysisError(
                f"line {line}: array {ref.name!r} cannot index itself"
            )
        if not isinstance(idx.index, Var) or idx.index.name != loop_var:
            raise AnalysisError(
                f"line {line}: indirection array {idx.name!r} must be indexed "
                f"directly by the loop index (single-level indirection)"
            )
        if idx.name not in info.arrays:
            raise AnalysisError(
                f"line {line}: undeclared indirection array {idx.name!r}"
            )
        if not info.arrays[idx.name].type_name.startswith("INTEGER"):
            raise AnalysisError(
                f"line {line}: indirection array {idx.name!r} must be INTEGER"
            )
        return
    raise AnalysisError(
        f"line {line}: unsupported subscript expression on {ref.name!r}"
    )


def _check_expr(expr, loop_var: str, info, line: int) -> None:
    if isinstance(expr, Num):
        return
    if isinstance(expr, Var):
        if expr.name == loop_var:
            raise AnalysisError(
                f"line {line}: bare loop index {loop_var!r} in expressions is "
                "not supported; reference arrays instead"
            )
        return  # a scalar bound at run time
    if isinstance(expr, ArrayIndex):
        _check_array_ref(expr, loop_var, info, line)
        return
    if isinstance(expr, BinOp):
        _check_expr(expr.left, loop_var, info, line)
        _check_expr(expr.right, loop_var, info, line)
        return
    if isinstance(expr, UnOp):
        _check_expr(expr.operand, loop_var, info, line)
        return
    if isinstance(expr, Call):
        for a in expr.args:
            _check_expr(a, loop_var, info, line)
        return
    raise AnalysisError(f"line {line}: unsupported expression {expr!r}")
