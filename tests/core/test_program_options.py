"""Tests for program-level options: merged communication and the
Section 3 tracking-scope optimization."""

import numpy as np
import pytest

from repro.core import ArrayRef, ForallLoop, IrregularProgram, Reduce
from repro.machine import Machine


def edge_loop(n_edges):
    x1, x2 = ArrayRef("x", "end_pt1"), ArrayRef("x", "end_pt2")
    return ForallLoop(
        "edge_sweep",
        n_edges,
        [
            Reduce("add", ArrayRef("y", "end_pt1"), lambda a, b: a * b, (x1, x2), flops=2),
            Reduce("add", ArrayRef("y", "end_pt2"), lambda a, b: a - b, (x1, x2), flops=2),
        ],
    )


def build(m, n_nodes=24, n_edges=40, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    e1 = rng.integers(0, n_nodes, n_edges)
    e2 = (e1 + 1 + rng.integers(0, n_nodes - 1, n_edges)) % n_nodes
    prog = IrregularProgram(m, **kwargs)
    prog.decomposition("reg", n_nodes)
    prog.decomposition("reg2", n_edges)
    prog.distribute("reg", "block")
    prog.distribute("reg2", "block")
    prog.array("x", "reg", values=rng.normal(size=n_nodes))
    prog.array("y", "reg", values=np.zeros(n_nodes))
    prog.array("end_pt1", "reg2", values=e1, dtype=np.int64)
    prog.array("end_pt2", "reg2", values=e2, dtype=np.int64)
    return prog


class TestMergeCommunication:
    def test_results_identical(self):
        outs = {}
        for merge in (False, True):
            m = Machine(4)
            prog = build(m, merge_communication=merge)
            prog.forall(edge_loop(40), n_times=5)
            outs[merge] = prog.arrays["y"].to_global()
        assert np.allclose(outs[False], outs[True])

    def test_merging_reduces_time_and_messages(self):
        stats = {}
        for merge in (False, True):
            m = Machine(8)
            # coalescing off: with one schedule per array there is
            # nothing left for message merging to combine
            prog = build(
                m,
                n_nodes=200,
                n_edges=800,
                merge_communication=merge,
                coalesce_patterns=False,
            )
            m.reset()
            prog.forall(edge_loop(800), n_times=10)
            stats[merge] = (
                m.elapsed(),
                sum(p.stats.messages_sent for p in m.procs),
            )
        assert stats[True][1] < stats[False][1]
        assert stats[True][0] < stats[False][0]


class TestTrackingScope:
    def test_invalid_scope_rejected(self):
        with pytest.raises(ValueError, match="tracking scope"):
            IrregularProgram(Machine(2), tracking_scope="everything")

    def test_data_writes_not_stamped_under_narrow_scope(self):
        m = Machine(4)
        prog = build(m, tracking_scope="indirection")
        prog.forall(edge_loop(40), n_times=1)
        # y writes happen every sweep; under the narrow scope they are
        # never stamped (y's DAD differs from the indirection DADs)
        from repro.core import DAD

        assert prog.registry.last_mod(DAD.of(prog.arrays["y"])) == 0
        prog.forall(edge_loop(40), n_times=3)
        assert prog.inspector_runs == 1  # reuse unharmed

    def test_indirection_writes_still_invalidate(self):
        """Safety: the narrowed scope must still catch indirection-array
        writes (registered at first inspection)."""
        m = Machine(4)
        prog = build(m, tracking_scope="indirection")
        prog.forall(edge_loop(40), n_times=1)
        rng = np.random.default_rng(1)
        prog.set_array("end_pt1", rng.integers(0, 24, 40))
        prog.forall(edge_loop(40), n_times=1)
        assert prog.inspector_runs == 2

    def test_same_dad_interference_still_conservative(self):
        """An unrelated array sharing the indirection DAD still forces
        re-inspection under the narrow scope (DAD-level tracking)."""
        m = Machine(4)
        prog = build(m, tracking_scope="indirection")
        prog.array("scratch", "reg2", values=np.zeros(40))
        prog.forall(edge_loop(40), n_times=1)
        prog.set_array("scratch", np.ones(40))
        prog.forall(edge_loop(40), n_times=1)
        assert prog.inspector_runs == 2

    def test_results_identical_across_scopes(self):
        outs = {}
        for scope in ("all", "indirection"):
            m = Machine(4)
            prog = build(m, tracking_scope=scope)
            prog.forall(edge_loop(40), n_times=4)
            prog.set_array("end_pt2", np.zeros(40, dtype=np.int64))
            prog.forall(edge_loop(40), n_times=2)
            outs[scope] = prog.arrays["y"].to_global()
        assert np.allclose(outs["all"], outs["indirection"])

    def test_narrow_scope_cheaper_with_many_data_writes(self):
        times = {}
        for scope in ("all", "indirection"):
            m = Machine(4)
            prog = build(m, tracking_scope=scope)
            prog.forall(edge_loop(40), n_times=1)
            m.reset()
            for s in range(30):
                prog.set_array("y", np.full(24, float(s)))
                prog.forall(edge_loop(40), n_times=1)
            times[scope] = m.elapsed()
        assert times["indirection"] <= times["all"]
