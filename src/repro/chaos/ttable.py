"""Translation tables: global index -> (owner, local offset) with costs.

For regular distributions the translation is closed-form arithmetic.  For
irregular distributions PARTI/CHAOS kept an explicit table, either

* **replicated** -- every processor stores the full owner/offset map.
  Dereference is a local lookup; building it costs an all-gather of the
  locally-known fragments (and O(N) memory per processor), or
* **distributed (paged)** -- the table itself is block-distributed; a
  dereference for an arbitrary global index requires a request message to
  the page's owner and a reply.  This is CHAOS's scalable default and the
  variant whose communication shows up in the paper's inspector times.

All variants return identical translations; they differ only in what
they charge the machine.  That split is the :class:`Translator`
protocol: the base class owns the *translation* (one validated
``Distribution.translate`` pass) and the single flat/batched/per-
processor dereference skeleton, while each table kind supplies only its
two charging hooks (``_charge_one`` for one requesting processor,
``_charge_flat`` for the loosely synchronous batched phase).
``dereference`` operates on one requesting processor's reference list at
a time; ``dereference_all``/``dereference_flat`` batch the request/reply
exchanges of all processors into two machine phases, the way CHAOS's
loosely synchronous dereference actually behaved.

Charging hooks take an explicit **sink** -- normally the machine itself,
but the persistent :class:`~repro.chaos.transcache.TranslationCache`
passes a recording :class:`~repro.chaos.transcache.ChargeLog` so a cold
localize can replay its exact charge sequence on later warm hits.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.chaos.costs import ChaosCosts, DEFAULT_COSTS
from repro.chaos.flatrefs import FlatRefs
from repro.distribution.base import Distribution
from repro.distribution.regular import BlockDistribution
from repro.machine.collectives import allgather_cost
from repro.machine.machine import Machine


class Translator(ABC):
    """Maps global indices of one distribution to (owner, local offset).

    Concrete tables implement the two charging hooks; translation and
    the dereference entry points are shared.  ``sink`` is the charge
    target for the flat path (defaults to the table's machine).
    """

    def __init__(self, machine: Machine, dist: Distribution, costs: ChaosCosts = DEFAULT_COSTS):
        if dist.n_procs != machine.n_procs:
            raise ValueError(
                f"distribution spans {dist.n_procs} processors, machine has "
                f"{machine.n_procs}"
            )
        self.machine = machine
        self.dist = dist
        self.costs = costs

    # -- charging hooks (the only per-kind code) ---------------------------
    @abstractmethod
    def _charge_one(self, sink, p: int, g: np.ndarray) -> None:
        """Charge one requesting processor's dereference of ``g``."""

    @abstractmethod
    def _charge_flat(self, sink, values: np.ndarray, bounds: np.ndarray) -> None:
        """Charge the batched dereference of flat CSR ``(values, bounds)``.

        Must be bit-identical to per-processor :meth:`_charge_one` calls
        over the equivalent lists combined into whole-machine phases.
        """

    # -- shared dereference skeleton ---------------------------------------
    def dereference(self, p: int, gidx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Translate processor ``p``'s reference list; charges ``p`` (and,
        for the distributed table, the page owners)."""
        g = np.asarray(gidx, dtype=np.int64)
        owners, lidx = self._translate(g)
        self._charge_one(self.machine, p, g)
        return owners, lidx

    def dereference_all(
        self, ref_lists: list[np.ndarray]
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Translate every processor's list in one loosely synchronous phase."""
        return [self.dereference(p, refs) for p, refs in enumerate(ref_lists)]

    def dereference_flat(
        self, values: np.ndarray, bounds: np.ndarray, sink=None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Flat-form batched dereference: one translation for all processors.

        ``values`` holds every processor's reference list concatenated;
        ``bounds`` is the ``(P + 1,)`` CSR bound array (processor ``p``'s
        refs are ``values[bounds[p]:bounds[p+1]]``).  Returns flat
        ``(owners, local_offsets)`` aligned with ``values``.  Charges are
        bit-identical to :meth:`dereference_all` on the equivalent lists
        and go to ``sink`` (the machine, or a recording charge log).
        """
        owners, lidx = self._translate(values)
        self._charge_flat(self.machine if sink is None else sink, values, bounds)
        return owners, lidx

    def _translate(self, gidx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        g = np.asarray(gidx, dtype=np.int64)
        owners, lidx = self.dist.translate(g)
        return (
            np.asarray(owners, dtype=np.int64),
            np.asarray(lidx, dtype=np.int64),
        )


#: historical name, kept for callers/tests that type against it
TranslationTable = Translator


class RegularTranslationTable(Translator):
    """Closed-form translation for block/cyclic/block-cyclic distributions."""

    _per_ref_cost_field = "translate_regular"

    def _charge_one(self, sink, p: int, g: np.ndarray) -> None:
        sink.charge_compute(
            p, iops=getattr(self.costs, self._per_ref_cost_field) * g.size
        )

    def _charge_flat(self, sink, values: np.ndarray, bounds: np.ndarray) -> None:
        sink.charge_compute_all(
            iops=getattr(self.costs, self._per_ref_cost_field)
            * np.diff(bounds).astype(np.float64)
        )


class ReplicatedTranslationTable(RegularTranslationTable):
    """Full owner/offset map on every processor.

    Construction models the all-gather of locally known fragments
    (every processor initially knows only the elements it received);
    dereference charges the replicated-lookup cost per reference but is
    otherwise the regular table's local closed-form shape.
    """

    _per_ref_cost_field = "translate_replicated"

    def __init__(self, machine: Machine, dist: Distribution, costs: ChaosCosts = DEFAULT_COSTS):
        super().__init__(machine, dist, costs)
        # model: allgather of (owner, offset) pairs for local fragments
        frag = -(-dist.size // machine.n_procs)
        allgather_cost(machine, frag * 2 * 4)  # two 32-bit words per element
        machine.charge_compute_all(iops=float(dist.size) * 1.0)  # table fill


class DistributedTranslationTable(Translator):
    """Paged table: pages block-distributed over processors.

    Dereferencing a reference list costs, per distinct page owner:
    a request message carrying the indices, a probe at the owner, and a
    reply message carrying (owner, offset) pairs.
    """

    def __init__(self, machine: Machine, dist: Distribution, costs: ChaosCosts = DEFAULT_COSTS):
        super().__init__(machine, dist, costs)
        self.pages = BlockDistribution(dist.size, machine.n_procs)
        # construction: each element's (owner, offset) entry is sent to its
        # page owner -- one all-to-all of table fragments
        n = machine.n_procs
        counts = np.zeros((n, n), dtype=np.int64)
        if dist.size:
            page_owner = np.asarray(self.pages.owner(np.arange(dist.size)))
            data_owner = np.asarray(dist.owner(np.arange(dist.size)))
            np.add.at(counts, (data_owner, page_owner), 1)
        off_diag = counts.copy()
        np.fill_diagonal(off_diag, 0)
        src, dst = np.nonzero(off_diag)
        machine.exchange(
            src=src, dst=dst, nbytes=off_diag[src, dst] * 2 * self.costs.index_bytes
        )
        fill = counts.sum(axis=0).astype(float)
        machine.charge_compute_all(iops=2.0 * fill)
        machine.barrier()

    def _page_owner(self, g: np.ndarray) -> np.ndarray:
        """Page owner of already-validated global indices.

        ``g`` went through ``Distribution.translate`` (one range check)
        before any charging hook runs, so the page table's own
        validation pass -- a second min/max scan over the whole stream
        -- is skipped in favor of the block table's closed-form
        division.
        """
        chunk = self.pages.chunk
        return g // chunk if chunk else g

    def _charge_one(self, sink, p: int, g: np.ndarray) -> None:
        if not g.size:
            return
        counts = np.bincount(self._page_owner(g), minlength=self.machine.n_procs)
        if counts[p]:
            # pages this processor itself owns: local table lookups
            sink.charge_compute(
                p, iops=self.costs.translate_replicated * int(counts[p])
            )
            counts[p] = 0
        uq = np.flatnonzero(counts)
        if uq.size:
            # request exchange (indices), probes at the owners, reply
            # exchange (pairs) -- the batched kernel's three steps,
            # restricted to one requester, with no per-owner loop
            cnt = counts[uq]
            req_p = np.full(uq.size, p, dtype=np.int64)
            sink.exchange(src=req_p, dst=uq, nbytes=cnt * self.costs.index_bytes)
            probe = np.zeros(self.machine.n_procs)
            probe[uq] = self.costs.translate_remote * cnt
            sink.charge_compute_all(iops=probe)
            sink.exchange(
                src=uq, dst=req_p, nbytes=cnt * 2 * self.costs.index_bytes
            )

    def _charge_flat(self, sink, values: np.ndarray, bounds: np.ndarray) -> None:
        """Batched paged-table charging: one page-owner bincount plus the
        request/probe/reply exchange phases, all count arithmetic -- no
        Python loop over processors and no re-validation scans."""
        n = self.machine.n_procs
        req_counts = np.zeros((n, n), dtype=np.int64)
        if values.size:
            page_owner = self._page_owner(np.asarray(values, dtype=np.int64))
            pid = np.repeat(
                np.arange(n, dtype=np.int64), np.diff(bounds).astype(np.int64)
            )
            req_counts = np.bincount(
                pid * n + page_owner, minlength=n * n
            ).reshape(n, n)
        # request exchange (indices), probe at owners, reply exchange (pairs)
        off_diag = req_counts.copy()
        np.fill_diagonal(off_diag, 0)
        req_p, req_q = np.nonzero(off_diag)
        pair_counts = off_diag[req_p, req_q]
        sink.exchange(
            src=req_p, dst=req_q, nbytes=pair_counts * self.costs.index_bytes
        )
        probe = req_counts.sum(axis=0).astype(float)
        sink.charge_compute_all(iops=self.costs.translate_remote * probe)
        sink.exchange(
            src=req_q, dst=req_p, nbytes=pair_counts * 2 * self.costs.index_bytes
        )
        sink.barrier()

    def dereference_all(
        self, ref_lists: list[np.ndarray]
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Batched dereference: one request exchange, probes, one reply.

        Loosely synchronous version used by inspectors: all processors'
        requests travel in a single exchange phase, so wall time is the
        max per-processor cost, not the sum.  Delegates to the flat
        kernel; charges are identical.
        """
        n = self.machine.n_procs
        if len(ref_lists) != n:
            raise ValueError(f"expected {n} reference lists, got {len(ref_lists)}")
        refs = FlatRefs.from_lists(ref_lists)
        owners, lidx = self.dereference_flat(refs.values, refs.bounds)
        bounds = refs.bounds
        return [
            (owners[bounds[p] : bounds[p + 1]], lidx[bounds[p] : bounds[p + 1]])
            for p in range(n)
        ]


def build_translation_table(
    machine: Machine,
    dist: Distribution,
    costs: ChaosCosts = DEFAULT_COSTS,
    variant: str = "auto",
) -> Translator:
    """Build the right translation table for a distribution.

    ``variant``: "auto" (regular -> closed form, irregular -> distributed),
    "regular", "replicated", or "distributed".
    """
    if variant == "auto":
        variant = (
            "regular" if dist.kind not in ("irregular", "explicit") else "distributed"
        )
    if variant == "regular":
        if dist.kind in ("irregular", "explicit"):
            raise ValueError("closed-form translation needs a regular distribution")
        return RegularTranslationTable(machine, dist, costs)
    if variant == "replicated":
        return ReplicatedTranslationTable(machine, dist, costs)
    if variant == "distributed":
        return DistributedTranslationTable(machine, dist, costs)
    raise ValueError(
        f"unknown translation table variant {variant!r}; "
        "choose auto | regular | replicated | distributed"
    )
