"""repro.serve -- fault-tolerant simulation-as-a-service.

The north star's service layer: an async job API over the CHAOS
runtime reproduction.  :class:`~repro.serve.service.SimulationService`
runs :class:`~repro.serve.config.JobConfig` simulations in supervised
worker subprocesses -- crashes and hangs are detected (pipe EOF,
heartbeats, deadlines), the worker is restarted, and the job retried
with exponential backoff; long jobs checkpoint through
``repro.guard.checkpoint`` so a retry *resumes* from the last good
checkpoint instead of starting over.  Finished results land in a
content-addressed, CRC-guarded :class:`~repro.serve.cache.ResultCache`,
so resubmitting a config costs a file read and corrupt entries are
quarantined and recomputed.  Everything the service does is visible as
structured lifecycle events (``queued``/``running``/``retrying``/
``resumed``/``degraded``/``done``/``failed``) on the job and through
``service.health()``.

The deterministic chaos harness (:mod:`repro.serve.chaos`, also
``python -m repro.serve chaos``) kills workers mid-job, corrupts cache
and checkpoint files, and injects :class:`~repro.guard.faults.FaultPlan`
wire faults -- and asserts every job still completes with results bit
for bit identical to a fault-free run.
"""

from repro.serve.cache import ResultCache
from repro.serve.client import ServeClient
from repro.serve.config import JobConfig, config_key
from repro.serve.errors import (
    JobFailed,
    QueueSaturated,
    RetryBudgetExhausted,
    ServeError,
)
from repro.serve.jobs import run_job
from repro.serve.service import Job, SimulationService

__all__ = [
    "JobConfig",
    "config_key",
    "ResultCache",
    "run_job",
    "Job",
    "SimulationService",
    "ServeClient",
    "ServeError",
    "QueueSaturated",
    "RetryBudgetExhausted",
    "JobFailed",
]
