"""Tests for array remapping between distributions."""

import numpy as np
import pytest

from repro.chaos.remap import build_remap_schedule, remap_array, remap_arrays
from repro.distribution import (
    BlockDistribution,
    CyclicDistribution,
    DistArray,
    IrregularDistribution,
)
from repro.machine import Machine


@pytest.fixture
def m4():
    return Machine(4)


class TestRemapArray:
    def test_block_to_cyclic_preserves_content(self, m4):
        vals = np.arange(10.0)
        arr = DistArray.from_global(m4, BlockDistribution(10, 4), vals)
        remap_array(arr, CyclicDistribution(10, 4))
        assert arr.distribution.kind == "cyclic"
        assert np.array_equal(arr.to_global(), vals)

    def test_block_to_irregular(self, m4):
        rng = np.random.default_rng(0)
        vals = rng.normal(size=20)
        arr = DistArray.from_global(m4, BlockDistribution(20, 4), vals)
        new = IrregularDistribution(rng.integers(0, 4, size=20), 4)
        remap_array(arr, new)
        assert np.allclose(arr.to_global(), vals)
        assert arr.local(2).size == new.local_size(2)

    def test_identity_remap_moves_nothing_off_proc(self, m4):
        arr = DistArray.from_global(m4, BlockDistribution(10, 4), np.arange(10.0))
        sched = build_remap_schedule(m4, arr.distribution, BlockDistribution(10, 4))
        assert sched.element_count() == 0

    def test_remap_charges_machine(self, m4):
        arr = DistArray.from_global(m4, BlockDistribution(10, 4), np.arange(10.0))
        remap_array(arr, CyclicDistribution(10, 4))
        assert m4.elapsed() > 0
        assert sum(s.stats.messages_sent for s in m4.procs) > 0

    def test_size_mismatch_rejected(self, m4):
        with pytest.raises(ValueError, match="sizes 10 and 8"):
            build_remap_schedule(m4, BlockDistribution(10, 4), BlockDistribution(8, 4))

    def test_stale_schedule_rejected(self, m4):
        arr = DistArray.from_global(m4, BlockDistribution(10, 4), np.arange(10.0))
        sched = build_remap_schedule(m4, CyclicDistribution(10, 4), BlockDistribution(10, 4))
        with pytest.raises(ValueError, match="stale"):
            sched.apply(arr)


class TestRemapArrays:
    def test_shared_schedule_applies_to_all(self, m4):
        dist = BlockDistribution(12, 4)
        a = DistArray.from_global(m4, dist, np.arange(12.0), name="x")
        b = DistArray.from_global(m4, dist, np.arange(12.0) * 2, name="y")
        new = IrregularDistribution([3] * 6 + [0] * 6, 4)
        remap_arrays([a, b], new)
        assert np.array_equal(a.to_global(), np.arange(12.0))
        assert np.array_equal(b.to_global(), np.arange(12.0) * 2)
        assert a.distribution is new and b.distribution is new

    def test_mixed_distributions_rejected(self, m4):
        a = DistArray.from_global(m4, BlockDistribution(12, 4), np.arange(12.0))
        b = DistArray.from_global(m4, CyclicDistribution(12, 4), np.arange(12.0))
        with pytest.raises(ValueError, match="different"):
            remap_arrays([a, b], BlockDistribution(12, 4))

    def test_empty_list_rejected(self, m4):
        with pytest.raises(ValueError, match="no arrays"):
            remap_arrays([], BlockDistribution(4, 4))

    def test_int_dtype_preserved(self, m4):
        arr = DistArray.from_global(
            m4, BlockDistribution(8, 4), np.arange(8, dtype=np.int64)
        )
        remap_array(arr, CyclicDistribution(8, 4))
        assert arr.dtype == np.int64
        assert np.array_equal(arr.to_global(), np.arange(8))
