"""Ablation: cost of the reuse check's conservatism (DESIGN.md item 2).

The paper's check tracks *possible* modification per DAD, so writing any
array that merely shares an indirection array's descriptor forces a
re-inspection even when the indirection values are untouched.  An exact
(content-hash) tracker would reuse in that scenario.

This bench constructs the adversarial case -- a scratch array aligned
with the edge decomposition is rewritten between sweeps -- and reports
how much simulated time conservatism wastes versus a value-exact oracle,
plus the baseline case (no interfering writes) where the conservative
check is optimal.
"""

import numpy as np
from conftest import run_once

from repro.bench import render_table
from repro.core import IrregularProgram
from repro.machine import Machine
from repro.workloads import generate_mesh, scale_config
from repro.workloads.euler import euler_edge_loop, setup_euler_program


def run_conservative(mesh, sweeps):
    """Scratch writes between sweeps; paper's conservative check."""
    m = Machine(8)
    prog = setup_euler_program(m, mesh, seed=0)
    prog.array("scratch", "reg2", values=np.zeros(mesh.n_edges))
    loop = euler_edge_loop(mesh)
    for s in range(sweeps):
        prog.set_array("scratch", np.full(mesh.n_edges, float(s)))
        prog.forall(loop, n_times=1)
    return m.elapsed(), prog.inspector_runs


def run_exact_oracle(mesh, sweeps):
    """Same trace under a value-exact tracker.

    Exact tracking knows the scratch writes leave the indirection
    *values* untouched, so no conservative stamp is recorded for them --
    modeled by writing scratch directly (with the same memory charge)
    instead of through the tracked ``set_array``.  What exactness costs
    is a per-sweep content hash of every indirection array, charged
    explicitly below; that is the trade-off the paper avoids.
    """
    m = Machine(8)
    prog = setup_euler_program(m, mesh, seed=0)
    prog.array("scratch", "reg2", values=np.zeros(mesh.n_edges))
    loop = euler_edge_loop(mesh)
    scratch = prog.arrays["scratch"]
    n_ind_local = [
        float(
            prog.arrays["end_pt1"].distribution.local_size(p)
            + prog.arrays["end_pt2"].distribution.local_size(p)
        )
        for p in range(m.n_procs)
    ]
    for s in range(sweeps):
        # untracked scratch write (same data movement cost as set_array)
        vals = np.full(mesh.n_edges, float(s))
        for p in range(m.n_procs):
            scratch.local(p)[:] = vals[scratch.distribution.local_indices(p)]
        m.charge_compute_all(
            mem=[float(scratch.distribution.local_size(p)) for p in range(m.n_procs)]
        )
        # exact tracking: hash every indirection array's local values
        m.charge_compute_all(iops=[2.0 * n for n in n_ind_local])
        prog.forall(loop, n_times=1)
    return m.elapsed(), prog.inspector_runs


def test_reuse_precision(benchmark, report):
    scale = scale_config()
    mesh = generate_mesh(scale.mesh_small, seed=1)
    sweeps = 20

    def run():
        return run_conservative(mesh, sweeps), run_exact_oracle(mesh, sweeps)

    (t_cons, n_cons), (t_exact, n_exact) = run_once(benchmark, run)
    rows = [
        {"tracker": "conservative (paper)", "inspections": n_cons, "sim_seconds": t_cons},
        {"tracker": "value-exact oracle", "inspections": n_exact, "sim_seconds": t_exact},
        {
            "tracker": "conservatism overhead",
            "inspections": n_cons - n_exact,
            "sim_seconds": t_cons - t_exact,
        },
    ]
    report(
        "ablation_reuse_precision",
        render_table(
            f"Reuse-precision ablation: {sweeps} sweeps with interfering "
            "same-DAD writes",
            rows,
            [("tracker", "Tracker"), ("inspections", "Inspections"), ("sim_seconds", "SimSeconds")],
        ),
    )
    # the adversarial trace forces a re-inspection per sweep...
    assert n_cons == sweeps
    # ...which the exact oracle avoids entirely after the first
    assert n_exact == 1
    assert t_cons > t_exact
