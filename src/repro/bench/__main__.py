"""Command-line entry point for the benchmark harness.

    python -m repro.bench table1 [--scale small|medium|paper]
    python -m repro.bench table2 [--procs 32]
    python -m repro.bench table3
    python -m repro.bench table4
    python -m repro.bench fig2
    python -m repro.bench all

Prints the paper-style tables (simulated iPSC/860 seconds) to stdout.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.tables import (
    fig2_phase_breakdown,
    table1_schedule_reuse,
    table2_mapper_coupler,
    table3_rcb_detail,
    table4_block,
)

_TARGETS = {
    "table1": lambda args: table1_schedule_reuse(args.scale),
    "table2": lambda args: table2_mapper_coupler(args.scale, n_procs=args.procs),
    "table3": lambda args: table3_rcb_detail(args.scale),
    "table4": lambda args: table4_block(args.scale),
    "fig2": lambda args: fig2_phase_breakdown(args.scale, n_procs=args.procs),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables on the simulated machine.",
    )
    parser.add_argument(
        "target",
        choices=sorted(_TARGETS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        default=None,
        choices=["small", "medium", "paper"],
        help="problem scale (default: $REPRO_SCALE or 'small')",
    )
    parser.add_argument(
        "--procs",
        type=int,
        default=32,
        help="processor count for table2/fig2 (default 32)",
    )
    args = parser.parse_args(argv)
    targets = sorted(_TARGETS) if args.target == "all" else [args.target]
    for name in targets:
        _, text = _TARGETS[name](args)
        print(text)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
