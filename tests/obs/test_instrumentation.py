"""End-to-end instrumentation contracts on real program runs.

The load-bearing one is the bit-identity oracle: turning tracing on
must not move a single simulated number -- not the clock, not one
element of any per-processor counter array.
"""

import numpy as np
import pytest

from repro.machine import Machine
from repro.obs import NULL_TRACER, MetricsSnapshot, load_trace
from repro.workloads import generate_mesh
from repro.workloads.euler import euler_edge_loop, setup_euler_program

N_PROCS = 4


def build(obs=None, n_nodes=300, incremental=True):
    mesh = generate_mesh(n_nodes, seed=4)
    machine = Machine(N_PROCS)
    prog = setup_euler_program(
        machine, mesh, seed=11, incremental=incremental, obs=obs
    )
    prog.construct("G", mesh.n_nodes, geometry=["xc", "yc", "zc"])
    prog.set_distribution("fmt", "G", "RCB")
    prog.redistribute("reg", "fmt")
    return mesh, prog, euler_edge_loop(mesh)


def mutate(prog, mesh, n_changed):
    pick = np.arange(n_changed, dtype=np.int64)
    old = np.asarray(prog.arrays["end_pt2"].global_view(), dtype=np.int64)[pick]
    prog.set_array_elements("end_pt2", pick, (old + 1) % mesh.n_nodes)


def drive(prog, mesh, loop):
    """A run exercising reuse, an adapt patch, and a fallback."""
    prog.forall(loop, n_times=2)
    mutate(prog, mesh, 4)  # small delta: incremental patch
    prog.forall(loop, n_times=1)
    mutate(prog, mesh, mesh.n_edges)  # everything: over-threshold fallback
    prog.forall(loop, n_times=1)


class TestBitIdentity:
    def test_obs_on_never_changes_simulated_numbers(self):
        machines = {}
        for mode in ("off", "on"):
            mesh, prog, loop = build(obs=mode)
            drive(prog, mesh, loop)
            machines[mode] = prog.machine
        off, on = machines["off"], machines["on"]
        assert on.elapsed() == off.elapsed()  # exact, not approx
        from repro.machine.stats import COUNTER_FIELDS

        for field in COUNTER_FIELDS:
            a = np.asarray(getattr(off.counters, field))
            b = np.asarray(getattr(on.counters, field))
            assert np.array_equal(a, b), field  # every element, bit-exact
        ph_off = {r.name for r in off.stats.phases}
        assert ph_off == {r.name for r in on.stats.phases}
        for name in ph_off:
            assert off.phase_time(name) == on.phase_time(name), name
        # and the obs=on run actually traced something
        assert on.obs.enabled and len(on.obs.spans) > 0
        assert off.obs is NULL_TRACER

    def test_obs_param_validation(self):
        mesh = generate_mesh(100, seed=0)
        with pytest.raises(ValueError, match="obs mode"):
            setup_euler_program(Machine(2), mesh, obs="loud")

    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "on")
        mesh = generate_mesh(100, seed=0)
        prog = setup_euler_program(Machine(2), mesh)
        assert prog.machine.obs.enabled


class TestAdaptSpans:
    def test_patch_attempt_nesting_and_attrs(self):
        mesh, prog, loop = build(obs="on")
        prog.forall(loop, n_times=1)
        prog.machine.obs.clear()
        mutate(prog, mesh, 4)
        prog.forall(loop, n_times=1)
        spans = prog.machine.obs.spans
        by_name = {}
        for s in spans:
            by_name.setdefault(s.name, []).append(s)
        for required in ("adapt.diff", "adapt.patch", "adapt.verify", "inspect"):
            assert required in by_name, sorted(by_name)
        (diff,) = by_name["adapt.diff"]
        (patch,) = by_name["adapt.patch"]
        (inspect,) = by_name["inspect"]
        # diff attrs carry the routing decision inputs
        assert diff.attrs["n_changed"] > 0
        assert diff.attrs["n_tracked"] == 2 * mesh.n_edges
        assert patch.attrs["n_changed"] == diff.attrs["n_changed"]
        # the whole attempt nests under the inspect root
        assert inspect.parent is None
        for s in (diff, patch):
            assert _ancestors(s, spans) & {inspect.id}

    def test_fallback_records_state_rebuild_span(self):
        mesh, prog, loop = build(obs="on")
        prog.forall(loop, n_times=1)
        prog.machine.obs.clear()
        mutate(prog, mesh, mesh.n_edges)
        prog.forall(loop, n_times=1)
        names = [s.name for s in prog.machine.obs.spans]
        assert "adapt.state.build_adapt_state" in names
        assert "inspector.run" in names  # fell back to a full inspection
        # the structured fallback event rode the bus, and the legacy
        # view over it still reads like the old list
        (rec,) = prog.adapt.fallback_log
        assert rec["reason"] == "over_threshold"
        (bus_rec,) = prog.events.category("adapt.fallback")
        assert bus_rec.name == "over_threshold"
        assert bus_rec.payload is rec


def _ancestors(span, spans):
    by_id = {s.id: s for s in spans}
    out, cur = set(), span.parent
    while cur is not None and cur in by_id:
        out.add(cur)
        cur = by_id[cur].parent
    return out


class TestSnapshotAndExport:
    def test_metrics_snapshot_unifies_host_and_simulated(self):
        mesh, prog, loop = build(obs="on")
        drive(prog, mesh, loop)
        snap = prog.obs_snapshot()
        assert isinstance(snap, MetricsSnapshot)
        d = snap.to_dict()
        assert d["simulated_total"] == prog.machine.elapsed()
        assert d["simulated_counters"]["messages"] > 0
        assert "inspect" in d["host_spans"] and "execute" in d["host_spans"]
        assert d["host_spans"]["inspect"]["count"] >= 3
        assert snap.host_total() > 0
        assert d["event_counts"].get("adapt.fallback") == 1
        assert d["cache"] is None or "hits" in d["cache"]

    def test_program_export_round_trip(self, tmp_path):
        mesh, prog, loop = build(obs="on")
        drive(prog, mesh, loop)
        path = prog.export_obs(str(tmp_path / "run.jsonl"))
        trace = load_trace(path)
        assert trace["meta"]["n_procs"] == N_PROCS
        assert trace["meta"]["obs"] == "on"
        names = {s["name"] for s in trace["spans"]}
        assert {"inspect", "execute", "adapt.patch"} <= names
        # bus events (the fallback) are interleaved into the artifact
        assert any(
            e.get("category") == "adapt.fallback" for e in trace["events"]
        )


class TestCacheStats:
    def test_invalidation_counting(self):
        from repro.chaos.transcache import TranslationCache

        cache = TranslationCache()
        slot = ("localize", "L2", ("edge",), "paged", "c", 4)
        assert cache.get(slot, ("v1",)) is None  # miss
        cache.put(slot, ("v1",), "entry1")
        assert cache.get(slot, ("v1",)) == "entry1"  # hit
        cache.put(slot, ("v2",), "entry2")  # replace = invalidation
        cache.put(slot, ("v2",), "entry2b")  # same version: not counted
        stats = cache.stats()
        assert stats == {
            "hits": 1,
            "misses": 1,
            "invalidations": 1,
            "entries": 1,
            "by_kind": {
                "localize": {
                    "hits": 1,
                    "misses": 1,
                    "invalidations": 1,
                    "entries": 1,
                }
            },
        }

    def test_real_run_reports_kind_breakdown(self):
        mesh, prog, loop = build(obs="on")
        drive(prog, mesh, loop)
        stats = prog.translation_cache.stats()
        assert stats["hits"] > 0
        assert set(stats["by_kind"]) <= {"localize", "partition"}
        total = sum(k["hits"] for k in stats["by_kind"].values())
        assert total == stats["hits"]
