"""Optional message tracing for the simulated machine.

``MessageTrace`` hooks a machine's ``send``/``exchange`` and records
every point-to-point message; tests use it to assert on communication
*patterns* (who talks to whom, symmetry of request/reply protocols) and
the benches can render a processor-pair traffic matrix.

Messages are recorded as array chunks (one ``(src, dst, nbytes)`` array
triple per traced call), mirroring the machine's struct-of-arrays
counter block: an ``exchange`` of 100k message pairs costs one masked
array append, not 100k Python-object appends.  The ``events`` list of
:class:`MessageEvent` objects is materialized lazily for callers that
want per-message records.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.machine import Machine


@dataclass(frozen=True)
class MessageEvent:
    src: int
    dst: int
    nbytes: int


class MessageTrace:
    """Records every message on a machine while attached.

    Usage::

        with MessageTrace(machine) as trace:
            ... run runtime operations ...
        matrix = trace.traffic_matrix()
    """

    def __init__(self, machine: Machine):
        self.machine = machine
        #: list of (src, dst, nbytes) int64 array triples, one per traced
        #: call, already filtered to real messages (src != dst, nbytes > 0)
        self._chunks: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._events_cache: list[MessageEvent] | None = []
        self._orig_send = None
        self._orig_exchange = None

    def _record(self, src: np.ndarray, dst: np.ndarray, nbytes: np.ndarray) -> None:
        live = (src != dst) & (nbytes > 0)
        if not live.all():
            src, dst, nbytes = src[live], dst[live], nbytes[live]
        else:
            # defensive copies: callers may reuse their buffers
            src, dst, nbytes = src.copy(), dst.copy(), nbytes.copy()
        if src.size:
            self._chunks.append((src, dst, nbytes))
            self._events_cache = None

    # -- context management -------------------------------------------------
    def __enter__(self) -> "MessageTrace":
        if self._orig_send is not None:
            raise RuntimeError("trace already attached")
        self._orig_send = self.machine.send
        self._orig_exchange = self.machine.exchange

        def send(src, dst, nbytes):
            result = self._orig_send(src, dst, nbytes)
            self._record(
                np.array([src], dtype=np.int64),
                np.array([dst], dtype=np.int64),
                np.array([nbytes], dtype=np.int64),
            )
            return result

        def exchange(bytes_matrix=None, *, src=None, dst=None, nbytes=None):
            array_args = (src, dst, nbytes)
            if bytes_matrix is not None and all(a is None for a in array_args):
                count = len(bytes_matrix)
                s = np.empty(count, dtype=np.int64)
                d = np.empty(count, dtype=np.int64)
                nb = np.empty(count, dtype=np.int64)
                for i, ((a, b), v) in enumerate(bytes_matrix.items()):
                    s[i], d[i], nb[i] = a, b, v
                self._record(s, d, nb)
                return self._orig_exchange(bytes_matrix)
            if bytes_matrix is None and all(a is not None for a in array_args):
                self._record(
                    np.asarray(src, dtype=np.int64),
                    np.asarray(dst, dtype=np.int64),
                    np.asarray(nbytes, dtype=np.int64),
                )
                return self._orig_exchange(src=src, dst=dst, nbytes=nbytes)
            # invalid combination: record nothing, let the machine raise
            return self._orig_exchange(bytes_matrix, src=src, dst=dst, nbytes=nbytes)

        self.machine.send = send
        self.machine.exchange = exchange
        return self

    def __exit__(self, *exc) -> None:
        self.machine.send = self._orig_send
        self.machine.exchange = self._orig_exchange
        self._orig_send = None
        self._orig_exchange = None

    # -- queries ------------------------------------------------------------
    @property
    def events(self) -> list[MessageEvent]:
        """Per-message records, in trace order (materialized lazily)."""
        if self._events_cache is None:
            self._events_cache = [
                MessageEvent(int(s), int(d), int(nb))
                for src, dst, nbytes in self._chunks
                for s, d, nb in zip(src, dst, nbytes)
            ]
        return self._events_cache

    def message_count(self) -> int:
        return sum(chunk[0].size for chunk in self._chunks)

    def total_bytes(self) -> int:
        return int(sum(int(chunk[2].sum()) for chunk in self._chunks))

    def traffic_matrix(self) -> np.ndarray:
        """(P, P) byte totals, [src, dst]."""
        n = self.machine.n_procs
        out = np.zeros((n, n), dtype=np.int64)
        for src, dst, nbytes in self._chunks:
            np.add.at(out, (src, dst), nbytes)
        return out

    def pairs(self) -> set[tuple[int, int]]:
        """Distinct communicating (src, dst) pairs."""
        if not self._chunks:
            return set()
        n = self.machine.n_procs
        keys = np.concatenate(
            [src * n + dst for src, dst, _ in self._chunks]
        )
        uniq = np.unique(keys)
        return {(int(k) // n, int(k) % n) for k in uniq}

    def render(self, unit: int = 1024) -> str:
        """Text heat map of the traffic matrix (units of ``unit`` bytes)."""
        mat = self.traffic_matrix() // unit
        n = self.machine.n_procs
        width = max(len(str(mat.max())), 3)
        lines = ["traffic matrix (KiB)" if unit == 1024 else f"traffic /{unit}B"]
        header = "     " + " ".join(f"{q:>{width}}" for q in range(n))
        lines.append(header)
        for p in range(n):
            row = " ".join(f"{mat[p, q]:>{width}}" for q in range(n))
            lines.append(f"{p:>4} {row}")
        return "\n".join(lines)
