"""MetricsSnapshot: host wall-time + simulated machine numbers, unified.

One snapshot answers "where did *host* time go vs. *simulated* time"
for a single program/machine pair:

* **host side** -- per-span-name aggregates (count, total seconds, max
  seconds, self seconds) from the tracer buffer, the tracer's named
  counters, and the drop count;
* **simulated side** -- the machine's phase table (summed
  :class:`~repro.machine.stats.PhaseRecord` elapsed per name), total
  elapsed, and the headline CounterBlock sums (messages/bytes/flops);
* **events** -- per-category counts from the structured event bus;
* **cache** -- ``TranslationCache.stats()`` when a cache is attached.

Everything is plain dict/float data (``to_dict()`` is JSON-ready), so
benches embed snapshots directly in their reports.
"""

from __future__ import annotations


def aggregate_spans(spans) -> dict[str, dict]:
    """Per-name aggregates over span records.

    ``self_s`` is duration minus the duration of direct children --
    the number that makes leaf hot spots visible under umbrella spans.
    """
    child_ns: dict[int, int] = {}
    for rec in spans:
        if rec.parent is not None:
            child_ns[rec.parent] = child_ns.get(rec.parent, 0) + rec.dur_ns
    agg: dict[str, dict] = {}
    for rec in spans:
        entry = agg.setdefault(
            rec.name, {"count": 0, "total_s": 0.0, "max_s": 0.0, "self_s": 0.0}
        )
        dur_s = rec.dur_ns * 1e-9
        entry["count"] += 1
        entry["total_s"] += dur_s
        if dur_s > entry["max_s"]:
            entry["max_s"] = dur_s
        entry["self_s"] += (rec.dur_ns - child_ns.get(rec.id, 0)) * 1e-9
    return agg


class MetricsSnapshot:
    """Point-in-time unified metrics for one program run."""

    def __init__(
        self,
        *,
        host_spans: dict[str, dict],
        host_counters: dict[str, int],
        dropped_spans: int,
        simulated_phases: dict[str, float],
        simulated_total: float,
        simulated_counters: dict[str, float],
        event_counts: dict[str, int],
        cache: dict | None = None,
    ):
        self.host_spans = host_spans
        self.host_counters = host_counters
        self.dropped_spans = dropped_spans
        self.simulated_phases = simulated_phases
        self.simulated_total = simulated_total
        self.simulated_counters = simulated_counters
        self.event_counts = event_counts
        self.cache = cache

    @classmethod
    def collect(cls, machine, *, bus=None, cache=None) -> "MetricsSnapshot":
        """Snapshot a machine (+ optional event bus / translation cache)."""
        tracer = machine.obs
        phases: dict[str, float] = {}
        for rec in machine.stats.phases:
            phases[rec.name] = phases.get(rec.name, 0.0) + rec.elapsed
        counters = machine.counters
        return cls(
            host_spans=aggregate_spans(tracer.spans),
            host_counters=dict(tracer.counters),
            dropped_spans=tracer.dropped,
            simulated_phases=phases,
            simulated_total=float(machine.elapsed()),
            simulated_counters={
                "messages": int(counters.messages_sent.sum()),
                "bytes": int(counters.bytes_sent.sum()),
                "flops": float(counters.flops.sum()),
            },
            event_counts=bus.counts() if bus is not None else {},
            cache=cache.stats() if cache is not None else None,
        )

    def host_total(self) -> float:
        """Total traced host seconds (sum of span self-times)."""
        return sum(e["self_s"] for e in self.host_spans.values())

    def to_dict(self) -> dict:
        out = {
            "host_spans": self.host_spans,
            "host_counters": self.host_counters,
            "dropped_spans": self.dropped_spans,
            "simulated_phases": self.simulated_phases,
            "simulated_total": self.simulated_total,
            "simulated_counters": self.simulated_counters,
            "event_counts": self.event_counts,
        }
        if self.cache is not None:
            out["cache"] = self.cache
        return out
