"""Property-based executor correctness: randomly generated FORALL loops
must match a sequential NumPy interpreter on every machine size and
under every executor option combination."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.chaos.gather_scatter import REDUCTION_OPS
from repro.core import ArrayRef, ForallLoop, Reduce, run_executor, run_inspector
from repro.distribution import BlockDistribution, CyclicDistribution, DistArray, IrregularDistribution
from repro.machine import Machine

_FUNCS = {
    1: [("a", lambda a: a), ("2a", lambda a: 2 * a), ("abs", lambda a: np.abs(a))],
    2: [
        ("a+b", lambda a, b: a + b),
        ("a*b", lambda a, b: a * b),
        ("a-b", lambda a, b: a - b),
    ],
}


@st.composite
def loop_cases(draw):
    n_procs = draw(st.sampled_from([1, 2, 4, 8]))
    n_data = draw(st.integers(min_value=4, max_value=40))
    n_iter = draw(st.integers(min_value=0, max_value=60))
    dist_kind = draw(st.sampled_from(["block", "cyclic", "irregular"]))
    n_ind = draw(st.integers(min_value=1, max_value=3))
    n_stmts = draw(st.integers(min_value=1, max_value=3))
    seed = draw(st.integers(0, 10**6))
    rng = np.random.default_rng(seed)
    ind_names = [f"i{k}" for k in range(n_ind)]
    # one reduction op per target array: mixing ops on one target is
    # order-dependent and not a legal FORALL reduction
    op = draw(st.sampled_from(["add", "multiply", "min", "max"]))
    stmts = []
    for s in range(n_stmts):
        lhs_ind = draw(st.sampled_from(ind_names))
        arity = draw(st.sampled_from([1, 2]))
        fname, func = draw(st.sampled_from(_FUNCS[arity]))
        reads = tuple(
            ArrayRef("x", draw(st.sampled_from(ind_names + [None])))
            for _ in range(arity)
        )
        stmts.append((op, lhs_ind, fname, func, reads))
    return n_procs, n_data, n_iter, dist_kind, ind_names, stmts, seed


@given(case=loop_cases(), options=st.tuples(st.booleans(), st.booleans()))
@settings(max_examples=60, deadline=None)
def test_random_loops_match_sequential(case, options):
    n_procs, n_data, n_iter, dist_kind, ind_names, stmt_specs, seed = case
    coalesce, merge = options
    rng = np.random.default_rng(seed)

    # reads with index None are direct x(i): need x sized n_iter... to
    # keep one x, clamp direct reads to valid range by using modulo data
    # arrays; simpler: replace None with the first indirection array
    # when n_iter != n_data
    fixed_specs = []
    for op, lhs_ind, fname, func, reads in stmt_specs:
        fixed_reads = tuple(
            ArrayRef("x", r.index if r.index is not None or n_iter == n_data else ind_names[0])
            for r in reads
        )
        if n_iter != n_data:
            fixed_reads = tuple(
                ArrayRef("x", r.index or ind_names[0]) for r in reads
            )
        fixed_specs.append((op, lhs_ind, fname, func, fixed_reads))

    m = Machine(n_procs)
    if dist_kind == "block":
        dist = BlockDistribution(n_data, n_procs)
    elif dist_kind == "cyclic":
        dist = CyclicDistribution(n_data, n_procs)
    else:
        dist = IrregularDistribution(rng.integers(0, n_procs, n_data), n_procs)
    idist = BlockDistribution(n_iter, n_procs)

    x0 = rng.normal(size=n_data)
    y0 = rng.normal(size=n_data)
    arrays = {
        "x": DistArray.from_global(m, dist, x0, name="x"),
        "y": DistArray.from_global(m, dist, y0, name="y"),
    }
    ind_values = {}
    for name in ind_names:
        vals = rng.integers(0, n_data, n_iter)
        ind_values[name] = vals
        arrays[name] = DistArray.from_global(m, idist, vals, name=name)

    statements = [
        Reduce(op, ArrayRef("y", lhs_ind), func, reads, flops=1)
        for op, lhs_ind, fname, func, reads in fixed_specs
    ]
    loop = ForallLoop("prop", n_iter, statements)

    product = run_inspector(m, loop, arrays, coalesce_patterns=coalesce)
    run_executor(m, product, arrays, merge_communication=merge)

    # sequential interpreter
    want = y0.copy()
    if n_iter:
        for op, lhs_ind, fname, func, reads in fixed_specs:
            operands = []
            for r in reads:
                tgt = (
                    np.arange(n_iter)
                    if r.index is None
                    else ind_values[r.index]
                )
                operands.append(x0[tgt])
            vals = np.asarray(func(*operands))
            if vals.shape != (n_iter,):
                vals = np.broadcast_to(vals, (n_iter,)).copy()
            REDUCTION_OPS[op].at(want, ind_values[lhs_ind], vals)
    got = arrays["y"].to_global()
    assert np.allclose(got, want), (
        f"mismatch for {[(s[0], s[2]) for s in fixed_specs]} "
        f"procs={n_procs} dist={dist_kind} coalesce={coalesce} merge={merge}"
    )
