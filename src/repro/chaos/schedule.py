"""Communication schedules: the central PARTI/CHAOS data structure.

A :class:`CommSchedule` records, for one access pattern against one
distribution, everything needed to move off-processor data:

* ``send_lists[(q, p)]`` -- local offsets on owner ``q`` of the elements
  requester ``p`` needs (what ``q`` packs and sends to ``p``), and
* ``recv_slots[(q, p)]`` -- ghost-buffer slots on ``p`` where those
  elements land, in wire order.

The same schedule drives data in both directions: ``gather`` prefetches
off-processor data into ghost buffers before an executor runs (reads),
and ``scatter``/``scatter_op`` pushes ghost-buffer contributions back to
the owners afterwards (writes / reductions) -- PARTI's
``gather_exchange`` / ``scatter_op`` pair.

Internally the per-pair lists are flattened once, at construction, into
CSR-style arrays grouped by owner (pack side) and by requester (unpack
side).  Applying the schedule then costs one fancy-index per *processor*
and at most one ``ufunc.at`` per owner -- never a Python loop over
message pairs.  Element order inside the flat arrays is pair insertion
order, so duplicate-slot semantics (last writer wins) and floating-point
accumulation order are identical to the historical per-pair loop.

A schedule is *bound to a distribution signature*: applying it to an
array whose distribution has changed since inspection is a hard error
(this is exactly the staleness the paper's reuse check prevents, so the
runtime enforces it defensively too).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.chaos.costs import ChaosCosts, DEFAULT_COSTS
from repro.distribution.distarray import DistArray
from repro.machine.machine import Machine


class CommSchedule:
    """Schedule for gathering/scattering one access pattern's ghost data."""

    def __init__(
        self,
        machine: Machine,
        dist_signature: tuple,
        send_lists: dict[tuple[int, int], np.ndarray],
        recv_slots: dict[tuple[int, int], np.ndarray],
        ghost_sizes: list[int],
        costs: ChaosCosts = DEFAULT_COSTS,
    ):
        n = machine.n_procs
        if len(ghost_sizes) != n:
            raise ValueError(f"expected {n} ghost sizes, got {len(ghost_sizes)}")
        if set(send_lists) != set(recv_slots):
            raise ValueError("send_lists and recv_slots must cover the same pairs")
        self.machine = machine
        self.dist_signature = dist_signature
        self.send_lists = {k: np.asarray(v, dtype=np.int64) for k, v in send_lists.items()}
        self.recv_slots = {k: np.asarray(v, dtype=np.int64) for k, v in recv_slots.items()}
        self.ghost_sizes = [int(s) for s in ghost_sizes]
        self.costs = costs
        self._build_flat()

    def _build_flat(self) -> None:
        """Flatten the pair dicts into CSR-style apply arrays.

        Nonempty pairs keep their dict insertion order; per-element flat
        order is pair order with each pair's elements contiguous.  The
        pack side groups elements by owner ``q`` (stable, so each owner's
        segment stays in pair order); the unpack side keeps per-requester
        element positions in flat order.
        """
        n = self.machine.n_procs
        ghost_sz = np.asarray(self.ghost_sizes, dtype=np.int64)
        pairs = [
            (q, p, sl, self.recv_slots[(q, p)])
            for (q, p), sl in self.send_lists.items()
        ]
        pair_q = np.asarray([q for q, _, _, _ in pairs], dtype=np.int64)
        pair_p = np.asarray([p for _, p, _, _ in pairs], dtype=np.int64)
        pair_len = np.asarray([len(sl) for _, _, sl, _ in pairs], dtype=np.int64)
        if pair_q.size and (
            pair_q.min() < 0 or pair_q.max() >= n or pair_p.min() < 0 or pair_p.max() >= n
        ):
            for q, p, _, _ in pairs:
                if not (0 <= q < n and 0 <= p < n):
                    raise ValueError(f"processor pair ({q}, {p}) out of range")
        for q, p, sl, rs in pairs:
            if len(sl) != len(rs):
                raise ValueError(
                    f"pair ({q}, {p}): {len(sl)} sends but {len(rs)} recv slots"
                )
        live = pair_len > 0
        #: per-message arrays in pair insertion order (nonempty pairs only)
        self._pair_q = pair_q[live]
        self._pair_p = pair_p[live]
        self._pair_len = pair_len[live]
        live_pairs = [pr for pr, keep in zip(pairs, live) if keep]

        if live_pairs:
            flat_send = np.concatenate([sl for _, _, sl, _ in live_pairs])
            flat_recv = np.concatenate([rs for _, _, _, rs in live_pairs])
        else:
            flat_send = np.empty(0, dtype=np.int64)
            flat_recv = np.empty(0, dtype=np.int64)
        flat_q = np.repeat(self._pair_q, self._pair_len)
        flat_p = np.repeat(self._pair_p, self._pair_len)
        if flat_p.size:
            bad = (flat_recv < 0) | (flat_recv >= ghost_sz[flat_p])
            if bad.any():
                i = int(np.flatnonzero(bad)[0])
                raise ValueError(
                    f"pair ({int(flat_q[i])}, {int(flat_p[i])}): recv slot out of "
                    f"range [0, {int(ghost_sz[flat_p[i]])})"
                )

        # pack side: wire order groups elements by owner q, stable within
        wire_perm = np.argsort(flat_q, kind="stable")
        self._pack_idx = flat_send[wire_perm]
        owner_counts = np.bincount(flat_q, minlength=n) if flat_q.size else np.zeros(n, dtype=np.int64)
        self._pack_offsets = np.concatenate(([0], np.cumsum(owner_counts)))
        self._pack_owners = np.flatnonzero(owner_counts)

        # unpack side: per requester p, ghost slots in flat (pair) order
        # plus the wire positions holding their data
        inv_perm = np.empty(wire_perm.size, dtype=np.int64)
        inv_perm[wire_perm] = np.arange(wire_perm.size)
        recv_order = np.argsort(flat_p, kind="stable")
        self._unpack_dst = flat_recv[recv_order]
        self._unpack_src = inv_perm[recv_order]
        recv_counts = np.bincount(flat_p, minlength=n) if flat_p.size else np.zeros(n, dtype=np.int64)
        self._unpack_offsets = np.concatenate(([0], np.cumsum(recv_counts)))
        self._unpack_procs = np.flatnonzero(recv_counts)

        # per-processor pack/unpack memory charges (pair-order accumulation,
        # matching the historical per-pair loop bit for bit)
        per_pair_mem = self.costs.pack_unpack_mem * self._pair_len
        self._pack_mem = np.zeros(n)
        self._unpack_mem = np.zeros(n)
        np.add.at(self._pack_mem, self._pair_q, per_pair_mem)
        np.add.at(self._unpack_mem, self._pair_p, per_pair_mem)
        self._n_elements = int(self._pair_len.sum())

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def n_procs(self) -> int:
        return self.machine.n_procs

    def message_count(self) -> int:
        """Number of non-empty point-to-point messages per gather."""
        return int((self._pair_q != self._pair_p).sum())

    def element_count(self) -> int:
        """Total off-processor elements moved per gather."""
        return int(self._pair_len[self._pair_q != self._pair_p].sum())

    def ghost_total(self) -> int:
        return sum(self.ghost_sizes)

    def _check_array(self, arr: DistArray) -> None:
        if arr.distribution.signature() != self.dist_signature:
            raise ValueError(
                f"schedule is stale: built for distribution signature "
                f"{self.dist_signature}, array {arr.name!r} now has "
                f"{arr.distribution.signature()}"
            )
        if arr.machine is not self.machine:
            raise ValueError("schedule and array live on different machines")

    def _check_ghosts(self, ghosts: list[np.ndarray]) -> None:
        if len(ghosts) != self.n_procs:
            raise ValueError(
                f"expected {self.n_procs} ghost buffers, got {len(ghosts)}"
            )
        for p, buf in enumerate(ghosts):
            if buf.shape != (self.ghost_sizes[p],):
                raise ValueError(
                    f"ghost buffer for processor {p} has shape {buf.shape}, "
                    f"schedule needs ({self.ghost_sizes[p]},)"
                )

    # ------------------------------------------------------------------
    # flat data movement (shared with merged-communication paths)
    # ------------------------------------------------------------------
    def _move_gather(self, arr: DistArray, ghosts: list[np.ndarray]) -> None:
        """Pack owners' elements onto the wire, unpack into ghost buffers."""
        wire = np.empty(self._n_elements, dtype=arr.dtype)
        off = self._pack_offsets
        for q in self._pack_owners:
            wire[off[q] : off[q + 1]] = arr.local(q)[self._pack_idx[off[q] : off[q + 1]]]
        off = self._unpack_offsets
        for p in self._unpack_procs:
            seg = slice(off[p], off[p + 1])
            ghosts[p][self._unpack_dst[seg]] = wire[self._unpack_src[seg]]

    def _move_reverse(
        self,
        ghosts: list[np.ndarray],
        arr: DistArray,
        op: Callable | None,
    ) -> None:
        """Pack ghost contributions, store/combine at the owners."""
        wire = np.empty(self._n_elements, dtype=arr.dtype)
        off = self._unpack_offsets
        for p in self._unpack_procs:
            seg = slice(off[p], off[p + 1])
            wire[self._unpack_src[seg]] = ghosts[p][self._unpack_dst[seg]]
        off = self._pack_offsets
        for q in self._pack_owners:
            seg = slice(off[q], off[q + 1])
            if op is None:
                arr.local(q)[self._pack_idx[seg]] = wire[seg]
            else:
                op.at(arr.local(q), self._pack_idx[seg], wire[seg])

    def _wire_bytes(self, itemsize: int) -> np.ndarray:
        return self._pair_len * itemsize

    # ------------------------------------------------------------------
    # data movement
    # ------------------------------------------------------------------
    def gather(self, arr: DistArray, ghosts: list[np.ndarray]) -> None:
        """Prefetch off-processor data into ghost buffers (one phase).

        For every pair ``(q, p)``: owner ``q`` packs
        ``arr.local(q)[send_lists]`` and requester ``p`` stores the wire
        data at ``ghosts[p][recv_slots]``.  Charges packing/unpacking
        memory traffic and the message exchange.
        """
        self._check_array(arr)
        self._check_ghosts(ghosts)
        m = self.machine
        self._move_gather(arr, ghosts)
        m.charge_compute_all(mem=self._pack_mem)
        m.exchange(
            src=self._pair_q, dst=self._pair_p, nbytes=self._wire_bytes(arr.itemsize)
        )
        m.charge_compute_all(mem=self._unpack_mem)

    def scatter(self, ghosts: list[np.ndarray], arr: DistArray) -> None:
        """Reverse movement, overwrite semantics: ghost copies are sent
        back to the owners and stored (last writer per slot wins in wire
        order -- callers needing determinism use distinct slots)."""
        self._apply_reverse(ghosts, arr, op=None)

    def scatter_op(
        self,
        ghosts: list[np.ndarray],
        arr: DistArray,
        op: Callable,
        flops_per_element: float = 1.0,
    ) -> None:
        """Reverse movement with combining (PARTI scatter_add/op).

        ``op`` is a NumPy ufunc used through ``op.at`` so repeated slots
        accumulate -- the loop-carried reduction semantics the paper
        allows (add, multiply, minimum, maximum).
        """
        if not hasattr(op, "at"):
            raise TypeError(f"op must be a NumPy ufunc with .at, got {op!r}")
        self._apply_reverse(ghosts, arr, op=op, flops_per_element=flops_per_element)

    def _apply_reverse(
        self,
        ghosts: list[np.ndarray],
        arr: DistArray,
        op: Callable | None,
        flops_per_element: float = 1.0,
    ) -> None:
        self._check_array(arr)
        self._check_ghosts(ghosts)
        m = self.machine
        self._move_reverse(ghosts, arr, op)
        if op is None:
            combine = 0.0
        else:
            combine = np.zeros(self.n_procs)
            np.add.at(combine, self._pair_q, flops_per_element * self._pair_len)
        # roles swap relative to gather: the requester packs its ghost
        # contributions, the owner unpacks (and combines)
        m.charge_compute_all(mem=self._unpack_mem)
        m.exchange(
            src=self._pair_p, dst=self._pair_q, nbytes=self._wire_bytes(arr.itemsize)
        )
        m.charge_compute_all(mem=self._pack_mem, flops=combine)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CommSchedule(procs={self.n_procs}, messages={self.message_count()}, "
            f"elements={self.element_count()}, ghosts={self.ghost_total()})"
        )
