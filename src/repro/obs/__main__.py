"""CLI: ``python -m repro.obs report <trace> [--top N]``."""

from __future__ import annotations

import argparse
import sys

from .report import report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect repro.obs trace files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    rep = sub.add_parser(
        "report", help="per-phase wall-time table + top-N hot spans"
    )
    rep.add_argument("trace", help="JSONL or Chrome trace file (auto-detected)")
    rep.add_argument("--top", type=int, default=10, help="hot spans to show")
    args = parser.parse_args(argv)
    if args.command == "report":
        print(report(args.trace, top=args.top))
        return 0
    return 2  # pragma: no cover - argparse enforces the subcommand


if __name__ == "__main__":
    sys.exit(main())
