"""Typed failure hierarchy for the verification + recovery substrate.

The inspector/executor pipeline distinguishes three failure classes:

* :class:`InvariantViolation` -- a structural or content check over a
  runtime product (schedule, ghost buffers, iteration partition, adapt
  state) failed: the product cannot be trusted and must not be executed;
* :class:`PatchError` and its subclasses -- the incremental-inspection
  path failed.  :class:`PatchAborted` means the patch itself could not
  be assembled (mid-patch state out of sync, inconsistent slot
  bookkeeping); :class:`PatchVerifyFailed` means the patch assembled but
  the patched product failed post-patch verification.  Both are
  *recoverable*: the driver discards the loop's saved adapt state and
  falls back to a full inspection (the escalation ladder in
  ``repro.adapt.driver``);
* :class:`CheckpointError` -- a checkpoint file is unreadable,
  corrupted, from an incompatible version, or does not match the
  program it is being restored into.

Anything else (``TypeError``, ``IndexError``, ``KeyError``, ...) is a
bug and propagates: the driver's recovery paths catch *only* these
typed exceptions, never ``Exception``.
"""

from __future__ import annotations


class GuardError(Exception):
    """Base class for every failure the guard subsystem raises."""


class InvariantViolation(GuardError):
    """A runtime product failed a structural or content invariant check."""


class PatchError(GuardError):
    """Base class for recoverable incremental-patch failures."""


class PatchAborted(PatchError):
    """The patch could not be assembled: saved state is out of sync."""


class PatchVerifyFailed(PatchError):
    """The patched product failed post-patch invariant verification."""


class CheckpointError(GuardError):
    """A checkpoint is unreadable, corrupted, or incompatible."""
