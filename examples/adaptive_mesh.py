#!/usr/bin/env python
"""Adaptive mesh: incremental inspection vs. re-inspection at adaptations.

Adaptive CFD codes -- a core CHAOS use case -- change mesh connectivity
every few dozen timesteps.  Between adaptations the edge list is fixed
and inspector results are reused; at each adaptation a few percent of
the edges are locally re-targeted (``repro.workloads.adaptive``).  The
conservative runtime record notices the writes, and:

* a plain program re-runs the **full inspector** at every adaptation;
* an ``incremental=True`` program **diffs** the edge arrays against its
  snapshot and **patches** the saved schedules and ghost regions --
  same results, a fraction of the inspector cost.

Both paths are validated against the sequential reference sweep.

    python examples/adaptive_mesh.py
"""

import numpy as np

from repro import AdaptiveExecutor
from repro.machine import Machine
from repro.workloads import (
    apply_adaptation,
    build_refinement_schedule,
    generate_mesh,
)
from repro.workloads.euler import (
    euler_edge_loop,
    euler_sequential_reference,
    setup_euler_program,
)


def build_program(mesh, incremental):
    machine = Machine(8)
    prog = setup_euler_program(machine, mesh, seed=21, incremental=incremental)
    prog.construct("G", mesh.n_nodes, geometry=["xc", "yc", "zc"])
    prog.set_distribution("fmt", "G", "RCB")
    prog.redistribute("reg", "fmt")
    return machine, prog


def run(mesh, schedule, incremental, epochs, sweeps_per_epoch):
    machine, prog = build_program(mesh, incremental)
    loop = euler_edge_loop(mesh)
    driver = AdaptiveExecutor(prog, loop)
    x = prog.arrays["x"].to_global()
    want = np.zeros(mesh.n_nodes)
    for epoch in range(epochs):
        if epoch > 0:
            apply_adaptation(prog, schedule.updates[epoch - 1])
        driver.run(sweeps_per_epoch)
        edges = mesh.edges if epoch == 0 else schedule.edges_per_epoch[epoch - 1]
        want = euler_sequential_reference(x, edges, n_times=sweeps_per_epoch, y0=want)
    assert np.allclose(prog.arrays["y"].to_global(), want)
    return machine, prog, driver


def main(epochs=5, sweeps_per_epoch=20, fraction=0.05):
    mesh = generate_mesh(1200, seed=21)
    schedule = build_refinement_schedule(mesh, fraction, epochs - 1, seed=7)

    m_full, prog_full, drv_full = run(mesh, schedule, False, epochs, sweeps_per_epoch)
    print(
        f"conservative reuse: {prog_full.inspector_runs} full inspections "
        f"({drv_full.mode_counts()}), "
        f"inspector {m_full.phase_time('inspector'):.3f}s simulated"
    )

    m_inc, prog_inc, drv_inc = run(mesh, schedule, True, epochs, sweeps_per_epoch)
    print(
        f"incremental:        {prog_inc.inspector_runs} full inspection + "
        f"{prog_inc.patch_hits} patches ({drv_inc.mode_counts()}), "
        f"inspector {m_inc.phase_time('inspector'):.3f}s simulated"
    )
    assert prog_inc.inspector_runs == 1
    assert prog_inc.patch_hits == epochs - 1

    t_full = drv_full.inspector_time("full") / max(prog_full.inspector_runs, 1)
    t_patch = drv_inc.inspector_time("patch") / max(prog_inc.patch_hits, 1)
    print(
        f"\nper-adaptation inspector cost: full {t_full:.4f}s vs "
        f"patch {t_patch:.4f}s simulated ({t_full / t_patch:.1f}x)"
    )
    print(
        f"end-to-end simulated time: {m_full.elapsed():.2f}s -> "
        f"{m_inc.elapsed():.2f}s"
    )


if __name__ == "__main__":
    main()
