"""Failure injection: the runtime must refuse unsafe operations loudly.

These tests simulate the bugs the paper's machinery exists to prevent --
stale schedules, mismatched machines, corrupted inputs -- and check each
is caught at the runtime boundary rather than corrupting data silently.
"""

import numpy as np
import pytest

from repro.chaos import GhostBuffers, build_translation_table, localize
from repro.chaos.remap import build_remap_schedule
from repro.core import ArrayRef, ForallLoop, IrregularProgram, Reduce, run_executor, run_inspector
from repro.distribution import BlockDistribution, CyclicDistribution, DistArray, IrregularDistribution
from repro.machine import Machine


def simple_loop(n):
    return ForallLoop(
        "L",
        n,
        [Reduce("add", ArrayRef("y", "ia"), lambda a: a, (ArrayRef("x", "ia"),))],
    )


def build_arrays(m, n=16):
    rng = np.random.default_rng(0)
    return {
        "x": DistArray.from_global(m, BlockDistribution(n, m.n_procs), rng.normal(size=n), name="x"),
        "y": DistArray.from_global(m, BlockDistribution(n, m.n_procs), np.zeros(n), name="y"),
        "ia": DistArray.from_global(
            m, BlockDistribution(n, m.n_procs), rng.integers(0, n, n), name="ia"
        ),
    }


class TestStaleState:
    def test_executor_refuses_remapped_arrays(self):
        m = Machine(4)
        arrays = build_arrays(m)
        product = run_inspector(m, simple_loop(16), arrays)
        # remap x behind the runtime's back
        new = IrregularDistribution(np.arange(16) % 4, 4)
        vals = arrays["x"].to_global()
        arrays["x"].rebind(new, [vals[new.local_indices(p)] for p in range(4)])
        with pytest.raises(ValueError, match="redistributed"):
            run_executor(m, product, arrays)

    def test_schedule_refuses_wrong_distribution(self):
        m = Machine(4)
        arrays = build_arrays(m)
        tt = build_translation_table(m, arrays["x"].distribution)
        res = localize(m, tt, [np.array([15]), np.array([]), np.array([]), np.array([])])
        wrong = DistArray.from_global(m, CyclicDistribution(16, 4), np.zeros(16))
        ghosts = GhostBuffers(m, res.schedule)
        with pytest.raises(ValueError, match="stale"):
            res.schedule.gather(wrong, ghosts.buffers)

    def test_remap_schedule_refuses_reuse_after_move(self):
        m = Machine(4)
        arr = DistArray.from_global(m, BlockDistribution(12, 4), np.arange(12.0))
        sched = build_remap_schedule(m, arr.distribution, CyclicDistribution(12, 4))
        sched.apply(arr)
        with pytest.raises(ValueError, match="stale"):
            sched.apply(arr)  # arr is cyclic now; schedule expects block

    def test_program_detects_indirection_corruption(self):
        """Overwriting an indirection array between sweeps must trigger
        re-inspection; the re-inspected run must be correct."""
        m = Machine(4)
        prog = IrregularProgram(m)
        prog.decomposition("d", 16)
        prog.distribute("d", "block")
        rng = np.random.default_rng(1)
        x = rng.normal(size=16)
        ia = rng.integers(0, 16, 16)
        prog.array("x", "d", values=x)
        prog.array("y", "d", values=np.zeros(16))
        prog.array("ia", "d", values=ia, dtype=np.int64)
        loop = simple_loop(16)
        prog.forall(loop)
        ia2 = rng.permutation(16)
        prog.set_array("ia", ia2)
        prog.forall(loop)
        want = np.zeros(16)
        np.add.at(want, ia, x[ia])
        np.add.at(want, ia2, x[ia2])
        assert np.allclose(prog.arrays["y"].to_global(), want)
        assert prog.inspector_runs == 2


class TestMachineBoundaries:
    def test_cross_machine_array(self):
        m1, m2 = Machine(4), Machine(4)
        arrays = build_arrays(m1)
        product = run_inspector(m1, simple_loop(16), arrays)
        foreign = build_arrays(m2)
        with pytest.raises(ValueError, match="different machines"):
            product.patterns[("x", "ia")].localized.schedule.gather(
                foreign["x"], product.patterns[("x", "ia")].ghosts.buffers
            )

    def test_out_of_range_indirection_values(self):
        m = Machine(4)
        arrays = build_arrays(m)
        arrays["ia"].global_set([0], [99])  # out of x's index space
        with pytest.raises(IndexError, match="out of range"):
            run_inspector(m, simple_loop(16), arrays)

    def test_negative_indirection_values(self):
        m = Machine(4)
        arrays = build_arrays(m)
        arrays["ia"].global_set([3], [-2])
        with pytest.raises(IndexError, match="out of range"):
            run_inspector(m, simple_loop(16), arrays)


class TestProgramMisuse:
    def test_redistribute_unknown_format(self):
        m = Machine(4)
        prog = IrregularProgram(m)
        prog.decomposition("d", 8)
        prog.distribute("d", "block")
        with pytest.raises(ValueError, match="unknown distribution spec"):
            prog.redistribute("d", "nonexistent_fmt")

    def test_redistribute_size_mismatch(self):
        m = Machine(4)
        prog = IrregularProgram(m)
        prog.decomposition("d", 8)
        prog.distribute("d", "block")
        prog.decomposition("e", 12)
        prog.distribute("e", "block")
        # build a distfmt for the wrong size via a GeoCoL on e's arrays
        prog.array("w", "e", values=np.ones(12))
        prog.construct("G", 12, load="w")
        prog.set_distribution("fmt", "G", "LOAD")
        with pytest.raises(ValueError, match="!= decomposition"):
            prog.redistribute("d", "fmt")

    def test_forall_with_undeclared_array(self):
        m = Machine(4)
        prog = IrregularProgram(m)
        with pytest.raises(KeyError, match="unbound array"):
            prog.forall(simple_loop(8))

    def test_negative_sweeps(self):
        m = Machine(4)
        prog = IrregularProgram(m)
        with pytest.raises(ValueError, match="negative execution count"):
            prog.forall(simple_loop(8), n_times=-1)
