"""Table 3: compiler-linked coordinate bisection with schedule reuse.

Paper numbers (seconds; partitioner / inspector / remap / executor / total):

    10K mesh:  4p: 0.6/1.2/3.1/12.7/17.6   8p: 0.6/0.6/1.6/7.0/10.8   16p: 0.4/0.4/0.9/6.0/7.7
    53K mesh: 16p: 1.8/2.0/5.1/21.5?/30.4  32p: 1.6/1.9/3.0/17.2?/23.0 64p: 2.5/0.7/1.9/12.3?/17.4
    648 atom:  4p: 0.1/2.2/4.8/8.1/15.2     8p: 0.1/1.2/2.6/5.8/9.7    16p: 0.1/0.7/1.5/5.7/8.0

Shapes checked: every phase time is positive; inspector and remap are
one-time costs that shrink with processor count; the executor dominates
the total at every config (it runs 100 iterations); executor time drops
from the smallest to the largest processor count for each workload.
"""

from conftest import run_once

from repro.bench import table3_rcb_detail


def test_table3_rcb_detail(benchmark, report):
    rows, text = run_once(benchmark, table3_rcb_detail)
    report("table3_rcb_detail", text)
    assert len(rows) == 9
    for row in rows:
        for phase in ("partition", "inspector", "remap", "executor"):
            assert row[phase] > 0, row
        # 100 executor iterations dominate the one-time phases
        assert row["executor"] > row["inspector"], row
        assert row["executor"] >= 0.4 * row["total"], row

    # processor scaling: executor at the largest count beats the smallest
    for group in range(3):
        first, last = rows[3 * group], rows[3 * group + 2]
        assert last["executor"] < first["executor"], (first, last)
        # inspector is distributed work: it scales down too
        assert last["inspector"] < first["inspector"], (first, last)
