"""Table 4: naive BLOCK partitioning with schedule reuse.

Paper numbers (seconds; inspector / remap / executor / total):

    10K mesh:  4p: 1.5/3.1/26.0/30.4   8p: 0.9/1.6/20.8/23.3   16p: 0.5/0.8/14.7/16.0
    53K mesh: 16p: 3.9/4.9/74.1/82.9  32p: 1.9/2.8/54.7/59.4   64p: 1.0/1.7/35.3/38.0
    648 atom:  4p: 2.7/4.5/10.3/17.5   8p: 1.5/2.6/7.6/11.7    16p: 0.8/1.5/7.3/9.6

"Irregular distribution of arrays performs much better than the existing
BLOCK distribution supported by HPF" -- checked here by comparing each
config's executor against the Table 3 (RCB) executor.
"""

from conftest import run_once

from repro.bench import table3_rcb_detail, table4_block


def test_table4_block(benchmark, report):
    def run_both():
        return table4_block(), table3_rcb_detail()

    (rows4, text4), (rows3, _) = run_once(benchmark, run_both)
    report("table4_block", text4)
    assert len(rows4) == 9
    for row in rows4:
        assert "partition" not in row  # BLOCK has no partitioner phase
        assert row["executor"] > 0 and row["remap"] > 0

    # the paper's headline: block executor is clearly worse than RCB's
    # on the mesh workloads (factor 2-3 at paper scale)
    for r4, r3 in zip(rows4, rows3):
        assert r4["config"] == r3["config"]
        if "mesh" in r4["config"]:
            assert r4["executor"] > 1.2 * r3["executor"], (r4, r3)
    # and the block totals exceed the RCB totals despite skipping the
    # partitioner entirely on every mesh config
    mesh4 = [r for r in rows4 if "mesh" in r["config"]]
    mesh3 = [r for r in rows3 if "mesh" in r["config"]]
    assert sum(r["total"] for r in mesh4) > sum(r["total"] for r in mesh3)
