"""CLI entrypoint: ``python -m repro.serve {demo,chaos}``.

``demo`` stands up a local service, runs a handful of jobs through the
typed client (including a duplicate and a cache-warm resubmission), and
prints each job's lifecycle plus the service health snapshot.

``chaos`` runs the deterministic chaos harness
(:func:`repro.serve.chaos.run_chaos`) and exits non-zero if the service
broke its bit-identity contract under injected faults -- CI's smoke
gate for the whole fault-tolerance story.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.serve.chaos import ChaosFailure, run_chaos
from repro.serve.client import ServeClient
from repro.serve.service import SimulationService


def _cmd_demo(args) -> int:
    with SimulationService(workers=args.workers, seed=args.seed) as svc:
        client = ServeClient(svc)
        jobs = [
            client.submit(
                scenario="adapt", n_nodes=300, n_procs=4, steps=6,
                checkpoint_every=2, seed=args.seed,
            ),
            client.submit(
                scenario="rebalance", n_nodes=300, n_procs=4, steps=6,
                adapt_every=2, seed=args.seed,
            ),
        ]
        # a duplicate submission coalesces onto the in-flight job
        dup = client.submit(
            scenario="adapt", n_nodes=300, n_procs=4, steps=6,
            checkpoint_every=2, seed=args.seed,
        )
        for job in jobs:
            result = job.wait(timeout=600)
            st = job.status()
            print(
                f"{job.id} {job.config.scenario:9s} -> {st['state']} "
                f"attempts={st['attempts']} "
                f"simulated_total={result['simulated_total']:.6f}"
            )
            print(f"  events: {[e['event'] for e in st['events']]}")
        print(f"duplicate coalesced onto {dup.id}: {dup is jobs[0]}")
        # resubmitting a finished config is a cache hit, not a simulation
        warm = client.submit(
            scenario="adapt", n_nodes=300, n_procs=4, steps=6,
            checkpoint_every=2, seed=args.seed,
        )
        print(f"warm resubmission done immediately: {warm.done}")
        print("health:", json.dumps(svc.health()["counts"], indent=2))
    return 0


def _cmd_chaos(args) -> int:
    print(f"chaos harness: seed={args.seed} workers={args.workers}")
    try:
        report = run_chaos(seed=args.seed, workers=args.workers, verbose=True)
    except ChaosFailure as exc:
        print(f"CHAOS FAILURE: {exc}", file=sys.stderr)
        return 1
    counts = report["health"]["counts"]
    print(
        f"chaos OK: {report['jobs']} jobs bit-identical under faults "
        f"(worker restarts: {counts['worker_restarts']}, "
        f"coalesced: {counts['coalesced']}, "
        f"cache corruption healed: {report['health']['cache']['corrupt']})"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="fault-tolerant simulation service",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=2)
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("demo", help="run a few jobs and print their lifecycle")
    sub.add_parser("chaos", help="run the deterministic chaos harness")
    args = parser.parse_args(argv)
    return {"demo": _cmd_demo, "chaos": _cmd_chaos}[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
