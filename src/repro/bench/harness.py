"""Experiment runner: one (workload, config) run on a fresh machine.

Each run reproduces the paper's experimental procedure (Section 6):
start from BLOCK distributions, optionally build a GeoCoL graph and
partition it (mapper coupler), redistribute the data arrays, then run
the irregular loop for ``iterations`` executor iterations with or
without schedule reuse.  Reported times are the simulated machine's
phase times.

Path conventions:

* ``path="compiler"`` -- the Fortran 90D path: runtime modification
  tracking on (``track=True``), reuse guarded by the conservative check,
  and a small executor overhead factor modeling compiler-generated (vs.
  hand-tuned) inner loops.  The paper measures this gap at <= ~10%; we
  charge ``COMPILER_EXECUTOR_OVERHEAD = 1.07``.
* ``path="hand"`` -- hand-embedded CHAOS calls: no tracking cost, reuse
  managed manually by the harness (inspect once, execute N times).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.executor import run_executor
from repro.core.forall import ForallLoop
from repro.core.inspector import run_inspector
from repro.core.program import IrregularProgram
from repro.machine.costmodel import CostModel, IPSC860
from repro.machine.machine import Machine
from repro.workloads.euler import euler_edge_loop, setup_euler_program
from repro.workloads.md import md_force_loop, setup_md_program
from repro.workloads.mesh import UnstructuredMesh

#: executor-time factor charged to compiler-generated code (Section 6:
#: "within 10% of the hand parallelized version")
COMPILER_EXECUTOR_OVERHEAD = 1.07

#: phases reported by every experiment, in paper order
PHASE_NAMES = ["graph_generation", "partition", "remap", "inspector", "executor"]


@dataclass
class ExperimentResult:
    """Per-phase simulated seconds for one run."""

    workload: str
    n_procs: int
    partitioner: str
    path: str
    reuse: bool
    iterations: int
    phases: dict[str, float] = field(default_factory=dict)
    total: float = 0.0
    meta: dict = field(default_factory=dict)

    def phase(self, name: str) -> float:
        return self.phases.get(name, 0.0)


def _run_loop_phase(
    prog: IrregularProgram,
    loop: ForallLoop,
    iterations: int,
    path: str,
    reuse: bool,
) -> None:
    """Run the executor loop under the requested path/reuse mode."""
    if path == "compiler":
        prog.forall(loop, n_times=iterations, reuse=reuse)
        return
    # hand path: the programmer decides when to re-inspect.  The
    # coalescing flag is passed explicitly (the program's pinned
    # setting), not left to run_inspector's default: these scenarios
    # back longitudinal baselines that must stay bit-identical.
    machine = prog.machine
    if reuse:
        with machine.phase("inspector"):
            product = run_inspector(
                machine,
                loop,
                prog.arrays,
                iter_method=prog.iter_method,
                ttable_variant=prog.ttable_variant,
                costs=prog.costs,
                ttables=prog.ttables,
                coalesce_patterns=prog.coalesce_patterns,
                cache=prog.translation_cache,
            )
        with machine.phase("executor"):
            run_executor(machine, product, prog.arrays, n_times=iterations)
    else:
        for _ in range(iterations):
            with machine.phase("inspector"):
                product = run_inspector(
                    machine,
                    loop,
                    prog.arrays,
                    iter_method=prog.iter_method,
                    ttable_variant=prog.ttable_variant,
                    costs=prog.costs,
                    ttables=prog.ttables,
                    coalesce_patterns=prog.coalesce_patterns,
                    cache=prog.translation_cache,
                )
            with machine.phase("executor"):
                run_executor(machine, product, prog.arrays, n_times=1)


def _partition_and_remap(
    prog: IrregularProgram,
    workload: str,
    partitioner: str,
    n_nodes: int,
    node_decomp: str,
    geometry_names: list[str],
    link_names: tuple[str, str] | None,
) -> None:
    """Phases A-C: GeoCoL construction, partitioning, remapping."""
    if partitioner == "BLOCK":
        # naive baseline: keep/assign contiguous blocks; no GeoCoL, no
        # partitioner, but the redistribution machinery still runs
        prog.redistribute(node_decomp, "block")
        return
    if partitioner in ("RSB", "RSB+KL"):
        if link_names is None:
            raise ValueError(f"workload {workload!r} has no LINK arrays for RSB")
        prog.construct("G", n_nodes, link=link_names)
    else:  # geometry-based: RCB / RIB
        prog.construct("G", n_nodes, geometry=geometry_names)
    prog.set_distribution("distfmt", "G", partitioner)
    prog.redistribute(node_decomp, "distfmt")


def _collect(prog: IrregularProgram, spec: dict) -> ExperimentResult:
    machine = prog.machine
    res = ExperimentResult(**spec)
    for name in PHASE_NAMES:
        res.phases[name] = machine.phase_time(name)
    res.total = sum(res.phases.values())
    res.meta = {
        "elapsed": machine.elapsed(),
        "inspector_runs": prog.inspector_runs,
        "reuse_hits": prog.reuse_hits,
        "messages": int(machine.counters.messages_sent.sum()),
        "bytes": int(machine.counters.bytes_sent.sum()),
    }
    if prog.translation_cache is not None:
        res.meta["translation_cache"] = prog.translation_cache.stats()
    if prog.adapt is not None:
        res.meta["patch_hits"] = prog.patch_hits
    if machine.obs.enabled:
        res.meta["obs"] = prog.obs_snapshot().to_dict()
        res.meta["obs_program"] = prog
    return res


def run_euler_experiment(
    mesh: UnstructuredMesh,
    n_procs: int,
    partitioner: str = "RCB",
    path: str = "compiler",
    reuse: bool = True,
    iterations: int = 100,
    cost_model: CostModel = IPSC860,
    seed: int = 0,
    coalesce: bool = False,
    incremental: bool = False,
    obs: str | None = None,
) -> ExperimentResult:
    """One unstructured-mesh edge-sweep experiment (Tables 1-4).

    ``coalesce`` is pinned ``False`` (per-pattern schedules) even though
    the runtime's default is now coalescing: the Tables 1-4 golden
    fixtures were produced by this scenario definition and must stay
    bit-identical across PRs.  ``incremental`` enables the adaptive
    patching subsystem (compiler path only -- it needs the runtime
    record); the longitudinal simspeed scenario turns both on.
    ``obs="on"`` enables host-side span tracing (see :mod:`repro.obs`);
    the result's ``meta`` then carries a ``MetricsSnapshot`` dict plus
    the program handle (``obs_program``) for trace export.
    """
    if path not in ("compiler", "hand"):
        raise ValueError(f"unknown path {path!r}; choose compiler | hand")
    machine = Machine(n_procs, cost_model=cost_model)
    prog = setup_euler_program(
        machine,
        mesh,
        seed=seed,
        track=(path == "compiler"),
        coalesce_patterns=coalesce,
        incremental=incremental and path == "compiler",
        executor_overhead=(
            COMPILER_EXECUTOR_OVERHEAD if path == "compiler" else 1.0
        ),
        obs=obs,
    )
    _partition_and_remap(
        prog,
        "euler",
        partitioner,
        mesh.n_nodes,
        "reg",
        ["xc", "yc", "zc"][: mesh.ndim],
        ("end_pt1", "end_pt2"),
    )
    loop = euler_edge_loop(mesh)
    _run_loop_phase(prog, loop, iterations, path, reuse)
    return _collect(
        prog,
        dict(
            workload=f"mesh{mesh.n_nodes}",
            n_procs=n_procs,
            partitioner=partitioner,
            path=path,
            reuse=reuse,
            iterations=iterations,
        ),
    )


def run_md_experiment(
    n_atoms: int = 648,
    n_procs: int = 4,
    partitioner: str = "RCB",
    path: str = "compiler",
    reuse: bool = True,
    iterations: int = 100,
    cutoff: float = 8.0,
    cost_model: CostModel = IPSC860,
    seed: int = 0,
    coalesce: bool = False,
) -> ExperimentResult:
    """One molecular-dynamics force-sweep experiment (648-atom water).

    ``coalesce`` is pinned ``False`` for golden-fixture comparability,
    like :func:`run_euler_experiment`.
    """
    if path not in ("compiler", "hand"):
        raise ValueError(f"unknown path {path!r}; choose compiler | hand")
    machine = Machine(n_procs, cost_model=cost_model)
    prog, pairs = setup_md_program(
        machine,
        n_atoms=n_atoms,
        cutoff=cutoff,
        seed=seed,
        track=(path == "compiler"),
        coalesce_patterns=coalesce,
        executor_overhead=(
            COMPILER_EXECUTOR_OVERHEAD if path == "compiler" else 1.0
        ),
    )
    _partition_and_remap(
        prog,
        "md",
        partitioner,
        n_atoms,
        "atoms",
        ["rx", "ry", "rz"],
        ("p1", "p2"),
    )
    loop = md_force_loop(pairs.shape[1])
    _run_loop_phase(prog, loop, iterations, path, reuse)
    return _collect(
        prog,
        dict(
            workload=f"md{n_atoms}",
            n_procs=n_procs,
            partitioner=partitioner,
            path=path,
            reuse=reuse,
            iterations=iterations,
        ),
    )
