"""repro: a reproduction of Ponnusamy, Saltz & Choudhary (SC '93),
"Runtime Compilation Techniques for Data Partitioning and Communication
Schedule Reuse".

The package rebuilds the paper's full stack in Python:

* :mod:`repro.machine` -- a simulated iPSC/860-style distributed-memory
  machine (hypercube topology, alpha-beta communication costs, per-
  processor clocks);
* :mod:`repro.distribution` -- BLOCK/CYCLIC/BLOCK-CYCLIC/irregular
  distributions, Fortran-D decompositions, distributed arrays;
* :mod:`repro.chaos` -- the CHAOS/PARTI runtime: translation tables,
  communication schedules, localize, gather/scatter, remap;
* :mod:`repro.partitioners` -- BLOCK/CYCLIC/RANDOM/LOAD/RCB/RIB/RSB(+KL)
  with a registry and quality metrics;
* :mod:`repro.core` -- the paper's contribution: data access
  descriptors, the nmod/last_mod registry, the conservative schedule-
  reuse check, GeoCoL construction, the mapper coupler, iteration
  partitioning, and the inspector/executor transformation;
* :mod:`repro.adapt` -- incremental inspection for adaptive codes:
  region-level dirty tracking, reference diffing, and schedule/ghost
  patching instead of full re-inspection;
* :mod:`repro.guard` -- robustness substrate: invariant verification,
  deterministic fault injection, typed failure recovery, and
  checkpoint/restore of long campaigns;
* :mod:`repro.lang` -- a Fortran-90D-like directive frontend that
  performs the paper's compile-time transformation (Figure 6);
* :mod:`repro.workloads` -- unstructured-mesh (Euler) and molecular-
  dynamics workload generators used by the benchmarks;
* :mod:`repro.bench` -- the harness regenerating the paper's tables.

Quickstart::

    import numpy as np
    from repro import Machine, IrregularProgram, ForallLoop, Reduce, ArrayRef

    m = Machine(4)
    prog = IrregularProgram(m)
    prog.decomposition("reg", 8)
    prog.distribute("reg", "block")
    prog.decomposition("reg2", 12)
    prog.distribute("reg2", "block")
    prog.array("x", "reg", values=np.arange(8.0))
    prog.array("y", "reg", values=np.zeros(8))
    prog.array("end_pt1", "reg2", values=np.random.randint(0, 8, 12), dtype=np.int64)
    prog.array("end_pt2", "reg2", values=np.random.randint(0, 8, 12), dtype=np.int64)
    loop = ForallLoop("sweep", 12, [
        Reduce("add", ArrayRef("y", "end_pt1"), lambda a, b: a - b,
               (ArrayRef("x", "end_pt1"), ArrayRef("x", "end_pt2")), flops=2),
    ])
    prog.forall(loop, n_times=10)          # inspector runs once, reused 9x
    print(m.elapsed(), prog.reuse_hits)
"""

from repro.machine import Machine, IPSC860, IDEALIZED
from repro.distribution import (
    BlockDistribution,
    CyclicDistribution,
    BlockCyclicDistribution,
    IrregularDistribution,
    Decomposition,
    DistArray,
)
from repro.core import (
    DAD,
    ModificationRegistry,
    InspectorRecord,
    can_reuse,
    ArrayRef,
    Assign,
    Reduce,
    ForallLoop,
    GeoCoL,
    construct_geocol,
    partition_geocol,
    partition_iterations,
    run_inspector,
    run_executor,
    IrregularProgram,
)
from repro.partitioners import get_partitioner, available_partitioners
from repro.adapt import AdaptiveExecutor
from repro.guard import (
    CheckpointError,
    FaultPlan,
    GuardError,
    InvariantViolation,
    PatchAborted,
    PatchError,
    PatchVerifyFailed,
    load_checkpoint,
    restore_checkpoint,
    save_checkpoint,
    verify_product,
)

__version__ = "1.0.0"

__all__ = [
    "Machine",
    "IPSC860",
    "IDEALIZED",
    "BlockDistribution",
    "CyclicDistribution",
    "BlockCyclicDistribution",
    "IrregularDistribution",
    "Decomposition",
    "DistArray",
    "DAD",
    "ModificationRegistry",
    "InspectorRecord",
    "can_reuse",
    "ArrayRef",
    "Assign",
    "Reduce",
    "ForallLoop",
    "GeoCoL",
    "construct_geocol",
    "partition_geocol",
    "partition_iterations",
    "run_inspector",
    "run_executor",
    "IrregularProgram",
    "AdaptiveExecutor",
    "get_partitioner",
    "available_partitioners",
    "CheckpointError",
    "FaultPlan",
    "GuardError",
    "InvariantViolation",
    "PatchAborted",
    "PatchError",
    "PatchVerifyFailed",
    "load_checkpoint",
    "restore_checkpoint",
    "save_checkpoint",
    "verify_product",
    "__version__",
]
