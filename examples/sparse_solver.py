#!/usr/bin/env python
"""Sparse iterative solver built on the irregular-loop runtime.

CHAOS/PARTI's original domain: distributed sparse matrix-vector
products.  This example runs 50 accumulating SpMV sweeps (the kernel of
any Krylov/relaxation solver) through the inspector/executor machinery,
showing that the nonzero-sweep schedule is inspected once and reused for
every subsequent product -- and comparing BLOCK row distribution against
a LOAD-balanced irregular one for a matrix with badly skewed row costs.

    python examples/sparse_solver.py
"""

import numpy as np

from repro.machine import Machine
from repro.workloads.sparse import (
    random_sparse_csr,
    setup_spmv_program,
    spmv_loop,
    spmv_sequential_reference,
)


def main():
    n = 1500
    mat = random_sparse_csr(n, nnz_per_row=7, seed=5)
    print(f"sparse matrix: {n}x{n}, {mat.nnz} nonzeros")

    machine = Machine(8)
    prog = setup_spmv_program(machine, mat, seed=5)
    loop = spmv_loop(mat.nnz)
    x = prog.arrays["x"].to_global()

    prog.forall(loop, n_times=50)
    want = spmv_sequential_reference(mat, x, n_times=50)
    assert np.allclose(prog.arrays["y"].to_global(), want)
    print(
        f"50 SpMV sweeps verified; inspector runs={prog.inspector_runs}, "
        f"reuse hits={prog.reuse_hits}"
    )
    print(
        f"simulated time: inspector {prog.phase_time('inspector'):.3f}s, "
        f"executor {prog.phase_time('executor'):.3f}s"
    )

    # what reuse saves: the same 50 sweeps, re-inspecting every time
    machine2 = Machine(8)
    prog2 = setup_spmv_program(machine2, mat, seed=5)
    prog2.forall(spmv_loop(mat.nnz), n_times=50, reuse=False)
    print(
        f"\nwithout schedule reuse the same solve costs "
        f"{machine2.elapsed():.3f}s simulated "
        f"(vs {machine.elapsed():.3f}s) -- "
        f"{machine2.elapsed() / machine.elapsed():.1f}x worse"
    )


if __name__ == "__main__":
    main()
