#!/usr/bin/env python
"""Runtime compilation: execute the paper's Figure 4 directive program.

The source below is (modulo comment syntax) the program of the paper's
Figure 4 -- CONSTRUCT a GeoCoL graph from the mesh's LINK information,
partition it with recursive spectral bisection, REDISTRIBUTE, and sweep
the edges -- plus the Figure 5 geometric variant using RCB.  Both are
parsed, analyzed, lowered to CHAOS runtime calls, and executed on the
simulated machine.

    python examples/lang_program.py
"""

import numpy as np

from repro.lang import run_program
from repro.machine import Machine
from repro.workloads import generate_mesh
from repro.workloads.euler import euler_sequential_reference

FIGURE4 = """
C  The paper's Figure 4: implicit mapping via connectivity (RSB)
      REAL*8 x(nnode), y(nnode)
      INTEGER end_pt1(nedge), end_pt2(nedge)
      DYNAMIC, DECOMPOSITION reg(nnode), reg2(nedge)
      DISTRIBUTE reg(BLOCK), reg2(BLOCK)
      ALIGN x, y WITH reg
      ALIGN end_pt1, end_pt2 WITH reg2
C$    CONSTRUCT G (nnode, LINK(nedge, end_pt1, end_pt2))
C$    SET distfmt BY PARTITIONING G USING RSB
C$    REDISTRIBUTE reg(distfmt)
      DO t = 1, 100
        FORALL i = 1, nedge
          REDUCE (ADD, y(end_pt1(i)), 0.5 * (x(end_pt1(i)) * x(end_pt1(i)) - x(end_pt2(i)) * x(end_pt2(i))) + 0.1 * (x(end_pt2(i)) - x(end_pt1(i))))
          REDUCE (ADD, y(end_pt2(i)), 0.5 * (x(end_pt2(i)) * x(end_pt2(i)) - x(end_pt1(i)) * x(end_pt1(i))) + 0.1 * (x(end_pt1(i)) - x(end_pt2(i))))
        END FORALL
      END DO
"""

FIGURE5 = """
C  The paper's Figure 5: implicit mapping via geometry (RCB)
      REAL*8 x(nnode), y(nnode), xc(nnode), yc(nnode), zc(nnode)
      INTEGER end_pt1(nedge), end_pt2(nedge)
      DYNAMIC, DECOMPOSITION reg(nnode), reg2(nedge)
      DISTRIBUTE reg(BLOCK), reg2(BLOCK)
      ALIGN x, y, xc, yc, zc WITH reg
      ALIGN end_pt1, end_pt2 WITH reg2
C$    CONSTRUCT G (nnode, GEOMETRY(3, xc, yc, zc))
C$    SET distfmt BY PARTITIONING G USING RCB
C$    REDISTRIBUTE reg(distfmt)
      DO t = 1, 100
        FORALL i = 1, nedge
          REDUCE (ADD, y(end_pt1(i)), 0.5 * (x(end_pt1(i)) * x(end_pt1(i)) - x(end_pt2(i)) * x(end_pt2(i))) + 0.1 * (x(end_pt2(i)) - x(end_pt1(i))))
          REDUCE (ADD, y(end_pt2(i)), 0.5 * (x(end_pt2(i)) * x(end_pt2(i)) - x(end_pt1(i)) * x(end_pt1(i))) + 0.1 * (x(end_pt1(i)) - x(end_pt2(i))))
        END FORALL
      END DO
"""


def run(source, label, mesh, x):
    machine = Machine(16)
    data = {
        "X": x,
        "END_PT1": mesh.edges[0],
        "END_PT2": mesh.edges[1],
        "XC": mesh.coords[0],
        "YC": mesh.coords[1],
        "ZC": mesh.coords[2],
    }
    cp = run_program(
        source,
        machine,
        sizes={"NNODE": mesh.n_nodes, "NEDGE": mesh.n_edges},
        data=data,
    )
    want = euler_sequential_reference(x, mesh.edges, n_times=100)
    assert np.allclose(cp.array_global("Y"), want)
    print(f"{label}:")
    print(f"  verified against NumPy ({mesh.n_edges} edges x 100 sweeps)")
    print(
        f"  inspector runs: {cp.program.inspector_runs}, "
        f"schedule reuse hits: {cp.program.reuse_hits}"
    )
    for phase in ("graph_generation", "partition", "remap", "inspector", "executor"):
        print(f"  {phase:>17}: {cp.program.phase_time(phase):9.3f}s")
    print(f"  {'machine total':>17}: {machine.elapsed():9.3f}s\n")


def main():
    mesh = generate_mesh(1500, seed=11)
    x = np.random.default_rng(0).normal(size=mesh.n_nodes)
    print(
        f"mesh: {mesh.n_nodes} nodes / {mesh.n_edges} edges, "
        "16 simulated processors\n"
    )
    run(FIGURE4, "Figure 4 (LINK -> RSB)", mesh, x)
    run(FIGURE5, "Figure 5 (GEOMETRY -> RCB)", mesh, x)


if __name__ == "__main__":
    main()
