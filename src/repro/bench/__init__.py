"""Benchmark harness regenerating the paper's tables and figures.

:mod:`~repro.bench.harness` runs one experiment (workload x processor
count x partitioner x compiler/hand path x reuse mode) on a fresh
simulated machine and reports per-phase simulated times;
:mod:`~repro.bench.tables` assembles those runs into the paper's Tables
1-4 and the Figure 2 phase breakdown, with plain-text rendering.

All times are **simulated machine seconds** (iPSC/860 cost model), not
Python wall time; pytest-benchmark wraps the harness only to record how
long the simulation itself takes to run.
"""

from repro.bench.harness import (
    ExperimentResult,
    run_euler_experiment,
    run_md_experiment,
    PHASE_NAMES,
)
from repro.bench.tables import (
    table1_schedule_reuse,
    table2_mapper_coupler,
    table3_rcb_detail,
    table4_block,
    fig2_phase_breakdown,
    render_table,
)

__all__ = [
    "ExperimentResult",
    "run_euler_experiment",
    "run_md_experiment",
    "PHASE_NAMES",
    "table1_schedule_reuse",
    "table2_mapper_coupler",
    "table3_rcb_detail",
    "table4_block",
    "fig2_phase_breakdown",
    "render_table",
]
