"""Parser tests, including the paper's figure programs."""

import pytest

from repro.lang import (
    AlignStmt,
    ArrayIndex,
    AssignStmt,
    BinOp,
    ConstructStmt,
    DecompositionDecl,
    DistributeStmt,
    DoStmt,
    ForallStmt,
    Num,
    ParseError,
    RedistributeStmt,
    ReduceStmt,
    SetStmt,
    TypeDecl,
    Var,
    parse,
)

FIGURE4 = """
REAL*8 x(nnode), y(nnode)
INTEGER end_pt1(nedge), end_pt2(nedge)
DYNAMIC, DECOMPOSITION reg(nnode), reg2(nedge)
DISTRIBUTE reg(BLOCK), reg2(BLOCK)
ALIGN x, y WITH reg
ALIGN end_pt1, end_pt2 WITH reg2
C$ CONSTRUCT G (nnode, LINK(nedge, end_pt1, end_pt2))
C$ SET distfmt BY PARTITIONING G USING RSB
C$ REDISTRIBUTE reg(distfmt)
FORALL i = 1, nedge
  REDUCE (ADD, y(end_pt1(i)), x(end_pt1(i)) * x(end_pt2(i)))
  REDUCE (ADD, y(end_pt2(i)), x(end_pt1(i)) - x(end_pt2(i)))
END FORALL
"""


class TestFigure4:
    def test_statement_sequence(self):
        prog = parse(FIGURE4)
        kinds = [type(s).__name__ for s in prog.statements]
        assert kinds == [
            "TypeDecl",
            "TypeDecl",
            "DecompositionDecl",
            "DistributeStmt",
            "AlignStmt",
            "AlignStmt",
            "ConstructStmt",
            "SetStmt",
            "RedistributeStmt",
            "ForallStmt",
        ]

    def test_declarations(self):
        prog = parse(FIGURE4)
        real = prog.statements[0]
        assert isinstance(real, TypeDecl)
        assert real.type_name == "REAL*8"
        assert [a for a, _ in real.arrays] == ["X", "Y"]

    def test_dynamic_decomposition(self):
        prog = parse(FIGURE4)
        dec = prog.statements[2]
        assert isinstance(dec, DecompositionDecl)
        assert dec.dynamic
        assert [d for d, _ in dec.decomps] == ["REG", "REG2"]

    def test_distribute(self):
        prog = parse(FIGURE4)
        dist = prog.statements[3]
        assert isinstance(dist, DistributeStmt)
        assert dist.targets == [("REG", "BLOCK"), ("REG2", "BLOCK")]

    def test_construct_link(self):
        prog = parse(FIGURE4)
        cons = prog.statements[6]
        assert isinstance(cons, ConstructStmt)
        assert cons.name == "G"
        assert cons.link == ("END_PT1", "END_PT2")
        assert cons.geometry is None

    def test_set(self):
        prog = parse(FIGURE4)
        s = prog.statements[7]
        assert isinstance(s, SetStmt)
        assert (s.target, s.geocol, s.partitioner) == ("DISTFMT", "G", "RSB")

    def test_redistribute(self):
        prog = parse(FIGURE4)
        r = prog.statements[8]
        assert isinstance(r, RedistributeStmt)
        assert (r.decomp, r.fmt) == ("REG", "DISTFMT")

    def test_forall_body(self):
        prog = parse(FIGURE4)
        f = prog.statements[9]
        assert isinstance(f, ForallStmt)
        assert f.var == "I"
        assert len(f.body) == 2
        assert all(isinstance(s, ReduceStmt) for s in f.body)
        assert f.body[0].op == "ADD"
        lhs = f.body[0].lhs
        assert lhs.name == "Y" and isinstance(lhs.index, ArrayIndex)


class TestFigure5Geometry:
    def test_geometry_construct(self):
        src = """
        REAL*8 xc(n), yc(n), zc(n)
        DECOMPOSITION reg(n)
        DISTRIBUTE reg(BLOCK)
        ALIGN xc, yc, zc WITH reg
        C$ CONSTRUCT G (n, GEOMETRY(3, xc, yc, zc))
        C$ SET distfmt BY PARTITIONING G USING RCB
        """
        prog = parse(src)
        cons = [s for s in prog.statements if isinstance(s, ConstructStmt)][0]
        assert cons.geometry == ["XC", "YC", "ZC"]
        s = [st for st in prog.statements if isinstance(st, SetStmt)][0]
        assert s.partitioner == "RCB"

    def test_combined_clauses(self):
        src = """
        REAL*8 xc(n), w(n)
        INTEGER e1(m), e2(m)
        DECOMPOSITION reg(n), reg2(m)
        DISTRIBUTE reg(BLOCK), reg2(BLOCK)
        ALIGN xc, w WITH reg
        ALIGN e1, e2 WITH reg2
        C$ CONSTRUCT G (n, GEOMETRY(1, xc), LOAD(w), LINK(m, e1, e2))
        """
        cons = [s for s in parse(src).statements if isinstance(s, ConstructStmt)][0]
        assert cons.geometry == ["XC"]
        assert cons.load == "W"
        assert cons.link == ("E1", "E2")

    def test_rsb_kl_partitioner_name(self):
        src = """
        INTEGER e1(m), e2(m)
        DECOMPOSITION reg2(m)
        DISTRIBUTE reg2(BLOCK)
        ALIGN e1, e2 WITH reg2
        C$ CONSTRUCT G (m, LINK(m, e1, e2))
        C$ SET fmt BY PARTITIONING G USING RSB+KL
        """
        s = [st for st in parse(src).statements if isinstance(st, SetStmt)][0]
        assert s.partitioner == "RSB+KL"


class TestLoops:
    def test_do_wrapping_forall(self):
        src = """
        REAL*8 x(n), y(n)
        INTEGER ia(n)
        DECOMPOSITION reg(n)
        DISTRIBUTE reg(BLOCK)
        ALIGN x, y, ia WITH reg
        DO t = 1, 100
          FORALL i = 1, n
            REDUCE (ADD, y(ia(i)), x(ia(i)))
          END FORALL
        END DO
        """
        do = [s for s in parse(src).statements if isinstance(s, DoStmt)][0]
        assert isinstance(do.hi, Num) and do.hi.value == 100
        assert len(do.body) == 1 and isinstance(do.body[0], ForallStmt)

    def test_assignment_in_forall(self):
        src = """
        FORALL i = 1, n
          y(ia(i)) = x(ib(i)) + x(ic(i))
        END FORALL
        """
        f = parse(src).statements[0]
        assert isinstance(f.body[0], AssignStmt)
        assert isinstance(f.body[0].expr, BinOp)

    def test_expression_precedence(self):
        src = """
        FORALL i = 1, n
          y(ia(i)) = x(ia(i)) + x(ib(i)) * 2.0
        END FORALL
        """
        expr = parse(src).statements[0].body[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_intrinsic_call(self):
        src = """
        FORALL i = 1, n
          y(ia(i)) = SQRT(x(ia(i)))
        END FORALL
        """
        expr = parse(src).statements[0].body[0].expr
        assert expr.func == "SQRT"

    def test_direct_reference(self):
        src = """
        FORALL i = 1, n
          y(i) = x(ia(i))
        END FORALL
        """
        lhs = parse(src).statements[0].body[0].lhs
        assert isinstance(lhs.index, Var) and lhs.index.name == "I"


class TestErrors:
    def test_empty_forall(self):
        with pytest.raises(ParseError, match="empty FORALL"):
            parse("FORALL i = 1, n\nEND FORALL")

    def test_reduce_bad_op(self):
        src = "FORALL i = 1, n\n REDUCE (XOR, y(ia(i)), x(i))\nEND FORALL"
        with pytest.raises(ParseError, match="expected one of"):
            parse(src)

    def test_missing_paren(self):
        with pytest.raises(ParseError, match="expected"):
            parse("DISTRIBUTE reg(BLOCK")

    def test_unknown_statement(self):
        with pytest.raises(ParseError, match="unknown statement"):
            parse("SCATTER x")

    def test_reduce_target_must_be_ref(self):
        src = "FORALL i = 1, n\n REDUCE (ADD, 3.0, x(i))\nEND FORALL"
        with pytest.raises(ParseError, match="expected an expression|target"):
            parse(src)

    def test_multi_subscript_rejected(self):
        src = "FORALL i = 1, n\n y(a(i), b(i)) = x(i)\nEND FORALL"
        with pytest.raises(ParseError, match="one subscript"):
            parse(src)
