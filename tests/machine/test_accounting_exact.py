"""Exact time-accounting checks: simulated clocks must equal hand-derived
alpha-beta arithmetic for small, fully-analyzable scenarios.  Every table
in EXPERIMENTS.md rests on this bookkeeping."""

import numpy as np
import pytest

from repro.chaos import GhostBuffers, build_translation_table, localize
from repro.chaos.costs import DEFAULT_COSTS
from repro.distribution import BlockDistribution, DistArray
from repro.machine import Machine
from repro.machine.costmodel import CostModel


def flat_model(**kw):
    """A cost model where every term is separately controllable."""
    defaults = dict(
        alpha=1.0, beta=0.0, hop_cost=0.0, flop_time=0.0, iop_time=0.0, mem_time=0.0
    )
    defaults.update(kw)
    return CostModel(**defaults)


class TestPointToPoint:
    def test_single_message_exact(self):
        m = Machine(2, cost_model=flat_model(alpha=2.0, beta=0.5))
        m.send(0, 1, 10)
        # t = alpha + beta*bytes = 2 + 5
        assert m.clock(0) == pytest.approx(7.0)
        assert m.clock(1) == pytest.approx(7.0)

    def test_hop_surcharge_exact(self):
        m = Machine(8, cost_model=flat_model(alpha=1.0, hop_cost=0.25))
        m.send(0, 7, 0)  # 3 hops on the hypercube
        assert m.clock(0) == pytest.approx(1.0 + 2 * 0.25)

    def test_exchange_sums_per_endpoint(self):
        m = Machine(4, cost_model=flat_model(alpha=1.0))
        m.exchange({(0, 1): 4, (0, 2): 4, (3, 0): 4})
        # proc 0: two sends + one receive = 3 message times
        assert m.clock(0) == pytest.approx(3.0)
        # proc 3: one send
        assert m.clock(3) == pytest.approx(1.0)

    def test_compute_charges_exact(self):
        m = Machine(2, cost_model=flat_model(flop_time=0.1, iop_time=0.01, mem_time=0.001))
        m.charge_compute(1, flops=10, iops=20, mem=30)
        assert m.clock(1) == pytest.approx(10 * 0.1 + 20 * 0.01 + 30 * 0.001)


class TestBarrierExact:
    def test_tree_barrier_cost(self):
        m = Machine(8, cost_model=flat_model(alpha=1.0))
        m.charge_compute(5, flops=0)  # clocks all zero
        t = m.barrier()
        # depth = ceil(log2(8)) = 3; up+down sweeps = 2*3 alphas
        assert t == pytest.approx(6.0)

    def test_barrier_from_skewed_clocks(self):
        m = Machine(2, cost_model=flat_model(alpha=1.0, flop_time=1.0))
        m.charge_compute(1, flops=5)
        t = m.barrier()
        assert t == pytest.approx(5 + 2 * 1.0)


class TestGatherAccountingExact:
    def test_one_ghost_element_full_story(self):
        """One off-processor reference: the gather must cost exactly one
        message of itemsize bytes plus the pack/unpack memory walk."""
        model = flat_model(alpha=1.0, beta=0.5, mem_time=0.25)
        m = Machine(2, cost_model=model)
        dist = BlockDistribution(4, 2)
        tt = build_translation_table(m, dist, DEFAULT_COSTS)
        res = localize(
            m, tt, [np.array([3], dtype=np.int64), np.empty(0, dtype=np.int64)]
        )
        arr = DistArray.from_global(m, dist, np.arange(4.0))
        ghosts = GhostBuffers(m, res.schedule, charge=False)
        m.reset()
        res.schedule.gather(arr, ghosts.buffers)
        # pack on proc 1: pack_unpack_mem * 1 mem ops; message 8 bytes;
        # unpack on proc 0: pack_unpack_mem * 1
        msg = 1.0 + 0.5 * 8
        memwalk = DEFAULT_COSTS.pack_unpack_mem * 0.25
        assert m.clock(0) == pytest.approx(msg + memwalk)
        assert m.clock(1) == pytest.approx(msg + memwalk)
        assert ghosts.buf(0)[0] == 3.0

    def test_empty_schedule_costs_nothing(self):
        m = Machine(2, cost_model=flat_model(alpha=1.0))
        dist = BlockDistribution(4, 2)
        tt = build_translation_table(m, dist, DEFAULT_COSTS)
        res = localize(
            m,
            tt,
            [np.array([0], dtype=np.int64), np.array([2], dtype=np.int64)],
        )  # all local
        arr = DistArray.from_global(m, dist, np.arange(4.0))
        ghosts = GhostBuffers(m, res.schedule, charge=False)
        m.reset()
        res.schedule.gather(arr, ghosts.buffers)
        assert m.elapsed() == 0.0


class TestDeterministicTotals:
    def test_clock_equals_sum_of_charged_terms(self):
        """Counters and clock stay consistent under a mixed workload."""
        model = CostModel(
            alpha=1e-4, beta=1e-6, hop_cost=0.0, flop_time=1e-6,
            iop_time=1e-7, mem_time=1e-8,
        )
        m = Machine(4, cost_model=model)
        m.charge_compute(0, flops=100, iops=200, mem=300)
        m.send(0, 1, 50)
        st = m.procs[0].stats
        expected = (
            100 * 1e-6 + 200 * 1e-7 + 300 * 1e-8 + (1e-4 + 50 * 1e-6)
        )
        assert st.clock == pytest.approx(expected)
        assert st.flops == 100 and st.iops == 200 and st.mem_ops == 300
        assert st.bytes_sent == 50
