"""CHAOS runtime library (a faithful superset of PARTI, in Python).

The paper (Section 2.1, Section 8) describes CHAOS as a portable,
compiler-independent runtime whose procedures

* support static and dynamic distributed-array partitioning,
* partition loop iterations and indirection arrays,
* remap arrays from one distribution to another, and
* carry out index translation, buffer allocation and communication
  schedule generation.

This package implements all four groups against the simulated machine:

``ttable``
    Translation tables mapping global indices of irregularly distributed
    arrays to ``(owner, local offset)``; replicated and distributed
    (paged) variants, the latter charging dereference communication.
``schedule``
    ``CommSchedule`` -- the paper's *communication schedule*: per
    processor-pair send lists and ghost-buffer placement, with
    ``gather`` / ``scatter`` / ``scatter_op`` executors.
``localize``
    The PARTI *localize* primitive at the heart of every inspector:
    translate a reference list, deduplicate off-processor accesses,
    assign ghost-buffer slots, and build the communication schedule.
``gather_scatter``
    Convenience wrappers applying schedules to ``DistArray`` objects.
``remap``
    Distribution-to-distribution array remapping (Phase C of Figure 2).
``buffers``
    Ghost-buffer allocation and bookkeeping.
``costs``
    The operation-count constants CHAOS procedures charge; documented
    and centralized so the calibration ablation can perturb them.
"""

from repro.chaos.costs import ChaosCosts, DEFAULT_COSTS
from repro.chaos.ttable import (
    TranslationTable,
    RegularTranslationTable,
    ReplicatedTranslationTable,
    DistributedTranslationTable,
    build_translation_table,
)
from repro.chaos.schedule import CommSchedule
from repro.chaos.localize import LocalizeResult, localize
from repro.chaos.buffers import GhostBuffers
from repro.chaos.gather_scatter import (
    gather,
    scatter,
    scatter_add,
    scatter_op,
    REDUCTION_OPS,
)
from repro.chaos.remap import RemapSchedule, build_remap_schedule, remap_array, remap_arrays

__all__ = [
    "ChaosCosts",
    "DEFAULT_COSTS",
    "TranslationTable",
    "RegularTranslationTable",
    "ReplicatedTranslationTable",
    "DistributedTranslationTable",
    "build_translation_table",
    "CommSchedule",
    "LocalizeResult",
    "localize",
    "GhostBuffers",
    "gather",
    "scatter",
    "scatter_add",
    "scatter_op",
    "REDUCTION_OPS",
    "RemapSchedule",
    "build_remap_schedule",
    "remap_array",
    "remap_arrays",
]
