"""Deriving GeoCoL LOAD weights from loop structure (Section 4.1.1).

"Vertices may also be assigned weights to represent estimated
computational costs. [...] One way of deriving weights is to make the
implicit assumption that an owner-computes rule will be used to
partition work.  Under this assumption, computational cost associated
with executing a statement will be attributed to the processor owning a
left hand side array reference.  This results in a graph with unit
weights in the first loop in Figure 1.  The weight associated with a
vertex in the second loop would be proportional to the degree of the
vertex."

``derive_loop_weights`` implements exactly that: for every statement,
each iteration's statement cost (its declared flops) is attributed to
the element its left-hand side references, giving unit weights for L1
(one write per target) and degree-proportional weights for L2.
"""

from __future__ import annotations

import numpy as np

from repro.core.forall import ForallLoop
from repro.distribution.distarray import DistArray


def derive_loop_weights(
    loop: ForallLoop,
    arrays: dict[str, DistArray],
    n_vertices: int,
    target_array: str | None = None,
) -> np.ndarray:
    """Estimated per-element computational load for a loop.

    Parameters
    ----------
    loop:
        The FORALL loop whose work is being estimated.
    arrays:
        Bindings for the loop's indirection arrays.
    n_vertices:
        Size of the GeoCoL vertex set (= the data decomposition size).
    target_array:
        Restrict attribution to statements writing this array (defaults
        to all statements; pass the array being partitioned when a loop
        writes several).

    Returns the LOAD weight vector: element i's weight is the summed
    flops of every statement execution whose left-hand side lands on i.
    """
    weights = np.zeros(n_vertices, dtype=np.float64)
    n = loop.n_iterations
    direct = None
    for stmt in loop.statements:
        lhs = stmt.lhs
        if target_array is not None and lhs.array != target_array:
            continue
        if lhs.index is None:
            if direct is None:
                direct = np.arange(n, dtype=np.int64)
            targets = direct
        else:
            ind = arrays.get(lhs.index)
            if ind is None:
                raise KeyError(
                    f"loop {loop.name!r} indirection array {lhs.index!r} is "
                    "not bound"
                )
            if ind.size != n:
                raise ValueError(
                    f"indirection array {lhs.index!r} has size {ind.size}, "
                    f"loop iterates {n}"
                )
            targets = np.asarray(ind.global_view(), dtype=np.int64)
        if targets.size and (targets.min() < 0 or targets.max() >= n_vertices):
            raise IndexError(
                f"loop {loop.name!r} writes outside [0, {n_vertices})"
            )
        np.add.at(weights, targets, float(stmt.flops))
    return weights
