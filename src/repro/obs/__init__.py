"""repro.obs -- unified tracing, metrics, and profiling.

The paper's whole argument is phase-level accounting (inspector vs.
executor vs. remap, reuse savings); this package gives the *host* side
the same first-class treatment the simulated machine has always had.

Layout
------
* :mod:`~repro.obs.tracer` -- ``Tracer`` / ``NullTracer``: span context
  managers over ``perf_counter_ns``, named counters, instants, a
  bounded buffer.  Dependency-free; the machine layer imports it.
* :mod:`~repro.obs.events` -- ``EventBus`` + ``EventLogView``: the one
  structured-event stream behind ``program.guard_events``,
  ``adapt.fallback_log``, and serve lifecycle events (all three are now
  list-shaped views over bus categories).
* :mod:`~repro.obs.metrics` -- ``MetricsSnapshot``: host span
  aggregates + simulated phase/counter numbers + event counts + cache
  stats in one JSON-ready object.
* :mod:`~repro.obs.export` / :mod:`~repro.obs.report` -- JSONL and
  Chrome/Perfetto ``trace_event`` exporters, ``load_trace``
  round-tripping, and the ``python -m repro.obs report`` renderer.

Enabling
--------
Tracing is off by default.  Turn it on per program
(``IrregularProgram(..., obs="on")``), per executor
(``AdaptiveExecutor(prog, obs="on")``), per service
(``SimulationService(obs="on")``), or globally via ``REPRO_OBS=on``.
The tracer lives on the machine (``machine.obs``), so every layer that
holds a machine reference is instrumented without signature churn.

Overhead contract
-----------------
* **off**: ``machine.obs`` is the shared stateless ``NULL_TRACER``;
  each instrumented seam costs one attribute load and one no-op call
  (guarded by ``obs.enabled`` on per-statement hot paths).  Measured
  wall overhead must stay unmeasurable (<2%).
* **on**: spans go into a bounded buffer (default 1M records; overflow
  increments ``dropped``, never grows memory).  CI's overhead smoke
  requires P=64 simspeed with obs on to stay within 10% wall of off.
* **always**: tracing never touches the simulated machine.  No span,
  counter, or event may charge a clock or counter -- simulated numbers
  are bit-identical with obs on and off, gated by tests
  (P=256 ``simulated_total`` 15.573867588571373) and by the
  ``check_regression.py`` exact-match contract.
"""

from .events import EventBus, EventLogView
from .export import export_chrome, export_jsonl, export_trace, load_trace
from .metrics import MetricsSnapshot, aggregate_spans
from .report import render, report, summarize
from .tracer import NULL_TRACER, NullTracer, SpanRecord, Tracer

__all__ = [
    "EventBus",
    "EventLogView",
    "MetricsSnapshot",
    "NULL_TRACER",
    "NullTracer",
    "SpanRecord",
    "Tracer",
    "aggregate_spans",
    "export_chrome",
    "export_jsonl",
    "export_trace",
    "load_trace",
    "render",
    "report",
    "summarize",
]
