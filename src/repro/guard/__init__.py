"""repro.guard: verification and recovery substrate for schedule reuse.

Four layers (see the module docstrings for contracts and details):

* :mod:`repro.guard.errors` -- the typed failure hierarchy recovery
  paths catch (never blanket ``Exception``);
* :mod:`repro.guard.invariants` -- ``off``/``cheap``/``full`` structural
  and content checkers for schedules, ghost buffers, iteration
  partitions, adapt slot bookkeeping, and gathered data;
* :mod:`repro.guard.faults` -- seeded deterministic fault injection
  (corrupt/drop/duplicate wire data, flipped schedule slots, stalled
  processors) so the recovery paths are testable;
* :mod:`repro.guard.checkpoint` -- versioned checkpoint/restore of a
  program's saved products, adapt state, and machine counters for
  bit-identical resume of long adaptive campaigns.

Programs select a checking level with ``IrregularProgram(...,
guard="cheap")`` or the ``REPRO_GUARD`` environment variable.
"""

from repro.guard.checkpoint import (
    load_checkpoint,
    previous_checkpoint_path,
    restore_checkpoint,
    save_checkpoint,
)
from repro.guard.errors import (
    CheckpointError,
    GuardError,
    InvariantViolation,
    PatchAborted,
    PatchError,
    PatchVerifyFailed,
)
from repro.guard.faults import FaultPlan, suspended
from repro.guard.invariants import (
    LEVELS,
    check_level,
    content_checksum,
    gather_divergence,
    verify_adapt_state,
    verify_ghosts,
    verify_partition,
    verify_product,
    verify_schedule,
)

__all__ = [
    "CheckpointError",
    "FaultPlan",
    "GuardError",
    "InvariantViolation",
    "LEVELS",
    "PatchAborted",
    "PatchError",
    "PatchVerifyFailed",
    "check_level",
    "content_checksum",
    "gather_divergence",
    "load_checkpoint",
    "previous_checkpoint_path",
    "restore_checkpoint",
    "save_checkpoint",
    "suspended",
    "verify_adapt_state",
    "verify_ghosts",
    "verify_partition",
    "verify_product",
    "verify_schedule",
]
