"""Patched remap schedules: delta-built, bit-identical to full rebuild."""

import numpy as np
import pytest

from repro.chaos.remap import (
    build_remap_schedule,
    patch_remap_schedule,
    remap_arrays,
    remap_arrays_incremental,
)
from repro.distribution import DistArray, IrregularDistribution, repartition_stable
from repro.distribution.irregular import RebalancePlan
from repro.machine import Machine

N, P = 80, 4


def make(seed=0):
    rng = np.random.default_rng(seed)
    dist = IrregularDistribution(rng.integers(0, P, size=N), P)
    k = 12
    move_g = np.sort(rng.choice(N, size=k, replace=False))
    move_to = rng.integers(0, P, size=k)
    new_dist, plan = repartition_stable(dist, move_g, move_to)
    return rng, dist, new_dist, plan


class TestPatchedRemapOracle:
    def test_array_content_matches_full_rebuild(self):
        rng, dist, new_dist, plan = make(3)
        vals = rng.normal(size=N)
        m_full, m_inc = Machine(P), Machine(P)
        a_full = DistArray.from_global(m_full, dist, vals)
        a_inc = DistArray.from_global(m_inc, dist, vals)
        remap_arrays([a_full], new_dist)
        remap_arrays_incremental([a_inc], new_dist, plan)
        assert np.array_equal(a_full.to_global(), a_inc.to_global())
        # identical layouts all the way down to flat backing positions
        assert np.array_equal(a_full.backing_ro, a_inc.backing_ro)

    def test_patched_build_charges_less_than_full(self):
        rng, dist, new_dist, plan = make(4)
        m_full, m_inc = Machine(P), Machine(P)
        build_remap_schedule(m_full, dist, new_dist)
        patch_remap_schedule(m_inc, dist, new_dist, plan)
        assert m_inc.elapsed() < m_full.elapsed()

    def test_carry_is_free_apply_charges_scale_with_delta(self):
        rng, dist, new_dist, plan = make(5)
        vals = rng.normal(size=N)
        m_full, m_inc = Machine(P), Machine(P)
        a_full = DistArray.from_global(m_full, dist, vals)
        a_inc = DistArray.from_global(m_inc, dist, vals)
        s_full = build_remap_schedule(m_full, dist, new_dist)
        s_inc = patch_remap_schedule(m_inc, dist, new_dist, plan)
        c_full, c_inc = m_full.elapsed(), m_inc.elapsed()
        s_full.apply(a_full)
        s_inc.apply(a_inc)
        # full apply pays pack/unpack for all N elements; patched apply
        # only for moved + repacked -- carried elements never leave
        # their slots, so they cost nothing
        touched = plan.moved.size + plan.repacked.size
        assert touched < N
        assert int(s_inc.pair_counts.sum()) == touched
        assert int(s_full.pair_counts.sum()) == N
        assert m_inc.elapsed() - c_inc < m_full.elapsed() - c_full

    def test_moved_element_count_matches_plan(self):
        _, dist, new_dist, plan = make(6)
        m = Machine(P)
        sched = patch_remap_schedule(m, dist, new_dist, plan)
        assert sched.element_count() == plan.moved.size

    def test_empty_delta_moves_nothing(self):
        rng = np.random.default_rng(7)
        dist = IrregularDistribution(rng.integers(0, P, size=N), P)
        new_dist, plan = repartition_stable(dist, [], [])
        m = Machine(P)
        vals = rng.normal(size=N)
        arr = DistArray.from_global(m, dist, vals)
        sched = patch_remap_schedule(m, dist, new_dist, plan)
        sched.apply(arr)
        assert sched.element_count() == 0
        assert np.array_equal(arr.to_global(), vals)

    def test_rejects_repacked_that_changes_processor(self):
        _, dist, new_dist, plan = make(8)
        assert plan.moved.size
        bogus = RebalancePlan(
            moved=plan.moved[:-1], repacked=plan.moved[-1:]
        )
        m = Machine(P)
        with pytest.raises(ValueError, match="keep their processor"):
            patch_remap_schedule(m, dist, new_dist, bogus)

    def test_stale_schedule_rejected(self):
        rng, dist, new_dist, plan = make(9)
        m = Machine(P)
        arr = DistArray.from_global(m, new_dist, rng.normal(size=N))
        sched = patch_remap_schedule(m, dist, new_dist, plan)
        with pytest.raises(ValueError, match="stale"):
            sched.apply(arr)

    def test_shared_schedule_across_arrays(self):
        rng, dist, new_dist, plan = make(10)
        m = Machine(P)
        vals = [rng.normal(size=N) for _ in range(3)]
        arrs = [
            DistArray.from_global(m, dist, v, name=f"a{i}")
            for i, v in enumerate(vals)
        ]
        remap_arrays_incremental(arrs, new_dist, plan)
        for arr, v in zip(arrs, vals):
            assert np.array_equal(arr.to_global(), v)
            assert arr.distribution is new_dist
