"""Semantic analysis tests: the paper's loop restrictions enforced."""

import pytest

from repro.lang import AnalysisError, analyze, parse


PREAMBLE = """
REAL*8 x(n), y(n)
INTEGER ia(n), ib(n)
DECOMPOSITION reg(n)
DISTRIBUTE reg(BLOCK)
ALIGN x, y, ia, ib WITH reg
"""


def check(body, preamble=PREAMBLE):
    return analyze(parse(preamble + body))


class TestSymbolTables:
    def test_tables_populated(self):
        info = check("")
        assert set(info.arrays) == {"X", "Y", "IA", "IB"}
        assert info.arrays["X"].decomp == "REG"
        assert info.distributed == {"REG": "BLOCK"}

    def test_forall_collected(self):
        info = check("FORALL i = 1, n\n y(ia(i)) = x(ib(i))\nEND FORALL")
        assert len(info.foralls) == 1

    def test_geocol_and_distfmt_tracked(self):
        src = (
            "DYNAMIC, DECOMPOSITION dreg(n)\nDISTRIBUTE dreg(BLOCK)\n"
            "REAL*8 w(n)\nALIGN w WITH dreg\n"
            "C$ CONSTRUCT G (n, LOAD(w))\n"
            "C$ SET fmt BY PARTITIONING G USING LOAD\n"
            "C$ REDISTRIBUTE dreg(fmt)\n"
        )
        info = check(src)
        assert "G" in info.geocols and "FMT" in info.distfmts


class TestDeclarationErrors:
    def test_duplicate_array(self):
        with pytest.raises(AnalysisError, match="declared twice"):
            check("REAL*8 x(n)")

    def test_align_unknown_array(self):
        with pytest.raises(AnalysisError, match="undeclared array"):
            check("ALIGN z WITH reg")

    def test_align_unknown_decomp(self):
        with pytest.raises(AnalysisError, match="undeclared decomposition"):
            check("ALIGN x WITH other")

    def test_distribute_unknown_decomp(self):
        with pytest.raises(AnalysisError, match="undeclared decomposition"):
            check("DISTRIBUTE other(BLOCK)")

    def test_bad_format(self):
        with pytest.raises(AnalysisError, match="unsupported distribution"):
            check("DECOMPOSITION d2(n)\nDISTRIBUTE d2(DIAGONAL)")


class TestForallRestrictions:
    def test_undeclared_array_in_loop(self):
        with pytest.raises(AnalysisError, match="undeclared array"):
            check("FORALL i = 1, n\n z(ia(i)) = x(i)\nEND FORALL")

    def test_two_level_indirection_rejected(self):
        with pytest.raises(AnalysisError, match="single-level"):
            check("FORALL i = 1, n\n y(ia(ib(i))) = x(i)\nEND FORALL")

    def test_non_loop_subscript_rejected(self):
        with pytest.raises(AnalysisError, match="not the loop index"):
            check("FORALL i = 1, n\n y(j) = x(i)\nEND FORALL")

    def test_non_integer_indirection_rejected(self):
        with pytest.raises(AnalysisError, match="must be INTEGER"):
            check("FORALL i = 1, n\n y(x(i)) = x(i)\nEND FORALL")

    def test_self_indexing_rejected(self):
        with pytest.raises(AnalysisError, match="cannot index itself"):
            check("FORALL i = 1, n\n ia(ia(i)) = ib(i)\nEND FORALL")

    def test_bare_loop_var_rejected(self):
        with pytest.raises(AnalysisError, match="bare loop index"):
            check("FORALL i = 1, n\n y(ia(i)) = x(ia(i)) + i\nEND FORALL")

    def test_unaligned_array_rejected(self):
        src = "REAL*8 u(n)\nFORALL i = 1, n\n y(ia(i)) = u(ia(i))\nEND FORALL"
        with pytest.raises(AnalysisError, match="not ALIGNed"):
            check(src)

    def test_scalar_reference_allowed(self):
        info = check("FORALL i = 1, n\n y(ia(i)) = x(ib(i)) * alpha\nEND FORALL")
        assert len(info.foralls) == 1


class TestConstructErrors:
    def test_construct_empty(self):
        # parser-level: CONSTRUCT with no clause
        with pytest.raises(AnalysisError, match="no .*clause"):
            check("C$ CONSTRUCT G (n)")

    def test_construct_unaligned(self):
        with pytest.raises(AnalysisError, match="not ALIGNed"):
            check("REAL*8 q(n)\nC$ CONSTRUCT G (n, GEOMETRY(1, q))")

    def test_set_unknown_geocol(self):
        with pytest.raises(AnalysisError, match="unknown GeoCoL"):
            check("C$ SET fmt BY PARTITIONING H USING RCB")

    def test_redistribute_requires_set(self):
        with pytest.raises(AnalysisError, match="no SET produced"):
            check("C$ REDISTRIBUTE reg(fmt)")

    def test_redistribute_requires_dynamic(self):
        src = (
            "REAL*8 w(n)\nALIGN w WITH reg\n"
            "C$ CONSTRUCT G (n, LOAD(w))\n"
            "C$ SET fmt BY PARTITIONING G USING LOAD\n"
            "C$ REDISTRIBUTE reg(fmt)\n"
        )
        with pytest.raises(AnalysisError, match="not DYNAMIC"):
            check(src)
