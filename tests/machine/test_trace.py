"""Tests for message tracing, including protocol-pattern assertions."""

import numpy as np
import pytest

from repro.chaos import GhostBuffers, build_translation_table, localize
from repro.distribution import BlockDistribution, DistArray, IrregularDistribution
from repro.machine import Machine
from repro.machine.trace import MessageTrace


class TestBasics:
    def test_records_sends(self):
        m = Machine(4)
        with MessageTrace(m) as t:
            m.send(0, 1, 100)
            m.send(2, 3, 50)
        assert t.message_count() == 2
        assert t.total_bytes() == 150

    def test_self_and_zero_messages_ignored(self):
        m = Machine(4)
        with MessageTrace(m) as t:
            m.send(1, 1, 100)
            m.exchange({(0, 1): 0})
        assert t.message_count() == 0

    def test_exchange_recorded(self):
        m = Machine(4)
        with MessageTrace(m) as t:
            m.exchange({(0, 1): 10, (1, 2): 20, (2, 2): 30})
        assert t.pairs() == {(0, 1), (1, 2)}

    def test_detached_after_exit(self):
        m = Machine(4)
        with MessageTrace(m) as t:
            m.send(0, 1, 10)
        m.send(0, 1, 10)  # not traced
        assert t.message_count() == 1

    def test_double_attach_rejected(self):
        m = Machine(4)
        t = MessageTrace(m)
        with t:
            with pytest.raises(RuntimeError, match="already attached"):
                t.__enter__()

    def test_traffic_matrix(self):
        m = Machine(4)
        with MessageTrace(m) as t:
            m.send(0, 3, 100)
            m.send(0, 3, 50)
        mat = t.traffic_matrix()
        assert mat[0, 3] == 150
        assert mat.sum() == 150

    def test_render(self):
        m = Machine(2)
        with MessageTrace(m) as t:
            m.send(0, 1, 4096)
        text = t.render()
        assert "traffic matrix" in text
        assert "4" in text  # 4 KiB


class TestArrayChunkEquivalence:
    """The trace records array chunks; every query must match a naive
    per-message Python accumulation over the same operation sequence."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_trace_matches_naive(self, seed):
        rng = np.random.default_rng(seed)
        n = 8
        m = Machine(n)
        naive_events = []
        with MessageTrace(m) as t:
            for _ in range(30):
                kind = rng.choice(["send", "exchange_arrays", "exchange_dict"])
                if kind == "send":
                    s, d = int(rng.integers(n)), int(rng.integers(n))
                    nb = int(rng.integers(0, 500))
                    m.send(s, d, nb)
                    if s != d and nb > 0:
                        naive_events.append((s, d, nb))
                else:
                    k = int(rng.integers(0, 2 * n))
                    src = rng.integers(0, n, k)
                    dst = rng.integers(0, n, k)
                    nb = rng.integers(0, 300, k)
                    if kind == "exchange_dict":
                        mat = {}
                        for s, d, v in zip(src, dst, nb):
                            mat[(int(s), int(d))] = int(v)
                        m.exchange(mat)
                        pairs = mat.items()
                    else:
                        m.exchange(src=src, dst=dst, nbytes=nb)
                        pairs = [
                            ((int(s), int(d)), int(v))
                            for s, d, v in zip(src, dst, nb)
                        ]
                    for (s, d), v in pairs:
                        if s != d and v > 0:
                            naive_events.append((s, d, v))
        assert [(e.src, e.dst, e.nbytes) for e in t.events] == naive_events
        assert t.message_count() == len(naive_events)
        assert t.total_bytes() == sum(nb for _, _, nb in naive_events)
        assert t.pairs() == {(s, d) for s, d, _ in naive_events}
        expected = np.zeros((n, n), dtype=np.int64)
        for s, d, nb in naive_events:
            expected[s, d] += nb
        np.testing.assert_array_equal(t.traffic_matrix(), expected)

    def test_events_cache_invalidated_by_new_traffic(self):
        m = Machine(2)
        with MessageTrace(m) as t:
            m.send(0, 1, 10)
            first = t.events
            assert len(first) == 1
            m.send(1, 0, 20)
            assert [(e.src, e.dst) for e in t.events] == [(0, 1), (1, 0)]


class TestProtocolPatterns:
    def test_distributed_ttable_request_reply_symmetry(self):
        """Every dereference request message has a matching reply on the
        reverse pair -- the PARTI paged-table protocol."""
        m = Machine(4)
        rng = np.random.default_rng(0)
        dist = IrregularDistribution(rng.integers(0, 4, 64), 4)
        tt = build_translation_table(m, dist, variant="distributed")
        with MessageTrace(m) as t:
            tt.dereference(0, np.arange(64, dtype=np.int64))
        pairs = t.pairs()
        requests = {(a, b) for (a, b) in pairs if a == 0}
        replies = {(b, a) for (a, b) in requests}
        assert replies <= pairs

    def test_gather_traffic_matches_schedule(self):
        """Traced gather bytes equal the schedule's element count times
        the item size."""
        m = Machine(4)
        dist = BlockDistribution(16, 4)
        tt = build_translation_table(m, dist)
        res = localize(
            m,
            tt,
            [np.array([15, 8]), np.array([0]), np.array([]), np.array([4])],
        )
        arr = DistArray.from_global(m, dist, np.arange(16.0))
        ghosts = GhostBuffers(m, res.schedule)
        with MessageTrace(m) as t:
            res.schedule.gather(arr, ghosts.buffers)
        assert t.total_bytes() == res.schedule.element_count() * arr.itemsize
