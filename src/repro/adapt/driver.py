"""Routing: full-inspect / reuse / incremental-patch per time step.

:class:`IncrementalInspector` is the program-facing side of the
subsystem.  ``IrregularProgram`` (with ``incremental=True``) consults it
when the Section 3 reuse check fails:

* a **condition 1/2** failure (a DAD changed -- some array was
  remapped or resized) is unpatchable: saved owners, local offsets and
  schedules are void; the full inspector runs and fresh adapt state is
  captured;
* a **condition 3** failure (indirection *values* may have changed)
  is diffed: if every stale indirection has region information and the
  changed-value fraction is under ``max_change_fraction``, the saved
  product is patched (:func:`~repro.adapt.patch.patch_product`);
  otherwise the full inspector runs.

:class:`AdaptiveExecutor` is a thin driver for adaptive workloads: it
steps a loop, classifies each step (``full`` / ``reuse`` / ``patch``)
and records the simulated inspector cost per step -- what
``benchmarks/bench_table_adapt.py`` reports.
"""

from __future__ import annotations

import numpy as np

from repro.adapt.diff import changed_at, expand_ranges
from repro.adapt.patch import (
    DIFF_IOPS_PER_ELEMENT,
    PatchResult,
    patch_product,
)
from repro.adapt.state import build_adapt_state, charge_state_build
from repro.chaos.ttable import build_translation_table
from repro.core.dad import DAD
from repro.core.forall import ForallLoop
from repro.core.records import InspectorRecord
from repro.core.reuse import ReuseDecision

#: fixed integer ops for deciding whether a reuse failure is patchable
PATCH_CHECK_IOPS = 10.0


class IncrementalInspector:
    """Per-program incremental-inspection state and patch routing."""

    def __init__(self, program, max_change_fraction: float = 0.35):
        if not 0.0 < max_change_fraction <= 1.0:
            raise ValueError(
                f"max_change_fraction must be in (0, 1], got {max_change_fraction}"
            )
        self.program = program
        self.max_change_fraction = max_change_fraction
        self.states: dict[str, object] = {}
        #: stats of the most recent successful patch (bench introspection)
        self.last_patch: PatchResult | None = None
        #: the exception that aborted the most recent patch attempt, if
        #: any -- the driver recovered by falling back to full inspection
        self.last_error: Exception | None = None

    # ------------------------------------------------------------------
    def after_inspect(self, loop: ForallLoop, record: InspectorRecord) -> None:
        """Capture fresh adapt state after a full inspection (charged)."""
        arrays = self.program.arrays
        self.states[loop.name] = build_adapt_state(record.product, arrays)
        charge_state_build(self.program.machine, record.product, arrays)

    # ------------------------------------------------------------------
    def attempt(
        self, loop: ForallLoop, record: InspectorRecord, decision: ReuseDecision
    ):
        """Try to patch after a failed reuse check; ``None`` means the
        caller must run the full inspector."""
        if decision.condition != 3:
            # conditions are checked in order, so condition 3 implies
            # every DAD is intact -- the only patchable failure mode
            return None
        state = self.states.get(loop.name)
        if state is None:
            return None
        machine = self.program.machine
        registry = self.program.registry
        arrays = self.program.arrays
        stale = [
            name
            for name, stamp in record.ind_last_mod.items()
            if registry.last_mod(DAD.of(arrays[name])) != stamp
        ]
        dirty: dict[str, np.ndarray] = {}
        for name in stale:
            ranges = registry.dirty_ranges(
                DAD.of(arrays[name]), since=record.ind_last_mod[name]
            )
            if ranges is None:
                # some write carried no region info: anything may have
                # changed -- fall back to the conservative full inspector
                return None
            dirty[name] = ranges

        with machine.phase("inspector"):
            machine.charge_compute_all(iops=PATCH_CHECK_IOPS)
            # diff: each owner compares its share of the dirty windows
            changed: dict[str, np.ndarray] = {}
            n_changed = 0
            n_tracked = 0
            for name in stale:
                arr = arrays[name]
                n_tracked += arr.size
                pos = expand_ranges(dirty[name])
                if pos.size:
                    # every owner compares its share of the dirty window
                    owners = np.asarray(arr.distribution.owner(pos), dtype=np.int64)
                    machine.charge_compute_all(
                        iops=DIFF_IOPS_PER_ELEMENT
                        * np.bincount(owners, minlength=machine.n_procs).astype(
                            np.float64
                        )
                    )
                cur = np.asarray(arr.global_view(), dtype=np.int64)
                chg = changed_at(state.snapshots[name], cur, pos)
                changed[name] = chg
                n_changed += int(chg.size)
            if n_tracked and n_changed > self.max_change_fraction * n_tracked:
                # too much churn: a full inspection is the better deal
                # (the diff work above was the price of finding out)
                return None
            self.last_error = None
            try:
                result = patch_product(
                    machine,
                    record.product,
                    arrays,
                    state,
                    changed,
                    self._ttables_for(record),
                    costs=self.program.costs,
                )
            except Exception as exc:
                # patch_product keeps state consistent on failure (its
                # slot spaces persist only after every group succeeds),
                # so the conservative full inspector is a safe recovery:
                # drop this loop's state (rebuilt after the full run)
                # and report the failure through last_error
                self.states.pop(loop.name, None)
                self.last_error = exc
                return None
        self.last_patch = result
        record.product = result.product
        record.ind_last_mod = {
            name: registry.last_mod(DAD.of(arrays[name]))
            for name in record.ind_last_mod
        }
        return result.product

    # ------------------------------------------------------------------
    def _ttables_for(self, record: InspectorRecord) -> dict:
        """The program's translation-table cache, topped up defensively.

        Tables were built (and cached) by the full inspection and the
        distribution signatures are unchanged, so this is normally a
        pure lookup.
        """
        prog = self.program
        for name in record.data_dads:
            arr = prog.arrays[name]
            tkey = (name, arr.distribution.signature())
            if tkey not in prog.ttables:
                prog.ttables[tkey] = build_translation_table(
                    prog.machine, arr.distribution, prog.costs, prog.ttable_variant
                )
        return prog.ttables


class AdaptiveExecutor:
    """Step-wise driver for one loop of an adaptive computation.

    Each :meth:`step` runs one sweep through the program's FORALL path
    and classifies how its inspection was satisfied: a full inspector
    run, a straight reuse hit, or an incremental patch.  ``history``
    keeps per-step ``(mode, simulated inspector seconds)`` so adaptive
    benches can attribute inspector cost to adaptation events.
    """

    def __init__(self, program, loop: ForallLoop):
        self.program = program
        self.loop = loop
        self.history: list[dict] = []

    def step(self) -> str:
        prog = self.program
        machine = prog.machine
        before = (
            prog.inspector_runs,
            prog.patch_hits,
            machine.phase_time("inspector"),
        )
        prog.forall(self.loop, n_times=1)
        if prog.inspector_runs > before[0]:
            mode = "full"
        elif prog.patch_hits > before[1]:
            mode = "patch"
        else:
            mode = "reuse"
        self.history.append(
            {
                "mode": mode,
                "inspector_time": machine.phase_time("inspector") - before[2],
            }
        )
        return mode

    def run(self, n_steps: int) -> list[str]:
        return [self.step() for _ in range(n_steps)]

    def mode_counts(self) -> dict[str, int]:
        out = {"full": 0, "reuse": 0, "patch": 0}
        for rec in self.history:
            out[rec["mode"]] += 1
        return out

    def inspector_time(self, mode: str | None = None) -> float:
        return sum(
            rec["inspector_time"]
            for rec in self.history
            if mode is None or rec["mode"] == mode
        )
