"""Tests for loop-iteration partitioning."""

import numpy as np
import pytest

from repro.core import ArrayRef, Assign, ForallLoop, Reduce, partition_iterations
from repro.distribution import BlockDistribution, DistArray, IrregularDistribution
from repro.machine import Machine


@pytest.fixture
def m4():
    return Machine(4)


def setup_arrays(m, n_data=8, n_iter=8, ia=None, ib=None):
    arrays = {
        "x": DistArray.from_global(
            m, BlockDistribution(n_data, 4), np.arange(float(n_data))
        ),
        "y": DistArray.from_global(
            m, BlockDistribution(n_data, 4), np.zeros(n_data)
        ),
    }
    if ia is not None:
        arrays["ia"] = DistArray.from_global(
            m, BlockDistribution(n_iter, 4), np.asarray(ia, dtype=np.int64)
        )
    if ib is not None:
        arrays["ib"] = DistArray.from_global(
            m, BlockDistribution(n_iter, 4), np.asarray(ib, dtype=np.int64)
        )
    return arrays


class TestAlmostOwner:
    def test_majority_vote(self, m4):
        # all three refs of iteration i point at elements owned by proc 3
        ia = [6] * 8  # owner 3 under block(8, 4)
        ib = [7] * 8
        arrays = setup_arrays(m4, ia=ia, ib=ib)
        loop = ForallLoop(
            "L",
            8,
            [
                Reduce(
                    "add",
                    ArrayRef("y", "ia"),
                    lambda a: a,
                    (ArrayRef("x", "ib"),),
                )
            ],
        )
        part = partition_iterations(m4, loop, arrays)
        assert part.counts() == [0, 0, 0, 8]

    def test_tie_goes_to_lowest_processor(self, m4):
        # iteration refs split evenly between procs 0 and 3
        ia = [0] * 8  # proc 0
        ib = [7] * 8  # proc 3
        arrays = setup_arrays(m4, ia=ia, ib=ib)
        loop = ForallLoop(
            "L",
            8,
            [Assign(ArrayRef("y", "ia"), lambda a: a, (ArrayRef("x", "ib"),))],
        )
        part = partition_iterations(m4, loop, arrays)
        assert part.counts()[0] == 8

    def test_all_iterations_covered_exactly_once(self, m4):
        rng = np.random.default_rng(3)
        ia = rng.integers(0, 8, size=8)
        ib = rng.integers(0, 8, size=8)
        arrays = setup_arrays(m4, ia=ia, ib=ib)
        loop = ForallLoop(
            "L",
            8,
            [Assign(ArrayRef("y", "ia"), lambda a: a, (ArrayRef("x", "ib"),))],
        )
        part = partition_iterations(m4, loop, arrays)
        assert sorted(np.concatenate(part.iters).tolist()) == list(range(8))
        assert part.owner_of().size == 8

    def test_direct_refs_follow_data_distribution(self, m4):
        arrays = setup_arrays(m4)
        loop = ForallLoop(
            "L", 8, [Assign(ArrayRef("y"), lambda a: a * 2, (ArrayRef("x"),))]
        )
        part = partition_iterations(m4, loop, arrays)
        # direct references: iteration i lives with element i
        assert part.counts() == [2, 2, 2, 2]


class TestOwnerComputes:
    def test_follows_lhs_owner(self, m4):
        ia = [1] * 8  # proc 0 owns element 1
        ib = [7] * 8
        arrays = setup_arrays(m4, ia=ia, ib=ib)
        loop = ForallLoop(
            "L",
            8,
            [Assign(ArrayRef("y", "ia"), lambda a: a, (ArrayRef("x", "ib"),))],
        )
        part = partition_iterations(m4, loop, arrays, method="owner_computes")
        assert part.counts()[0] == 8

    def test_unknown_method(self, m4):
        arrays = setup_arrays(m4)
        loop = ForallLoop(
            "L", 8, [Assign(ArrayRef("y"), lambda a: a, (ArrayRef("x"),))]
        )
        with pytest.raises(ValueError, match="unknown iteration"):
            partition_iterations(m4, loop, arrays, method="greedy")


class TestCostsAndEdgeCases:
    def test_charges_machine(self, m4):
        arrays = setup_arrays(m4, ia=[0] * 8, ib=[7] * 8)
        loop = ForallLoop(
            "L", 8, [Assign(ArrayRef("y", "ia"), lambda a: a, (ArrayRef("x", "ib"),))]
        )
        partition_iterations(m4, loop, arrays)
        assert m4.elapsed() > 0

    def test_zero_iterations(self, m4):
        arrays = setup_arrays(m4)
        loop = ForallLoop(
            "L", 0, [Assign(ArrayRef("y"), lambda a: a, (ArrayRef("x"),))]
        )
        # zero-length loops still need a valid (empty) partition
        loop.n_iterations = 0
        part = partition_iterations(m4, loop, arrays)
        assert part.counts() == [0, 0, 0, 0]

    def test_size_mismatch_detected(self, m4):
        arrays = setup_arrays(m4, ia=[0] * 8)
        loop = ForallLoop(
            "L", 5, [Assign(ArrayRef("y", "ia"), lambda a: a, (ArrayRef("x"),))]
        )
        with pytest.raises(ValueError, match="iterates 5"):
            partition_iterations(m4, loop, arrays)

    def test_irregular_data_distribution(self, m4):
        owners = np.array([3, 3, 3, 3, 0, 0, 0, 0])
        arrays = {
            "x": DistArray.from_global(
                m4, IrregularDistribution(owners, 4), np.arange(8.0)
            ),
            "y": DistArray.from_global(
                m4, IrregularDistribution(owners, 4), np.zeros(8)
            ),
            "ia": DistArray.from_global(
                m4, BlockDistribution(8, 4), np.arange(8, dtype=np.int64)
            ),
        }
        loop = ForallLoop(
            "L",
            8,
            [Reduce("add", ArrayRef("y", "ia"), lambda a: a, (ArrayRef("x", "ia"),))],
        )
        part = partition_iterations(m4, loop, arrays)
        # iterations follow the irregular owners of their targets
        assert part.counts() == [4, 0, 0, 4]
