"""Exporter round-trips and report rendering.

JSONL must parse back to exactly what the tracer held; the Chrome
export must be schema-valid ``trace_event`` JSON that Perfetto accepts
and that :func:`load_trace` normalizes to the same logical content.
"""

import json

from repro.obs import (
    EventBus,
    Tracer,
    export_chrome,
    export_jsonl,
    export_trace,
    load_trace,
    render,
    summarize,
)
import pytest


def make_tracer():
    tr = Tracer()
    with tr.span("inspect", loop="L2"):
        with tr.span("localize.dereference", n_refs=100):
            pass
    with tr.span("execute", loop="L2"):
        pass
    tr.counter("localize.cache_hits", 3)
    tr.event("mark", step=1)
    return tr


def make_bus():
    bus = EventBus()
    bus.emit("guard", "verified", {"event": "verified", "loop": "L2"})
    bus.emit("adapt.fallback", "over_threshold", {"reason": "over_threshold"})
    return bus


class TestJsonlRoundTrip:
    def test_parse_back_matches_tracer(self, tmp_path):
        tr, bus = make_tracer(), make_bus()
        path = str(tmp_path / "t.jsonl")
        export_jsonl(path, tr, bus=bus, meta={"n_procs": 4})
        # every line is standalone JSON; first is the meta header
        lines = [json.loads(l) for l in open(path) if l.strip()]
        assert lines[0]["kind"] == "meta"
        assert lines[0]["format"] == "repro-obs-jsonl"
        assert lines[0]["n_procs"] == 4
        assert lines[0]["dropped_spans"] == 0

        trace = load_trace(path)
        assert [s["name"] for s in trace["spans"]] == [
            "localize.dereference",
            "inspect",
            "execute",
        ]
        by_name = {s["name"]: s for s in trace["spans"]}
        assert by_name["localize.dereference"]["parent"] == by_name["inspect"]["id"]
        assert by_name["inspect"]["parent"] is None
        assert by_name["localize.dereference"]["attrs"] == {"n_refs": 100}
        # exact timing round-trip (integers in, integers out)
        for rec in tr.spans:
            loaded = next(s for s in trace["spans"] if s["id"] == rec.id)
            assert loaded["t0_ns"] == rec.t0_ns
            assert loaded["dur_ns"] == rec.dur_ns
        assert trace["counters"] == {"localize.cache_hits": 3}
        kinds = {e["kind"] for e in trace["events"]}
        assert kinds == {"instant", "event"}
        bus_events = [e for e in trace["events"] if e["kind"] == "event"]
        assert {e["category"] for e in bus_events} == {"guard", "adapt.fallback"}


class TestChromeTrace:
    def test_schema_validity(self, tmp_path):
        tr, bus = make_tracer(), make_bus()
        path = str(tmp_path / "t.trace.json")
        export_chrome(path, tr, bus=bus, meta={"n_procs": 4})
        doc = json.load(open(path))
        assert isinstance(doc["traceEvents"], list)
        assert doc["otherData"]["n_procs"] == 4
        assert doc["otherData"]["dropped_spans"] == 0
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 3
        for ev in complete:
            # trace_event "complete" schema: name/ts/dur/pid/tid required
            assert isinstance(ev["name"], str)
            assert isinstance(ev["ts"], float) and isinstance(ev["dur"], float)
            assert ev["pid"] == 1 and ev["tid"] == 1
            assert "span_id" in ev["args"]
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert {e["name"] for e in instants} >= {"mark", "guard:verified"}
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counters[0]["args"]["value"] == 3

    def test_load_trace_normalizes_both_formats_identically(self, tmp_path):
        tr, bus = make_tracer(), make_bus()
        jsonl = load_trace(export_jsonl(str(tmp_path / "a.jsonl"), tr, bus=bus))
        chrome = load_trace(export_chrome(str(tmp_path / "a.trace.json"), tr, bus=bus))
        j = {(s["name"], s["id"], s["parent"]) for s in jsonl["spans"]}
        c = {(s["name"], s["id"], s["parent"]) for s in chrome["spans"]}
        assert j == c
        assert jsonl["counters"] == chrome["counters"]
        # chrome timestamps quantize ns -> µs floats; within 1µs is exact
        for cs in chrome["spans"]:
            js = next(s for s in jsonl["spans"] if s["id"] == cs["id"])
            assert abs(cs["t0_ns"] - js["t0_ns"]) <= 1000
            assert abs(cs["dur_ns"] - js["dur_ns"]) <= 1000

    def test_export_trace_dispatch(self, tmp_path):
        tr = make_tracer()
        export_trace(str(tmp_path / "a"), tr, fmt="jsonl")
        export_trace(str(tmp_path / "b"), tr, fmt="chrome")
        with pytest.raises(ValueError, match="unknown trace format"):
            export_trace(str(tmp_path / "c"), tr, fmt="pstats")


class TestReport:
    def test_summarize_and_render(self, tmp_path):
        tr = Tracer()
        root = tr.record("inspect", t0_ns=0, dur_ns=1_000_000_000)
        tr.record("adapt.state.build_adapt_state", 0, 900_000_000, parent=root)
        tr.record("execute", t0_ns=0, dur_ns=1_000_000_000)
        tr.counter("hits", 2)
        path = export_jsonl(str(tmp_path / "t.jsonl"), tr, meta={"n_procs": 8})
        summary = summarize(load_trace(path))
        assert summary["n_spans"] == 3
        assert summary["root_total_s"] == pytest.approx(2.0)
        assert summary["phases"]["inspect"]["share"] == pytest.approx(0.5)
        assert summary["phases"]["execute"]["share"] == pytest.approx(0.5)
        # hot list ranks by SELF time: the 0.9s leaf beats the 1.0s
        # umbrella (self 0.1s) and the 1.0s execute root ties are fine
        hot_names = [name for name, _ in summary["hot"][:2]]
        assert "adapt.state.build_adapt_state" in hot_names
        text = render(summary, top=5)
        assert "per-phase host wall time" in text
        assert "adapt.state.build_adapt_state" in text
        assert "hits" in text

    def test_cli_module(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        tr = make_tracer()
        path = export_jsonl(str(tmp_path / "t.jsonl"), tr)
        assert main(["report", path, "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "per-phase host wall time" in out
        assert "inspect" in out
