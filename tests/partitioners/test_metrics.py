"""Tests for partition metrics and KL refinement."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.partitioners import (
    boundary_vertices,
    comm_volume,
    edge_cut,
    kl_refine,
    load_imbalance,
)


PATH = np.array([[0, 1, 2, 3], [1, 2, 3, 4]])  # path on 5 vertices


class TestEdgeCut:
    def test_no_cut(self):
        assert edge_cut(PATH, np.zeros(5, dtype=int)) == 0

    def test_full_cut(self):
        assert edge_cut(PATH, np.array([0, 1, 0, 1, 0])) == 4

    def test_single_cut(self):
        assert edge_cut(PATH, np.array([0, 0, 0, 1, 1])) == 1

    def test_empty_edges(self):
        assert edge_cut(np.empty((2, 0), dtype=int), np.zeros(3, dtype=int)) == 0

    def test_bad_shape(self):
        with pytest.raises(ValueError, match=r"\(2, E\)"):
            edge_cut(np.zeros((3, 1), dtype=int), np.zeros(3, dtype=int))

    def test_endpoint_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            edge_cut(np.array([[0], [5]]), np.zeros(3, dtype=int))


class TestBoundaryAndVolume:
    def test_boundary(self):
        owners = np.array([0, 0, 0, 1, 1])
        assert boundary_vertices(PATH, owners).tolist() == [2, 3]

    def test_comm_volume_counts_ghost_copies(self):
        owners = np.array([0, 0, 0, 1, 1])
        # vertex 2 needed by part 1, vertex 3 needed by part 0
        assert comm_volume(PATH, owners) == 2

    def test_comm_volume_dedups_shared_vertex(self):
        # star: center 0 connected to 1,2,3; center on part 0, leaves on 1
        edges = np.array([[0, 0, 0], [1, 2, 3]])
        owners = np.array([0, 1, 1, 1])
        # center needed once by part 1; each leaf needed by part 0
        assert comm_volume(edges, owners) == 4


class TestLoadImbalance:
    def test_balanced(self):
        assert load_imbalance(np.array([0, 1, 0, 1]), 2) == 1.0

    def test_skewed(self):
        assert load_imbalance(np.array([0, 0, 0, 1]), 2) == pytest.approx(1.5)

    def test_weighted(self):
        lb = load_imbalance(np.array([0, 1]), 2, weights=np.array([3.0, 1.0]))
        assert lb == pytest.approx(1.5)

    def test_empty(self):
        assert load_imbalance(np.empty(0, dtype=int), 2) == 1.0

    def test_bad_parts(self):
        with pytest.raises(ValueError, match="at least one part"):
            load_imbalance(np.array([0]), 0)


class TestKLRefine:
    def test_fixes_an_obviously_bad_split(self):
        # two triangles joined by one edge; bad split puts one vertex wrong
        edges = np.array([[0, 0, 1, 3, 3, 4, 2], [1, 2, 2, 4, 5, 5, 3]])
        bad = np.array([0, 0, 1, 1, 1, 1])  # vertex 2 on the wrong side
        refined, moves = kl_refine(edges, bad, 2)
        assert moves >= 1
        assert edge_cut(edges, refined) < edge_cut(edges, bad)

    def test_noop_on_perfect_partition(self):
        edges = np.array([[0, 1, 3, 4], [1, 2, 4, 5]])  # two paths
        good = np.array([0, 0, 0, 1, 1, 1])
        refined, moves = kl_refine(edges, good, 2)
        assert moves == 0
        assert np.array_equal(refined, good)

    def test_respects_balance(self):
        # clique of 4 + isolated vertex: moving everything to one side
        # would zero the cut but violate balance
        edges = np.array([[0, 0, 0, 1, 1, 2], [1, 2, 3, 2, 3, 3]])
        owners = np.array([0, 0, 1, 1, 1])
        refined, _ = kl_refine(edges, owners, 2, balance_tol=0.05)
        assert load_imbalance(refined, 2) <= 1.7  # can't all pile up

    def test_input_not_mutated(self):
        edges = np.array([[0], [1]])
        owners = np.array([0, 1])
        out, _ = kl_refine(edges, owners, 2)
        assert owners.tolist() == [0, 1]

    def test_empty_edges_noop(self):
        owners = np.array([0, 1, 0])
        out, moves = kl_refine(None, owners, 2)
        assert moves == 0 and np.array_equal(out, owners)


@given(
    n=st.integers(min_value=2, max_value=30),
    seed=st.integers(min_value=0, max_value=1000),
    k=st.integers(min_value=2, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_kl_never_increases_cut(n, seed, k):
    rng = np.random.default_rng(seed)
    m = rng.integers(1, 3 * n)
    edges = rng.integers(0, n, size=(2, m))
    edges = edges[:, edges[0] != edges[1]]
    owners = rng.integers(0, k, size=n)
    before = edge_cut(edges, owners)
    refined, _ = kl_refine(edges, owners, k)
    assert edge_cut(edges, refined) <= before
