#!/usr/bin/env python
"""Quickstart: the paper's Figure 1 loops on a simulated 8-processor machine.

Runs loop L1 (single-statement gather/assign) and loop L2 (edge sweep
with reductions at both endpoints) through the inspector/executor
machinery, demonstrates communication-schedule reuse, and prints the
simulated iPSC/860 times.

    python examples/quickstart.py
"""

import numpy as np

from repro import (
    ArrayRef,
    Assign,
    ForallLoop,
    IrregularProgram,
    Machine,
    Reduce,
)


def main():
    rng = np.random.default_rng(42)
    n_nodes, n_edges = 1000, 3500

    machine = Machine(8)  # 8-node simulated hypercube
    prog = IrregularProgram(machine)

    # Fortran D-style declarations: two decompositions, arrays aligned
    prog.decomposition("reg", n_nodes)
    prog.decomposition("reg2", n_edges)
    prog.distribute("reg", "block")
    prog.distribute("reg2", "block")

    x = rng.normal(size=n_nodes)
    e1 = rng.integers(0, n_nodes, n_edges)
    e2 = (e1 + 1 + rng.integers(0, n_nodes - 1, n_edges)) % n_nodes
    prog.array("x", "reg", values=x)
    prog.array("y", "reg", values=np.zeros(n_nodes))
    prog.array("end_pt1", "reg2", values=e1, dtype=np.int64)
    prog.array("end_pt2", "reg2", values=e2, dtype=np.int64)

    # ---- Loop L1: y(ia(i)) = x(ib(i)) + x(ic(i)) --------------------------
    ia = rng.permutation(n_nodes)
    ib = rng.integers(0, n_nodes, n_nodes)
    ic = rng.integers(0, n_nodes, n_nodes)
    prog.array("ia", "reg", values=ia, dtype=np.int64)
    prog.array("ib", "reg", values=ib, dtype=np.int64)
    prog.array("ic", "reg", values=ic, dtype=np.int64)
    loop_l1 = ForallLoop(
        "L1",
        n_nodes,
        [
            Assign(
                ArrayRef("y", "ia"),
                lambda b, c: b + c,
                (ArrayRef("x", "ib"), ArrayRef("x", "ic")),
                flops=1,
            )
        ],
    )
    prog.forall(loop_l1)
    want = np.zeros(n_nodes)
    want[ia] = x[ib] + x[ic]
    assert np.allclose(prog.arrays["y"].to_global(), want)
    print(f"L1 verified against NumPy; machine time so far: {machine.elapsed():.3f}s")

    # ---- Loop L2: edge sweep with two reductions --------------------------
    x1, x2 = ArrayRef("x", "end_pt1"), ArrayRef("x", "end_pt2")
    loop_l2 = ForallLoop(
        "L2",
        n_edges,
        [
            Reduce("add", ArrayRef("y", "end_pt1"), lambda a, b: a * b, (x1, x2), flops=2),
            Reduce("add", ArrayRef("y", "end_pt2"), lambda a, b: a - b, (x1, x2), flops=2),
        ],
    )
    # 50 sweeps: the inspector runs once, its schedule is reused 49 times
    prog.forall(loop_l2, n_times=50)
    print(
        f"L2 swept 50x: inspector ran {prog.inspector_runs - 1 + 1} time(s) "
        f"for L2, reuse hits so far: {prog.reuse_hits}"
    )

    ref = prog.arrays["y"].to_global()
    check = want.copy()
    for _ in range(50):
        np.add.at(check, e1, x[e1] * x[e2])
        np.add.at(check, e2, x[e1] - x[e2])
    assert np.allclose(ref, check)
    print("L2 verified against NumPy")

    print("\nSimulated phase times (iPSC/860 cost model):")
    for phase in ("inspector", "executor"):
        print(f"  {phase:>10}: {prog.phase_time(phase):8.3f}s")
    print(f"  {'total':>10}: {machine.elapsed():8.3f}s")
    print(
        f"\nMachine counters: "
        f"{int(machine.counters.messages_sent.sum())} messages, "
        f"{int(machine.counters.bytes_sent.sum())} bytes"
    )


if __name__ == "__main__":
    main()
