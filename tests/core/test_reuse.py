"""Tests for the conservative schedule-reuse check (Section 3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    ArrayRef,
    Assign,
    DAD,
    ForallLoop,
    InspectorRecord,
    ModificationRegistry,
    Reduce,
    can_reuse,
)
from repro.distribution import BlockDistribution, DistArray, IrregularDistribution
from repro.machine import Machine


def make_record(arrays, registry, data=("x", "y"), ind=("ia",)):
    return InspectorRecord(
        loop_name="L",
        data_dads={a: DAD.of(arrays[a]) for a in data},
        ind_dads={a: DAD.of(arrays[a]) for a in ind},
        ind_last_mod={a: registry.last_mod(DAD.of(arrays[a])) for a in ind},
        product=object(),
    )


@pytest.fixture
def setup():
    m = Machine(4)
    arrays = {
        "x": DistArray(m, BlockDistribution(16, 4), name="x"),
        "y": DistArray(m, BlockDistribution(16, 4), name="y"),
        "ia": DistArray(m, BlockDistribution(24, 4), dtype=np.int64, name="ia"),
    }
    return m, arrays, ModificationRegistry()


class TestConditions:
    def test_reusable_when_nothing_changed(self, setup):
        m, arrays, reg = setup
        rec = make_record(arrays, reg)
        decision = can_reuse(rec, arrays, reg)
        assert decision.reusable

    def test_condition1_data_array_redistributed(self, setup):
        m, arrays, reg = setup
        rec = make_record(arrays, reg)
        new = IrregularDistribution(np.arange(16) % 4, 4)
        arrays["x"].rebind(new, [np.zeros(new.local_size(p)) for p in range(4)])
        decision = can_reuse(rec, arrays, reg)
        assert not decision.reusable
        assert "condition 1" in decision.reason and "'x'" in decision.reason

    def test_condition2_indirection_array_redistributed(self, setup):
        m, arrays, reg = setup
        rec = make_record(arrays, reg)
        new = IrregularDistribution(np.arange(24) % 4, 4)
        arrays["ia"].rebind(
            new, [np.zeros(new.local_size(p), dtype=np.int64) for p in range(4)]
        )
        decision = can_reuse(rec, arrays, reg)
        assert not decision.reusable
        assert "condition 2" in decision.reason

    def test_condition3_indirection_array_written(self, setup):
        m, arrays, reg = setup
        rec = make_record(arrays, reg)
        reg.record_block_write([DAD.of(arrays["ia"])])
        decision = can_reuse(rec, arrays, reg)
        assert not decision.reusable
        assert "condition 3" in decision.reason

    def test_data_array_write_does_not_invalidate(self, setup):
        """Writing a *data* array (y updated every sweep) must NOT force
        re-inspection -- only indirection arrays matter for condition 3."""
        m, arrays, reg = setup
        rec = make_record(arrays, reg)
        for _ in range(100):
            reg.record_block_write([DAD.of(arrays["y"])])
        assert can_reuse(rec, arrays, reg).reusable

    def test_conservative_same_dad_write_invalidates(self, setup):
        """Writing any array sharing the indirection array's DAD
        invalidates -- the documented conservatism."""
        m, arrays, reg = setup
        other = DistArray(m, BlockDistribution(24, 4), dtype=np.int64, name="other")
        rec = make_record(arrays, reg)
        reg.record_block_write([DAD.of(other)])  # same (block, 24, 4) DAD
        assert not can_reuse(rec, arrays, reg).reusable

    def test_unbound_array_raises(self, setup):
        m, arrays, reg = setup
        rec = make_record(arrays, reg)
        del arrays["ia"]
        with pytest.raises(KeyError, match="ia"):
            can_reuse(rec, arrays, reg)

    def test_write_then_matching_record_is_reusable(self, setup):
        """A record taken *after* writes sees the current stamps."""
        m, arrays, reg = setup
        reg.record_block_write([DAD.of(arrays["ia"])])
        rec = make_record(arrays, reg)  # records last_mod == 1
        assert can_reuse(rec, arrays, reg).reusable
        reg.record_block_write([DAD.of(arrays["ia"])])
        assert not can_reuse(rec, arrays, reg).reusable


class TestDecisionFields:
    """Every ReuseDecision branch carries structured condition/array
    fields (the incremental inspector routes on them)."""

    def test_success_branch(self, setup):
        m, arrays, reg = setup
        decision = can_reuse(make_record(arrays, reg), arrays, reg)
        assert decision.reusable
        assert decision.reason == "all conditions hold"
        assert decision.condition is None and decision.array is None

    def test_condition1_fields(self, setup):
        m, arrays, reg = setup
        rec = make_record(arrays, reg)
        new = IrregularDistribution(np.arange(16) % 4, 4)
        arrays["x"].rebind(new, [np.zeros(new.local_size(p)) for p in range(4)])
        decision = can_reuse(rec, arrays, reg)
        assert (decision.condition, decision.array) == (1, "x")
        assert "condition 1" in decision.reason

    def test_condition2_fields(self, setup):
        m, arrays, reg = setup
        rec = make_record(arrays, reg)
        new = IrregularDistribution(np.arange(24) % 4, 4)
        arrays["ia"].rebind(
            new, [np.zeros(new.local_size(p), dtype=np.int64) for p in range(4)]
        )
        decision = can_reuse(rec, arrays, reg)
        assert (decision.condition, decision.array) == (2, "ia")
        assert "condition 2" in decision.reason

    def test_condition3_fields(self, setup):
        m, arrays, reg = setup
        rec = make_record(arrays, reg)
        reg.record_block_write([DAD.of(arrays["ia"])])
        decision = can_reuse(rec, arrays, reg)
        assert (decision.condition, decision.array) == (3, "ia")
        assert "condition 3" in decision.reason
        assert not bool(decision)

    def test_condition3_names_first_failing_indirection(self, setup):
        """With several indirections, the first failing one (record
        insertion order) is reported."""
        m, arrays, reg = setup
        arrays["ib"] = DistArray(
            m, BlockDistribution(32, 4), dtype=np.int64, name="ib"
        )
        rec = make_record(arrays, reg, ind=("ia", "ib"))
        reg.record_block_write([DAD.of(arrays["ib"])])
        decision = can_reuse(rec, arrays, reg)
        assert (decision.condition, decision.array) == (3, "ib")


@given(trace=st.lists(st.sampled_from(["write_ia", "write_y", "remap_x", "remap_ia"]), max_size=8))
@settings(max_examples=80, deadline=None)
def test_reuse_is_conservative_on_random_traces(trace):
    """Safety property: after ANY event trace, reuse is permitted only if
    no indirection array was possibly modified or redistributed and no
    data array was redistributed.  (The check may be stricter than this
    -- conservative -- but never looser.)"""
    m = Machine(2)
    arrays = {
        "x": DistArray(m, BlockDistribution(10, 2), name="x"),
        "y": DistArray(m, BlockDistribution(10, 2), name="y"),
        "ia": DistArray(m, BlockDistribution(12, 2), dtype=np.int64, name="ia"),
    }
    reg = ModificationRegistry()
    rec = make_record(arrays, reg)

    unsafe = False
    for ev in trace:
        if ev == "write_ia":
            reg.record_block_write([DAD.of(arrays["ia"])])
            unsafe = True
        elif ev == "write_y":
            reg.record_block_write([DAD.of(arrays["y"])])
        elif ev == "remap_x":
            new = IrregularDistribution(np.arange(10) % 2, 2)
            arrays["x"].rebind(new, [np.zeros(new.local_size(p)) for p in range(2)])
            reg.record_remap(DAD.of(arrays["x"]))
            unsafe = True
        elif ev == "remap_ia":
            new = IrregularDistribution((np.arange(12) + 1) % 2, 2)
            arrays["ia"].rebind(
                new, [np.zeros(new.local_size(p), dtype=np.int64) for p in range(2)]
            )
            reg.record_remap(DAD.of(arrays["ia"]))
            unsafe = True

    decision = can_reuse(rec, arrays, reg)
    if unsafe:
        assert not decision.reusable, f"unsafely reused after {trace}"
