"""Flattened remap schedules vs the naive per-move-pair loop.

``RemapSchedule.apply`` and ``build_remap_schedule`` historically looped
over every (src, dst) move pair in Python.  These tests keep that naive
implementation as a reference oracle (mirroring
``tests/chaos/test_schedule_flat.py``) and check, over randomized
partitions, that the flattened CSR-style path produces *identical*
remapped array contents and *bit-identical* per-processor simulated
clocks and counters.
"""

import numpy as np
import pytest

from repro.chaos.costs import DEFAULT_COSTS
from repro.chaos.remap import RemapSchedule, build_remap_schedule
from repro.distribution import (
    BlockDistribution,
    CyclicDistribution,
    DistArray,
    IrregularDistribution,
)
from repro.machine.machine import Machine


# ----------------------------------------------------------------------
# naive reference: the historical per-pair implementation
# ----------------------------------------------------------------------
def naive_build(machine, old_dist, new_dist, costs=DEFAULT_COSTS):
    n = machine.n_procs
    size = old_dist.size
    g = np.arange(size, dtype=np.int64)
    old_owner = np.asarray(old_dist.owner(g), dtype=np.int64) if size else g
    new_owner = np.asarray(new_dist.owner(g), dtype=np.int64) if size else g
    old_lidx = np.asarray(old_dist.local_index(g), dtype=np.int64) if size else g
    new_lidx = np.asarray(new_dist.local_index(g), dtype=np.int64) if size else g

    moves = {}
    counts = np.zeros((n, n), dtype=np.int64)
    if size:
        pair_key = old_owner * n + new_owner
        order = np.argsort(pair_key, kind="stable")
        sorted_keys = pair_key[order]
        boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
        starts = np.concatenate(([0], boundaries, [size]))
        for i in range(len(starts) - 1):
            lo, hi = starts[i], starts[i + 1]
            key = int(sorted_keys[lo])
            p, q = divmod(key, n)
            idx = order[lo:hi]
            moves[(p, q)] = (old_lidx[idx], new_lidx[idx])
            counts[p, q] = hi - lo

    per_proc = counts.sum(axis=1).astype(float)
    machine.charge_compute_all(iops=costs.remap_build * per_proc)
    off_diag = counts.copy()
    np.fill_diagonal(off_diag, 0)
    move_p, move_q = np.nonzero(off_diag)
    machine.exchange(
        src=move_p,
        dst=move_q,
        nbytes=off_diag[move_p, move_q] * 2 * costs.index_bytes,
    )
    machine.barrier()
    return moves


def naive_apply(machine, moves, new_dist, arr, costs=DEFAULT_COSTS):
    n = machine.n_procs
    new_locals = [
        np.empty(new_dist.local_size(p), dtype=arr.dtype) for p in range(n)
    ]
    pack = np.zeros(n)
    unpack = np.zeros(n)
    pair_p = []
    pair_q = []
    pair_bytes = []
    for (p, q), (src_l, dst_l) in moves.items():
        if not len(src_l):
            continue
        new_locals[q][dst_l] = arr.local(p)[src_l]
        pack[p] += costs.pack_unpack_mem * len(src_l)
        unpack[q] += costs.pack_unpack_mem * len(src_l)
        pair_p.append(p)
        pair_q.append(q)
        pair_bytes.append(len(src_l) * arr.itemsize)
    machine.charge_compute_all(mem=pack)
    machine.exchange(
        src=np.asarray(pair_p, dtype=np.int64),
        dst=np.asarray(pair_q, dtype=np.int64),
        nbytes=np.asarray(pair_bytes, dtype=np.int64),
    )
    machine.charge_compute_all(mem=unpack)
    arr.rebind(new_dist, new_locals)


# ----------------------------------------------------------------------
# randomized distribution pairs
# ----------------------------------------------------------------------
def random_dist(rng, size, n_procs):
    kind = rng.choice(["block", "cyclic", "irregular"])
    if kind == "block":
        return BlockDistribution(size, n_procs)
    if kind == "cyclic":
        return CyclicDistribution(size, n_procs)
    return IrregularDistribution(rng.integers(0, n_procs, size=size), n_procs)


def clocks(machine):
    return [machine.procs[p].stats.clock for p in range(machine.n_procs)]


def counters(machine):
    return [
        (
            s.stats.messages_sent,
            s.stats.messages_received,
            s.stats.bytes_sent,
            s.stats.bytes_received,
            s.stats.iops,
            s.stats.mem_ops,
        )
        for s in machine.procs
    ]


CASES = [(2, 13, 0), (3, 29, 1), (4, 50, 2), (4, 64, 3), (8, 97, 4), (8, 200, 5)]


@pytest.mark.parametrize("n_procs,size,seed", CASES)
def test_remap_matches_naive(n_procs, size, seed):
    rng = np.random.default_rng(seed)
    topo = "full" if n_procs & (n_procs - 1) else "hypercube"
    m_flat = Machine(n_procs, topology=topo)
    m_ref = Machine(n_procs, topology=topo)
    old_dist = random_dist(rng, size, n_procs)
    new_dist = random_dist(rng, size, n_procs)
    vals = rng.normal(size=size)

    arr_flat = DistArray.from_global(m_flat, old_dist, vals, name="x")
    arr_ref = DistArray.from_global(m_ref, old_dist, vals, name="x")

    sched = build_remap_schedule(m_flat, old_dist, new_dist)
    moves = naive_build(m_ref, old_dist, new_dist)
    assert clocks(m_flat) == clocks(m_ref)
    assert counters(m_flat) == counters(m_ref)

    sched.apply(arr_flat)
    naive_apply(m_ref, moves, new_dist, arr_ref)
    for p in range(n_procs):
        np.testing.assert_array_equal(arr_flat.local(p), arr_ref.local(p))
    np.testing.assert_array_equal(arr_flat.to_global(), vals)
    # simulated time and every per-processor counter are bit-identical
    assert clocks(m_flat) == clocks(m_ref)
    assert counters(m_flat) == counters(m_ref)
    assert m_flat.elapsed() == m_ref.elapsed()

    # the naive move dict and the lazily-materialized flattened view agree
    flat_moves = sched.moves
    assert set(flat_moves) == set(moves)
    for key in moves:
        np.testing.assert_array_equal(flat_moves[key][0], moves[key][0])
        np.testing.assert_array_equal(flat_moves[key][1], moves[key][1])


@pytest.mark.parametrize("n_procs,size,seed", [(4, 40, 7), (8, 120, 8)])
def test_shared_schedule_reapplication_matches(n_procs, size, seed):
    """Applying one schedule to several arrays matches the naive loop."""
    rng = np.random.default_rng(seed)
    topo = "full" if n_procs & (n_procs - 1) else "hypercube"
    m_flat = Machine(n_procs, topology=topo)
    m_ref = Machine(n_procs, topology=topo)
    old_dist = BlockDistribution(size, n_procs)
    new_dist = IrregularDistribution(rng.integers(0, n_procs, size=size), n_procs)
    vals_a = rng.normal(size=size)
    vals_b = rng.integers(0, 1000, size=size).astype(np.int64)

    a_flat = DistArray.from_global(m_flat, old_dist, vals_a, name="a")
    b_flat = DistArray.from_global(m_flat, old_dist, vals_b, name="b")
    a_ref = DistArray.from_global(m_ref, old_dist, vals_a, name="a")
    b_ref = DistArray.from_global(m_ref, old_dist, vals_b, name="b")

    sched = build_remap_schedule(m_flat, old_dist, new_dist)
    moves = naive_build(m_ref, old_dist, new_dist)
    sched.apply(a_flat)
    sched.apply(b_flat)
    naive_apply(m_ref, moves, new_dist, a_ref)
    naive_apply(m_ref, moves, new_dist, b_ref)

    np.testing.assert_array_equal(a_flat.to_global(), vals_a)
    np.testing.assert_array_equal(b_flat.to_global(), vals_b)
    assert b_flat.dtype == np.int64
    assert clocks(m_flat) == clocks(m_ref)
    assert counters(m_flat) == counters(m_ref)


def test_apply_honors_custom_costs():
    """apply() charges pack/unpack at the *caller's* cost model.

    The seed implementation hardcoded DEFAULT_COSTS here (a latent bug:
    programs built with custom ChaosCosts got default-cost remaps);
    this pins the intentional fix.
    """
    from dataclasses import replace

    n_procs, size = 4, 24
    rng = np.random.default_rng(11)
    old_dist = BlockDistribution(size, n_procs)
    new_dist = CyclicDistribution(size, n_procs)
    custom = replace(DEFAULT_COSTS, pack_unpack_mem=10 * DEFAULT_COSTS.pack_unpack_mem)

    def mem_after(costs):
        m = Machine(n_procs)
        arr = DistArray.from_global(m, old_dist, rng.normal(size=size))
        sched = build_remap_schedule(m, old_dist, new_dist, costs)
        before = m.counters.mem_ops.sum()
        sched.apply(arr, costs)
        return float(m.counters.mem_ops.sum() - before)

    default_mem = mem_after(DEFAULT_COSTS)
    custom_mem = mem_after(custom)
    assert default_mem > 0
    # self-moves contribute exchange-side mem copies at a fixed rate, so
    # the custom run must be strictly dearer but scale on the pack/unpack
    # component only
    assert custom_mem > default_mem


def test_legacy_moves_constructor_equivalent():
    """A schedule built from an explicit moves dict behaves identically to
    one built from the flattened arrays."""
    n_procs, size, seed = 4, 36, 9
    rng = np.random.default_rng(seed)
    m_a = Machine(n_procs)
    m_b = Machine(n_procs)
    old_dist = BlockDistribution(size, n_procs)
    new_dist = IrregularDistribution(rng.integers(0, n_procs, size=size), n_procs)
    vals = rng.normal(size=size)
    arr_a = DistArray.from_global(m_a, old_dist, vals)
    arr_b = DistArray.from_global(m_b, old_dist, vals)

    flat = build_remap_schedule(m_a, old_dist, new_dist)
    legacy = RemapSchedule(m_b, old_dist.signature(), new_dist, flat.moves)
    m_b.counters.clock[:] = m_a.counters.clock
    m_b.counters.iops[:] = m_a.counters.iops
    m_b.counters.messages_sent[:] = m_a.counters.messages_sent
    m_b.counters.messages_received[:] = m_a.counters.messages_received
    m_b.counters.bytes_sent[:] = m_a.counters.bytes_sent
    m_b.counters.bytes_received[:] = m_a.counters.bytes_received

    flat.apply(arr_a)
    legacy.apply(arr_b)
    assert legacy.element_count() == flat.element_count()
    np.testing.assert_array_equal(arr_b.to_global(), vals)
    assert clocks(m_a) == clocks(m_b)
    assert counters(m_a) == counters(m_b)
