"""PARTI *localize*: the primitive at the heart of every inspector.

Given, per processor, the list of global indices its loop iterations will
reference, ``localize``

1. translates every reference through the translation table,
2. separates on-processor from off-processor references,
3. deduplicates the off-processor ones and assigns each unique element a
   ghost-buffer slot ("information that associates off-processor data
   copies with on-processor buffer locations", Section 1),
4. rewrites each reference list into *localized* indices -- offsets into
   the concatenation ``[local segment | ghost buffer]`` -- so the executor
   is pure local indexing, and
5. builds the :class:`~repro.chaos.schedule.CommSchedule` that fetches
   the ghost elements.

The cost charged mirrors what PARTI's hashed implementation did per
reference: a hash probe per reference, an insert per unique off-processor
element, schedule assembly per unique element, and a request exchange
telling each owner which of its elements to send.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chaos.costs import ChaosCosts, DEFAULT_COSTS
from repro.chaos.schedule import CommSchedule
from repro.chaos.ttable import TranslationTable
from repro.machine.machine import Machine


@dataclass
class LocalizeResult:
    """Everything an executor needs for one access pattern.

    Attributes
    ----------
    local_refs:
        Per processor, the reference list rewritten to localized indices:
        values ``< local_size`` index the local segment, values ``>=
        local_size`` index ghost slot ``value - local_size``.
    ghost_globals:
        Per processor, the unique off-processor global indices in ghost
        slot order (useful for debugging and tests).
    local_sizes:
        Per processor, the local segment size of the inspected
        distribution (the local/ghost boundary).
    schedule:
        The communication schedule that fills the ghost buffers.
    """

    local_refs: list[np.ndarray]
    ghost_globals: list[np.ndarray]
    local_sizes: list[int]
    schedule: CommSchedule

    def split(self, p: int) -> tuple[np.ndarray, np.ndarray]:
        """Boolean masks (is_local, is_ghost) for processor ``p``'s refs."""
        refs = self.local_refs[p]
        is_local = refs < self.local_sizes[p]
        return is_local, ~is_local


def localize(
    machine: Machine,
    ttable: TranslationTable,
    ref_lists: list[np.ndarray],
    costs: ChaosCosts = DEFAULT_COSTS,
) -> LocalizeResult:
    """Run the localize primitive for one access pattern.

    Parameters
    ----------
    machine:
        The simulated machine to charge.
    ttable:
        Translation table of the *data* array's distribution.
    ref_lists:
        ``ref_lists[p]`` is the array of global indices processor ``p``'s
        iterations dereference (repeats allowed and common).
    """
    n = machine.n_procs
    if len(ref_lists) != n:
        raise ValueError(f"expected {n} reference lists, got {len(ref_lists)}")
    dist = ttable.dist
    translations = ttable.dereference_all(
        [np.asarray(r, dtype=np.int64) for r in ref_lists]
    )

    local_refs: list[np.ndarray] = []
    ghost_globals: list[np.ndarray] = []
    local_sizes = [dist.local_size(p) for p in range(n)]
    send_lists: dict[tuple[int, int], np.ndarray] = {}
    recv_slots: dict[tuple[int, int], np.ndarray] = {}
    ghost_sizes = [0] * n
    req_counts = np.zeros((n, n), dtype=np.int64)

    for p in range(n):
        refs = np.asarray(ref_lists[p], dtype=np.int64)
        owners, lidx = translations[p]
        if refs.size == 0:
            local_refs.append(np.empty(0, dtype=np.int64))
            ghost_globals.append(np.empty(0, dtype=np.int64))
            continue
        off = owners != p
        n_off_refs = int(off.sum())
        # dedup off-processor references; np.unique gives deterministic
        # (sorted-global) ghost slot order, like PARTI's hashed order
        uniq, inverse = np.unique(refs[off], return_inverse=True)
        ghost_sizes[p] = uniq.size
        ghost_globals.append(uniq)

        localized = np.empty(refs.size, dtype=np.int64)
        localized[~off] = lidx[~off]
        localized[off] = local_sizes[p] + inverse
        local_refs.append(localized)

        # build schedule entries for each owner of a unique ghost element
        uowners = np.asarray(dist.owner(uniq), dtype=np.int64)
        ulidx = np.asarray(dist.local_index(uniq), dtype=np.int64)
        slots = np.arange(uniq.size, dtype=np.int64)
        for q in np.unique(uowners):
            q = int(q)
            sel = uowners == q
            send_lists[(q, p)] = ulidx[sel]
            recv_slots[(q, p)] = slots[sel]
            req_counts[p, q] = int(sel.sum())

        # charge inspector integer work on p: one hash probe per reference,
        # an insert per unique ghost, schedule build + buffer assignment
        machine.charge_compute(
            p,
            iops=(
                costs.hash_lookup * refs.size
                + costs.hash_insert * uniq.size
                + costs.schedule_build * uniq.size
                + costs.buffer_assign * uniq.size
                + costs.hash_lookup * n_off_refs  # localized-index rewrite probe
            ),
        )

    # request exchange: each requester tells each owner which local
    # elements to send (index lists on the wire); owners then record
    # their send lists
    machine.exchange(
        {
            (p, q): int(req_counts[p, q]) * costs.index_bytes
            for p in range(n)
            for q in range(n)
            if p != q and req_counts[p, q]
        }
    )
    owner_record = req_counts.sum(axis=0).astype(float)
    machine.charge_compute_all(
        iops=[costs.schedule_build * c for c in owner_record]
    )
    machine.barrier()

    schedule = CommSchedule(
        machine,
        dist.signature(),
        send_lists,
        recv_slots,
        ghost_sizes,
        costs=costs,
    )
    return LocalizeResult(
        local_refs=local_refs,
        ghost_globals=ghost_globals,
        local_sizes=local_sizes,
        schedule=schedule,
    )
