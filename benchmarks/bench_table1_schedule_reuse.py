"""Table 1: executor loop time with and without schedule reuse.

Paper numbers (seconds on iPSC/860, 100 iterations, RCB distributions):

    config        no-reuse   reuse    speedup
    10K mesh/4    400        17.6     22.7x
    10K mesh/8    214        10.8     19.8x
    10K mesh/16   123         7.7     16.0x
    53K mesh/16   668        30.4     22.0x
    53K mesh/32   398        23.0     17.3x
    53K mesh/64   239        17.4     13.7x
    648 atoms/4   707        15.2     46.5x
    648 atoms/8   384         9.7     39.6x
    648 atoms/16  227         8.0     28.4x

The reproduced *shape*: reuse wins by a large factor everywhere; the
factor grows with the inspector/executor-iteration cost ratio.  Absolute
factors at CI scale (small meshes) are smaller because the inspector's
share shrinks with problem size; REPRO_SCALE=paper approaches the
paper's ratios.
"""

from conftest import run_once

from repro.bench import table1_schedule_reuse, render_table
from repro.bench.paper_data import shape_report


def test_table1_schedule_reuse(benchmark, report):
    rows, text = run_once(benchmark, table1_schedule_reuse)
    report("table1_schedule_reuse", text)

    # side-by-side with the paper's speedups (matched by config order)
    measured = {}
    for row in rows:
        workload, procs = row["config"].rsplit("/", 1)
        measured[(workload, int(procs))] = row["speedup"]
    cmp_rows = shape_report(measured)
    report(
        "table1_vs_paper",
        render_table(
            "Table 1 reuse speedups: paper vs measured (shape comparison)",
            cmp_rows,
            [
                ("paper_config", "Paper config"),
                ("paper_speedup", "Paper"),
                ("measured_config", "Measured config"),
                ("measured_speedup", "Measured"),
                ("same_direction", "SameDir"),
            ],
        ),
    )
    assert all(r["same_direction"] for r in cmp_rows)

    assert len(rows) == 9
    for row in rows:
        # reuse must always win, decisively
        assert row["reuse"] < row["no_reuse"] / 2, row
        assert row["speedup"] > 2.0, row
    # the MD loop has the densest reference pattern per iteration ->
    # reuse pays off at least as much as on the small mesh at the same
    # processor count (the paper's 46x vs 23x contrast)
    mesh4 = next(r for r in rows if r["config"].endswith("mesh/4"))
    md4 = next(r for r in rows if "atoms/4" in r["config"])
    assert md4["speedup"] > 0.8 * mesh4["speedup"]
