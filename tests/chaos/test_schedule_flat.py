"""Flattened-schedule equivalence: CSR apply path vs the naive pair loop.

``CommSchedule`` historically iterated ``send_lists`` pair by pair; it
now applies one flattened fancy-index per processor.  These tests keep a
small naive reference implementation (the old per-pair semantics) and
check, over randomized schedules, that gather / scatter / scatter_op
produce *identical* array contents and *bit-identical* per-processor
machine clocks and counters -- including the order-sensitive cases:
duplicate recv slots (last writer wins) and floating-point reduction
accumulation order.
"""

import numpy as np
import pytest

from repro.chaos.costs import DEFAULT_COSTS
from repro.chaos.schedule import CommSchedule
from repro.distribution.distarray import DistArray
from repro.distribution.regular import BlockDistribution
from repro.machine.machine import Machine


# ----------------------------------------------------------------------
# naive reference: the historical per-(sender, receiver)-pair loop
# ----------------------------------------------------------------------
def naive_gather(machine, send_lists, recv_slots, arr, ghosts, costs=DEFAULT_COSTS):
    n = machine.n_procs
    pack = np.zeros(n)
    unpack = np.zeros(n)
    wires = {}
    for (q, p), sl in send_lists.items():
        if not len(sl):
            continue
        ghosts[p][recv_slots[(q, p)]] = arr.local(q)[sl]
        pack[q] += costs.pack_unpack_mem * len(sl)
        unpack[p] += costs.pack_unpack_mem * len(sl)
        wires[(q, p)] = len(sl) * arr.itemsize
    machine.charge_compute_all(mem=list(pack))
    machine.exchange(wires)
    machine.charge_compute_all(mem=list(unpack))


def naive_reverse(
    machine, send_lists, recv_slots, ghosts, arr, op, costs=DEFAULT_COSTS
):
    n = machine.n_procs
    pack = np.zeros(n)
    unpack = np.zeros(n)
    combine = np.zeros(n)
    wires = {}
    for (q, p), sl in send_lists.items():
        if not len(sl):
            continue
        data = ghosts[p][recv_slots[(q, p)]]
        if op is None:
            arr.local(q)[sl] = data
        else:
            op.at(arr.local(q), sl, data)
            combine[q] += 1.0 * len(sl)
        pack[p] += costs.pack_unpack_mem * len(sl)
        unpack[q] += costs.pack_unpack_mem * len(sl)
        wires[(p, q)] = len(sl) * arr.itemsize
    machine.charge_compute_all(mem=list(pack))
    machine.exchange(wires)
    machine.charge_compute_all(mem=list(unpack), flops=list(combine))


# ----------------------------------------------------------------------
# randomized schedule construction
# ----------------------------------------------------------------------
def random_schedule_parts(rng, n_procs, local_size, max_ghost=12):
    """Random send/recv pair dicts (duplicates allowed) + ghost sizes."""
    ghost_sizes = [int(rng.integers(0, max_ghost + 1)) for _ in range(n_procs)]
    send_lists = {}
    recv_slots = {}
    pairs = [
        (q, p)
        for q in range(n_procs)
        for p in range(n_procs)
        if rng.random() < 0.6
    ]
    pairs = [pairs[i] for i in rng.permutation(len(pairs))]
    for q, p in pairs:
        if ghost_sizes[p] == 0:
            count = 0
        else:
            count = int(rng.integers(0, 2 * ghost_sizes[p] + 1))
        # duplicate send offsets and recv slots are deliberately allowed:
        # they exercise last-writer-wins and accumulation-order semantics
        send_lists[(q, p)] = rng.integers(0, local_size, size=count)
        recv_slots[(q, p)] = rng.integers(0, max(ghost_sizes[p], 1), size=count)
    return send_lists, recv_slots, ghost_sizes


def make_world(n_procs, size, seed):
    machine = Machine(n_procs, topology="full" if n_procs & (n_procs - 1) else "hypercube")
    dist = BlockDistribution(size, n_procs)
    rng = np.random.default_rng(seed)
    arr = DistArray.from_global(machine, dist, rng.normal(size=size), name="x")
    min_local = min(dist.local_size(p) for p in range(n_procs))
    return machine, arr, min_local


def clocks(machine):
    return [machine.procs[p].stats.clock for p in range(machine.n_procs)]


def counters(machine):
    return [
        (
            s.stats.messages_sent,
            s.stats.messages_received,
            s.stats.bytes_sent,
            s.stats.bytes_received,
            s.stats.flops,
            s.stats.mem_ops,
        )
        for s in machine.procs
    ]


CASES = [(2, 17, 0), (3, 23, 1), (4, 40, 2), (4, 64, 3), (8, 61, 4), (8, 128, 5)]


@pytest.mark.parametrize("n_procs,size,seed", CASES)
def test_gather_matches_naive(n_procs, size, seed):
    rng = np.random.default_rng(seed)
    m_flat, arr_flat, min_local = make_world(n_procs, size, seed)
    m_ref, arr_ref, _ = make_world(n_procs, size, seed)
    send, recv, gsizes = random_schedule_parts(rng, n_procs, min_local)

    sched = CommSchedule(m_flat, arr_flat.distribution.signature(), send, recv, gsizes)
    g_flat = [np.zeros(s) for s in gsizes]
    g_ref = [np.zeros(s) for s in gsizes]

    sched.gather(arr_flat, g_flat)
    naive_gather(m_ref, sched.send_lists, sched.recv_slots, arr_ref, g_ref)

    for p in range(n_procs):
        np.testing.assert_array_equal(g_flat[p], g_ref[p])
    assert clocks(m_flat) == clocks(m_ref)
    assert counters(m_flat) == counters(m_ref)


@pytest.mark.parametrize("n_procs,size,seed", CASES)
@pytest.mark.parametrize("opname", ["assign", "add", "max"])
def test_reverse_matches_naive(n_procs, size, seed, opname):
    rng = np.random.default_rng(seed + 100)
    m_flat, arr_flat, min_local = make_world(n_procs, size, seed)
    m_ref, arr_ref, _ = make_world(n_procs, size, seed)
    send, recv, gsizes = random_schedule_parts(rng, n_procs, min_local)

    sched = CommSchedule(m_flat, arr_flat.distribution.signature(), send, recv, gsizes)
    contrib = [rng.normal(size=s) for s in gsizes]
    g_flat = [c.copy() for c in contrib]
    g_ref = [c.copy() for c in contrib]

    op = {"assign": None, "add": np.add, "max": np.maximum}[opname]
    if op is None:
        sched.scatter(g_flat, arr_flat)
    else:
        sched.scatter_op(g_flat, arr_flat, op)
    naive_reverse(m_ref, sched.send_lists, sched.recv_slots, g_ref, arr_ref, op)

    for p in range(n_procs):
        np.testing.assert_array_equal(arr_flat.local(p), arr_ref.local(p))
    assert clocks(m_flat) == clocks(m_ref)
    assert counters(m_flat) == counters(m_ref)


def test_empty_and_self_pairs():
    """Self-messages and empty pairs survive flattening unchanged."""
    m_flat, arr_flat, _ = make_world(2, 10, 7)
    m_ref, arr_ref, _ = make_world(2, 10, 7)
    send = {
        (0, 0): np.array([1, 2]),  # self pair: local memory copy
        (1, 0): np.array([], dtype=np.int64),  # empty: skipped entirely
        (0, 1): np.array([3, 3]),  # duplicate sends of one element
    }
    recv = {
        (0, 0): np.array([0, 1]),
        (1, 0): np.array([], dtype=np.int64),
        (0, 1): np.array([1, 0]),
    }
    gsizes = [2, 2]
    sched = CommSchedule(m_flat, arr_flat.distribution.signature(), send, recv, gsizes)
    g_flat = [np.zeros(2), np.zeros(2)]
    g_ref = [np.zeros(2), np.zeros(2)]
    sched.gather(arr_flat, g_flat)
    naive_gather(m_ref, sched.send_lists, sched.recv_slots, arr_ref, g_ref)
    for p in range(2):
        np.testing.assert_array_equal(g_flat[p], g_ref[p])
    assert clocks(m_flat) == clocks(m_ref)
    # the empty pair must not produce a message
    assert m_flat.procs[1].stats.messages_sent == 0
